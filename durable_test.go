package lafdbscan

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"

	"lafdbscan/internal/wal"
	"lafdbscan/internal/wal/walfs"
)

// durableEngines enumerates the engine configurations the crash matrix
// pins: the PR 5 equality contract makes crash-replay testable for exactly
// these, and the LAF leg uses the RMI estimator because it is the only
// estimator kind that survives Model.Save (a recovered model must replay
// with the same gate the live one had).
func durableEngines(t testing.TB, train [][]float32) []struct {
	name   string
	method Method
	params Params
} {
	t.Helper()
	est, err := TrainRMIEstimator(train, EstimatorConfig{
		MaxQueries: 80, Hidden: []int{16, 8}, Epochs: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name   string
		method Method
		params Params
	}{
		{"dbscan-sequential", MethodDBSCAN, Params{Eps: 0.4, Tau: 4}},
		{"dbscan-parallel-wave", MethodDBSCAN, Params{Eps: 0.4, Tau: 4, Workers: 2, WaveSize: 7}},
		{"laf-parallel-pp", MethodLAFDBSCAN, Params{Eps: 0.4, Tau: 4, Alpha: 1.2, Estimator: est, Seed: 7, Workers: 2, WaveSize: 16}},
	}
}

// modelState is a deep capture of everything the equality contract pins.
type modelState struct {
	points   [][]float32
	labels   []int
	cores    []bool
	forest   []int32
	clusters int
}

func captureState(m *Model) modelState {
	return modelState{
		points:   m.snapshotPoints(),
		labels:   slices.Clone(m.Labels()),
		cores:    slices.Clone(m.CoreMask()),
		forest:   slices.Clone(m.Forest()),
		clusters: m.NumClusters(),
	}
}

// assertState pins a recovered model bit-identical to a recorded state of
// the uninterrupted history: same points (float-exact), labels, cores,
// forest and cluster count.
func assertState(t *testing.T, m *Model, want modelState, stage string) {
	t.Helper()
	if m.Len() != len(want.points) {
		t.Fatalf("%s: Len = %d, want %d", stage, m.Len(), len(want.points))
	}
	if !slices.EqualFunc(m.snapshotPoints(), want.points, slices.Equal[[]float32]) {
		t.Fatalf("%s: recovered points diverged from history", stage)
	}
	if got := m.Labels(); !slices.Equal(got, want.labels) {
		ari, _ := ARI(want.labels, got)
		t.Fatalf("%s: labels diverged from history (ARI %.4f)\n got: %v\nwant: %v",
			stage, ari, head(got), head(want.labels))
	}
	if !slices.Equal(m.CoreMask(), want.cores) {
		t.Fatalf("%s: core mask diverged from history", stage)
	}
	if !slices.Equal(m.Forest(), want.forest) {
		t.Fatalf("%s: forest diverged from history", stage)
	}
	if m.NumClusters() != want.clusters {
		t.Fatalf("%s: clusters = %d, want %d", stage, m.NumClusters(), want.clusters)
	}
}

// pointMirror is a pure-Go model of the journal's point-set semantics,
// independent of the clustering code: inserts append, removes drop the
// named indices and compact preserving order. History construction checks
// the live model against it so the crash matrix inherits an independently
// derived expectation for what each replay prefix must contain.
type pointMirror struct{ points [][]float32 }

func (p *pointMirror) insert(vectors [][]float32) {
	for _, v := range vectors {
		p.points = append(p.points, slices.Clone(v))
	}
}

func (p *pointMirror) remove(ids []int) {
	drop := make(map[int]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	kept := p.points[:0]
	for i, v := range p.points {
		if !drop[i] {
			kept = append(kept, v)
		}
	}
	p.points = slices.Clip(kept)
}

// durableHistory is one scripted run: fit, three mutations, an explicit
// snapshot, two more mutations, close — captured as per-record states plus
// two directory images (before and after the snapshot generation roll).
type durableHistory struct {
	states []modelState // states[i] = after i journaled records (0..5)
	dirA   string       // snap-0 + wal-0 holding records 1..3
	dirB   string       // snap-3 + wal-3 holding records 4..5
}

func copyDir(t testing.TB, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func buildHistory(t *testing.T, method Method, params Params, vectors [][]float32) durableHistory {
	t.Helper()
	ctx := context.Background()
	base := vectors[:80]
	muts := []struct {
		vectors [][]float32
		ids     []int
	}{
		{vectors: vectors[80:92]},
		{vectors: vectors[92:110]},
		{ids: []int{3, 17, 85}},
		{vectors: vectors[110:122]},
		{ids: []int{0, 50, 101}},
	}

	model, err := FitParams(ctx, slices.Clone(base), method, params)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "journal")
	d, err := NewDurable(model, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mirror := &pointMirror{}
	mirror.insert(base)
	h := durableHistory{dirA: t.TempDir(), dirB: t.TempDir()}
	record := func(stage string) {
		st := captureState(d.Model())
		if !slices.EqualFunc(st.points, mirror.points, slices.Equal[[]float32]) {
			t.Fatalf("%s: model points diverged from the pure-Go mirror", stage)
		}
		h.states = append(h.states, st)
	}
	record("after fit")
	for i, mut := range muts {
		if mut.ids != nil {
			if _, err := d.Remove(ctx, mut.ids); err != nil {
				t.Fatalf("mutation %d: %v", i+1, err)
			}
			mirror.remove(mut.ids)
		} else {
			if _, err := d.Insert(ctx, mut.vectors); err != nil {
				t.Fatalf("mutation %d: %v", i+1, err)
			}
			mirror.insert(mut.vectors)
		}
		record(fmt.Sprintf("after mutation %d", i+1))
		if i == 2 {
			copyDir(t, dir, h.dirA)
			if _, err := d.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	copyDir(t, dir, h.dirB)
	return h
}

// segmentIn finds the directory's single WAL segment and its record
// boundaries (byte offsets where a cut leaves only whole records).
func segmentIn(t *testing.T, dir string) (name string, raw []byte, bounds []int64) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if kind, _, ok := parseGen(e.Name()); ok && kind == "wal" {
			if name != "" {
				t.Fatalf("dir %s has segments %s and %s, want one", dir, name, e.Name())
			}
			name = e.Name()
		}
	}
	if name == "" {
		t.Fatalf("no WAL segment in %s", dir)
	}
	raw, err = os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	bounds = []int64{wal.HeaderSize}
	off := int64(wal.HeaderSize)
	for off < int64(len(raw)) {
		_, n, err := wal.DecodeRecord(raw[off:])
		if err != nil {
			t.Fatalf("segment %s offset %d: %v", name, off, err)
		}
		off += int64(n)
		bounds = append(bounds, off)
	}
	return name, raw, bounds
}

// sweepCuts picks the cut offsets: every byte of the segment in the full
// run; record boundaries, their one-byte neighbourhoods, mid-record points
// and the header edge under -short.
func sweepCuts(total int64, bounds []int64) []int64 {
	if !testing.Short() {
		cuts := make([]int64, 0, total+1)
		for c := int64(0); c <= total; c++ {
			cuts = append(cuts, c)
		}
		return cuts
	}
	pick := map[int64]bool{0: true, 1: true, wal.HeaderSize - 1: true}
	for i, b := range bounds {
		pick[b] = true
		if i+1 < len(bounds) {
			next := bounds[i+1]
			pick[b+1] = true
			pick[(b+next)/2] = true
			pick[next-1] = true
		}
	}
	cuts := make([]int64, 0, len(pick))
	for c := range pick {
		if c >= 0 && c <= total {
			cuts = append(cuts, c)
		}
	}
	slices.Sort(cuts)
	return cuts
}

// TestCrashMatrix is the headline property test: for two directory images
// of a scripted history (one per snapshot generation), truncate the WAL
// segment at every byte offset, reopen, and require the recovered model to
// be bit-identical to the uninterrupted history's state at the surviving
// record prefix. Boundary cuts must recover cleanly and accept further
// appends; mid-record and mid-header cuts must report the truncation with
// the dropped byte count. Each distinct prefix is also pinned against a
// fresh Fit on its point set. The full byte sweep runs nightly; -short
// samples boundaries, their neighbours and mid-record offsets.
func TestCrashMatrix(t *testing.T) {
	data := GenerateMixture("durable-crash", MixtureConfig{
		N: 140, Dim: 8, Clusters: 3, MinSpread: 0.15, MaxSpread: 0.3,
		NoiseFrac: 0.2, Seed: 29,
	})
	ctx := context.Background()
	for _, eng := range durableEngines(t, data.Vectors) {
		t.Run(eng.name, func(t *testing.T) {
			h := buildHistory(t, eng.method, eng.params, data.Vectors)
			for _, image := range []struct {
				name       string
				dir        string
				basePrefix int
			}{
				{"gen0", h.dirA, 0},
				{"gen3", h.dirB, 3},
			} {
				t.Run(image.name, func(t *testing.T) {
					segName, raw, bounds := segmentIn(t, image.dir)
					freshChecked := map[int]bool{}
					for _, cut := range sweepCuts(int64(len(raw)), bounds) {
						work := t.TempDir()
						copyDir(t, image.dir, work)
						if err := walfs.Chop(filepath.Join(work, segName), cut); err != nil {
							t.Fatal(err)
						}
						dm, rep, err := OpenDurable(ctx, work, DurableOptions{})
						if err != nil {
							t.Fatalf("cut %d: %v", cut, err)
						}
						recs := 0
						for i := 1; i < len(bounds); i++ {
							if bounds[i] <= cut {
								recs = i
							}
						}
						stage := fmt.Sprintf("cut %d (%d records)", cut, recs)
						if rep.Records != int64(recs) {
							t.Fatalf("%s: replayed %d records", stage, rep.Records)
						}
						want := h.states[image.basePrefix+recs]
						assertState(t, dm.Model(), want, stage)
						if !freshChecked[recs] {
							freshChecked[recs] = true
							assertMatchesFreshFit(t, dm.Model(), stage)
						}
						atBoundary := cut >= wal.HeaderSize && cut == bounds[recs]
						if atBoundary {
							if rep.Truncated {
								t.Fatalf("%s: clean cut reported truncated: %+v", stage, rep)
							}
							// A cleanly recovered journal must keep accepting
							// mutations on the same segment.
							if _, err := dm.Insert(ctx, [][]float32{slices.Clone(want.points[0])}); err != nil {
								t.Fatalf("%s: append after recovery: %v", stage, err)
							}
							if got := dm.Stats().SegmentRecords; got != int64(recs)+1 {
								t.Fatalf("%s: segment has %d records after append, want %d", stage, got, recs+1)
							}
						} else {
							if !rep.Truncated || rep.Reason == "" {
								t.Fatalf("%s: torn cut not reported: %+v", stage, rep)
							}
							wantDropped := cut
							if cut >= wal.HeaderSize {
								wantDropped = cut - bounds[recs]
							}
							if rep.DroppedBytes != wantDropped {
								t.Fatalf("%s: DroppedBytes = %d, want %d", stage, rep.DroppedBytes, wantDropped)
							}
						}
						if err := dm.Close(); err != nil {
							t.Fatalf("%s: close: %v", stage, err)
						}
					}
				})
			}
		})
	}
}

// TestDurableBasic walks the happy path: journal layout on create, stats,
// explicit snapshot with compaction, refusing to mutate after close, full
// recovery equality, and refusing to re-seed an existing journal.
func TestDurableBasic(t *testing.T) {
	data := GenerateMixture("durable-basic", MixtureConfig{
		N: 120, Dim: 8, Clusters: 3, MinSpread: 0.15, MaxSpread: 0.3,
		NoiseFrac: 0.2, Seed: 31,
	})
	ctx := context.Background()
	model, err := FitParams(ctx, slices.Clone(data.Vectors[:90]), MethodDBSCAN, Params{Eps: 0.4, Tau: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "journal")
	d, err := NewDurable(model, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustFiles := func(want ...string) {
		t.Helper()
		names, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, e := range names {
			got = append(got, e.Name())
		}
		if !slices.Equal(got, want) {
			t.Fatalf("journal holds %v, want %v", got, want)
		}
	}
	mustFiles(snapName(0), walSegName(0))

	if _, err := d.Insert(ctx, data.Vectors[90:110]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Remove(ctx, []int{2, 40}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.LSN != 2 || st.SnapshotLSN != 0 || st.SegmentRecords != 2 {
		t.Fatalf("stats = %+v, want LSN 2 on snapshot 0", st)
	}
	info, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.LSN != 2 || info.Bytes <= 0 || info.Compacted != 2 {
		t.Fatalf("snapshot info = %+v, want LSN 2 compacting 2 files", info)
	}
	mustFiles(snapName(2), walSegName(2))
	if _, err := d.Insert(ctx, data.Vectors[110:]); err != nil {
		t.Fatal(err)
	}
	want := captureState(d.Model())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := d.Insert(ctx, data.Vectors[:1]); !errors.Is(err, ErrDurableClosed) {
		t.Fatalf("insert after close: %v, want ErrDurableClosed", err)
	}

	re, rep, err := OpenDurable(ctx, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rep.SnapshotLSN != 2 || rep.Records != 1 || rep.Truncated {
		t.Fatalf("recovery report = %+v, want 1 clean record on snapshot 2", rep)
	}
	assertState(t, re.Model(), want, "recovered")

	if _, err := NewDurable(model, dir, DurableOptions{}); err == nil ||
		!strings.Contains(err.Error(), "OpenDurable") {
		t.Fatalf("NewDurable on a live journal = %v, want refusal", err)
	}
}

// TestDurableAutoSnapshot pins the compaction trigger: SnapshotEvery rolls
// the generation as soon as the active segment reaches the threshold, and
// recovery afterwards needs only the newest generation.
func TestDurableAutoSnapshot(t *testing.T) {
	data := GenerateMixture("durable-auto", MixtureConfig{
		N: 120, Dim: 8, Clusters: 3, MinSpread: 0.15, MaxSpread: 0.3,
		NoiseFrac: 0.2, Seed: 37,
	})
	ctx := context.Background()
	model, err := FitParams(ctx, slices.Clone(data.Vectors[:90]), MethodDBSCAN, Params{Eps: 0.4, Tau: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "journal")
	var snapLSNs []int64
	d, err := NewDurable(model, dir, DurableOptions{
		SnapshotEvery: 2,
		OnSnapshot:    func(lsn int64) { snapLSNs = append(snapLSNs, lsn) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Insert(ctx, data.Vectors[90+10*i:100+10*i]); err != nil {
			t.Fatal(err)
		}
	}
	if !slices.Equal(snapLSNs, []int64{0, 2}) {
		t.Fatalf("snapshots at LSNs %v, want [0 2]", snapLSNs)
	}
	st := d.Stats()
	if st.LSN != 3 || st.SnapshotLSN != 2 || st.SegmentRecords != 1 || st.Snapshots != 2 {
		t.Fatalf("stats = %+v, want LSN 3 on snapshot 2", st)
	}
	want := captureState(d.Model())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, rep, err := OpenDurable(ctx, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rep.SnapshotLSN != 2 || rep.Records != 1 {
		t.Fatalf("recovery report = %+v, want 1 record on snapshot 2", rep)
	}
	assertState(t, re.Model(), want, "recovered")
}

// TestDurableSnapshotFallback corrupts the newest snapshot and requires
// recovery to fall back to the previous generation and chain both WAL
// segments on top of it — reconstructing the exact same final state — and
// to fail with a named error (never a panic) when every snapshot is bad.
func TestDurableSnapshotFallback(t *testing.T) {
	data := GenerateMixture("durable-fallback", MixtureConfig{
		N: 140, Dim: 8, Clusters: 3, MinSpread: 0.15, MaxSpread: 0.3,
		NoiseFrac: 0.2, Seed: 41,
	})
	h := buildHistory(t, MethodDBSCAN, Params{Eps: 0.4, Tau: 4}, data.Vectors)
	// Merge both generation images: snap-0 + wal-0 (records 1..3) and
	// snap-3 + wal-3 (records 4..5) — the layout that exists in the window
	// where a newer snapshot committed but compaction has not run.
	dir := t.TempDir()
	copyDir(t, h.dirA, dir)
	copyDir(t, h.dirB, dir)

	if err := walfs.FlipBit(filepath.Join(dir, snapName(3)), 0, 0); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dm, rep, err := OpenDurable(ctx, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotLSN != 0 || rep.SnapshotsDropped != 1 || rep.Records != 5 || rep.Truncated {
		t.Fatalf("fallback report = %+v, want 5 records chained on snapshot 0", rep)
	}
	assertState(t, dm.Model(), h.states[5], "chained recovery")
	dm.Close()

	// Every snapshot corrupt: a named error, not a panic or a zero model.
	dir2 := t.TempDir()
	copyDir(t, h.dirA, dir2)
	copyDir(t, h.dirB, dir2)
	if err := walfs.FlipBit(filepath.Join(dir2, snapName(0)), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := walfs.FlipBit(filepath.Join(dir2, snapName(3)), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDurable(ctx, dir2, DurableOptions{}); err == nil ||
		!strings.Contains(err.Error(), "failed to load") {
		t.Fatalf("all-corrupt open = %v, want load failure", err)
	}
}

// TestDurableAnnulment pins the journal-before-apply rollback: a mutation
// the model rejects must leave no record behind, so replay and the live
// model never diverge.
func TestDurableAnnulment(t *testing.T) {
	data := GenerateMixture("durable-annul", MixtureConfig{
		N: 110, Dim: 8, Clusters: 3, MinSpread: 0.15, MaxSpread: 0.3,
		NoiseFrac: 0.2, Seed: 43,
	})
	ctx := context.Background()
	model, err := FitParams(ctx, slices.Clone(data.Vectors[:90]), MethodDBSCAN, Params{Eps: 0.4, Tau: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "journal")
	d, err := NewDurable(model, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(ctx, data.Vectors[90:100]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(ctx, [][]float32{{1, 2, 3}}); err == nil {
		t.Fatal("wrong-dimension insert must be rejected")
	}
	if _, err := d.Remove(ctx, []int{10_000}); err == nil {
		t.Fatal("out-of-range remove must be rejected")
	}
	if st := d.Stats(); st.LSN != 1 || st.SegmentRecords != 1 {
		t.Fatalf("stats after annulled mutations = %+v, want LSN 1", st)
	}
	if _, err := d.Insert(ctx, data.Vectors[100:]); err != nil {
		t.Fatal(err)
	}
	want := captureState(d.Model())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, rep, err := OpenDurable(ctx, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rep.Records != 2 {
		t.Fatalf("recovery replayed %d records, want 2 (annulled ones must not survive)", rep.Records)
	}
	assertState(t, re.Model(), want, "recovered")
}

// TestDurableCrashMidStream runs the walfs crash model end to end: the
// write budget dies partway through a batch, the in-memory model keeps
// running ahead of the disk, and a reboot onto a healthy filesystem
// recovers exactly the committed prefix with the tear reported.
func TestDurableCrashMidStream(t *testing.T) {
	data := GenerateMixture("durable-crashfs", MixtureConfig{
		N: 140, Dim: 8, Clusters: 3, MinSpread: 0.15, MaxSpread: 0.3,
		NoiseFrac: 0.2, Seed: 47,
	})
	ctx := context.Background()
	model, err := FitParams(ctx, slices.Clone(data.Vectors[:90]), MethodDBSCAN, Params{Eps: 0.4, Tau: 4})
	if err != nil {
		t.Fatal(err)
	}
	fs := walfs.New(wal.OSFS())
	dir := filepath.Join(t.TempDir(), "journal")
	d, err := NewDurable(model, dir, DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(ctx, data.Vectors[90:102]); err != nil {
		t.Fatal(err)
	}
	committed := captureState(d.Model())

	fs.CrashAfter(10) // the next record's write tears after 10 bytes
	if _, err := d.Insert(ctx, data.Vectors[102:120]); err != nil {
		t.Fatal(err) // acknowledged: the kernel took the bytes it will drop
	}
	if _, err := d.Remove(ctx, []int{5}); err != nil {
		t.Fatal(err) // fully evaporates
	}
	if !fs.Dead() {
		t.Fatal("crash budget never tripped")
	}
	if d.Model().Len() != len(committed.points)+18-1 {
		t.Fatalf("in-memory model must run ahead of the dead disk, Len = %d", d.Model().Len())
	}
	d.Close()

	re, rep, err := OpenDurable(ctx, dir, DurableOptions{}) // healthy disk
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rep.Records != 1 || !rep.Truncated || !strings.Contains(rep.Reason, "torn") {
		t.Fatalf("recovery report = %+v, want 1 record and a torn tail", rep)
	}
	assertState(t, re.Model(), committed, "rebooted")
	assertMatchesFreshFit(t, re.Model(), "rebooted")
}

// TestDurableConcurrentSave pins the consistent-cut contract under -race:
// Model.Save taken while durable mutations and snapshots run concurrently
// always captures a loadable model whose size is one of the batch-boundary
// sizes — never a half-applied batch — and the journal recovers the final
// state exactly.
func TestDurableConcurrentSave(t *testing.T) {
	data := GenerateMixture("durable-concurrent", MixtureConfig{
		N: 140, Dim: 8, Clusters: 3, MinSpread: 0.15, MaxSpread: 0.3,
		NoiseFrac: 0.2, Seed: 53,
	})
	ctx := context.Background()
	const baseN, batches, batchSize = 100, 8, 5
	model, err := FitParams(ctx, slices.Clone(data.Vectors[:baseN]), MethodDBSCAN, Params{Eps: 0.4, Tau: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "journal")
	d, err := NewDurable(model, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	validLens := make(map[int]bool, batches+1)
	for k := 0; k <= batches; k++ {
		validLens[baseN+k*batchSize] = true
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var buf bytes.Buffer
				if err := d.Model().Save(&buf); err != nil {
					t.Errorf("concurrent save: %v", err)
					return
				}
				snap, err := LoadModel(&buf)
				if err != nil {
					t.Errorf("concurrent save not loadable: %v", err)
					return
				}
				if !validLens[snap.Len()] {
					t.Errorf("snapshot cut mid-batch: Len = %d", snap.Len())
					return
				}
			}
		}()
	}
	for k := 0; k < batches; k++ {
		off := baseN + k*batchSize
		if _, err := d.Insert(ctx, data.Vectors[off:off+batchSize]); err != nil {
			t.Fatal(err)
		}
		if k == batches/2 {
			if _, err := d.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	wg.Wait()
	want := captureState(d.Model())
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, _, err := OpenDurable(ctx, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertState(t, re.Model(), want, "recovered")
	assertMatchesFreshFit(t, re.Model(), "recovered")
}

// TestDurableDestroy pins that Destroy removes every journal file while
// leaving foreign files (and therefore the directory) alone.
func TestDurableDestroy(t *testing.T) {
	data := GenerateMixture("durable-destroy", MixtureConfig{
		N: 100, Dim: 8, Clusters: 2, MinSpread: 0.15, MaxSpread: 0.3,
		NoiseFrac: 0.2, Seed: 59,
	})
	ctx := context.Background()
	model, err := FitParams(ctx, slices.Clone(data.Vectors), MethodDBSCAN, Params{Eps: 0.4, Tau: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "journal")
	d, err := NewDurable(model, dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "README")
	if err := os.WriteFile(foreign, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "README" {
		t.Fatalf("destroy left %v, want only the foreign README", entries)
	}
}
