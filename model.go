package lafdbscan

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
	"sync"

	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// A FitOption configures Fit. Options are the growing surface of the model
// API — each one sets a single named knob — while the flat Params struct
// remains the compatibility surface of the original Cluster entry points.
// Every option maps onto a Params field, so Fit and Cluster accept and
// reject exactly the same configurations (Params.Validate runs on the
// assembled value either way).
type FitOption func(*Params)

// WithEps sets the cosine-distance (or, under WithMetric(MetricEuclidean),
// Euclidean) range-query threshold.
func WithEps(eps float64) FitOption { return func(p *Params) { p.Eps = eps } }

// WithTau sets the minimum neighbor count (including the point itself) for
// a point to be core.
func WithTau(tau int) FitOption { return func(p *Params) { p.Tau = tau } }

// WithAlpha sets LAF's error factor (predicted core when the estimated
// cardinality is at least Alpha*Tau).
func WithAlpha(alpha float64) FitOption { return func(p *Params) { p.Alpha = alpha } }

// WithEstimator supplies the cardinality estimator the LAF methods gate
// range queries with. Required for MethodLAFDBSCAN and MethodLAFDBSCANPP.
func WithEstimator(est Estimator) FitOption { return func(p *Params) { p.Estimator = est } }

// WithoutPostProcessing disables LAF's repair pass (ablation).
func WithoutPostProcessing() FitOption { return func(p *Params) { p.DisablePostProcessing = true } }

// WithSampleFraction sets the ++ variants' sample fraction in (0, 1].
func WithSampleFraction(frac float64) FitOption { return func(p *Params) { p.SampleFraction = frac } }

// WithBranching sets KNN-BLOCK DBSCAN's k-means tree fan-out.
func WithBranching(b int) FitOption { return func(p *Params) { p.Branching = b } }

// WithLeavesRatio sets KNN-BLOCK DBSCAN's examined-leaves fraction.
func WithLeavesRatio(r float64) FitOption { return func(p *Params) { p.LeavesRatio = r } }

// WithCoverTreeBase sets BLOCK-DBSCAN's cover tree expansion base.
func WithCoverTreeBase(base float64) FitOption { return func(p *Params) { p.Base = base } }

// WithRNT caps BLOCK-DBSCAN's approximate inter-block distance iterations.
func WithRNT(rnt int) FitOption { return func(p *Params) { p.RNT = rnt } }

// WithRho sets ρ-approximate DBSCAN's approximation factor.
func WithRho(rho float64) FitOption { return func(p *Params) { p.Rho = rho } }

// WithMetric selects the distance function for the metric-aware methods
// (MethodDBSCAN and MethodLAFDBSCAN; the others are hardwired to cosine).
func WithMetric(m DistanceMetric) FitOption { return func(p *Params) { p.Metric = m } }

// WithSeed seeds every randomized component.
func WithSeed(seed int64) FitOption { return func(p *Params) { p.Seed = seed } }

// WithWorkers selects the parallel engine with that many workers
// (WorkersAuto = all cores; 0 = the sequential reference engine). Predict
// also sizes its query pool from it.
func WithWorkers(w int) FitOption { return func(p *Params) { p.Workers = w } }

// WithBatchSize sets the parallel engines' per-worker claim size.
func WithBatchSize(b int) FitOption { return func(p *Params) { p.BatchSize = b } }

// WithWaveSize bounds the parallel engines' neighbor-discovery memory.
func WithWaveSize(w int) FitOption { return func(p *Params) { p.WaveSize = w } }

// WithIndex supplies a pre-built shared range index (see Params.Index). The
// fitted model retains it for prediction.
func WithIndex(idx RangeIndex) FitOption { return func(p *Params) { p.Index = idx } }

// WithIndexBackend selects the range-index implementation by registry name
// (see Params.IndexBackend): "" keeps the exact default, IndexBackendAuto
// opts into the approximate fallback chain, and an explicit name ("hnsw",
// "covertree", ...) is used as is after a capability check.
func WithIndexBackend(name string) FitOption { return func(p *Params) { p.IndexBackend = name } }

// WithEfSearch sets the HNSW recall knob (see Params.EfSearch).
func WithEfSearch(ef int) FitOption { return func(p *Params) { p.EfSearch = ef } }

// Model is a fitted clustering: the labels plus every expensive artifact the
// run produced — the core-point set, the canonical cluster forest, the range
// index, and (for the LAF methods) the trained estimator. Where Cluster
// throws these away after labeling one batch, a Model keeps them so new
// points can be assigned to the existing clusters in O(one range query)
// each (Predict), so the clustering can evolve with the data through
// Insert and Remove without re-clustering from scratch, and so the whole
// thing can be persisted (Save/LoadModel) and served (lafserve's
// /v1/models).
//
// # Concurrency
//
// All methods are safe for concurrent use. Reads — Predict, Labels, Save
// and every other accessor — run under a shared read lock and may proceed
// concurrently with each other; Insert and Remove take the write lock, so
// mutations serialize and a concurrent Predict observes either the state
// before an update or the state after it, never a half-applied one. A
// mutation that fails (context cancellation included) leaves the model
// exactly as it was: all range queries run before any state is touched.
type Model struct {
	method Method
	params Params // effective values (LAF's Alpha default resolved)

	// mu orders reads (RLock: Predict, accessors, Save) against the
	// write-locked mutations (Insert, Remove, SetRetrainPolicy).
	mu     sync.RWMutex
	points [][]float32
	labels []int
	core   []bool
	forest []int32
	// coreIDs is the ascending list of core point indexes, the scan set of
	// nearest-core prediction.
	coreIDs []int
	index   RangeIndex
	// indexBackend is the registry name the model's index was resolved to
	// ("" when the caller supplied a pre-built index). The first mutation
	// resets it to the exact scan the maintenance overlay installs.
	indexBackend string
	result       *Result

	// inc is the incremental-maintenance overlay, built lazily by the
	// first Insert or Remove (see model_incremental.go).
	inc *incState
	// updates counts applied point mutations over the model's lifetime
	// (persisted); staleness counts them since the last estimator
	// (re)train, driving the RetrainPolicy.
	updates   int64
	staleness int
	retrain   RetrainPolicy
}

// Fit clusters points with the named method and returns the fitted model.
// The labels are bit-identical to the corresponding Cluster call with the
// same knobs and seed — Fit runs the same engines and additionally retains
// their artifacts. Options assemble a Params value validated by the same
// Params.Validate as every other entry point.
func Fit(ctx context.Context, points [][]float32, m Method, opts ...FitOption) (*Model, error) {
	var p Params
	for _, o := range opts {
		o(&p)
	}
	return FitParams(ctx, points, m, p)
}

// FitParams is Fit over a flat Params value, the bridge for callers that
// already hold one (the CLI tools, the lafserve job specs).
func FitParams(ctx context.Context, points [][]float32, m Method, p Params) (*Model, error) {
	if !slices.Contains(AllMethods(), m) {
		return nil, fmt.Errorf("lafdbscan: unknown method %q", m)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// The driver's range queries and the model's prediction queries must
	// run under the same metric (modelMetric: only DBSCAN and LAF-DBSCAN
	// honor Params.Metric; every other method is hardwired to cosine).
	metric := modelMetric(m, p.Metric)
	// The specialized methods (KNN-BLOCK, BLOCK-DBSCAN, ρ-approximate)
	// build their own structures and never see p.Index; prediction still
	// needs a plain range index over the training points, so one is built
	// (or the caller's shared one retained) either way. Construction goes
	// through the backend registry: the zero IndexBackend resolves to the
	// exact brute-force scan, preserving bit-identical labels.
	resolvedBackend := ""
	if p.Index == nil {
		idx, name, err := p.NewIndex(points, metric)
		if err != nil {
			return nil, err
		}
		p.Index = idx
		resolvedBackend = name
	}
	fitParams := p
	if !methodHonorsIndex(m) {
		fitParams.Index = nil
	}
	res, err := ClusterContext(ctx, points, m, fitParams)
	if err != nil {
		return nil, err
	}
	if (m == MethodLAFDBSCAN || m == MethodLAFDBSCANPP) && p.Alpha == 0 {
		p.Alpha = 1 // the dispatch's neutral default, made visible
	}
	return newModel(m, p, points, res, resolvedBackend), nil
}

// methodHonorsIndex reports whether the method's driver accepts a shared
// range index (see Params.Index).
func methodHonorsIndex(m Method) bool {
	switch m {
	case MethodDBSCAN, MethodDBSCANPP, MethodLAFDBSCAN, MethodLAFDBSCANPP:
		return true
	}
	return false
}

// newModel wraps a finished clustering into a Model. p.Index must be the
// prediction index over points; indexBackend is the registry name it was
// resolved to ("" for a caller-supplied index).
func newModel(m Method, p Params, points [][]float32, res *Result, indexBackend string) *Model {
	coreIDs := make([]int, 0, len(res.Core)/2)
	for i, c := range res.Core {
		if c {
			coreIDs = append(coreIDs, i)
		}
	}
	return &Model{
		method:       m,
		params:       p,
		points:       points,
		labels:       res.Labels,
		core:         res.Core,
		forest:       res.Forest,
		coreIDs:      coreIDs,
		index:        p.Index,
		indexBackend: indexBackend,
		result:       res,
	}
}

// Method returns the clustering method the model was fitted with.
func (m *Model) Method() Method { return m.method }

// Params returns the effective fit parameters (Estimator included; LAF's
// Alpha default resolved to 1). Index is the fitted range index until the
// first Insert/Remove; after that the model's index is privately owned and
// mutated under its lock, so Index is nil — a refit from these parameters
// builds its own equivalent index.
func (m *Model) Params() Params {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.params
}

// Len returns the current number of model points (training points plus
// inserted minus removed).
func (m *Model) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.points)
}

// Dim returns the points' dimensionality.
func (m *Model) Dim() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.dimLocked()
}

func (m *Model) dimLocked() int {
	if len(m.points) == 0 {
		return 0
	}
	return len(m.points[0])
}

// IndexBackend returns the registry name of the backend the model's range
// index was resolved through ("brute", "hnsw", ...), or "" when the index
// was supplied pre-built by the caller (the lafserve registry reports its
// own backend in that case). After the first Insert/Remove it reports the
// exact scan the maintenance overlay installs.
func (m *Model) IndexBackend() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.indexBackend
}

// NumClusters returns the current number of clusters.
func (m *Model) NumClusters() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.result.NumClusters
}

// NumCores returns the current number of core points.
func (m *Model) NumCores() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.coreIDs)
}

// Labels returns a copy of the current labels.
func (m *Model) Labels() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return slices.Clone(m.labels)
}

// CoreMask returns a copy of the current core-point mask.
func (m *Model) CoreMask() []bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return slices.Clone(m.core)
}

// Forest returns a copy of the canonical cluster forest: the minimum-index
// core point of each core point's cluster, -1 for non-core points.
func (m *Model) Forest() []int32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return slices.Clone(m.forest)
}

// Result returns the current result snapshot (for loaded models, a
// reconstruction carrying labels, cores, forest and cluster count but no
// timings). Mutations replace the snapshot rather than editing it, so a
// returned Result is stable even while the model keeps evolving.
func (m *Model) Result() *Result {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.result
}

// HasEstimator reports whether the model carries a cardinality estimator
// (fitted LAF models always do; loaded models only when the estimator was
// serializable).
func (m *Model) HasEstimator() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.params.Estimator != nil
}

// Updates returns the total number of point mutations (inserts plus
// removals) applied to the model over its lifetime; the counter survives
// Save/LoadModel round trips.
func (m *Model) Updates() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.updates
}

// Staleness returns the number of point mutations applied since the
// estimator was (re)trained — the drift signal the RetrainPolicy consumes.
func (m *Model) Staleness() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.staleness
}

// PredictOptions tunes Predict.
type PredictOptions struct {
	// Gate enables LAF's estimator gate on prediction: vectors whose
	// estimated training-set cardinality falls below GateThreshold skip
	// their range query and are labeled Noise directly — the same
	// query-elision economics as fitting, applied out of sample. Estimator
	// errors can mislabel borderline points as noise; leave the gate off
	// when exact DBSCAN-semantics assignment matters. Requires a model
	// with an estimator.
	Gate bool
	// GateThreshold is the predicted-cardinality cutoff of the gate;
	// <= 0 selects 1 (fewer than one predicted training neighbor within
	// Eps — nothing nearby to join).
	GateThreshold float64
}

// Predict assigns each vector to a fitted cluster under DBSCAN semantics: a
// vector within Eps of a core point joins that core's cluster, and a vector
// within Eps of no core point is Noise. Each prediction costs one range
// query over the training index (no re-clustering); queries are batched
// through the wave engine, so prediction scales with the model's Workers
// setting and aborts within one wave of a context cancellation.
//
// When several clusters' cores lie within Eps, the vector joins the cluster
// its fitting run would have chosen: the lowest-numbered adjacent cluster
// for the traversal-based methods (DBSCAN, LAF-DBSCAN, ρ-approximate), the
// nearest core's cluster for the assignment-based ones (the ++ variants,
// KNN-BLOCK, BLOCK-DBSCAN). Predicting the training points themselves
// therefore reproduces the fitted labels wherever the method's own
// structures were exact (always for DBSCAN and the ++ variants; for the
// approximate baselines and post-processing-repaired LAF runs, up to their
// documented approximations).
func (m *Model) Predict(ctx context.Context, vectors [][]float32) ([]int, error) {
	labels, _, err := m.PredictWithOptions(ctx, vectors, PredictOptions{})
	return labels, err
}

// PredictWithOptions is Predict with the LAF gate available; skipped
// reports how many range queries the gate elided.
func (m *Model) PredictWithOptions(ctx context.Context, vectors [][]float32, o PredictOptions) (labels []int, skipped int, err error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	labels = make([]int, len(vectors))
	queries := vectors
	qmap := []int(nil) // queries[k] predicts labels[qmap[k]] (nil: identity)
	if o.Gate {
		est := m.params.Estimator
		if est == nil {
			return nil, 0, fmt.Errorf("lafdbscan: prediction gate requires a model with an estimator (method %q has none)", m.method)
		}
		threshold := o.GateThreshold
		if threshold <= 0 {
			threshold = 1
		}
		pass := make([]bool, len(vectors))
		index.ForEach(len(vectors), index.AutoWorkers(m.params.Workers), m.params.BatchSize, func(i int) {
			pass[i] = est.Estimate(vectors[i], m.params.Eps) >= threshold
		})
		queries = make([][]float32, 0, len(vectors))
		qmap = make([]int, 0, len(vectors))
		for i, ok := range pass {
			if ok {
				queries = append(queries, vectors[i])
				qmap = append(qmap, i)
			} else {
				labels[i] = Noise
			}
		}
		skipped = len(vectors) - len(queries)
	}
	nearest := m.nearestCoreSemantics()
	err = index.BatchRangeSearchFunc(ctx, m.index, queries, m.params.Eps,
		index.AutoWorkers(m.params.Workers), m.params.BatchSize, m.params.WaveSize,
		func(k int, ids []int) {
			i := k
			if qmap != nil {
				i = qmap[k]
			}
			if nearest {
				labels[i] = m.nearestCoreLabelLocked(queries[k], ids)
			} else {
				labels[i] = m.minClusterLabelLocked(ids)
			}
		})
	if err != nil {
		return nil, 0, err
	}
	return labels, skipped, nil
}

// nearestCoreSemantics reports whether the model's method assigns border
// points to their nearest core (the sampling and block baselines) rather
// than to the lowest-numbered adjacent cluster (the traversal methods).
func (m *Model) nearestCoreSemantics() bool {
	switch m.method {
	case MethodDBSCAN, MethodLAFDBSCAN, MethodRhoApprox:
		return false
	}
	return true
}

// minClusterLabelLocked returns the minimum cluster label among the core
// points in ids, or Noise when none is core. The caller must hold mu.
func (m *Model) minClusterLabelLocked(ids []int) int {
	best := Noise
	for _, q := range ids {
		if m.core[q] && (best == Noise || m.labels[q] < best) {
			best = m.labels[q]
		}
	}
	return best
}

// nearestCoreLabelLocked returns the label of the closest core point in ids
// under cosine distance (the metric every nearest-core method is hardwired
// to), or Noise when none is core. Ties keep the lowest index, matching the
// strict-improvement scan of the fitting drivers. The caller must hold mu.
func (m *Model) nearestCoreLabelLocked(q []float32, ids []int) int {
	best, bestD := -1, m.params.Eps
	for _, id := range ids {
		if !m.core[id] {
			continue
		}
		if d := vecmath.CosineDistanceUnit(q, m.points[id]); d < bestD {
			best, bestD = id, d
		}
	}
	if best < 0 {
		// All in-range cores tie at exactly Eps — impossible, since the
		// range query returns strictly-closer points only — or ids held no
		// core at all.
		return Noise
	}
	return m.labels[best]
}

// --- persistence ---

// modelMagic and modelVersion head every serialized model. The magic
// rejects arbitrary files immediately; the version gates the payload
// decoder so future layout changes stay loadable side by side.
var modelMagic = [4]byte{'L', 'A', 'F', 'M'}

// modelVersion is the current write version. Version 1 was the PR 4
// layout; version 2 added the Updates mutation counter (incremental
// maintenance). Gob ignores fields absent from the wire, so one decoder
// reads both versions; the explicit number still gates truly incompatible
// future layouts.
const modelVersion uint32 = 2

// modelParamsV1 is the persistable subset of Params (Estimator and Index
// travel separately or are rebuilt on load).
type modelParamsV1 struct {
	Eps                   float64
	Tau                   int
	Alpha                 float64
	SampleFraction        float64
	Branching             int
	LeavesRatio           float64
	Base                  float64
	RNT                   int
	Rho                   float64
	Metric                int32
	Seed                  int64
	DisablePostProcessing bool
	Workers               int
	BatchSize             int
	WaveSize              int
	// IndexBackend and EfSearch joined in PR 9 (backend registry); gob
	// zeroes them when decoding older streams, which resolves to the exact
	// default — the behavior those models were saved under.
	IndexBackend string
	EfSearch     int
}

// modelPayloadV1 is the gob payload following the binary header, shared by
// versions 1 and 2: version 2 writes the additional Updates field, which
// gob leaves zero when decoding a version-1 stream.
type modelPayloadV1 struct {
	Method      string
	Algorithm   string
	Params      modelParamsV1
	Points      [][]float32
	Labels      []int32
	Core        []bool
	Forest      []int32
	NumClusters int
	// Estimator is the LAF gate, present when the fitted estimator was
	// serializable (RMI); other estimator kinds are dropped on Save and the
	// loaded model predicts ungated.
	HasEstimator bool
	Estimator    estimatorPayload
	// Updates is the model's lifetime mutation counter (version 2).
	Updates int64
}

// Save writes the model to w: a fixed binary header (magic "LAFM" plus a
// little-endian version) followed by the versioned gob payload — training
// points, labels, cores, forest, configuration, and the RMI estimator
// through internal/rmi's wire format when one is attached. A load of the
// written bytes predicts identically to the in-memory model.
//
// Save holds the model's read lock for the whole write, so a snapshot
// taken while other goroutines mutate the model is always a consistent
// cut: it reflects every mutation that completed before the lock was
// acquired and none that started after — never a half-applied batch. When
// the model is wrapped in a DurableModel this also means a snapshot falls
// exactly on a WAL record boundary (the durable mutex orders each record's
// append and apply as one critical section), which is what lets recovery
// replay the remaining journal on top of it bit-identically.
func (m *Model) Save(w io.Writer) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, err := w.Write(modelMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, modelVersion); err != nil {
		return err
	}
	labels := make([]int32, len(m.labels))
	for i, l := range m.labels {
		labels[i] = int32(l)
	}
	p := m.params
	payload := modelPayloadV1{
		Method:    string(m.method),
		Algorithm: m.result.Algorithm,
		Params: modelParamsV1{
			Eps: p.Eps, Tau: p.Tau, Alpha: p.Alpha,
			SampleFraction: p.SampleFraction,
			Branching:      p.Branching, LeavesRatio: p.LeavesRatio,
			Base: p.Base, RNT: p.RNT, Rho: p.Rho,
			Metric: int32(p.Metric), Seed: p.Seed,
			DisablePostProcessing: p.DisablePostProcessing,
			Workers:               p.Workers, BatchSize: p.BatchSize, WaveSize: p.WaveSize,
			IndexBackend: p.IndexBackend, EfSearch: p.EfSearch,
		},
		Points:      m.points,
		Labels:      labels,
		Core:        m.core,
		Forest:      m.forest,
		NumClusters: m.result.NumClusters,
		Updates:     m.updates,
	}
	if est := m.params.Estimator; est != nil {
		switch ep, err := marshalEstimator(est); {
		case err == nil:
			payload.HasEstimator = true
			payload.Estimator = ep
		case errors.Is(err, errEstimatorNotSerializable):
			// Documented drop: oracle/sampling/histogram estimators have no
			// wire format; the loaded model predicts ungated.
		default:
			return err // a real RMI encoding failure must not save silently
		}
	}
	return gob.NewEncoder(w).Encode(&payload)
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel reads a model written by Save and rebuilds its range index, so
// the returned model predicts identically to the one that was saved. It
// rejects wrong or truncated headers and unknown versions with descriptive
// errors.
func LoadModel(r io.Reader) (*Model, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("lafdbscan: reading model header: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("lafdbscan: not a model file (bad magic %q)", magic[:])
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("lafdbscan: reading model version: %w", err)
	}
	switch version {
	case 1, 2:
		// One decoder serves both: version 2 only added fields, which gob
		// zeroes when absent from a version-1 stream.
		return loadModelV1(r)
	default:
		// Future versions slot in above; refusing unknown ones here keeps
		// a corrupted or newer-format file from decoding into garbage.
		return nil, fmt.Errorf("lafdbscan: unsupported model version %d (this build reads <= %d)", version, modelVersion)
	}
}

// loadModelV1 decodes the version-1/2 payload.
func loadModelV1(r io.Reader) (*Model, error) {
	var payload modelPayloadV1
	if err := gob.NewDecoder(r).Decode(&payload); err != nil {
		return nil, fmt.Errorf("lafdbscan: decoding model: %w", err)
	}
	m := Method(payload.Method)
	if !slices.Contains(AllMethods(), m) {
		return nil, fmt.Errorf("lafdbscan: model names unknown method %q", payload.Method)
	}
	n := len(payload.Points)
	if n == 0 || len(payload.Labels) != n || len(payload.Core) != n || len(payload.Forest) != n {
		return nil, fmt.Errorf("lafdbscan: malformed model: %d points, %d labels, %d cores, %d forest entries",
			n, len(payload.Labels), len(payload.Core), len(payload.Forest))
	}
	pp := payload.Params
	p := Params{
		Eps: pp.Eps, Tau: pp.Tau, Alpha: pp.Alpha,
		SampleFraction: pp.SampleFraction,
		Branching:      pp.Branching, LeavesRatio: pp.LeavesRatio,
		Base: pp.Base, RNT: pp.RNT, Rho: pp.Rho,
		Metric: DistanceMetric(pp.Metric), Seed: pp.Seed,
		DisablePostProcessing: pp.DisablePostProcessing,
		Workers:               pp.Workers, BatchSize: pp.BatchSize, WaveSize: pp.WaveSize,
		IndexBackend: pp.IndexBackend, EfSearch: pp.EfSearch,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("lafdbscan: malformed model: %w", err)
	}
	if payload.HasEstimator {
		est, err := unmarshalEstimator(payload.Estimator)
		if err != nil {
			return nil, fmt.Errorf("lafdbscan: model estimator: %w", err)
		}
		p.Estimator = est
	}
	labels := make([]int, n)
	for i, l := range payload.Labels {
		labels[i] = int(l)
	}
	// The prediction index is rebuilt through the backend registry from
	// the persisted knob: old streams decode to the zero IndexBackend and
	// get the exact scan they were saved under; models fitted on a named
	// backend get a deterministic rebuild (same backend, same seed).
	idx, resolvedBackend, err := p.NewIndex(payload.Points, modelMetric(m, p.Metric))
	if err != nil {
		return nil, fmt.Errorf("lafdbscan: rebuilding model index: %w", err)
	}
	p.Index = idx
	res := &Result{
		Algorithm:   payload.Algorithm,
		Labels:      labels,
		NumClusters: payload.NumClusters,
		Core:        payload.Core,
		Forest:      payload.Forest,
	}
	model := newModel(m, p, payload.Points, res, resolvedBackend)
	//lafvet:allow lockcheck the model is freshly deserialized and not yet visible to any other goroutine
	model.updates = payload.Updates
	return model, nil
}

// LoadModelFile reads a model from a file.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
