package lafdbscan_test

import (
	"bytes"
	"context"
	"fmt"

	"lafdbscan"
)

// Fit/Predict is the model API: one clustering pays for an index, a core
// set and (for LAF methods) a trained estimator, and every later batch of
// vectors is assigned to the existing clusters in one range query per
// vector. Save/LoadModel make the whole thing survive process restarts.
func ExampleFit() {
	data := lafdbscan.MSLike(400, 1)
	train, incoming, err := lafdbscan.Split(data, 0.8, 42)
	if err != nil {
		panic(err)
	}

	ctx := context.Background()
	model, err := lafdbscan.Fit(ctx, train.Vectors, lafdbscan.MethodDBSCAN,
		lafdbscan.WithEps(0.55), lafdbscan.WithTau(5))
	if err != nil {
		panic(err)
	}

	labels, err := model.Predict(ctx, incoming.Vectors)
	if err != nil {
		panic(err)
	}

	// Round-trip through the versioned binary format: the loaded model
	// predicts identically to the fitted one.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		panic(err)
	}
	loaded, err := lafdbscan.LoadModel(&buf)
	if err != nil {
		panic(err)
	}
	again, err := loaded.Predict(ctx, incoming.Vectors)
	if err != nil {
		panic(err)
	}
	same := true
	for i := range labels {
		same = same && labels[i] == again[i]
	}
	fmt.Println(len(labels) == incoming.Len(), same)
	// Output: true true
}

// The full pipeline: generate data, train the learned estimator on the 80%
// split, cluster the 20% split with LAF-DBSCAN. The training budget here is
// documentation-sized so the example stays fast; real runs can drop the
// Hidden/Epochs/MaxQueries overrides to get the defaults. Examples always
// execute under go test (they cannot consult testing.Short), so this is
// what keeps the root package's -short runs quick.
func ExampleLAFDBSCAN() {
	data := lafdbscan.MSLike(400, 1)
	train, test, err := lafdbscan.Split(data, 0.8, 42)
	if err != nil {
		panic(err)
	}

	est, err := lafdbscan.TrainRMIEstimator(train.Vectors, lafdbscan.EstimatorConfig{
		TargetSize: test.Len(),
		Hidden:     []int{24, 12},
		Epochs:     8,
		MaxQueries: 120,
		Seed:       1,
	})
	if err != nil {
		panic(err)
	}
	res, err := lafdbscan.LAFDBSCAN(test.Vectors, lafdbscan.Params{
		Eps: 0.55, Tau: 5, Alpha: 1.2, Estimator: est,
		Workers: lafdbscan.WorkersAuto, // parallel engine across all cores
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Labels) == test.Len())
	// Output: true
}

// Comparing an approximate labeling against exact DBSCAN with the paper's
// quality metrics.
func ExampleARI() {
	truth := []int{1, 1, 2, 2, lafdbscan.Noise}
	pred := []int{7, 7, 9, 9, lafdbscan.Noise}
	ari, _ := lafdbscan.ARI(truth, pred)
	ami, _ := lafdbscan.AMI(truth, pred)
	fmt.Printf("ARI=%.1f AMI=%.1f\n", ari, ami)
	// Output: ARI=1.0 AMI=1.0
}

// Equation 1 of the paper: on unit vectors a cosine threshold of 0.5 equals
// a Euclidean threshold of 1.0.
func ExampleCosineToEuclidean() {
	fmt.Println(lafdbscan.CosineToEuclidean(0.5))
	// Output: 1
}

// Summarizing a labeling the way the paper's Table 2 does.
func ExampleStats() {
	labels := []int{1, 1, 1, 2, lafdbscan.Noise}
	s := lafdbscan.Stats(labels)
	fmt.Printf("clusters=%d noise=%.1f\n", s.NumClusters, s.NoiseRatio)
	// Output: clusters=2 noise=0.2
}
