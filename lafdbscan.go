package lafdbscan

import (
	"context"
	"fmt"

	"lafdbscan/internal/cardest"
	"lafdbscan/internal/cluster"
	"lafdbscan/internal/core"
	"lafdbscan/internal/index"
	"lafdbscan/internal/index/hnsw"
	"lafdbscan/internal/metrics"
	"lafdbscan/internal/vecmath"
)

// Result is a clustering outcome: labels (cluster ids >= 1, or Noise),
// cluster count, elapsed time, and the range-query accounting the paper's
// efficiency analysis relies on.
type Result = cluster.Result

// Noise is the label assigned to noise points in Result.Labels.
const Noise = cluster.Noise

// Estimator predicts range-query cardinalities without executing the query.
// Obtain one from TrainRMIEstimator (learned, the paper's configuration) or
// the construction helpers in this package.
type Estimator = cardest.Estimator

// Params collects the parameters shared by all clustering entry points.
// Zero values of optional fields select the paper's defaults.
type Params struct {
	// Eps is the cosine-distance threshold of the range queries.
	Eps float64
	// Tau is the minimum neighbor count (including the point itself) for a
	// point to be core.
	Tau int

	// Alpha is LAF's error factor: a point is predicted core when the
	// estimated cardinality is at least Alpha*Tau. Used by LAFDBSCAN and
	// LAFDBSCANPP only. The paper tunes it per dataset (Table 1); 1.0 is
	// the neutral setting.
	Alpha float64
	// Estimator is the cardinality estimator. Required for LAFDBSCAN and
	// LAFDBSCANPP, ignored elsewhere.
	Estimator Estimator
	// DisablePostProcessing turns off LAF's repair pass (ablation).
	DisablePostProcessing bool

	// SampleFraction is DBSCAN++'s / LAF-DBSCAN++'s p in (0, 1].
	SampleFraction float64

	// Branching and LeavesRatio configure KNN-BLOCK DBSCAN's k-means tree
	// (defaults 10 and 0.6, the paper's settings).
	Branching   int
	LeavesRatio float64

	// Base and RNT configure BLOCK-DBSCAN's cover tree (defaults 2.0
	// and 10, the paper's settings).
	Base float64
	RNT  int

	// Rho is ρ-approximate DBSCAN's approximation factor (paper: 1.0).
	Rho float64

	// Metric selects the distance function for DBSCAN and LAFDBSCAN. The
	// zero value, MetricCosine, is the paper's setting; MetricEuclidean
	// implements its future-work extension (train the estimator with
	// EstimatorConfig.Metric set accordingly).
	Metric DistanceMetric

	// Seed drives all randomized components.
	Seed int64

	// Workers selects the clustering engine for DBSCAN, LAFDBSCAN and
	// LAFDBSCANPP. The zero value runs the sequential reference
	// implementation (the paper's formulation); a positive value runs the
	// parallel engine with that many workers; WorkersAuto sizes the pool
	// to GOMAXPROCS. The parallel DBSCAN engine produces labels identical
	// to the sequential one; the parallel LAF engines match their
	// sequential counterparts exactly when post-processing is disabled and
	// use the complete (traversal-order-free) partial-neighbor map when it
	// is enabled. Other methods ignore the knob.
	Workers int
	// BatchSize is the number of range queries a parallel worker claims
	// at a time; 0 selects a load-balancing default. Ignored by the
	// sequential engines.
	BatchSize int
	// WaveSize bounds the parallel engines' memory: neighbor discovery
	// runs in waves of this many range queries, and each wave's neighbor
	// lists are dropped as soon as core flags, cluster links and border
	// stubs are folded in — peak extra memory is O(WaveSize·avg|N|)
	// instead of the O(Σ|N(p)|) of buffering every list. 0 selects a
	// default (index.DefaultWaveSize); a negative value disables waving
	// and buffers everything (the pre-wave engine, kept for comparison).
	// Labels are identical at every setting. Ignored by the sequential
	// engines.
	WaveSize int

	// Index optionally supplies a pre-built range-query engine, letting a
	// long-running caller (the lafserve registry) build one index per
	// dataset and share it across requests instead of rebuilding per run.
	// It must index exactly the points passed to the entry point, under
	// the same metric as Params.Metric. Honored by DBSCAN, DBSCAN++ and
	// the LAF variants; KNN-BLOCK, BLOCK-DBSCAN and ρ-approximate build
	// their own specialized structures and ignore it. Labels are identical
	// with or without a shared index. When set, IndexBackend is ignored.
	Index RangeIndex

	// IndexBackend selects the range-index implementation by registry name
	// (see IndexBackends: "brute", "hnsw", "covertree", "kmeanstree",
	// "grid") for the methods that honor a shared index. The zero value
	// resolves the default fallback chain under an exactness requirement,
	// landing on the brute-force scan — labels stay bit-identical to every
	// earlier release. IndexBackendAuto resolves the same chain with
	// approximation allowed, landing on the HNSW graph (sub-linear queries,
	// recall tunable through EfSearch). Naming a backend that does not
	// support Params.Metric is a validation error.
	IndexBackend string
	// EfSearch is the HNSW recall knob: the size of the result set the
	// graph's layer-0 best-first expansion maintains per query. 0 selects
	// the default (hnsw.DefaultEfSearch, 64); larger values raise recall
	// and query cost. Ignored by every other backend.
	EfSearch int
}

// RangeIndex answers range queries over an indexed point set; see
// Params.Index. The brute-force implementation behind the default engines
// is safe for concurrent use across clustering runs.
type RangeIndex = index.RangeSearcher

// NewBruteForceIndex builds the default parallel brute-force range-query
// engine over points under the given metric — the index the clustering
// entry points construct per run when Params.Index is nil, exposed so
// serving layers can build it once and share it. It is equivalent to
// Params{}.NewIndex under the zero IndexBackend, kept as the stable
// pre-registry constructor.
func NewBruteForceIndex(points [][]float32, m DistanceMetric) RangeIndex {
	dist := vecmath.CosineDistanceUnit
	if m != MetricCosine {
		dist = m.Func()
	}
	return index.NewBruteForce(points, dist)
}

// IndexBackendAuto resolves Params.IndexBackend through the default
// fallback chain with approximation allowed: the HNSW graph where it
// qualifies, the exact scan as the terminal fallback.
const IndexBackendAuto = "auto"

// DefaultEfSearch is the HNSW search beam width selected when
// Params.EfSearch is zero — the recall knob's untuned setting, and the one
// the recall gate (cmd/lafrecall) holds to its floor.
const DefaultEfSearch = hnsw.DefaultEfSearch

// IndexBackends lists the registered index backend names in registry
// order; each is a valid Params.IndexBackend value.
func IndexBackends() []string { return index.Backends() }

// IndexBackendCapabilities describes what a registered backend promises
// (exactness, mutability, KNN support, metrics); see the internal registry
// for field documentation. The boolean fields serialize under snake_case
// JSON names, so serving layers can expose the registry directly.
type IndexBackendCapabilities = index.Capabilities

// LookupIndexBackend returns the capabilities of a named backend and
// whether the name is registered.
func LookupIndexBackend(name string) (IndexBackendCapabilities, bool) {
	return index.LookupBackend(name)
}

// NewIndex builds the range index p describes over points under metric m:
// p.IndexBackend is resolved through the backend registry ("" requires
// exactness and lands on brute force; IndexBackendAuto opts into
// approximation and lands on HNSW; an explicit name is capability-checked
// and used as is), then constructed with p's knobs (Seed, EfSearch,
// Branching, LeavesRatio, Base, Rho, and — for radius-bound backends like
// the grid — Eps). It returns the index and the resolved backend name.
func (p Params) NewIndex(points [][]float32, m DistanceMetric) (RangeIndex, string, error) {
	name, err := ResolveIndexBackend(p.IndexBackend, m, p.Eps > 0)
	if err != nil {
		return nil, "", err
	}
	idx, err := index.NewBackend(name, points, index.BackendOptions{
		Metric: m, Eps: p.Eps, Rho: p.Rho, Base: p.Base,
		Branching: p.Branching, LeavesRatio: p.LeavesRatio,
		EfSearch: p.EfSearch, Seed: p.Seed,
	})
	if err != nil {
		return nil, "", err
	}
	return idx, name, nil
}

// ResolveIndexBackend maps an IndexBackend knob onto a concrete registry
// name under metric m without building anything — serving layers use it to
// key shared-index caches by the resolved name. haveEps reports whether
// the caller can supply the query radius at build time (radius-bound
// backends like the grid are ineligible otherwise).
func ResolveIndexBackend(backend string, m DistanceMetric, haveEps bool) (string, error) {
	switch backend {
	case "":
		// The behavior-preserving default: exactness required, so the
		// chain resolves to the brute-force scan.
		return index.ResolveBackend(nil, index.Requirements{Exact: true, Metric: m})
	case IndexBackendAuto:
		return index.ResolveBackend(nil, index.Requirements{Metric: m, HaveEps: haveEps})
	default:
		caps, ok := index.LookupBackend(backend)
		if !ok {
			return "", fmt.Errorf("lafdbscan: unknown index backend %q (have %v)", backend, index.Backends())
		}
		if !caps.SupportsMetric(m) {
			return "", fmt.Errorf("lafdbscan: index backend %q does not support metric %v", backend, m)
		}
		return backend, nil
	}
}

// materializeIndex builds Params.IndexBackend into Params.Index for the
// entry points that honor a shared index. An explicit Index wins, and the
// zero knob keeps the historical behavior (each driver builds its own
// exact scan), so only callers that name a backend pay the construction.
func materializeIndex(p *Params, points [][]float32, m DistanceMetric) error {
	if p.Index != nil || p.IndexBackend == "" {
		return nil
	}
	idx, _, err := p.NewIndex(points, m)
	if err != nil {
		return err
	}
	p.Index = idx
	return nil
}

// WorkersAuto sizes the parallel engine's worker pool to GOMAXPROCS.
const WorkersAuto = -1

// DistanceMetric identifies a distance function.
type DistanceMetric = vecmath.Metric

// The supported metrics.
const (
	// MetricCosine is the angular distance 1 - cos, bounded in [0, 2].
	MetricCosine = vecmath.Cosine
	// MetricEuclidean is the L2 distance. On unit vectors it relates to
	// cosine distance by Equation 1 of the paper: d_euc = sqrt(2 * d_cos).
	MetricEuclidean = vecmath.Euclidean
)

// CosineToEuclidean converts a cosine-distance threshold to the equivalent
// Euclidean threshold for unit vectors (Equation 1 of the paper).
func CosineToEuclidean(dcos float64) float64 { return vecmath.CosineToEuclidean(dcos) }

// EuclideanToCosine is the inverse of CosineToEuclidean for unit vectors.
func EuclideanToCosine(deuc float64) float64 { return vecmath.EuclideanToCosine(deuc) }

// DBSCAN runs exact DBSCAN; its labeling is the ground truth the paper
// scores every approximate method against. With Params.Workers set it runs
// the parallel engine, whose labels are identical to the sequential one's.
func DBSCAN(points [][]float32, p Params) (*Result, error) {
	return DBSCANContext(context.Background(), points, p)
}

// DBSCANContext is DBSCAN under a cancellation context: the parallel engine
// checks it at each wave barrier (aborting within one wave at zero hot-path
// cost), the sequential engine every few dozen range queries. On
// cancellation it returns ctx.Err() and no result.
func DBSCANContext(ctx context.Context, points [][]float32, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := materializeIndex(&p, points, p.Metric); err != nil {
		return nil, err
	}
	if p.Workers != 0 {
		return (&cluster.ParallelDBSCAN{
			Points: points, Eps: p.Eps, Tau: p.Tau, Metric: p.Metric,
			Workers: index.AutoWorkers(p.Workers), BatchSize: p.BatchSize,
			WaveSize: p.WaveSize, Index: p.Index,
		}).RunContext(ctx)
	}
	return (&cluster.DBSCAN{
		Points: points, Eps: p.Eps, Tau: p.Tau, Metric: p.Metric, Index: p.Index,
	}).RunContext(ctx)
}

// DBSCANPP runs DBSCAN++ with sample fraction p.SampleFraction.
func DBSCANPP(points [][]float32, p Params) (*Result, error) {
	return DBSCANPPContext(context.Background(), points, p)
}

// DBSCANPPContext is DBSCANPP under a cancellation context.
func DBSCANPPContext(ctx context.Context, points [][]float32, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// The ++ driver is hardwired to cosine distance, so the backend is
	// materialized under that metric regardless of Params.Metric.
	if err := materializeIndex(&p, points, MetricCosine); err != nil {
		return nil, err
	}
	return (&cluster.DBSCANPP{
		Points: points, Eps: p.Eps, Tau: p.Tau,
		P: p.SampleFraction, Seed: p.Seed, Index: p.Index,
	}).RunContext(ctx)
}

// LAFDBSCAN runs the paper's LAF-enhanced DBSCAN (Algorithm 1).
func LAFDBSCAN(points [][]float32, p Params) (*Result, error) {
	return LAFDBSCANContext(context.Background(), points, p)
}

// LAFDBSCANContext is LAFDBSCAN under a cancellation context.
func LAFDBSCANContext(ctx context.Context, points [][]float32, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := materializeIndex(&p, points, p.Metric); err != nil {
		return nil, err
	}
	if p.Alpha == 0 {
		p.Alpha = 1
	}
	return (&core.LAFDBSCAN{Points: points, Index: p.Index, Config: core.Config{
		Eps: p.Eps, Tau: p.Tau, Alpha: p.Alpha,
		Estimator: p.Estimator, Metric: p.Metric, Seed: p.Seed,
		DisablePostProcessing: p.DisablePostProcessing,
		Workers:               p.Workers, BatchSize: p.BatchSize,
		WaveSize: p.WaveSize,
	}}).RunContext(ctx)
}

// LAFDBSCANPP runs LAF-enhanced DBSCAN++ (the paper fixes its Alpha to 1.0;
// pass Alpha explicitly to override).
func LAFDBSCANPP(points [][]float32, p Params) (*Result, error) {
	return LAFDBSCANPPContext(context.Background(), points, p)
}

// LAFDBSCANPPContext is LAFDBSCANPP under a cancellation context.
func LAFDBSCANPPContext(ctx context.Context, points [][]float32, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := materializeIndex(&p, points, MetricCosine); err != nil {
		return nil, err
	}
	if p.Alpha == 0 {
		p.Alpha = 1
	}
	return (&core.LAFDBSCANPP{Points: points, P: p.SampleFraction, Index: p.Index, Config: core.Config{
		Eps: p.Eps, Tau: p.Tau, Alpha: p.Alpha,
		Estimator: p.Estimator, Seed: p.Seed,
		DisablePostProcessing: p.DisablePostProcessing,
		Workers:               p.Workers, BatchSize: p.BatchSize,
		WaveSize: p.WaveSize,
	}}).RunContext(ctx)
}

// KNNBlockDBSCAN runs the KNN-BLOCK DBSCAN baseline.
func KNNBlockDBSCAN(points [][]float32, p Params) (*Result, error) {
	return KNNBlockDBSCANContext(context.Background(), points, p)
}

// KNNBlockDBSCANContext is KNNBlockDBSCAN under a cancellation context.
func KNNBlockDBSCANContext(ctx context.Context, points [][]float32, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return (&cluster.KNNBlock{
		Points: points, Eps: p.Eps, Tau: p.Tau,
		Branching: p.Branching, LeavesRatio: p.LeavesRatio, Seed: p.Seed,
	}).RunContext(ctx)
}

// BlockDBSCAN runs the BLOCK-DBSCAN baseline.
func BlockDBSCAN(points [][]float32, p Params) (*Result, error) {
	return BlockDBSCANContext(context.Background(), points, p)
}

// BlockDBSCANContext is BlockDBSCAN under a cancellation context.
func BlockDBSCANContext(ctx context.Context, points [][]float32, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return (&cluster.BlockDBSCAN{
		Points: points, Eps: p.Eps, Tau: p.Tau,
		Base: p.Base, RNT: p.RNT, Seed: p.Seed,
	}).RunContext(ctx)
}

// RhoApproxDBSCAN runs the ρ-approximate DBSCAN baseline.
func RhoApproxDBSCAN(points [][]float32, p Params) (*Result, error) {
	return RhoApproxDBSCANContext(context.Background(), points, p)
}

// RhoApproxDBSCANContext is RhoApproxDBSCAN under a cancellation context.
func RhoApproxDBSCANContext(ctx context.Context, points [][]float32, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return (&cluster.RhoApprox{
		Points: points, Eps: p.Eps, Tau: p.Tau, Rho: p.Rho,
	}).RunContext(ctx)
}

// PredictedCoreRatio returns Rc, the fraction of points the estimator
// predicts as core. The paper sets DBSCAN++'s sample fraction to
// delta + Rc with delta in 0.1-0.3.
func PredictedCoreRatio(points [][]float32, est Estimator, eps float64, tau int, alpha float64) float64 {
	return core.PredictedCoreRatio(points, est, eps, tau, alpha)
}

// Method names a clustering algorithm for the generic Cluster entry point
// and the CLI tools.
type Method string

// The supported methods.
const (
	MethodDBSCAN      Method = "dbscan"
	MethodDBSCANPP    Method = "dbscan++"
	MethodLAFDBSCAN   Method = "laf-dbscan"
	MethodLAFDBSCANPP Method = "laf-dbscan++"
	MethodKNNBlock    Method = "knn-block"
	MethodBlockDBSCAN Method = "block-dbscan"
	MethodRhoApprox   Method = "rho-approx"
)

// Methods lists every supported method in the paper's reporting order.
// ρ-approximate DBSCAN is deliberately absent — the paper reports it
// separately (Table 4) after showing it degenerates in high dimensions —
// but it is dispatchable; use AllMethods when validating user input.
func Methods() []Method {
	return []Method{
		MethodDBSCAN, MethodKNNBlock, MethodBlockDBSCAN,
		MethodDBSCANPP, MethodLAFDBSCAN, MethodLAFDBSCANPP,
	}
}

// AllMethods lists every dispatchable method: the paper's reporting order of
// Methods followed by ρ-approximate DBSCAN. The CLI tools and the lafserve
// job engine validate method names against it, so everything Cluster and Fit
// can dispatch is accepted everywhere.
func AllMethods() []Method {
	return append(Methods(), MethodRhoApprox)
}

// Cluster dispatches to the named method.
func Cluster(points [][]float32, m Method, p Params) (*Result, error) {
	return ClusterContext(context.Background(), points, m, p)
}

// ClusterContext dispatches to the named method under a cancellation
// context. The parallel engines abort within one neighbor-discovery wave of
// a cancellation, the sequential engines within a few dozen range queries;
// on cancellation the error is ctx.Err() and no result is returned.
func ClusterContext(ctx context.Context, points [][]float32, m Method, p Params) (*Result, error) {
	switch m {
	case MethodDBSCAN:
		return DBSCANContext(ctx, points, p)
	case MethodDBSCANPP:
		return DBSCANPPContext(ctx, points, p)
	case MethodLAFDBSCAN:
		return LAFDBSCANContext(ctx, points, p)
	case MethodLAFDBSCANPP:
		return LAFDBSCANPPContext(ctx, points, p)
	case MethodKNNBlock:
		return KNNBlockDBSCANContext(ctx, points, p)
	case MethodBlockDBSCAN:
		return BlockDBSCANContext(ctx, points, p)
	case MethodRhoApprox:
		return RhoApproxDBSCANContext(ctx, points, p)
	default:
		return nil, fmt.Errorf("lafdbscan: unknown method %q", m)
	}
}

// ARI returns the Adjusted Rand Index between two labelings.
func ARI(truth, pred []int) (float64, error) { return metrics.ARI(truth, pred) }

// AMI returns the Adjusted Mutual Information score between two labelings.
func AMI(truth, pred []int) (float64, error) { return metrics.AMI(truth, pred) }

// ClusteringStats summarizes a labeling (noise ratio, cluster count/sizes).
type ClusteringStats = metrics.ClusteringStats

// Stats computes the summary of a labeling.
func Stats(labels []int) ClusteringStats { return metrics.Stats(labels) }

// MissedClusterStats reports the paper's Table 6 fully-missed-cluster
// analysis.
type MissedClusterStats = metrics.MissedClusterStats

// MissedClusters compares a predicted labeling against ground truth.
func MissedClusters(truth, pred []int) (MissedClusterStats, error) {
	return metrics.MissedClusters(truth, pred)
}
