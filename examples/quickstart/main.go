// Quickstart: the full LAF-DBSCAN pipeline in one file.
//
// Generates a synthetic high-dimensional embedding dataset, splits it 8:2
// (the paper's protocol), trains the learned cardinality estimator on the
// training split, then clusters the test split three ways — exact DBSCAN,
// LAF-DBSCAN and LAF-DBSCAN++ — and compares time and quality.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lafdbscan"
)

func main() {
	log.SetFlags(0)

	// 1. Data: a 768-dimensional passage-embedding-style dataset.
	data := lafdbscan.MSLike(2000, 1)
	train, test, err := lafdbscan.Split(data, 0.8, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d train / %d test, %d dims\n",
		data.Name, train.Len(), test.Len(), test.Dim())

	// 2. Train the learned cardinality estimator (once; reusable across
	//    eps/tau settings because the radius is a model input).
	start := time.Now()
	est, err := lafdbscan.TrainRMIEstimator(train.Vectors, lafdbscan.EstimatorConfig{
		TargetSize: test.Len(),
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimator trained in %v (one-time cost, excluded below)\n\n",
		time.Since(start).Round(time.Millisecond))

	// 3. Cluster the test split.
	params := lafdbscan.Params{Eps: 0.55, Tau: 5, Alpha: 1.5, Estimator: est, SampleFraction: 0.4}

	truth, err := lafdbscan.DBSCAN(test.Vectors, params)
	if err != nil {
		log.Fatal(err)
	}
	report("DBSCAN (ground truth)", truth, truth)

	laf, err := lafdbscan.LAFDBSCAN(test.Vectors, params)
	if err != nil {
		log.Fatal(err)
	}
	report("LAF-DBSCAN", laf, truth)

	lafpp, err := lafdbscan.LAFDBSCANPP(test.Vectors, params)
	if err != nil {
		log.Fatal(err)
	}
	report("LAF-DBSCAN++", lafpp, truth)

	// 4. Fit once, predict forever: the model API retains the fitted
	//    artifacts (cores, forest, index, estimator), so assigning new
	//    points to the existing clusters costs one range query each
	//    instead of a full re-clustering.
	model, err := lafdbscan.Fit(context.Background(), test.Vectors, lafdbscan.MethodLAFDBSCAN,
		lafdbscan.WithEps(0.55), lafdbscan.WithTau(5), lafdbscan.WithAlpha(1.5),
		lafdbscan.WithEstimator(est))
	if err != nil {
		log.Fatal(err)
	}
	incoming := train.Vectors[:200]
	start = time.Now()
	labels, err := model.Predict(context.Background(), incoming)
	if err != nil {
		log.Fatal(err)
	}
	s := lafdbscan.Stats(labels)
	fmt.Printf("\nmodel: %d clusters, %d cores; predicted %d incoming points in %v (%d assigned, %.2f noise)\n",
		model.NumClusters(), model.NumCores(), len(incoming),
		time.Since(start).Round(time.Millisecond), len(incoming)-s.NumNoise, s.NoiseRatio)
}

func report(name string, res, truth *lafdbscan.Result) {
	stats := lafdbscan.Stats(res.Labels)
	fmt.Printf("%-22s %8v  clusters=%-4d noise=%.2f queries=%-5d skipped=%-5d",
		name, res.Elapsed.Round(time.Millisecond), res.NumClusters,
		stats.NoiseRatio, res.RangeQueries, res.SkippedQueries)
	if res != truth {
		ari, _ := lafdbscan.ARI(truth.Labels, res.Labels)
		ami, _ := lafdbscan.AMI(truth.Labels, res.Labels)
		fmt.Printf("  ARI=%.3f AMI=%.3f speedup=%.2fx",
			ari, ami, truth.Elapsed.Seconds()/res.Elapsed.Seconds())
	}
	fmt.Println()
}
