// Passage deduplication: the MS MARCO-style scenario that motivates the
// paper. Dense passage retrieval corpora contain groups of near-duplicate
// passages whose embeddings form tight angular clusters; density clustering
// finds those groups so an index can keep one representative per group.
//
// This example clusters 768-dimensional passage-style embeddings with
// LAF-DBSCAN, then reports the duplicate groups found, their sizes, and how
// much smaller a deduplicated index would be — comparing the learned
// pipeline's cost against exact DBSCAN.
//
//	go run ./examples/passages
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"lafdbscan"
)

func main() {
	log.SetFlags(0)

	// A passage corpus with heavy-tailed duplicate-group sizes: a few
	// boilerplate passages repeated many times plus a long tail of small
	// groups — the SizeSkew knob of the generator.
	corpus := lafdbscan.GenerateMixture("passages", lafdbscan.MixtureConfig{
		N: 2500, Dim: 768, Clusters: 60,
		MinSpread: 0.1, MaxSpread: 0.5,
		NoiseFrac: 0.4, // unique passages that belong to no duplicate group
		SizeSkew:  1.5,
		Seed:      7,
	})
	train, index, err := lafdbscan.Split(corpus, 0.8, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d passages to index, %d for estimator training\n",
		index.Len(), train.Len())

	est, err := lafdbscan.TrainRMIEstimator(train.Vectors, lafdbscan.EstimatorConfig{
		TargetSize: index.Len(), Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Near-duplicates sit within cosine distance 0.4 of each other; a group
	// needs at least 3 members to be worth deduplicating.
	params := lafdbscan.Params{Eps: 0.4, Tau: 3, Alpha: 1.5, Estimator: est}

	res, err := lafdbscan.LAFDBSCAN(index.Vectors, params)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := lafdbscan.DBSCAN(index.Vectors, params)
	if err != nil {
		log.Fatal(err)
	}

	stats := lafdbscan.Stats(res.Labels)
	sizes := make([]int, 0, len(stats.Sizes))
	saved := 0
	for _, sz := range stats.Sizes {
		sizes = append(sizes, sz)
		saved += sz - 1 // keep one representative per group
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))

	ari, _ := lafdbscan.ARI(truth.Labels, res.Labels)
	fmt.Printf("\nLAF-DBSCAN found %d duplicate groups in %v (DBSCAN: %v, %.2fx)\n",
		res.NumClusters, res.Elapsed.Round(time.Millisecond),
		truth.Elapsed.Round(time.Millisecond),
		truth.Elapsed.Seconds()/res.Elapsed.Seconds())
	fmt.Printf("agreement with exact DBSCAN: ARI=%.3f\n", ari)
	fmt.Printf("range queries: %d executed, %d skipped by the estimator\n",
		res.RangeQueries, res.SkippedQueries)
	top := sizes
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Printf("largest duplicate groups: %v\n", top)
	fmt.Printf("index shrinks by %d passages (%.1f%%) after deduplication\n",
		saved, 100*float64(saved)/float64(index.Len()))
}
