// Word-embedding concept discovery: the GloVe-style scenario. Word vectors
// trained on tweets form angular clusters of related words (topics, named
// entities, spam patterns); density clustering surfaces them without fixing
// the number of concepts in advance, and noise points are simply rare
// words.
//
// The example also demonstrates LAF's speed-quality dial: the same
// clustering runs at several error factors alpha, showing time falling and
// divergence from exact DBSCAN growing as alpha rises — the mechanism
// behind the paper's trade-off curves (Figures 2 and 3).
//
//	go run ./examples/words
package main

import (
	"fmt"
	"log"
	"time"

	"lafdbscan"
)

func main() {
	log.SetFlags(0)

	vocab := lafdbscan.GloVeLike(3000, 11)
	train, words, err := lafdbscan.Split(vocab, 0.8, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vocabulary: %d word vectors (%d dims), %d reserved for training\n",
		words.Len(), words.Dim(), train.Len())

	est, err := lafdbscan.TrainRMIEstimator(train.Vectors, lafdbscan.EstimatorConfig{
		TargetSize: words.Len(), Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	base := lafdbscan.Params{Eps: 0.5, Tau: 4, Estimator: est}
	truth, err := lafdbscan.DBSCAN(words.Vectors, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact DBSCAN: %d concepts, %v\n\n",
		truth.NumClusters, truth.Elapsed.Round(time.Millisecond))

	fmt.Printf("%-8s %10s %10s %9s %8s %8s\n",
		"alpha", "time", "speedup", "concepts", "ARI", "AMI")
	for _, alpha := range []float64{1.0, 1.5, 2.5, 4.0, 8.0} {
		p := base
		p.Alpha = alpha
		res, err := lafdbscan.LAFDBSCAN(words.Vectors, p)
		if err != nil {
			log.Fatal(err)
		}
		ari, _ := lafdbscan.ARI(truth.Labels, res.Labels)
		ami, _ := lafdbscan.AMI(truth.Labels, res.Labels)
		fmt.Printf("%-8.1f %10v %9.2fx %9d %8.3f %8.3f\n",
			alpha, res.Elapsed.Round(time.Millisecond),
			truth.Elapsed.Seconds()/res.Elapsed.Seconds(),
			res.NumClusters, ari, ami)
	}
	fmt.Println("\nhigher alpha => more skipped range queries => faster, lower fidelity")
}
