// Trade-off curves as CSV: regenerates the data behind the paper's Figures
// 2 and 3 (speed-quality trade-off of every approximate method) and emits
// it as CSV on stdout, ready for plotting:
//
//	go run ./examples/tradeoff > tradeoff.csv
//
// Columns: dataset, method, knob, ami, seconds. Dataset scales follow
// LAF_BENCH_SCALE (small when unset).
package main

import (
	"encoding/csv"
	"fmt"
	"log"
	"os"

	"lafdbscan/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tradeoff: ")
	w := bench.NewWorkbench(bench.DefaultConfig())
	cw := csv.NewWriter(os.Stdout)
	defer cw.Flush()
	if err := cw.Write([]string{"dataset", "method", "knob", "ami", "seconds"}); err != nil {
		log.Fatal(err)
	}
	for _, key := range []string{bench.KeyMSLarge, bench.KeyGlove} {
		log.Printf("sweeping %s (this runs every method at five knob settings)...", key)
		pts, err := w.Tradeoff(key)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pts {
			rec := []string{
				key, p.Method, p.Knob,
				fmt.Sprintf("%.4f", p.AMI),
				fmt.Sprintf("%.3f", p.Elapsed.Seconds()),
			}
			if err := cw.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
	}
}
