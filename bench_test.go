package lafdbscan

// This file is the repository-level benchmark harness: one testing.B target
// per table and figure of the paper's evaluation section. Each benchmark
// regenerates its experiment through internal/bench and prints the
// paper-style rows on its first iteration, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Dataset scales are laptop stand-ins for
// the paper's 50k-150k corpora (LAF_BENCH_SCALE=medium|large grows them);
// the reproduction target is the shape of the results, not absolute
// seconds — see docs/BENCHMARKS.md for the methodology.
//
// Experiments run through a shared workbench so datasets, estimators and
// DBSCAN ground truths are built once. Run with -benchtime=1x for a single
// clean regeneration pass.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"lafdbscan/internal/bench"
	"lafdbscan/internal/trace"
)

var (
	wbOnce sync.Once
	wb     *bench.Workbench
)

func workbench() *bench.Workbench {
	wbOnce.Do(func() {
		wb = bench.NewWorkbench(bench.DefaultConfig())
	})
	return wb
}

// printOnce guards each benchmark's table output so repeated iterations
// do not spam stdout.
var printOnce sync.Map

func oncePer(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

func BenchmarkTable1DatasetInfo(b *testing.B) {
	w := workbench()
	for i := 0; i < b.N; i++ {
		rows := w.Table1()
		oncePer("t1", func() { bench.FprintTable1(os.Stdout, rows) })
	}
}

func BenchmarkTable2NoiseGrid(b *testing.B) {
	w := workbench()
	for i := 0; i < b.N; i++ {
		cells, err := w.Table2()
		if err != nil {
			b.Fatal(err)
		}
		oncePer("t2", func() { bench.FprintTable2(os.Stdout, cells, w.MSKeys()) })
	}
}

func BenchmarkTable3Quality(b *testing.B) {
	w := workbench()
	for i := 0; i < b.N; i++ {
		rows, err := w.Table3()
		if err != nil {
			b.Fatal(err)
		}
		oncePer("t3", func() {
			bench.FprintQuality(os.Stdout,
				"Table 3: clustering quality on the three largest datasets", rows, w.LargestKeys())
		})
	}
}

func BenchmarkTable4RhoApprox(b *testing.B) {
	w := workbench()
	for i := 0; i < b.N; i++ {
		rows, err := w.Table4()
		if err != nil {
			b.Fatal(err)
		}
		oncePer("t4", func() { bench.FprintTable4(os.Stdout, rows, w.MSKeys()) })
	}
}

func BenchmarkTable5Scalability(b *testing.B) {
	w := workbench()
	for i := 0; i < b.N; i++ {
		rows, err := w.Table5()
		if err != nil {
			b.Fatal(err)
		}
		oncePer("t5", func() {
			bench.FprintQuality(os.Stdout,
				"Table 5: clustering quality across dataset scales (eps=0.55, tau=5)", rows, w.MSKeys())
		})
	}
}

func BenchmarkTable6MissedClusters(b *testing.B) {
	w := workbench()
	for i := 0; i < b.N; i++ {
		rows, err := w.Table6()
		if err != nil {
			b.Fatal(err)
		}
		oncePer("t6", func() { bench.FprintTable6(os.Stdout, rows) })
	}
}

func BenchmarkFigure1Time(b *testing.B) {
	w := workbench()
	for i := 0; i < b.N; i++ {
		rows, err := w.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		oncePer("f1", func() {
			bench.FprintTimes(os.Stdout,
				"Figure 1: clustering time on the three largest datasets", rows, w.LargestKeys())
		})
	}
}

func BenchmarkFigure2TradeoffMS(b *testing.B) {
	w := workbench()
	for i := 0; i < b.N; i++ {
		pts, err := w.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		oncePer("f2", func() {
			bench.FprintTradeoff(os.Stdout,
				"Figure 2: speed-quality trade-off on MS-like (eps=0.5, tau=3)", pts)
		})
	}
}

func BenchmarkFigure3TradeoffGlove(b *testing.B) {
	w := workbench()
	for i := 0; i < b.N; i++ {
		pts, err := w.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		oncePer("f3", func() {
			bench.FprintTradeoff(os.Stdout,
				"Figure 3: speed-quality trade-off on GloVe-like (eps=0.5, tau=3)", pts)
		})
	}
}

func BenchmarkFigure4Scaling(b *testing.B) {
	w := workbench()
	for i := 0; i < b.N; i++ {
		rows, err := w.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		oncePer("f4", func() { bench.FprintFigure4(os.Stdout, rows, w.MSKeys()) })
	}
}

// --- Ablation benchmarks (isolating the paper's design choices) ---------

// BenchmarkAblationPostProcessing isolates the cost and benefit of LAF's
// repair pass: LAF-DBSCAN with and without Algorithm 3.
func BenchmarkAblationPostProcessing(b *testing.B) {
	d := GenerateMixture("ablate-pp", MixtureConfig{
		N: 600, Dim: 64, Clusters: 8, MinSpread: 0.25, MaxSpread: 0.5,
		NoiseFrac: 0.25, Seed: 71,
	})
	est := ExactEstimator(d.Vectors)
	for _, on := range []bool{true, false} {
		name := "with"
		if !on {
			name = "without"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := LAFDBSCAN(d.Vectors, Params{
					Eps: 0.5, Tau: 4, Alpha: 2.0, Estimator: est,
					DisablePostProcessing: !on,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEstimators compares LAF-DBSCAN under the learned RMI
// estimator, the exact oracle, and the two traditional baselines — the
// "impact of the cardinality estimator" study the paper defers to future
// work.
func BenchmarkAblationEstimators(b *testing.B) {
	d := GenerateMixture("ablate-est", MixtureConfig{
		N: 800, Dim: 64, Clusters: 8, MinSpread: 0.25, MaxSpread: 0.5,
		NoiseFrac: 0.25, Seed: 72,
	})
	train, test, err := Split(d, 0.8, 73)
	if err != nil {
		b.Fatal(err)
	}
	rmiEst, err := TrainRMIEstimator(train.Vectors, EstimatorConfig{
		TargetSize: test.Len(), Hidden: []int{24, 12}, Epochs: 15,
		MaxQueries: 150, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ests := []struct {
		name string
		e    Estimator
	}{
		{"rmi", rmiEst},
		{"exact", ExactEstimator(test.Vectors)},
		{"sampling", SamplingEstimator(test.Vectors, test.Len()/5, 1)},
		{"histogram", HistogramEstimator(test.Vectors, 20, 1)},
	}
	truth, err := DBSCAN(test.Vectors, Params{Eps: 0.5, Tau: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range ests {
		b.Run(e.name, func(b *testing.B) {
			var lastARI float64
			for i := 0; i < b.N; i++ {
				res, err := LAFDBSCAN(test.Vectors, Params{
					Eps: 0.5, Tau: 4, Alpha: 1.5, Estimator: e.e,
				})
				if err != nil {
					b.Fatal(err)
				}
				lastARI, _ = ARI(truth.Labels, res.Labels)
			}
			b.ReportMetric(lastARI, "ARI")
		})
	}
}

// BenchmarkParallelDBSCAN compares the sequential DBSCAN driver against the
// parallel engine at 1, 4 and NumCPU workers on the synthetic benchmark
// datasets. The parallel engine's labels are identical to the sequential
// driver's (asserted on the first iteration), so the timing difference is
// pure engine overhead/speedup. On a multi-core machine the NumCPU
// configuration is expected to run >= 2x faster than the sequential driver;
// with a single core the parallel engine should roughly tie.
func BenchmarkParallelDBSCAN(b *testing.B) {
	d := GenerateMixture("par-bench", MixtureConfig{
		N: 2500, Dim: 256, Clusters: 20, MinSpread: 0.2, MaxSpread: 0.6,
		NoiseFrac: 0.2, SizeSkew: 1.1, EffectiveDim: 48, Seed: 77,
	})
	p := Params{Eps: 0.5, Tau: 4}
	seq, err := DBSCAN(d.Vectors, p)
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := benchWorkerCounts()
	for _, wkr := range workerCounts {
		pp := p
		pp.Workers = wkr
		res, err := DBSCAN(d.Vectors, pp)
		if err != nil {
			b.Fatal(err)
		}
		if ari, _ := ARI(seq.Labels, res.Labels); ari != 1.0 {
			b.Fatalf("workers=%d: ARI vs sequential = %v, want 1.0", wkr, ari)
		}
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DBSCAN(d.Vectors, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, wkr := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", wkr), func(b *testing.B) {
			b.ReportAllocs()
			pp := p
			pp.Workers = wkr
			for i := 0; i < b.N; i++ {
				if _, err := DBSCAN(d.Vectors, pp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The buffer-everything engine at the largest worker count, so every
	// -benchmem run (and the CI bench job) shows the wave engine's alloc/op
	// saving next to the engine it replaced.
	b.Run(fmt.Sprintf("workers=%d/buffered", workerCounts[len(workerCounts)-1]), func(b *testing.B) {
		b.ReportAllocs()
		pp := p
		pp.Workers = workerCounts[len(workerCounts)-1]
		pp.WaveSize = -1
		for i := 0; i < b.N; i++ {
			if _, err := DBSCAN(d.Vectors, pp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelLAFDBSCAN is the same comparison for the LAF fast path:
// the learned gate plus the parallel engine, against the paper's sequential
// formulation.
func BenchmarkParallelLAFDBSCAN(b *testing.B) {
	d := GenerateMixture("par-laf-bench", MixtureConfig{
		N: 2500, Dim: 256, Clusters: 20, MinSpread: 0.2, MaxSpread: 0.6,
		NoiseFrac: 0.2, SizeSkew: 1.1, EffectiveDim: 48, Seed: 78,
	})
	p := Params{Eps: 0.5, Tau: 4, Alpha: 1.2, Estimator: ExactEstimator(d.Vectors), Seed: 1}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LAFDBSCAN(d.Vectors, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, wkr := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", wkr), func(b *testing.B) {
			b.ReportAllocs()
			pp := p
			pp.Workers = wkr
			for i := 0; i < b.N; i++ {
				if _, err := LAFDBSCAN(d.Vectors, pp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWaveEngineMemory is the memory-bound benchmark the CI bench job
// gates on together with the parallel benchmarks above: the wave engine at
// two wave sizes against the buffer-everything engine on the same workload.
// -benchmem supplies the alloc/op numbers benchstat and cmd/benchguard
// compare; in addition each configuration is measured once with
// bench.MeasureMem (exact cumulative allocations plus a sampled live-heap
// high-water mark) and, when LAF_BENCH_JSON names a file, the samples are
// written there as the machine-readable BENCH_*.json artifact.
func BenchmarkWaveEngineMemory(b *testing.B) {
	const n, dim = 2000, 128
	d := GenerateMixture("wave-mem-bench", MixtureConfig{
		N: n, Dim: dim, Clusters: 16, MinSpread: 0.2, MaxSpread: 0.6,
		NoiseFrac: 0.2, SizeSkew: 1.1, EffectiveDim: 48, Seed: 79,
	})
	p := Params{Eps: 0.5, Tau: 4, Workers: 2}
	configs := []struct {
		name string
		wave int
	}{
		{"buffered", -1},
		{"wave=256", 256},
		{"wave=1024", 1024},
	}
	report := bench.BenchReport{Suite: "BenchmarkWaveEngineMemory"}
	for _, c := range configs {
		pp := p
		pp.WaveSize = c.wave
		start := time.Now()
		sample := bench.MeasureMem(func() {
			if _, err := DBSCAN(d.Vectors, pp); err != nil {
				b.Fatal(err)
			}
		})
		report.Records = append(report.Records, bench.BenchRecord{
			Name: c.name, N: n, Dim: dim,
			Workers: pp.Workers, WaveSize: c.wave,
			Mem: sample, ElapsedNs: time.Since(start).Nanoseconds(),
		})
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DBSCAN(d.Vectors, pp); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sample.PeakExtraBytes), "peak-B")
		})
	}
	if path := os.Getenv("LAF_BENCH_JSON"); path != "" {
		if err := bench.WriteBenchJSON(path, report); err != nil {
			b.Fatalf("writing %s: %v", path, err)
		}
		b.Logf("wrote %s", path)
	}
}

// BenchmarkModelPredict measures the model API's whole value proposition:
// per-point prediction cost is O(one range query) against the training
// index, where the pre-model API re-clustered the entire dataset for every
// new batch. Sub-benchmarks sweep batch sizes 1/100/10k (fixed-cost
// amortization at the small end, wave-engine throughput at the large end)
// next to the re-clustering alternative for the 100-point batch; setup
// additionally asserts the >= 10x predict-vs-recluster gap once per run.
// The CI bench job gates allocs/op on all of them via benchguard.
func BenchmarkModelPredict(b *testing.B) {
	const n, dim = 2000, 64
	cfg := MixtureConfig{
		N: n, Dim: dim, Clusters: 12, MinSpread: 0.2, MaxSpread: 0.5,
		NoiseFrac: 0.2, Seed: 81,
	}
	train := GenerateMixture("predict-bench-train", cfg)
	heldCfg := cfg
	heldCfg.N, heldCfg.Seed = 10000, 82
	held := GenerateMixture("predict-bench-held", heldCfg)

	model, err := Fit(context.Background(), train.Vectors, MethodDBSCAN,
		WithEps(0.5), WithTau(4), WithWorkers(2))
	if err != nil {
		b.Fatal(err)
	}

	// Reported, not gated: the CI bench job only gates allocs/op (see
	// ci.yml); the hard >= 10x predict-vs-recluster assertion lives in
	// TestPredictSpeedupOverRecluster, outside the bench job.
	predictBatch := held.Vectors[:100]
	reclustered := append(append([][]float32{}, train.Vectors...), predictBatch...)
	start := time.Now()
	if _, err := model.Predict(context.Background(), predictBatch); err != nil {
		b.Fatal(err)
	}
	predictT := time.Since(start)
	start = time.Now()
	if _, err := DBSCAN(reclustered, Params{Eps: 0.5, Tau: 4, Workers: 2}); err != nil {
		b.Fatal(err)
	}
	reclusterT := time.Since(start)
	b.Logf("predict 100: %v, re-cluster %d: %v (%.1fx)",
		predictT, len(reclustered), reclusterT, reclusterT.Seconds()/predictT.Seconds())

	for _, size := range []int{1, 100, 10000} {
		batch := held.Vectors[:size]
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := model.Predict(context.Background(), batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("recluster-100", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DBSCAN(reclustered, Params{Eps: 0.5, Tau: 4, Workers: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchWorkerCounts is the 1/4/NumCPU sweep of the parallel benchmarks,
// deduplicated for machines where those coincide.
func benchWorkerCounts() []int {
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	out := counts[:0]
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// BenchmarkRangeQuery measures the raw cost LAF amortizes away: one
// brute-force cosine range query per iteration at the paper's dimensions.
func BenchmarkRangeQuery(b *testing.B) {
	for _, dim := range []int{200, 256, 768} {
		d := GenerateMixture("rq", MixtureConfig{
			N: 2000, Dim: dim, Clusters: 10, NoiseFrac: 0.2, Seed: 74,
		})
		est := ExactEstimator(d.Vectors)
		b.Run(fmt.Sprintf("dim%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est.Estimate(d.Vectors[i%d.Len()], 0.5)
			}
		})
	}
}

// BenchmarkSpanRecord measures the tracing kernel's per-request overhead —
// the cost internal/serve adds to every HTTP request. Three regimes:
// "disabled" (tracing off) and "unsampled" (1-in-N sampling, this request
// missed) must stay allocation-free — the CI bench gate pins both at 0
// allocs/op — because they are the price every request pays for tracing
// merely existing; "sampled" is the full root + child + ring-record path a
// traced request pays.
func BenchmarkSpanRecord(b *testing.B) {
	base := context.Background()
	span3 := func(tr *trace.Tracer) {
		ctx, root := tr.Root(base, "req")
		ctx, child := trace.Start(ctx, "op")
		child.Annotate(trace.Str("k", "v"))
		child.Finish()
		_, grand := trace.Start(ctx, "sub")
		grand.Finish()
		root.Finish()
	}
	b.Run("disabled", func(b *testing.B) {
		tr := trace.New(1024, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			span3(tr)
		}
	})
	b.Run("unsampled", func(b *testing.B) {
		// Sampling 1-in-2^31: after the first root, every iteration takes
		// the miss path — one atomic add, no allocation. Deterministic
		// sampling always keeps root #1, so burn it before the timer or a
		// short -benchtime run would report its allocations.
		tr := trace.New(1024, 1<<31)
		span3(tr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			span3(tr)
		}
	})
	b.Run("sampled", func(b *testing.B) {
		tr := trace.New(1024, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			span3(tr)
		}
	})
}

// BenchmarkEstimatorPredict measures one RMI forward pass — the unit of
// work LAF substitutes for a range query.
func BenchmarkEstimatorPredict(b *testing.B) {
	d := GenerateMixture("ep", MixtureConfig{
		N: 400, Dim: 768, Clusters: 8, NoiseFrac: 0.2, Seed: 75,
	})
	est, err := TrainRMIEstimator(d.Vectors, EstimatorConfig{
		Hidden: []int{32, 16}, Epochs: 5, MaxQueries: 50, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Estimate(d.Vectors[i%d.Len()], 0.5)
	}
}
