// Command datagen writes synthetic evaluation datasets to disk in the
// repository's binary format, for use with cmd/lafcluster or external
// tooling.
//
// Usage:
//
//	datagen -family ms -n 4000 -seed 1 -out ms-4k.lafd
//	datagen -family glove -n 4000 -out glove-4k.lafd
//	datagen -family nyt -n 4000 -out nyt-4k.lafd
//	datagen -family mixture -n 2000 -dim 128 -clusters 20 -noise 0.3 -out custom.lafd
package main

import (
	"flag"
	"log"

	"lafdbscan/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	var (
		family   = flag.String("family", "ms", "dataset family: ms, glove, nyt, mixture")
		n        = flag.Int("n", 4000, "number of points")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output file (required)")
		dim      = flag.Int("dim", 128, "dimension (mixture family only)")
		clusters = flag.Int("clusters", 20, "components (mixture family only)")
		noise    = flag.Float64("noise", 0.25, "noise fraction (mixture family only)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}

	var d *dataset.Dataset
	switch *family {
	case "ms":
		d = dataset.MSLike(*n, *seed)
	case "glove":
		d = dataset.GloVeLike(*n, *seed)
	case "nyt":
		d = dataset.NYTLike(dataset.NYTLikeConfig{N: *n, Seed: *seed, NoiseFrac: 0.15})
	case "mixture":
		d = dataset.GenerateMixture("mixture", dataset.MixtureConfig{
			N: *n, Dim: *dim, Clusters: *clusters, NoiseFrac: *noise,
			MinSpread: 0.25, MaxSpread: 0.8, SizeSkew: 1.2, Seed: *seed,
		})
	default:
		log.Fatalf("unknown family %q (want ms, glove, nyt or mixture)", *family)
	}
	if err := d.Save(*out); err != nil {
		log.Fatalf("saving %s: %v", *out, err)
	}
	log.Printf("wrote %s: %d points, %d dimensions", *out, d.Len(), d.Dim())
}
