// Command lafload is a load generator for lafserve: it drives a mixed
// fit/predict/insert workload against a live server and reports achieved
// throughput and per-operation latency quantiles, machine-readably.
//
// Usage:
//
//	lafload [-url http://localhost:8080] [-duration 10s] [-concurrency 8]
//	        [-rate 0] [-mix predict=90,insert=8,fit=2] [-points 2000]
//	        [-kind ms] [-eps 0.55] [-tau 5] [-seed 1] [-json report.json]
//
// With -rate 0 (the default) the run is closed-loop: each of the
// -concurrency workers issues its next request as soon as the previous one
// answers, so the achieved QPS is the server's capacity at that
// concurrency. With -rate N the run is open-loop: arrivals are scheduled
// at N requests/second independent of responses, and each sample's
// latency is measured from its scheduled arrival — queueing delay counts,
// so a saturated server shows up as growing latency rather than being
// hidden by coordinated omission.
//
// Setup registers a synthetic dataset and fits one model; the workload
// then mixes POST predict (sync), POST insert (async, 202; 429 counts as
// backpressure, not error) and full fit+delete cycles per -mix. The JSON
// report (see docs/OPERATIONS.md for the schema and a runbook) is written
// to -json; a human summary always goes to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lafload: ")
	var cfg config
	flag.StringVar(&cfg.URL, "url", "http://localhost:8080", "base URL of the lafserve instance")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "measurement window")
	flag.IntVar(&cfg.Concurrency, "concurrency", 8, "concurrent workers")
	flag.Float64Var(&cfg.Rate, "rate", 0, "target request rate per second (0 = closed loop)")
	flag.StringVar(&cfg.Mix, "mix", "predict=90,insert=8,fit=2", "operation mix as name=weight pairs")
	flag.IntVar(&cfg.Points, "points", 2000, "synthetic dataset size the model is fitted on")
	flag.StringVar(&cfg.Kind, "kind", "ms", "synthetic dataset kind (ms, glove, nyt)")
	flag.Float64Var(&cfg.Eps, "eps", 0.55, "clustering eps for the fitted model")
	flag.IntVar(&cfg.Tau, "tau", 5, "clustering tau (minPts) for the fitted model")
	flag.Int64Var(&cfg.Seed, "seed", 1, "seed for synthetic data and workload choices")
	flag.DurationVar(&cfg.Timeout, "timeout", 30*time.Second, "per-request timeout")
	jsonPath := flag.String("json", "", "write the JSON report here (\"-\" for stdout)")
	flag.Parse()
	if err := cfg.validate(); err != nil {
		log.Print(err)
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
	if *jsonPath != "" {
		data, err := rep.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if *jsonPath == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if rep.Total.Errors > 0 {
		os.Exit(1)
	}
}
