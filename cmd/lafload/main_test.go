package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"lafdbscan/internal/serve"
)

// startServer boots an in-process lafserve over httptest — the same
// handler the binary serves, so the generator is tested against the real
// API surface.
func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := serve.NewServer(serve.Options{Workers: 2, QueueDepth: 8})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func testConfig(url string) config {
	return config{
		URL:         url,
		Duration:    1500 * time.Millisecond,
		Concurrency: 3,
		Mix:         "predict=80,insert=15,fit=5",
		Points:      150,
		Kind:        "ms",
		Eps:         0.55,
		Tau:         5,
		Seed:        1,
		Timeout:     30 * time.Second,
	}
}

// TestClosedLoopRun drives a short closed-loop run end to end and checks
// the report's structure: every op class present, zero errors, ordered
// quantiles, and a round-trippable JSON encoding.
func TestClosedLoopRun(t *testing.T) {
	ts := startServer(t)
	cfg := testConfig(ts.URL)
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}

	rep, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Count == 0 {
		t.Fatal("run produced no samples")
	}
	if rep.Total.Errors != 0 {
		t.Errorf("run produced %d errors (healthy server, want 0)", rep.Total.Errors)
	}
	pred, ok := rep.Ops[opPredict]
	if !ok || pred.Count == 0 {
		t.Fatalf("no predict samples in %v", rep.Ops)
	}
	l := pred.Latency
	if !(l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.P999 && l.P999 <= l.Max) {
		t.Errorf("predict quantiles out of order: %+v", l)
	}
	if l.P50 <= 0 || l.Max <= 0 {
		t.Errorf("predict latencies not positive: %+v", l)
	}
	if rep.Total.QPS <= 0 {
		t.Errorf("total qps = %v, want > 0", rep.Total.QPS)
	}

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Ops[opPredict].Count != pred.Count {
		t.Errorf("round-trip lost predict count: %d != %d", back.Ops[opPredict].Count, pred.Count)
	}
	if s := rep.Summary(); s == "" {
		t.Error("empty human summary")
	}
	t.Logf("\n%s", rep.Summary())
}

// TestOpenLoopRun exercises the rate-paced path: arrivals are scheduled,
// latency includes queue wait, and the dropped counter stays coherent.
func TestOpenLoopRun(t *testing.T) {
	ts := startServer(t)
	cfg := testConfig(ts.URL)
	cfg.Rate = 40
	cfg.Mix = "predict=100"
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}

	rep, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Count == 0 {
		t.Fatal("open-loop run produced no samples")
	}
	if rep.Total.Errors != 0 {
		t.Errorf("open-loop run produced %d errors", rep.Total.Errors)
	}
	// 40 req/s over ~1.5s: the sample count must be in the schedule's
	// neighborhood, never wildly above it (closed-loop leakage).
	if rep.Total.Count > 90 {
		t.Errorf("open-loop run produced %d samples, want ~60 (rate-paced)", rep.Total.Count)
	}
}

// TestMixParsing pins the mix grammar and its rejections.
func TestMixParsing(t *testing.T) {
	if _, err := parseMix("predict=90,insert=8,fit=2"); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	if _, err := parseMix("predict=100"); err != nil {
		t.Errorf("single-op mix rejected: %v", err)
	}
	for _, bad := range []string{"", "foo=1", "predict", "predict=0,insert=0", "predict=-1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted, want error", bad)
		}
	}
}

// TestAggregateSuccessOnlyLatency pins the aggregation rule the benchguard
// load gate depends on: latency quantiles cover successful samples only,
// so fast rejections can't deflate p99 and timed-out errors can't inflate
// it across runs with different backpressure mixes.
func TestAggregateSuccessOnlyLatency(t *testing.T) {
	ss := []sample{
		{op: opPredict, ms: 10},
		{op: opPredict, ms: 20},
		{op: opPredict, ms: 30},
		{op: opPredict, ms: 0.1, rejected: true}, // fast 429
		{op: opPredict, ms: 5000, err: true},     // timeout
	}
	r := aggregate(ss, time.Second)
	if r.Count != 5 || r.Errors != 1 || r.Rejected != 1 {
		t.Fatalf("counts = %d/%d/%d, want 5/1/1", r.Count, r.Errors, r.Rejected)
	}
	l := r.Latency
	if l.P50 != 20 {
		t.Errorf("p50 = %v, want 20 (success-only median)", l.P50)
	}
	if l.Max != 30 {
		t.Errorf("max = %v, want 30 — the 5000ms timeout leaked into the distribution", l.Max)
	}
	if l.Mean != 20 {
		t.Errorf("mean = %v, want 20", l.Mean)
	}
	// All-failed classes report zero latency rather than rejection timing.
	r = aggregate([]sample{{op: opFit, ms: 0.2, rejected: true}}, time.Second)
	if r.Latency.Max != 0 || r.Latency.P50 != 0 {
		t.Errorf("all-rejected latency = %+v, want zeros", r.Latency)
	}
}

// TestQuantile pins the interpolation against hand-computed values.
func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.9, 9.1},
	} {
		if got := quantile(sorted, tc.q); got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Errorf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(empty) = %v, want 0", got)
	}
}
