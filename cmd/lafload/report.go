package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report is lafload's machine-readable output. The schema is consumed by
// cmd/benchguard's -load-baseline gate and documented in
// docs/OPERATIONS.md — extend it additively.
type Report struct {
	GeneratedAt string              `json:"generated_at"`
	Config      config              `json:"config"`
	ElapsedS    float64             `json:"elapsed_s"`
	Dropped     int64               `json:"dropped_arrivals,omitempty"`
	Total       OpReport            `json:"total"`
	Ops         map[string]OpReport `json:"ops"`
}

// OpReport aggregates one operation class (or the whole run, for Total).
type OpReport struct {
	Count    int           `json:"count"`
	Errors   int           `json:"errors"`
	Rejected int           `json:"rejected"`
	QPS      float64       `json:"qps"`
	Latency  LatencyReport `json:"latency_ms"`
	// WorstSamples are the slowest successful requests of the class,
	// latency-descending — histogram exemplars for the quantiles above.
	// Each trace ID resolves at GET /v1/traces?trace=<id> (while it lasts
	// in the server's ring) to the request's span tree, so a regressed p99
	// gate points directly at inspectable traces. An empty trace_id means
	// the server didn't sample that request.
	WorstSamples []WorstSample `json:"worst_samples,omitempty"`
}

// WorstSample links one slow request to its server-side trace.
type WorstSample struct {
	TraceID string  `json:"trace_id,omitempty"`
	Ms      float64 `json:"ms"`
}

// maxWorstSamples bounds the exemplars kept per op class.
const maxWorstSamples = 5

// LatencyReport holds exact quantiles over the successful samples only, in
// milliseconds — errored and rejected (429/409) requests are counted but
// excluded, so a fast rejection can't deflate p99 and a timeout can't
// inflate it, and benchguard's load gate compares like with like across
// runs with different backpressure mixes. Open-loop runs include queueing
// delay from the scheduled arrival; closed-loop runs measure the request
// alone.
type LatencyReport struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func buildReport(cfg config, samples []sample, dropped int64, elapsed time.Duration) *Report {
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Config:      cfg,
		ElapsedS:    elapsed.Seconds(),
		Dropped:     dropped,
		Ops:         make(map[string]OpReport),
	}
	byOp := make(map[string][]sample)
	for _, s := range samples {
		byOp[s.op] = append(byOp[s.op], s)
	}
	for op, ss := range byOp {
		rep.Ops[op] = aggregate(ss, elapsed)
	}
	rep.Total = aggregate(samples, elapsed)
	return rep
}

func aggregate(ss []sample, elapsed time.Duration) OpReport {
	r := OpReport{Count: len(ss)}
	lats := make([]float64, 0, len(ss))
	var worst []sample
	sum := 0.0
	for _, s := range ss {
		switch {
		case s.err:
			r.Errors++
		case s.rejected:
			r.Rejected++
		default:
			lats = append(lats, s.ms)
			sum += s.ms
			worst = append(worst, s)
		}
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].ms > worst[j].ms })
	if len(worst) > maxWorstSamples {
		worst = worst[:maxWorstSamples]
	}
	for _, s := range worst {
		r.WorstSamples = append(r.WorstSamples, WorstSample{TraceID: s.trace, Ms: s.ms})
	}
	if elapsed > 0 {
		r.QPS = float64(len(ss)) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		r.Latency = LatencyReport{
			P50:  quantile(lats, 0.50),
			P90:  quantile(lats, 0.90),
			P99:  quantile(lats, 0.99),
			P999: quantile(lats, 0.999),
			Mean: sum / float64(len(lats)),
			Max:  lats[len(lats)-1],
		}
	}
	return r
}

// JSON renders the report indented, ending in a newline.
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Summary renders the human-readable table printed after every run.
func (r *Report) Summary() string {
	var b strings.Builder
	mode := "closed-loop"
	if r.Config.Rate > 0 {
		mode = fmt.Sprintf("open-loop @ %g req/s", r.Config.Rate)
	}
	fmt.Fprintf(&b, "lafload: %s, %d workers, %.1fs against %s\n",
		mode, r.Config.Concurrency, r.ElapsedS, r.Config.URL)
	fmt.Fprintf(&b, "%-8s %8s %8s %6s %6s %9s %9s %9s %9s\n",
		"op", "count", "qps", "err", "rej", "p50ms", "p99ms", "p999ms", "maxms")
	row := func(name string, o OpReport) {
		fmt.Fprintf(&b, "%-8s %8d %8.1f %6d %6d %9.2f %9.2f %9.2f %9.2f\n",
			name, o.Count, o.QPS, o.Errors, o.Rejected,
			o.Latency.P50, o.Latency.P99, o.Latency.P999, o.Latency.Max)
	}
	ops := make([]string, 0, len(r.Ops))
	for op := range r.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		row(op, r.Ops[op])
	}
	row("total", r.Total)
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "dropped arrivals: %d (server could not keep up with -rate)\n", r.Dropped)
	}
	if ws := r.Total.WorstSamples; len(ws) > 0 && ws[0].TraceID != "" {
		fmt.Fprintf(&b, "slowest request: %.2fms, trace %s (GET /v1/traces?trace=%s)\n",
			ws[0].Ms, ws[0].TraceID, ws[0].TraceID)
	}
	return b.String()
}
