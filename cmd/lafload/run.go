package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// config is one load run, fully specified — the report embeds it so a
// stored JSON file documents how it was produced.
type config struct {
	URL         string        `json:"url"`
	Duration    time.Duration `json:"-"`
	DurationS   float64       `json:"duration_s"`
	Concurrency int           `json:"concurrency"`
	Rate        float64       `json:"rate"`
	Mix         string        `json:"mix"`
	Points      int           `json:"points"`
	Kind        string        `json:"kind"`
	Eps         float64       `json:"eps"`
	Tau         int           `json:"tau"`
	Seed        int64         `json:"seed"`
	Timeout     time.Duration `json:"-"`
}

func (c *config) validate() error {
	if c.Concurrency < 1 {
		return errors.New("concurrency must be >= 1")
	}
	if c.Duration <= 0 {
		return errors.New("duration must be positive")
	}
	if c.Points < 50 {
		return errors.New("points must be >= 50 (the fit needs a dataset)")
	}
	if c.Rate < 0 {
		return errors.New("rate must be >= 0")
	}
	if _, err := parseMix(c.Mix); err != nil {
		return err
	}
	c.DurationS = c.Duration.Seconds()
	return nil
}

// Operation classes of the mixed workload.
const (
	opPredict = "predict"
	opInsert  = "insert"
	opFit     = "fit"
)

// parseMix turns "predict=90,insert=8,fit=2" into cumulative weights for
// sampling. Unknown names and non-positive totals are rejected.
func parseMix(s string) ([]struct {
	op  string
	cum int
}, error) {
	known := map[string]bool{opPredict: true, opInsert: true, opFit: true}
	var out []struct {
		op  string
		cum int
	}
	total := 0
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || !known[name] {
			return nil, fmt.Errorf("mix: want predict=N,insert=N,fit=N pairs, got %q", part)
		}
		var weight int
		if _, err := fmt.Sscanf(w, "%d", &weight); err != nil || weight < 0 {
			return nil, fmt.Errorf("mix: bad weight in %q", part)
		}
		total += weight
		out = append(out, struct {
			op  string
			cum int
		}{name, total})
	}
	if total <= 0 {
		return nil, errors.New("mix: weights sum to zero")
	}
	return out, nil
}

// sample is one completed request: class, latency, and how it resolved.
// rejected covers the backpressure statuses (429 full queue or fit slots,
// 409 full model store) — deliberate server behavior, not failures.
// trace is the server's X-Laf-Trace header when the request was sampled —
// the link from a latency outlier in the report to its spans at
// GET /v1/traces?trace=<id>.
type sample struct {
	op       string
	ms       float64
	err      bool
	rejected bool
	trace    string
}

// runner holds everything the workers share: pre-marshaled request bodies
// (so worker CPU goes into driving the server, not into JSON encoding),
// the fitted model's id, and the sampling state.
type runner struct {
	cfg    config
	client *http.Client
	mix    []struct {
		op  string
		cum int
	}

	modelID       string
	dataset       string
	fitDataset    string
	predictBodies [][]byte
	insertBodies  [][]byte
	fitBody       []byte
}

// run performs setup (register datasets, fit the model), drives the
// workload for cfg.Duration, tears down, and aggregates the report.
func run(ctx context.Context, cfg config) (*Report, error) {
	mix, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout},
		mix:    mix,
	}
	dims, err := r.setup(ctx)
	if err != nil {
		return nil, fmt.Errorf("setup: %w", err)
	}
	r.prepareBodies(dims)

	samples, dropped, elapsed := r.drive(ctx)
	return buildReport(cfg, samples, dropped, elapsed), nil
}

// setup registers the workload dataset and a small fit-cycle dataset,
// then fits the model every predict and insert will target. Names carry
// a nanosecond stamp so repeated runs against a long-lived server never
// collide.
func (r *runner) setup(ctx context.Context) (dims int, err error) {
	stamp := time.Now().UnixNano()
	r.dataset = fmt.Sprintf("lafload-%d", stamp)
	r.fitDataset = fmt.Sprintf("lafload-fit-%d", stamp)

	info, err := r.registerDataset(ctx, r.dataset, r.cfg.Points)
	if err != nil {
		return 0, err
	}
	fitN := r.cfg.Points
	if fitN > 200 {
		fitN = 200 // the fit op measures fit latency, not dataset scaling
	}
	if _, err := r.registerDataset(ctx, r.fitDataset, fitN); err != nil {
		return 0, err
	}

	r.fitBody, _ = json.Marshal(map[string]any{
		"dataset": r.fitDataset, "method": "dbscan",
		"params": map[string]any{"eps": r.cfg.Eps, "tau": r.cfg.Tau},
	})
	body, _ := json.Marshal(map[string]any{
		"dataset": r.dataset, "method": "dbscan",
		"params": map[string]any{"eps": r.cfg.Eps, "tau": r.cfg.Tau},
	})
	var fitResp struct {
		Model struct {
			ID string `json:"id"`
		} `json:"model"`
	}
	code, _, err := r.do(ctx, http.MethodPost, "/v1/models", body, &fitResp)
	if err != nil {
		return 0, err
	}
	if code != http.StatusCreated || fitResp.Model.ID == "" {
		return 0, fmt.Errorf("fitting workload model: status %d", code)
	}
	r.modelID = fitResp.Model.ID
	return info.Dims, nil
}

func (r *runner) registerDataset(ctx context.Context, name string, n int) (struct {
	Dims int `json:"dims"`
}, error) {
	var info struct {
		Dims int `json:"dims"`
	}
	body, _ := json.Marshal(map[string]any{
		"name": name,
		"synthetic": map[string]any{
			"kind": r.cfg.Kind, "n": n, "seed": r.cfg.Seed,
		},
	})
	code, _, err := r.do(ctx, http.MethodPost, "/v1/datasets", body, &info)
	if err != nil {
		return info, err
	}
	if code != http.StatusCreated {
		return info, fmt.Errorf("registering %s: status %d", name, code)
	}
	return info, nil
}

// prepareBodies pre-marshals a rotation of predict and insert payloads
// with deterministic random vectors of the server's dimensionality.
func (r *runner) prepareBodies(dims int) {
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	vecs := func(n int) [][]float32 {
		out := make([][]float32, n)
		for i := range out {
			v := make([]float32, dims)
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			out[i] = v
		}
		return out
	}
	const rotation = 16
	for i := 0; i < rotation; i++ {
		pb, _ := json.Marshal(map[string]any{"vectors": vecs(8)})
		r.predictBodies = append(r.predictBodies, pb)
		ib, _ := json.Marshal(map[string]any{"vectors": vecs(4)})
		r.insertBodies = append(r.insertBodies, ib)
	}
}

// drive runs the workers for cfg.Duration and collects their samples.
// Closed loop: each worker issues back-to-back requests. Open loop: a
// scheduler emits arrival timestamps at cfg.Rate; workers consume them
// and each sample's latency starts at its scheduled arrival, so queueing
// behind a slow server is measured instead of omitted. Arrivals that
// find the queue full (every worker busy, backlog at capacity) are
// counted as dropped rather than silently stretching the schedule.
func (r *runner) drive(ctx context.Context) (samples []sample, dropped int64, elapsed time.Duration) {
	deadline := time.Now().Add(r.cfg.Duration)
	dctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	// droppedN is atomic: the scheduler goroutine below keeps writing it
	// until it observes dctx done, which can be after wg.Wait returns —
	// workers exiting through the deadline path never see arrivals close.
	var droppedN atomic.Int64
	var arrivals chan time.Time
	if r.cfg.Rate > 0 {
		arrivals = make(chan time.Time, 4*r.cfg.Concurrency)
		go func() {
			defer close(arrivals)
			// Arrival n is scheduled at start + n*interval, computed
			// arithmetically rather than from a ticker: tickers coalesce
			// missed ticks, which would silently stretch the schedule
			// whenever this goroutine falls behind (or -rate exceeds tick
			// granularity) — understating the coordinated omission
			// open-loop mode exists to measure. Behind schedule, the loop
			// emits without sleeping until it catches up; every arrival
			// that can't be enqueued counts as dropped.
			interval := time.Duration(float64(time.Second) / r.cfg.Rate)
			if interval <= 0 {
				interval = time.Nanosecond
			}
			schedStart := time.Now()
			timer := time.NewTimer(time.Hour)
			defer timer.Stop()
			for n := int64(0); ; n++ {
				at := schedStart.Add(time.Duration(n) * interval)
				if wait := time.Until(at); wait > 0 {
					timer.Reset(wait)
					select {
					case <-dctx.Done():
						return
					case <-timer.C:
					}
				} else if dctx.Err() != nil {
					return
				}
				select {
				case arrivals <- at:
				default:
					droppedN.Add(1)
				}
			}
		}()
	}

	start := time.Now()
	results := make([][]sample, r.cfg.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < r.cfg.Concurrency; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(id)*7919))
			for {
				var schedAt time.Time
				if arrivals != nil {
					t, ok := <-arrivals
					if !ok {
						return
					}
					schedAt = t
				} else {
					if dctx.Err() != nil || time.Now().After(deadline) {
						return
					}
					schedAt = time.Now()
				}
				s := r.doOp(dctx, r.pickOp(rng), rng)
				s.ms = float64(time.Since(schedAt)) / float64(time.Millisecond)
				if dctx.Err() != nil {
					return // deadline mid-request: discard the truncated sample
				}
				results[id] = append(results[id], s)
			}
		}(i)
	}
	wg.Wait()
	elapsed = time.Since(start)
	for _, rs := range results {
		samples = append(samples, rs...)
	}
	return samples, droppedN.Load(), elapsed
}

func (r *runner) pickOp(rng *rand.Rand) string {
	n := rng.Intn(r.mix[len(r.mix)-1].cum)
	for _, m := range r.mix {
		if n < m.cum {
			return m.op
		}
	}
	return r.mix[len(r.mix)-1].op
}

// doOp issues one operation of the given class and classifies the result.
func (r *runner) doOp(ctx context.Context, op string, rng *rand.Rand) sample {
	s := sample{op: op}
	switch op {
	case opPredict:
		body := r.predictBodies[rng.Intn(len(r.predictBodies))]
		code, tr, err := r.do(ctx, http.MethodPost, "/v1/models/"+r.modelID+"/predict", body, nil)
		s.classify(code, err, http.StatusOK)
		s.trace = tr
	case opInsert:
		body := r.insertBodies[rng.Intn(len(r.insertBodies))]
		code, tr, err := r.do(ctx, http.MethodPost, "/v1/models/"+r.modelID+"/insert", body, nil)
		s.classify(code, err, http.StatusAccepted)
		s.trace = tr
	case opFit:
		var resp struct {
			Model struct {
				ID string `json:"id"`
			} `json:"model"`
		}
		code, tr, err := r.do(ctx, http.MethodPost, "/v1/models", r.fitBody, &resp)
		s.classify(code, err, http.StatusCreated)
		s.trace = tr
		if code == http.StatusCreated && resp.Model.ID != "" {
			// The cycle's model served its purpose; free the store slot.
			// Deletion is part of the op's measured cost.
			if dcode, _, derr := r.do(ctx, http.MethodDelete, "/v1/models/"+resp.Model.ID, nil, nil); derr != nil || dcode != http.StatusOK {
				s.err = true
			}
		}
	}
	return s
}

// classify folds a response into the sample: the wanted status is success,
// 429/409 are backpressure (rejected), anything else — including transport
// errors — is an error.
func (s *sample) classify(code int, err error, want int) {
	switch {
	case err != nil:
		s.err = true
	case code == want:
	case code == http.StatusTooManyRequests || code == http.StatusConflict:
		s.rejected = true
	default:
		s.err = true
	}
}

// do issues one request, decodes into out when non-nil and the status is
// 2xx, and always drains the body so connections are reused. trace is the
// response's X-Laf-Trace header — empty when the server didn't sample the
// request (or predates tracing).
func (r *runner) do(ctx context.Context, method, path string, body []byte, out any) (code int, trace string, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.cfg.URL+path, rd)
	if err != nil {
		return 0, "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	trace = resp.Header.Get("X-Laf-Trace")
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, trace, err
		}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, trace, nil
}

// quantile returns the linearly interpolated q-quantile of an ascending
// sorted slice; exact, since lafload keeps every sample in memory.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
