// Command lafcluster clusters a saved dataset with any method of the
// repository and reports timing, cluster statistics and (optionally)
// quality against exact DBSCAN.
//
// Usage:
//
//	lafcluster -data test.lafd -method laf-dbscan -eps 0.55 -tau 5 -alpha 2 [-train train.lafd] [-compare]
//
// When -method is laf-dbscan or laf-dbscan++ an RMI estimator is trained
// first — on -train when given, otherwise on the dataset itself — and its
// training time is reported separately (it is excluded from clustering
// time, as in the paper).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lafdbscan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lafcluster: ")
	var (
		dataPath  = flag.String("data", "", "dataset file to cluster (required)")
		trainPath = flag.String("train", "", "optional separate training dataset for the estimator")
		method    = flag.String("method", "laf-dbscan", "dbscan, dbscan++, laf-dbscan, laf-dbscan++, knn-block, block-dbscan, rho-approx")
		eps       = flag.Float64("eps", 0.55, "cosine-distance threshold")
		tau       = flag.Int("tau", 5, "minimum neighbors for a core point")
		alpha     = flag.Float64("alpha", 1.0, "LAF error factor")
		p         = flag.Float64("p", 0.3, "sample fraction for the ++ variants")
		seed      = flag.Int64("seed", 1, "seed")
		compare   = flag.Bool("compare", false, "also run exact DBSCAN and report ARI/AMI")
		workers   = flag.Int("workers", 0, "parallel engine workers for dbscan/laf methods: 0 sequential, -1 all cores")
		batchSize = flag.Int("batch", 0, "queries per parallel work unit (0 = auto)")
		waveSize  = flag.Int("wave", 0, "range queries per neighbor-discovery wave (0 = auto, -1 = unbounded buffer-everything engine)")
	)
	flag.Parse()
	if *dataPath == "" {
		log.Fatal("-data is required")
	}
	params := lafdbscan.Params{
		Eps: *eps, Tau: *tau, Alpha: *alpha,
		SampleFraction: *p, Rho: 1.0, Seed: *seed,
		Workers: *workers, BatchSize: *batchSize, WaveSize: *waveSize,
	}
	// One validation covers every flag-fed parameter — the same domain the
	// library enforces at its entry points and lafserve returns 400s for.
	if err := params.Validate(); err != nil {
		log.Print(err)
		flag.Usage()
		os.Exit(2)
	}
	data, err := lafdbscan.LoadDataset(*dataPath)
	if err != nil {
		log.Fatalf("loading %s: %v", *dataPath, err)
	}
	fmt.Printf("dataset: %s (%d points, %d dims)\n", data.Name, data.Len(), data.Dim())

	m := lafdbscan.Method(*method)
	if m == lafdbscan.MethodLAFDBSCAN || m == lafdbscan.MethodLAFDBSCANPP {
		trainVecs := data.Vectors
		if *trainPath != "" {
			train, err := lafdbscan.LoadDataset(*trainPath)
			if err != nil {
				log.Fatalf("loading %s: %v", *trainPath, err)
			}
			trainVecs = train.Vectors
		}
		start := time.Now()
		est, err := lafdbscan.TrainRMIEstimator(trainVecs, lafdbscan.EstimatorConfig{
			TargetSize: data.Len(), Seed: *seed,
		})
		if err != nil {
			log.Fatalf("training estimator: %v", err)
		}
		fmt.Printf("estimator trained in %v (excluded from clustering time)\n",
			time.Since(start).Round(time.Millisecond))
		params.Estimator = est
	}

	res, err := lafdbscan.Cluster(data.Vectors, m, params)
	if err != nil {
		log.Fatalf("clustering: %v", err)
	}
	stats := lafdbscan.Stats(res.Labels)
	fmt.Printf("method:          %s\n", res.Algorithm)
	fmt.Printf("clustering time: %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("clusters:        %d\n", res.NumClusters)
	fmt.Printf("noise ratio:     %.3f\n", stats.NoiseRatio)
	fmt.Printf("range queries:   %d (skipped by LAF: %d)\n", res.RangeQueries, res.SkippedQueries)
	if res.PostMerges > 0 {
		fmt.Printf("post merges:     %d\n", res.PostMerges)
	}

	if *compare && m != lafdbscan.MethodDBSCAN {
		truth, err := lafdbscan.DBSCAN(data.Vectors, params)
		if err != nil {
			log.Fatalf("ground truth: %v", err)
		}
		ari, _ := lafdbscan.ARI(truth.Labels, res.Labels)
		ami, _ := lafdbscan.AMI(truth.Labels, res.Labels)
		fmt.Printf("vs DBSCAN (%v): ARI=%.4f AMI=%.4f speedup=%.2fx\n",
			truth.Elapsed.Round(time.Millisecond), ari, ami,
			truth.Elapsed.Seconds()/res.Elapsed.Seconds())
	}
}
