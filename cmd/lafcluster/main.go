// Command lafcluster clusters a saved dataset with any method of the
// repository and reports timing, cluster statistics and (optionally)
// quality against exact DBSCAN. Around the Fit/Predict model API it also
// persists fitted models and assigns new datasets to existing clusters
// without re-clustering.
//
// Usage:
//
//	lafcluster -data test.lafd -method laf-dbscan -eps 0.55 -tau 5 -alpha 2 [-train train.lafd] [-compare]
//	lafcluster -data test.lafd -method dbscan -eps 0.5 -tau 5 -index-backend hnsw [-ef-search 128]
//	lafcluster -data train.lafd -method dbscan -eps 0.5 -tau 5 -save model.lafm
//	lafcluster -load model.lafm -predict incoming.lafd
//	lafcluster -load model.lafm -insert new.lafd -save model.lafm
//	lafcluster -load model.lafm -remove 3,17,42 -save model.lafm
//	lafcluster -data train.lafd -method dbscan -eps 0.5 -tau 5 -wal /var/lib/laf/m1
//	lafcluster -wal /var/lib/laf/m1 -insert new.lafd -snapshot
//	lafcluster -wal /var/lib/laf/m1 -predict incoming.lafd
//
// Modes:
//
//   - Fit (default): cluster -data; with -save, persist the fitted model;
//     with -predict, additionally assign a held-out dataset's points to the
//     fitted clusters.
//   - Load: -load reads a model written by -save (or downloaded from
//     lafserve's /v1/models/{id}/save) instead of clustering; -predict then
//     costs one range query per point — the whole point of keeping models.
//   - Maintain: -insert folds a dataset's points into the clustering
//     online (incremental DBSCAN: promotions, merges), -remove drops point
//     ids (demotions, splits) — both at the cost of the changed
//     neighborhoods only, with labels identical to re-clustering from
//     scratch for the traversal methods. -retrain N retrains a LAF model's
//     estimator once N mutations have accumulated. Combine with -save to
//     persist the evolved model.
//   - Durable: -wal roots the model in a journal directory. With -data or
//     -load it seeds a fresh journal (snapshot plus write-ahead log); alone
//     it recovers the journaled model — replaying the log, cutting a torn
//     tail — and every -insert/-remove is journaled before it is applied,
//     so a crash between runs loses nothing that was committed. -snapshot
//     rolls the journal generation before exiting; docs/DURABILITY.md
//     covers the format and recovery semantics.
//
// When -method is laf-dbscan or laf-dbscan++ an RMI estimator is trained
// first — on -train when given, otherwise on the dataset itself — and its
// training time is reported separately (it is excluded from clustering
// time, as in the paper).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"lafdbscan"
	"lafdbscan/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lafcluster: ")
	var (
		dataPath    = flag.String("data", "", "dataset file to cluster (required unless -load)")
		trainPath   = flag.String("train", "", "optional separate training dataset for the estimator")
		method      = flag.String("method", "laf-dbscan", methodsUsage())
		eps         = flag.Float64("eps", 0.55, "cosine-distance threshold")
		tau         = flag.Int("tau", 5, "minimum neighbors for a core point")
		alpha       = flag.Float64("alpha", 1.0, "LAF error factor")
		p           = flag.Float64("p", 0.3, "sample fraction for the ++ variants")
		seed        = flag.Int64("seed", 1, "seed")
		compare     = flag.Bool("compare", false, "also run exact DBSCAN and report ARI/AMI")
		workers     = flag.Int("workers", 0, "parallel engine workers for dbscan/laf methods: 0 sequential, -1 all cores")
		batchSize   = flag.Int("batch", 0, "queries per parallel work unit (0 = auto)")
		waveSize    = flag.Int("wave", 0, "range queries per neighbor-discovery wave (0 = auto, -1 = unbounded buffer-everything engine)")
		savePath    = flag.String("save", "", "persist the (fitted or evolved) model to this file")
		loadPath    = flag.String("load", "", "load a model from this file instead of clustering")
		predictPath = flag.String("predict", "", "dataset file to assign to the model's clusters")
		gate        = flag.Bool("gate", false, "use the model's estimator to skip predicted-noise queries during -predict")
		insertPath  = flag.String("insert", "", "dataset file to fold into the model's clustering online")
		removeIDs   = flag.String("remove", "", "comma-separated point ids to drop from the model's clustering")
		retrainN    = flag.Int("retrain", 0, "retrain a LAF model's estimator after this many mutations (0 = never)")
		idxBackend  = flag.String("index-backend", "", indexBackendUsage())
		efSearch    = flag.Int("ef-search", 0, "HNSW search beam width: larger = higher recall, slower queries (0 = default 64)")
		walDir      = flag.String("wal", "", "journal directory for a durable model: -data/-load seeds it, alone recovers it")
		walSync     = flag.String("wal-sync", "always", "WAL fsync policy: always, interval or off (with -wal)")
		doSnapshot  = flag.Bool("snapshot", false, "commit a journal snapshot before exiting (with -wal)")
	)
	flag.Parse()

	if _, err := wal.ParseSyncPolicy(*walSync); err != nil {
		log.Print("-wal-sync: ", err)
		flag.Usage()
		os.Exit(2)
	}
	if *doSnapshot && *walDir == "" {
		log.Fatal("-snapshot requires -wal")
	}

	// Durable recovery mode: -wal alone reopens a journaled model where a
	// previous run left it, replaying the write-ahead log on its snapshot.
	if *walDir != "" && *dataPath == "" && *loadPath == "" {
		if *compare {
			log.Fatal("-wal recovery replaces clustering; it cannot combine with -compare")
		}
		opts := durableOptions(*walSync)
		d, rep, err := lafdbscan.OpenDurable(context.Background(), *walDir, opts)
		if err != nil {
			log.Fatalf("recovering journal %s: %v", *walDir, err)
		}
		defer closeDurable(d)
		printModel(d.Model(), *walDir)
		printRecovery(rep)
		maintain(d.Model(), d, *insertPath, *removeIDs, *retrainN)
		if *predictPath != "" {
			predict(d.Model(), *predictPath, *gate)
		}
		maybeSnapshot(d, *doSnapshot)
		if *savePath != "" {
			saveModel(d.Model(), *savePath)
		}
		return
	}

	if *loadPath != "" {
		if *dataPath != "" || *compare {
			log.Fatal("-load replaces clustering; it cannot combine with -data or -compare")
		}
		model, err := lafdbscan.LoadModelFile(*loadPath)
		if err != nil {
			log.Fatalf("loading model %s: %v", *loadPath, err)
		}
		printModel(model, *loadPath)
		var mut modelMutator = model
		if *walDir != "" {
			d := seedJournal(model, *walDir, *walSync)
			defer closeDurable(d)
			defer maybeSnapshot(d, *doSnapshot)
			mut = d
		}
		maintain(model, mut, *insertPath, *removeIDs, *retrainN)
		if *predictPath != "" {
			predict(model, *predictPath, *gate)
		}
		if *savePath != "" {
			saveModel(model, *savePath)
		}
		return
	}

	if *dataPath == "" {
		log.Fatal("-data is required")
	}
	m := lafdbscan.Method(*method)
	if !slices.Contains(lafdbscan.AllMethods(), m) {
		log.Printf("unknown method %q (want one of %v)", *method, lafdbscan.AllMethods())
		flag.Usage()
		os.Exit(2)
	}
	params := lafdbscan.Params{
		Eps: *eps, Tau: *tau, Alpha: *alpha,
		SampleFraction: *p, Rho: 1.0, Seed: *seed,
		Workers: *workers, BatchSize: *batchSize, WaveSize: *waveSize,
		IndexBackend: *idxBackend, EfSearch: *efSearch,
	}
	// One validation covers every flag-fed parameter — the same domain the
	// library enforces at its entry points and lafserve returns 400s for.
	if err := params.Validate(); err != nil {
		log.Print(err)
		flag.Usage()
		os.Exit(2)
	}
	data, err := lafdbscan.LoadDataset(*dataPath)
	if err != nil {
		log.Fatalf("loading %s: %v", *dataPath, err)
	}
	fmt.Printf("dataset: %s (%d points, %d dims)\n", data.Name, data.Len(), data.Dim())

	if m == lafdbscan.MethodLAFDBSCAN || m == lafdbscan.MethodLAFDBSCANPP {
		trainVecs := data.Vectors
		if *trainPath != "" {
			train, err := lafdbscan.LoadDataset(*trainPath)
			if err != nil {
				log.Fatalf("loading %s: %v", *trainPath, err)
			}
			trainVecs = train.Vectors
		}
		start := time.Now()
		est, err := lafdbscan.TrainRMIEstimator(trainVecs, lafdbscan.EstimatorConfig{
			TargetSize: data.Len(), Seed: *seed,
		})
		if err != nil {
			log.Fatalf("training estimator: %v", err)
		}
		fmt.Printf("estimator trained in %v (excluded from clustering time)\n",
			time.Since(start).Round(time.Millisecond))
		params.Estimator = est
	}

	// Fit retains what Cluster would discard — cores, forest, index,
	// estimator — with labels pinned bit-identical to Cluster; clustering
	// reports read from the embedded result either way.
	model, err := lafdbscan.FitParams(context.Background(), data.Vectors, m, params)
	if err != nil {
		log.Fatalf("clustering: %v", err)
	}
	res := model.Result()
	stats := lafdbscan.Stats(res.Labels)
	fmt.Printf("method:          %s\n", res.Algorithm)
	if b := model.IndexBackend(); b != "" {
		fmt.Printf("index backend:   %s\n", b)
	}
	fmt.Printf("clustering time: %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("clusters:        %d\n", res.NumClusters)
	fmt.Printf("core points:     %d\n", model.NumCores())
	fmt.Printf("noise ratio:     %.3f\n", stats.NoiseRatio)
	fmt.Printf("range queries:   %d (skipped by LAF: %d)\n", res.RangeQueries, res.SkippedQueries)
	if res.PostMerges > 0 {
		fmt.Printf("post merges:     %d\n", res.PostMerges)
	}

	if *compare && m != lafdbscan.MethodDBSCAN {
		truth, err := lafdbscan.DBSCAN(data.Vectors, params)
		if err != nil {
			log.Fatalf("ground truth: %v", err)
		}
		ari, _ := lafdbscan.ARI(truth.Labels, res.Labels)
		ami, _ := lafdbscan.AMI(truth.Labels, res.Labels)
		fmt.Printf("vs DBSCAN (%v): ARI=%.4f AMI=%.4f speedup=%.2fx\n",
			truth.Elapsed.Round(time.Millisecond), ari, ami,
			truth.Elapsed.Seconds()/res.Elapsed.Seconds())
	}

	var mut modelMutator = model
	if *walDir != "" {
		d := seedJournal(model, *walDir, *walSync)
		defer closeDurable(d)
		defer maybeSnapshot(d, *doSnapshot)
		mut = d
	}
	maintain(model, mut, *insertPath, *removeIDs, *retrainN)

	if *savePath != "" {
		saveModel(model, *savePath)
	}
	if *predictPath != "" {
		predict(model, *predictPath, *gate)
	}
}

// modelMutator is the mutation surface maintenance runs against: the bare
// model, or its journal when -wal is set (so every mutation is journaled
// before it is applied).
type modelMutator interface {
	Insert(ctx context.Context, vectors [][]float32) (lafdbscan.UpdateReport, error)
	Remove(ctx context.Context, ids []int) (lafdbscan.UpdateReport, error)
}

// durableOptions maps the (already validated) -wal-sync flag onto journal
// options.
func durableOptions(syncPolicy string) lafdbscan.DurableOptions {
	p, err := wal.ParseSyncPolicy(syncPolicy)
	if err != nil {
		log.Fatalf("-wal-sync: %v", err)
	}
	return lafdbscan.DurableOptions{Sync: p}
}

// seedJournal starts a fresh journal for a fitted or loaded model.
func seedJournal(model *lafdbscan.Model, dir, syncPolicy string) *lafdbscan.DurableModel {
	d, err := lafdbscan.NewDurable(model, dir, durableOptions(syncPolicy))
	if err != nil {
		log.Fatalf("seeding journal %s: %v", dir, err)
	}
	fmt.Printf("journal:         %s (seeded, sync %s)\n", dir, syncPolicy)
	return d
}

// printRecovery summarizes what OpenDurable replayed and what it had to cut.
func printRecovery(rep lafdbscan.RecoveryReport) {
	fmt.Printf("journal:         snapshot lsn %d, replayed %d records (%d inserted, %d removed) in %v\n",
		rep.SnapshotLSN, rep.Records, rep.Inserted, rep.Removed, rep.Elapsed.Round(time.Millisecond))
	if rep.Truncated {
		fmt.Printf("journal tail cut: %s (%d bytes dropped)\n", rep.Reason, rep.DroppedBytes)
	}
	if rep.SnapshotsDropped > 0 {
		fmt.Printf("snapshots dropped: %d (unloadable, recovered from an older generation)\n", rep.SnapshotsDropped)
	}
}

// maybeSnapshot commits a journal snapshot when -snapshot was given.
func maybeSnapshot(d *lafdbscan.DurableModel, on bool) {
	if !on {
		return
	}
	info, err := d.Snapshot()
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	fmt.Printf("snapshot:        lsn %d (%d bytes, %d stale files compacted)\n",
		info.LSN, info.Bytes, info.Compacted)
}

// closeDurable syncs and closes the journal; a failure here means the last
// mutations may not be on disk, which deserves a hard exit code.
func closeDurable(d *lafdbscan.DurableModel) {
	if err := d.Close(); err != nil {
		log.Fatalf("closing journal: %v", err)
	}
}

// maintain applies the online-maintenance flags: the retrain policy first
// (so it can trigger on this run's mutations), then -insert, then -remove.
// Mutations go through mut — the journal when -wal is set — while the
// retrain policy lives on the model itself either way.
func maintain(model *lafdbscan.Model, mut modelMutator, insertPath, removeIDs string, retrainN int) {
	if retrainN > 0 {
		model.SetRetrainPolicy(lafdbscan.RetrainPolicy{
			After: retrainN,
			Train: func(ctx context.Context, points [][]float32) (lafdbscan.Estimator, error) {
				start := time.Now()
				est, err := lafdbscan.TrainRMIEstimator(points, lafdbscan.EstimatorConfig{
					TargetSize: len(points),
				})
				if err == nil {
					fmt.Printf("estimator retrained on %d points in %v\n",
						len(points), time.Since(start).Round(time.Millisecond))
				}
				return est, err
			},
		})
	}
	if insertPath != "" {
		data, err := lafdbscan.LoadDataset(insertPath)
		if err != nil {
			log.Fatalf("loading %s: %v", insertPath, err)
		}
		if data.Dim() != model.Dim() {
			log.Fatalf("insert dataset has %d dims, model has %d", data.Dim(), model.Dim())
		}
		start := time.Now()
		rep, err := mut.Insert(context.Background(), data.Vectors)
		if err != nil {
			log.Fatalf("inserting: %v", err)
		}
		printReport("inserted", data.Len(), rep, time.Since(start))
	}
	if removeIDs != "" {
		var ids []int
		for _, f := range strings.Split(removeIDs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				log.Fatalf("-remove: %q is not a point id", f)
			}
			ids = append(ids, id)
		}
		start := time.Now()
		rep, err := mut.Remove(context.Background(), ids)
		if err != nil {
			log.Fatalf("removing: %v", err)
		}
		printReport("removed", len(ids), rep, time.Since(start))
	}
}

// printReport summarizes one maintenance operation.
func printReport(verb string, n int, rep lafdbscan.UpdateReport, elapsed time.Duration) {
	fmt.Printf("%s:        %d points in %v (promoted %d, demoted %d)\n",
		verb, n, elapsed.Round(time.Millisecond), rep.Promoted, rep.Demoted)
	fmt.Printf("clusters now:    %d (%d cores, staleness %d", rep.Clusters, rep.Cores, rep.Staleness)
	if rep.Retrained {
		fmt.Printf(", estimator retrained")
	}
	fmt.Println(")")
}

// saveModel persists the model and reports the file size.
func saveModel(model *lafdbscan.Model, path string) {
	if err := model.SaveFile(path); err != nil {
		log.Fatalf("saving model: %v", err)
	}
	if fi, err := os.Stat(path); err == nil {
		fmt.Printf("model saved:     %s (%d bytes)\n", path, fi.Size())
	}
}

// methodsUsage renders the -method help from the canonical list, so the CLI
// never drifts from what the library dispatches.
func methodsUsage() string {
	out := "one of"
	for _, m := range lafdbscan.AllMethods() {
		out += " " + string(m)
	}
	return out
}

// indexBackendUsage renders the -index-backend help from the backend
// registry, so the CLI never drifts from what the library provides.
func indexBackendUsage() string {
	out := fmt.Sprintf("range-index backend: empty = exact default, %q = approximate chain, or one of",
		lafdbscan.IndexBackendAuto)
	for _, b := range lafdbscan.IndexBackends() {
		out += " " + b
	}
	return out
}

// printModel summarizes a loaded model.
func printModel(m *lafdbscan.Model, path string) {
	fmt.Printf("model:           %s\n", path)
	fmt.Printf("method:          %s\n", m.Method())
	fmt.Printf("training points: %d (%d dims)\n", m.Len(), m.Dim())
	fmt.Printf("clusters:        %d\n", m.NumClusters())
	fmt.Printf("core points:     %d\n", m.NumCores())
	fmt.Printf("estimator:       %v\n", m.HasEstimator())
	if b := m.IndexBackend(); b != "" {
		fmt.Printf("index backend:   %s\n", b)
	}
}

// predict assigns a dataset's points to the model's clusters and reports
// the assignment statistics — O(one range query) per point, against the
// full re-clustering a Cluster call would have cost.
func predict(model *lafdbscan.Model, path string, gate bool) {
	data, err := lafdbscan.LoadDataset(path)
	if err != nil {
		log.Fatalf("loading %s: %v", path, err)
	}
	if data.Dim() != model.Dim() {
		log.Fatalf("predict dataset has %d dims, model was fitted on %d", data.Dim(), model.Dim())
	}
	start := time.Now()
	labels, skipped, err := model.PredictWithOptions(context.Background(), data.Vectors,
		lafdbscan.PredictOptions{Gate: gate})
	if err != nil {
		log.Fatalf("predicting: %v", err)
	}
	elapsed := time.Since(start)
	stats := lafdbscan.Stats(labels)
	fmt.Printf("predicted:       %s (%d points) in %v\n", data.Name, data.Len(), elapsed.Round(time.Millisecond))
	fmt.Printf("assigned:        %d (noise %.3f)\n", data.Len()-stats.NumNoise, stats.NoiseRatio)
	if gate {
		fmt.Printf("gate skipped:    %d queries\n", skipped)
	}
}
