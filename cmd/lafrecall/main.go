// Command lafrecall measures HNSW range-query recall against the exact
// scan across a sweep of EfSearch values — the quality gate behind the
// approximate index backend. For each EfSearch it builds one HNSW index
// over a fixed clustered mixture, runs every point as a range query, and
// reports the fraction of true eps-neighbors found, writing one
// RECALL_ef<N>.json per setting for CI artifacts.
//
// Usage:
//
//	lafrecall [-n 20000] [-dim 24] [-eps 0.3] [-ef 16,64,256] [-min-recall 0.95] [-soft] [-out .]
//
// The gate applies to the default knob only (EfSearch 0, the value library
// users get without tuning): if its recall lands under -min-recall the
// command exits non-zero, or prints a warning in -soft mode (shared CI
// runners never make recall noisy — soft mode exists so a nightly red does
// not block unrelated work while the regression is investigated).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lafdbscan"
)

// report is the JSON shape of one sweep point.
type report struct {
	EfSearch  int     `json:"ef_search"` // 0 = library default
	Default   bool    `json:"default"`
	N         int     `json:"n"`
	Dim       int     `json:"dim"`
	Eps       float64 `json:"eps"`
	Queries   int     `json:"queries"`
	TruePairs int     `json:"true_pairs"`
	Recall    float64 `json:"recall"`
	BuildMS   int64   `json:"build_ms"`
	QueryMS   int64   `json:"query_ms"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lafrecall: ")
	var (
		n         = flag.Int("n", 20000, "dataset size")
		dim       = flag.Int("dim", 24, "dataset dimensionality")
		eps       = flag.Float64("eps", 0.3, "query radius (cosine distance)")
		efList    = flag.String("ef", "16,64,256", "comma-separated EfSearch sweep (0 = library default)")
		minRecall = flag.Float64("min-recall", 0.95, "recall floor gated at the default EfSearch")
		soft      = flag.Bool("soft", false, "report a floor violation without failing")
		outDir    = flag.String("out", ".", "directory for RECALL_ef<N>.json reports")
		seed      = flag.Int64("seed", 41, "dataset and index seed")
	)
	flag.Parse()

	var efs []int
	for _, f := range strings.Split(*efList, ",") {
		ef, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || ef < 0 {
			log.Fatalf("-ef: %q is not a non-negative EfSearch", f)
		}
		efs = append(efs, ef)
	}

	// Cluster count scales with n so neighborhoods stay DBSCAN-sized (a
	// few dozen points) at every -n.
	clusters := *n / 500
	if clusters < 2 {
		clusters = 2
	}
	d := lafdbscan.GenerateMixture("recall-sweep", lafdbscan.MixtureConfig{
		N: *n, Dim: *dim, Clusters: clusters,
		MinSpread: 0.08, MaxSpread: 0.15, NoiseFrac: 0.1, Seed: *seed,
	})
	exact := lafdbscan.NewBruteForceIndex(d.Vectors, lafdbscan.MetricCosine)

	// The exact neighborhoods are the shared ground truth of the sweep.
	truth := make([][]int, len(d.Vectors))
	truePairs := 0
	for i, q := range d.Vectors {
		truth[i] = exact.RangeSearch(q, *eps)
		truePairs += len(truth[i])
	}
	if truePairs == 0 {
		log.Fatalf("no true neighbor pairs at eps %v — the sweep would gate nothing", *eps)
	}

	// The default knob must be part of the sweep: it is the gated setting.
	hasDefault := false
	for _, ef := range efs {
		if ef == 0 || ef == lafdbscan.DefaultEfSearch {
			hasDefault = true
		}
	}
	if !hasDefault {
		efs = append(efs, 0)
	}

	failed := false
	for _, ef := range efs {
		p := lafdbscan.Params{Eps: *eps, Tau: 5, Seed: *seed, IndexBackend: "hnsw", EfSearch: ef}
		buildStart := time.Now()
		idx, _, err := p.NewIndex(d.Vectors, lafdbscan.MetricCosine)
		if err != nil {
			log.Fatalf("building hnsw at ef=%d: %v", ef, err)
		}
		buildMS := time.Since(buildStart).Milliseconds()

		queryStart := time.Now()
		found := 0
		for i, q := range d.Vectors {
			if len(truth[i]) == 0 {
				continue
			}
			truthSet := make(map[int]bool, len(truth[i]))
			for _, id := range truth[i] {
				truthSet[id] = true
			}
			for _, id := range idx.RangeSearch(q, *eps) {
				if truthSet[id] {
					found++
				}
			}
		}
		rep := report{
			EfSearch: ef, Default: ef == 0 || ef == lafdbscan.DefaultEfSearch,
			N: *n, Dim: *dim, Eps: *eps,
			Queries: len(d.Vectors), TruePairs: truePairs,
			Recall:  float64(found) / float64(truePairs),
			BuildMS: buildMS, QueryMS: time.Since(queryStart).Milliseconds(),
		}
		name := fmt.Sprintf("RECALL_ef%d.json", ef)
		if ef == 0 {
			name = "RECALL_efdefault.json"
		}
		path := filepath.Join(*outDir, name)
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ef=%-4d recall=%.4f (build %dms, %d queries in %dms) -> %s\n",
			ef, rep.Recall, rep.BuildMS, rep.Queries, rep.QueryMS, path)

		if rep.Default && rep.Recall < *minRecall {
			failed = true
			fmt.Printf("lafrecall: recall %.4f at the default EfSearch is under the %.2f floor\n",
				rep.Recall, *minRecall)
		}
	}
	if failed && !*soft {
		os.Exit(1)
	}
	if failed {
		fmt.Println("lafrecall: floor violated (soft mode, not failing)")
	}
}
