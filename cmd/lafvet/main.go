// Command lafvet runs the repository's custom analyzer suite (mapiter,
// lockcheck, ctxflow, hotalloc) over the module. It is the machine check
// for the invariants the clustering engines' determinism rests on; see
// docs/STATIC_ANALYSIS.md.
//
// Standalone:
//
//	go run ./cmd/lafvet ./...
//
// exits 1 and prints one line per diagnostic if anything is found.
//
// As a vet tool (the go/analysis unitchecker protocol: -V=full probe,
// then one *.cfg argument per package):
//
//	go build -o bin/lafvet ./cmd/lafvet
//	go vet -vettool=$(pwd)/bin/lafvet ./...
//
// `lafvet help` prints each analyzer's documentation.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"

	"lafdbscan/internal/analysis"
)

// selfHash returns a content hash of the running binary, for the go vet
// build cache key.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(h.Sum(nil))[:24]
}

func main() {
	args := os.Args[1:]

	// go vet protocol probes.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			// cmd/go derives the vet cache key from this line; the content
			// hash of the binary keeps it correct across rebuilds.
			fmt.Printf("lafvet version devel buildID=%s\n", selfHash())
			return
		}
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	if len(args) > 0 && args[0] == "help" {
		printHelp()
		return
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lafvet: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.DefaultSuite().Run(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lafvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func printHelp() {
	fmt.Println("lafvet checks the lafdbscan determinism, locking, context and hot-path invariants.")
	fmt.Println()
	for _, a := range analysis.DefaultSuite() {
		fmt.Printf("%s: %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("Suppression directives (a reason is mandatory):")
	fmt.Println("  //lafvet:orderfree <reason>        on/above a range-over-map statement")
	fmt.Println("  //lafvet:hotpath                   in a function's doc comment")
	fmt.Println("  //lafvet:allow <analyzer> <reason> on/above the offending line")
}
