// The go vet driver side of lafvet: cmd/go invokes the vettool once per
// package with a JSON .cfg file describing the unit of work — file lists,
// the import map, and the locations of the compiled export data of every
// dependency. This file implements just enough of the x/tools unitchecker
// protocol for `go vet -vettool=lafvet` to work: parse the config,
// typecheck the package against the gc export data cmd/go already built,
// run the suite, print findings, and write the (empty — lafvet has no
// cross-package facts) .vetx output cmd/go expects.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"lafdbscan/internal/analysis"
)

// vetConfig is the subset of cmd/go's vet config lafvet consumes.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lafvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "lafvet: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	if cfg.Compiler == "" {
		cfg.Compiler = "gc"
	}

	// go vet hands us every unit in the build graph — the standard library
	// and test variants (`pkg [pkg.test]`) included. lafvet's contract is
	// the module's non-test code, same as standalone mode.
	if !moduleUnit(cfg.ImportPath) || strings.Contains(cfg.ID, " ") {
		return writeVetx(cfg)
	}
	// The test variant of a package is a separate unit that re-lists the
	// regular files plus the _test.go files; the plain unit already covers
	// the former, and lafvet's contract excludes the latter.
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			return writeVetx(cfg)
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			fmt.Fprintf(os.Stderr, "lafvet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// cmd/go tells us where each dependency's export data lives.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			return compilerImporter.Import(path)
		}),
		Sizes: types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		fmt.Fprintf(os.Stderr, "lafvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	pkg := &analysis.Package{
		Path:      cfg.ImportPath,
		Name:      tpkg.Name(),
		Fset:      fset,
		Files:     files,
		GoFiles:   absPaths(cfg.Dir, cfg.GoFiles),
		Types:     tpkg,
		TypesInfo: info,
	}
	diags := analysis.DefaultSuite().Run([]*analysis.Package{pkg})
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if code := writeVetx(cfg); code != 0 {
		return code
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// moduleUnit reports whether the vet unit is one of this module's own
// non-test packages.
func moduleUnit(importPath string) bool {
	if strings.Contains(importPath, " ") { // "pkg [pkg.test]" variants
		return false
	}
	return importPath == analysis.ModulePath ||
		strings.HasPrefix(importPath, analysis.ModulePath+"/")
}

// writeVetx writes the empty facts file cmd/go expects every vet tool to
// produce for each unit.
func writeVetx(cfg vetConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "lafvet: %v\n", err)
		return 2
	}
	return 0
}

func absPaths(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
