// Command lafbench regenerates the tables and figures of the paper's
// evaluation section (Wang & Wang, EDBT 2023).
//
// Usage:
//
//	lafbench [-experiment all|table1|table2|table3|table4|table5|table6|figure1|figure2|figure3|figure4]
//
// Dataset scales default to laptop-friendly stand-ins for the paper's
// 50k-150k corpora; set LAF_BENCH_SCALE=medium or large to grow them.
// Estimator training happens once per dataset and is excluded from all
// reported clustering times, as in the paper.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"lafdbscan"
	"lafdbscan/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lafbench: ")
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, table1..table6, figure1..figure4, ablation")
	workers := flag.Int("workers", 0,
		"parallel engine workers for DBSCAN and the LAF variants: 0 sequential (the paper's configuration), -1 all cores")
	batchSize := flag.Int("batch", 0, "queries per parallel work unit (0 = auto)")
	waveSize := flag.Int("wave", 0,
		"range queries per neighbor-discovery wave (0 = auto, -1 = unbounded buffer-everything engine)")
	flag.Parse()

	// The engine knobs are the only flag-fed clustering parameters here
	// (eps/tau come from the experiment tables); Params.Validate covers
	// their domain — the same rules the library enforces at its entry
	// points — with placeholder density parameters.
	knobs := lafdbscan.Params{
		Eps: 1, Tau: 1,
		Workers: *workers, BatchSize: *batchSize, WaveSize: *waveSize,
	}
	if err := knobs.Validate(); err != nil {
		log.Print(err)
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	cfg.Workers = *workers
	cfg.BatchSize = *batchSize
	cfg.WaveSize = *waveSize
	w := bench.NewWorkbench(cfg)
	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	out := os.Stdout
	run("table1", func() error {
		bench.FprintTable1(out, w.Table1())
		return nil
	})
	run("table2", func() error {
		cells, err := w.Table2()
		if err != nil {
			return err
		}
		bench.FprintTable2(out, cells, w.MSKeys())
		return nil
	})
	run("table3", func() error {
		rows, err := w.Table3()
		if err != nil {
			return err
		}
		bench.FprintQuality(out, "Table 3: clustering quality on the three largest datasets",
			rows, w.LargestKeys())
		return nil
	})
	run("table4", func() error {
		rows, err := w.Table4()
		if err != nil {
			return err
		}
		bench.FprintTable4(out, rows, w.MSKeys())
		return nil
	})
	run("table5", func() error {
		rows, err := w.Table5()
		if err != nil {
			return err
		}
		bench.FprintQuality(out, "Table 5: clustering quality across dataset scales (eps=0.55, tau=5)",
			rows, w.MSKeys())
		return nil
	})
	run("table6", func() error {
		rows, err := w.Table6()
		if err != nil {
			return err
		}
		bench.FprintTable6(out, rows)
		return nil
	})
	run("figure1", func() error {
		rows, err := w.Figure1()
		if err != nil {
			return err
		}
		bench.FprintTimes(out, "Figure 1: clustering time on the three largest datasets",
			rows, w.LargestKeys())
		return nil
	})
	run("figure2", func() error {
		pts, err := w.Figure2()
		if err != nil {
			return err
		}
		bench.FprintTradeoff(out, "Figure 2: speed-quality trade-off on MS-like (eps=0.5, tau=3)", pts)
		return nil
	})
	run("figure3", func() error {
		pts, err := w.Figure3()
		if err != nil {
			return err
		}
		bench.FprintTradeoff(out, "Figure 3: speed-quality trade-off on GloVe-like (eps=0.5, tau=3)", pts)
		return nil
	})
	run("figure4", func() error {
		rows, err := w.Figure4()
		if err != nil {
			return err
		}
		bench.FprintFigure4(out, rows, w.MSKeys())
		return nil
	})
	run("ablation", func() error {
		rows, err := w.PostProcessingAblation()
		if err != nil {
			return err
		}
		bench.FprintAblation(out, "Ablation: LAF-DBSCAN post-processing (eps=0.55, tau=5)", rows)
		return nil
	})

	valid := []string{"all", "table1", "table2", "table3", "table4", "table5", "table6",
		"figure1", "figure2", "figure3", "figure4", "ablation"}
	found := false
	for _, v := range valid {
		if *experiment == v {
			found = true
		}
	}
	if !found {
		log.Fatalf("unknown experiment %q; valid: %s", *experiment, strings.Join(valid, ", "))
	}
}
