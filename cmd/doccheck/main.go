// Command doccheck is the documentation gate CI runs over the repository's
// markdown: it walks every *.md file, extracts inline links and images,
// and fails when an intra-repository link is broken — a missing file or
// directory, or a #fragment that matches no heading in the target
// document. External links (http, https, mailto) are reported in the
// summary but never fetched, so the gate is fast, offline and
// deterministic.
//
// Usage:
//
//	doccheck [-root dir]
//
// Exit status 0 when every intra-repo link resolves; 1 otherwise, with one
// line per broken link (file, line, target, reason).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images: [text](target) and
// ![alt](target). Titles after the target ("...) are stripped separately.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings, whose anchors GitHub derives.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

type problem struct {
	file   string
	line   int
	target string
	reason string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("doccheck: ")
	root := flag.String("root", ".", "repository root to scan")
	skip := flag.String("skip", "SNIPPETS.md,PAPERS.md,PAPER.md,ISSUE.md",
		"comma-separated base names to skip (reference files quoting external material)")
	flag.Parse()

	skipped := make(map[string]bool)
	for _, s := range strings.Split(*skip, ",") {
		if s = strings.TrimSpace(s); s != "" {
			skipped[s] = true
		}
	}
	var mdFiles []string
	err := filepath.WalkDir(*root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(name), ".md") && !skipped[name] {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	var problems []problem
	links, external := 0, 0
	for _, f := range mdFiles {
		ps, n, ext := checkFile(f)
		problems = append(problems, ps...)
		links += n
		external += ext
	}

	fmt.Printf("doccheck: %d markdown files, %d links (%d external, not fetched)\n",
		len(mdFiles), links, external)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Printf("%s:%d: broken link %q: %s\n", p.file, p.line, p.target, p.reason)
		}
		os.Exit(1)
	}
}

// checkFile validates every link of one markdown file, returning the
// problems plus the total and external link counts.
func checkFile(path string) (problems []problem, links, external int) {
	data, err := os.ReadFile(path)
	if err != nil {
		return []problem{{path, 0, "", err.Error()}}, 0, 0
	}
	dir := filepath.Dir(path)
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inFence := false
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		// Links inside fenced code blocks are examples, not references.
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			target := m[1]
			links++
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				external++
				continue
			case strings.HasPrefix(target, "#"):
				if !anchorExists(path, target[1:]) {
					problems = append(problems, problem{path, line, target, "no such heading in this file"})
				}
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := filepath.Join(dir, file)
			info, err := os.Stat(resolved)
			if err != nil {
				problems = append(problems, problem{path, line, target, "no such file or directory"})
				continue
			}
			if frag != "" {
				if info.IsDir() || !strings.EqualFold(filepath.Ext(file), ".md") {
					continue // fragments are only checkable in markdown targets
				}
				if !anchorExists(resolved, frag) {
					problems = append(problems, problem{path, line, target, "no such heading in " + file})
				}
			}
		}
	}
	return problems, links, external
}

// anchorExists reports whether the markdown file has a heading whose
// GitHub-style anchor equals frag.
func anchorExists(path, frag string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	frag = strings.ToLower(frag)
	for _, line := range strings.Split(string(data), "\n") {
		if m := headingRe.FindStringSubmatch(line); m != nil {
			if slugify(m[1]) == frag {
				return true
			}
		}
	}
	return false
}

// slugify approximates GitHub's heading-anchor rule: lowercase, spaces to
// hyphens, punctuation dropped (hyphens and underscores kept).
func slugify(h string) string {
	h = strings.ToLower(strings.TrimSpace(h))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_':
			b.WriteRune(r)
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r > 127: // keep non-ASCII letters (GitHub does)
			b.WriteRune(r)
		}
	}
	return b.String()
}
