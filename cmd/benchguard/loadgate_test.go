package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func opsFrom(t *testing.T, raw string) loadOps {
	t.Helper()
	var r loadOps
	if err := json.Unmarshal([]byte(raw), &r); err != nil {
		t.Fatal(err)
	}
	return r
}

const baseJSON = `{"ops": {
	"predict": {"count": 1000, "qps": 200, "latency_ms": {"p50": 4, "p99": 10}},
	"insert":  {"count": 100,  "qps": 20,  "latency_ms": {"p50": 2, "p99": 6}},
	"fit":     {"count": 5,    "qps": 1,   "latency_ms": {"p50": 80, "p99": 120}}
}}`

// TestCompareLoad pins the gate's verdicts: within threshold, beyond it,
// skipped for thin sample counts, and ignored when a class is absent from
// one side.
func TestCompareLoad(t *testing.T) {
	base := opsFrom(t, baseJSON)
	cur := opsFrom(t, `{"ops": {
		"predict": {"count": 1200, "qps": 180, "latency_ms": {"p50": 5, "p99": 18}},
		"insert":  {"count": 110,  "qps": 21,  "latency_ms": {"p50": 2, "p99": 7}},
		"fit":     {"count": 4,    "qps": 1,   "latency_ms": {"p50": 300, "p99": 500}},
		"novel":   {"count": 50,   "qps": 9,   "latency_ms": {"p50": 1, "p99": 2}}
	}}`)

	report := compareLoad(base, cur, 50, 20)
	verdicts := make(map[string]loadComparison, len(report))
	for _, c := range report {
		verdicts[c.Op] = c
	}
	if len(report) != 3 {
		t.Fatalf("compared %d classes, want 3 (novel has no baseline): %v", len(report), verdicts)
	}
	if c := verdicts["predict"]; !c.Regressed || c.Skipped {
		t.Errorf("predict p99 10 -> 18 ms (+80%%) must regress at 50%%: %+v", c)
	}
	if c := verdicts["insert"]; c.Regressed || c.Skipped {
		t.Errorf("insert p99 6 -> 7 ms (+17%%) must pass at 50%%: %+v", c)
	}
	if c := verdicts["fit"]; !c.Skipped || c.Regressed {
		t.Errorf("fit with 4-5 samples must be skipped, never gated: %+v", c)
	}
}

// TestCompareLoadZeroBaseline covers the degenerate baseline: a class
// whose baseline p99 is zero regresses as soon as the current run is not.
func TestCompareLoadZeroBaseline(t *testing.T) {
	base := opsFrom(t, `{"ops": {"predict": {"count": 100, "latency_ms": {"p99": 0}}}}`)
	cur := opsFrom(t, `{"ops": {"predict": {"count": 100, "latency_ms": {"p99": 3}}}}`)
	report := compareLoad(base, cur, 50, 20)
	if len(report) != 1 || !report[0].Regressed {
		t.Errorf("0 -> 3 ms p99 must regress: %+v", report)
	}
}

// TestRunLoadGate exercises the file-level path: parse, compare, emit the
// JSON verdict report.
func TestRunLoadGate(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	outPath := filepath.Join(dir, "verdict.json")
	if err := os.WriteFile(basePath, []byte(baseJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(curPath, []byte(baseJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	regressed, err := runLoadGate(basePath, curPath, outPath, 50)
	if err != nil {
		t.Fatal(err)
	}
	if regressed != 0 {
		t.Errorf("identical reports regressed %d classes, want 0", regressed)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []loadComparison
	if err := json.Unmarshal(data, &verdicts); err != nil {
		t.Fatalf("verdict report does not parse: %v", err)
	}
	if len(verdicts) != 3 {
		t.Errorf("verdict report holds %d classes, want 3", len(verdicts))
	}

	if _, err := runLoadGate(basePath, filepath.Join(dir, "missing.json"), "", 50); err == nil {
		t.Error("missing current report must error")
	}
	if err := os.WriteFile(curPath, []byte(`{"total": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runLoadGate(basePath, curPath, "", 50); err == nil {
		t.Error("report without ops must error")
	}
}
