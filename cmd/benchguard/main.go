// Command benchguard compares two Go benchmark output files (the committed
// baseline and a fresh run) and fails when a benchmark's allocations per
// operation regressed beyond a threshold. The CI bench job runs it after
// benchstat: benchstat renders the human-readable comparison, benchguard is
// the machine gate that turns a memory regression into a red build.
//
// Usage:
//
//	benchguard -baseline old.txt -current new.txt [-pattern regexp] [-threshold 25] [-json report.json]
//	benchguard -load-baseline old.json -load-current new.json [-load-threshold 50] [-soft] [-json report.json]
//
// Benchmark names are matched after stripping the -GOMAXPROCS suffix, so a
// baseline recorded on one machine gates runs on another; only benchmarks
// present in both files are compared (CPU-count-dependent sub-benchmarks
// that exist on one machine only are skipped). ns/op is reported but never
// gated — wall-clock varies across runners, allocation counts do not.
//
// The second form is the macro-latency gate: both inputs are cmd/lafload
// JSON reports, and any op class whose p99 latency grew beyond
// -load-threshold percent fails the gate. Latency does vary across
// runners, so CI's shared-runner invocation passes -soft (print the
// comparison, never fail the build); see docs/OPERATIONS.md for when a
// hard gate is appropriate and how to refresh the committed baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine is one parsed benchmark result.
type benchLine struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	HasMem      bool    `json:"has_mem"`
}

// comparison is one baseline/current pair in the JSON report.
type comparison struct {
	Name            string  `json:"name"`
	BaselineAllocs  float64 `json:"baseline_allocs_per_op"`
	CurrentAllocs   float64 `json:"current_allocs_per_op"`
	AllocsChangePct float64 `json:"allocs_change_pct"`
	BaselineBytes   float64 `json:"baseline_bytes_per_op"`
	CurrentBytes    float64 `json:"current_bytes_per_op"`
	BytesChangePct  float64 `json:"bytes_change_pct"`
	Regressed       bool    `json:"regressed"`
}

// resultLine matches "BenchmarkName-8  10  123 ns/op  456 B/op  7 allocs/op"
// (the memory columns are present under -benchmem). Custom metrics between
// ns/op and B/op are tolerated.
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

func parseFile(path string) (map[string]benchLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]benchLine)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		mm := resultLine.FindStringSubmatch(sc.Text())
		if mm == nil {
			continue
		}
		l := benchLine{Name: mm[1]}
		l.NsPerOp, _ = strconv.ParseFloat(mm[2], 64)
		if mm[3] != "" {
			l.BytesPerOp, _ = strconv.ParseFloat(mm[3], 64)
			l.AllocsPerOp, _ = strconv.ParseFloat(mm[4], 64)
			l.HasMem = true
		}
		out[l.Name] = l
	}
	return out, sc.Err()
}

// changePct returns the relative growth of cur over base in percent; a
// zero-allocation baseline only regresses if the current run allocates.
func changePct(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return (cur - base) / base * 100
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	var (
		baselinePath = flag.String("baseline", "", "committed baseline benchmark output (required)")
		currentPath  = flag.String("current", "", "fresh benchmark output to gate (required)")
		pattern      = flag.String("pattern", ".", "regexp selecting which benchmarks to gate")
		threshold    = flag.Float64("threshold", 25, "maximum tolerated allocs/op growth in percent")
		jsonPath     = flag.String("json", "", "optional path for a machine-readable comparison report")

		loadBaseline  = flag.String("load-baseline", "", "committed lafload JSON baseline (selects load mode)")
		loadCurrent   = flag.String("load-current", "", "fresh lafload JSON report to gate")
		loadThreshold = flag.Float64("load-threshold", 50, "maximum tolerated p99 latency growth in percent")
		soft          = flag.Bool("soft", false, "report load regressions without failing (shared runners)")
	)
	flag.Parse()
	if *loadBaseline != "" || *loadCurrent != "" {
		if *loadBaseline == "" || *loadCurrent == "" {
			flag.Usage()
			os.Exit(2)
		}
		regressed, err := runLoadGate(*loadBaseline, *loadCurrent, *jsonPath, *loadThreshold)
		if err != nil {
			log.Fatal(err)
		}
		if regressed > 0 {
			if *soft {
				fmt.Printf("benchguard: %d op classes regressed beyond %+.0f%% p99 (soft mode, not failing)\n",
					regressed, *loadThreshold)
				return
			}
			log.Fatalf("%d op classes regressed beyond %+.0f%% p99 latency", regressed, *loadThreshold)
		}
		fmt.Printf("benchguard: load report within %+.0f%% p99 of baseline\n", *loadThreshold)
		return
	}
	if *baselinePath == "" || *currentPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	sel, err := regexp.Compile(*pattern)
	if err != nil {
		log.Fatalf("bad -pattern: %v", err)
	}
	base, err := parseFile(*baselinePath)
	if err != nil {
		log.Fatalf("reading baseline: %v", err)
	}
	cur, err := parseFile(*currentPath)
	if err != nil {
		log.Fatalf("reading current: %v", err)
	}

	var report []comparison
	compared, regressed := 0, 0
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic output order
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok || !sel.MatchString(name) || !c.HasMem || !b.HasMem {
			continue
		}
		compared++
		cmp := comparison{
			Name:           name,
			BaselineAllocs: b.AllocsPerOp, CurrentAllocs: c.AllocsPerOp,
			AllocsChangePct: changePct(b.AllocsPerOp, c.AllocsPerOp),
			BaselineBytes:   b.BytesPerOp, CurrentBytes: c.BytesPerOp,
			BytesChangePct: changePct(b.BytesPerOp, c.BytesPerOp),
		}
		cmp.Regressed = cmp.AllocsChangePct > *threshold
		if cmp.Regressed {
			regressed++
			fmt.Printf("FAIL %s: allocs/op %.0f -> %.0f (%+.1f%%, threshold %+.0f%%)\n",
				name, b.AllocsPerOp, c.AllocsPerOp, cmp.AllocsChangePct, *threshold)
		} else {
			fmt.Printf("ok   %s: allocs/op %.0f -> %.0f (%+.1f%%), B/op %.0f -> %.0f (%+.1f%%)\n",
				name, b.AllocsPerOp, c.AllocsPerOp, cmp.AllocsChangePct,
				b.BytesPerOp, c.BytesPerOp, cmp.BytesChangePct)
		}
		report = append(report, cmp)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatalf("encoding report: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *jsonPath, err)
		}
	}
	if compared == 0 {
		log.Fatalf("no benchmarks matched both files and %q — baseline stale?", *pattern)
	}
	if regressed > 0 {
		log.Fatalf("%d of %d gated benchmarks regressed beyond %+.0f%% allocs/op", regressed, compared, *threshold)
	}
	fmt.Printf("benchguard: %d benchmarks within %+.0f%% allocs/op of baseline\n", compared, *threshold)
}
