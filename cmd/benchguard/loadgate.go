package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// This file is benchguard's macro gate: where the default mode compares
// go-test benchmark output (allocs/op, stable across machines), the load
// mode compares two cmd/lafload JSON reports and flags p99 latency
// regressions per operation class. Latency IS machine-dependent, which is
// why the CI nightly runs this gate with -soft on shared runners: the
// comparison is printed and archived, but only a dedicated-hardware run
// should let it fail the build (see docs/OPERATIONS.md).

// loadOps is the slice of a lafload report this gate consumes; decoding
// loosely keeps benchguard compatible with additive report growth.
type loadOps struct {
	Ops map[string]struct {
		Count   int     `json:"count"`
		Errors  int     `json:"errors"`
		QPS     float64 `json:"qps"`
		Latency struct {
			P50 float64 `json:"p50"`
			P99 float64 `json:"p99"`
		} `json:"latency_ms"`
		WorstSamples []struct {
			TraceID string  `json:"trace_id"`
			Ms      float64 `json:"ms"`
		} `json:"worst_samples"`
	} `json:"ops"`
}

// loadComparison is one op class's verdict in the gate's JSON report.
type loadComparison struct {
	Op          string  `json:"op"`
	BaselineP99 float64 `json:"baseline_p99_ms"`
	CurrentP99  float64 `json:"current_p99_ms"`
	ChangePct   float64 `json:"p99_change_pct"`
	BaselineQPS float64 `json:"baseline_qps"`
	CurrentQPS  float64 `json:"current_qps"`
	Skipped     bool    `json:"skipped,omitempty"` // too few samples to trust
	Regressed   bool    `json:"regressed"`
	// WorstTraces carries the current run's worst-sample trace IDs when the
	// class regressed: resolve them at the server's GET /v1/traces?trace=
	// to see where the regressed requests spent their time (the nightly
	// workflow archives that view next to the report).
	WorstTraces []string `json:"worst_traces,omitempty"`
}

// minLoadSamples is the floor below which an op class's quantiles are too
// noisy to gate — a 1.5s smoke run's fit class may have single-digit
// samples, and one GC pause would fail the build.
const minLoadSamples = 20

// compareLoad pairs the op classes present in both reports and flags any
// whose p99 grew beyond threshold percent. Classes missing from either
// side are ignored (mix changes shouldn't fail the gate); classes under
// minSamples in either run are reported but marked skipped.
func compareLoad(base, cur loadOps, threshold float64, minSamples int) []loadComparison {
	ops := make([]string, 0, len(cur.Ops))
	for op := range cur.Ops {
		if _, ok := base.Ops[op]; ok {
			ops = append(ops, op)
		}
	}
	sort.Strings(ops)
	out := make([]loadComparison, 0, len(ops))
	for _, op := range ops {
		b, c := base.Ops[op], cur.Ops[op]
		cmp := loadComparison{
			Op:          op,
			BaselineP99: b.Latency.P99, CurrentP99: c.Latency.P99,
			ChangePct:   changePct(b.Latency.P99, c.Latency.P99),
			BaselineQPS: b.QPS, CurrentQPS: c.QPS,
		}
		if b.Count < minSamples || c.Count < minSamples {
			cmp.Skipped = true
		} else {
			cmp.Regressed = cmp.ChangePct > threshold
		}
		if cmp.Regressed {
			for _, ws := range c.WorstSamples {
				if ws.TraceID != "" {
					cmp.WorstTraces = append(cmp.WorstTraces, ws.TraceID)
				}
			}
		}
		out = append(out, cmp)
	}
	return out
}

func parseLoadReport(path string) (loadOps, error) {
	var r loadOps
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(r.Ops) == 0 {
		return r, fmt.Errorf("%s holds no op classes — not a lafload report?", path)
	}
	return r, nil
}

// runLoadGate executes the load mode end to end and returns the number of
// regressed op classes (the caller decides whether that fails the build).
func runLoadGate(baselinePath, currentPath, jsonPath string, threshold float64) (regressed int, err error) {
	base, err := parseLoadReport(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("reading load baseline: %w", err)
	}
	cur, err := parseLoadReport(currentPath)
	if err != nil {
		return 0, fmt.Errorf("reading load current: %w", err)
	}
	report := compareLoad(base, cur, threshold, minLoadSamples)
	if len(report) == 0 {
		return 0, fmt.Errorf("no op classes in common between %s and %s", baselinePath, currentPath)
	}
	for _, cmp := range report {
		switch {
		case cmp.Skipped:
			fmt.Printf("skip %s: p99 %.2f -> %.2f ms (too few samples to gate)\n",
				cmp.Op, cmp.BaselineP99, cmp.CurrentP99)
		case cmp.Regressed:
			regressed++
			fmt.Printf("FAIL %s: p99 %.2f -> %.2f ms (%+.1f%%, threshold %+.0f%%), qps %.1f -> %.1f\n",
				cmp.Op, cmp.BaselineP99, cmp.CurrentP99, cmp.ChangePct, threshold,
				cmp.BaselineQPS, cmp.CurrentQPS)
			if len(cmp.WorstTraces) > 0 {
				fmt.Printf("     worst traces (GET /v1/traces?trace=<id>): %s\n",
					strings.Join(cmp.WorstTraces, ", "))
			}
		default:
			fmt.Printf("ok   %s: p99 %.2f -> %.2f ms (%+.1f%%), qps %.1f -> %.1f\n",
				cmp.Op, cmp.BaselineP99, cmp.CurrentP99, cmp.ChangePct,
				cmp.BaselineQPS, cmp.CurrentQPS)
		}
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return regressed, err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return regressed, err
		}
	}
	return regressed, nil
}
