// Command lafserve runs the clustering-as-a-service HTTP server: a dataset
// registry, an estimator cache, an asynchronous, cancellable job engine
// over every clustering method of the library, and a model store serving
// fitted clusterings for out-of-sample prediction.
//
// Usage:
//
//	lafserve [-addr :8080] [-job-workers N] [-queue 64] [-models 256] [-preload name=path ...]
//
// The README's "Serving" and "Models & Prediction" sections walk through
// the full API with curl; in short: POST /v1/datasets registers data once,
// POST /v1/estimators trains (and caches) an RMI estimator, POST /v1/jobs
// submits a clustering job whose status, progress and labels are polled
// under /v1/jobs/{id} (DELETE cancels it mid-run), and /v1/models fits,
// stores, persists and serves predictions from reusable clustering models.
// GET /metrics exposes Prometheus-format telemetry (per-endpoint request
// counts and latency histograms, queue depth, worker occupancy, cache and
// model activity); docs/OPERATIONS.md is the operator handbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lafdbscan/internal/serve"
)

// preloads collects repeatable -preload name=path flags.
type preloads []struct{ name, path string }

func (p *preloads) String() string { return fmt.Sprint(*p) }

func (p *preloads) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*p = append(*p, struct{ name, path string }{name, path})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lafserve: ")
	var pre preloads
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("job-workers", 0, "concurrent clustering jobs (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "queued-job capacity before submissions get 429")
		maxJobs   = flag.Int("max-jobs", 0, "retained jobs incl. finished (0 = default 4096)")
		maxModels = flag.Int("models", 0, "stored-model capacity; fits/loads get 409 beyond it (0 = default 256)")
	)
	flag.Var(&pre, "preload", "dataset to register at startup as name=path (repeatable)")
	flag.Parse()
	if *workers < 0 || *queue < 1 || *maxJobs < 0 || *maxModels < 0 {
		flag.Usage()
		os.Exit(2)
	}

	srv := serve.NewServer(serve.Options{
		Workers: *workers, QueueDepth: *queue, MaxJobs: *maxJobs, MaxModels: *maxModels,
	})
	defer srv.Close()
	for _, d := range pre {
		info, err := srv.Registry().RegisterFile(d.name, d.path)
		if err != nil {
			log.Fatalf("preloading %s: %v", d.path, err)
		}
		log.Printf("preloaded dataset %q (%d points, %d dims)", info.Name, info.Points, info.Dims)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Graceful shutdown: stop accepting, let in-flight requests finish,
	// then Close cancels any still-running jobs through their contexts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()

	log.Printf("listening on %s (job workers: %d, queue: %d, metrics at /metrics)", *addr, *workers, *queue)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
