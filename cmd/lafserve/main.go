// Command lafserve runs the clustering-as-a-service HTTP server: a dataset
// registry, an estimator cache, an asynchronous, cancellable job engine
// over every clustering method of the library, and a model store serving
// fitted clusterings for out-of-sample prediction.
//
// Usage:
//
//	lafserve [-addr :8080] [-job-workers N] [-queue 64] [-models 256] [-preload name=path ...]
//	         [-log-format text|json] [-slow-request 1s] [-trace-buffer 4096] [-trace-sample 1] [-pprof]
//	         [-index-backend auto] [-wal-dir /var/lib/laf/wal] [-wal-sync always] [-wal-snapshot-every 1024]
//
// The README's "Serving" and "Models & Prediction" sections walk through
// the full API with curl; in short: POST /v1/datasets registers data once,
// POST /v1/estimators trains (and caches) an RMI estimator, POST /v1/jobs
// submits a clustering job whose status, progress and labels are polled
// under /v1/jobs/{id} (DELETE cancels it mid-run), and /v1/models fits,
// stores, persists and serves predictions from reusable clustering models.
// GET /metrics exposes Prometheus-format telemetry, GET /v1/traces the
// recent request traces (every response carries its trace ID in
// X-Laf-Trace), and -pprof adds Go's profiling endpoints under
// /debug/pprof/; docs/OPERATIONS.md is the operator handbook.
//
// With -wal-dir every model mutation is journaled to a write-ahead log
// before it is applied: POST /v1/models/{id}/stream ingests vectors in
// durable micro-batches, POST /v1/models/{id}/snapshot rolls a model's
// journal generation, and a restart recovers every journaled model —
// losing at most the record a crash tore. docs/DURABILITY.md covers the
// record format, fsync policies and recovery semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lafdbscan/internal/serve"
	"lafdbscan/internal/wal"
)

// preloads collects repeatable -preload name=path flags.
type preloads []struct{ name, path string }

func (p *preloads) String() string { return fmt.Sprint(*p) }

func (p *preloads) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*p = append(*p, struct{ name, path string }{name, path})
	return nil
}

// newLogger builds the process logger: text for terminals, json for log
// pipelines. Every line carries the component, and serve-layer lines add
// the request's trace ID (see the slow-request log in docs/OPERATIONS.md).
func newLogger(format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
	return slog.New(h).With("component", "lafserve"), nil
}

func main() {
	var pre preloads
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("job-workers", 0, "concurrent clustering jobs (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "queued-job capacity before submissions get 429")
		maxJobs   = flag.Int("max-jobs", 0, "retained jobs incl. finished (0 = default 4096)")
		maxModels = flag.Int("models", 0, "stored-model capacity; fits/loads get 409 beyond it (0 = default 256)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		slowReq   = flag.Duration("slow-request", time.Second, "log requests at/over this duration with their trace ID (0 disables)")
		traceBuf  = flag.Int("trace-buffer", 0, "span ring capacity, rounded to a power of two (0 = default 4096)")
		traceSmpl = flag.Int("trace-sample", 1, "trace every Nth request (1 = all, -1 = disable tracing)")
		pprofOn   = flag.Bool("pprof", false, "mount Go profiling endpoints under /debug/pprof/")
		idxBack   = flag.String("index-backend", "", `default range-index backend for requests that name none ("" = exact brute force, "auto" = approximate HNSW chain, or a backend name)`)
		walDir    = flag.String("wal-dir", "", "journal root for durable models; empty runs memory-only (see docs/DURABILITY.md)")
		walSync   = flag.String("wal-sync", "always", "WAL fsync policy: always (every record), interval (batched), or off")
		walSnap   = flag.Int("wal-snapshot-every", 0, "auto-snapshot a model after this many journaled records (0 = default 1024)")
	)
	flag.Var(&pre, "preload", "dataset to register at startup as name=path (repeatable)")
	flag.Parse()
	if *workers < 0 || *queue < 1 || *maxJobs < 0 || *maxModels < 0 || *traceBuf < 0 || *slowReq < 0 || *walSnap < 0 {
		flag.Usage()
		os.Exit(2)
	}
	// NewServer treats an invalid sync policy as a programming error, so
	// validate the flag here where a typo gets a usage message instead.
	if _, err := wal.ParseSyncPolicy(*walSync); err != nil {
		fmt.Fprintln(os.Stderr, "lafserve: -wal-sync:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := serve.CheckIndexBackend(*idxBack); err != nil {
		fmt.Fprintln(os.Stderr, "lafserve: -index-backend:", err)
		flag.Usage()
		os.Exit(2)
	}
	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lafserve:", err)
		flag.Usage()
		os.Exit(2)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	srv := serve.NewServer(serve.Options{
		Workers: *workers, QueueDepth: *queue, MaxJobs: *maxJobs, MaxModels: *maxModels,
		TraceCapacity:        *traceBuf,
		TraceSampleEvery:     *traceSmpl,
		SlowRequestThreshold: *slowReq,
		Logger:               logger,
		EnablePprof:          *pprofOn,
		IndexBackend:         *idxBack,
		WALDir:               *walDir,
		WALSync:              *walSync,
		WALSnapshotEvery:     *walSnap,
	})
	defer srv.Close()
	for _, d := range pre {
		info, err := srv.Registry().RegisterFile(d.name, d.path)
		if err != nil {
			fatal("preloading dataset failed", "path", d.path, "error", err)
		}
		logger.Info("preloaded dataset", "name", info.Name, "points", info.Points, "dims", info.Dims)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Graceful shutdown: stop accepting, let in-flight requests finish,
	// then Close cancels any still-running jobs through their contexts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("shutting down", "grace", "10s")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()

	logger.Info("listening",
		"addr", *addr, "job_workers", *workers, "queue", *queue,
		"trace_sample", *traceSmpl, "slow_request", slowReq.String(), "pprof", *pprofOn,
		"index_backend", *idxBack, "wal_dir", *walDir, "wal_sync", *walSync)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("server exited", "error", err)
	}
}
