package lafdbscan

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"lafdbscan/internal/cluster"
	"lafdbscan/internal/core"
	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// This file is online model maintenance: Model.Insert and Model.Remove
// evolve a fitted clustering with the data instead of re-clustering from
// scratch — incremental DBSCAN in the spirit of Ester et al. (1998), built
// on the order-free facts the parallel engines established (PR 1-2): a
// labeling is a pure function of the core set, the ε-connectivity among
// core points, each point's adjacent cores, and (for LAF post-processing)
// the complete partial-neighbor map. The maintenance overlay (incState)
// keeps exactly those facts and updates them from the Eps-neighborhoods of
// the changed points only; labels are then re-resolved canonically
// (cluster.ResolveCanonical) in memory, with no further range queries.
//
// Equality contract. After any sequence of Insert/Remove the model's
// labels are bit-identical to a fresh Fit on the resulting point set for
// the traversal engines:
//
//   - MethodDBSCAN, sequential and parallel, at every Workers/WaveSize;
//   - MethodLAFDBSCAN with post-processing disabled, sequential and
//     parallel;
//   - MethodLAFDBSCAN with post-processing enabled under the parallel
//     engines' complete partial-neighbor map (the sequential traversal's
//     map depends on visit order and is not locally maintainable; the
//     complete map is its order-free superset, so the incremental repair
//     pass sees at least as much evidence).
//
// The sampling/block methods (the ++ variants, KNN-BLOCK, BLOCK-DBSCAN,
// ρ-approximate) keep their fitted core structure and absorb mutations
// under exact density semantics — inserted points become core when their
// true neighbor count reaches Tau, removals demote and split exactly — so
// their divergence from a fresh fit stays bounded by the method's own
// approximation. Mutations renumber clusters canonically (ascending
// minimum core id, the traversal numbering); for the sampling/block
// methods the first mutation may therefore permute cluster ids while
// preserving the partition.

// incState is the maintenance overlay, built lazily by the first mutation.
// It owns its point slice and range index (the fitted ones may be shared
// with the caller or the lafserve registry and are never mutated).
type incState struct {
	// counts[i] is |N(i)|, the true Eps-neighbor count including i itself,
	// for every model point — the density side of the core criterion.
	counts []int
	// gated[i] is the LAF estimator gate decision for point i (estimate >=
	// Alpha*Tau), nil for non-LAF methods. Gating is a pure per-point
	// function of the estimator, so it is computed once and only changes
	// on retrain.
	gated []bool
	// adj[i] lists the current core points within Eps of i (excluding i):
	// the ε-connectivity graph restricted to cores, plus every border's
	// adjacent-core set — the two facts label resolution needs.
	adj [][]int32
	// stop[i] lists the gated points within Eps of stop point i (nil rows
	// for gated points): the complete partial-neighbor map, maintained only
	// for LAF-DBSCAN with post-processing enabled.
	stop [][]int32
	// dyn is the owned dynamic index (the same object as Model.index after
	// the first mutation).
	dyn index.DynamicIndex
	// dist is the model's metric function, for new-point pair distances
	// and nearest-core tie-breaks.
	dist vecmath.DistanceFunc
}

// UpdateReport summarizes one Insert or Remove.
type UpdateReport struct {
	// Inserted and Removed count the points this update added or dropped.
	Inserted int `json:"inserted,omitempty"`
	Removed  int `json:"removed,omitempty"`
	// Promoted and Demoted count existing points whose core status flipped.
	Promoted int `json:"promoted,omitempty"`
	Demoted  int `json:"demoted,omitempty"`
	// Clusters and Cores are the model totals after the update.
	Clusters int `json:"clusters"`
	Cores    int `json:"cores"`
	// Staleness is the mutation count since the estimator was (re)trained.
	Staleness int `json:"staleness"`
	// Retrained reports that this update tripped the RetrainPolicy.
	Retrained bool `json:"retrained,omitempty"`
}

// RetrainPolicy makes a LAF model's estimator follow the data: after After
// mutations since the last (re)training, the next Insert/Remove calls Train
// over the model's current points and swaps the estimator in. For
// MethodLAFDBSCAN the model then re-gates every point and re-resolves
// labels (one batched pass — the incremental analogue of refitting with the
// new estimator); for MethodLAFDBSCANPP only future gate decisions change.
// A zero policy (the default) never retrains; Staleness still counts, so
// callers can drive retraining themselves.
type RetrainPolicy struct {
	// After is the mutation count that triggers a retrain; <= 0 disables.
	After int
	// Train produces a new estimator over the model's current points.
	Train func(ctx context.Context, points [][]float32) (Estimator, error)
}

// SetRetrainPolicy installs the estimator retrain policy (see
// RetrainPolicy). Safe for concurrent use with every other model method.
func (m *Model) SetRetrainPolicy(p RetrainPolicy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retrain = p
}

// modelMetric returns the metric a model's range queries run under: only
// DBSCAN and LAF-DBSCAN honor Params.Metric, every other method is
// hardwired to cosine distance.
func modelMetric(method Method, m DistanceMetric) DistanceMetric {
	if method == MethodDBSCAN || method == MethodLAFDBSCAN {
		return m
	}
	return MetricCosine
}

// gatedMethod reports whether the method places the LAF estimator gate
// before range queries, making gate state part of maintenance.
func (m *Model) gatedMethod() bool {
	return m.method == MethodLAFDBSCAN || m.method == MethodLAFDBSCANPP
}

// trackStop reports whether maintenance must keep the complete partial-
// neighbor map (LAF-DBSCAN's post-processing replay).
func (m *Model) trackStop() bool {
	return m.method == MethodLAFDBSCAN && !m.params.DisablePostProcessing
}

// pool returns the maintenance worker-pool knobs, shared with Predict.
func (m *Model) pool() (workers, grain, wave int) {
	return index.AutoWorkers(m.params.Workers), m.params.BatchSize, m.params.WaveSize
}

// ensureIncLocked builds the maintenance overlay on first use: it clones
// the point slice (the fitted one may be shared), replaces the model's
// index with an owned dynamic brute-force index over the clone (exact
// under the model's metric, so predictions are unchanged), and runs one
// batched neighborhood pass to seed counts, core adjacency and — for LAF —
// gate flags and the complete partial-neighbor map. The fitted core set is
// the baseline: for the exact methods it equals the density criterion the
// overlay maintains; for the sampling/block methods it is the fitted
// approximation mutations build on. On error (cancellation included) the
// model is left unmodified.
func (m *Model) ensureIncLocked(ctx context.Context) error {
	if m.inc != nil {
		return nil
	}
	if m.gatedMethod() && m.params.Estimator == nil {
		return fmt.Errorf("lafdbscan: %s maintenance requires the estimator gate, and this model carries none (loaded from a save that could not serialize it?)", m.method)
	}
	n := len(m.points)
	points := slices.Clone(m.points)
	dist := metricDistance(modelMetric(m.method, m.params.Metric))
	dyn := index.NewBruteForce(slices.Clone(points), dist)
	workers, grain, wave := m.pool()

	var gated []bool
	if m.gatedMethod() {
		threshold := m.params.Alpha * float64(m.params.Tau)
		est := m.params.Estimator
		gated = make([]bool, n)
		index.ForEach(n, workers, grain, func(i int) {
			gated[i] = est.Estimate(points[i], m.params.Eps) >= threshold
		})
	}
	counts, adj, stop, err := m.scanFacts(ctx, dyn, points, m.core, gated, workers, grain, wave)
	if err != nil {
		return err
	}
	m.points = points
	m.index = dyn
	m.indexBackend = index.BackendBrute
	// The model's index is privately owned and mutated from here on, so it
	// must not leak through Params(): a caller holding Params().Index would
	// race the maintenance writes and watch ids shift underneath it. With
	// the field nil, a refit from Params() builds its own (equivalent)
	// index — labels are identical with or without a shared one.
	m.params.Index = nil
	m.inc = &incState{counts: counts, gated: gated, adj: adj, stop: stop, dyn: dyn, dist: dist}
	return nil
}

// metricDistance maps a metric onto its distance function with the
// unit-cosine fast path (the same choice NewBruteForceIndex makes).
func metricDistance(m DistanceMetric) vecmath.DistanceFunc {
	if m == MetricCosine {
		return vecmath.CosineDistanceUnit
	}
	return m.Func()
}

// scanFacts runs one batched neighborhood pass over every point, folding
// each list into counts, adjacency to coreMask, and (when both gated and
// stop tracking apply) the complete partial-neighbor map. Lists are
// dropped per wave; the context aborts within one wave.
func (m *Model) scanFacts(ctx context.Context, idx RangeIndex, points [][]float32, coreMask, gated []bool, workers, grain, wave int) (counts []int, adj, stop [][]int32, err error) {
	n := len(points)
	counts = make([]int, n)
	adj = make([][]int32, n)
	if gated != nil && m.trackStop() {
		stop = make([][]int32, n)
	}
	err = index.BatchRangeSearchFunc(ctx, idx, points, m.params.Eps, workers, grain, wave,
		func(i int, ids []int) {
			counts[i] = len(ids)
			var a []int32
			for _, q := range ids {
				if q != i && coreMask[q] {
					a = append(a, int32(q))
				}
			}
			adj[i] = a
			if stop != nil && !gated[i] {
				var s []int32
				for _, q := range ids {
					if gated[q] {
						s = append(s, int32(q))
					}
				}
				stop[i] = s
			}
		})
	if err != nil {
		return nil, nil, nil, err
	}
	return counts, adj, stop, nil
}

// Insert adds vectors to the model and folds them into the clustering
// online: each new point's Eps-neighborhood is queried once (batched
// through the wave engine, like fitting and prediction), neighbor counts
// update, existing points crossing Tau are promoted to core (one
// neighborhood query each), new core points may merge existing clusters
// through the ε-connectivity forest, and labels are re-resolved in memory.
// New points get ids Len()..Len()+k-1. Vectors must be unit-normalized
// with the model's dimensionality.
//
// For the traversal engines the resulting labels are bit-identical to a
// fresh Fit on the grown point set (see the equality contract at the top
// of this file); total work is proportional to the changed neighborhoods,
// not the dataset.
//
// The first mutation builds the maintenance overlay with one batched pass
// over the existing points and replaces the model's range index with an
// owned exact one. On error — cancellation included — the model is left
// exactly as it was; cancellation aborts within one query wave.
func (m *Model) Insert(ctx context.Context, vectors [][]float32) (UpdateReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(vectors) == 0 {
		return m.reportLocked(UpdateReport{}), nil
	}
	dim := m.dimLocked()
	for i, v := range vectors {
		if len(v) != dim {
			return UpdateReport{}, fmt.Errorf("lafdbscan: insert vector %d has %d dims, model has %d", i, len(v), dim)
		}
	}
	if err := m.ensureIncLocked(ctx); err != nil {
		return UpdateReport{}, err
	}
	inc := m.inc
	n := len(m.points)
	b := len(vectors)
	eps, tau := m.params.Eps, m.params.Tau
	workers, grain, wave := m.pool()

	// Phase A (cancellable, no state changes): neighborhoods of the new
	// vectors over the existing points.
	lists := make([][]int32, b)
	err := index.BatchRangeSearchFunc(ctx, m.index, vectors, eps, workers, grain, wave,
		func(k int, ids []int) {
			l := make([]int32, len(ids))
			for i, id := range ids {
				l[i] = int32(id)
			}
			lists[k] = l
		})
	if err != nil {
		return UpdateReport{}, err
	}
	// Pairwise adjacency among the new vectors themselves: row-parallel
	// over the worker pool (each iteration writes only its own row, paying
	// each distance from both sides for race freedom), in bounded chunks
	// so cancellation keeps wave-scale latency on bulk batches.
	newNbrs := make([][]int32, b)
	const pairChunk = 1024
	for lo := 0; lo < b; lo += pairChunk {
		if err := ctx.Err(); err != nil {
			return UpdateReport{}, err
		}
		hi := min(lo+pairChunk, b)
		index.ForEach(hi-lo, workers, grain, func(k int) {
			i := lo + k
			var row []int32
			for j := 0; j < b; j++ {
				if j != i && inc.dist(vectors[i], vectors[j]) < eps {
					row = append(row, int32(j))
				}
			}
			newNbrs[i] = row
		})
	}
	// Count updates and gate decisions.
	newCounts := make([]int, b)
	delta := make(map[int]int)
	for k := range vectors {
		newCounts[k] = len(lists[k]) + 1 + len(newNbrs[k])
		for _, u := range lists[k] {
			delta[int(u)]++
		}
	}
	var newGated []bool
	if inc.gated != nil {
		threshold := m.params.Alpha * float64(tau)
		est := m.params.Estimator
		newGated = make([]bool, b)
		for k, v := range vectors {
			newGated[k] = est.Estimate(v, eps) >= threshold
		}
	}
	// Core transitions: new points by the (gated) density criterion,
	// existing non-core points crossing Tau promoted.
	newCore := make([]bool, b)
	for k := range vectors {
		newCore[k] = (newGated == nil || newGated[k]) && newCounts[k] >= tau
	}
	var promoted []int
	for u, d := range delta {
		if !m.core[u] && inc.counts[u]+d >= tau && (inc.gated == nil || inc.gated[u]) {
			promoted = append(promoted, u)
		}
	}
	sort.Ints(promoted)

	// Phase B (cancellable): neighborhoods of the promoted points, the
	// bounded re-expansion that wires them into the core graph. The
	// callback runs on pool workers, so results land in a slice indexed by
	// the query position (safe on distinct i) and the map is built after
	// the pool barrier.
	plists := make(map[int][]int32, len(promoted))
	if len(promoted) > 0 {
		queries := make([][]float32, len(promoted))
		for i, w := range promoted {
			queries[i] = m.points[w]
		}
		rows := make([][]int32, len(promoted))
		err := index.BatchRangeSearchFunc(ctx, m.index, queries, eps, workers, grain, wave,
			func(i int, ids []int) {
				l := make([]int32, len(ids))
				for j, id := range ids {
					l[j] = int32(id)
				}
				rows[i] = l
			})
		if err != nil {
			return UpdateReport{}, err
		}
		for i, w := range promoted {
			plists[w] = rows[i]
		}
	}
	// New-point neighbors of each promoted point, read off phase A's lists
	// by symmetry (no extra distance work).
	promotedNew := make(map[int][]int32, len(promoted))
	promotedSet := make(map[int]bool, len(promoted))
	for _, w := range promoted {
		promotedSet[w] = true
	}
	for k := range vectors {
		for _, u := range lists[k] {
			if promotedSet[int(u)] {
				promotedNew[int(u)] = append(promotedNew[int(u)], int32(n+k))
			}
		}
	}

	// ---- Commit: in-memory only, no cancellation points below. ----
	inc.counts = append(inc.counts, newCounts...)
	for u, d := range delta {
		inc.counts[u] += d
	}
	if inc.gated != nil {
		inc.gated = append(inc.gated, newGated...)
	}
	coreMask := slices.Clone(m.core)
	coreMask = append(coreMask, newCore...)
	for _, w := range promoted {
		coreMask[w] = true
	}
	m.core = coreMask
	m.points = append(m.points, vectors...)
	inc.dyn.Insert(vectors)
	inc.adj = append(inc.adj, make([][]int32, b)...)
	if inc.stop != nil {
		inc.stop = append(inc.stop, make([][]int32, b)...)
	}

	// fullOf assembles a changed point's complete neighbor id set (old
	// neighbors from the phase queries, new ones from phase A's symmetry).
	fullOf := func(c int) []int32 {
		if c >= n {
			k := c - n
			full := slices.Clone(lists[k])
			for _, j := range newNbrs[k] {
				full = append(full, int32(n)+j)
			}
			return full
		}
		return append(slices.Clone(plists[c]), promotedNew[c]...)
	}
	newlyCore := make(map[int]bool, len(promoted)+b)
	for _, w := range promoted {
		newlyCore[w] = true
	}
	var newlyCoreIDs []int
	newlyCoreIDs = append(newlyCoreIDs, promoted...)
	for k := range vectors {
		if newCore[k] {
			newlyCore[n+k] = true
			newlyCoreIDs = append(newlyCoreIDs, n+k)
		}
	}
	// Wire every newly-core point into the adjacency: its own row holds
	// its core neighbors; every neighbor outside the newly-core set gains
	// it (pairs within the set are covered symmetrically by their own
	// rows).
	for _, c := range newlyCoreIDs {
		full := fullOf(c)
		var a []int32
		for _, u := range full {
			ui := int(u)
			if ui == c {
				continue
			}
			if m.core[ui] {
				a = append(a, u)
			}
			if !newlyCore[ui] {
				inc.adj[ui] = append(inc.adj[ui], int32(c))
			}
		}
		inc.adj[c] = a
	}
	// Rows for the new non-core points: their adjacent cores.
	for k := range vectors {
		if newCore[k] {
			continue
		}
		var a []int32
		for _, u := range fullOf(n + k) {
			if int(u) != n+k && m.core[u] {
				a = append(a, u)
			}
		}
		inc.adj[n+k] = a
	}
	// Complete partial-neighbor map: new gated points register with their
	// old stop neighbors; new stop points collect their gated neighbors
	// (old and new) from their own side.
	if inc.stop != nil {
		for k := range vectors {
			if newGated[k] {
				for _, u := range lists[k] {
					if !inc.gated[u] {
						inc.stop[u] = append(inc.stop[u], int32(n+k))
					}
				}
			} else {
				var s []int32
				for _, u := range fullOf(n + k) {
					if inc.gated[u] {
						s = append(s, u)
					}
				}
				inc.stop[n+k] = s
			}
		}
	}

	m.relabelLocked()
	m.updates += int64(b)
	m.staleness += b
	report := m.reportLocked(UpdateReport{Inserted: b, Promoted: len(promoted)})
	return m.maybeRetrainLocked(ctx, report)
}

// Remove drops the points with the given ids from the model and repairs
// the clustering online: the removed points' Eps-neighborhoods are queried
// once (batched through the wave engine), neighbor counts drop, core
// points falling under Tau are demoted (one neighborhood query each — the
// bounded re-expansion of the affected region), and label re-resolution
// over the maintained core graph detects every cluster split exactly. Ids
// follow the compacting convention: after the call, ids above each removed
// point shift down by one, matching a fresh Fit on the shrunken point set.
// Duplicate ids are rejected; removing every point is (like fitting an
// empty dataset) an error.
//
// The equality and atomicity guarantees of Insert apply: traversal-engine
// labels match a fresh Fit bit for bit, and a failed or cancelled call
// leaves the model untouched.
func (m *Model) Remove(ctx context.Context, ids []int) (UpdateReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(ids) == 0 {
		return m.reportLocked(UpdateReport{}), nil
	}
	n := len(m.points)
	ids = slices.Clone(ids)
	sort.Ints(ids)
	for i, id := range ids {
		if id < 0 || id >= n {
			return UpdateReport{}, fmt.Errorf("lafdbscan: remove id %d out of range [0, %d)", id, n)
		}
		if i > 0 && ids[i-1] == id {
			return UpdateReport{}, fmt.Errorf("lafdbscan: duplicate remove id %d", id)
		}
	}
	if len(ids) == n {
		return UpdateReport{}, fmt.Errorf("lafdbscan: cannot remove all %d points (a model needs a non-empty point set)", n)
	}
	if err := m.ensureIncLocked(ctx); err != nil {
		return UpdateReport{}, err
	}
	inc := m.inc
	eps, tau := m.params.Eps, m.params.Tau
	workers, grain, wave := m.pool()
	rm := make([]bool, n)
	for _, id := range ids {
		rm[id] = true
	}

	// Phase A (cancellable): neighborhoods of the removed points.
	rlists := make([][]int32, len(ids))
	queries := make([][]float32, len(ids))
	for i, id := range ids {
		queries[i] = m.points[id]
	}
	err := index.BatchRangeSearchFunc(ctx, m.index, queries, eps, workers, grain, wave,
		func(i int, nbrs []int) {
			l := make([]int32, len(nbrs))
			for j, id := range nbrs {
				l[j] = int32(id)
			}
			rlists[i] = l
		})
	if err != nil {
		return UpdateReport{}, err
	}
	// Count decrements for the survivors and the demotions they trigger.
	dec := make(map[int]int)
	for _, l := range rlists {
		for _, u := range l {
			if !rm[u] {
				dec[int(u)]++
			}
		}
	}
	var demoted []int
	for u, d := range dec {
		if m.core[u] && inc.counts[u]-d < tau {
			demoted = append(demoted, u)
		}
	}
	sort.Ints(demoted)

	// Phase B (cancellable): neighborhoods of the demoted points, needed
	// to unhook them from their neighbors' adjacency. Same slice-then-map
	// shape as Insert's phase B: the callback only writes its own row.
	dlists := make(map[int][]int32, len(demoted))
	if len(demoted) > 0 {
		dq := make([][]float32, len(demoted))
		for i, d := range demoted {
			dq[i] = m.points[d]
		}
		rows := make([][]int32, len(demoted))
		err := index.BatchRangeSearchFunc(ctx, m.index, dq, eps, workers, grain, wave,
			func(i int, nbrs []int) {
				l := make([]int32, len(nbrs))
				for j, id := range nbrs {
					l[j] = int32(id)
				}
				rows[i] = l
			})
		if err != nil {
			return UpdateReport{}, err
		}
		for i, d := range demoted {
			dlists[d] = rows[i]
		}
	}

	// ---- Commit: in-memory only, no cancellation points below. ----
	for u, d := range dec {
		inc.counts[u] -= d
	}
	coreMask := slices.Clone(m.core)
	for _, d := range demoted {
		coreMask[d] = false
	}
	m.core = coreMask
	// Unhook removed points from their neighbors' adjacency and stop sets.
	for i, x := range ids {
		for _, u := range rlists[i] {
			if rm[u] {
				continue
			}
			dropID(inc.adj, int(u), int32(x))
			if inc.stop != nil && inc.gated[x] && !inc.gated[u] {
				dropID(inc.stop, int(u), int32(x))
			}
		}
	}
	// Unhook demoted points from their neighbors' adjacency (their own
	// rows already hold their core neighbors, which is what a border
	// needs; gate state is untouched, so stop sets are too).
	for _, d := range demoted {
		for _, u := range dlists[d] {
			if !rm[u] && int(u) != d {
				dropID(inc.adj, int(u), int32(d))
			}
		}
	}
	// Compaction: ids above each removed point shift down.
	remap := make([]int32, n)
	next := int32(0)
	for i := 0; i < n; i++ {
		if rm[i] {
			remap[i] = -1
		} else {
			remap[i] = next
			next++
		}
	}
	m.points = compactRows(m.points, rm)
	inc.counts = compactRows(inc.counts, rm)
	if inc.gated != nil {
		inc.gated = compactRows(inc.gated, rm)
	}
	m.core = compactRows(m.core, rm)
	inc.adj = compactIDRows(inc.adj, rm, remap)
	if inc.stop != nil {
		inc.stop = compactIDRows(inc.stop, rm, remap)
	}
	inc.dyn.DeleteMany(ids) // one structural pass, not k shifts

	m.relabelLocked()
	m.updates += int64(len(ids))
	m.staleness += len(ids)
	report := m.reportLocked(UpdateReport{Removed: len(ids), Demoted: len(demoted)})
	return m.maybeRetrainLocked(ctx, report)
}

// dropID removes the first occurrence of id from rows[i] (entries are
// unique by construction).
func dropID(rows [][]int32, i int, id int32) {
	row := rows[i]
	for k, v := range row {
		if v == id {
			rows[i] = slices.Delete(row, k, k+1)
			return
		}
	}
}

// compactRows drops the marked rows, preserving order.
func compactRows[T any](rows []T, rm []bool) []T {
	out := rows[:0]
	for i, r := range rows {
		if !rm[i] {
			out = append(out, r)
		}
	}
	return out
}

// compactIDRows drops the marked rows and remaps every surviving id
// (defensively dropping any id that maps to a removed point).
func compactIDRows(rows [][]int32, rm []bool, remap []int32) [][]int32 {
	out := rows[:0]
	for i, row := range rows {
		if rm[i] {
			continue
		}
		kept := row[:0]
		for _, v := range row {
			if nv := remap[v]; nv >= 0 {
				kept = append(kept, nv)
			}
		}
		out = append(out, kept)
	}
	return out
}

// relabelLocked re-resolves labels, forest and cluster statistics from the
// maintained facts: canonical component labeling, the method's border
// rule, and — for LAF-DBSCAN with post-processing — the Algorithm 3 replay
// over the complete partial-neighbor map with the model's seed. Pure
// in-memory work; no range queries.
func (m *Model) relabelLocked() {
	inc := m.inc
	var nearest func(i int, cands []int32) int32
	if m.nearestCoreSemantics() {
		nearest = func(i int, cands []int32) int32 {
			best, bestD := int32(-1), m.params.Eps
			for _, c := range cands {
				if !m.core[c] {
					continue
				}
				if d := vecmath.CosineDistanceUnit(m.points[i], m.points[c]); d < bestD {
					best, bestD = c, d
				}
			}
			return best
		}
	}
	labels := cluster.ResolveCanonical(m.core, inc.adj, nearest)
	if inc.stop != nil {
		e := make(core.PartialNeighbors, len(inc.stop))
		for i, row := range inc.stop {
			if inc.gated[i] {
				continue
			}
			set := make(map[int]struct{}, len(row))
			for _, q := range row {
				set[int(q)] = struct{}{}
			}
			e[i] = set
		}
		rng := rand.New(rand.NewSource(m.params.Seed))
		core.PostProcess(labels, e, m.params.Tau, rng)
	}
	k := cluster.RenumberAscending(labels)
	m.labels = labels
	m.forest = cluster.DeriveForest(labels, m.core)
	coreIDs := make([]int, 0, len(m.coreIDs))
	for i, c := range m.core {
		if c {
			coreIDs = append(coreIDs, i)
		}
	}
	m.coreIDs = coreIDs
	m.result = &Result{
		Algorithm:      m.result.Algorithm,
		Labels:         labels,
		NumClusters:    k,
		Core:           m.core,
		Forest:         m.forest,
		RangeQueries:   m.result.RangeQueries,
		SkippedQueries: m.result.SkippedQueries,
		PostMerges:     m.result.PostMerges,
	}
}

// reportLocked fills an update report's model totals.
func (m *Model) reportLocked(r UpdateReport) UpdateReport {
	r.Clusters = m.result.NumClusters
	r.Cores = len(m.coreIDs)
	r.Staleness = m.staleness
	return r
}

// maybeRetrainLocked applies the RetrainPolicy after a committed update.
// The update itself is already applied; a retrain failure is returned with
// the (valid) report, and the stale estimator stays in place.
func (m *Model) maybeRetrainLocked(ctx context.Context, report UpdateReport) (UpdateReport, error) {
	if m.retrain.After <= 0 || m.retrain.Train == nil || m.staleness < m.retrain.After ||
		!m.gatedMethod() || m.params.Estimator == nil {
		return report, nil
	}
	est, err := m.retrain.Train(ctx, m.points)
	if err != nil {
		return report, fmt.Errorf("lafdbscan: estimator retrain after %d updates: %w", m.staleness, err)
	}
	m.params.Estimator = est
	m.staleness = 0
	report.Retrained = true
	report.Staleness = 0
	if m.method == MethodLAFDBSCAN {
		// Re-gate: the new estimator changes which points query, hence the
		// core set; rebuild the maintained facts with one batched pass and
		// re-resolve. This is the incremental analogue of refitting with
		// the retrained estimator.
		if err := m.regateLocked(ctx); err != nil {
			return report, fmt.Errorf("lafdbscan: re-gating after retrain: %w", err)
		}
		report = m.reportLocked(report)
	}
	return report, nil
}

// regateLocked recomputes gate flags under the current estimator, derives
// the new core set from the maintained density counts, and rebuilds
// adjacency and the partial-neighbor map with one batched pass.
func (m *Model) regateLocked(ctx context.Context) error {
	inc := m.inc
	n := len(m.points)
	workers, grain, wave := m.pool()
	threshold := m.params.Alpha * float64(m.params.Tau)
	est := m.params.Estimator
	gated := make([]bool, n)
	index.ForEach(n, workers, grain, func(i int) {
		gated[i] = est.Estimate(m.points[i], m.params.Eps) >= threshold
	})
	coreMask := make([]bool, n)
	for i := range coreMask {
		coreMask[i] = gated[i] && inc.counts[i] >= m.params.Tau
	}
	counts, adj, stop, err := m.scanFacts(ctx, m.index, m.points, coreMask, gated, workers, grain, wave)
	if err != nil {
		return err
	}
	inc.counts, inc.gated, inc.adj, inc.stop = counts, gated, adj, stop
	m.core = coreMask
	m.relabelLocked()
	return nil
}
