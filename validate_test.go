package lafdbscan

import "testing"

// TestParamsValidate pins the accepted domain and a representative
// rejection for every field.
func TestParamsValidate(t *testing.T) {
	good := Params{Eps: 0.55, Tau: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("minimal params rejected: %v", err)
	}
	full := Params{
		Eps: 2, Tau: 1, Alpha: 2.5, SampleFraction: 1,
		Branching: 10, LeavesRatio: 0.6, Base: 2, RNT: 10, Rho: 1,
		Metric: MetricEuclidean, Workers: WorkersAuto, BatchSize: 8, WaveSize: -1,
		IndexBackend: "hnsw", EfSearch: 128,
	}
	if err := full.Validate(); err != nil {
		t.Fatalf("boundary params rejected: %v", err)
	}

	bad := []struct {
		name string
		mut  func(*Params)
	}{
		{"eps zero", func(p *Params) { p.Eps = 0 }},
		{"eps above 2", func(p *Params) { p.Eps = 2.5 }},
		{"tau zero", func(p *Params) { p.Tau = 0 }},
		{"alpha negative", func(p *Params) { p.Alpha = -1 }},
		{"sample fraction above 1", func(p *Params) { p.SampleFraction = 1.5 }},
		{"branching one", func(p *Params) { p.Branching = 1 }},
		{"leaves ratio above 1", func(p *Params) { p.LeavesRatio = 1.5 }},
		{"base one", func(p *Params) { p.Base = 1 }},
		{"rnt negative", func(p *Params) { p.RNT = -1 }},
		{"rho negative", func(p *Params) { p.Rho = -0.1 }},
		{"metric unknown", func(p *Params) { p.Metric = 99 }},
		{"workers below -1", func(p *Params) { p.Workers = -2 }},
		{"batch negative", func(p *Params) { p.BatchSize = -1 }},
		{"wave below -1", func(p *Params) { p.WaveSize = -2 }},
		{"index backend unknown", func(p *Params) { p.IndexBackend = "bogus" }},
		// The grid only answers euclidean queries; naming it under the
		// default cosine metric is a capability mismatch.
		{"index backend metric-incapable", func(p *Params) { p.IndexBackend = "grid" }},
		{"ef search negative", func(p *Params) { p.EfSearch = -1 }},
	}
	for _, c := range bad {
		p := good
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestEntryPointsValidate checks that the validation actually guards the
// public entry points, not just exists.
func TestEntryPointsValidate(t *testing.T) {
	pts := [][]float32{{1, 0}, {0, 1}}
	bad := Params{Eps: 3, Tau: 5}
	for _, m := range append(Methods(), MethodRhoApprox) {
		if _, err := Cluster(pts, m, bad); err == nil {
			t.Errorf("%s accepted eps=3", m)
		}
	}
}
