package lafdbscan

// Tests for the Euclidean-metric extension — the paper's stated future work
// ("our methods are easy to adapt to other distances"). On unit vectors
// Equation 1 makes the two metrics interchangeable, which pins down exactly
// what the extension must satisfy: clustering under Euclidean distance with
// the converted threshold must equal clustering under cosine distance.

import "testing"

func TestDBSCANMetricEquivalenceEquationOne(t *testing.T) {
	d := GenerateMixture("metric", MixtureConfig{
		N: 300, Dim: 24, Clusters: 5, MinSpread: 0.2, MaxSpread: 0.4,
		NoiseFrac: 0.2, Seed: 91,
	})
	const epsCos = 0.5
	cosRes, err := DBSCAN(d.Vectors, Params{Eps: epsCos, Tau: 4, Metric: MetricCosine})
	if err != nil {
		t.Fatal(err)
	}
	eucRes, err := DBSCAN(d.Vectors, Params{
		Eps: CosineToEuclidean(epsCos), Tau: 4, Metric: MetricEuclidean,
	})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(cosRes.Labels, eucRes.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.999 {
		t.Errorf("Equation 1 equivalence broken: ARI = %v", ari)
	}
}

func TestLAFDBSCANEuclideanMetricEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	d := GenerateMixture("metric-e2e", MixtureConfig{
		N: 500, Dim: 32, Clusters: 6, MinSpread: 0.2, MaxSpread: 0.4,
		NoiseFrac: 0.25, Seed: 92,
	})
	train, test, err := Split(d, 0.8, 92)
	if err != nil {
		t.Fatal(err)
	}
	est, err := TrainRMIEstimator(train.Vectors, EstimatorConfig{
		TargetSize: test.Len(), Metric: MetricEuclidean,
		Hidden: []int{24, 12}, Epochs: 20, MaxQueries: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	epsEuc := CosineToEuclidean(0.5)
	truth, err := DBSCAN(test.Vectors, Params{Eps: epsEuc, Tau: 4, Metric: MetricEuclidean})
	if err != nil {
		t.Fatal(err)
	}
	res, err := LAFDBSCAN(test.Vectors, Params{
		Eps: epsEuc, Tau: 4, Alpha: 1.0, Estimator: est,
		Metric: MetricEuclidean, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ari, _ := ARI(truth.Labels, res.Labels)
	if ari < 0.5 {
		t.Errorf("Euclidean LAF-DBSCAN ARI = %v; extension not functional", ari)
	}
	if res.SkippedQueries == 0 {
		t.Error("Euclidean estimator never skipped a query")
	}
	t.Logf("euclidean e2e: ARI=%.3f skipped=%d", ari, res.SkippedQueries)
}

func TestConversionHelpers(t *testing.T) {
	if got := CosineToEuclidean(0.5); got != 1.0 {
		t.Errorf("CosineToEuclidean(0.5) = %v, want 1 (the paper's example)", got)
	}
	if got := EuclideanToCosine(1.0); got != 0.5 {
		t.Errorf("EuclideanToCosine(1.0) = %v, want 0.5", got)
	}
}
