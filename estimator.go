package lafdbscan

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"os"

	"lafdbscan/internal/cardest"
	"lafdbscan/internal/index"
	"lafdbscan/internal/rmi"
	"lafdbscan/internal/vecmath"
)

// EstimatorConfig controls TrainRMIEstimator. Zero values pick fast
// laptop-friendly defaults; set Paper to true for the paper's exact
// architecture (RMI 1/2/4 with hidden widths 512-512-256-128, 200 epochs,
// batch 512 — slow to train in pure Go).
type EstimatorConfig struct {
	// Radii are the distance thresholds the training set covers. Default:
	// the paper's grid 0.1 through 0.9.
	Radii []float64
	// MaxQueries bounds the number of training query points (the label
	// computation is O(MaxQueries * len(reference))); 0 selects the
	// default of 400, keeping training-set construction cheap.
	MaxQueries int
	// TargetSize is the size of the set that will be clustered. Predictions
	// scale by TargetSize/len(train); 0 means "same size as training set".
	TargetSize int
	// Paper switches to the paper's full architecture and training budget.
	Paper bool
	// Hidden, Epochs, BatchSize and LR override individual model settings
	// when non-zero. Ignored when Paper is set.
	Hidden    []int
	Epochs    int
	BatchSize int
	LR        float64
	// Metric selects the distance whose cardinalities the estimator learns
	// (default MetricCosine). With MetricEuclidean the default radii grid
	// is the Equation 1 image of the cosine grid, so unit-vector workloads
	// stay covered — the paper's future-work extension.
	Metric DistanceMetric
	// Seed makes training reproducible.
	Seed int64
}

// TrainRMIEstimator builds the paper's learned cardinality estimator: it
// computes exact neighbor counts over the training vectors at each radius
// (the label-generation pass) and fits the three-stage RMI on them.
//
// Training time is excluded from clustering time in all experiments, as in
// the paper; a trained estimator can be reused across runs and parameter
// settings because the radius is a model input.
func TrainRMIEstimator(train [][]float32, cfg EstimatorConfig) (Estimator, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("lafdbscan: empty training set")
	}
	if len(cfg.Radii) == 0 {
		cfg.Radii = cardest.DefaultRadii()
		if cfg.Metric == MetricEuclidean {
			for i, r := range cfg.Radii {
				cfg.Radii[i] = vecmath.CosineToEuclidean(r)
			}
		}
	}
	if cfg.MaxQueries == 0 {
		cfg.MaxQueries = 400
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Count training labels against a reference set whose size matches the
	// set that will be clustered, so no post-hoc scale correction is
	// needed; when the target is larger than the training data, fall back
	// to linear scaling of the predictions.
	reference := train
	scale := 1.0
	switch {
	case cfg.TargetSize > 0 && cfg.TargetSize < len(train):
		perm := rng.Perm(len(train))[:cfg.TargetSize]
		reference = make([][]float32, cfg.TargetSize)
		for i, idx := range perm {
			reference[i] = train[idx]
		}
	case cfg.TargetSize > len(train):
		scale = float64(cfg.TargetSize) / float64(len(train))
	}
	dist := vecmath.CosineDistanceUnit
	if cfg.Metric != MetricCosine {
		dist = cfg.Metric.Func()
	}
	examples := cardest.BuildTrainingSetAgainst(train, reference, dist,
		cfg.Radii, cfg.MaxQueries, rng)

	rcfg := rmi.DefaultConfig()
	// The facade default favors fast CPU training over the last few points
	// of estimator accuracy; the gate only needs to rank points around the
	// alpha*tau threshold. Pass Paper (or explicit overrides) for more.
	rcfg.Hidden = []int{32, 16}
	rcfg.Epochs = 20
	if cfg.Paper {
		rcfg = rmi.PaperConfig()
	}
	if len(cfg.Hidden) > 0 {
		rcfg.Hidden = cfg.Hidden
	}
	if cfg.Epochs > 0 {
		rcfg.Epochs = cfg.Epochs
	}
	if cfg.BatchSize > 0 {
		rcfg.BatchSize = cfg.BatchSize
	}
	if cfg.LR > 0 {
		rcfg.LR = cfg.LR
	}
	rcfg.Seed = cfg.Seed

	model, err := rmi.Train(examples, len(reference), rcfg)
	if err != nil {
		return nil, err
	}
	return cardest.NewRMIEstimator(model, scale), nil
}

// SaveEstimator persists a trained RMI estimator (as returned by
// TrainRMIEstimator) to a file so later runs can skip training. Only RMI
// estimators are serializable.
func SaveEstimator(est Estimator, path string) error {
	payload, err := marshalEstimator(est)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(&payload); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// estimatorPayload is the single-message wire format of SaveEstimator (and
// the estimator block of Model.Save); the model is nested as opaque bytes so
// the scale and the network weights travel through one gob stream.
type estimatorPayload struct {
	Scale float64
	Model []byte
}

// errEstimatorNotSerializable marks estimator kinds with no wire format
// (the exact oracle, sampling, histogram, constant). Model.Save drops those
// and persists everything else or fails; SaveEstimator reports either way.
var errEstimatorNotSerializable = errors.New("estimator is not serializable")

// marshalEstimator serializes an RMI estimator through internal/rmi's wire
// format; any other estimator kind returns errEstimatorNotSerializable.
func marshalEstimator(est Estimator) (estimatorPayload, error) {
	re, ok := est.(*cardest.RMIEstimator)
	if !ok {
		return estimatorPayload{}, fmt.Errorf("lafdbscan: estimator %q: %w", est.Name(), errEstimatorNotSerializable)
	}
	var model bytes.Buffer
	if err := re.Model.Save(&model); err != nil {
		return estimatorPayload{}, err
	}
	return estimatorPayload{Scale: re.Scale, Model: model.Bytes()}, nil
}

// unmarshalEstimator is the inverse of marshalEstimator.
func unmarshalEstimator(payload estimatorPayload) (Estimator, error) {
	model, err := rmi.Load(bytes.NewReader(payload.Model))
	if err != nil {
		return nil, err
	}
	return cardest.NewRMIEstimator(model, payload.Scale), nil
}

// LoadEstimator reads an estimator written by SaveEstimator.
func LoadEstimator(path string) (Estimator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var payload estimatorPayload
	if err := gob.NewDecoder(f).Decode(&payload); err != nil {
		return nil, fmt.Errorf("lafdbscan: decoding estimator: %w", err)
	}
	return unmarshalEstimator(payload)
}

// ExactEstimator returns a cardinality oracle that executes real range
// queries over points. With Alpha = 1 it makes LAF-DBSCAN reproduce DBSCAN
// exactly while still skipping the stop points' queries — the framework's
// upper bound, useful in ablations.
func ExactEstimator(points [][]float32) Estimator {
	return &cardest.Exact{Index: index.NewBruteForce(points, vecmath.CosineDistanceUnit)}
}

// SamplingEstimator returns the traditional sampling baseline: neighbor
// counts within a uniform sample of size m, scaled up.
func SamplingEstimator(points [][]float32, m int, seed int64) Estimator {
	return cardest.NewSampling(points, vecmath.CosineDistanceUnit, m, rand.New(rand.NewSource(seed)))
}

// HistogramEstimator returns the anchor-histogram density baseline with k
// anchors.
func HistogramEstimator(points [][]float32, k int, seed int64) Estimator {
	return cardest.NewHistogram(points, vecmath.CosineDistanceUnit, k, 0.05, 2.0,
		rand.New(rand.NewSource(seed)))
}
