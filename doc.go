// Package lafdbscan is a Go implementation of LAF, the Learned Accelerator
// Framework for angular-distance-based high-dimensional DBSCAN (Wang &
// Wang, EDBT 2023, arXiv:2302.03136), together with the full clustering
// zoo of the paper's evaluation.
//
// LAF accelerates DBSCAN-like algorithms by placing a learned cardinality
// estimator in front of every range query: points predicted to be non-core
// or noise ("stop points") skip their query entirely, and a post-processing
// pass repairs clusters that false-negative predictions split apart.
//
// # Quick start
//
// Fit a reusable model once, then assign incoming vectors to its clusters
// at the cost of one range query each — the same economics the paper
// applies to single runs, extended across requests:
//
//	data := lafdbscan.MSLike(4000, 1)      // 768-dim synthetic embeddings
//	train, test, _ := lafdbscan.Split(data, 0.8, 42)
//
//	est, _ := lafdbscan.TrainRMIEstimator(train.Vectors, lafdbscan.EstimatorConfig{
//		TargetSize: test.Len(),
//	})
//	model, _ := lafdbscan.Fit(ctx, test.Vectors, lafdbscan.MethodLAFDBSCAN,
//		lafdbscan.WithEps(0.55), lafdbscan.WithTau(5),
//		lafdbscan.WithAlpha(2.0), lafdbscan.WithEstimator(est))
//	fmt.Println(model.NumClusters(), model.NumCores())
//
//	labels, _ := model.Predict(ctx, incoming) // O(one range query) per vector
//	_ = model.SaveFile("clusters.lafm")       // survives process restarts
//
// # Evolving data
//
// A fitted model is not frozen: Insert and Remove evolve the clustering
// online with incremental-DBSCAN semantics — new points within Eps of
// enough neighbors become core and may merge clusters, removals demote
// cores and split clusters exactly — at the cost of the changed
// neighborhoods only, with labels bit-identical to re-clustering from
// scratch for the traversal engines:
//
//	_, _ = model.Insert(ctx, newVectors) // promotions, merges
//	_, _ = model.Remove(ctx, []int{3})   // demotions, splits
//
// All model methods are safe for concurrent use: predictions proceed
// concurrently, mutations serialize behind a write lock, and a reader
// never observes a half-applied update.
//
// The original flat-Params entry points remain as the compatibility path
// and produce labels bit-identical to Fit with the same knobs — they run
// the same engines and simply discard the fitted artifacts:
//
//	res, _ := lafdbscan.LAFDBSCAN(test.Vectors, lafdbscan.Params{
//		Eps: 0.55, Tau: 5, Alpha: 2.0, Estimator: est,
//	})
//	fmt.Println(res.NumClusters, res.Elapsed)
//
// All algorithms expect unit-normalized vectors and interpret Eps as a
// cosine distance (1 - cosine similarity, bounded in [0, 2]).
package lafdbscan
