package lafdbscan

import (
	"fmt"
	"testing"

	"lafdbscan/internal/bench"
)

// TestWaveSizeKnobLabelEquality pins the facade-level WaveSize knob: every
// setting — buffer-everything (-1), auto (0), and explicit wave sizes —
// must produce labels identical to sequential DBSCAN.
func TestWaveSizeKnobLabelEquality(t *testing.T) {
	d := GenerateMixture("wave-knob", MixtureConfig{
		N: 400, Dim: 32, Clusters: 6, MinSpread: 0.25, MaxSpread: 0.5,
		NoiseFrac: 0.2, Seed: 91,
	})
	p := Params{Eps: 0.5, Tau: 4}
	seq, err := DBSCAN(d.Vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, wave := range []int{-1, 0, 5, 128} {
		pp := p
		pp.Workers = 2
		pp.WaveSize = wave
		res, err := DBSCAN(d.Vectors, pp)
		if err != nil {
			t.Fatal(err)
		}
		if res.RangeQueries != seq.RangeQueries {
			t.Errorf("wave=%d: %d queries, sequential %d", wave, res.RangeQueries, seq.RangeQueries)
		}
		for i := range seq.Labels {
			if res.Labels[i] != seq.Labels[i] {
				t.Fatalf("wave=%d: label[%d] = %d, sequential %d", wave, i, res.Labels[i], seq.Labels[i])
			}
		}
		ari, err := ARI(seq.Labels, res.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if ari != 1.0 {
			t.Errorf("wave=%d: ARI = %v, want 1.0", wave, ari)
		}
	}
}

// TestWaveEngineMemoryFootprint is the issue's memory criterion: on the
// largest synthetic benchmark dataset, the wave engine's measured
// allocations — cumulative and peak live heap above baseline — must be
// strictly below the buffer-everything engine's (Params.WaveSize < 0, the
// PR-1 formulation). Labels must agree, so the saving is free.
func TestWaveEngineMemoryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping memory measurement in -short mode")
	}
	d := GenerateMixture("wave-mem", MixtureConfig{
		N: 2500, Dim: 256, Clusters: 20, MinSpread: 0.2, MaxSpread: 0.6,
		NoiseFrac: 0.2, SizeSkew: 1.1, EffectiveDim: 48, Seed: 77,
	})
	run := func(wave int) (*Result, bench.MemSample) {
		var res *Result
		var err error
		sample := bench.MeasureMem(func() {
			res, err = DBSCAN(d.Vectors, Params{
				Eps: 0.5, Tau: 4, Workers: 2, WaveSize: wave,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, sample
	}
	buffered, bufMem := run(-1)
	waved, waveMem := run(256)
	for i := range buffered.Labels {
		if waved.Labels[i] != buffered.Labels[i] {
			t.Fatalf("label[%d] = %d, buffered engine %d", i, waved.Labels[i], buffered.Labels[i])
		}
	}
	t.Logf("buffered: total=%s objects=%d peak-extra=%s",
		fmtBytes(bufMem.TotalAllocBytes), bufMem.Mallocs, fmtBytes(bufMem.PeakExtraBytes))
	t.Logf("wave=256: total=%s objects=%d peak-extra=%s",
		fmtBytes(waveMem.TotalAllocBytes), waveMem.Mallocs, fmtBytes(waveMem.PeakExtraBytes))
	if waveMem.TotalAllocBytes >= bufMem.TotalAllocBytes {
		t.Errorf("wave engine allocated %d bytes, want < buffered engine's %d",
			waveMem.TotalAllocBytes, bufMem.TotalAllocBytes)
	}
	if waveMem.PeakExtraBytes >= bufMem.PeakExtraBytes {
		t.Errorf("wave engine peak extra %d bytes, want < buffered engine's %d",
			waveMem.PeakExtraBytes, bufMem.PeakExtraBytes)
	}
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
