package lafdbscan

import (
	"math/rand"

	"lafdbscan/internal/dataset"
)

// Dataset is a collection of unit-normalized vectors with optional
// generator-side ground-truth component labels.
type Dataset = dataset.Dataset

// MixtureConfig configures the generic spherical-mixture generator.
type MixtureConfig = dataset.MixtureConfig

// GenerateMixture draws a normalized dataset from the config.
func GenerateMixture(name string, cfg MixtureConfig) *Dataset {
	return dataset.GenerateMixture(name, cfg)
}

// GloVeLike generates a 200-dimensional word-embedding-style dataset
// mirroring the paper's Glove-150k family.
func GloVeLike(n int, seed int64) *Dataset { return dataset.GloVeLike(n, seed) }

// MSLike generates a 768-dimensional passage-embedding-style dataset
// mirroring the paper's MS MARCO family (the hardest distribution in the
// paper's evaluation).
func MSLike(n int, seed int64) *Dataset { return dataset.MSLike(n, seed) }

// NYTLike generates a 256-dimensional dataset mirroring NYT-150k: sparse
// bag-of-words counts, Gaussian-random-projected and normalized.
func NYTLike(n int, seed int64) *Dataset {
	return dataset.NYTLike(dataset.NYTLikeConfig{N: n, Seed: seed, NoiseFrac: 0.15})
}

// Split partitions d into train and test subsets with the given train
// fraction; the paper uses 0.8. trainFrac must lie strictly inside (0, 1)
// and leave at least one point on each side — out-of-range fractions return
// an error instead of a silently empty subset.
func Split(d *Dataset, trainFrac float64, seed int64) (train, test *Dataset, err error) {
	return d.Split(trainFrac, rand.New(rand.NewSource(seed)))
}

// LoadDataset reads a dataset file written by Dataset.Save (or cmd/datagen).
func LoadDataset(path string) (*Dataset, error) { return dataset.Load(path) }
