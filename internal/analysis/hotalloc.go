package analysis

import (
	"go/ast"
	"go/token"
)

// HotAlloc flags heap allocations inside functions registered as wave-hot
// with a `//lafvet:hotpath` directive in their doc comment. The wave
// engine's per-point callbacks and the vecmath kernels run once per
// point-pair per wave; a single allocation there turns an O(n) pass into
// GC pressure that the benchmarks in bench.yml exist to catch — this
// analyzer catches it before the benchmark does.
//
// Inside a hotpath function the following are reported:
//
//   - make(...) of any kind;
//   - composite literals (slice, map, struct — including &T{...});
//   - new(...);
//   - append(...) — growth reallocates — unless the destination was
//     created in the same function by a 3-argument make (explicit
//     capacity, so growth within capacity is allocation-free by design);
//   - calls into fmt (every fmt call allocates for its interface args).
//
// Exemption: arguments of panic(...) may allocate — a hot path that is
// about to crash no longer has a performance budget, and the repo's
// kernels use panic(fmt.Sprintf(...)) for dimension mismatches.
// Deliberate allocations (e.g. a one-time lazily grown buffer) take
// //lafvet:allow hotalloc <reason>.
//
// A hotpath directive that is not attached to a function declaration is
// itself reported, so stale annotations cannot linger.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag heap allocations inside //lafvet:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		consumed := make(map[token.Pos]bool)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			d, ok := hotpathDirective(pass, file, fd)
			if !ok {
				continue
			}
			consumed[d.Pos] = true
			if fd.Body != nil {
				checkHotBody(pass, fd)
			}
		}
		for _, d := range pass.Directives(file) {
			if d.Name == "hotpath" && !consumed[d.Pos] {
				pass.Reportf(d.Pos, "lafvet:hotpath directive is not attached to a function declaration")
			}
		}
	}
	return nil
}

// hotpathDirective finds the //lafvet:hotpath directive in the function's
// doc comment (or on the line directly above the declaration).
func hotpathDirective(pass *Pass, file *ast.File, fd *ast.FuncDecl) (Directive, bool) {
	declLine := pass.Fset.Position(fd.Pos()).Line
	docStart, docEnd := 0, 0
	if fd.Doc != nil {
		docStart = pass.Fset.Position(fd.Doc.Pos()).Line
		docEnd = pass.Fset.Position(fd.Doc.End()).Line
	}
	for _, d := range pass.Directives(file) {
		if d.Name != "hotpath" {
			continue
		}
		if d.Line == declLine-1 || (docStart > 0 && d.Line >= docStart && d.Line <= docEnd) {
			return d, true
		}
	}
	return Directive{}, false
}

// checkHotBody reports each allocating construct in a hotpath function.
func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	name := fd.Name.Name

	// Collect the positions spanned by panic(...) arguments: exempt.
	type span struct{ lo, hi token.Pos }
	var panicSpans []span
	// Destinations of a 3-arg make (explicit cap) in this function.
	preallocObjs := make(map[interface{}]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, x, "panic") {
				for _, a := range x.Args {
					panicSpans = append(panicSpans, span{a.Pos(), a.End()})
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, rhs := range x.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "make") || len(call.Args) < 3 {
					continue
				}
				if obj := exprObj(info, x.Lhs[i]); obj != nil {
					preallocObjs[obj] = true
				}
			}
		}
		return true
	})
	exempt := func(pos token.Pos) bool {
		for _, s := range panicSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if exempt(x.Pos()) {
				return true
			}
			switch {
			case isBuiltin(info, x, "make"):
				pass.Reportf(x.Pos(), "make in hotpath function %s allocates per call; hoist the buffer or annotate //lafvet:allow hotalloc <reason>", name)
			case isBuiltin(info, x, "new"):
				pass.Reportf(x.Pos(), "new in hotpath function %s allocates per call", name)
			case isBuiltin(info, x, "append"):
				if len(x.Args) > 0 {
					if obj := exprObj(info, x.Args[0]); obj != nil && preallocObjs[obj] {
						return true
					}
				}
				pass.Reportf(x.Pos(), "append in hotpath function %s may grow and reallocate; preallocate with make(_, _, cap) in this function or annotate //lafvet:allow hotalloc <reason>", name)
			case calleePkgPath(info, x) == "fmt":
				pass.Reportf(x.Pos(), "fmt call in hotpath function %s allocates (interface conversions + formatting); only panic arguments are exempt", name)
			}
		case *ast.CompositeLit:
			if exempt(x.Pos()) {
				return false
			}
			pass.Reportf(x.Pos(), "composite literal in hotpath function %s allocates; hoist it or annotate //lafvet:allow hotalloc <reason>", name)
			return false // don't double-report nested literals
		}
		return true
	})
}
