package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the context-plumbing discipline of the driver API
// (PRs 2–4): library code must thread the caller's context instead of
// minting its own, so cancellation actually reaches the clustering loops.
//
// Three rules:
//
//  1. context.Background() and context.TODO() are forbidden outside
//     package main. The one legitimate shape — the root package's
//     documented compatibility wrappers — is recognized structurally: a
//     function F whose entire body is `return FContext(context.Background(),
//     ...)` is allowlisted, because the context is created exactly at the
//     public non-context boundary. Anything else (e.g. detaching a job
//     from its request context) needs //lafvet:allow ctxflow <reason>.
//  2. A function that takes a context.Context must take it as the FIRST
//     parameter.
//  3. An exported function or method named *Context — the repository's
//     convention for cancellable driver entry points — must actually
//     accept a context.Context first.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/TODO in library code and enforce ctx-first signatures",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		// Signature rules apply to every declared function.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxSignature(pass, fd)
		}
		// Background/TODO rule, with the wrapper allowlist.
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if ok && isCompatWrapper(pass.TypesInfo, fd) {
				return false // the Background() inside is the wrapper's point
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Background", "TODO"} {
				if pkgFunc(pass.TypesInfo, call, "context", name) {
					pass.Reportf(call.Pos(), "context.%s() in library code: thread the caller's ctx instead (compat wrappers must be exactly `return FContext(context.Background(), ...)`)", name)
				}
			}
			return true
		})
	}
	return nil
}

// checkCtxSignature enforces ctx-first and the *Context naming contract.
func checkCtxSignature(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	params := fd.Type.Params
	ctxAt := -1
	if params != nil {
		i := 0
		for _, field := range params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			if isContextType(info, field.Type) && ctxAt < 0 {
				ctxAt = i
			}
			i += n
		}
	}
	if ctxAt > 0 {
		pass.Reportf(fd.Name.Pos(), "%s takes a context.Context as parameter %d: ctx must be the first parameter", fd.Name.Name, ctxAt+1)
	}
	if strings.HasSuffix(fd.Name.Name, "Context") && fd.Name.IsExported() && ctxAt != 0 {
		pass.Reportf(fd.Name.Pos(), "exported %s is named *Context but does not take a context.Context as its first parameter", fd.Name.Name)
	}
}

// isContextType reports whether the parameter type is context.Context.
func isContextType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isCompatWrapper recognizes the documented root-package compatibility
// shape: func F(args...) { return FContext(context.Background(), args...) }.
// The callee must be exactly F's name + "Context", and the Background()
// call must be its first argument — anything looser is not a wrapper.
func isCompatWrapper(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	var calleeName string
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		calleeName = fun.Name
	case *ast.SelectorExpr:
		calleeName = fun.Sel.Name
	default:
		return false
	}
	if calleeName != fd.Name.Name+"Context" {
		return false
	}
	first, ok := unparen(call.Args[0]).(*ast.CallExpr)
	return ok && pkgFunc(info, first, "context", "Background")
}
