package analysis

import (
	"go/ast"
	"go/types"
)

// Shared syntactic helpers for the analyzers. Everything here is
// deliberately conservative: a helper that cannot prove a property returns
// false, and the analyzer reports — suppressions then require an explicit,
// reasoned directive.

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// chainBase unwraps selector / index / star / paren chains and returns the
// innermost expression (usually an *ast.Ident).
func chainBase(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// isPure reports whether evaluating e cannot call user code and has no side
// effects: identifiers, literals, selectors, index expressions, arithmetic,
// and calls that are type conversions or the len/cap builtins. Anything
// else — other calls, channel receives, function literals — is impure.
func isPure(info *types.Info, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isConversion(info, x) {
				return true
			}
			if id, ok := unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap", "min", "max":
						return true
					}
				}
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return true
	})
	return pure
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// usesObject reports whether the expression references any of the given
// objects.
func usesObject(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprObj returns the object an identifier expression denotes, or nil.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	if id, ok := unparen(e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	return nil
}

// isIntegerType reports whether t's underlying type is an integer.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pkgFunc reports whether the call's callee is the named function of the
// named package (matching the package's import path exactly).
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleePkgPath returns the import path of the package a call's callee
// belongs to ("" for builtins, locals, and method values on local types).
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj := info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path()
		}
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path()
		}
	}
	return ""
}
