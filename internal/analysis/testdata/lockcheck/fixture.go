// The lockcheck fixture: a miniature of the root Model type — immutable
// configuration above mu, guarded state below — exercising every rule:
// missing read/write evidence, RLock-only writes, the *Locked caller
// contract, the constructor exemption, and the allow directive.
package fixture

import "sync"

type Model struct {
	name string // above mu: immutable after construction, never flagged

	mu     sync.RWMutex
	labels []int
	n      int
}

// Name reads only unguarded state: no diagnostic (false-positive shape).
func (m *Model) Name() string { return m.name }

// Count holds the read lock: no diagnostic.
func (m *Model) Count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.n
}

// Set holds the write lock: no diagnostic.
func (m *Model) Set(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.n = n
}

// badRead has no lock evidence at all.
func (m *Model) badRead() int {
	return m.n // want "read of guarded field Model.n without holding mu"
}

// badWrite only holds the read lock, which does not license writes.
func (m *Model) badWrite(v int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.n = v // want "write to guarded field Model.n without holding mu"
}

// countLocked declares the caller-holds-lock contract; its body is
// licensed, its call sites are checked instead.
func (m *Model) countLocked() int { return m.n + len(m.labels) }

// badCall invokes a *Locked helper without holding the lock.
func (m *Model) badCall() int {
	return m.countLocked() // want "call to Model.countLocked without holding mu"
}

// goodCall holds the lock across the *Locked call: no diagnostic.
func (m *Model) goodCall() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.countLocked()
}

// NewModel initializes guarded fields before the value is shared: the
// constructor exemption, no diagnostic.
func NewModel(n int) *Model {
	m := &Model{name: "fresh"}
	m.n = n
	m.labels = make([]int, n)
	return m
}

// allowDirective suppresses a finding with a documented reason.
func allowDirective(m *Model) int {
	//lafvet:allow lockcheck fixture demonstrates suppression
	return m.n
}

// A bare allow directive is itself a finding, and suppresses nothing.
func bareAllow(m *Model) int {
	//lafvet:allow lockcheck want "allow lockcheck directive requires a reason"
	return m.n // want "read of guarded field Model.n without holding mu"
}
