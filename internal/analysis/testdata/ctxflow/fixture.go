// The ctxflow fixture: Background/TODO in library code, the compat-wrapper
// allowlist, ctx-first ordering, and the *Context naming contract.
package fixture

import "context"

// FitContext is a proper driver entry point: ctx first.
func FitContext(ctx context.Context, data []int) error {
	_ = ctx
	_ = data
	return nil
}

// Fit is the documented compatibility-wrapper shape — its whole body is
// `return FitContext(context.Background(), ...)` — and is allowlisted
// (false-positive shape).
func Fit(data []int) error {
	return FitContext(context.Background(), data)
}

// stray mints a context outside the wrapper shape.
func stray() context.Context {
	return context.Background() // want `context.Background\(\) in library code`
}

// strayTODO is no better.
func strayTODO() context.Context {
	return context.TODO() // want `context.TODO\(\) in library code`
}

// notAWrapper calls a function whose name is not its own + "Context", so
// the allowlist does not apply.
func notAWrapper(data []int) error {
	return FitContext(context.Background(), data) // want `context.Background\(\) in library code`
}

// detach demonstrates the documented escape hatch.
func detach() (context.Context, context.CancelFunc) {
	//lafvet:allow ctxflow fixture demonstrates the deliberate-detach suppression
	return context.WithCancel(context.Background())
}

// wrongOrder buries ctx behind another parameter.
func wrongOrder(data []int, ctx context.Context) error { // want "ctx must be the first parameter"
	_ = ctx
	_ = data
	return nil
}

// RunContext claims to be a driver entry point but takes no context.
func RunContext(data []int) error { // want `named \*Context but does not take a context.Context`
	_ = data
	return nil
}
