// The hotalloc fixture: allocations inside //lafvet:hotpath functions, the
// panic-argument exemption, the preallocated-append exemption, the allow
// directive, and stale-directive detection. Functions without the
// directive may allocate freely.
package fixture

import "fmt"

// Kernel is the shape of the vecmath kernels: tight loop, no allocation,
// panic(fmt.Sprintf) guard exempt. No diagnostics (false-positive shape).
//
//lafvet:hotpath
func Kernel(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// cold is not registered: allocations are fine here.
func cold(n int) []int {
	out := make([]int, n)
	return append(out, len(out))
}

//lafvet:hotpath
func badMake(n int) []int {
	return make([]int, n) // want "make in hotpath function badMake"
}

//lafvet:hotpath
func badLit() []int {
	return []int{1, 2} // want "composite literal in hotpath function badLit"
}

//lafvet:hotpath
func badNew() *int {
	return new(int) // want "new in hotpath function badNew"
}

//lafvet:hotpath
func badAppend(xs []int, v int) []int {
	return append(xs, v) // want "append in hotpath function badAppend"
}

//lafvet:hotpath
func badFmt(x int) string {
	return fmt.Sprintf("%d", x) // want "fmt call in hotpath function badFmt"
}

// preallocAppend appends only within a capacity it set itself: the append
// is exempt (the make still needs its own justification).
//
//lafvet:hotpath
func preallocAppend(n int) []int {
	//lafvet:allow hotalloc fixture demonstrates a justified one-time buffer
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// A hotpath directive on a non-function is stale and reported.
//
//lafvet:hotpath want "not attached to a function declaration"
var notAFunction int
