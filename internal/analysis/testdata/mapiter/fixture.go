// The mapiter fixture: each case is the minimal shape of a pattern the
// analyzer must flag, must not flag, or must require a directive for.
// Marker comments name the expected diagnostics (see analysistest_test.go).
package fixture

import (
	"fmt"
	"sort"
)

// Keyed stores, integer counting and delete are order-insensitive: no
// diagnostics (the false-positive shapes).
func orderInsensitive(m map[string]int, out map[string]int, counts map[int]int) int {
	n := 0
	for k, v := range m {
		if v > 0 {
			out[k] = v * 2
			n++
		}
		counts[v] += v
	}
	for k, v := range m {
		if v < 0 {
			delete(out, k)
		}
	}
	return n
}

// Extract-then-sort re-establishes a deterministic order: no diagnostic.
func extractThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Appending in map order WITHOUT a sort is the bug the serve registry had
// before this analyzer existed: the JSON listing depended on map order.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appended in map order and not sorted"
		keys = append(keys, k)
	}
	return keys
}

// An impure append element (a method call) cannot be proven
// order-insensitive even when sorted afterwards.
func appendImpure(m map[string]int, f func(string) string) []string {
	var out []string
	for k := range m { // want "appended element is not a pure expression"
		out = append(out, f(k))
	}
	sort.Strings(out)
	return out
}

// Float accumulation is order-dependent: float addition does not associate.
func floatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "accumulates a non-integer"
		s += v
	}
	return s
}

// Last-write-wins on a shared variable depends on which key comes last.
func lastWins(m map[string]int) string {
	var last string
	for k := range m { // want "plain assignment to a shared variable"
		last = k
	}
	return last
}

// Calling a function with invisible effects cannot be proven safe.
func sideEffects(m map[string]int) {
	for k := range m { // want "calls a function whose effects the checker cannot see"
		fmt.Println(k)
	}
}

// A reasoned orderfree directive suppresses the diagnostic.
func directiveOK(m map[string]int) string {
	var last string
	//lafvet:orderfree fixture demonstrates suppression
	for k := range m {
		last = k
	}
	return last
}

// A directive without a reason is itself a finding.
func directiveNoReason(m map[string]int) string {
	var last string
	//lafvet:orderfree want "orderfree directive requires a reason"
	for k := range m {
		last = k
	}
	return last
}

// A directive not attached to a map range is stale and reported.
func directiveMisplaced(xs []int) int {
	n := 0
	//lafvet:orderfree slices are ordered anyway want "does not annotate a range-over-map statement"
	for range xs {
		n++
	}
	return n
}
