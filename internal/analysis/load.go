package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// The loader typechecks packages from source with nothing but the standard
// library: `go list -e -json -deps` enumerates the dependency closure
// (already build-tag- and vendor-resolved), and each package is then parsed
// and typechecked bottom-up with go/parser and go/types. This is the same
// strategy x/tools' go/packages uses under NeedTypes, reimplemented narrowly
// because this repository's build environment has no module dependencies.
//
// CGO is disabled for the listing so every package in the closure — the
// net/http stack included — resolves to pure-Go files go/types can check.

// A Package is one loaded, typechecked package.
type Package struct {
	Path      string
	Name      string
	Fset      *token.FileSet
	Files     []*ast.File
	GoFiles   []string
	Types     *types.Package
	TypesInfo *types.Info
	// Err records why the package could not be loaded or typechecked;
	// the suite turns it into a diagnostic.
	Err error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Error      *struct{ Err string }
}

// world caches typechecked packages across Load and LoadDir calls (the
// analyzer tests load several fixture directories; the stdlib closure is
// typechecked once).
type world struct {
	mu    sync.Mutex
	fset  *token.FileSet
	meta  map[string]*listPkg
	types map[string]*types.Package
	errs  map[string]error
}

var shared = &world{
	fset:  token.NewFileSet(),
	meta:  make(map[string]*listPkg),
	types: make(map[string]*types.Package),
	errs:  make(map[string]error),
}

// goList runs `go list -e -json -deps` over the patterns and folds the
// results into the world's metadata map. Returns the import paths the
// patterns matched directly (non-deps), in listing order.
func (w *world) goList(dir string, patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if _, ok := w.meta[p.ImportPath]; !ok {
			cp := p
			w.meta[p.ImportPath] = &cp
		}
	}
	// -deps emits dependencies before dependents; the trailing entries that
	// the patterns matched directly are exactly those listed by a plain
	// `go list`, so run that (cheap, no JSON) to separate them.
	cmd = exec.Command("go", append([]string{"list", "--"}, patterns...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	direct, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v", strings.Join(patterns, " "), err)
	}
	var targets []string
	for _, line := range strings.Split(strings.TrimSpace(string(direct)), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			targets = append(targets, line)
		}
	}
	return targets, nil
}

// check returns the typechecked package for an import path, typechecking
// its dependencies first. Results and failures are cached.
func (w *world) check(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := w.types[path]; ok {
		return tp, nil
	}
	if err, ok := w.errs[path]; ok {
		return nil, err
	}
	meta, ok := w.meta[path]
	if !ok {
		err := fmt.Errorf("package %s not in go list closure", path)
		w.errs[path] = err
		return nil, err
	}
	if meta.Error != nil {
		err := fmt.Errorf("package %s: %s", path, meta.Error.Err)
		w.errs[path] = err
		return nil, err
	}
	tp, _, _, err := w.typecheck(meta)
	if err != nil {
		w.errs[path] = err
		return nil, err
	}
	w.types[path] = tp
	return tp, nil
}

// typecheck parses and checks one package against its (already checked)
// dependencies.
func (w *world) typecheck(meta *listPkg) (*types.Package, []*ast.File, *types.Info, error) {
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(w.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if mapped, ok := meta.ImportMap[ipath]; ok {
				ipath = mapped
			}
			return w.check(ipath)
		}),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	tp, err := conf.Check(meta.ImportPath, w.fset, files, info)
	if firstErr != nil {
		err = firstErr
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typechecking %s: %v", meta.ImportPath, err)
	}
	return tp, files, info, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// interface check: go/importer's Default has the same single-method shape.
var _ types.Importer = importerFunc(nil)

// Load lists, parses and typechecks the packages matching the patterns
// (relative to dir; empty dir means the current directory) and returns
// them in listing order. A package that fails to load is returned with Err
// set rather than dropped, so the caller can gate on it.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	shared.mu.Lock()
	defer shared.mu.Unlock()
	targets, err := shared.goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range targets {
		meta, ok := shared.meta[path]
		pkg := &Package{Path: path, Fset: shared.fset}
		if !ok {
			pkg.Err = fmt.Errorf("package %s missing from go list output", path)
			out = append(out, pkg)
			continue
		}
		pkg.Name = meta.Name
		for _, f := range meta.GoFiles {
			pkg.GoFiles = append(pkg.GoFiles, filepath.Join(meta.Dir, f))
		}
		if meta.Error != nil {
			pkg.Err = fmt.Errorf("package %s: %s", path, meta.Error.Err)
			out = append(out, pkg)
			continue
		}
		tp, files, info, err := shared.typecheck(meta)
		if err != nil {
			pkg.Err = err
			out = append(out, pkg)
			continue
		}
		shared.types[path] = tp
		pkg.Types, pkg.Files, pkg.TypesInfo = tp, files, info
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and typechecks every non-test .go file of one directory as
// a single package, resolving its imports through the shared standard-
// library loader. This is the fixture path of the analyzer tests: testdata
// directories are invisible to the go tool, so they are loaded by file
// rather than by import path.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	shared.mu.Lock()
	defer shared.mu.Unlock()
	fset := shared.fset
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	// Make sure the metadata for the fixture's imports (and their closure)
	// is present; only list the ones not already known.
	var missing []string
	for imp := range importSet {
		if _, ok := shared.meta[imp]; !ok && imp != "unsafe" {
			missing = append(missing, imp)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		if _, err := shared.goList(dir, missing); err != nil {
			return nil, err
		}
	}

	pkgPath := "fixture/" + filepath.Base(dir)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) { return shared.check(ipath) }),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
		Sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	tp, err := conf.Check(pkgPath, fset, files, info)
	if firstErr != nil {
		err = firstErr
	}
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", dir, err)
	}
	pkg := &Package{
		Path:      pkgPath,
		Name:      files[0].Name.Name,
		Fset:      fset,
		Files:     files,
		Types:     tp,
		TypesInfo: info,
	}
	for _, n := range names {
		pkg.GoFiles = append(pkg.GoFiles, filepath.Join(dir, n))
	}
	return pkg, nil
}
