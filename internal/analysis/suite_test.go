package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The four golden-fixture tests: every expected diagnostic (and every
// false-positive shape that must stay silent) lives in
// testdata/<analyzer>/fixture.go.

func TestMapIterFixture(t *testing.T)   { runFixture(t, MapIter, "mapiter") }
func TestLockCheckFixture(t *testing.T) { runFixture(t, LockCheck, "lockcheck") }
func TestCtxFlowFixture(t *testing.T)   { runFixture(t, CtxFlow, "ctxflow") }
func TestHotAllocFixture(t *testing.T)  { runFixture(t, HotAlloc, "hotalloc") }

// clusterSources returns the real internal/cluster non-test files — the
// directive-bearing package the deletion tests operate on.
func clusterSources(t *testing.T) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join("..", "cluster", "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("globbing internal/cluster: %v (%d files)", err, len(matches))
	}
	var out []string
	for _, m := range matches {
		if !strings.HasSuffix(m, "_test.go") {
			out = append(out, m)
		}
	}
	return out
}

// TestClusterDirectivesAreLoadBearing proves the acceptance criterion
// directly on the real code: internal/cluster is clean as written, and
// deleting its //lafvet:orderfree directives (wavemerge.Resolve's stop-map
// folds) or its //lafvet:allow hotalloc directive (Absorb's stub copy)
// makes the suite fail.
func TestClusterDirectivesAreLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks a whole package closure; skipped in -short")
	}
	srcs := clusterSources(t)

	if diags := stripAndRun(t, DefaultSuite(), srcs, nil); len(diags) != 0 {
		t.Fatalf("internal/cluster should be clean as written, got:\n%s", fmtDiags(diags))
	}

	orderfree := stripAndRun(t, Suite{MapIter}, srcs, func(line string) bool {
		return strings.Contains(line, "//lafvet:orderfree")
	})
	if len(orderfree) == 0 {
		t.Error("deleting //lafvet:orderfree directives did not make mapiter fail")
	}
	for _, d := range orderfree {
		if filepath.Base(d.Pos.Filename) != "wavemerge.go" {
			t.Errorf("unexpected finding outside wavemerge.go: %s", d)
		}
	}

	hotalloc := stripAndRun(t, Suite{HotAlloc}, srcs, func(line string) bool {
		return strings.Contains(line, "//lafvet:allow hotalloc")
	})
	if len(hotalloc) == 0 {
		t.Error("deleting the //lafvet:allow hotalloc directive did not make hotalloc fail")
	}
}

// hotpathRoster is the set of functions this repository REQUIRES to stay
// registered as hot paths: the wave callback chain, the vecmath kernels
// the clustering loops call per point pair, the telemetry write path
// every instrumented request touches, and the span-record path every
// sampled request finishes through. Deleting one of these
// //lafvet:hotpath directives fails this test, so the annotations cannot
// silently rot.
var hotpathRoster = map[string][]string{
	"../vecmath/vector.go":          {"Dot", "Norm", "SquaredNorm", "Normalize", "AXPY", "Scale"},
	"../vecmath/distance.go":        {"CosineDistance", "CosineDistanceUnit", "EuclideanDistance", "SquaredEuclidean"},
	"../cluster/atomicunionfind.go": {"Find", "Union", "Same"},
	"../cluster/wavemerge.go":       {"Absorb"},
	"../telemetry/metrics.go":       {"Inc", "Add", "Set", "Dec", "Observe"},
	"../index/hnsw/hnsw.go":         {"searchLayer"},
	"../trace/trace.go":             {"Finish", "record"},
}

func TestHotpathRoster(t *testing.T) {
	for file, funcs := range hotpathRoster {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		src := string(data)
		for _, fn := range funcs {
			// The directive must be the line directly above the declaration
			// (the tail of its doc comment).
			re := regexp.MustCompile(`(?m)^//lafvet:hotpath\nfunc (\([^)]*\) )?` + fn + `\(`)
			if !re.MatchString(src) {
				t.Errorf("%s: function %s has lost its //lafvet:hotpath directive", file, fn)
			}
		}
	}
}

// TestModuleIsClean runs the full default suite over the whole module —
// the same gate CI's lafvet step applies. Re-introducing any fixed
// violation (say, unsorted map iteration feeding the serve registry's JSON
// listing) fails here too, not just in CI.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module closure; skipped in -short")
	}
	pkgs, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if diags := DefaultSuite().Run(pkgs); len(diags) != 0 {
		t.Fatalf("lafvet suite is not clean over the module:\n%s", fmtDiags(diags))
	}
}
