// Package analysis is lafvet's analyzer framework: a self-contained,
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// surface this repository needs, plus the four analyzers that machine-check
// the invariants the clustering engines' determinism rests on (see
// doc.go and docs/STATIC_ANALYSIS.md).
//
// The Analyzer / Pass shapes deliberately mirror x/tools so the analyzers
// could be ported onto the upstream driver verbatim if the dependency ever
// becomes available; the build environment for this repository bakes in the
// Go toolchain only, so the loader (load.go) and the test harness
// (analysistest.go) are implemented on go/parser, go/types and
// `go list -json -deps` instead.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named, self-contained check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lafvet:allow <name> suppression directives.
	Name string
	// Doc is the one-paragraph description `lafvet help` prints.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass) error
}

// A Pass hands one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// diags collects what the analyzer reported.
	diags []Diagnostic
	// directives caches the parsed //lafvet: comments per file.
	directives map[*ast.File][]Directive
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless an //lafvet:allow directive
// for this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Directive is one //lafvet:<name> <args> comment. Line is the line the
// comment ends on; a directive governs the statement it trails or the one
// beginning on the next line.
type Directive struct {
	Pos  token.Pos
	Line int
	Name string // "orderfree", "hotpath", "allow", ...
	Args string // everything after the name, space-trimmed
}

// directivePrefix introduces every lafvet control comment.
const directivePrefix = "//lafvet:"

// Directives returns the parsed //lafvet: comments of file, cached.
func (p *Pass) Directives(file *ast.File) []Directive {
	if p.directives == nil {
		p.directives = make(map[*ast.File][]Directive)
	}
	if d, ok := p.directives[file]; ok {
		return d
	}
	d := parseDirectives(p.Fset, file)
	p.directives[file] = d
	return d
}

// parseDirectives extracts every //lafvet: comment of a file.
func parseDirectives(fset *token.FileSet, file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			name := rest
			args := ""
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				name, args = rest[:i], strings.TrimSpace(rest[i+1:])
			}
			// Test fixtures embed expected-diagnostic markers (`want "re"`)
			// inside directive comments — a directive is itself a comment,
			// so there is nowhere else to put a same-line marker. The
			// marker is not part of the directive's arguments.
			if i := strings.Index(args, `want "`); i >= 0 {
				args = strings.TrimSpace(args[:i])
			}
			out = append(out, Directive{
				Pos:  c.Pos(),
				Line: fset.Position(c.End()).Line,
				Name: name,
				Args: args,
			})
		}
	}
	return out
}

// DirectiveFor returns the directive with the given name governing the
// statement starting at pos — trailing on the same line or ending on the
// line immediately above — and whether one exists.
func (p *Pass) DirectiveFor(file *ast.File, pos token.Pos, name string) (Directive, bool) {
	line := p.Fset.Position(pos).Line
	for _, d := range p.Directives(file) {
		if d.Name == name && (d.Line == line || d.Line == line-1) {
			return d, true
		}
	}
	return Directive{}, false
}

// allowed reports whether an //lafvet:allow <analyzer> <reason> directive
// with a non-empty reason covers the line (same line or the line above).
func (p *Pass) allowed(pos token.Position) bool {
	for _, file := range p.Files {
		if p.Fset.Position(file.Pos()).Filename != pos.Filename {
			continue
		}
		for _, d := range p.Directives(file) {
			if d.Name != "allow" || (d.Line != pos.Line && d.Line != pos.Line-1) {
				continue
			}
			name, reason, _ := strings.Cut(d.Args, " ")
			if name == p.Analyzer.Name && strings.TrimSpace(reason) != "" {
				return true
			}
		}
	}
	return false
}

// checkAllowDirectives reports allow directives with no reason — a bare
// suppression is a finding of its own, so every exception stays documented.
// Called once per package by the runner (under the analyzer being run, so
// the diagnostic cannot itself be suppressed by the broken directive).
func checkAllowDirectives(p *Pass) {
	for _, file := range p.Files {
		for _, d := range p.Directives(file) {
			if d.Name != "allow" {
				continue
			}
			name, reason, _ := strings.Cut(d.Args, " ")
			if name != p.Analyzer.Name {
				continue
			}
			if strings.TrimSpace(reason) == "" {
				p.diags = append(p.diags, Diagnostic{
					Pos:      p.Fset.Position(d.Pos),
					Analyzer: p.Analyzer.Name,
					Message:  fmt.Sprintf("lafvet:allow %s directive requires a reason", name),
				})
			}
		}
	}
}

// Suite is the ordered set of analyzers lafvet runs.
type Suite []*Analyzer

// DefaultSuite returns the four lafvet analyzers.
func DefaultSuite() Suite {
	return Suite{MapIter, LockCheck, CtxFlow, HotAlloc}
}

// ModulePath is the import path of the module the default scopes target.
const ModulePath = "lafdbscan"

// InScope reports whether the analyzer checks the given package (and, for
// file-scoped analyzers, the given file base name) under lafvet's default
// configuration:
//
//   - mapiter guards the label/fact-producing code: internal/cluster,
//     internal/core, the JSON-producing internal/serve, and the root
//     package's model files (model*.go — the Fit/Predict/Insert/Remove
//     surface whose facts feed label resolution).
//   - lockcheck guards the root package (the Model concurrency contract).
//   - ctxflow and hotalloc run module-wide; ctxflow itself skips package
//     main, and hotalloc only fires inside //lafvet:hotpath functions.
//
// Fixture packages (no lafdbscan path prefix) are always in scope, so the
// analyzer tests exercise the checks directly.
func InScope(a *Analyzer, pkgPath, fileBase string) bool {
	if !strings.HasPrefix(pkgPath, ModulePath) {
		return true // fixtures and out-of-module test packages
	}
	switch a.Name {
	case "mapiter":
		switch pkgPath {
		case ModulePath + "/internal/cluster",
			ModulePath + "/internal/core",
			ModulePath + "/internal/serve":
			return true
		case ModulePath:
			return strings.HasPrefix(fileBase, "model")
		}
		return false
	case "lockcheck":
		return pkgPath == ModulePath
	default: // ctxflow, hotalloc: module-wide
		return true
	}
}

// Run executes every analyzer of the suite over every package, applying
// the default scope, and returns the combined diagnostics sorted by
// position. Loader packages carrying type errors are reported as
// diagnostics too — an unanalyzable package must fail the gate, not pass
// it silently.
func (s Suite) Run(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Err != nil {
			out = append(out, Diagnostic{
				Pos:      token.Position{Filename: pkg.Path},
				Analyzer: "load",
				Message:  pkg.Err.Error(),
			})
			continue
		}
		for _, a := range s {
			files := scopedFiles(a, pkg)
			if len(files) == 0 {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				out = append(out, Diagnostic{
					Pos:      token.Position{Filename: pkg.Path},
					Analyzer: a.Name,
					Message:  "analyzer error: " + err.Error(),
				})
			}
			checkAllowDirectives(pass)
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// scopedFiles returns the package files the analyzer checks, honoring the
// default scope's per-file restriction for the root package.
func scopedFiles(a *Analyzer, pkg *Package) []*ast.File {
	var files []*ast.File
	for _, f := range pkg.Files {
		base := baseName(pkg.Fset.Position(f.Pos()).Filename)
		if InScope(a, pkg.Path, base) {
			files = append(files, f)
		}
	}
	return files
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
