package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags `range` statements over maps whose loop bodies are not
// provably order-insensitive. Go randomizes map iteration order, so any
// order-sensitive effect inside such a loop is a latent determinism bug —
// in this repository's fact-producing packages it would silently break the
// bit-identical-labels contract the parallel, wave and incremental engines
// are tested against (PRs 1, 2 and 5).
//
// A loop body is accepted as order-insensitive when every statement is one
// of:
//
//   - a store keyed by the iteration key (m2[k] = v): distinct keys write
//     distinct cells, so ordering cannot matter;
//   - a commutative integer accumulation (n++, n += x, bitwise or-assign):
//     integer addition is associative and commutative — note that FLOAT
//     accumulation is rejected, because float addition does not associate;
//   - delete(m, k): deletes are idempotent per key;
//   - `continue`, or an `if` with a pure condition wrapping the above;
//   - s = append(s, e) IF the first statement after the loop that uses s
//     is a recognized sort call (sort.Ints / sort.Strings / sort.Slice /
//     slices.Sort / ...): extracting then sorting re-establishes a
//     deterministic order.
//
// No expression in the body may read a variable the body itself mutates
// (an accumulator read would smuggle order back in), and conditions,
// indexes and right-hand sides must be pure (no calls). Everything else
// needs an explicit `//lafvet:orderfree <reason>` directive on or above
// the range statement; a directive without a reason, or one not attached
// to a map range, is itself reported.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag range-over-map loops whose effects depend on iteration order",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, file := range pass.Files {
		rangeLines := make(map[int]bool) // lines holding a map-range statement
		var walkStmts func(stmts []ast.Stmt)
		checkRange := func(rs *ast.RangeStmt, tail []ast.Stmt) {
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			line := pass.Fset.Position(rs.Pos()).Line
			rangeLines[line] = true
			if d, ok := pass.DirectiveFor(file, rs.Pos(), "orderfree"); ok {
				if d.Args == "" {
					pass.Reportf(d.Pos, "lafvet:orderfree directive requires a reason")
				}
				return
			}
			if reason := orderSensitive(pass, rs, tail); reason != "" {
				pass.Reportf(rs.Pos(), "range over map: %s; sort the keys first or annotate //lafvet:orderfree <reason>", reason)
			}
		}
		walkStmts = func(stmts []ast.Stmt) {
			for i, s := range stmts {
				if ls, ok := s.(*ast.LabeledStmt); ok {
					s = ls.Stmt
				}
				if rs, ok := s.(*ast.RangeStmt); ok {
					checkRange(rs, stmts[i+1:])
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch b := n.(type) {
			case *ast.BlockStmt:
				walkStmts(b.List)
			case *ast.CaseClause:
				walkStmts(b.Body)
			case *ast.CommClause:
				walkStmts(b.Body)
			}
			return true
		})
		// A stale or misplaced directive must fail too: otherwise deleting
		// the loop it documented would leave a suppression lying around to
		// silently cover the next map range pasted nearby.
		for _, d := range pass.Directives(file) {
			if d.Name == "orderfree" && !rangeLines[d.Line] && !rangeLines[d.Line+1] {
				pass.Reportf(d.Pos, "lafvet:orderfree directive does not annotate a range-over-map statement")
			}
		}
	}
	return nil
}

// orderSensitive explains why the loop body is not provably
// order-insensitive ("" when it is). tail is the statement list following
// the range statement in its enclosing block, used to verify the
// extract-then-sort pattern.
func orderSensitive(pass *Pass, rs *ast.RangeStmt, tail []ast.Stmt) string {
	info := pass.TypesInfo

	keyObj := rangeVarObj(info, rs.Key)

	// Pass 1: every object the body mutates. Reading one of these anywhere
	// in the body makes the loop an (order-dependent) fold.
	mutated := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if obj := exprObj(info, chainBase(lhs)); obj != nil {
					mutated[obj] = true
				}
			}
		case *ast.IncDecStmt:
			if obj := exprObj(info, chainBase(s.X)); obj != nil {
				mutated[obj] = true
			}
		}
		return true
	})

	// extracted tracks `s = append(s, e)` targets that must be sorted
	// right after the loop.
	extracted := make(map[types.Object]bool)

	pure := func(e ast.Expr) bool {
		return isPure(info, e) && !usesObject(info, e, mutated)
	}

	var why string
	var allowedStmt func(s ast.Stmt) bool
	allowedStmts := func(list []ast.Stmt) bool {
		for _, s := range list {
			if !allowedStmt(s) {
				return false
			}
		}
		return true
	}
	allowedStmt = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.BlockStmt:
			return allowedStmts(s.List)
		case *ast.BranchStmt:
			if s.Tok == token.CONTINUE {
				return true
			}
			why = "the body can exit the loop early (" + s.Tok.String() + "), so the result depends on which keys come first"
			return false
		case *ast.IfStmt:
			if s.Init != nil {
				init, ok := s.Init.(*ast.AssignStmt)
				if !ok || init.Tok != token.DEFINE {
					why = "if statement has a non-declaration initializer"
					return false
				}
				for _, rhs := range init.Rhs {
					if !pure(rhs) {
						why = "if initializer is not a pure expression"
						return false
					}
				}
			}
			if !pure(s.Cond) {
				why = "if condition calls a function or reads a variable the body mutates"
				return false
			}
			if !allowedStmt(s.Body) {
				return false
			}
			if s.Else != nil {
				return allowedStmt(s.Else)
			}
			return true
		case *ast.IncDecStmt:
			if tv, ok := info.Types[s.X]; ok && isIntegerType(tv.Type) {
				return true
			}
			why = "increment/decrement of a non-integer is not a commutative accumulation"
			return false
		case *ast.ExprStmt:
			call, ok := unparen(s.X).(*ast.CallExpr)
			if ok && isBuiltin(info, call, "delete") {
				for _, a := range call.Args {
					if !pure(a) {
						why = "delete argument is not pure"
						return false
					}
				}
				return true
			}
			why = "the body calls a function whose effects the checker cannot see"
			return false
		case *ast.AssignStmt:
			return allowedAssign(pass, s, keyObj, mutated, extracted, pure, &why)
		default:
			why = "the body contains a statement the checker cannot prove order-insensitive"
			return false
		}
	}

	if !allowedStmts(rs.Body.List) {
		if why == "" {
			why = "loop body is not provably order-insensitive"
		}
		return why
	}

	// Every extracted slice must be sorted by the first statement after the
	// loop that touches it.
	for obj := range extracted {
		if !sortedNext(pass, tail, obj) {
			return "elements are appended in map order and not sorted immediately after the loop"
		}
	}
	return ""
}

// allowedAssign accepts the three assignment shapes of an order-insensitive
// body: a store keyed by the iteration key, a commutative integer
// accumulation, and the append half of extract-then-sort.
func allowedAssign(pass *Pass, s *ast.AssignStmt, keyObj types.Object, mutated map[types.Object]bool, extracted map[types.Object]bool, pure func(ast.Expr) bool, why *string) bool {
	info := pass.TypesInfo
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		*why = "multi-assignments are not checked; annotate if order-insensitive"
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		tv, ok := info.Types[lhs]
		if !ok || !isIntegerType(tv.Type) {
			*why = "compound assignment accumulates a non-integer (float accumulation is order-dependent)"
			return false
		}
		if !pure(rhs) {
			*why = "accumulation operand is not a pure expression"
			return false
		}
		// An indexed accumulator (counts[u] += d) is fine for any index:
		// integer op-assigns commute even when keys collide. The index and
		// base just have to be pure.
		if ix, ok := unparen(lhs).(*ast.IndexExpr); ok && !pure(ix.Index) {
			*why = "accumulator index is not a pure expression"
			return false
		}
		return true
	case token.ASSIGN, token.DEFINE:
		// Extract-then-sort: s = append(s, e...)
		if call, ok := unparen(rhs).(*ast.CallExpr); ok && isBuiltin(info, call, "append") && len(call.Args) >= 2 && call.Ellipsis == token.NoPos {
			dst := exprObj(info, lhs)
			src := exprObj(info, call.Args[0])
			if dst != nil && dst == src {
				for _, a := range call.Args[1:] {
					if !(isPure(info, a) && !usesObjectExcept(info, a, mutated, dst)) {
						*why = "appended element is not a pure expression"
						return false
					}
				}
				extracted[dst] = true
				return true
			}
		}
		if s.Tok == token.DEFINE {
			*why = "declarations inside the body are not checked; annotate if order-insensitive"
			return false
		}
		// Keyed store: X[k] = v with the iteration key as the index.
		ix, ok := unparen(lhs).(*ast.IndexExpr)
		if !ok {
			*why = "plain assignment to a shared variable: the last key iterated wins"
			return false
		}
		if keyObj == nil || exprObj(info, keyIdent(ix.Index)) != keyObj {
			*why = "store is not keyed by the iteration key, so colliding writes depend on order"
			return false
		}
		// The store target is of course mutated by the store itself; only
		// OTHER mutated variables may not be read.
		storeBase := exprObj(info, chainBase(ix.X))
		if !pure(rhs) || !isPure(info, ix.X) || usesObjectExcept(info, ix.X, mutated, storeBase) {
			*why = "keyed store reads an impure expression"
			return false
		}
		return true
	default:
		*why = "assignment operator " + s.Tok.String() + " is not a commutative accumulation"
		return false
	}
}

// keyIdent unwraps conversions like int(u) / int32(u) around an index
// expression so X[int(k)] counts as keyed by k.
func keyIdent(e ast.Expr) ast.Expr {
	e = unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		return keyIdent(call.Args[0])
	}
	return e
}

// usesObjectExcept is usesObject with one object exempted (the append
// target may of course mention itself).
func usesObjectExcept(info *types.Info, e ast.Expr, objs map[types.Object]bool, except types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && obj != except && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// rangeVarObj returns the object of a range key/value variable (nil for _
// or absent).
func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// sortedNext reports whether the first statement in tail that references
// obj is a recognized sort call over it.
func sortedNext(pass *Pass, tail []ast.Stmt, obj types.Object) bool {
	info := pass.TypesInfo
	for _, s := range tail {
		refs := false
		ast.Inspect(s, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				refs = true
			}
			return !refs
		})
		if !refs {
			continue
		}
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := unparen(es.X).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		if exprObj(info, call.Args[0]) != obj {
			return false
		}
		for pkg, names := range map[string][]string{
			"sort":   {"Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable"},
			"slices": {"Sort", "SortFunc", "SortStableFunc"},
		} {
			for _, name := range names {
				if pkgFunc(info, call, pkg, name) {
					return true
				}
			}
		}
		return false
	}
	return false
}
