package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness, modeled on x/tools' analysistest: each
// testdata/<analyzer>/ directory is loaded as one package (testdata is
// invisible to the go tool, so the fixtures cannot break the module
// build), the analyzer runs over it, and the diagnostics are compared —
// exactly, both directions — against `want "regexp"` markers in the
// fixture source. A marker anywhere in a line's comments applies to
// diagnostics reported on that line; several quoted regexps may follow one
// `want`. A diagnostic with no matching marker, or a marker with no
// diagnostic, fails the test.

// wantRe extracts the quoted regexps following a want marker; double- and
// back-quoted forms are both accepted (backquotes spare the regexp from
// double escaping).
var wantRe = regexp.MustCompile("want ((?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)(?:[ \t]+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))*)")

var quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// parseExpectations scans a fixture file for want markers.
func parseExpectations(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range quotedRe.FindAllString(m[1], -1) {
			pattern, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: bad want marker %s: %v", path, i+1, q, err)
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pattern, err)
			}
			out = append(out, &expectation{
				file: filepath.Base(path),
				line: i + 1,
				re:   re,
				raw:  pattern,
			})
		}
	}
	return out
}

// runFixture loads testdata/<dir>, runs the analyzer, and checks the
// diagnostics against the fixture's want markers.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var wants []*expectation
	for _, f := range pkg.GoFiles {
		wants = append(wants, parseExpectations(t, f)...)
	}
	diags := Suite{a}.Run([]*Package{pkg})
	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation covering (file, line,
// message) as matched.
func claim(wants []*expectation, file string, line int, message string) bool {
	base := filepath.Base(file)
	for _, w := range wants {
		if !w.matched && w.file == base && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// stripAndRun removes every source line matching strip, loads the result
// from a scratch directory, and returns the suite's diagnostics. It is how
// the tests prove that deleting a directive makes lafvet fail. The scratch
// directory is dot-prefixed and created here, INSIDE the module, so the go
// tool ignores it while `go list` still resolves lafdbscan-internal
// imports for the copied files.
func stripAndRun(t *testing.T, s Suite, srcFiles []string, strip func(line string) bool) []Diagnostic {
	t.Helper()
	dir, err := os.MkdirTemp(".", ".striptest")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	for _, src := range srcFiles {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		var kept []string
		for _, line := range strings.Split(string(data), "\n") {
			if strip != nil && strip(line) {
				continue
			}
			kept = append(kept, line)
		}
		dst := filepath.Join(dir, filepath.Base(src))
		if err := os.WriteFile(dst, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading stripped copy: %v", err)
	}
	return s.Run([]*Package{pkg})
}

func fmtDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
