package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockCheck enforces the Model concurrency contract established in PR 5
// structurally: every struct with a `mu sync.Mutex` / `sync.RWMutex` field
// declares its guarded state BELOW the mutex (the repo-wide convention the
// Model doc comment spells out), and any function that touches a guarded
// field must show evidence of holding the lock.
//
// Evidence is syntactic and function-scoped:
//
//   - a call to <x>.mu.Lock() anywhere in the body licenses reads and
//     writes;
//   - a call to <x>.mu.RLock() licenses reads only;
//   - a function whose name ends in "Locked" declares the repository's
//     caller-holds-lock contract and is licensed for both (its CALLERS are
//     then required to show evidence at the call site);
//   - a value constructed in the same function (composite literal or
//     `new`) is not yet shared, so its fields are exempt.
//
// The check is deliberately coarse — it cannot see unlock-before-use or
// locking the wrong instance — but it catches the regression that actually
// happens: a new accessor reading m.labels with no lock at all.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "flag guarded-field access without mutex evidence (fields below a mu field)",
	Run:  runLockCheck,
}

const lockedSuffix = "Locked"

// guardedStruct records which fields of a struct are declared below its mu.
type guardedStruct struct {
	typeName string
	fields   map[string]bool
}

func runLockCheck(pass *Pass) error {
	guarded := collectGuardedStructs(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncLocks(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuardedStructs finds every struct declared in the pass's files
// that has a `mu` mutex field, and records the fields declared after it.
func collectGuardedStructs(pass *Pass) map[*types.TypeName]*guardedStruct {
	out := make(map[*types.TypeName]*guardedStruct)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			gs := &guardedStruct{typeName: ts.Name.Name, fields: make(map[string]bool)}
			seenMu := false
			for _, field := range st.Fields.List {
				if !seenMu {
					for _, name := range field.Names {
						if name.Name == "mu" && isMutexType(pass.TypesInfo, field.Type) {
							seenMu = true
						}
					}
					continue
				}
				for _, name := range field.Names {
					gs.fields[name.Name] = true
				}
			}
			if seenMu && len(gs.fields) > 0 {
				out[tn] = gs
			}
			return true
		})
	}
	return out
}

// isMutexType reports whether the field type is sync.Mutex or sync.RWMutex.
func isMutexType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkFuncLocks verifies every guarded-field access and *Locked call in
// one function body against the function's lock evidence.
func checkFuncLocks(pass *Pass, fd *ast.FuncDecl, guarded map[*types.TypeName]*guardedStruct) {
	info := pass.TypesInfo

	readEv, writeEv := lockEvidence(fd.Body)
	if strings.HasSuffix(fd.Name.Name, lockedSuffix) {
		// Caller-holds-lock contract: the body is licensed; call sites of
		// this function are checked in THEIR enclosing functions below.
		readEv, writeEv = true, true
	}

	fresh := constructorLocals(info, fd.Body, guarded)

	// First pass: which selector nodes are write targets.
	writes := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				writes[unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			writes[unparen(s.X)] = true
		case *ast.UnaryExpr:
			if s.Op.String() == "&" {
				// Taking a guarded field's address escapes the lock's
				// scope; treat like a write.
				writes[unparen(s.X)] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			gs, fieldName := guardedField(info, x, guarded)
			if gs == nil || fieldName == "mu" {
				return true
			}
			if obj := exprObj(info, chainBase(x.X)); obj != nil && fresh[obj] {
				return true
			}
			if writes[ast.Node(x)] {
				if !writeEv {
					pass.Reportf(x.Pos(), "write to guarded field %s.%s without holding mu (call mu.Lock or move this into a %s-suffixed helper)", gs.typeName, fieldName, lockedSuffix)
				}
			} else if !readEv {
				pass.Reportf(x.Pos(), "read of guarded field %s.%s without holding mu (call mu.RLock or move this into a %s-suffixed helper)", gs.typeName, fieldName, lockedSuffix)
			}
		case *ast.CallExpr:
			// Calling a *Locked method requires lock evidence at the call
			// site: the callee declared that its caller holds mu.
			sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || !strings.HasSuffix(sel.Sel.Name, lockedSuffix) {
				return true
			}
			recvTn := receiverTypeName(info, sel.X)
			if recvTn == nil || guarded[recvTn] == nil {
				return true
			}
			if obj := exprObj(info, chainBase(sel.X)); obj != nil && fresh[obj] {
				return true
			}
			if !readEv {
				pass.Reportf(x.Pos(), "call to %s.%s without holding mu (the %s suffix means the caller must hold the lock)", guarded[recvTn].typeName, sel.Sel.Name, lockedSuffix)
			}
		}
		return true
	})
}

// lockEvidence scans a body for <x>.mu.Lock() / <x>.mu.RLock() calls.
func lockEvidence(body *ast.BlockStmt) (readEv, writeEv bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "mu" {
			return true
		}
		switch sel.Sel.Name {
		case "Lock":
			readEv, writeEv = true, true
		case "RLock":
			readEv = true
		}
		return true
	})
	return readEv, writeEv
}

// guardedField resolves a selector to (struct, field) when it selects a
// guarded field of a tracked struct, using type information so embedded
// and pointer receivers resolve correctly.
func guardedField(info *types.Info, sel *ast.SelectorExpr, guarded map[*types.TypeName]*guardedStruct) (*guardedStruct, string) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	tn := namedTypeName(s.Recv())
	if tn == nil {
		return nil, ""
	}
	gs := guarded[tn]
	if gs == nil {
		return nil, ""
	}
	if sel.Sel.Name == "mu" {
		return gs, "mu"
	}
	if !gs.fields[sel.Sel.Name] {
		return nil, ""
	}
	return gs, sel.Sel.Name
}

// receiverTypeName resolves the type name of a method receiver expression.
func receiverTypeName(info *types.Info, e ast.Expr) *types.TypeName {
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	return namedTypeName(tv.Type)
}

// namedTypeName unwraps pointers and returns the *types.TypeName of a named
// type, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// constructorLocals returns the objects of variables the function itself
// initializes with a composite literal or `new` of a guarded struct: until
// the value is published, no lock can be required.
func constructorLocals(info *types.Info, body *ast.BlockStmt, guarded map[*types.TypeName]*guardedStruct) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	isGuardedNew := func(e ast.Expr) bool {
		e = unparen(e)
		if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
			e = unparen(ue.X)
		}
		switch x := e.(type) {
		case *ast.CompositeLit:
			tv, ok := info.Types[x]
			return ok && guarded[namedTypeName(tv.Type)] != nil
		case *ast.CallExpr:
			if !isBuiltin(info, x, "new") || len(x.Args) != 1 {
				return false
			}
			tv, ok := info.Types[x.Args[0]]
			return ok && tv.IsType() && guarded[namedTypeName(tv.Type)] != nil
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || !isGuardedNew(as.Rhs[i]) {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				fresh[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}
