package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestContingencyBasics(t *testing.T) {
	c, err := NewContingency([]int{0, 0, 1, 1}, []int{0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 4 {
		t.Errorf("N = %d", c.N)
	}
	if len(c.Counts) != 2 || len(c.Counts[0]) != 3 {
		t.Errorf("shape %dx%d", len(c.Counts), len(c.Counts[0]))
	}
	if c.RowSums[0] != 2 || c.ColSums[0] != 2 || c.ColSums[1] != 1 {
		t.Errorf("marginals %v %v", c.RowSums, c.ColSums)
	}
}

func TestContingencyLengthMismatch(t *testing.T) {
	if _, err := NewContingency([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ARI([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("ARI length mismatch accepted")
	}
	if _, err := AMI([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("AMI length mismatch accepted")
	}
	if _, err := NMI([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("NMI length mismatch accepted")
	}
}

func TestARIKnownValues(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{0, 0, 1, 1}, []int{0, 0, 1, 1}, 1},
		{[]int{0, 0, 1, 1}, []int{1, 1, 0, 0}, 1},         // permutation invariant
		{[]int{0, 0, 1, 1}, []int{0, 1, 0, 1}, -0.5},      // maximally wrong
		{[]int{0, 0, 1, 1}, []int{0, 0, 1, 2}, 4.0 / 7.0}, // split one cluster
		{[]int{0, 1, 2, 3}, []int{0, 1, 2, 3}, 1},         // all singletons
		{[]int{-1, -1, 0, 0}, []int{-1, -1, 0, 0}, 1},     // noise as a class
	}
	for _, c := range cases {
		got, err := ARI(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("ARI(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAMIKnownValues(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{0, 0, 1, 1}, []int{0, 0, 1, 1}, 1},
		{[]int{0, 0, 1, 1}, []int{1, 1, 0, 0}, 1},
		{[]int{0, 0, 1, 1}, []int{0, 1, 0, 1}, -0.5}, // matches scikit-learn
		{[]int{0, 0, 0, 0}, []int{0, 0, 0, 0}, 1},    // both constant
	}
	for _, c := range cases {
		got, err := AMI(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("AMI(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNMI(t *testing.T) {
	got, err := NMI([]int{0, 0, 1, 1}, []int{0, 0, 1, 1})
	if err != nil || !almostEqual(got, 1, 1e-12) {
		t.Errorf("NMI identical = %v (%v)", got, err)
	}
	got, err = NMI([]int{0, 0, 1, 1}, []int{0, 1, 0, 1})
	if err != nil || !almostEqual(got, 0, 1e-12) {
		t.Errorf("NMI independent = %v (%v)", got, err)
	}
}

// Property: agreement scores are 1 for any labeling compared with a
// label-permuted copy of itself, and never exceed 1.
func TestScoresPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(40)
		k := 1 + r.Intn(5)
		a := make([]int, n)
		b := make([]int, n)
		perm := r.Perm(k)
		for i := range a {
			a[i] = r.Intn(k)
			b[i] = perm[a[i]]
		}
		ari, err1 := ARI(a, b)
		ami, err2 := AMI(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(ari, 1, 1e-9) && almostEqual(ami, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: scores of random labelings stay in a sane range and are
// symmetric in their arguments.
func TestScoresSymmetricBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = r.Intn(4)
			b[i] = r.Intn(3)
		}
		ari1, _ := ARI(a, b)
		ari2, _ := ARI(b, a)
		ami1, _ := AMI(a, b)
		ami2, _ := AMI(b, a)
		return almostEqual(ari1, ari2, 1e-9) && almostEqual(ami1, ami2, 1e-9) &&
			ari1 <= 1+1e-9 && ami1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestARISinglePoint(t *testing.T) {
	got, err := ARI([]int{3}, []int{9})
	if err != nil || got != 1 {
		t.Errorf("single point ARI = %v (%v)", got, err)
	}
}

func TestStats(t *testing.T) {
	s := Stats([]int{1, 1, 2, Noise, Noise, Noise, 2, 2})
	if s.N != 8 || s.NumClusters != 2 || s.NumNoise != 3 {
		t.Errorf("Stats = %+v", s)
	}
	if !almostEqual(s.NoiseRatio, 3.0/8.0, 1e-12) {
		t.Errorf("noise ratio %v", s.NoiseRatio)
	}
	if s.Sizes[1] != 2 || s.Sizes[2] != 3 {
		t.Errorf("sizes %v", s.Sizes)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := Stats(nil)
	if s.N != 0 || s.NoiseRatio != 0 || s.NumClusters != 0 {
		t.Errorf("Stats(nil) = %+v", s)
	}
}

func TestMissedClusters(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1, 2, Noise}
	pred := []int{5, 5, Noise, Noise, Noise, 7, Noise}
	s, err := MissedClusters(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalClusters != 3 {
		t.Errorf("TC = %d", s.TotalClusters)
	}
	if s.MissedClusters != 1 { // only cluster 1 is fully noise in pred
		t.Errorf("MC = %d", s.MissedClusters)
	}
	if s.MissedPoints != 2 || s.TotalClusteredPoints != 6 {
		t.Errorf("MP/TPC = %d/%d", s.MissedPoints, s.TotalClusteredPoints)
	}
	if !almostEqual(s.AvgMissedSize, 2, 1e-12) {
		t.Errorf("ASMC = %v", s.AvgMissedSize)
	}
}

func TestMissedClustersNoneMissed(t *testing.T) {
	truth := []int{0, 0, 1}
	pred := []int{4, 4, 5}
	s, err := MissedClusters(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if s.MissedClusters != 0 || s.AvgMissedSize != 0 {
		t.Errorf("unexpected misses: %+v", s)
	}
}

func TestMissedClustersLengthMismatch(t *testing.T) {
	if _, err := MissedClusters([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if (lenError{}).Error() == "" {
		t.Fatal("empty error message")
	}
}

// Cross-check: ARI and AMI both near zero for independent labelings with
// plenty of samples.
func TestScoresNearZeroForIndependentLabels(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 3000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = r.Intn(5)
		b[i] = r.Intn(5)
	}
	ari, _ := ARI(a, b)
	ami, _ := AMI(a, b)
	if math.Abs(ari) > 0.02 || math.Abs(ami) > 0.02 {
		t.Errorf("independent labelings scored ari=%v ami=%v", ari, ami)
	}
}
