package metrics

// ARI returns the Adjusted Rand Index between two labelings of the same
// points. 1 means identical partitions, 0 is the chance level, and negative
// values indicate worse-than-chance agreement (the paper's Table 3 contains
// one such entry for KNN-BLOCK on MS-150k).
func ARI(a, b []int) (float64, error) {
	c, err := NewContingency(a, b)
	if err != nil {
		return 0, err
	}
	return c.ARI(), nil
}

// ARI computes the Adjusted Rand Index from the contingency table.
func (c *Contingency) ARI() float64 {
	if c.N <= 1 {
		return 1 // degenerate: a single point is always perfectly clustered
	}
	var sumComb, sumRows, sumCols float64
	for i, row := range c.Counts {
		sumRows += comb2(c.RowSums[i])
		for _, n := range row {
			sumComb += comb2(n)
		}
	}
	for _, s := range c.ColSums {
		sumCols += comb2(s)
	}
	total := comb2(c.N)
	expected := sumRows * sumCols / total
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		// Both partitions are all-singletons or all-one-cluster; they agree
		// exactly when the raw index equals the expected index.
		return 1
	}
	return (sumComb - expected) / (maxIndex - expected)
}
