// Package metrics implements the clustering-quality measures used in the
// paper's evaluation: the Adjusted Rand Index (Hubert & Arabie 1985) and the
// Adjusted Mutual Information score (Vinh, Epps & Bailey 2010), plus the
// clustering statistics behind Tables 2 and 6 (noise ratio, cluster counts,
// fully-missed-cluster analysis).
//
// Noise points (label -1 by the conventions of internal/cluster) are treated
// as a regular singleton-style class of their own when building contingency
// tables, matching the common scikit-learn usage the paper's scores reflect.
package metrics
