package metrics

import "math"

// AMI returns the Adjusted Mutual Information score between two labelings,
// using the "max" normalization variant with expected mutual information
// under the hypergeometric model of randomness (Vinh et al. 2010), averaged
// entropies — the same convention as scikit-learn's default ("arithmetic").
func AMI(a, b []int) (float64, error) {
	c, err := NewContingency(a, b)
	if err != nil {
		return 0, err
	}
	return c.AMI(), nil
}

// MI returns the (unadjusted) mutual information of the table, in nats.
func (c *Contingency) MI() float64 {
	n := float64(c.N)
	var mi float64
	for i, row := range c.Counts {
		for j, nij := range row {
			if nij == 0 {
				continue
			}
			pij := float64(nij) / n
			mi += pij * math.Log(float64(nij)*n/(float64(c.RowSums[i])*float64(c.ColSums[j])))
		}
	}
	if mi < 0 {
		mi = 0 // guard tiny negative rounding
	}
	return mi
}

// Entropies returns the Shannon entropies (nats) of the two marginals.
func (c *Contingency) Entropies() (hRow, hCol float64) {
	n := float64(c.N)
	for _, s := range c.RowSums {
		if s > 0 {
			p := float64(s) / n
			hRow -= p * math.Log(p)
		}
	}
	for _, s := range c.ColSums {
		if s > 0 {
			p := float64(s) / n
			hCol -= p * math.Log(p)
		}
	}
	return hRow, hCol
}

// EMI returns the expected mutual information between random labelings with
// the table's marginals, under the hypergeometric model. Complexity is
// O(R*C*min(a_i,b_j)); fine at the repository's experiment scales.
func (c *Contingency) EMI() float64 {
	n := c.N
	lgN := lgammaInt(n + 1)
	var emi float64
	for i := range c.RowSums {
		ai := c.RowSums[i]
		for j := range c.ColSums {
			bj := c.ColSums[j]
			lo := ai + bj - n
			if lo < 1 {
				lo = 1
			}
			hi := ai
			if bj < hi {
				hi = bj
			}
			for nij := lo; nij <= hi; nij++ {
				term1 := float64(nij) / float64(n) *
					math.Log(float64(n)*float64(nij)/(float64(ai)*float64(bj)))
				// log of the hypergeometric probability of nij
				logP := lgammaInt(ai+1) + lgammaInt(bj+1) +
					lgammaInt(n-ai+1) + lgammaInt(n-bj+1) -
					lgN - lgammaInt(nij+1) - lgammaInt(ai-nij+1) -
					lgammaInt(bj-nij+1) - lgammaInt(n-ai-bj+nij+1)
				emi += term1 * math.Exp(logP)
			}
		}
	}
	return emi
}

// AMI computes the adjusted mutual information from the contingency table:
// (MI - EMI) / (mean(H(U), H(V)) - EMI).
func (c *Contingency) AMI() float64 {
	hr, hc := c.Entropies()
	if hr == 0 && hc == 0 {
		// Both labelings are constant: identical partitions.
		return 1
	}
	mi := c.MI()
	emi := c.EMI()
	denom := (hr+hc)/2 - emi
	if math.Abs(denom) < 1e-15 {
		// Chance-level denominator; fall back to raw agreement.
		if math.Abs(mi-emi) < 1e-15 {
			return 0
		}
		return math.Inf(1)
	}
	return (mi - emi) / denom
}

func lgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n))
	return v
}

// NMI returns the normalized mutual information MI / mean(H(U), H(V)),
// useful as a faster sanity metric in tests and ablations.
func NMI(a, b []int) (float64, error) {
	c, err := NewContingency(a, b)
	if err != nil {
		return 0, err
	}
	hr, hc := c.Entropies()
	if hr == 0 && hc == 0 {
		return 1, nil
	}
	m := (hr + hc) / 2
	if m == 0 {
		return 0, nil
	}
	return c.MI() / m, nil
}
