package metrics

import "fmt"

// Contingency is the cross-tabulation of two labelings of the same points.
type Contingency struct {
	// N is the number of points.
	N int
	// Counts[i][j] is the number of points with row-class i and col-class j.
	Counts [][]int
	// RowSums[i] and ColSums[j] are the marginals.
	RowSums, ColSums []int
}

// NewContingency builds the contingency table of labelings a (rows) and b
// (columns). Labels may be arbitrary ints, including -1 for noise.
func NewContingency(a, b []int) (*Contingency, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("metrics: labelings of different lengths %d and %d", len(a), len(b))
	}
	rowIdx := indexLabels(a)
	colIdx := indexLabels(b)
	c := &Contingency{
		N:       len(a),
		Counts:  make([][]int, len(rowIdx)),
		RowSums: make([]int, len(rowIdx)),
		ColSums: make([]int, len(colIdx)),
	}
	for i := range c.Counts {
		c.Counts[i] = make([]int, len(colIdx))
	}
	for k := range a {
		i, j := rowIdx[a[k]], colIdx[b[k]]
		c.Counts[i][j]++
		c.RowSums[i]++
		c.ColSums[j]++
	}
	return c, nil
}

func indexLabels(labels []int) map[int]int {
	idx := make(map[int]int)
	for _, l := range labels {
		if _, ok := idx[l]; !ok {
			idx[l] = len(idx)
		}
	}
	return idx
}

// comb2 returns C(n, 2) as a float64.
func comb2(n int) float64 {
	return float64(n) * float64(n-1) / 2
}
