package metrics

// Noise is the label value clustering algorithms assign to noise points.
// It mirrors internal/cluster.Noise; duplicated here to keep the metrics
// package dependency-free.
const Noise = -1

// ClusteringStats summarizes a labeling the way the paper's Table 2 does.
type ClusteringStats struct {
	// N is the number of points.
	N int
	// NumClusters is the number of distinct non-noise cluster ids.
	NumClusters int
	// NumNoise is the number of points labeled Noise.
	NumNoise int
	// NoiseRatio is NumNoise / N (0 for an empty labeling).
	NoiseRatio float64
	// Sizes maps cluster id to member count.
	Sizes map[int]int
}

// Stats computes the summary of a labeling.
func Stats(labels []int) ClusteringStats {
	s := ClusteringStats{N: len(labels), Sizes: make(map[int]int)}
	for _, l := range labels {
		if l == Noise {
			s.NumNoise++
			continue
		}
		s.Sizes[l]++
	}
	s.NumClusters = len(s.Sizes)
	if s.N > 0 {
		s.NoiseRatio = float64(s.NumNoise) / float64(s.N)
	}
	return s
}

// MissedClusterStats reproduces the paper's Table 6 analysis: how many
// ground-truth clusters were fully missed (every member labeled noise by the
// approximate method), how many points that cost, and the average size of
// the missed clusters.
type MissedClusterStats struct {
	// MissedClusters (MC) is the number of ground-truth clusters whose
	// every member is noise in the predicted labeling.
	MissedClusters int
	// TotalClusters (TC) is the number of ground-truth clusters.
	TotalClusters int
	// MissedPoints (MP) is the number of points in fully missed clusters.
	MissedPoints int
	// TotalClusteredPoints (TPC) is the number of non-noise ground-truth
	// points.
	TotalClusteredPoints int
	// AvgMissedSize (ASMC) is MissedPoints / MissedClusters (0 when none).
	AvgMissedSize float64
}

// MissedClusters compares a predicted labeling against ground truth and
// reports the fully-missed-cluster statistics.
func MissedClusters(truth, pred []int) (MissedClusterStats, error) {
	var s MissedClusterStats
	if len(truth) != len(pred) {
		return s, errLen(len(truth), len(pred))
	}
	members := make(map[int][]int)
	for i, l := range truth {
		if l == Noise {
			continue
		}
		members[l] = append(members[l], i)
		s.TotalClusteredPoints++
	}
	s.TotalClusters = len(members)
	for _, idx := range members {
		missed := true
		for _, i := range idx {
			if pred[i] != Noise {
				missed = false
				break
			}
		}
		if missed {
			s.MissedClusters++
			s.MissedPoints += len(idx)
		}
	}
	if s.MissedClusters > 0 {
		s.AvgMissedSize = float64(s.MissedPoints) / float64(s.MissedClusters)
	}
	return s, nil
}

type lenError struct{ a, b int }

func errLen(a, b int) error { return lenError{a, b} }

func (e lenError) Error() string {
	return "metrics: labelings of different lengths"
}
