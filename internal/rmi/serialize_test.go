package rmi

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"lafdbscan/internal/vecmath"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ex, refSize := syntheticExamples(120, 21)
	model, err := Train(ex, refSize, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.InDim() != model.InDim() || loaded.NumModels() != model.NumModels() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			loaded.InDim(), loaded.NumModels(), model.InDim(), model.NumModels())
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 30; i++ {
		v := vecmath.RandomUnit(8, rng)
		r := rng.Float64()
		a := model.Estimate(v, r)
		b := loaded.Estimate(v, r)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("prediction drift after round trip: %v vs %v", a, b)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ex, refSize := syntheticExamples(60, 23)
	model, err := Train(ex, refSize, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.rmi")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumModels() != model.NumModels() {
		t.Fatal("file round trip lost models")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.rmi")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadRejectsMalformedPayload(t *testing.T) {
	// Valid gob of a structurally invalid model.
	var buf bytes.Buffer
	bad := &RMI{inDim: 0, logN: 0, stages: nil}
	if err := bad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("malformed model accepted")
	}
}
