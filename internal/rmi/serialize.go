package rmi

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"lafdbscan/internal/nn"
)

// rmiPayload is the gob wire format of a trained RMI. Networks serialize
// directly (all nn fields are exported).
type rmiPayload struct {
	Version int
	InDim   int
	LogN    float64
	Stages  [][]*nn.Network
}

const serializeVersion = 1

// Save writes the trained model to w. Training configuration is not
// persisted — a loaded model can only predict.
func (r *RMI) Save(w io.Writer) error {
	payload := rmiPayload{
		Version: serializeVersion,
		InDim:   r.inDim,
		LogN:    r.logN,
		Stages:  r.stages,
	}
	return gob.NewEncoder(w).Encode(&payload)
}

// Load reads a model written by Save.
func Load(rd io.Reader) (*RMI, error) {
	var payload rmiPayload
	if err := gob.NewDecoder(rd).Decode(&payload); err != nil {
		return nil, fmt.Errorf("rmi: decoding model: %w", err)
	}
	if payload.Version != serializeVersion {
		return nil, fmt.Errorf("rmi: unsupported model version %d", payload.Version)
	}
	if len(payload.Stages) == 0 || len(payload.Stages[0]) != 1 {
		return nil, fmt.Errorf("rmi: malformed model: bad stage structure")
	}
	if payload.InDim < 2 || payload.LogN <= 0 {
		return nil, fmt.Errorf("rmi: malformed model: inDim=%d logN=%v", payload.InDim, payload.LogN)
	}
	return &RMI{
		inDim:  payload.InDim,
		logN:   payload.LogN,
		stages: payload.Stages,
	}, nil
}

// SaveFile writes the model to a file.
func (r *RMI) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from a file.
func LoadFile(path string) (*RMI, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
