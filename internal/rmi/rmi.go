package rmi

import (
	"fmt"
	"math"
	"math/rand"

	"lafdbscan/internal/nn"
)

// Config controls the index shape and training.
type Config struct {
	// StageCounts is the number of models per stage, top to bottom.
	// The paper uses {1, 2, 4}.
	StageCounts []int
	// Hidden is the hidden-layer widths of every model.
	// The paper uses {512, 512, 256, 128}; the default experiment preset
	// uses {64, 64, 32, 16} (a laptop-friendly substitution; the shape of
	// the results, not absolute seconds, is the reproduction target).
	Hidden []int
	// Epochs and BatchSize configure each model's training run.
	Epochs    int
	BatchSize int
	// LR is the Adam learning rate.
	LR float64
	// Seed makes training reproducible.
	Seed int64
}

// DefaultConfig is the fast preset used by tests and the default harness.
func DefaultConfig() Config {
	return Config{
		StageCounts: []int{1, 2, 4},
		Hidden:      []int{64, 64, 32, 16},
		Epochs:      30,
		BatchSize:   64,
		LR:          2e-3,
	}
}

// PaperConfig is the paper's exact architecture: RMI 1/2/4 with hidden
// widths 512-512-256-128, 200 epochs, batch size 512. Training it is slow
// in pure Go; use it when reproducing at full fidelity.
func PaperConfig() Config {
	return Config{
		StageCounts: []int{1, 2, 4},
		Hidden:      []int{512, 512, 256, 128},
		Epochs:      200,
		BatchSize:   512,
		LR:          1e-3,
	}
}

// Example is one training pair: a query embedding, a distance threshold and
// the exact neighbor count at that threshold.
type Example struct {
	Vector []float32
	Radius float64
	Count  int
}

// RMI is a trained recursive model index.
type RMI struct {
	cfg    Config
	inDim  int // embedding dim + 1
	logN   float64
	stages [][]*nn.Network
	// scratch per network for single-threaded prediction; concurrent users
	// should call EstimateWith with their own Scratch.
	scratch []*nn.Scratch
}

// Scratch holds per-goroutine prediction buffers.
type Scratch struct {
	buf  []float64
	nets []*nn.Scratch
}

// NewScratch allocates prediction scratch for r.
func (r *RMI) NewScratch() *Scratch {
	s := &Scratch{buf: make([]float64, r.inDim)}
	for _, stage := range r.stages {
		for _, net := range stage {
			s.nets = append(s.nets, nn.NewScratch(net))
		}
	}
	return s
}

// Train fits an RMI on the examples. n is the size of the reference set the
// counts were computed against (used for target normalization).
func Train(examples []Example, n int, cfg Config) (*RMI, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("rmi: no training examples")
	}
	if len(cfg.StageCounts) == 0 {
		cfg = DefaultConfig()
	}
	if cfg.StageCounts[0] != 1 {
		return nil, fmt.Errorf("rmi: first stage must have exactly 1 model, got %d", cfg.StageCounts[0])
	}
	if n <= 0 {
		return nil, fmt.Errorf("rmi: reference set size must be positive, got %d", n)
	}
	dim := len(examples[0].Vector)
	r := &RMI{cfg: cfg, inDim: dim + 1, logN: math.Log1p(float64(n))}
	rng := rand.New(rand.NewSource(cfg.Seed))

	inputs := make([][]float64, len(examples))
	targets := make([][]float64, len(examples))
	for i, ex := range examples {
		if len(ex.Vector) != dim {
			return nil, fmt.Errorf("rmi: example %d has dim %d, want %d", i, len(ex.Vector), dim)
		}
		inputs[i] = r.featurize(ex.Vector, ex.Radius, nil)
		targets[i] = []float64{r.normalize(ex.Count)}
	}

	widths := append([]int{r.inDim}, cfg.Hidden...)
	widths = append(widths, 1)

	// assigned[i] is the model id (within the current stage) of example i.
	assigned := make([]int, len(examples))
	for si, count := range cfg.StageCounts {
		stage := make([]*nn.Network, count)
		r.stages = append(r.stages, stage)
		// Partition examples by assignment.
		byModel := make([][]int, count)
		for i, m := range assigned {
			byModel[m] = append(byModel[m], i)
		}
		for m := 0; m < count; m++ {
			net := nn.NewNetwork(widths, nn.ReLU, nn.Sigmoid, rng)
			stage[m] = net
			idxs := byModel[m]
			if len(idxs) == 0 {
				continue // an unreached model keeps its random init
			}
			in := make([][]float64, len(idxs))
			tg := make([][]float64, len(idxs))
			for k, i := range idxs {
				in[k] = inputs[i]
				tg[k] = targets[i]
			}
			if _, err := net.Fit(in, tg, nn.TrainConfig{
				Epochs:    cfg.Epochs,
				BatchSize: cfg.BatchSize,
				Optimizer: nn.NewAdam(cfg.LR),
				Seed:      cfg.Seed + int64(si*100+m),
			}); err != nil {
				return nil, err
			}
		}
		// Route every example down for the next stage.
		if si+1 < len(cfg.StageCounts) {
			next := cfg.StageCounts[si+1]
			for i := range examples {
				y := stage[assigned[i]].Predict1(inputs[i], nil)
				assigned[i] = route(y, next)
			}
		}
	}
	r.scratch = nil
	return r, nil
}

// route maps a [0,1] prediction to a model index in [0, count).
func route(y float64, count int) int {
	idx := int(y * float64(count))
	if idx < 0 {
		return 0
	}
	if idx >= count {
		return count - 1
	}
	return idx
}

func (r *RMI) featurize(v []float32, radius float64, buf []float64) []float64 {
	if buf == nil {
		buf = make([]float64, r.inDim)
	}
	for i, x := range v {
		buf[i] = float64(x)
	}
	buf[len(v)] = radius
	return buf
}

func (r *RMI) normalize(count int) float64 {
	return math.Log1p(float64(count)) / r.logN
}

func (r *RMI) denormalize(y float64) float64 {
	if y < 0 {
		y = 0
	}
	if y > 1 {
		y = 1
	}
	return math.Expm1(y * r.logN)
}

// Estimate predicts the number of points within the given radius of v,
// relative to the reference set the index was trained on. Not safe for
// concurrent use; concurrent callers must use EstimateWith.
func (r *RMI) Estimate(v []float32, radius float64) float64 {
	if r.scratch == nil {
		sc := r.NewScratch()
		r.scratch = sc.nets
	}
	return r.estimate(v, radius, &Scratch{buf: make([]float64, r.inDim), nets: r.scratch})
}

// EstimateWith is the goroutine-safe variant of Estimate.
func (r *RMI) EstimateWith(v []float32, radius float64, s *Scratch) float64 {
	return r.estimate(v, radius, s)
}

func (r *RMI) estimate(v []float32, radius float64, s *Scratch) float64 {
	x := r.featurize(v, radius, s.buf)
	model := 0
	scratchIdx := 0
	var y float64
	for si, stage := range r.stages {
		net := stage[model]
		y = net.Predict1(x, s.nets[scratchIdx+model])
		scratchIdx += len(stage)
		if si+1 < len(r.stages) {
			model = route(y, len(r.stages[si+1]))
		}
	}
	return r.denormalize(y)
}

// NumModels returns the total model count (7 for the paper's 1+2+4).
func (r *RMI) NumModels() int {
	total := 0
	for _, s := range r.stages {
		total += len(s)
	}
	return total
}

// InDim returns the model input dimension (embedding dim + 1).
func (r *RMI) InDim() int { return r.inDim }
