package rmi

import (
	"math"
	"math/rand"
	"testing"

	"lafdbscan/internal/vecmath"
)

// syntheticExamples builds training pairs whose cardinality depends only on
// the radius and a single coordinate, so a small model can learn it.
func syntheticExamples(n int, seed int64) ([]Example, int) {
	rng := rand.New(rand.NewSource(seed))
	const refSize = 1000
	examples := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		v := vecmath.RandomUnit(8, rng)
		r := 0.1 + rng.Float64()*0.8
		// density grows with radius and with v[0]
		frac := r * (0.5 + 0.5*float64(v[0]+1)/2)
		count := int(frac * refSize)
		if count > refSize {
			count = refSize
		}
		examples = append(examples, Example{Vector: v, Radius: r, Count: count})
	}
	return examples, refSize
}

func smallConfig() Config {
	return Config{
		StageCounts: []int{1, 2, 4},
		Hidden:      []int{16, 8},
		Epochs:      40,
		BatchSize:   32,
		LR:          5e-3,
		Seed:        1,
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 100, smallConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	ex, _ := syntheticExamples(10, 1)
	bad := smallConfig()
	bad.StageCounts = []int{2, 2}
	if _, err := Train(ex, 100, bad); err == nil {
		t.Error("first stage != 1 accepted")
	}
	if _, err := Train(ex, 0, smallConfig()); err == nil {
		t.Error("non-positive reference size accepted")
	}
	ragged := append([]Example{}, ex...)
	ragged[3].Vector = []float32{1}
	if _, err := Train(ragged, 100, smallConfig()); err == nil {
		t.Error("ragged examples accepted")
	}
}

func TestTrainDefaultsWhenConfigEmpty(t *testing.T) {
	ex, refSize := syntheticExamples(60, 2)
	cfg := Config{} // all defaults
	r, err := Train(ex, refSize, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumModels() != 7 {
		t.Errorf("NumModels = %d, want 7", r.NumModels())
	}
}

func TestRMIStructure(t *testing.T) {
	ex, refSize := syntheticExamples(100, 3)
	r, err := Train(ex, refSize, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumModels() != 1+2+4 {
		t.Errorf("NumModels = %d", r.NumModels())
	}
	if r.InDim() != 9 {
		t.Errorf("InDim = %d, want 9", r.InDim())
	}
}

func TestRMILearnsMonotoneDensity(t *testing.T) {
	ex, refSize := syntheticExamples(600, 4)
	r, err := Train(ex, refSize, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Average relative error over held-out queries should be moderate.
	held, _ := syntheticExamples(100, 99)
	var relErr float64
	for _, e := range held {
		got := r.Estimate(e.Vector, e.Radius)
		relErr += math.Abs(got-float64(e.Count)) / (float64(e.Count) + 10)
	}
	relErr /= float64(len(held))
	if relErr > 0.6 {
		t.Errorf("mean relative error %v too high", relErr)
	}
	// Larger radii should predict more neighbors on average.
	rng := rand.New(rand.NewSource(5))
	var smallSum, largeSum float64
	for i := 0; i < 30; i++ {
		v := vecmath.RandomUnit(8, rng)
		smallSum += r.Estimate(v, 0.15)
		largeSum += r.Estimate(v, 0.85)
	}
	if smallSum >= largeSum {
		t.Errorf("radius monotonicity violated on average: %v vs %v", smallSum, largeSum)
	}
}

func TestEstimateBounds(t *testing.T) {
	ex, refSize := syntheticExamples(100, 6)
	r, err := Train(ex, refSize, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		v := vecmath.RandomUnit(8, rng)
		got := r.Estimate(v, rng.Float64())
		if got < 0 || got > float64(refSize)+1 {
			t.Fatalf("estimate %v out of [0, %d]", got, refSize)
		}
	}
}

func TestEstimateWithConcurrentScratch(t *testing.T) {
	ex, refSize := syntheticExamples(80, 8)
	r, err := Train(ex, refSize, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			s := r.NewScratch()
			for i := 0; i < 100; i++ {
				v := vecmath.RandomUnit(8, rng)
				if got := r.EstimateWith(v, 0.5, s); got < 0 {
					t.Errorf("negative estimate %v", got)
				}
			}
			done <- true
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func TestEstimateWithMatchesEstimate(t *testing.T) {
	ex, refSize := syntheticExamples(80, 9)
	r, err := Train(ex, refSize, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := r.NewScratch()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		v := vecmath.RandomUnit(8, rng)
		a := r.Estimate(v, 0.4)
		b := r.EstimateWith(v, 0.4, s)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("Estimate %v != EstimateWith %v", a, b)
		}
	}
}

func TestRoute(t *testing.T) {
	cases := []struct {
		y    float64
		k    int
		want int
	}{
		{-0.5, 4, 0},
		{0, 4, 0},
		{0.49, 2, 0},
		{0.51, 2, 1},
		{0.99, 4, 3},
		{1.0, 4, 3},
		{1.7, 4, 3},
	}
	for _, c := range cases {
		if got := route(c.y, c.k); got != c.want {
			t.Errorf("route(%v, %d) = %d, want %d", c.y, c.k, got, c.want)
		}
	}
}

func TestNormalizeDenormalizeRoundTrip(t *testing.T) {
	r := &RMI{logN: math.Log1p(1000)}
	for _, c := range []int{0, 1, 10, 500, 1000} {
		y := r.normalize(c)
		back := r.denormalize(y)
		if math.Abs(back-float64(c)) > 1e-6*float64(c)+1e-6 {
			t.Errorf("round trip %d -> %v -> %v", c, y, back)
		}
	}
	// out-of-range predictions clamp
	if got := r.denormalize(-0.2); got != 0 {
		t.Errorf("denormalize(-0.2) = %v", got)
	}
	if got := r.denormalize(1.4); math.Abs(got-1000) > 1e-6 {
		t.Errorf("denormalize(1.4) = %v", got)
	}
}

func TestPresetConfigs(t *testing.T) {
	d := DefaultConfig()
	p := PaperConfig()
	if len(d.StageCounts) != 3 || d.StageCounts[2] != 4 {
		t.Errorf("DefaultConfig stages %v", d.StageCounts)
	}
	if len(p.Hidden) != 4 || p.Hidden[0] != 512 || p.Hidden[3] != 128 {
		t.Errorf("PaperConfig hidden %v", p.Hidden)
	}
	if p.Epochs != 200 || p.BatchSize != 512 {
		t.Errorf("PaperConfig training %d/%d", p.Epochs, p.BatchSize)
	}
}
