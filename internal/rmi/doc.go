// Package rmi implements the Recursive Model Index cardinality estimator
// the paper uses (Kraska et al. 2018, as deployed for similarity-selection
// cardinality estimation by Wang et al. 2020). The index has three stages
// with 1, 2 and 4 fully-connected regression networks from top to bottom;
// the stage-k model's (bounded) prediction routes the query to one model of
// stage k+1, and the leaf model's output is the cardinality estimate.
//
// Inputs are the query embedding concatenated with the distance threshold;
// targets are log1p(cardinality) normalized by log1p(n), so every model
// regresses a value in [0, 1] that doubles as the routing key.
package rmi
