package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the memory-instrumentation side of the harness: exact
// allocation accounting plus an approximate live-heap high-water mark for a
// measured run, and the machine-readable BENCH_*.json records the CI bench
// job uploads and gates on. The wave engine's whole point is a memory
// property — peak extra memory O(WaveSize·avg|N|) instead of O(Σ|N(p)|) —
// and memory behavior regresses silently, so it is measured on every push
// rather than asserted once.

// MemSample is the allocation profile of one measured run.
type MemSample struct {
	// TotalAllocBytes is the exact cumulative number of heap bytes
	// allocated during the run (runtime.MemStats.TotalAlloc delta).
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// Mallocs is the exact number of heap objects allocated during the
	// run.
	Mallocs uint64 `json:"mallocs"`
	// PeakExtraBytes is the sampled live-heap high-water mark above the
	// pre-run baseline. Approximate: a background sampler polls
	// runtime.MemStats while the run executes, so short spikes between
	// samples can be missed; comparisons between engines on the same
	// workload remain meaningful.
	PeakExtraBytes uint64 `json:"peak_extra_bytes"`
}

// MeasureMem runs f once and reports its allocation profile. It garbage-
// collects before measuring so the baseline is live data only; the
// cumulative counters are exact, the peak is sampled. Not safe to run
// concurrently with other measured work.
func MeasureMem(f func()) MemSample {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var peak atomic.Uint64
	peak.Store(before.HeapAlloc)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	f()

	close(stop)
	wg.Wait()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peak.Load() {
		peak.Store(after.HeapAlloc)
	}
	s := MemSample{
		TotalAllocBytes: after.TotalAlloc - before.TotalAlloc,
		Mallocs:         after.Mallocs - before.Mallocs,
	}
	if p := peak.Load(); p > before.HeapAlloc {
		s.PeakExtraBytes = p - before.HeapAlloc
	}
	return s
}

// BenchRecord is one machine-readable measurement in a BENCH_*.json file.
type BenchRecord struct {
	// Name identifies the measurement (engine/configuration).
	Name string `json:"name"`
	// N, Dim describe the workload.
	N   int `json:"n,omitempty"`
	Dim int `json:"dim,omitempty"`
	// Workers and WaveSize are the engine knobs of the run.
	Workers  int `json:"workers,omitempty"`
	WaveSize int `json:"wave_size,omitempty"`
	// Mem is the run's allocation profile.
	Mem MemSample `json:"mem"`
	// ElapsedNs is the run's wall-clock time.
	ElapsedNs int64 `json:"elapsed_ns"`
}

// BenchReport is the top-level BENCH_*.json document.
type BenchReport struct {
	// Suite names the producing benchmark.
	Suite string `json:"suite"`
	// GoMaxProcs records the parallelism the numbers were taken at.
	GoMaxProcs int `json:"gomaxprocs"`
	// Records are the measurements.
	Records []BenchRecord `json:"records"`
}

// WriteBenchJSON writes the report to path as indented JSON.
func WriteBenchJSON(path string, report BenchReport) error {
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
