// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation section. Each experiment has a builder
// returning structured rows plus a formatter that prints the same layout
// the paper reports; cmd/lafbench and the repository-level benchmarks are
// thin wrappers over this package.
//
// Dataset scales default to laptop-friendly stand-ins for the paper's
// 50k-150k corpora (the reproduction target is the shape of the results —
// who wins, by what factor, where crossovers fall — not absolute seconds;
// see docs/BENCHMARKS.md). Set LAF_BENCH_SCALE=medium or LAF_BENCH_SCALE=large to
// grow them.
package bench
