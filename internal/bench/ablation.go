package bench

import (
	"fmt"
	"io"
	"time"

	"lafdbscan/internal/core"
	"lafdbscan/internal/metrics"
)

// AblationRow compares LAF-DBSCAN with and without one of its design
// elements on one dataset.
type AblationRow struct {
	Dataset string
	Setting Setting
	Variant string
	ARI     float64
	AMI     float64
	Elapsed time.Duration
	Merges  int
}

// PostProcessingAblation isolates the contribution of Algorithm 3 (the
// repair pass): LAF-DBSCAN with and without post-processing on the largest
// datasets at (0.55, 5). The paper motivates the repair pass but never
// measures it separately; this ablation does.
func (w *Workbench) PostProcessingAblation() ([]AblationRow, error) {
	s := Setting{0.55, 5}
	var rows []AblationRow
	for _, key := range w.LargestKeys() {
		truth, err := w.GroundTruth(key, s)
		if err != nil {
			return nil, err
		}
		est, err := w.Estimator(key)
		if err != nil {
			return nil, err
		}
		pts := w.TestSet(key).Vectors
		for _, disable := range []bool{false, true} {
			res, err := (&core.LAFDBSCAN{Points: pts, Config: core.Config{
				Eps: s.Eps, Tau: s.Tau, Alpha: w.Alpha(key),
				Estimator: est, Seed: w.Cfg.Seed,
				DisablePostProcessing: disable,
			}}).Run()
			if err != nil {
				return nil, err
			}
			ari, err := metrics.ARI(truth.Labels, res.Labels)
			if err != nil {
				return nil, err
			}
			ami, err := metrics.AMI(truth.Labels, res.Labels)
			if err != nil {
				return nil, err
			}
			variant := "with post-processing"
			if disable {
				variant = "without post-processing"
			}
			rows = append(rows, AblationRow{
				Dataset: key, Setting: s, Variant: variant,
				ARI: ari, AMI: ami, Elapsed: res.Elapsed, Merges: res.PostMerges,
			})
		}
	}
	return rows, nil
}

// FprintAblation renders ablation rows.
func FprintAblation(out io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(out, title)
	fmt.Fprintf(out, "%-14s %-26s %8s %8s %10s %7s\n",
		"Dataset", "Variant", "ARI", "AMI", "Time(s)", "Merges")
	for _, r := range rows {
		fmt.Fprintf(out, "%-14s %-26s %8.4f %8.4f %10.3f %7d\n",
			r.Dataset, r.Variant, r.ARI, r.AMI, r.Elapsed.Seconds(), r.Merges)
	}
}
