package bench

import (
	"bytes"
	"strings"
	"testing"
)

// skipInShort gates the tests that run full harness experiments (clustering
// every method over the workbench datasets) out of -short runs, matching
// the claims/metric test convention at the repository root.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("runs the full experiment harness")
	}
}

// tinyConfig keeps the full-suite test fast: every dataset is a few hundred
// points and the estimator trains for a handful of epochs.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.MSScales = [3]int{120, 180, 240}
	cfg.GloveN = 240
	cfg.NYTN = 240
	cfg.TrainFactor = 2
	cfg.EstimatorQueries = 60
	cfg.EstimatorEpochs = 4
	return cfg
}

func TestWorkbenchCaching(t *testing.T) {
	w := NewWorkbench(tinyConfig())
	d1 := w.TestSet(KeyGlove)
	d2 := w.TestSet(KeyGlove)
	if d1 != d2 {
		t.Error("dataset not cached")
	}
	e1, err := w.Estimator(KeyGlove)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := w.Estimator(KeyGlove)
	if e1 != e2 {
		t.Error("estimator not cached")
	}
	s := Setting{0.5, 3}
	g1, err := w.GroundTruth(KeyGlove, s)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := w.GroundTruth(KeyGlove, s)
	if g1 != g2 {
		t.Error("ground truth not cached")
	}
}

func TestWorkbenchUnknownKeyPanics(t *testing.T) {
	w := NewWorkbench(tinyConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.TestSet("bogus")
}

func TestRunMethodUnknown(t *testing.T) {
	w := NewWorkbench(tinyConfig())
	if _, err := w.RunMethod("bogus", KeyGlove, Setting{0.5, 3}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestSampleFractionInRange(t *testing.T) {
	skipInShort(t)
	w := NewWorkbench(tinyConfig())
	p, err := w.SampleFraction(KeyGlove, Setting{0.5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 {
		t.Errorf("p = %v", p)
	}
}

func TestTable1(t *testing.T) {
	w := NewWorkbench(tinyConfig())
	rows := w.Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	dims := map[string]int{}
	for _, r := range rows {
		dims[r.Type] = r.Dim
	}
	if dims["Bag-of-words"] != 256 || dims["Word embedding"] != 200 || dims["Passage embedding"] != 768 {
		t.Errorf("dims %v", dims)
	}
	var buf bytes.Buffer
	FprintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("missing header")
	}
}

func TestTable2(t *testing.T) {
	skipInShort(t)
	w := NewWorkbench(tinyConfig())
	cells, err := w.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 15 { // 5 settings x 3 scales
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.NoiseRatio < 0 || c.NoiseRatio > 1 {
			t.Errorf("noise ratio %v", c.NoiseRatio)
		}
	}
	var buf bytes.Buffer
	FprintTable2(&buf, cells, w.MSKeys())
	if !strings.Contains(buf.String(), "(0.70,5)") {
		t.Errorf("missing grid row:\n%s", buf.String())
	}
}

func TestQualityAndTimes(t *testing.T) {
	skipInShort(t)
	w := NewWorkbench(tinyConfig())
	keys := []string{KeyGlove}
	settings := []Setting{{0.5, 3}}
	rows, err := w.Quality(keys, settings)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ApproxMethods()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ARI < -1 || r.ARI > 1.0001 {
			t.Errorf("%s ARI = %v", r.Method, r.ARI)
		}
	}
	var buf bytes.Buffer
	FprintQuality(&buf, "Table 3", rows, keys)
	if !strings.Contains(buf.String(), "LAF-DBSCAN") {
		t.Error("missing method row")
	}

	times, err := w.Times(keys, settings)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(AllMethods()) {
		t.Fatalf("times = %d", len(times))
	}
	buf.Reset()
	FprintTimes(&buf, "Figure 1", times, keys)
	if !strings.Contains(buf.String(), "DBSCAN") {
		t.Error("missing timing row")
	}
}

func TestTable4(t *testing.T) {
	skipInShort(t)
	w := NewWorkbench(tinyConfig())
	rows, err := w.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 settings x 3 scales
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	FprintTable4(&buf, rows, w.MSKeys())
	if !strings.Contains(buf.String(), "rho-approximate") {
		t.Error("missing header")
	}
}

func TestTable6(t *testing.T) {
	skipInShort(t)
	w := NewWorkbench(tinyConfig())
	rows, err := w.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Stats.MissedClusters > r.Stats.TotalClusters {
			t.Errorf("MC > TC: %+v", r.Stats)
		}
	}
	var buf bytes.Buffer
	FprintTable6(&buf, rows)
	if !strings.Contains(buf.String(), "ASMC") {
		t.Error("missing column header")
	}
}

func TestTradeoffSweep(t *testing.T) {
	skipInShort(t)
	w := NewWorkbench(tinyConfig())
	pts, err := w.Tradeoff(KeyGlove)
	if err != nil {
		t.Fatal(err)
	}
	// 5 alpha + 5 delta x 2 methods + 5 knn + 5 block = 25 points
	if len(pts) != 25 {
		t.Fatalf("points = %d, want 25", len(pts))
	}
	methods := map[string]int{}
	for _, p := range pts {
		methods[p.Method]++
		if p.AMI < -1 || p.AMI > 1.0001 {
			t.Errorf("%s %s AMI = %v", p.Method, p.Knob, p.AMI)
		}
	}
	for _, m := range ApproxMethods() {
		if methods[m] != 5 {
			t.Errorf("method %s has %d points", m, methods[m])
		}
	}
	var buf bytes.Buffer
	FprintTradeoff(&buf, "Figure 2", pts)
	if !strings.Contains(buf.String(), "alpha=") {
		t.Error("missing knob annotation")
	}
}

func TestFigure4(t *testing.T) {
	skipInShort(t)
	w := NewWorkbench(tinyConfig())
	rows, err := w.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(AllMethods()) {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	FprintFigure4(&buf, rows, w.MSKeys())
	if !strings.Contains(buf.String(), "annotations") {
		t.Error("missing annotations")
	}
}

func TestPaperSettingsAndGrid(t *testing.T) {
	if len(PaperSettings()) != 3 || len(GridSettings()) != 5 {
		t.Error("setting lists wrong")
	}
	if (PaperSettings()[0] != Setting{0.5, 3}) {
		t.Error("first paper setting wrong")
	}
}

func TestDefaultConfigScaleEnv(t *testing.T) {
	t.Setenv("LAF_BENCH_SCALE", "medium")
	cfg := DefaultConfig()
	if cfg.MSScales[2] != 3000 {
		t.Errorf("medium scale = %v", cfg.MSScales)
	}
	t.Setenv("LAF_BENCH_SCALE", "large")
	cfg = DefaultConfig()
	if cfg.MSScales[2] != 6000 {
		t.Errorf("large scale = %v", cfg.MSScales)
	}
	t.Setenv("LAF_BENCH_SCALE", "")
	cfg = DefaultConfig()
	if cfg.MSScales[2] != 1500 {
		t.Errorf("small scale = %v", cfg.MSScales)
	}
}

func TestPostProcessingAblation(t *testing.T) {
	skipInShort(t)
	w := NewWorkbench(tinyConfig())
	rows, err := w.PostProcessingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 datasets x 2 variants
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	FprintAblation(&buf, "Ablation", rows)
	if !strings.Contains(buf.String(), "without post-processing") {
		t.Error("missing variant row")
	}
}
