package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"lafdbscan/internal/cardest"
	"lafdbscan/internal/cluster"
	"lafdbscan/internal/core"
	"lafdbscan/internal/dataset"
	"lafdbscan/internal/index"
	"lafdbscan/internal/rmi"
	"lafdbscan/internal/vecmath"
)

// Workbench owns the expensive shared artifacts of a harness run — datasets,
// trained estimators and exact-DBSCAN ground truths — and caches them across
// experiments so regenerating all tables and figures does each piece of work
// once. Safe for use from a single goroutine (the harness is sequential).
type Workbench struct {
	Cfg Config

	mu         sync.Mutex
	datasets   map[string]*splitData
	estimators map[string]cardest.Estimator
	truths     map[truthKey]*cluster.Result
}

type splitData struct {
	key   string
	train *dataset.Dataset
	test  *dataset.Dataset
}

type truthKey struct {
	dataset string
	s       Setting
}

// NewWorkbench returns an empty workbench for the config.
func NewWorkbench(cfg Config) *Workbench {
	return &Workbench{
		Cfg:        cfg,
		datasets:   make(map[string]*splitData),
		estimators: make(map[string]cardest.Estimator),
		truths:     make(map[truthKey]*cluster.Result),
	}
}

// DatasetKeys lists the five dataset keys in the paper's reporting order.
func (w *Workbench) DatasetKeys() []string {
	return []string{KeyNYT, KeyGlove, KeyMSSmall, KeyMSMid, KeyMSLarge}
}

// LargestKeys lists the three "largest datasets" of the paper's Section 3.3
// (NYT-150k, Glove-150k, MS-150k stand-ins).
func (w *Workbench) LargestKeys() []string {
	return []string{KeyNYT, KeyGlove, KeyMSLarge}
}

// MSKeys lists the three MS-like scales of the scalability experiments.
func (w *Workbench) MSKeys() []string {
	return []string{KeyMSSmall, KeyMSMid, KeyMSLarge}
}

// testSize returns the configured test-set size of a dataset key.
func (w *Workbench) testSize(key string) int {
	switch key {
	case KeyNYT:
		return w.Cfg.NYTN
	case KeyGlove:
		return w.Cfg.GloveN
	case KeyMSSmall:
		return w.Cfg.MSScales[0]
	case KeyMSMid:
		return w.Cfg.MSScales[1]
	case KeyMSLarge:
		return w.Cfg.MSScales[2]
	default:
		panic("bench: unknown dataset key " + key)
	}
}

// data returns (building and caching on first use) the train/test split of
// a dataset key. Generation mirrors the paper: total points = 5x the test
// size, split 8:2, all vectors normalized.
func (w *Workbench) data(key string) *splitData {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d, ok := w.datasets[key]; ok {
		return d
	}
	testN := w.testSize(key)
	total := testN * (1 + w.Cfg.TrainFactor)
	var full *dataset.Dataset
	switch key {
	case KeyNYT:
		full = dataset.NYTLike(dataset.NYTLikeConfig{N: total, Seed: w.Cfg.Seed + 11, NoiseFrac: 0.15})
	case KeyGlove:
		full = dataset.GloVeLike(total, w.Cfg.Seed+22)
	case KeyMSSmall:
		full = dataset.MSLike(total, w.Cfg.Seed+33)
	case KeyMSMid:
		full = dataset.MSLike(total, w.Cfg.Seed+44)
	case KeyMSLarge:
		full = dataset.MSLike(total, w.Cfg.Seed+55)
	}
	rng := rand.New(rand.NewSource(w.Cfg.Seed + 99))
	frac := float64(w.Cfg.TrainFactor) / float64(1+w.Cfg.TrainFactor)
	train, test, err := full.Split(frac, rng)
	if err != nil {
		// The workbench's scale tables always produce fractions strictly
		// inside (0, 1) over thousands of points; a failure here is a
		// config-table bug, not a runtime condition.
		panic(err)
	}
	sd := &splitData{key: key, train: train, test: test}
	w.datasets[key] = sd
	return sd
}

// TestSet returns the evaluation split of a dataset key.
func (w *Workbench) TestSet(key string) *dataset.Dataset { return w.data(key).test }

// Estimator returns the trained RMI estimator of a dataset key, training it
// on the key's train split on first use. Training time is excluded from all
// reported clustering times, as in the paper.
func (w *Workbench) Estimator(key string) (cardest.Estimator, error) {
	w.mu.Lock()
	if e, ok := w.estimators[key]; ok {
		w.mu.Unlock()
		return e, nil
	}
	w.mu.Unlock()
	d := w.data(key)
	rng := rand.New(rand.NewSource(w.Cfg.Seed + 7))
	// Count labels against a train subsample of the test-set size, so the
	// model's output scale matches the set being clustered directly.
	reference := d.train.Sample(key+"-ref", d.test.Len(), rng).Vectors
	examples := cardest.BuildTrainingSetAgainst(d.train.Vectors, reference,
		vecmath.CosineDistanceUnit, cardest.DefaultRadii(), w.Cfg.EstimatorQueries, rng)
	cfg := rmi.DefaultConfig()
	cfg.Hidden = []int{64, 32}
	cfg.Epochs = w.Cfg.EstimatorEpochs
	cfg.Seed = w.Cfg.Seed
	model, err := rmi.Train(examples, len(reference), cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: training estimator for %s: %w", key, err)
	}
	est := cardest.NewRMIEstimator(model, 1.0)
	w.mu.Lock()
	w.estimators[key] = est
	w.mu.Unlock()
	return est, nil
}

// GroundTruth returns exact DBSCAN's labeling of a dataset key at a setting,
// cached across experiments.
func (w *Workbench) GroundTruth(key string, s Setting) (*cluster.Result, error) {
	tk := truthKey{dataset: key, s: s}
	w.mu.Lock()
	if r, ok := w.truths[tk]; ok {
		w.mu.Unlock()
		return r, nil
	}
	w.mu.Unlock()
	d := w.data(key)
	var res *cluster.Result
	var err error
	if w.Cfg.Workers != 0 {
		res, err = (&cluster.ParallelDBSCAN{Points: d.test.Vectors, Eps: s.Eps, Tau: s.Tau,
			Workers: index.AutoWorkers(w.Cfg.Workers), BatchSize: w.Cfg.BatchSize,
			WaveSize: w.Cfg.WaveSize}).Run()
	} else {
		res, err = (&cluster.DBSCAN{Points: d.test.Vectors, Eps: s.Eps, Tau: s.Tau}).Run()
	}
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.truths[tk] = res
	w.mu.Unlock()
	return res, nil
}

// Alpha returns the configured LAF-DBSCAN error factor of a dataset key.
func (w *Workbench) Alpha(key string) float64 {
	if a, ok := w.Cfg.Alphas[key]; ok {
		return a
	}
	return 1.0
}

// SampleFraction computes DBSCAN++'s p = delta + Rc for a dataset key,
// using the estimator-predicted core ratio exactly as the paper prescribes.
// The result is clamped to the operating range the paper reports ("the
// final p normally ranges within 0.2 ~ 0.6").
func (w *Workbench) SampleFraction(key string, s Setting) (float64, error) {
	est, err := w.Estimator(key)
	if err != nil {
		return 0, err
	}
	rc := core.PredictedCoreRatio(w.data(key).test.Vectors, est, s.Eps, s.Tau, w.Alpha(key))
	p := w.Cfg.Delta + rc
	if p > 0.6 {
		p = 0.6
	}
	if p < 0.2 {
		p = 0.2
	}
	return p, nil
}

// RunMethod executes a named method on a dataset key at a setting with the
// paper's parameterization (alpha from the config table, p = delta + Rc,
// KNN-BLOCK at branching 10 / leaves 0.6, BLOCK-DBSCAN at base 2 / RNT 10).
func (w *Workbench) RunMethod(method, key string, s Setting) (*cluster.Result, error) {
	d := w.data(key)
	pts := d.test.Vectors
	switch method {
	case "DBSCAN":
		return w.GroundTruth(key, s)
	case "KNN-BLOCK":
		return (&cluster.KNNBlock{Points: pts, Eps: s.Eps, Tau: s.Tau,
			Branching: 10, LeavesRatio: 0.6, Seed: w.Cfg.Seed}).Run()
	case "BLOCK-DBSCAN":
		return (&cluster.BlockDBSCAN{Points: pts, Eps: s.Eps, Tau: s.Tau,
			Base: 2, RNT: 10, Seed: w.Cfg.Seed}).Run()
	case "DBSCAN++":
		p, err := w.SampleFraction(key, s)
		if err != nil {
			return nil, err
		}
		return (&cluster.DBSCANPP{Points: pts, Eps: s.Eps, Tau: s.Tau,
			P: p, Seed: w.Cfg.Seed}).Run()
	case "LAF-DBSCAN":
		est, err := w.Estimator(key)
		if err != nil {
			return nil, err
		}
		return (&core.LAFDBSCAN{Points: pts, Config: core.Config{
			Eps: s.Eps, Tau: s.Tau, Alpha: w.Alpha(key),
			Estimator: est, Seed: w.Cfg.Seed,
			Workers: w.Cfg.Workers, BatchSize: w.Cfg.BatchSize,
			WaveSize: w.Cfg.WaveSize,
		}}).Run()
	case "LAF-DBSCAN++":
		est, err := w.Estimator(key)
		if err != nil {
			return nil, err
		}
		p, err := w.SampleFraction(key, s)
		if err != nil {
			return nil, err
		}
		return (&core.LAFDBSCANPP{Points: pts, P: p, Config: core.Config{
			Eps: s.Eps, Tau: s.Tau, Alpha: 1.0, // the paper fixes alpha=1 here
			Estimator: est, Seed: w.Cfg.Seed,
			Workers: w.Cfg.Workers, BatchSize: w.Cfg.BatchSize,
			WaveSize: w.Cfg.WaveSize,
		}}).Run()
	case "rho-approx":
		return (&cluster.RhoApprox{Points: pts, Eps: s.Eps, Tau: s.Tau, Rho: 1.0}).Run()
	default:
		return nil, fmt.Errorf("bench: unknown method %q", method)
	}
}

// ApproxMethods lists the approximate methods of the paper's quality tables,
// in reporting order.
func ApproxMethods() []string {
	return []string{"KNN-BLOCK", "BLOCK-DBSCAN", "DBSCAN++", "LAF-DBSCAN", "LAF-DBSCAN++"}
}

// AllMethods is ApproxMethods plus the DBSCAN reference, the lineup of the
// timing figures.
func AllMethods() []string {
	return append([]string{"DBSCAN"}, ApproxMethods()...)
}
