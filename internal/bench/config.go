package bench

import (
	"os"
)

// Config fixes the workload of a harness run.
type Config struct {
	// MSScales are the three MS-like test-set sizes standing in for
	// MS-50k/100k/150k. Order matters: index 0 is the smallest.
	MSScales [3]int
	// GloveN and NYTN are the Glove-like and NYT-like test-set sizes
	// standing in for Glove-150k and NYT-150k.
	GloveN, NYTN int
	// TrainFactor is how many extra points are generated for the training
	// split: total = test*(1+TrainFactor). The paper splits 8:2, i.e.
	// TrainFactor 4.
	TrainFactor int
	// EstimatorQueries bounds the labeled query points per training set.
	EstimatorQueries int
	// EstimatorEpochs is the per-model training budget.
	EstimatorEpochs int
	// Alphas maps dataset keys to LAF-DBSCAN error factors, mirroring the
	// role of the paper's Table 1 (tuned per dataset).
	Alphas map[string]float64
	// Delta is DBSCAN++'s sample-fraction offset (paper: 0.1-0.3).
	Delta float64
	// Seed drives everything.
	Seed int64
	// Workers selects the clustering engine for the DBSCAN and LAF rows:
	// 0 runs the sequential reference implementations (the paper's
	// configuration), non-zero runs the parallel engines (< 0 = all
	// cores). Parallel DBSCAN labels are identical to sequential, so
	// ground truths stay exact.
	Workers int
	// BatchSize is the parallel engines' per-worker query chunk (0 = auto).
	BatchSize int
	// WaveSize bounds the parallel engines' neighbor-discovery memory:
	// queries per wave (0 = auto, < 0 = buffer-everything engine).
	WaveSize int
}

// DefaultConfig returns the workload selected by LAF_BENCH_SCALE
// (small when unset).
func DefaultConfig() Config {
	cfg := Config{
		MSScales:         [3]int{500, 1000, 1500},
		GloveN:           1500,
		NYTN:             1500,
		TrainFactor:      4,
		EstimatorQueries: 600,
		EstimatorEpochs:  25,
		Delta:            0.2,
		Seed:             1,
	}
	switch os.Getenv("LAF_BENCH_SCALE") {
	case "medium":
		cfg.MSScales = [3]int{1000, 2000, 3000}
		cfg.GloveN, cfg.NYTN = 3000, 3000
		cfg.EstimatorQueries = 800
	case "large":
		cfg.MSScales = [3]int{2000, 4000, 6000}
		cfg.GloveN, cfg.NYTN = 6000, 6000
		cfg.EstimatorQueries = 800
		cfg.EstimatorEpochs = 25
	}
	// Error factors per dataset key. The paper tunes these ad hoc per
	// dataset (its Table 1: NYT 1.15, Glove 2.0, MS-50k 1.5, MS-100k 2.0,
	// MS-150k 7.7); the same ordering — larger alpha for larger or
	// higher-dimensional sets — applies here at gentler magnitudes suited
	// to the synthetic distributions.
	cfg.Alphas = map[string]float64{
		KeyNYT:     1.05,
		KeyGlove:   1.1,
		KeyMSSmall: 1.1,
		KeyMSMid:   1.15,
		KeyMSLarge: 1.2,
	}
	return cfg
}

// Dataset keys used across the harness.
const (
	KeyNYT     = "NYT-like"
	KeyGlove   = "GloVe-like"
	KeyMSSmall = "MS-like-S"
	KeyMSMid   = "MS-like-M"
	KeyMSLarge = "MS-like-L"
)

// Setting is one (eps, tau) pair.
type Setting struct {
	Eps float64
	Tau int
}

// PaperSettings are the three (ε, τ) pairs the paper reports throughout:
// (0.5, 3), (0.55, 5), (0.6, 5).
func PaperSettings() []Setting {
	return []Setting{{0.5, 3}, {0.55, 5}, {0.6, 5}}
}

// GridSettings are the five (ε, τ) pairs of the paper's Table 2 selection
// study.
func GridSettings() []Setting {
	return []Setting{{0.5, 3}, {0.5, 5}, {0.55, 5}, {0.6, 5}, {0.7, 5}}
}
