package bench

import (
	"fmt"
	"io"
	"time"

	"lafdbscan/internal/cluster"
	"lafdbscan/internal/core"
	"lafdbscan/internal/metrics"
)

// --- Figure 1: clustering time bars ------------------------------------

// TimeRow is one bar of the paper's timing figures.
type TimeRow struct {
	Dataset string
	Setting Setting
	Method  string
	Elapsed time.Duration
}

// Figure1 times every method (including exact DBSCAN) on the three largest
// datasets at all paper settings — the bars of Figure 1(a)-(c).
func (w *Workbench) Figure1() ([]TimeRow, error) {
	return w.Times(w.LargestKeys(), PaperSettings())
}

// Times runs every method on the given keys and settings and records the
// wall time.
func (w *Workbench) Times(keys []string, settings []Setting) ([]TimeRow, error) {
	var rows []TimeRow
	for _, s := range settings {
		for _, key := range keys {
			for _, method := range AllMethods() {
				res, err := w.RunMethod(method, key, s)
				if err != nil {
					return nil, err
				}
				rows = append(rows, TimeRow{Dataset: key, Setting: s, Method: method, Elapsed: res.Elapsed})
			}
		}
	}
	return rows, nil
}

// FprintTimes renders timing rows grouped per setting, one dataset column
// per method row — the textual equivalent of the paper's bar charts.
func FprintTimes(out io.Writer, title string, rows []TimeRow, keys []string) {
	fmt.Fprintln(out, title)
	type ck struct {
		s      Setting
		method string
		ds     string
	}
	cells := make(map[ck]time.Duration)
	var settings []Setting
	seen := make(map[Setting]bool)
	for _, r := range rows {
		cells[ck{r.Setting, r.Method, r.Dataset}] = r.Elapsed
		if !seen[r.Setting] {
			seen[r.Setting] = true
			settings = append(settings, r.Setting)
		}
	}
	for _, s := range settings {
		fmt.Fprintf(out, "  eps=%.2f tau=%d  (seconds)\n", s.Eps, s.Tau)
		fmt.Fprintf(out, "    %-14s", "Method")
		for _, k := range keys {
			fmt.Fprintf(out, " %12s", k)
		}
		fmt.Fprintln(out)
		for _, m := range AllMethods() {
			fmt.Fprintf(out, "    %-14s", m)
			for _, k := range keys {
				d, ok := cells[ck{s, m, k}]
				if !ok {
					fmt.Fprintf(out, " %12s", "-")
					continue
				}
				fmt.Fprintf(out, " %12.3f", d.Seconds())
			}
			fmt.Fprintln(out)
		}
	}
}

// --- Figures 2 & 3: speed-quality trade-off ----------------------------

// TradeoffPoint is one point of a trade-off curve: AMI on the x axis,
// clustering time on the y axis, exactly as the paper plots them.
type TradeoffPoint struct {
	Method string
	// Knob documents the parameter value that produced the point.
	Knob    string
	AMI     float64
	Elapsed time.Duration
}

// Tradeoff sweeps every method's quality knob on one dataset at the paper's
// trade-off setting (eps=0.5, tau=3):
//
//   - LAF-DBSCAN: alpha 1.1 - 15 (the paper's range)
//   - DBSCAN++ and LAF-DBSCAN++: delta 0.1 - 0.9 (sample fraction offset)
//   - KNN-BLOCK: branching 3 - 20 with leaves ratio 0.001 - 0.3
//   - BLOCK-DBSCAN: cover tree base 1.1 - 5
func (w *Workbench) Tradeoff(key string) ([]TradeoffPoint, error) {
	s := Setting{0.5, 3}
	truth, err := w.GroundTruth(key, s)
	if err != nil {
		return nil, err
	}
	est, err := w.Estimator(key)
	if err != nil {
		return nil, err
	}
	pts := w.TestSet(key).Vectors
	var out []TradeoffPoint
	add := func(method, knob string, res *cluster.Result, err error) error {
		if err != nil {
			return err
		}
		ami, err := metrics.AMI(truth.Labels, res.Labels)
		if err != nil {
			return err
		}
		out = append(out, TradeoffPoint{Method: method, Knob: knob, AMI: ami, Elapsed: res.Elapsed})
		return nil
	}

	for _, alpha := range []float64{1.1, 2, 4, 8, 15} {
		res, err := (&core.LAFDBSCAN{Points: pts, Config: core.Config{
			Eps: s.Eps, Tau: s.Tau, Alpha: alpha, Estimator: est, Seed: w.Cfg.Seed,
		}}).Run()
		if err := add("LAF-DBSCAN", fmt.Sprintf("alpha=%.1f", alpha), res, err); err != nil {
			return nil, err
		}
	}
	rc := core.PredictedCoreRatio(pts, est, s.Eps, s.Tau, w.Alpha(key))
	for _, delta := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p := delta + rc
		if p > 1 {
			p = 1
		}
		res, err := (&cluster.DBSCANPP{Points: pts, Eps: s.Eps, Tau: s.Tau, P: p, Seed: w.Cfg.Seed}).Run()
		if err := add("DBSCAN++", fmt.Sprintf("delta=%.1f", delta), res, err); err != nil {
			return nil, err
		}
		lres, err := (&core.LAFDBSCANPP{Points: pts, P: p, Config: core.Config{
			Eps: s.Eps, Tau: s.Tau, Alpha: 1.0, Estimator: est, Seed: w.Cfg.Seed,
		}}).Run()
		if err := add("LAF-DBSCAN++", fmt.Sprintf("delta=%.1f", delta), lres, err); err != nil {
			return nil, err
		}
	}
	knnKnobs := []struct {
		branching int
		leaves    float64
	}{{3, 0.001}, {5, 0.01}, {10, 0.05}, {15, 0.15}, {20, 0.3}}
	for _, k := range knnKnobs {
		res, err := (&cluster.KNNBlock{Points: pts, Eps: s.Eps, Tau: s.Tau,
			Branching: k.branching, LeavesRatio: k.leaves, Seed: w.Cfg.Seed}).Run()
		if err := add("KNN-BLOCK", fmt.Sprintf("b=%d,r=%.3f", k.branching, k.leaves), res, err); err != nil {
			return nil, err
		}
	}
	for _, base := range []float64{1.1, 1.5, 2, 3.5, 5} {
		res, err := (&cluster.BlockDBSCAN{Points: pts, Eps: s.Eps, Tau: s.Tau,
			Base: base, RNT: 10, Seed: w.Cfg.Seed}).Run()
		if err := add("BLOCK-DBSCAN", fmt.Sprintf("base=%.1f", base), res, err); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Figure2 is the trade-off sweep on the MS-like large dataset.
func (w *Workbench) Figure2() ([]TradeoffPoint, error) { return w.Tradeoff(KeyMSLarge) }

// Figure3 is the trade-off sweep on the GloVe-like dataset.
func (w *Workbench) Figure3() ([]TradeoffPoint, error) { return w.Tradeoff(KeyGlove) }

// FprintTradeoff renders the curve points as (AMI, seconds) series.
func FprintTradeoff(out io.Writer, title string, pts []TradeoffPoint) {
	fmt.Fprintln(out, title)
	fmt.Fprintf(out, "%-14s %-16s %8s %10s\n", "Method", "Knob", "AMI", "Time(s)")
	for _, p := range pts {
		fmt.Fprintf(out, "%-14s %-16s %8.4f %10.3f\n", p.Method, p.Knob, p.AMI, p.Elapsed.Seconds())
	}
}

// --- Figure 4: scalability ---------------------------------------------

// Figure4 times every method across the three MS-like scales at
// (0.55, 5) — the lines of the paper's Figure 4.
func (w *Workbench) Figure4() ([]TimeRow, error) {
	return w.Times(w.MSKeys(), []Setting{{0.55, 5}})
}

// FprintFigure4 renders the scaling series with the largest-scale times
// called out, as the paper annotates them.
func FprintFigure4(out io.Writer, rows []TimeRow, msKeys []string) {
	FprintTimes(out, "Figure 4: clustering time vs dataset scale (eps=0.55, tau=5)", rows, msKeys)
	fmt.Fprintln(out, "  annotations (largest scale):")
	for _, r := range rows {
		if r.Dataset == msKeys[len(msKeys)-1] {
			fmt.Fprintf(out, "    %-14s %8.1fs\n", r.Method, r.Elapsed.Seconds())
		}
	}
}
