package bench

import (
	"fmt"
	"io"
	"time"

	"lafdbscan/internal/metrics"
)

// --- Table 1: dataset inventory ---------------------------------------

// Table1Row mirrors one row of the paper's Table 1.
type Table1Row struct {
	Dataset string
	Points  int
	Dim     int
	Alpha   float64
	Type    string
}

// Table1 reports the evaluation datasets (test splits) with their sizes,
// dimensions, configured error factors and vector types.
func (w *Workbench) Table1() []Table1Row {
	types := map[string]string{
		KeyNYT:     "Bag-of-words",
		KeyGlove:   "Word embedding",
		KeyMSSmall: "Passage embedding",
		KeyMSMid:   "Passage embedding",
		KeyMSLarge: "Passage embedding",
	}
	var rows []Table1Row
	for _, key := range w.DatasetKeys() {
		ts := w.TestSet(key)
		rows = append(rows, Table1Row{
			Dataset: ts.Name, Points: ts.Len(), Dim: ts.Dim(),
			Alpha: w.Alpha(key), Type: types[key],
		})
	}
	return rows
}

// FprintTable1 renders Table 1 in the paper's layout.
func FprintTable1(out io.Writer, rows []Table1Row) {
	fmt.Fprintf(out, "Table 1: evaluation dataset information\n")
	fmt.Fprintf(out, "%-22s %9s %5s %6s  %s\n", "Dataset", "#Points", "Dim", "alpha", "Type")
	for _, r := range rows {
		fmt.Fprintf(out, "%-22s %9d %5d %6.2f  %s\n", r.Dataset, r.Points, r.Dim, r.Alpha, r.Type)
	}
}

// --- Table 2: (eps, tau) selection grid --------------------------------

// Table2Cell is one (noise ratio, number of clusters) cell.
type Table2Cell struct {
	Dataset     string
	Setting     Setting
	NoiseRatio  float64
	NumClusters int
}

// Table2 reproduces the noise-ratio / cluster-count grid the paper uses to
// pick representative (eps, tau) values, over the three MS-like scales.
func (w *Workbench) Table2() ([]Table2Cell, error) {
	var cells []Table2Cell
	for _, s := range GridSettings() {
		for _, key := range w.MSKeys() {
			truth, err := w.GroundTruth(key, s)
			if err != nil {
				return nil, err
			}
			st := metrics.Stats(truth.Labels)
			cells = append(cells, Table2Cell{
				Dataset: key, Setting: s,
				NoiseRatio: st.NoiseRatio, NumClusters: st.NumClusters,
			})
		}
	}
	return cells, nil
}

// FprintTable2 renders the grid with one (eps, tau) row per line, exactly
// like the paper's Table 2, marking the cells that satisfy the paper's
// criteria (noise ratio < 0.6 and more than 20 clusters) with an asterisk.
func FprintTable2(out io.Writer, cells []Table2Cell, msKeys []string) {
	fmt.Fprintf(out, "Table 2: noise ratio and cluster count per (eps, tau)\n")
	fmt.Fprintf(out, "%-12s", "(eps,tau)")
	for _, k := range msKeys {
		fmt.Fprintf(out, " %-18s", k)
	}
	fmt.Fprintln(out)
	byKey := make(map[Setting]map[string]Table2Cell)
	var order []Setting
	for _, c := range cells {
		if byKey[c.Setting] == nil {
			byKey[c.Setting] = make(map[string]Table2Cell)
			order = append(order, c.Setting)
		}
		byKey[c.Setting][c.Dataset] = c
	}
	for _, s := range order {
		fmt.Fprintf(out, "(%.2f,%d)%-4s", s.Eps, s.Tau, "")
		for _, k := range msKeys {
			c := byKey[s][k]
			mark := " "
			if c.NoiseRatio < 0.6 && c.NumClusters > 20 {
				mark = "*"
			}
			fmt.Fprintf(out, " (%.2f, %4d)%s     ", c.NoiseRatio, c.NumClusters, mark)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out, "* satisfies the selection criteria (noise < 0.6, clusters > 20)")
}

// --- Tables 3 & 5: clustering quality ----------------------------------

// QualityRow is one method's ARI and AMI against the DBSCAN ground truth.
type QualityRow struct {
	Dataset string
	Setting Setting
	Method  string
	ARI     float64
	AMI     float64
	Elapsed time.Duration
}

// Quality runs the approximate methods on the given dataset keys and
// settings, scoring each against exact DBSCAN. Table 3 uses the three
// largest datasets with all paper settings; Table 5 uses the MS scales at
// (0.55, 5).
func (w *Workbench) Quality(keys []string, settings []Setting) ([]QualityRow, error) {
	var rows []QualityRow
	for _, s := range settings {
		for _, key := range keys {
			truth, err := w.GroundTruth(key, s)
			if err != nil {
				return nil, err
			}
			for _, method := range ApproxMethods() {
				res, err := w.RunMethod(method, key, s)
				if err != nil {
					return nil, err
				}
				ari, err := metrics.ARI(truth.Labels, res.Labels)
				if err != nil {
					return nil, err
				}
				ami, err := metrics.AMI(truth.Labels, res.Labels)
				if err != nil {
					return nil, err
				}
				rows = append(rows, QualityRow{
					Dataset: key, Setting: s, Method: method,
					ARI: ari, AMI: ami, Elapsed: res.Elapsed,
				})
			}
		}
	}
	return rows, nil
}

// Table3 is Quality on the three largest datasets across all paper settings.
func (w *Workbench) Table3() ([]QualityRow, error) {
	return w.Quality(w.LargestKeys(), PaperSettings())
}

// Table5 is Quality on the three MS-like scales at (0.55, 5).
func (w *Workbench) Table5() ([]QualityRow, error) {
	return w.Quality(w.MSKeys(), []Setting{{0.55, 5}})
}

// FprintQuality renders quality rows grouped the way the paper's Tables 3
// and 5 are: one block per metric, one sub-block per setting, one column
// per dataset.
func FprintQuality(out io.Writer, title string, rows []QualityRow, keys []string) {
	fmt.Fprintln(out, title)
	type cellKey struct {
		s      Setting
		method string
		ds     string
	}
	ariCells := make(map[cellKey]float64)
	amiCells := make(map[cellKey]float64)
	var settings []Setting
	seen := make(map[Setting]bool)
	for _, r := range rows {
		k := cellKey{r.Setting, r.Method, r.Dataset}
		ariCells[k] = r.ARI
		amiCells[k] = r.AMI
		if !seen[r.Setting] {
			seen[r.Setting] = true
			settings = append(settings, r.Setting)
		}
	}
	for _, metric := range []struct {
		name  string
		cells map[cellKey]float64
	}{{"ARI", ariCells}, {"AMI", amiCells}} {
		fmt.Fprintf(out, "%s\n", metric.name)
		for _, s := range settings {
			fmt.Fprintf(out, "  (%.2f,%d)\n", s.Eps, s.Tau)
			fmt.Fprintf(out, "    %-14s", "Method")
			for _, k := range keys {
				fmt.Fprintf(out, " %12s", k)
			}
			fmt.Fprintln(out)
			for _, m := range ApproxMethods() {
				fmt.Fprintf(out, "    %-14s", m)
				for _, k := range keys {
					fmt.Fprintf(out, " %12.4f", metric.cells[cellKey{s, m, k}])
				}
				fmt.Fprintln(out)
			}
		}
	}
}

// --- Table 4: rho-approximate DBSCAN vs DBSCAN -------------------------

// Table4Row is one cell of the paper's Table 4: the two wall times.
type Table4Row struct {
	Dataset string
	Setting Setting
	RhoTime time.Duration
	DBTime  time.Duration
}

// Table4 times rho-approximate DBSCAN (rho = 1.0, the paper's already-
// generous setting) against exact DBSCAN on the MS-like scales.
func (w *Workbench) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, s := range PaperSettings() {
		for _, key := range w.MSKeys() {
			truth, err := w.GroundTruth(key, s)
			if err != nil {
				return nil, err
			}
			rho, err := w.RunMethod("rho-approx", key, s)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table4Row{
				Dataset: key, Setting: s,
				RhoTime: rho.Elapsed, DBTime: truth.Elapsed,
			})
		}
	}
	return rows, nil
}

// FprintTable4 renders the "t1/t2" cells of the paper's Table 4.
func FprintTable4(out io.Writer, rows []Table4Row, msKeys []string) {
	fmt.Fprintln(out, "Table 4: rho-approximate DBSCAN vs DBSCAN clustering time (t_rho/t_dbscan)")
	byKey := make(map[Setting]map[string]Table4Row)
	var order []Setting
	for _, r := range rows {
		if byKey[r.Setting] == nil {
			byKey[r.Setting] = make(map[string]Table4Row)
			order = append(order, r.Setting)
		}
		byKey[r.Setting][r.Dataset] = r
	}
	fmt.Fprintf(out, "%-12s", "(eps,tau)")
	for _, k := range msKeys {
		fmt.Fprintf(out, " %-24s", k)
	}
	fmt.Fprintln(out)
	for _, s := range order {
		fmt.Fprintf(out, "(%.2f,%d)%-4s", s.Eps, s.Tau, "")
		for _, k := range msKeys {
			r := byKey[s][k]
			fmt.Fprintf(out, " %9.2fs/%-9.2fs    ", r.RhoTime.Seconds(), r.DBTime.Seconds())
		}
		fmt.Fprintln(out)
	}
}

// --- Table 6: fully missed clusters ------------------------------------

// Table6Row is one row of the paper's missed-cluster analysis.
type Table6Row struct {
	Dataset string
	Setting Setting
	Stats   metrics.MissedClusterStats
}

// Table6 reports LAF-DBSCAN's fully-missed-cluster statistics in the
// configurations where the paper observed its lowest quality: (0.5, 3) on
// NYT-like, (0.55, 5) on GloVe-like and MS-like-L.
func (w *Workbench) Table6() ([]Table6Row, error) {
	cases := []struct {
		key string
		s   Setting
	}{
		{KeyNYT, Setting{0.5, 3}},
		{KeyGlove, Setting{0.55, 5}},
		{KeyMSLarge, Setting{0.55, 5}},
	}
	var rows []Table6Row
	for _, c := range cases {
		truth, err := w.GroundTruth(c.key, c.s)
		if err != nil {
			return nil, err
		}
		laf, err := w.RunMethod("LAF-DBSCAN", c.key, c.s)
		if err != nil {
			return nil, err
		}
		st, err := metrics.MissedClusters(truth.Labels, laf.Labels)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table6Row{Dataset: c.key, Setting: c.s, Stats: st})
	}
	return rows, nil
}

// FprintTable6 renders the MC/TC, MP/TPC and ASMC columns of Table 6.
func FprintTable6(out io.Writer, rows []Table6Row) {
	fmt.Fprintln(out, "Table 6: fully missed clusters of LAF-DBSCAN")
	fmt.Fprintf(out, "%-12s %-14s %10s %14s %8s\n", "(eps,tau)", "Dataset", "MC/TC", "MP/TPC", "ASMC")
	for _, r := range rows {
		fmt.Fprintf(out, "(%.2f,%d)%-4s %-14s %4d/%-5d %6d/%-7d %8.2f\n",
			r.Setting.Eps, r.Setting.Tau, "", r.Dataset,
			r.Stats.MissedClusters, r.Stats.TotalClusters,
			r.Stats.MissedPoints, r.Stats.TotalClusteredPoints,
			r.Stats.AvgMissedSize)
	}
}
