package index

import (
	"encoding/binary"
	"math"

	"lafdbscan/internal/vecmath"
)

// Grid is the sparse cell grid behind ρ-approximate DBSCAN (Gan & Tao
// 2015/2017). Cells have side eps/sqrt(d) so that any two points sharing a
// cell are within eps of each other. In low dimensions the per-cell
// neighborhood is tiny and the structure is fast; in high dimensions the
// number of neighboring cells explodes, and like the original released
// implementation we fall back to scanning the non-empty cells with
// bounding-box pruning. That degradation is not an implementation shortcut
// — it is the behaviour the paper measures in Table 4 (ρ-approximate DBSCAN
// slower than brute-force DBSCAN at d >= 200).
type Grid struct {
	points [][]float32
	eps    float64
	rho    float64
	side   float64
	cells  map[string]*gridCell
	order  []string // insertion order, for deterministic iteration
}

type gridCell struct {
	coords  []int32
	members []int
	// lo/hi are the cell's bounding box in point space.
	lo, hi []float32
}

// NewGrid builds the grid for a given eps (Euclidean radius on the indexed
// points) and approximation factor rho >= 0.
func NewGrid(points [][]float32, eps, rho float64) *Grid {
	if eps <= 0 {
		panic("index: grid eps must be positive")
	}
	if rho < 0 {
		panic("index: grid rho must be non-negative")
	}
	dim := 0
	if len(points) > 0 {
		dim = len(points[0])
	}
	g := &Grid{
		points: points,
		eps:    eps,
		rho:    rho,
		side:   eps / math.Sqrt(float64(max(dim, 1))),
		cells:  make(map[string]*gridCell),
	}
	for i, p := range points {
		key, coords := g.cellKey(p)
		c, ok := g.cells[key]
		if !ok {
			c = &gridCell{coords: coords, lo: make([]float32, dim), hi: make([]float32, dim)}
			for j, cc := range coords {
				c.lo[j] = float32(float64(cc) * g.side)
				c.hi[j] = float32(float64(cc+1) * g.side)
			}
			g.cells[key] = c
			g.order = append(g.order, key)
		}
		c.members = append(c.members, i)
	}
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.points) }

// NumCells returns the number of non-empty cells.
func (g *Grid) NumCells() int { return len(g.cells) }

func (g *Grid) cellKey(p []float32) (string, []int32) {
	coords := make([]int32, len(p))
	buf := make([]byte, 4*len(p))
	for j, x := range p {
		coords[j] = int32(math.Floor(float64(x) / g.side))
		binary.LittleEndian.PutUint32(buf[4*j:], uint32(coords[j]))
	}
	return string(buf), coords
}

// minBoxDist returns the minimum Euclidean distance from q to the cell box.
func minBoxDist(q []float32, c *gridCell) float64 {
	var s float64
	for j, x := range q {
		if x < c.lo[j] {
			d := float64(c.lo[j] - x)
			s += d * d
		} else if x > c.hi[j] {
			d := float64(x - c.hi[j])
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// maxBoxDist returns the maximum Euclidean distance from q to the cell box.
func maxBoxDist(q []float32, c *gridCell) float64 {
	var s float64
	for j, x := range q {
		dLo := math.Abs(float64(x - c.lo[j]))
		dHi := math.Abs(float64(c.hi[j] - x))
		d := math.Max(dLo, dHi)
		s += d * d
	}
	return math.Sqrt(s)
}

// ApproxRangeCount returns a neighbor count under ρ-approximate semantics:
// every point within eps is counted, no point beyond eps*(1+rho) is
// counted, and points in between may or may not be. Whole cells certified
// inside eps*(1+rho) are counted without per-point distances — the grid's
// intended fast path — while boundary cells are scanned exactly.
func (g *Grid) ApproxRangeCount(q []float32, eps float64) int {
	relaxed := eps * (1 + g.rho)
	count := 0
	for _, key := range g.order {
		c := g.cells[key]
		lo := minBoxDist(q, c)
		if lo >= eps {
			continue
		}
		if maxBoxDist(q, c) < relaxed {
			count += len(c.members)
			continue
		}
		for _, id := range c.members {
			if vecmath.EuclideanDistance(q, g.points[id]) < eps {
				count++
			}
		}
	}
	return count
}

// ApproxRangeSearch returns neighbor ids under the same ρ-approximate
// semantics as ApproxRangeCount.
func (g *Grid) ApproxRangeSearch(q []float32, eps float64) []int {
	relaxed := eps * (1 + g.rho)
	var out []int
	for _, key := range g.order {
		c := g.cells[key]
		lo := minBoxDist(q, c)
		if lo >= eps {
			continue
		}
		if maxBoxDist(q, c) < relaxed {
			out = append(out, c.members...)
			continue
		}
		for _, id := range c.members {
			if vecmath.EuclideanDistance(q, g.points[id]) < eps {
				out = append(out, id)
			}
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
