package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"lafdbscan/internal/vecmath"
)

func randomUnitPoints(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float32, n)
	for i := range pts {
		pts[i] = vecmath.RandomUnit(dim, rng)
	}
	return pts
}

func clusteredPoints(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float32, 0, n)
	centers := make([][]float32, 5)
	for i := range centers {
		centers[i] = vecmath.RandomUnit(dim, rng)
	}
	for len(pts) < n {
		c := centers[rng.Intn(len(centers))]
		pts = append(pts, vecmath.PerturbOnSphere(c, 0.08, rng))
	}
	return pts
}

func sortedCopy(a []int) []int {
	b := append([]int(nil), a...)
	sort.Ints(b)
	return b
}

func equalIDs(a, b []int) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBruteForceBasics(t *testing.T) {
	pts := [][]float32{{1, 0}, {0, 1}, {-1, 0}}
	bf := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	if bf.Len() != 3 {
		t.Fatalf("Len = %d", bf.Len())
	}
	got := bf.RangeSearch(pts[0], 1.5)
	if !equalIDs(got, []int{0, 1}) { // d(p0,p1)=1 < 1.5, d(p0,p2)=2
		t.Errorf("RangeSearch = %v", got)
	}
	if c := bf.RangeCount(pts[0], 1.5); c != 2 {
		t.Errorf("RangeCount = %d", c)
	}
	if bf.Queries() != 2 {
		t.Errorf("Queries = %d", bf.Queries())
	}
	bf.ResetQueries()
	if bf.Queries() != 0 {
		t.Error("ResetQueries failed")
	}
}

func TestBruteForceStrictInequality(t *testing.T) {
	pts := [][]float32{{1, 0}, {0, 1}}
	bf := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	// d(p0, p1) = 1 exactly; strict < must exclude it.
	if got := bf.RangeSearch(pts[0], 1.0); !equalIDs(got, []int{0}) {
		t.Errorf("strict range returned %v", got)
	}
}

func TestBruteForceEmpty(t *testing.T) {
	bf := NewBruteForce(nil, vecmath.CosineDistance)
	if got := bf.RangeSearch([]float32{1}, 1); got != nil {
		t.Errorf("empty index returned %v", got)
	}
	if c := bf.RangeCount([]float32{1}, 1); c != 0 {
		t.Errorf("empty count = %d", c)
	}
}

func TestBruteForceParallelMatchesSerial(t *testing.T) {
	pts := randomUnitPoints(3000, 64, 5)
	par := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	ser := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	ser.SetParallel(false)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10; i++ {
		q := vecmath.RandomUnit(64, rng)
		eps := 0.5 + rng.Float64()*0.5
		a := par.RangeSearch(q, eps)
		b := ser.RangeSearch(q, eps)
		if !equalIDs(a, b) {
			t.Fatalf("parallel/serial mismatch: %d vs %d ids", len(a), len(b))
		}
		if par.RangeCount(q, eps) != len(a) {
			t.Fatal("count mismatch")
		}
	}
}

func TestCoverTreeMatchesBruteForce(t *testing.T) {
	pts := clusteredPoints(400, 24, 7)
	bf := NewBruteForce(pts, vecmath.EuclideanDistance)
	bf.SetParallel(false)
	ct := NewCoverTree(pts, vecmath.EuclideanDistance, 2.0)
	if ct.Len() != len(pts) {
		t.Fatalf("cover tree Len = %d", ct.Len())
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 25; i++ {
		q := pts[rng.Intn(len(pts))]
		eps := 0.2 + rng.Float64()*1.2
		want := bf.RangeSearch(q, eps)
		got := ct.RangeSearch(q, eps)
		if !equalIDs(got, want) {
			t.Fatalf("cover tree range mismatch at eps=%v: got %d want %d", eps, len(got), len(want))
		}
		if ct.RangeCount(q, eps) != len(want) {
			t.Fatal("cover tree count mismatch")
		}
	}
}

// Property: cover trees with arbitrary bases in the paper's sweep range stay
// exact.
func TestCoverTreeExactForAnyBase(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := 1.1 + rng.Float64()*3.9 // the paper sweeps 1.1 - 5
		pts := clusteredPoints(150, 12, seed)
		bf := NewBruteForce(pts, vecmath.EuclideanDistance)
		bf.SetParallel(false)
		ct := NewCoverTree(pts, vecmath.EuclideanDistance, base)
		for i := 0; i < 5; i++ {
			q := pts[rng.Intn(len(pts))]
			eps := 0.3 + rng.Float64()
			if !equalIDs(ct.RangeSearch(q, eps), bf.RangeSearch(q, eps)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCoverTreeNearestNeighbor(t *testing.T) {
	pts := clusteredPoints(300, 16, 9)
	ct := NewCoverTree(pts, vecmath.EuclideanDistance, 2.0)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		q := vecmath.RandomUnit(16, rng)
		id, d := ct.NearestNeighbor(q)
		// verify against brute force
		bestID, bestD := -1, 1e18
		for j, p := range pts {
			if dd := vecmath.EuclideanDistance(q, p); dd < bestD {
				bestID, bestD = j, dd
			}
		}
		if id != bestID && d > bestD+1e-9 {
			t.Fatalf("NN mismatch: got (%d, %v), want (%d, %v)", id, d, bestID, bestD)
		}
	}
}

func TestCoverTreeEmptyAndSingleton(t *testing.T) {
	ct := NewCoverTree(nil, vecmath.EuclideanDistance, 2)
	if got := ct.RangeSearch([]float32{1}, 5); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
	if id, _ := ct.NearestNeighbor([]float32{1}); id != -1 {
		t.Errorf("empty tree NN id = %d", id)
	}
	one := NewCoverTree([][]float32{{1, 0}}, vecmath.EuclideanDistance, 2)
	if got := one.RangeSearch([]float32{1, 0}, 0.1); !equalIDs(got, []int{0}) {
		t.Errorf("singleton tree returned %v", got)
	}
}

func TestCoverTreeBadBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCoverTree(nil, vecmath.EuclideanDistance, 1.0)
}

func TestKMeansTreeHighRecallAtFullBudget(t *testing.T) {
	pts := clusteredPoints(500, 32, 11)
	tree := NewKMeansTree(pts, vecmath.CosineDistanceUnit, KMeansTreeConfig{
		Branching: 8, LeavesRatio: 1.0, MaxLeaf: 16, Seed: 1,
	})
	if tree.Len() != 500 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if tree.NumLeaves() < 2 {
		t.Fatalf("NumLeaves = %d", tree.NumLeaves())
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 10; i++ {
		q := pts[rng.Intn(len(pts))]
		ids, dists := tree.KNN(q, 10)
		if len(ids) != 10 {
			t.Fatalf("KNN returned %d ids", len(ids))
		}
		for j := 1; j < len(dists); j++ {
			if dists[j] < dists[j-1] {
				t.Fatal("KNN distances not sorted")
			}
		}
		// With full leaf budget the search is exhaustive: the first result
		// must be the query itself at distance 0.
		if dists[0] > 1e-6 {
			t.Fatalf("self not found, d=%v", dists[0])
		}
	}
}

func TestKMeansTreeRecallDegradesGracefully(t *testing.T) {
	pts := clusteredPoints(600, 24, 13)
	full := NewKMeansTree(pts, vecmath.CosineDistanceUnit, KMeansTreeConfig{
		Branching: 8, LeavesRatio: 1.0, MaxLeaf: 8, Seed: 1,
	})
	tiny := NewKMeansTree(pts, vecmath.CosineDistanceUnit, KMeansTreeConfig{
		Branching: 8, LeavesRatio: 0.05, MaxLeaf: 8, Seed: 1,
	})
	rng := rand.New(rand.NewSource(14))
	var fullHits, tinyHits int
	for i := 0; i < 20; i++ {
		q := pts[rng.Intn(len(pts))]
		truth, _ := full.KNN(q, 5)
		approx, _ := tiny.KNN(q, 5)
		set := make(map[int]bool)
		for _, id := range truth {
			set[id] = true
		}
		for _, id := range approx {
			if set[id] {
				tinyHits++
			}
		}
		fullHits += len(truth)
	}
	if tinyHits == 0 {
		t.Error("tiny budget found nothing at all")
	}
	if tinyHits > fullHits {
		t.Error("impossible recall")
	}
}

func TestKMeansTreeRangeSearchApprox(t *testing.T) {
	pts := clusteredPoints(300, 16, 15)
	tree := NewKMeansTree(pts, vecmath.CosineDistanceUnit, KMeansTreeConfig{
		Branching: 6, LeavesRatio: 1.0, MaxLeaf: 16, Seed: 2,
	})
	bf := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	bf.SetParallel(false)
	q := pts[0]
	got := tree.RangeSearchApprox(q, 0.3)
	want := bf.RangeSearch(q, 0.3)
	if !equalIDs(got, want) {
		t.Errorf("full-budget approx range: got %d, want %d", len(got), len(want))
	}
}

func TestKMeansTreeEdgeCases(t *testing.T) {
	tree := NewKMeansTree(nil, vecmath.CosineDistance, KMeansTreeConfig{})
	if ids, _ := tree.KNN([]float32{1}, 3); len(ids) != 0 {
		t.Errorf("empty tree KNN = %v", ids)
	}
	if ids, _ := tree.KNN([]float32{1}, 0); ids != nil {
		t.Errorf("k=0 returned %v", ids)
	}
	dup := make([][]float32, 40)
	for i := range dup {
		dup[i] = []float32{1, 0}
	}
	dt := NewKMeansTree(dup, vecmath.CosineDistanceUnit, KMeansTreeConfig{Branching: 4, MaxLeaf: 4, Seed: 3})
	ids, _ := dt.KNN([]float32{1, 0}, 40)
	if len(ids) != 40 {
		t.Errorf("duplicate-point tree lost points: %d", len(ids))
	}
}

func TestGridMatchesBruteForceAtRhoZero(t *testing.T) {
	// rho = 0: the grid must return exactly the true neighbors.
	pts := clusteredPoints(300, 8, 17)
	g := NewGrid(pts, 0.5, 0)
	bf := NewBruteForce(pts, vecmath.EuclideanDistance)
	bf.SetParallel(false)
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 20; i++ {
		q := pts[rng.Intn(len(pts))]
		want := bf.RangeSearch(q, 0.5)
		got := g.ApproxRangeSearch(q, 0.5)
		if !equalIDs(got, want) {
			t.Fatalf("rho=0 grid mismatch: got %d want %d", len(got), len(want))
		}
		if g.ApproxRangeCount(q, 0.5) != len(want) {
			t.Fatal("grid count mismatch")
		}
	}
}

// Property: ρ-approximate semantics. Every true eps-neighbor is counted and
// nothing beyond eps*(1+rho) is.
func TestGridApproxSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := clusteredPoints(200, 6, seed)
		rho := rng.Float64()
		eps := 0.3 + rng.Float64()*0.4
		g := NewGrid(pts, eps, rho)
		q := pts[rng.Intn(len(pts))]
		got := g.ApproxRangeSearch(q, eps)
		inner, outer := 0, 0
		for _, p := range pts {
			d := vecmath.EuclideanDistance(q, p)
			if d < eps {
				inner++
			}
			if d < eps*(1+rho)+1e-9 {
				outer++
			}
		}
		return len(got) >= inner && len(got) <= outer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGridPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewGrid(nil, 0, 0) },
		func() { NewGrid(nil, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGridCellStructure(t *testing.T) {
	pts := [][]float32{{0.1, 0.1}, {0.11, 0.11}, {5, 5}}
	g := NewGrid(pts, 1.0, 0)
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
	if g.NumCells() != 2 {
		t.Errorf("NumCells = %d, want 2", g.NumCells())
	}
}
