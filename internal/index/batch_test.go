package index

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"lafdbscan/internal/vecmath"
)

func batchTestPoints(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float32, n)
	for i := range pts {
		pts[i] = vecmath.RandomUnit(dim, rng)
	}
	return pts
}

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 7} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			var hits atomic.Int64
			seen := make([]atomic.Int32, n)
			ForEach(n, workers, 8, func(i int) {
				hits.Add(1)
				seen[i].Add(1)
			})
			if hits.Load() != int64(n) {
				t.Fatalf("workers=%d n=%d: %d invocations", workers, n, hits.Load())
			}
			for i := range seen {
				if seen[i].Load() != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, seen[i].Load())
				}
			}
		}
	}
}

func TestBruteForceBatchMatchesSerial(t *testing.T) {
	pts := batchTestPoints(300, 16, 1)
	b := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	queries := pts[:50]
	const eps = 0.8
	batch := b.BatchRangeSearch(queries, eps)
	if len(batch) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(batch), len(queries))
	}
	for i, q := range queries {
		want := sortedCopy(b.RangeSearch(q, eps))
		got := sortedCopy(batch[i])
		if len(got) != len(want) {
			t.Fatalf("query %d: %d ids, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("query %d: ids differ at %d: %d vs %d", i, k, got[k], want[k])
			}
		}
	}
}

func TestBruteForceBatchCountsQueries(t *testing.T) {
	pts := batchTestPoints(100, 8, 2)
	b := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	b.ResetQueries()
	b.BatchRangeSearch(pts[:37], 0.5)
	if got := b.Queries(); got != 37 {
		t.Errorf("query counter = %d, want 37", got)
	}
}

func TestCoverTreeBatchMatchesSerial(t *testing.T) {
	pts := batchTestPoints(200, 8, 3)
	ct := NewCoverTree(pts, vecmath.EuclideanDistance, 2.0)
	queries := pts[:40]
	const eps = 1.0
	batch := ct.BatchRangeSearch(queries, eps)
	for i, q := range queries {
		want := sortedCopy(ct.RangeSearch(q, eps))
		got := sortedCopy(batch[i])
		if len(got) != len(want) {
			t.Fatalf("query %d: %d ids, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("query %d: id mismatch", i)
			}
		}
	}
}

func TestGenericBatchRangeSearchHelper(t *testing.T) {
	pts := batchTestPoints(150, 8, 4)
	ct := NewCoverTree(pts, vecmath.EuclideanDistance, 2.0)
	for _, workers := range []int{0, 1, 4} {
		batch := BatchRangeSearch(ct, pts[:20], 1.0, workers, 4)
		for i := range batch {
			want := ct.RangeSearch(pts[i], 1.0)
			if len(batch[i]) != len(want) {
				t.Fatalf("workers=%d query %d: %d ids, want %d", workers, i, len(batch[i]), len(want))
			}
		}
	}
}

func TestGridAndKMeansTreeBatch(t *testing.T) {
	pts := batchTestPoints(200, 6, 5)
	g := NewGrid(pts, 1.0, 0.5)
	queries := pts[:25]
	gb := g.BatchApproxRangeSearch(queries, 1.0, 3, 4)
	for i, q := range queries {
		if len(gb[i]) != len(g.ApproxRangeSearch(q, 1.0)) {
			t.Fatalf("grid query %d differs from serial", i)
		}
	}
	kt := NewKMeansTree(pts, vecmath.CosineDistanceUnit, KMeansTreeConfig{Seed: 1, LeavesRatio: 1})
	kb := kt.BatchRangeSearchApprox(queries, 0.8, 3, 4)
	for i, q := range queries {
		if len(kb[i]) != len(kt.RangeSearchApprox(q, 0.8)) {
			t.Fatalf("kmeans-tree query %d differs from serial", i)
		}
	}
}
