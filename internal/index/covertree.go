package index

import (
	"math"

	"lafdbscan/internal/vecmath"
)

// CoverTree is an insertion-built cover tree (Beygelzimer, Kakade & Langford
// 2006, in the simplified formulation of Izbicki & Shelton 2015) supporting
// exact range queries under any true metric. BLOCK-DBSCAN uses it with the
// Euclidean metric on unit-normalized vectors; the cosine threshold is
// converted via Equation 1 of the paper.
//
// Base is the expansion constant of the level radii (the paper's
// "basis of the cover tree", default 2.0, swept 1.1–5 in the trade-off
// experiments). Smaller bases build deeper trees with tighter covers
// (slower build, faster queries); larger bases do the opposite.
type CoverTree struct {
	points [][]float32
	dist   vecmath.DistanceFunc
	base   float64
	root   *ctNode
	size   int
	// tomb tracks dynamic deletions (see dynamic.go): deleted points keep
	// their tree nodes but are skipped by every query until the rebuild
	// threshold compacts them away.
	tomb tombstones
}

type ctNode struct {
	idx      int
	level    int
	maxDist  float64 // distance to the farthest descendant (0 for leaves)
	children []*ctNode
}

// NewCoverTree builds a cover tree over points with the given metric
// distance and base. It panics if base <= 1.
func NewCoverTree(points [][]float32, dist vecmath.DistanceFunc, base float64) *CoverTree {
	if base <= 1 {
		panic("index: cover tree base must be > 1")
	}
	t := &CoverTree{points: points, dist: dist, base: base}
	for i := range points {
		t.insert(i)
	}
	return t
}

// Len returns the number of indexed (live) points.
func (t *CoverTree) Len() int { return t.size - t.tomb.dead }

func (t *CoverTree) covDist(n *ctNode) float64 {
	return math.Pow(t.base, float64(n.level))
}

func (t *CoverTree) d(i, j int) float64 { return t.dist(t.points[i], t.points[j]) }

func (t *CoverTree) insert(idx int) {
	t.size++
	if t.root == nil {
		t.root = &ctNode{idx: idx, level: 0}
		return
	}
	d := t.d(t.root.idx, idx)
	if d > t.covDist(t.root) {
		// The new point does not fit under the root: raise the root level
		// until it covers the new point, then make the new point the root's
		// sibling under a fresh top. Raising by re-rooting on the new point
		// keeps the invariant "children within covDist(parent)".
		for d > t.covDist(t.root)*t.base {
			t.raiseRoot()
		}
		newRoot := &ctNode{idx: idx, level: t.root.level + 1}
		newRoot.children = []*ctNode{t.root}
		newRoot.maxDist = d + t.root.maxDist
		t.root = newRoot
		return
	}
	t.insertInto(t.root, idx, d)
}

// raiseRoot increases the root level by one, keeping the same root point.
func (t *CoverTree) raiseRoot() {
	t.root.level++
}

// insertInto inserts idx somewhere under n; dn is d(n.point, idx) and the
// caller guarantees dn <= covDist(n).
func (t *CoverTree) insertInto(n *ctNode, idx int, dn float64) {
	if dn > n.maxDist {
		n.maxDist = dn
	}
	for _, c := range n.children {
		dc := t.d(c.idx, idx)
		if dc <= t.covDist(c) {
			t.insertInto(c, idx, dc)
			return
		}
	}
	n.children = append(n.children, &ctNode{idx: idx, level: n.level - 1})
}

// RangeSearch implements RangeSearcher. Ids are reported in the compacted
// (external) numbering; dynamically deleted points are skipped.
func (t *CoverTree) RangeSearch(q []float32, eps float64) []int {
	var out []int
	t.rangeVisit(q, eps, func(idx int) {
		if e := t.tomb.extOf(idx); e >= 0 {
			out = append(out, e)
		}
	})
	return out
}

// RangeCount implements RangeSearcher.
func (t *CoverTree) RangeCount(q []float32, eps float64) int {
	count := 0
	t.rangeVisit(q, eps, func(idx int) {
		if t.tomb.extOf(idx) >= 0 {
			count++
		}
	})
	return count
}

func (t *CoverTree) rangeVisit(q []float32, eps float64, emit func(int)) {
	if t.root == nil {
		return
	}
	var walk func(n *ctNode, dn float64)
	walk = func(n *ctNode, dn float64) {
		if dn < eps {
			emit(n.idx)
		}
		for _, c := range n.children {
			dc := t.dist(q, t.points[c.idx])
			// Any descendant of c lies within c.maxDist of c, so the
			// triangle inequality prunes the whole subtree when even the
			// closest possible descendant is out of range.
			if dc-c.maxDist < eps {
				walk(c, dc)
			}
		}
	}
	walk(t.root, t.dist(q, t.points[t.root.idx]))
}

// NearestNeighbor returns the id and distance of the closest indexed point
// to q, or (-1, +Inf) for an empty tree. BLOCK-DBSCAN's outer-point
// assignment uses it.
func (t *CoverTree) NearestNeighbor(q []float32) (int, float64) {
	if t.root == nil {
		return -1, math.Inf(1)
	}
	best := -1
	bestD := math.Inf(1)
	var walk func(n *ctNode, dn float64)
	walk = func(n *ctNode, dn float64) {
		if dn < bestD && t.tomb.extOf(n.idx) >= 0 {
			bestD = dn
			best = n.idx
		}
		for _, c := range n.children {
			dc := t.dist(q, t.points[c.idx])
			if dc-c.maxDist < bestD {
				walk(c, dc)
			}
		}
	}
	walk(t.root, t.dist(q, t.points[t.root.idx]))
	if best < 0 {
		return -1, math.Inf(1)
	}
	return t.tomb.extOf(best), bestD
}

var _ RangeSearcher = (*CoverTree)(nil)
