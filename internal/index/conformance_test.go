package index

import (
	"math/rand"
	"slices"
	"testing"

	"lafdbscan/internal/vecmath"
)

// This file is the shared DynamicIndex conformance suite: one scripted
// battery of insert/delete/DeleteMany checks, run against every
// registered backend through the registry itself. A backend declares
// Exact and gets held to full equivalence with a fresh brute-force scan
// after every mutation; an approximate backend is held to the honest
// subset of that — sound answers (every reported id is a true neighbor
// of the compacted live set), exact Len bookkeeping, self-findability of
// every live point, and a recall floor. Configurations are chosen so
// approximate structures that have an exact setting (k-means tree at
// LeavesRatio 1, grid at Rho 0) are exercised as exact.

// conformanceCase configures one backend run of the suite.
type conformanceCase struct {
	backend string
	exact   bool
	opts    BackendOptions
	eps     float64 // query radius under opts.Metric
}

func conformanceCases() []conformanceCase {
	return []conformanceCase{
		{BackendBrute, true, BackendOptions{Metric: vecmath.Cosine}, 0.4},
		{BackendCoverTree, true, BackendOptions{Metric: vecmath.Cosine}, 0.4},
		// LeavesRatio 1 examines every leaf: the approximate tree's exact
		// configuration, so the conformance bar is full equivalence.
		{BackendKMeansTree, true, BackendOptions{Metric: vecmath.Cosine, LeavesRatio: 1.0, Seed: 1}, 0.4},
		// Rho 0 disables the grid's relaxation: exact under Euclidean.
		{BackendGrid, true, BackendOptions{Metric: vecmath.Euclidean, Eps: 0.5}, 0.5},
		{BackendHNSW, false, BackendOptions{Metric: vecmath.Cosine, Seed: 1}, 0.4},
	}
}

func (c conformanceCase) truthIndex(pts [][]float32) *BruteForce {
	return NewBruteForce(pts, c.opts.distFunc())
}

// applyOps drives a DynamicIndex through a scripted mutation sequence and
// mirrors it on a plain slice, returning the expected live point set. The
// script crosses the trees' rebuild threshold repeatedly, so the
// rebuild-threshold path is part of conformance, not a special case.
func applyOps(t *testing.T, idx DynamicIndex, pts [][]float32, seed int64) [][]float32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mirror := slices.Clone(pts)
	for step := 0; step < 40; step++ {
		if rng.Intn(2) == 0 && len(mirror) > 8 {
			id := rng.Intn(len(mirror))
			idx.Delete(id)
			mirror = slices.Delete(mirror, id, id+1)
		} else {
			batch := make([][]float32, 1+rng.Intn(3))
			for i := range batch {
				batch[i] = vecmath.RandomUnit(len(mirror[0]), rng)
			}
			idx.Insert(batch)
			mirror = append(mirror, batch...)
		}
	}
	return mirror
}

// checkAnswers holds a mutated index to the conformance bar against the
// live point set.
func checkAnswers(t *testing.T, c conformanceCase, idx RangeSearcher, mirror [][]float32) {
	t.Helper()
	dist := c.opts.distFunc()
	truth := c.truthIndex(mirror)
	found, want := 0, 0
	for _, q := range mirror[:min(20, len(mirror))] {
		got := idx.RangeSearch(q, c.eps)
		exact := truth.RangeSearch(q, c.eps)
		if c.exact {
			if !equalIDs(got, exact) {
				t.Fatalf("%s: exact backend diverged from brute force: %v vs %v", c.backend, got, exact)
			}
			if n := idx.RangeCount(q, c.eps); n != len(exact) {
				t.Fatalf("%s: RangeCount = %d, want %d", c.backend, n, len(exact))
			}
		} else {
			for _, id := range got {
				if id < 0 || id >= len(mirror) {
					t.Fatalf("%s: out-of-range id %d (live set %d)", c.backend, id, len(mirror))
				}
				if d := dist(q, mirror[id]); d >= c.eps {
					t.Fatalf("%s: reported id %d at distance %v >= eps: compaction broke", c.backend, id, d)
				}
			}
			sorted := sortedCopy(got)
			for _, id := range exact {
				if _, ok := slices.BinarySearch(sorted, id); ok {
					found++
				}
			}
			want += len(exact)
		}
	}
	if !c.exact && want > 0 && float64(found) < 0.9*float64(want) {
		t.Fatalf("%s: recall %d/%d fell under 0.9 after mutations", c.backend, found, want)
	}
	// Every live point must find itself under a near-zero radius — the
	// strongest findability guarantee exact and approximate backends share.
	for i, q := range mirror {
		if ids := idx.RangeSearch(q, 1e-6); !slices.Contains(ids, i) {
			t.Fatalf("%s: live point %d not found by its own query: %v", c.backend, i, ids)
		}
	}
}

// TestDynamicConformance runs the scripted mutation battery against every
// registered backend: compacting-id semantics, Len bookkeeping and
// post-mutation answers, with rebuild thresholds crossed along the way.
func TestDynamicConformance(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.backend, func(t *testing.T) {
			pts := clusteredPoints(60, 16, 1)
			built, err := NewBackend(c.backend, slices.Clone(pts), c.opts)
			if err != nil {
				t.Fatalf("building %s: %v", c.backend, err)
			}
			dyn, ok := built.(DynamicIndex)
			if !ok {
				t.Fatalf("%s does not implement DynamicIndex", c.backend)
			}
			mirror := applyOps(t, dyn, pts, 2)
			if built.Len() != len(mirror) {
				t.Fatalf("Len = %d, want %d", built.Len(), len(mirror))
			}
			checkAnswers(t, c, built, mirror)
		})
	}
}

// TestDeleteManyConformance pins the batch-deletion path of every
// backend: one DeleteMany call must leave the index answering for the
// surviving, renumbered point set.
func TestDeleteManyConformance(t *testing.T) {
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.backend, func(t *testing.T) {
			pts := clusteredPoints(80, 12, 21)
			rng := rand.New(rand.NewSource(22))
			ids := rng.Perm(len(pts))[:25] // 25/80 crosses the rebuild threshold
			slices.Sort(ids)
			mirror := make([][]float32, 0, len(pts)-len(ids))
			for i, p := range pts {
				if !slices.Contains(ids, i) {
					mirror = append(mirror, p)
				}
			}
			built, err := NewBackend(c.backend, slices.Clone(pts), c.opts)
			if err != nil {
				t.Fatalf("building %s: %v", c.backend, err)
			}
			built.(DynamicIndex).DeleteMany(slices.Clone(ids))
			if built.Len() != len(mirror) {
				t.Fatalf("Len = %d, want %d", built.Len(), len(mirror))
			}
			checkAnswers(t, c, built, mirror)
		})
	}
}

// TestDeleteManyMatchesDeleteLoop pins DeleteMany against the per-id
// Delete loop it replaces, highest id first, on every backend.
func TestDeleteManyMatchesDeleteLoop(t *testing.T) {
	ids := []int{3, 10, 11, 30, 59}
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.backend, func(t *testing.T) {
			pts := clusteredPoints(60, 12, 29)
			batch, err := NewBackend(c.backend, slices.Clone(pts), c.opts)
			if err != nil {
				t.Fatalf("building %s: %v", c.backend, err)
			}
			batch.(DynamicIndex).DeleteMany(slices.Clone(ids))
			loop, err := NewBackend(c.backend, slices.Clone(pts), c.opts)
			if err != nil {
				t.Fatalf("building %s: %v", c.backend, err)
			}
			for i := len(ids) - 1; i >= 0; i-- {
				loop.(DynamicIndex).Delete(ids[i])
			}
			if batch.Len() != loop.Len() {
				t.Fatalf("Len diverged: %d vs %d", batch.Len(), loop.Len())
			}
			mirror := slices.Clone(pts)
			for i := len(ids) - 1; i >= 0; i-- {
				mirror = slices.Delete(mirror, ids[i], ids[i]+1)
			}
			// Self-queries give a deterministic comparison that is valid
			// for approximate backends too (an index must always find an
			// indexed point at radius ~0).
			for i, q := range mirror[:20] {
				a := batch.RangeSearch(q, 1e-6)
				b := loop.RangeSearch(q, 1e-6)
				if !slices.Contains(a, i) || !slices.Contains(b, i) {
					t.Fatalf("point %d lost: batch=%v loop=%v", i, a, b)
				}
			}
		})
	}
}

// TestGridDynamicMatchesFresh keeps the grid-specific structural check
// from the old per-index tests: mutated cells must match a fresh build
// (including dropped empty cells), at a non-zero Rho.
func TestGridDynamicMatchesFresh(t *testing.T) {
	pts := clusteredPoints(60, 8, 3)
	g := NewGrid(slices.Clone(pts), 0.5, 1.0)
	mirror := applyOps(t, g, pts, 4)
	fresh := NewGrid(mirror, 0.5, 1.0)
	if g.Len() != fresh.Len() {
		t.Fatalf("Len = %d, want %d", g.Len(), fresh.Len())
	}
	if g.NumCells() != fresh.NumCells() {
		t.Fatalf("NumCells = %d, want %d (empty cells must be dropped)", g.NumCells(), fresh.NumCells())
	}
	for _, q := range mirror[:20] {
		if got, want := g.ApproxRangeSearch(q, 0.5), fresh.ApproxRangeSearch(q, 0.5); !equalIDs(got, want) {
			t.Fatalf("dynamic grid diverged: %v vs %v", got, want)
		}
		if got, want := g.ApproxRangeCount(q, 0.5), fresh.ApproxRangeCount(q, 0.5); got != want {
			t.Fatalf("dynamic grid count diverged: %d vs %d", got, want)
		}
	}
}

// TestCoverTreeNearestAfterRebuild keeps the cover-tree-specific check:
// NearestNeighbor answers in the compacted numbering after the rebuild
// threshold has been crossed.
func TestCoverTreeNearestAfterRebuild(t *testing.T) {
	pts := clusteredPoints(40, 8, 7)
	ct := NewCoverTree(slices.Clone(pts), vecmath.CosineDistanceUnit, 2.0)
	mirror := slices.Clone(pts)
	for i := 0; i < 20; i++ { // 50% deleted: crosses the 25% threshold twice
		ct.Delete(0)
		mirror = mirror[1:]
	}
	truth := NewBruteForce(mirror, vecmath.CosineDistanceUnit)
	for _, q := range mirror {
		if got, want := ct.RangeSearch(q, 0.5), truth.RangeSearch(q, 0.5); !equalIDs(got, want) {
			t.Fatalf("post-rebuild cover tree diverged: %v vs %v", got, want)
		}
	}
	if id, _ := ct.NearestNeighbor(mirror[0]); id < 0 || id >= len(mirror) {
		t.Fatalf("NearestNeighbor returned out-of-range id %d", id)
	}
}

// TestKMeansTreeRebuildMatchesFresh keeps the k-means-tree-specific
// equivalence: a threshold-triggered rebuild is exactly a fresh build
// (same configuration, same seed) over the live points.
func TestKMeansTreeRebuildMatchesFresh(t *testing.T) {
	pts := clusteredPoints(60, 16, 11)
	cfg := KMeansTreeConfig{Seed: 2, LeavesRatio: 0.6}
	km := NewKMeansTree(slices.Clone(pts), vecmath.CosineDistanceUnit, cfg)
	mirror := slices.Clone(pts)
	extra := clusteredPoints(40, 16, 12) // 40/100 > 1/4: forces a rebuild
	km.Insert(extra)
	mirror = append(mirror, extra...)
	if km.overlaySize() != 0 {
		t.Fatalf("overlay not cleared by rebuild: %d", km.overlaySize())
	}
	fresh := NewKMeansTree(mirror, vecmath.CosineDistanceUnit, cfg)
	for _, q := range mirror[:30] {
		if got, want := km.RangeSearchApprox(q, 0.4), fresh.RangeSearchApprox(q, 0.4); !equalIDs(got, want) {
			t.Fatalf("rebuilt tree diverged from fresh build: %v vs %v", got, want)
		}
	}
}
