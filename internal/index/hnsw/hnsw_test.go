package hnsw

import (
	"math/rand"
	"slices"
	"sort"
	"testing"

	"lafdbscan/internal/vecmath"
)

func clusteredPoints(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float32, 0, n)
	centers := make([][]float32, 5)
	for i := range centers {
		centers[i] = vecmath.RandomUnit(dim, rng)
	}
	for len(pts) < n {
		c := centers[rng.Intn(len(centers))]
		pts = append(pts, vecmath.PerturbOnSphere(c, 0.08, rng))
	}
	return pts
}

func randomUnitPoints(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float32, n)
	for i := range pts {
		pts[i] = vecmath.RandomUnit(dim, rng)
	}
	return pts
}

// bruteRange is the exact reference answer.
func bruteRange(pts [][]float32, q []float32, eps float64) []int {
	var out []int
	for i, p := range pts {
		if vecmath.CosineDistanceUnit(q, p) < eps {
			out = append(out, i)
		}
	}
	return out
}

func sortedCopy(a []int) []int {
	b := slices.Clone(a)
	sort.Ints(b)
	return b
}

// TestDeterministicBuild pins the determinism contract: two graphs built
// with the same seed over the same points answer every query with the
// same ids in the same order.
func TestDeterministicBuild(t *testing.T) {
	pts := clusteredPoints(300, 16, 1)
	a := New(slices.Clone(pts), vecmath.CosineDistanceUnit, Config{Seed: 42})
	b := New(slices.Clone(pts), vecmath.CosineDistanceUnit, Config{Seed: 42})
	if a.TopLayer() != b.TopLayer() {
		t.Fatalf("top layers differ: %d vs %d", a.TopLayer(), b.TopLayer())
	}
	for _, q := range pts[:30] {
		ga, gb := a.RangeSearch(q, 0.3), b.RangeSearch(q, 0.3)
		if !slices.Equal(ga, gb) {
			t.Fatalf("same-seed graphs diverged: %v vs %v", ga, gb)
		}
	}
}

// TestRangeSearchIsSound checks the one-sided error contract: every id a
// range query reports is a true eps-neighbor (the approximation may only
// miss, never invent).
func TestRangeSearchIsSound(t *testing.T) {
	pts := clusteredPoints(500, 16, 3)
	g := New(slices.Clone(pts), vecmath.CosineDistanceUnit, Config{Seed: 7})
	for _, q := range pts[:50] {
		got := g.RangeSearch(q, 0.3)
		for _, id := range got {
			if d := vecmath.CosineDistanceUnit(q, pts[id]); d >= 0.3 {
				t.Fatalf("reported id %d at distance %v >= eps", id, d)
			}
		}
		if n := g.RangeCount(q, 0.3); n != len(got) {
			t.Fatalf("RangeCount = %d, RangeSearch returned %d ids", n, len(got))
		}
	}
}

// measureRecall runs every point as a query and returns found/true
// neighbor totals against the exact scan.
func measureRecall(g *Graph, pts [][]float32, eps float64, queries int) (found, want int) {
	for _, q := range pts[:queries] {
		truth := bruteRange(pts, q, eps)
		got := sortedCopy(g.RangeSearch(q, eps))
		want += len(truth)
		i := 0
		for _, id := range truth {
			for i < len(got) && got[i] < id {
				i++
			}
			if i < len(got) && got[i] == id {
				found++
				i++
			}
		}
	}
	return found, want
}

// TestRangeRecallAtDefaults asserts the acceptance criterion directly:
// recall vs brute force >= 0.95 at the default EfSearch, on the same
// synthetic clustered workload the clustering tests use.
func TestRangeRecallAtDefaults(t *testing.T) {
	pts := clusteredPoints(2000, 16, 5)
	g := New(slices.Clone(pts), vecmath.CosineDistanceUnit, Config{Seed: 11})
	found, want := measureRecall(g, pts, 0.05, 200)
	if want == 0 {
		t.Fatal("degenerate workload: no true neighbors")
	}
	if recall := float64(found) / float64(want); recall < 0.95 {
		t.Fatalf("recall %.4f < 0.95 at default EfSearch (%d/%d)", recall, found, want)
	}
}

// TestEfSearchKnob checks the knob moves recall in the right direction:
// a wider candidate list can only find more of the true neighbors.
func TestEfSearchKnob(t *testing.T) {
	pts := clusteredPoints(1500, 16, 9)
	g := New(slices.Clone(pts), vecmath.CosineDistanceUnit, Config{Seed: 13, EfSearch: 4})
	lowFound, want := measureRecall(g, pts, 0.05, 150)
	g.SetEfSearch(256)
	highFound, _ := measureRecall(g, pts, 0.05, 150)
	if highFound < lowFound {
		t.Fatalf("recall fell when EfSearch rose: %d/%d -> %d/%d", lowFound, want, highFound, want)
	}
	if highFound < want*95/100 {
		t.Fatalf("EfSearch=256 recall %d/%d below 0.95", highFound, want)
	}
}

// TestKNN checks ordering, k-truncation and approximate agreement with
// the exact nearest neighbor on an easy workload.
func TestKNN(t *testing.T) {
	pts := clusteredPoints(800, 16, 15)
	g := New(slices.Clone(pts), vecmath.CosineDistanceUnit, Config{Seed: 17})
	for qi, q := range pts[:40] {
		ids, ds := g.KNN(q, 10)
		if len(ids) != 10 || len(ds) != 10 {
			t.Fatalf("KNN returned %d ids, %d dists", len(ids), len(ds))
		}
		if !sort.Float64sAreSorted(ds) {
			t.Fatalf("KNN distances not ascending: %v", ds)
		}
		// The query is an indexed point, so its own id must be the 0-distance head.
		if ids[0] != qi || ds[0] > 1e-6 {
			t.Fatalf("query %d: self not at head: ids[0]=%d d=%v", qi, ids[0], ds[0])
		}
	}
	if ids, _ := g.KNN(pts[0], 0); ids != nil {
		t.Fatalf("KNN(k=0) = %v, want nil", ids)
	}
}

// TestDynamicMutations drives a scripted insert/delete mix and checks the
// compacting-id semantics: Len tracks a mirrored slice, reported ids are
// always valid external ids, and every reported id is a true neighbor of
// the current live set.
func TestDynamicMutations(t *testing.T) {
	pts := clusteredPoints(80, 16, 21)
	g := New(slices.Clone(pts), vecmath.CosineDistanceUnit, Config{Seed: 23})
	mirror := slices.Clone(pts)
	rng := rand.New(rand.NewSource(22))
	for step := 0; step < 60; step++ {
		if rng.Intn(2) == 0 && len(mirror) > 8 {
			id := rng.Intn(len(mirror))
			g.Delete(id)
			mirror = slices.Delete(mirror, id, id+1)
		} else {
			batch := make([][]float32, 1+rng.Intn(3))
			for i := range batch {
				batch[i] = vecmath.RandomUnit(len(mirror[0]), rng)
			}
			g.Insert(batch)
			mirror = append(mirror, batch...)
		}
		if g.Len() != len(mirror) {
			t.Fatalf("step %d: Len = %d, want %d", step, g.Len(), len(mirror))
		}
	}
	for _, q := range mirror[:20] {
		for _, id := range g.RangeSearch(q, 0.4) {
			if id < 0 || id >= len(mirror) {
				t.Fatalf("out-of-range id %d (live set %d)", id, len(mirror))
			}
			if d := vecmath.CosineDistanceUnit(q, mirror[id]); d >= 0.4 {
				t.Fatalf("id %d maps to distance %v >= eps: compaction broke", id, d)
			}
		}
	}
	// Every surviving point must find itself: the strongest findability
	// check an approximate index can honestly promise.
	for i, q := range mirror {
		if ids := g.RangeSearch(q, 1e-6); !slices.Contains(ids, i) {
			t.Fatalf("live point %d not found by its own query: %v", i, ids)
		}
	}
}

// TestDeleteRebuild forces the tombstone share over the rebuild threshold
// and checks the compaction.
func TestDeleteRebuild(t *testing.T) {
	pts := clusteredPoints(40, 8, 25)
	g := New(slices.Clone(pts), vecmath.CosineDistanceUnit, Config{Seed: 27})
	mirror := slices.Clone(pts)
	for i := 0; i < 20; i++ { // 50% deleted: crosses the 25% threshold twice
		g.Delete(0)
		mirror = mirror[1:]
	}
	if g.Len() != len(mirror) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(mirror))
	}
	if g.gen == 0 {
		t.Fatal("50% deletion never crossed the rebuild threshold")
	}
	if len(g.nodes)-g.dead != len(mirror) {
		t.Fatalf("slot bookkeeping broke: %d nodes, %d dead, %d live points", len(g.nodes), g.dead, len(mirror))
	}
	for i, q := range mirror {
		if ids := g.RangeSearch(q, 1e-6); !slices.Contains(ids, i) {
			t.Fatalf("post-rebuild point %d not found by its own query: %v", i, ids)
		}
	}
}

// TestDeleteManyMatchesDeleteLoop pins DeleteMany against the per-id loop
// it replaces: both orders of the same batch leave identical live sets.
func TestDeleteManyMatchesDeleteLoop(t *testing.T) {
	pts := clusteredPoints(60, 12, 29)
	ids := []int{3, 10, 11, 30, 59}

	batch := New(slices.Clone(pts), vecmath.CosineDistanceUnit, Config{Seed: 31})
	batch.DeleteMany(slices.Clone(ids))

	loop := New(slices.Clone(pts), vecmath.CosineDistanceUnit, Config{Seed: 31})
	for i := len(ids) - 1; i >= 0; i-- { // highest first, like the contract
		loop.Delete(ids[i])
	}
	if batch.Len() != loop.Len() {
		t.Fatalf("Len diverged: %d vs %d", batch.Len(), loop.Len())
	}
	mirror := slices.Clone(pts)
	for i := len(ids) - 1; i >= 0; i-- {
		mirror = slices.Delete(mirror, ids[i], ids[i]+1)
	}
	for _, q := range mirror[:20] {
		a := sortedCopy(batch.RangeSearch(q, 1e-6))
		b := sortedCopy(loop.RangeSearch(q, 1e-6))
		if !slices.Equal(a, b) {
			t.Fatalf("DeleteMany vs Delete loop diverged: %v vs %v", a, b)
		}
	}
}

// TestEmptyAndDegenerate covers the zero-value edges.
func TestEmptyAndDegenerate(t *testing.T) {
	g := New(nil, vecmath.CosineDistanceUnit, Config{})
	if g.Len() != 0 || g.TopLayer() != -1 {
		t.Fatalf("empty graph: Len=%d TopLayer=%d", g.Len(), g.TopLayer())
	}
	q := []float32{1, 0}
	if ids := g.RangeSearch(q, 1); ids != nil {
		t.Fatalf("empty RangeSearch = %v", ids)
	}
	g.Insert([][]float32{{1, 0}, {0, 1}})
	if g.Len() != 2 {
		t.Fatalf("Len after insert = %d", g.Len())
	}
	if ids := g.RangeSearch(q, 0.5); !slices.Contains(ids, 0) {
		t.Fatalf("inserted point not found: %v", ids)
	}
}

// TestQueryScalingIsSubLinear is the wall-clock-free form of the
// sub-linearity acceptance criterion: distance evaluations per query
// (counted through an instrumented DistanceFunc) must grow far slower
// than the 10x growth in points. Brute force would grow exactly 10x.
func TestQueryScalingIsSubLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 30k-point graph; skipped in -short")
	}
	evalsPerQuery := func(n int) float64 {
		pts := randomUnitPoints(n, 24, 33)
		var evals int64
		counting := func(a, b []float32) float64 {
			evals++
			return vecmath.CosineDistanceUnit(a, b)
		}
		g := New(pts, counting, Config{Seed: 35})
		evals = 0
		queries := randomUnitPoints(200, 24, 34)
		for _, q := range queries {
			g.RangeSearch(q, 0.1)
		}
		return float64(evals) / float64(len(queries))
	}
	small := evalsPerQuery(3000)
	large := evalsPerQuery(30000)
	if ratio := large / small; ratio >= 4 {
		t.Fatalf("distance evals grew %.1fx for 10x points (%.0f -> %.0f): not sub-linear", ratio, small, large)
	}
}
