// Package hnsw implements a layered proximity-graph index (Malkov &
// Yashunin 2018, "Hierarchical Navigable Small World") for approximate
// range and k-nearest-neighbor queries with sub-linear scaling in the
// number of indexed points.
//
// The graph is deliberately deterministic: node levels are generated from
// a splitmix64 hash of (seed, rebuild generation, insertion counter)
// rather than a shared RNG, so the same seed over the same insertion
// sequence always produces the same graph — and therefore the same query
// answers. That property is what lets the backend registry rebuild an
// identical index when a persisted model is reloaded.
//
// Queries follow the standard two-phase search: greedy descent through
// the upper layers to a layer-0 entry point, then best-first expansion
// bounded by the EfSearch candidate list. Range queries widen the
// expansion bound to max(eps, worst-of-EfSearch), so every visited point
// within eps is reported; raising EfSearch trades query time for recall.
//
// The package depends only on vecmath: the index package layers the
// batch/worker-pool plumbing and the backend registry on top of it.
package hnsw

import (
	"math"
	"sync"

	"lafdbscan/internal/vecmath"
)

// Defaults for Config fields left zero.
const (
	DefaultM              = 16
	DefaultEfConstruction = 128
	DefaultEfSearch       = 64
)

// maxLevel caps generated node levels; with mL = 1/ln(M) the probability
// of reaching it is astronomically small, the cap only bounds the damage
// of an adversarial hash value.
const maxLevel = 30

// rebuildFraction mirrors the tree indexes' overlay threshold: when dead
// slots reach 1/4 of the graph the structure is rebuilt over the live
// points (see internal/index/dynamic.go).
const rebuildFraction = 4

// Config shapes the speed/recall trade-off of the graph.
type Config struct {
	// M is the graph degree: each node keeps at most M links per upper
	// layer and 2M at layer 0. Default 16.
	M int
	// EfConstruction is the candidate-list width used while inserting;
	// larger values build better graphs more slowly. Default 128.
	EfConstruction int
	// EfSearch is the candidate-list width used while querying — the
	// recall knob. Default 64.
	EfSearch int
	// Seed drives deterministic level generation: the same seed over the
	// same insertion sequence yields the same graph.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.M < 2 {
		c.M = DefaultM
	}
	if c.EfConstruction < 1 {
		c.EfConstruction = DefaultEfConstruction
	}
	if c.EfSearch < 1 {
		c.EfSearch = DefaultEfSearch
	}
	return c
}

// node is one graph vertex: a neighbor list per layer 0..level.
type node struct {
	layers [][]int32
}

// Graph is the index. Queries (RangeSearch, RangeCount, KNN) are safe for
// concurrent use; mutations (Insert, Delete, DeleteMany, SetEfSearch)
// must not run concurrently with queries or each other, matching the
// contract of every other index in this repository.
type Graph struct {
	points [][]float32
	dist   vecmath.DistanceFunc
	cfg    Config
	mL     float64

	nodes    []node
	entry    int // internal id of the top-layer entry point, -1 when empty
	topLayer int

	// tombstone remap, the same convention as internal/index: ext maps
	// internal (grow-only) slots to external (compacted) ids, -1 dead,
	// nil meaning identity.
	ext  []int
	dead int

	inserted uint64 // insertion counter feeding level generation
	gen      uint64 // rebuild generation, part of the level-hash domain

	pool sync.Pool // *searchCtx
}

// New builds a graph over points with the given distance. The points
// slice is retained and mutated by Insert/Delete, like every dynamic
// index here.
func New(points [][]float32, dist vecmath.DistanceFunc, cfg Config) *Graph {
	g := &Graph{
		points: points,
		dist:   dist,
		cfg:    cfg.withDefaults(),
		entry:  -1,
	}
	g.mL = 1 / math.Log(float64(g.cfg.M))
	g.pool.New = func() any { return new(searchCtx) }
	for i := range g.points {
		g.addNode(i)
	}
	return g
}

// Len returns the number of indexed (live) points.
func (g *Graph) Len() int { return len(g.points) - g.dead }

// Config returns the normalized configuration the graph was built with.
func (g *Graph) Config() Config { return g.cfg }

// SetEfSearch adjusts the query-time recall knob without rebuilding. It
// is a mutation: do not call it concurrently with queries.
func (g *Graph) SetEfSearch(ef int) {
	if ef < 1 {
		ef = DefaultEfSearch
	}
	g.cfg.EfSearch = ef
}

// TopLayer returns the current highest layer of the graph (0 for a
// single-layer graph, -1 when empty). Exposed for tests.
func (g *Graph) TopLayer() int {
	if g.entry < 0 {
		return -1
	}
	return g.topLayer
}

// splitmix64 is the finalizer of the SplitMix64 generator — a bijective
// avalanche hash, the standard way to turn a counter into uniform bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextLevel draws the level of the next inserted node from the geometric
// distribution floor(-ln(u)·mL), hashing (seed, generation, counter) so
// the sequence is a pure function of the insertion history.
func (g *Graph) nextLevel() int {
	g.inserted++
	h := splitmix64(uint64(g.cfg.Seed) ^ (g.gen * 0x9e3779b97f4a7c15))
	h = splitmix64(h ^ g.inserted)
	u := float64(h>>11) / float64(uint64(1)<<53) // uniform in [0, 1)
	level := int(-math.Log(1-u) * g.mL)
	if level > maxLevel {
		level = maxLevel
	}
	return level
}

// maxLinks is the degree bound at a layer: 2M at the base layer (where
// every node lives and range expansion happens), M above.
func (g *Graph) maxLinks(layer int) int {
	if layer == 0 {
		return 2 * g.cfg.M
	}
	return g.cfg.M
}

// liveInternal reports whether internal slot i is not tombstoned.
func (g *Graph) liveInternal(i int32) bool {
	return g.ext == nil || g.ext[i] >= 0
}

// extOfInternal returns the external (compacted) id of internal slot i.
func (g *Graph) extOfInternal(i int32) int {
	if g.ext == nil {
		return int(i)
	}
	return g.ext[i]
}

// --- construction ---

// addNode inserts point i (already present in g.points) into the graph.
func (g *Graph) addNode(i int) {
	level := g.nextLevel()
	g.nodes = append(g.nodes, node{layers: make([][]int32, level+1)})
	if g.entry < 0 {
		g.entry = i
		g.topLayer = level
		return
	}
	q := g.points[i]
	ep := int32(g.entry)
	d := g.dist(q, g.points[ep])
	for l := g.topLayer; l > level; l-- {
		ep, d = g.greedyLayer(q, ep, d, l)
	}
	sc := g.getCtx(g.cfg.EfConstruction)
	for l := minInt(level, g.topLayer); l >= 0; l-- {
		sc.reset(len(g.nodes), g.cfg.EfConstruction)
		g.searchLayer(sc, q, ep, d, l, g.cfg.EfConstruction, 0)
		ids, ds := sc.resExtract()
		nbrs := g.selectNeighbors(ids, ds, g.maxLinks(l))
		g.nodes[i].layers[l] = nbrs
		for _, nb := range nbrs {
			g.link(nb, int32(i), l)
		}
		if len(ids) > 0 {
			ep, d = ids[0], ds[0]
		}
	}
	g.putCtx(sc)
	if level > g.topLayer {
		g.topLayer = level
		g.entry = i
	}
}

// selectNeighbors applies the HNSW neighbor-selection heuristic
// (Algorithm 4): a candidate is kept only if it is closer to the query
// than to every already-kept neighbor, which spreads links across
// directions instead of bunching them in the nearest cluster. Pruned
// candidates backfill remaining slots (keepPrunedConnections) so the
// graph keeps its degree. ids/ds must be sorted by ascending distance.
func (g *Graph) selectNeighbors(ids []int32, ds []float64, m int) []int32 {
	out := make([]int32, 0, m)
	var pruned []int32
	for k, c := range ids {
		if len(out) == m {
			break
		}
		keep := true
		for _, s := range out {
			if g.dist(g.points[c], g.points[s]) < ds[k] {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c)
		} else {
			pruned = append(pruned, c)
		}
	}
	for _, c := range pruned {
		if len(out) == m {
			break
		}
		out = append(out, c)
	}
	return out
}

// link adds m to n's layer-l neighbor list, re-running the selection
// heuristic when the list overflows its degree bound.
func (g *Graph) link(n, m int32, l int) {
	nbrs := append(g.nodes[n].layers[l], m)
	limit := g.maxLinks(l)
	if len(nbrs) > limit {
		p := g.points[n]
		ds := make([]float64, len(nbrs))
		for k, nb := range nbrs {
			ds[k] = g.dist(p, g.points[nb])
		}
		sortByDist(nbrs, ds)
		nbrs = g.selectNeighbors(nbrs, ds, limit)
	}
	g.nodes[n].layers[l] = nbrs
}

// sortByDist sorts ids and ds together by ascending distance (insertion
// sort: lists here are at most 2M+1 long).
func sortByDist(ids []int32, ds []float64) {
	for i := 1; i < len(ds); i++ {
		id, d := ids[i], ds[i]
		j := i - 1
		for j >= 0 && ds[j] > d {
			ids[j+1], ds[j+1] = ids[j], ds[j]
			j--
		}
		ids[j+1], ds[j+1] = id, d
	}
}

// --- search ---

// greedyLayer walks layer l greedily from ep toward q until no neighbor
// improves the distance — the upper-layer descent of every query.
func (g *Graph) greedyLayer(q []float32, ep int32, d float64, l int) (int32, float64) {
	for {
		improved := false
		for _, nb := range g.nodes[ep].layers[l] {
			if nd := g.dist(q, g.points[nb]); nd < d {
				ep, d = nb, nd
				improved = true
			}
		}
		if !improved {
			return ep, d
		}
	}
}

// descend runs the greedy upper-layer phase from the entry point down to
// layer 1, returning the layer-0 starting point.
func (g *Graph) descend(q []float32) (int32, float64) {
	ep := int32(g.entry)
	d := g.dist(q, g.points[ep])
	for l := g.topLayer; l >= 1; l-- {
		ep, d = g.greedyLayer(q, ep, d, l)
	}
	return ep, d
}

// searchLayer is the best-first expansion at one layer — the inner loop
// of every query and every insertion, run once per visited node per
// query. The frontier is a fixed-capacity min-heap, the result set a
// fixed-capacity max-heap of the ef closest live points, and visited
// marks are epoch-stamped, so the loop performs no allocation: all
// scratch lives in sc, sized by sc.reset before the call.
//
// With eps > 0 the expansion bound widens from worst-of-ef to
// max(eps, worst-of-ef) and every visited live point within eps is
// recorded in sc.out — the range-query mode. With eps = 0 the bound is
// the classic ef-limited one (KNN and construction mode).
//
//lafvet:hotpath
func (g *Graph) searchLayer(sc *searchCtx, q []float32, ep int32, epDist float64, layer, ef int, eps float64) {
	sc.mark(ep)
	sc.candPush(ep, epDist)
	if g.liveInternal(ep) {
		sc.resPush(ep, epDist, ef)
		if epDist < eps {
			sc.out[sc.outN] = ep
			sc.outN++
		}
	}
	for sc.candN > 0 {
		cd := sc.candD[0]
		bound := math.Inf(1)
		if sc.resN >= ef {
			bound = sc.resD[0]
			if eps > bound {
				bound = eps
			}
		}
		if cd > bound {
			break
		}
		ci := sc.candPop()
		for _, nb := range g.nodes[ci].layers[layer] {
			if sc.seen(nb) {
				continue
			}
			sc.mark(nb)
			d := g.dist(q, g.points[nb])
			if sc.resN < ef || d < sc.resD[0] || d < eps {
				sc.candPush(nb, d)
				if g.liveInternal(nb) {
					sc.resPush(nb, d, ef)
					if d < eps {
						sc.out[sc.outN] = nb
						sc.outN++
					}
				}
			}
		}
	}
}

// RangeSearch implements the RangeSearcher contract: all indexed points
// within eps of q, modulo the graph's approximation — every reported id
// is a true neighbor (distances are computed exactly), but neighbors in
// regions the bounded expansion never reaches can be missed. Raising
// EfSearch shrinks that miss rate.
func (g *Graph) RangeSearch(q []float32, eps float64) []int {
	if g.entry < 0 || g.Len() == 0 {
		return nil
	}
	sc := g.getCtx(g.cfg.EfSearch)
	ep, d := g.descend(q)
	g.searchLayer(sc, q, ep, d, 0, g.cfg.EfSearch, eps)
	var out []int
	if sc.outN > 0 {
		out = make([]int, sc.outN)
		for k := 0; k < sc.outN; k++ {
			out[k] = g.extOfInternal(sc.out[k])
		}
	}
	g.putCtx(sc)
	return out
}

// RangeCount implements the RangeSearcher contract without materializing
// ids.
func (g *Graph) RangeCount(q []float32, eps float64) int {
	if g.entry < 0 || g.Len() == 0 {
		return 0
	}
	sc := g.getCtx(g.cfg.EfSearch)
	ep, d := g.descend(q)
	g.searchLayer(sc, q, ep, d, 0, g.cfg.EfSearch, eps)
	n := sc.outN
	g.putCtx(sc)
	return n
}

// KNN implements the KNNSearcher contract: up to k approximate nearest
// neighbors sorted by ascending distance. The candidate list is
// max(EfSearch, k) wide.
func (g *Graph) KNN(q []float32, k int) ([]int, []float64) {
	if g.entry < 0 || g.Len() == 0 || k <= 0 {
		return nil, nil
	}
	ef := g.cfg.EfSearch
	if ef < k {
		ef = k
	}
	sc := g.getCtx(ef)
	ep, d := g.descend(q)
	g.searchLayer(sc, q, ep, d, 0, ef, 0)
	ids, ds := sc.resExtract()
	if len(ids) > k {
		ids, ds = ids[:k], ds[:k]
	}
	outIDs := make([]int, len(ids))
	outDs := make([]float64, len(ds))
	for i := range ids {
		outIDs[i] = g.extOfInternal(ids[i])
		outDs[i] = ds[i]
	}
	g.putCtx(sc)
	return outIDs, outDs
}

// --- dynamic mutations (see internal/index/dynamic.go for the id
// conventions these mirror) ---

// Insert appends vectors to the indexed set and threads them into the
// graph natively; the new points get ids len..len+k-1 in order.
func (g *Graph) Insert(vecs [][]float32) {
	g.growExt(len(vecs))
	for _, v := range vecs {
		g.points = append(g.points, v)
		g.addNode(len(g.points) - 1)
	}
}

// Delete tombstones the point with the given (external) id — the graph
// keeps its node as a waypoint but queries stop reporting it — and ids
// above it shift down by one. When dead slots reach 1/rebuildFraction of
// the graph it is rebuilt over the live points.
func (g *Graph) Delete(id int) {
	g.kill(id)
	if g.dead*rebuildFraction >= len(g.nodes) {
		g.rebuild()
	}
}

// DeleteMany tombstones a sorted, duplicate-free batch of external ids in
// one pass, then evaluates the rebuild threshold once.
func (g *Graph) DeleteMany(ids []int) {
	g.killMany(ids)
	if g.dead*rebuildFraction >= len(g.nodes) {
		g.rebuild()
	}
}

// growExt registers k appended slots whose external ids continue the live
// sequence (no-op while the mapping is still the identity).
func (g *Graph) growExt(k int) {
	if g.ext == nil {
		return
	}
	live := g.Len()
	for j := 0; j < k; j++ {
		g.ext = append(g.ext, live+j)
	}
}

// materializeExt switches from the identity mapping to an explicit one.
func (g *Graph) materializeExt() {
	if g.ext != nil {
		return
	}
	g.ext = make([]int, len(g.points))
	for i := range g.ext {
		g.ext[i] = i
	}
}

// kill marks the slot holding external id e dead and shifts every higher
// external id down by one.
func (g *Graph) kill(e int) {
	g.materializeExt()
	for i, x := range g.ext {
		switch {
		case x == e:
			g.ext[i] = -1
		case x > e:
			g.ext[i] = x - 1
		}
	}
	g.dead++
}

// killMany is kill over a sorted batch, applying the whole shift in one
// pass over the slots.
func (g *Graph) killMany(ids []int) {
	g.materializeExt()
	for i, x := range g.ext {
		if x < 0 {
			continue
		}
		j := lowerBound(ids, x)
		if j < len(ids) && ids[j] == x {
			g.ext[i] = -1
			continue
		}
		g.ext[i] = x - j // j removed externals precede x
	}
	g.dead += len(ids)
}

// lowerBound returns the first index in sorted a with a[i] >= x.
func lowerBound(a []int, x int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// rebuild reconstructs the graph over the live points, compacting ids.
// The generation counter feeds the level hash, so the rebuilt graph's
// levels are deterministic but independent of the pre-rebuild ones.
func (g *Graph) rebuild() {
	live := make([][]float32, 0, g.Len())
	for i, p := range g.points {
		if g.extOfInternal(int32(i)) >= 0 {
			live = append(live, p)
		}
	}
	g.points = live
	g.ext, g.dead = nil, 0
	g.nodes = g.nodes[:0]
	g.entry = -1
	g.topLayer = 0
	g.gen++
	g.inserted = 0
	for i := range g.points {
		g.addNode(i)
	}
}

// --- per-query scratch ---

// getCtx takes a scratch context from the pool, sized for the current
// graph.
func (g *Graph) getCtx(ef int) *searchCtx {
	sc := g.pool.Get().(*searchCtx)
	sc.reset(len(g.nodes), ef)
	return sc
}

func (g *Graph) putCtx(sc *searchCtx) { g.pool.Put(sc) }

// searchCtx is the allocation-free scratch of one query: epoch-stamped
// visited marks, the candidate min-heap (frontier), the result max-heap
// (ef closest live points) and the range-result buffer. Capacities are
// bounds, not guesses: the visited guard admits each node into the
// frontier and the range buffer at most once, so length-n arrays can
// never overflow.
type searchCtx struct {
	visited []uint32
	epoch   uint32

	candID []int32
	candD  []float64
	candN  int

	resID []int32
	resD  []float64
	resN  int

	out  []int32
	outN int
}

// reset prepares the context for a query over n nodes with an ef-wide
// result set. Growth happens here, outside the hot loop.
func (sc *searchCtx) reset(n, ef int) {
	if len(sc.visited) < n {
		sc.visited = make([]uint32, n)
		sc.candID = make([]int32, n)
		sc.candD = make([]float64, n)
		sc.out = make([]int32, n)
		sc.epoch = 0
	}
	if len(sc.resID) < ef {
		sc.resID = make([]int32, ef)
		sc.resD = make([]float64, ef)
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: clear the stale marks and restart
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 1
	}
	sc.candN, sc.resN, sc.outN = 0, 0, 0
}

func (sc *searchCtx) seen(i int32) bool { return sc.visited[i] == sc.epoch }
func (sc *searchCtx) mark(i int32)      { sc.visited[i] = sc.epoch }

// candPush adds an entry to the frontier min-heap.
func (sc *searchCtx) candPush(id int32, d float64) {
	i := sc.candN
	sc.candID[i], sc.candD[i] = id, d
	sc.candN++
	for i > 0 {
		p := (i - 1) / 2
		if sc.candD[p] <= sc.candD[i] {
			break
		}
		sc.candID[p], sc.candID[i] = sc.candID[i], sc.candID[p]
		sc.candD[p], sc.candD[i] = sc.candD[i], sc.candD[p]
		i = p
	}
}

// candPop removes and returns the closest frontier entry.
func (sc *searchCtx) candPop() int32 {
	id := sc.candID[0]
	sc.candN--
	n := sc.candN
	sc.candID[0], sc.candD[0] = sc.candID[n], sc.candD[n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && sc.candD[r] < sc.candD[l] {
			m = r
		}
		if sc.candD[i] <= sc.candD[m] {
			break
		}
		sc.candID[i], sc.candID[m] = sc.candID[m], sc.candID[i]
		sc.candD[i], sc.candD[m] = sc.candD[m], sc.candD[i]
		i = m
	}
	return id
}

// resPush offers an entry to the ef-bounded result max-heap, evicting the
// current worst when full.
func (sc *searchCtx) resPush(id int32, d float64, ef int) {
	if sc.resN < ef {
		i := sc.resN
		sc.resID[i], sc.resD[i] = id, d
		sc.resN++
		for i > 0 {
			p := (i - 1) / 2
			if sc.resD[p] >= sc.resD[i] {
				break
			}
			sc.resID[p], sc.resID[i] = sc.resID[i], sc.resID[p]
			sc.resD[p], sc.resD[i] = sc.resD[i], sc.resD[p]
			i = p
		}
		return
	}
	if d >= sc.resD[0] {
		return
	}
	sc.resID[0], sc.resD[0] = id, d
	sc.resSiftDown(0, sc.resN)
}

func (sc *searchCtx) resSiftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && sc.resD[r] > sc.resD[l] {
			m = r
		}
		if sc.resD[i] >= sc.resD[m] {
			return
		}
		sc.resID[i], sc.resID[m] = sc.resID[m], sc.resID[i]
		sc.resD[i], sc.resD[m] = sc.resD[m], sc.resD[i]
		i = m
	}
}

// resExtract heapsorts the result set in place and returns it sorted by
// ascending distance. The returned slices alias the context's arrays and
// are valid until the next reset; the heap is consumed.
func (sc *searchCtx) resExtract() ([]int32, []float64) {
	n := sc.resN
	for sc.resN > 1 {
		last := sc.resN - 1
		sc.resID[0], sc.resID[last] = sc.resID[last], sc.resID[0]
		sc.resD[0], sc.resD[last] = sc.resD[last], sc.resD[0]
		sc.resN--
		sc.resSiftDown(0, sc.resN)
	}
	sc.resN = 0
	return sc.resID[:n], sc.resD[:n]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
