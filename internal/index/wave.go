package index

import "context"

// This file is the streaming counterpart of batch.go: instead of
// materializing one result slice per query — O(Σ|N(q)|) live at once —
// BatchRangeSearchFunc executes queries in bounded waves over the worker
// pool and hands each result to a callback while the wave is in flight.
// The caller folds what it needs out of each list (core flags, union-find
// links, small stubs) and the list itself is recycled or collected, so the
// live set is O(WaveSize·avg|N|) regardless of dataset size. This is the
// substrate of the memory-bounded parallel clustering engines.
//
// The wave barrier is also the engines' cancellation and progress point:
// the context is consulted once per wave — never inside the per-query hot
// loop — so cancellation costs nothing while queries run and aborts within
// one wave, and an optional WithWaveProgress hook observes each completed
// wave (the job engine in internal/serve reports poll-able progress
// through it).

// DefaultWaveSize is the number of queries per wave when the caller passes
// wave <= 0. Large enough that the per-wave pool fork/join is amortized
// over thousands of distance computations, small enough that a wave's
// in-flight neighbor lists stay far below the buffer-everything regime.
const DefaultWaveSize = 1024

// ResolveWaveSize normalizes a wave-size knob: values <= 0 select
// DefaultWaveSize, everything else is returned unchanged.
func ResolveWaveSize(wave int) int {
	if wave <= 0 {
		return DefaultWaveSize
	}
	return wave
}

// waveProgressKey carries the WithWaveProgress hook through a context.
type waveProgressKey struct{}

// WithWaveProgress returns a context that makes the wave engines report
// progress: fn is invoked after every completed wave with the number of
// queries that wave answered. fn is called from the goroutine driving the
// waves (never concurrently with itself within one batch call), but a
// clustering run may issue several batch calls, so fn should accumulate
// atomically when shared across runs.
func WithWaveProgress(ctx context.Context, fn func(queries int)) context.Context {
	return context.WithValue(ctx, waveProgressKey{}, fn)
}

// waveProgress extracts the WithWaveProgress hook, or nil.
func waveProgress(ctx context.Context) func(int) {
	fn, _ := ctx.Value(waveProgressKey{}).(func(int))
	return fn
}

// batchFuncWorkerSearcher is the optional native streaming path an index
// can provide; BruteForce uses it to recycle one result buffer per wave
// slot instead of allocating a fresh slice per query.
type batchFuncWorkerSearcher interface {
	BatchRangeSearchFuncWorkers(ctx context.Context, queries [][]float32, eps float64, workers, grain, wave int, fn func(i int, ids []int)) error
}

// BatchRangeSearchFunc answers queries[i] in waves of at most wave queries
// over a worker pool, invoking fn(i, ids) once per query with the ids of
// points within eps of queries[i]. Waves run back to back with a barrier
// between them, so at most one wave's results are in flight at a time.
//
// ctx is checked at each wave barrier only: a cancellation arriving
// mid-wave lets the in-flight wave finish (every fn of that wave still
// runs) and stops before the next one, returning ctx.Err(). The hot path
// never touches the context, so an un-cancelled run costs exactly the same
// as before the context existed. A nil fn result set is never produced; on
// a nil error every query's fn has run.
//
// fn is invoked concurrently from pool workers (on distinct i) and must be
// safe for that; ids is only valid for the duration of the call and may be
// recycled afterwards — callers that need to retain ids must copy them.
// workers <= 0 selects GOMAXPROCS, grain <= 0 a default chunk size, and
// wave <= 0 DefaultWaveSize. Results are identical to per-query RangeSearch
// calls; only the allocation profile differs from BatchRangeSearch.
func BatchRangeSearchFunc(ctx context.Context, s RangeSearcher, queries [][]float32, eps float64, workers, grain, wave int, fn func(i int, ids []int)) error {
	if b, ok := s.(batchFuncWorkerSearcher); ok {
		return b.BatchRangeSearchFuncWorkers(ctx, queries, eps, workers, grain, wave, fn)
	}
	wave = ResolveWaveSize(wave)
	progress := waveProgress(ctx)
	for base := 0; base < len(queries); base += wave {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := min(base+wave, len(queries))
		lo := base
		ForEach(hi-lo, workers, grain, func(k int) {
			fn(lo+k, s.RangeSearch(queries[lo+k], eps))
		})
		if progress != nil {
			progress(hi - lo)
		}
	}
	return nil
}

// BatchRangeSearchFuncWorkers is BruteForce's native streaming path: each
// wave slot owns one result buffer that is reset and reused wave after
// wave, so a full sweep over n queries allocates O(wave) buffers total
// instead of n. Within a wave a slot is touched by exactly one worker, and
// the pool barrier between waves orders the reuse. The context carries the
// same per-wave cancellation and progress semantics as BatchRangeSearchFunc.
func (b *BruteForce) BatchRangeSearchFuncWorkers(ctx context.Context, queries [][]float32, eps float64, workers, grain, wave int, fn func(i int, ids []int)) error {
	n := len(queries)
	if n == 0 {
		return ctx.Err()
	}
	wave = ResolveWaveSize(wave)
	progress := waveProgress(ctx)
	bufs := make([][]int, min(wave, n))
	for base := 0; base < n; base += wave {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := min(base+wave, n)
		lo := base
		b.queries.Add(int64(hi - lo))
		ForEach(hi-lo, workers, grain, func(k int) {
			q := queries[lo+k]
			ids := bufs[k][:0]
			for j, p := range b.points {
				if b.dist(q, p) < eps {
					ids = append(ids, j)
				}
			}
			bufs[k] = ids
			fn(lo+k, ids)
		})
		if progress != nil {
			progress(hi - lo)
		}
	}
	return nil
}

// CoverTree needs no native streaming path: its traversal is read-only
// after construction and allocates per query either way, so the generic
// BatchRangeSearchFunc fallback is its wave engine (the live set is still
// bounded by one wave — each result is handed to fn and then dropped).

// BatchApproxRangeSearchFunc streams the grid's ρ-approximate range queries
// in waves, fn receiving each result as it is produced; ctx is checked at
// each wave barrier.
func (g *Grid) BatchApproxRangeSearchFunc(ctx context.Context, queries [][]float32, eps float64, workers, grain, wave int, fn func(i int, ids []int)) error {
	wave = ResolveWaveSize(wave)
	progress := waveProgress(ctx)
	for base := 0; base < len(queries); base += wave {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := min(base+wave, len(queries))
		lo := base
		ForEach(hi-lo, workers, grain, func(k int) {
			fn(lo+k, g.ApproxRangeSearch(queries[lo+k], eps))
		})
		if progress != nil {
			progress(hi - lo)
		}
	}
	return nil
}

// BatchRangeSearchApproxFunc streams the k-means tree's approximate range
// queries in waves, fn receiving each result as it is produced; ctx is
// checked at each wave barrier.
func (t *KMeansTree) BatchRangeSearchApproxFunc(ctx context.Context, queries [][]float32, eps float64, workers, grain, wave int, fn func(i int, ids []int)) error {
	wave = ResolveWaveSize(wave)
	progress := waveProgress(ctx)
	for base := 0; base < len(queries); base += wave {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := min(base+wave, len(queries))
		lo := base
		ForEach(hi-lo, workers, grain, func(k int) {
			fn(lo+k, t.RangeSearchApprox(queries[lo+k], eps))
		})
		if progress != nil {
			progress(hi - lo)
		}
	}
	return nil
}
