package index

// This file is the streaming counterpart of batch.go: instead of
// materializing one result slice per query — O(Σ|N(q)|) live at once —
// BatchRangeSearchFunc executes queries in bounded waves over the worker
// pool and hands each result to a callback while the wave is in flight.
// The caller folds what it needs out of each list (core flags, union-find
// links, small stubs) and the list itself is recycled or collected, so the
// live set is O(WaveSize·avg|N|) regardless of dataset size. This is the
// substrate of the memory-bounded parallel clustering engines.

// DefaultWaveSize is the number of queries per wave when the caller passes
// wave <= 0. Large enough that the per-wave pool fork/join is amortized
// over thousands of distance computations, small enough that a wave's
// in-flight neighbor lists stay far below the buffer-everything regime.
const DefaultWaveSize = 1024

// ResolveWaveSize normalizes a wave-size knob: values <= 0 select
// DefaultWaveSize, everything else is returned unchanged.
func ResolveWaveSize(wave int) int {
	if wave <= 0 {
		return DefaultWaveSize
	}
	return wave
}

// batchFuncWorkerSearcher is the optional native streaming path an index
// can provide; BruteForce uses it to recycle one result buffer per wave
// slot instead of allocating a fresh slice per query.
type batchFuncWorkerSearcher interface {
	BatchRangeSearchFuncWorkers(queries [][]float32, eps float64, workers, grain, wave int, fn func(i int, ids []int))
}

// BatchRangeSearchFunc answers queries[i] in waves of at most wave queries
// over a worker pool, invoking fn(i, ids) once per query with the ids of
// points within eps of queries[i]. Waves run back to back with a barrier
// between them, so at most one wave's results are in flight at a time.
//
// fn is invoked concurrently from pool workers (on distinct i) and must be
// safe for that; ids is only valid for the duration of the call and may be
// recycled afterwards — callers that need to retain ids must copy them.
// workers <= 0 selects GOMAXPROCS, grain <= 0 a default chunk size, and
// wave <= 0 DefaultWaveSize. Results are identical to per-query RangeSearch
// calls; only the allocation profile differs from BatchRangeSearch.
func BatchRangeSearchFunc(s RangeSearcher, queries [][]float32, eps float64, workers, grain, wave int, fn func(i int, ids []int)) {
	if b, ok := s.(batchFuncWorkerSearcher); ok {
		b.BatchRangeSearchFuncWorkers(queries, eps, workers, grain, wave, fn)
		return
	}
	wave = ResolveWaveSize(wave)
	for base := 0; base < len(queries); base += wave {
		hi := min(base+wave, len(queries))
		lo := base
		ForEach(hi-lo, workers, grain, func(k int) {
			fn(lo+k, s.RangeSearch(queries[lo+k], eps))
		})
	}
}

// BatchRangeSearchFuncWorkers is BruteForce's native streaming path: each
// wave slot owns one result buffer that is reset and reused wave after
// wave, so a full sweep over n queries allocates O(wave) buffers total
// instead of n. Within a wave a slot is touched by exactly one worker, and
// the pool barrier between waves orders the reuse.
func (b *BruteForce) BatchRangeSearchFuncWorkers(queries [][]float32, eps float64, workers, grain, wave int, fn func(i int, ids []int)) {
	n := len(queries)
	if n == 0 {
		return
	}
	wave = ResolveWaveSize(wave)
	b.queries.Add(int64(n))
	bufs := make([][]int, min(wave, n))
	for base := 0; base < n; base += wave {
		hi := min(base+wave, n)
		lo := base
		ForEach(hi-lo, workers, grain, func(k int) {
			q := queries[lo+k]
			ids := bufs[k][:0]
			for j, p := range b.points {
				if b.dist(q, p) < eps {
					ids = append(ids, j)
				}
			}
			bufs[k] = ids
			fn(lo+k, ids)
		})
	}
}

// CoverTree needs no native streaming path: its traversal is read-only
// after construction and allocates per query either way, so the generic
// BatchRangeSearchFunc fallback is its wave engine (the live set is still
// bounded by one wave — each result is handed to fn and then dropped).

// BatchApproxRangeSearchFunc streams the grid's ρ-approximate range queries
// in waves, fn receiving each result as it is produced.
func (g *Grid) BatchApproxRangeSearchFunc(queries [][]float32, eps float64, workers, grain, wave int, fn func(i int, ids []int)) {
	wave = ResolveWaveSize(wave)
	for base := 0; base < len(queries); base += wave {
		hi := min(base+wave, len(queries))
		lo := base
		ForEach(hi-lo, workers, grain, func(k int) {
			fn(lo+k, g.ApproxRangeSearch(queries[lo+k], eps))
		})
	}
}

// BatchRangeSearchApproxFunc streams the k-means tree's approximate range
// queries in waves, fn receiving each result as it is produced.
func (t *KMeansTree) BatchRangeSearchApproxFunc(queries [][]float32, eps float64, workers, grain, wave int, fn func(i int, ids []int)) {
	wave = ResolveWaveSize(wave)
	for base := 0; base < len(queries); base += wave {
		hi := min(base+wave, len(queries))
		lo := base
		ForEach(hi-lo, workers, grain, func(k int) {
			fn(lo+k, t.RangeSearchApprox(queries[lo+k], eps))
		})
	}
}
