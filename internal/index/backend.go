package index

import (
	"fmt"

	"lafdbscan/internal/index/hnsw"
	"lafdbscan/internal/vecmath"
)

// This file is the backend registry: every range-query structure in the
// repository, addressable by name, with declared capabilities. The root
// Params/Fit API, the lafserve dataset registry and both CLIs resolve
// index construction through it instead of hardcoding one constructor,
// so adding a backend (sharded, quantized, ...) means adding one entry
// here and nothing anywhere else. Resolution is a declared fallback
// chain filtered by requirements — the production idiom of vector
// stores with an `hnsw|flat` index option and a graceful degradation
// path.

// The registered backend names.
const (
	// BackendBrute is the exact parallel scan — the reference answer and
	// the terminal fallback of every chain.
	BackendBrute = "brute"
	// BackendHNSW is the layered proximity graph (approximate, sub-linear
	// queries; see internal/index/hnsw).
	BackendHNSW = "hnsw"
	// BackendCoverTree is the exact metric tree BLOCK-DBSCAN uses.
	BackendCoverTree = "covertree"
	// BackendKMeansTree is the approximate FLANN-style tree KNN-BLOCK
	// DBSCAN uses.
	BackendKMeansTree = "kmeanstree"
	// BackendGrid is the ρ-approximate cell grid (Euclidean only, needs
	// the query radius at build time).
	BackendGrid = "grid"
)

// Capabilities declare what a backend can honestly promise; resolution
// filters chains through them.
type Capabilities struct {
	// Exact: RangeSearch returns exactly the eps-neighborhood. Approximate
	// backends may miss neighbors (they never invent them).
	Exact bool `json:"exact"`
	// Dynamic: implements DynamicIndex (Insert/Delete/DeleteMany).
	Dynamic bool `json:"dynamic"`
	// KNN: implements KNNSearcher.
	KNN bool `json:"knn"`
	// Cosine / Euclidean: the metrics the backend answers under.
	Cosine    bool `json:"cosine"`
	Euclidean bool `json:"euclidean"`
	// NeedsEps: construction requires the query radius (the grid's cell
	// side derives from it), so the backend is unavailable to callers that
	// build one index for many radii.
	NeedsEps bool `json:"needs_eps"`
}

// SupportsMetric reports whether the backend answers under m.
func (c Capabilities) SupportsMetric(m vecmath.Metric) bool {
	switch m {
	case vecmath.Cosine:
		return c.Cosine
	case vecmath.Euclidean:
		return c.Euclidean
	default:
		return false
	}
}

// BackendOptions carries every construction knob a backend might need;
// each backend reads its own fields and ignores the rest. Zero values
// select the same defaults the underlying constructors document.
type BackendOptions struct {
	// Metric selects the distance. Cosine uses the unit-vector fast path
	// (all datasets here are normalized on creation), matching the
	// historical NewBruteForceIndex behavior.
	Metric vecmath.Metric
	// Dist overrides the metric's distance function when non-nil (tests
	// use it to instrument distance evaluations).
	Dist vecmath.DistanceFunc
	// Eps is the query radius, required by NeedsEps backends.
	Eps float64
	// Rho is the grid's approximation factor.
	Rho float64
	// Base is the cover tree's expansion constant (0 = default 2.0).
	Base float64
	// Branching / LeavesRatio configure the k-means tree.
	Branching   int
	LeavesRatio float64
	// M / EfConstruction / EfSearch configure the HNSW graph.
	M              int
	EfConstruction int
	EfSearch       int
	// Seed drives the deterministic randomized builds.
	Seed int64
}

func (o BackendOptions) distFunc() vecmath.DistanceFunc {
	if o.Dist != nil {
		return o.Dist
	}
	if o.Metric == vecmath.Cosine {
		return vecmath.CosineDistanceUnit
	}
	return o.Metric.Func()
}

// backendSpec is one registry entry. The registry is an ordered slice,
// not a map, so every listing and every error message is deterministic.
type backendSpec struct {
	name  string
	caps  Capabilities
	build func(points [][]float32, o BackendOptions) (RangeSearcher, error)
}

var backendRegistry = []backendSpec{
	{BackendBrute,
		Capabilities{Exact: true, Dynamic: true, Cosine: true, Euclidean: true},
		func(points [][]float32, o BackendOptions) (RangeSearcher, error) {
			return NewBruteForce(points, o.distFunc()), nil
		}},
	{BackendHNSW,
		Capabilities{Dynamic: true, KNN: true, Cosine: true, Euclidean: true},
		func(points [][]float32, o BackendOptions) (RangeSearcher, error) {
			return hnswSearcher{hnsw.New(points, o.distFunc(), hnsw.Config{
				M: o.M, EfConstruction: o.EfConstruction, EfSearch: o.EfSearch, Seed: o.Seed,
			})}, nil
		}},
	{BackendCoverTree,
		Capabilities{Exact: true, Dynamic: true, Cosine: true, Euclidean: true},
		func(points [][]float32, o BackendOptions) (RangeSearcher, error) {
			base := o.Base
			if base == 0 {
				base = 2.0
			}
			if base <= 1 {
				return nil, fmt.Errorf("index: cover tree base %v must exceed 1", base)
			}
			return coverTreeSearcher{NewCoverTree(points, o.distFunc(), base)}, nil
		}},
	{BackendKMeansTree,
		Capabilities{Dynamic: true, KNN: true, Cosine: true, Euclidean: true},
		func(points [][]float32, o BackendOptions) (RangeSearcher, error) {
			return kmeansTreeSearcher{NewKMeansTree(points, o.distFunc(), KMeansTreeConfig{
				Branching: o.Branching, LeavesRatio: o.LeavesRatio, Seed: o.Seed,
			})}, nil
		}},
	{BackendGrid,
		Capabilities{Dynamic: true, Euclidean: true, NeedsEps: true},
		func(points [][]float32, o BackendOptions) (RangeSearcher, error) {
			if o.Metric != vecmath.Euclidean {
				return nil, fmt.Errorf("index: backend %q does not support metric %v", BackendGrid, o.Metric)
			}
			if o.Eps <= 0 {
				return nil, fmt.Errorf("index: backend %q needs the query radius at build time (got eps %v)", BackendGrid, o.Eps)
			}
			return gridSearcher{NewGrid(points, o.Eps, o.Rho)}, nil
		}},
}

// Backends lists every registered backend name in registry order.
func Backends() []string {
	out := make([]string, len(backendRegistry))
	for i, s := range backendRegistry {
		out[i] = s.name
	}
	return out
}

// LookupBackend returns the capabilities of a named backend.
func LookupBackend(name string) (Capabilities, bool) {
	for _, s := range backendRegistry {
		if s.name == name {
			return s.caps, true
		}
	}
	return Capabilities{}, false
}

// NewBackend builds the named backend over points. It fails on unknown
// names, unsupported metrics and missing required options — the same
// conditions ResolveBackend filters on, so a resolved name always builds.
func NewBackend(name string, points [][]float32, o BackendOptions) (RangeSearcher, error) {
	for _, s := range backendRegistry {
		if s.name != name {
			continue
		}
		if !s.caps.SupportsMetric(o.Metric) {
			return nil, fmt.Errorf("index: backend %q does not support metric %v", name, o.Metric)
		}
		return s.build(points, o)
	}
	return nil, fmt.Errorf("index: unknown backend %q (have %v)", name, Backends())
}

// Requirements filter a fallback chain during resolution.
type Requirements struct {
	// Exact demands the exact eps-neighborhood (the default everywhere a
	// caller has not opted into approximation, preserving bit-identical
	// labels).
	Exact bool
	// Dynamic demands DynamicIndex support.
	Dynamic bool
	// KNN demands KNNSearcher support.
	KNN bool
	// Metric is the distance the index must answer under.
	Metric vecmath.Metric
	// HaveEps: the caller can supply the query radius at build time, so
	// NeedsEps backends are eligible.
	HaveEps bool
}

// Satisfies reports whether capabilities c meet req.
func (c Capabilities) Satisfies(req Requirements) bool {
	if req.Exact && !c.Exact {
		return false
	}
	if req.Dynamic && !c.Dynamic {
		return false
	}
	if req.KNN && !c.KNN {
		return false
	}
	if c.NeedsEps && !req.HaveEps {
		return false
	}
	return c.SupportsMetric(req.Metric)
}

// DefaultChain is the declared fallback preference: the sub-linear graph
// first, the exact scan as the terminal fallback. Callers that require
// exactness resolve straight through to brute force; callers that opt
// into approximation land on HNSW.
func DefaultChain() []string {
	return []string{BackendHNSW, BackendBrute}
}

// ResolveBackend walks chain and returns the first backend whose
// capabilities satisfy req, or an error naming every rejection — the
// operator-facing explanation of why a preference was skipped.
func ResolveBackend(chain []string, req Requirements) (string, error) {
	if len(chain) == 0 {
		chain = DefaultChain()
	}
	var rejected []string
	for _, name := range chain {
		caps, ok := LookupBackend(name)
		if !ok {
			return "", fmt.Errorf("index: unknown backend %q in chain %v (have %v)", name, chain, Backends())
		}
		if caps.Satisfies(req) {
			return name, nil
		}
		rejected = append(rejected, name)
	}
	return "", fmt.Errorf("index: no backend in chain %v satisfies the requirements (rejected %v for metric %v)",
		chain, rejected, req.Metric)
}

// --- adapters: every backend behind the uniform RangeSearcher face ---

// hnswSearcher layers the batch worker-pool plumbing over the graph; the
// graph itself stays free of index-package dependencies.
type hnswSearcher struct{ *hnsw.Graph }

// BatchRangeSearch implements RangeSearcher with the shared pool at
// GOMAXPROCS workers. Graph queries are concurrency-safe by design (all
// per-query scratch is pooled), so queries fan out without locks.
func (h hnswSearcher) BatchRangeSearch(queries [][]float32, eps float64) [][]int {
	return h.BatchRangeSearchWorkers(queries, eps, 0, 0)
}

// BatchRangeSearchWorkers answers many range queries over a fixed worker
// pool, the native batch fast path the engines prefer.
func (h hnswSearcher) BatchRangeSearchWorkers(queries [][]float32, eps float64, workers, grain int) [][]int {
	out := make([][]int, len(queries))
	ForEach(len(queries), workers, grain, func(i int) {
		out[i] = h.Graph.RangeSearch(queries[i], eps)
	})
	return out
}

// coverTreeSearcher exists only for symmetry in the registry builders;
// CoverTree already implements the full contract.
type coverTreeSearcher struct{ *CoverTree }

// gridSearcher adapts the grid's ρ-approximate queries to the uniform
// contract. With Rho 0 the answers are exact; with Rho > 0 they carry the
// documented one-sided relaxation.
type gridSearcher struct{ *Grid }

func (g gridSearcher) RangeSearch(q []float32, eps float64) []int {
	return g.ApproxRangeSearch(q, eps)
}

func (g gridSearcher) RangeCount(q []float32, eps float64) int {
	return g.ApproxRangeCount(q, eps)
}

func (g gridSearcher) BatchRangeSearch(queries [][]float32, eps float64) [][]int {
	return g.BatchApproxRangeSearch(queries, eps, 0, 0)
}

func (g gridSearcher) BatchRangeSearchWorkers(queries [][]float32, eps float64, workers, grain int) [][]int {
	return g.BatchApproxRangeSearch(queries, eps, workers, grain)
}

// kmeansTreeSearcher adapts the k-means tree's approximate queries to the
// uniform contract.
type kmeansTreeSearcher struct{ *KMeansTree }

func (t kmeansTreeSearcher) RangeSearch(q []float32, eps float64) []int {
	return t.RangeSearchApprox(q, eps)
}

func (t kmeansTreeSearcher) RangeCount(q []float32, eps float64) int {
	return len(t.RangeSearchApprox(q, eps))
}

func (t kmeansTreeSearcher) BatchRangeSearch(queries [][]float32, eps float64) [][]int {
	return t.BatchRangeSearchApprox(queries, eps, 0, 0)
}

func (t kmeansTreeSearcher) BatchRangeSearchWorkers(queries [][]float32, eps float64, workers, grain int) [][]int {
	return t.BatchRangeSearchApprox(queries, eps, workers, grain)
}

var (
	_ RangeSearcher       = hnswSearcher{}
	_ KNNSearcher         = hnswSearcher{}
	_ DynamicIndex        = hnswSearcher{}
	_ batchWorkerSearcher = hnswSearcher{}
	_ RangeSearcher       = gridSearcher{}
	_ DynamicIndex        = gridSearcher{}
	_ batchWorkerSearcher = gridSearcher{}
	_ RangeSearcher       = kmeansTreeSearcher{}
	_ KNNSearcher         = kmeansTreeSearcher{}
	_ DynamicIndex        = kmeansTreeSearcher{}
	_ batchWorkerSearcher = kmeansTreeSearcher{}
	_ RangeSearcher       = coverTreeSearcher{}
	_ DynamicIndex        = coverTreeSearcher{}
	_ batchWorkerSearcher = coverTreeSearcher{}
)
