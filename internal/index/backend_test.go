package index

import (
	"slices"
	"strings"
	"testing"

	"lafdbscan/internal/vecmath"
)

func TestBackendsListing(t *testing.T) {
	names := Backends()
	want := []string{BackendBrute, BackendHNSW, BackendCoverTree, BackendKMeansTree, BackendGrid}
	if !slices.Equal(names, want) {
		t.Fatalf("Backends() = %v, want %v", names, want)
	}
	for _, n := range names {
		if _, ok := LookupBackend(n); !ok {
			t.Fatalf("LookupBackend(%q) not found", n)
		}
	}
	if _, ok := LookupBackend("faiss"); ok {
		t.Fatal("LookupBackend accepted an unknown name")
	}
}

func TestBackendCapabilities(t *testing.T) {
	brute, _ := LookupBackend(BackendBrute)
	if !brute.Exact || !brute.Dynamic || brute.KNN || !brute.Cosine || !brute.Euclidean {
		t.Fatalf("brute capabilities wrong: %+v", brute)
	}
	hnswCaps, _ := LookupBackend(BackendHNSW)
	if hnswCaps.Exact || !hnswCaps.Dynamic || !hnswCaps.KNN || !hnswCaps.Cosine || !hnswCaps.Euclidean {
		t.Fatalf("hnsw capabilities wrong: %+v", hnswCaps)
	}
	grid, _ := LookupBackend(BackendGrid)
	if grid.Cosine || !grid.Euclidean || !grid.NeedsEps {
		t.Fatalf("grid capabilities wrong: %+v", grid)
	}
}

func TestNewBackendErrors(t *testing.T) {
	pts := clusteredPoints(20, 8, 1)
	if _, err := NewBackend("faiss", pts, BackendOptions{}); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown backend error = %v", err)
	}
	// Metric-capability rejection: the grid answers Euclidean only.
	if _, err := NewBackend(BackendGrid, pts, BackendOptions{Metric: vecmath.Cosine, Eps: 0.5}); err == nil ||
		!strings.Contains(err.Error(), "does not support metric cosine") {
		t.Fatalf("grid+cosine error = %v", err)
	}
	// NeedsEps rejection: no radius, no grid.
	if _, err := NewBackend(BackendGrid, pts, BackendOptions{Metric: vecmath.Euclidean}); err == nil ||
		!strings.Contains(err.Error(), "query radius") {
		t.Fatalf("grid-without-eps error = %v", err)
	}
}

// TestEveryBackendBuildsAndAnswers exercises the registry end to end:
// each backend builds under a supported configuration and answers a
// self-query.
func TestEveryBackendBuildsAndAnswers(t *testing.T) {
	pts := clusteredPoints(50, 8, 5)
	for _, c := range conformanceCases() {
		idx, err := NewBackend(c.backend, slices.Clone(pts), c.opts)
		if err != nil {
			t.Fatalf("building %s: %v", c.backend, err)
		}
		if idx.Len() != len(pts) {
			t.Fatalf("%s: Len = %d, want %d", c.backend, idx.Len(), len(pts))
		}
		if ids := idx.RangeSearch(pts[0], 1e-6); !slices.Contains(ids, 0) {
			t.Fatalf("%s: self-query missed: %v", c.backend, ids)
		}
		batch := idx.BatchRangeSearch(pts[:4], c.eps)
		if len(batch) != 4 {
			t.Fatalf("%s: batch returned %d results", c.backend, len(batch))
		}
	}
}

func TestResolveBackend(t *testing.T) {
	// The default chain requires exactness by default, so resolution lands
	// on brute force — the behavior-preserving default.
	got, err := ResolveBackend(nil, Requirements{Exact: true, Metric: vecmath.Cosine})
	if err != nil || got != BackendBrute {
		t.Fatalf("exact default resolution = %q, %v", got, err)
	}
	// Dropping the exactness requirement opts into the graph.
	got, err = ResolveBackend(nil, Requirements{Metric: vecmath.Cosine})
	if err != nil || got != BackendHNSW {
		t.Fatalf("approx default resolution = %q, %v", got, err)
	}
	// NeedsEps backends are skipped when the caller has no radius.
	got, err = ResolveBackend([]string{BackendGrid, BackendBrute}, Requirements{Metric: vecmath.Euclidean})
	if err != nil || got != BackendBrute {
		t.Fatalf("grid-without-eps resolution = %q, %v", got, err)
	}
	got, err = ResolveBackend([]string{BackendGrid, BackendBrute}, Requirements{Metric: vecmath.Euclidean, HaveEps: true})
	if err != nil || got != BackendGrid {
		t.Fatalf("grid-with-eps resolution = %q, %v", got, err)
	}
	// A chain that cannot satisfy the requirements reports every rejection.
	_, err = ResolveBackend([]string{BackendGrid}, Requirements{Metric: vecmath.Cosine})
	if err == nil || !strings.Contains(err.Error(), "rejected [grid]") {
		t.Fatalf("exhausted-chain error = %v", err)
	}
	// Unknown names fail loudly rather than being skipped.
	if _, err = ResolveBackend([]string{"faiss"}, Requirements{Metric: vecmath.Cosine}); err == nil ||
		!strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("unknown-chain error = %v", err)
	}
	// KNN-requiring resolution skips backends without KNN.
	got, err = ResolveBackend([]string{BackendCoverTree, BackendKMeansTree}, Requirements{KNN: true, Metric: vecmath.Cosine})
	if err != nil || got != BackendKMeansTree {
		t.Fatalf("knn resolution = %q, %v", got, err)
	}
}
