package index

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the batch/parallel substrate of the index layer: a shared
// worker pool (ForEach) plus batch range-query entry points for every index.
// Batching moves the parallelism from inside one query (BruteForce's
// per-scan sharding) to across queries, which is the right grain for the
// parallel clustering drivers: each worker runs full serial queries, so
// there is no fork/join overhead per query and no goroutine oversubscription
// when thousands of queries are in flight.

// ResolveWorkers normalizes a worker-count knob: values <= 0 select
// GOMAXPROCS, everything else is returned unchanged.
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// AutoWorkers maps a user-facing workers knob — where 0 means "sequential
// engine" (decided by the caller before reaching the pool) and negative
// means "all cores" — onto the pool convention where <= 0 selects
// GOMAXPROCS. The facade, the bench harness and the core engines share it
// so the auto convention lives in one place.
func AutoWorkers(workers int) int {
	if workers < 0 {
		return 0
	}
	return workers
}

// defaultGrain is the fallback chunk size ForEach hands to a worker at a
// time. Small enough to balance load when per-item cost varies (range
// queries over dense vs. sparse regions), large enough to amortize the
// atomic fetch.
const defaultGrain = 16

// ForEach invokes fn(i) for every i in [0, n), distributing contiguous
// chunks of grain indexes over a pool of workers goroutines. workers <= 0
// selects GOMAXPROCS; grain <= 0 selects a load-balancing default. fn must
// be safe for concurrent invocation on distinct i. With one worker (or
// n <= grain) the loop runs on the calling goroutine, so single-worker
// configurations are exactly the serial execution.
func ForEach(n, workers, grain int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = ResolveWorkers(workers)
	if grain <= 0 {
		grain = defaultGrain
	}
	if workers > (n+grain-1)/grain {
		workers = (n + grain - 1) / grain
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				hi := int(next.Add(int64(grain)))
				lo := hi - grain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// batchWorkerSearcher is the optional native batch fast path an index can
// provide; BruteForce uses it to run serial per-query scans instead of
// nesting its intra-query parallelism under the pool.
type batchWorkerSearcher interface {
	BatchRangeSearchWorkers(queries [][]float32, eps float64, workers, grain int) [][]int
}

// BatchRangeSearch answers queries[i] concurrently over a worker pool and
// returns out with out[i] = ids of points within eps of queries[i]. It
// prefers an index's native batch implementation when one exists and falls
// back to pooling the per-query RangeSearch otherwise. workers <= 0 selects
// GOMAXPROCS; grain <= 0 selects a default chunk size.
func BatchRangeSearch(s RangeSearcher, queries [][]float32, eps float64, workers, grain int) [][]int {
	if b, ok := s.(batchWorkerSearcher); ok {
		return b.BatchRangeSearchWorkers(queries, eps, workers, grain)
	}
	out := make([][]int, len(queries))
	ForEach(len(queries), workers, grain, func(i int) {
		out[i] = s.RangeSearch(queries[i], eps)
	})
	return out
}

// BatchRangeSearch implements RangeSearcher for BruteForce with the native
// batch path at GOMAXPROCS workers.
func (b *BruteForce) BatchRangeSearch(queries [][]float32, eps float64) [][]int {
	return b.BatchRangeSearchWorkers(queries, eps, 0, 0)
}

// BatchRangeSearchWorkers answers many queries over a fixed worker pool.
// Each query is a serial scan — across-query parallelism replaces the
// per-query sharding of RangeSearch — so the query counter advances by
// len(queries) and results are identical to serial RangeSearch calls.
func (b *BruteForce) BatchRangeSearchWorkers(queries [][]float32, eps float64, workers, grain int) [][]int {
	out := make([][]int, len(queries))
	b.queries.Add(int64(len(queries)))
	ForEach(len(queries), workers, grain, func(i int) {
		q := queries[i]
		var ids []int
		for j, p := range b.points {
			if b.dist(q, p) < eps {
				ids = append(ids, j)
			}
		}
		out[i] = ids
	})
	return out
}

// BatchRangeSearch implements RangeSearcher for CoverTree. Tree traversal
// is read-only after construction, so queries run concurrently without
// synchronization.
func (t *CoverTree) BatchRangeSearch(queries [][]float32, eps float64) [][]int {
	return t.BatchRangeSearchWorkers(queries, eps, 0, 0)
}

// BatchRangeSearchWorkers answers many range queries over a fixed worker
// pool of the given size.
func (t *CoverTree) BatchRangeSearchWorkers(queries [][]float32, eps float64, workers, grain int) [][]int {
	out := make([][]int, len(queries))
	ForEach(len(queries), workers, grain, func(i int) {
		out[i] = t.RangeSearch(queries[i], eps)
	})
	return out
}

// BatchApproxRangeSearch answers many ρ-approximate range queries over a
// fixed worker pool. The grid is read-only after construction.
func (g *Grid) BatchApproxRangeSearch(queries [][]float32, eps float64, workers, grain int) [][]int {
	out := make([][]int, len(queries))
	ForEach(len(queries), workers, grain, func(i int) {
		out[i] = g.ApproxRangeSearch(queries[i], eps)
	})
	return out
}

// BatchRangeSearchApprox answers many approximate range queries over a
// fixed worker pool. The tree is read-only after construction.
func (t *KMeansTree) BatchRangeSearchApprox(queries [][]float32, eps float64, workers, grain int) [][]int {
	out := make([][]int, len(queries))
	ForEach(len(queries), workers, grain, func(i int) {
		out[i] = t.RangeSearchApprox(queries[i], eps)
	})
	return out
}
