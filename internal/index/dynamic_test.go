package index

import (
	"math/rand"
	"slices"
	"testing"

	"lafdbscan/internal/vecmath"
)

// applyOps drives a DynamicIndex through a scripted mutation sequence and
// mirrors it on a plain slice, returning the expected live point set.
func applyOps(t *testing.T, idx DynamicIndex, pts [][]float32, seed int64) [][]float32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mirror := slices.Clone(pts)
	for step := 0; step < 40; step++ {
		if rng.Intn(2) == 0 && len(mirror) > 8 {
			id := rng.Intn(len(mirror))
			idx.Delete(id)
			mirror = slices.Delete(mirror, id, id+1)
		} else {
			batch := make([][]float32, 1+rng.Intn(3))
			for i := range batch {
				batch[i] = vecmath.RandomUnit(len(mirror[0]), rng)
			}
			idx.Insert(batch)
			mirror = append(mirror, batch...)
		}
	}
	return mirror
}

// TestBruteForceDynamic pins the dynamic contract on the exact scanner: a
// mutated index answers every query exactly as a fresh index over the
// resulting point set.
func TestBruteForceDynamic(t *testing.T) {
	pts := clusteredPoints(60, 16, 1)
	bf := NewBruteForce(slices.Clone(pts), vecmath.CosineDistanceUnit)
	mirror := applyOps(t, bf, pts, 2)
	if bf.Len() != len(mirror) {
		t.Fatalf("Len = %d, want %d", bf.Len(), len(mirror))
	}
	fresh := NewBruteForce(mirror, vecmath.CosineDistanceUnit)
	for _, q := range mirror[:20] {
		if got, want := bf.RangeSearch(q, 0.4), fresh.RangeSearch(q, 0.4); !equalIDs(got, want) {
			t.Fatalf("dynamic brute force diverged: %v vs %v", got, want)
		}
	}
}

// TestGridDynamic pins the grid's native mutations: cells gain and lose
// members (and empty cells disappear) such that the mutated grid matches a
// freshly built one over the resulting points.
func TestGridDynamic(t *testing.T) {
	pts := clusteredPoints(60, 8, 3)
	g := NewGrid(slices.Clone(pts), 0.5, 1.0)
	mirror := applyOps(t, g, pts, 4)
	fresh := NewGrid(mirror, 0.5, 1.0)
	if g.Len() != fresh.Len() {
		t.Fatalf("Len = %d, want %d", g.Len(), fresh.Len())
	}
	if g.NumCells() != fresh.NumCells() {
		t.Fatalf("NumCells = %d, want %d (empty cells must be dropped)", g.NumCells(), fresh.NumCells())
	}
	for _, q := range mirror[:20] {
		if got, want := g.ApproxRangeSearch(q, 0.5), fresh.ApproxRangeSearch(q, 0.5); !equalIDs(got, want) {
			t.Fatalf("dynamic grid diverged: %v vs %v", got, want)
		}
		if got, want := g.ApproxRangeCount(q, 0.5), fresh.ApproxRangeCount(q, 0.5); got != want {
			t.Fatalf("dynamic grid count diverged: %d vs %d", got, want)
		}
	}
}

// TestCoverTreeDynamic pins the rebuild-threshold fallback on the exact
// tree: native inserts and tombstoned deletions (through rebuilds) keep
// range results identical to a brute-force scan of the live point set.
func TestCoverTreeDynamic(t *testing.T) {
	pts := clusteredPoints(60, 16, 5)
	ct := NewCoverTree(slices.Clone(pts), vecmath.CosineDistanceUnit, 2.0)
	mirror := applyOps(t, ct, pts, 6)
	if ct.Len() != len(mirror) {
		t.Fatalf("Len = %d, want %d", ct.Len(), len(mirror))
	}
	truth := NewBruteForce(mirror, vecmath.CosineDistanceUnit)
	for _, q := range mirror[:20] {
		if got, want := ct.RangeSearch(q, 0.4), truth.RangeSearch(q, 0.4); !equalIDs(got, want) {
			t.Fatalf("dynamic cover tree diverged: %v vs %v", got, want)
		}
		if got, want := ct.RangeCount(q, 0.4), truth.RangeCount(q, 0.4); got != want {
			t.Fatalf("dynamic cover tree count diverged: %d vs %d", got, want)
		}
	}
}

// TestCoverTreeDeleteRebuild forces the tombstone share over the rebuild
// threshold and checks the compaction: ids renumber exactly as the point
// slice does and deleted points never reappear.
func TestCoverTreeDeleteRebuild(t *testing.T) {
	pts := clusteredPoints(40, 8, 7)
	ct := NewCoverTree(slices.Clone(pts), vecmath.CosineDistanceUnit, 2.0)
	mirror := slices.Clone(pts)
	for i := 0; i < 20; i++ { // 50% deleted: crosses the 25% threshold twice
		ct.Delete(0)
		mirror = mirror[1:]
	}
	truth := NewBruteForce(mirror, vecmath.CosineDistanceUnit)
	for _, q := range mirror {
		if got, want := ct.RangeSearch(q, 0.5), truth.RangeSearch(q, 0.5); !equalIDs(got, want) {
			t.Fatalf("post-rebuild cover tree diverged: %v vs %v", got, want)
		}
	}
	if id, _ := ct.NearestNeighbor(mirror[0]); id < 0 || id >= len(mirror) {
		t.Fatalf("NearestNeighbor returned out-of-range id %d", id)
	}
}

// TestKMeansTreeDynamic checks the approximate tree's overlay semantics:
// appended points are scanned exactly (so they are always findable within
// eps), deleted points never surface, and ids stay within the compacted
// range.
func TestKMeansTreeDynamic(t *testing.T) {
	pts := clusteredPoints(80, 16, 9)
	km := NewKMeansTree(slices.Clone(pts), vecmath.CosineDistanceUnit, KMeansTreeConfig{Seed: 1, LeavesRatio: 1.0})
	mirror := slices.Clone(pts)

	// Delete a handful of points, remember one of them.
	removed := slices.Clone(mirror[3])
	for i := 0; i < 5; i++ {
		km.Delete(3)
		mirror = slices.Delete(mirror, 3, 3+1)
	}
	// Insert new points below the rebuild threshold: they live in the
	// overlay and must be findable at distance ~0.
	extra := clusteredPoints(4, 16, 10)
	km.Insert(extra)
	mirror = append(mirror, extra...)
	if km.Len() != len(mirror) {
		t.Fatalf("Len = %d, want %d", km.Len(), len(mirror))
	}
	for k, q := range extra {
		got := km.RangeSearchApprox(q, 0.1)
		wantID := len(mirror) - len(extra) + k
		if !slices.Contains(got, wantID) {
			t.Fatalf("overlay point %d not found by its own query: %v", wantID, got)
		}
	}
	// At LeavesRatio 1.0 every leaf is examined, so results must equal the
	// exact scan over the live set.
	truth := NewBruteForce(mirror, vecmath.CosineDistanceUnit)
	for _, q := range mirror[:20] {
		if got, want := km.RangeSearchApprox(q, 0.4), truth.RangeSearch(q, 0.4); !equalIDs(got, want) {
			t.Fatalf("full-recall dynamic k-means tree diverged: %v vs %v", got, want)
		}
	}
	// The deleted point must not be findable even by an exact-match query.
	for _, id := range km.RangeSearchApprox(removed, 1e-6) {
		if d := vecmath.CosineDistanceUnit(removed, mirror[id]); d > 1e-5 {
			t.Fatalf("query at a deleted point surfaced unrelated id %d (d=%v)", id, d)
		}
	}
}

// TestDeleteManyMatchesFresh pins the batch-deletion path of every index:
// one DeleteMany call must leave the index answering exactly like a fresh
// build over the surviving points (and like the per-id Delete loop it
// replaces, which the other tests cover).
func TestDeleteManyMatchesFresh(t *testing.T) {
	pts := clusteredPoints(80, 12, 21)
	rng := rand.New(rand.NewSource(22))
	ids := rng.Perm(len(pts))[:25]
	slices.Sort(ids)
	mirror := make([][]float32, 0, len(pts)-len(ids))
	for i, p := range pts {
		if !slices.Contains(ids, i) {
			mirror = append(mirror, p)
		}
	}
	truth := NewBruteForce(mirror, vecmath.CosineDistanceUnit)

	bf := NewBruteForce(slices.Clone(pts), vecmath.CosineDistanceUnit)
	bf.DeleteMany(slices.Clone(ids))
	grid := NewGrid(slices.Clone(pts), 0.5, 1.0)
	grid.DeleteMany(slices.Clone(ids))
	gridFresh := NewGrid(mirror, 0.5, 1.0)
	ct := NewCoverTree(slices.Clone(pts), vecmath.CosineDistanceUnit, 2.0)
	ct.DeleteMany(slices.Clone(ids)) // 25/80 crosses the rebuild threshold
	km := NewKMeansTree(slices.Clone(pts), vecmath.CosineDistanceUnit, KMeansTreeConfig{Seed: 3, LeavesRatio: 1.0})
	km.DeleteMany(slices.Clone(ids))

	for _, idx := range []interface{ Len() int }{bf, grid, ct, km} {
		if idx.Len() != len(mirror) {
			t.Fatalf("%T.Len = %d, want %d", idx, idx.Len(), len(mirror))
		}
	}
	for _, q := range mirror[:20] {
		want := truth.RangeSearch(q, 0.4)
		if got := bf.RangeSearch(q, 0.4); !equalIDs(got, want) {
			t.Fatalf("brute force DeleteMany diverged: %v vs %v", got, want)
		}
		if got := ct.RangeSearch(q, 0.4); !equalIDs(got, want) {
			t.Fatalf("cover tree DeleteMany diverged: %v vs %v", got, want)
		}
		if got := km.RangeSearchApprox(q, 0.4); !equalIDs(got, want) {
			t.Fatalf("k-means tree DeleteMany diverged: %v vs %v", got, want)
		}
		if got, wantG := grid.ApproxRangeSearch(q, 0.5), gridFresh.ApproxRangeSearch(q, 0.5); !equalIDs(got, wantG) {
			t.Fatalf("grid DeleteMany diverged: %v vs %v", got, wantG)
		}
	}
	if grid.NumCells() != gridFresh.NumCells() {
		t.Fatalf("grid cells = %d, want %d", grid.NumCells(), gridFresh.NumCells())
	}
}

// TestKMeansTreeRebuildMatchesFresh drives the overlay over the rebuild
// threshold and checks the rebuilt tree is exactly a fresh build (same
// configuration, same seed) over the live points.
func TestKMeansTreeRebuildMatchesFresh(t *testing.T) {
	pts := clusteredPoints(60, 16, 11)
	cfg := KMeansTreeConfig{Seed: 2, LeavesRatio: 0.6}
	km := NewKMeansTree(slices.Clone(pts), vecmath.CosineDistanceUnit, cfg)
	mirror := slices.Clone(pts)
	extra := clusteredPoints(40, 16, 12) // 40/100 > 1/4: forces a rebuild
	km.Insert(extra)
	mirror = append(mirror, extra...)
	if km.overlaySize() != 0 {
		t.Fatalf("overlay not cleared by rebuild: %d", km.overlaySize())
	}
	fresh := NewKMeansTree(mirror, vecmath.CosineDistanceUnit, cfg)
	for _, q := range mirror[:30] {
		if got, want := km.RangeSearchApprox(q, 0.4), fresh.RangeSearchApprox(q, 0.4); !equalIDs(got, want) {
			t.Fatalf("rebuilt tree diverged from fresh build: %v vs %v", got, want)
		}
	}
}
