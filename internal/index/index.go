package index

import (
	"runtime"
	"sync"
	"sync/atomic"

	"lafdbscan/internal/vecmath"
)

// RangeSearcher answers radius queries over an indexed point set.
type RangeSearcher interface {
	// RangeSearch returns the ids of all indexed points p with
	// d(q, p) < eps, in unspecified order.
	RangeSearch(q []float32, eps float64) []int
	// RangeCount returns len(RangeSearch(q, eps)) without materializing
	// the result.
	RangeCount(q []float32, eps float64) int
	// BatchRangeSearch answers every query concurrently over a worker
	// pool and returns one id slice per query, index-aligned with
	// queries. Implementations must make concurrent queries safe; use
	// the package-level BatchRangeSearch helper to cap the pool size.
	BatchRangeSearch(queries [][]float32, eps float64) [][]int
	// Len returns the number of indexed points.
	Len() int
}

// KNNSearcher answers k-nearest-neighbor queries.
type KNNSearcher interface {
	// KNN returns up to k ids sorted by increasing distance, and the
	// corresponding distances.
	KNN(q []float32, k int) ([]int, []float64)
}

// BruteForce scans every indexed point. It parallelizes large scans across
// GOMAXPROCS workers, which is the configuration all methods share in the
// benchmark harness so that relative timings stay meaningful.
type BruteForce struct {
	points   [][]float32
	dist     vecmath.DistanceFunc
	parallel bool
	queries  atomic.Int64
}

// NewBruteForce indexes points with the given distance. The points slice is
// retained, not copied.
func NewBruteForce(points [][]float32, dist vecmath.DistanceFunc) *BruteForce {
	return &BruteForce{points: points, dist: dist, parallel: true}
}

// SetParallel toggles multi-goroutine scans (on by default). Tests use the
// serial path for determinism-sensitive assertions.
func (b *BruteForce) SetParallel(p bool) { b.parallel = p }

// Len returns the number of indexed points.
func (b *BruteForce) Len() int { return len(b.points) }

// Queries returns the number of range queries executed so far. LAF's whole
// point is reducing this number; the experiment harness reports it.
func (b *BruteForce) Queries() int64 { return b.queries.Load() }

// ResetQueries zeroes the query counter.
func (b *BruteForce) ResetQueries() { b.queries.Store(0) }

const parallelThreshold = 1 << 17 // ~point-dims per shard worth spawning for

// RangeSearch implements RangeSearcher.
func (b *BruteForce) RangeSearch(q []float32, eps float64) []int {
	b.queries.Add(1)
	n := len(b.points)
	if n == 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if !b.parallel || workers == 1 || n*len(q) < parallelThreshold {
		var out []int
		for i, p := range b.points {
			if b.dist(q, p) < eps {
				out = append(out, i)
			}
		}
		return out
	}
	parts := make([][]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local []int
			for i := lo; i < hi; i++ {
				if b.dist(q, b.points[i]) < eps {
					local = append(local, i)
				}
			}
			parts[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// RangeCount implements RangeSearcher.
func (b *BruteForce) RangeCount(q []float32, eps float64) int {
	b.queries.Add(1)
	n := len(b.points)
	workers := runtime.GOMAXPROCS(0)
	if !b.parallel || workers == 1 || n*len(q) < parallelThreshold {
		count := 0
		for _, p := range b.points {
			if b.dist(q, p) < eps {
				count++
			}
		}
		return count
	}
	counts := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := 0
			for i := lo; i < hi; i++ {
				if b.dist(q, b.points[i]) < eps {
					c++
				}
			}
			counts[w] = c
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

var _ RangeSearcher = (*BruteForce)(nil)
