// Package index provides the range-query and KNN engines the clustering
// algorithms are built on: a (parallel) brute-force scanner used by DBSCAN,
// DBSCAN++ and the LAF variants, a cover tree used by BLOCK-DBSCAN, a
// k-means tree used by KNN-BLOCK DBSCAN, and the sparse grid behind
// ρ-approximate DBSCAN.
//
// All engines operate over a slice of points identified by integer ids.
// Range semantics follow the paper: a range query with radius eps returns
// the ids of points with d(q, p) < eps (strict), including the query point
// itself when it is part of the indexed set.
//
// Three layers sit on top of the per-query engines:
//
//   - the batch layer (batch.go): a shared worker pool (ForEach) and batch
//     range-query entry points that parallelize across queries instead of
//     inside them — the right grain for the clustering drivers;
//   - the wave layer (wave.go): BatchRangeSearchFunc streams queries in
//     bounded waves and hands each result to a callback, so the live set is
//     O(WaveSize·avg|N|) regardless of dataset size; the wave barrier is
//     also the cancellation and progress point;
//   - the dynamic layer (dynamic.go): the DynamicIndex insert/delete
//     contract behind online model maintenance — native mutation for
//     BruteForce and Grid, a rebuild-threshold overlay for the trees — with
//     compacting id semantics matching the point slice itself.
package index
