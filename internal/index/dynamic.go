package index

import "slices"

// This file is the index layer's dynamic-mutation contract, the substrate
// of online model maintenance (Model.Insert / Model.Remove): indexes accept
// point insertions and deletions without a full rebuild. Ids follow the
// compacting convention of the point set itself — Insert appends at the end
// (new ids len..len+k-1), Delete(id) removes one point and shifts every id
// above it down by one — so a dynamic index always answers queries exactly
// as a freshly built index over the current point slice would.
//
// BruteForce and Grid mutate natively (their structures are flat). The
// trees keep their fitted structure and absorb mutations through an
// overlay — CoverTree inserts natively (it is insertion-built) and
// tombstones deletions; KMeansTree scans appended points linearly and
// tombstones deletions — until the overlay exceeds rebuildFraction of the
// index, at which point the structure is rebuilt from the live points (the
// rebuild-threshold fallback). Results are identical either side of the
// rebuild for the exact indexes; the approximate KMeansTree answers with
// at least its fitted recall (overlay points are scanned exactly).

// DynamicIndex is the mutation contract. Implementations retain and mutate
// the point slice they were built over, so callers sharing that slice with
// other readers must hand the index an owned copy.
type DynamicIndex interface {
	// Insert appends vectors to the indexed set; the new points get ids
	// len..len+k-1 in order.
	Insert(vecs [][]float32)
	// Delete removes the point with the given id; ids above it shift down
	// by one, matching a slices.Delete on the underlying point set.
	Delete(id int)
	// DeleteMany removes a batch of ids (sorted ascending, no duplicates)
	// in one structural pass — O(n) where a Delete loop would pay O(k·n) —
	// with the same compacting semantics as k successive Deletes applied
	// highest id first.
	DeleteMany(ids []int)
}

// rebuildFraction is the overlay share (tombstones plus, for KMeansTree,
// linearly scanned appends) that triggers a tree rebuild: 1/4 of the index.
const rebuildFraction = 4

// --- BruteForce: native ---

// Insert implements DynamicIndex: the vectors join the scan set directly.
func (b *BruteForce) Insert(vecs [][]float32) {
	b.points = append(b.points, vecs...)
}

// Delete implements DynamicIndex: the point is removed from the scan set
// and ids above it shift down.
func (b *BruteForce) Delete(id int) {
	b.points = slices.Delete(b.points, id, id+1)
}

// DeleteMany implements DynamicIndex with a single compaction pass.
func (b *BruteForce) DeleteMany(ids []int) {
	out := b.points[:0]
	k := 0
	for i, p := range b.points {
		if k < len(ids) && ids[k] == i {
			k++
			continue
		}
		out = append(out, p)
	}
	clear(b.points[len(out):]) // release the tail's vector references
	b.points = out
}

// --- Grid: native ---

// addToCell files point i into its cell, creating the cell on first use
// (the same logic NewGrid applies during construction).
func (g *Grid) addToCell(i int, p []float32) {
	key, coords := g.cellKey(p)
	c, ok := g.cells[key]
	if !ok {
		dim := len(p)
		c = &gridCell{coords: coords, lo: make([]float32, dim), hi: make([]float32, dim)}
		for j, cc := range coords {
			c.lo[j] = float32(float64(cc) * g.side)
			c.hi[j] = float32(float64(cc+1) * g.side)
		}
		g.cells[key] = c
		g.order = append(g.order, key)
	}
	c.members = append(c.members, i)
}

// Insert implements DynamicIndex: each vector is appended and filed into
// its cell.
func (g *Grid) Insert(vecs [][]float32) {
	for _, v := range vecs {
		g.points = append(g.points, v)
		g.addToCell(len(g.points)-1, v)
	}
}

// Delete implements DynamicIndex: the point leaves its cell (the cell is
// dropped when it empties, so the grid matches a fresh build over the
// remaining points), the point slice compacts, and every surviving member
// id above the deleted one shifts down.
func (g *Grid) Delete(id int) {
	key, _ := g.cellKey(g.points[id])
	c := g.cells[key]
	for i, m := range c.members {
		if m == id {
			c.members = slices.Delete(c.members, i, i+1)
			break
		}
	}
	if len(c.members) == 0 {
		delete(g.cells, key)
		for i, k := range g.order {
			if k == key {
				g.order = slices.Delete(g.order, i, i+1)
				break
			}
		}
	}
	g.points = slices.Delete(g.points, id, id+1)
	for _, k := range g.order {
		members := g.cells[k].members
		for i, m := range members {
			if m > id {
				members[i] = m - 1
			}
		}
	}
}

// DeleteMany implements DynamicIndex: one pass over the cells filters and
// renumbers members (empty cells are dropped, keeping the grid identical
// to a fresh build over the survivors), one pass compacts the points.
func (g *Grid) DeleteMany(ids []int) {
	n := len(g.points)
	remap := make([]int, n)
	k := 0
	for i := 0; i < n; i++ {
		if k < len(ids) && ids[k] == i {
			k++
			remap[i] = -1
		} else {
			remap[i] = i - k
		}
	}
	keptOrder := g.order[:0]
	for _, key := range g.order {
		c := g.cells[key]
		kept := c.members[:0]
		for _, m := range c.members {
			if nm := remap[m]; nm >= 0 {
				kept = append(kept, nm)
			}
		}
		c.members = kept
		if len(kept) == 0 {
			delete(g.cells, key)
			continue
		}
		keptOrder = append(keptOrder, key)
	}
	g.order = keptOrder
	out := g.points[:0]
	for i, p := range g.points {
		if remap[i] >= 0 {
			out = append(out, p)
		}
	}
	clear(g.points[len(out):])
	g.points = out
}

// --- tombstone remap shared by the tree indexes ---

// tombstones tracks the external (compacted) id of every internal (grow-
// only) point slot, with deletions marked dead. A nil ext slice means the
// identity mapping (no deletions yet), keeping the zero-mutation fast path
// allocation-free.
type tombstones struct {
	ext  []int // internal id -> external id, -1 dead; nil = identity
	dead int
}

// extOf returns the external id of internal slot i, or -1 when dead.
func (t *tombstones) extOf(i int) int {
	if t.ext == nil {
		return i
	}
	return t.ext[i]
}

// grow registers k appended internal slots whose external ids continue the
// live sequence.
func (t *tombstones) grow(k, live int) {
	if t.ext == nil {
		return // identity still holds: no deletions, ext == internal
	}
	for j := 0; j < k; j++ {
		t.ext = append(t.ext, live+j)
	}
}

// kill marks the internal slot holding external id e dead and shifts every
// higher external id down by one, returning the killed internal slot.
func (t *tombstones) kill(e, n int) int {
	if t.ext == nil {
		t.ext = make([]int, n)
		for i := range t.ext {
			t.ext[i] = i
		}
	}
	victim := -1
	for i, x := range t.ext {
		switch {
		case x == e:
			victim = i
			t.ext[i] = -1
		case x > e:
			t.ext[i] = x - 1
		}
	}
	t.dead++
	return victim
}

// killMany is kill over a sorted, duplicate-free batch of external ids,
// applying the whole shift in one pass over the internal slots.
func (t *tombstones) killMany(ids []int, n int) {
	if t.ext == nil {
		t.ext = make([]int, n)
		for i := range t.ext {
			t.ext[i] = i
		}
	}
	for i, x := range t.ext {
		if x < 0 {
			continue
		}
		j, found := slices.BinarySearch(ids, x)
		if found {
			t.ext[i] = -1
			continue
		}
		t.ext[i] = x - j // j removed externals precede x
	}
	t.dead += len(ids)
}

// reset clears the mapping after a rebuild over the live points.
func (t *tombstones) reset() { t.ext, t.dead = nil, 0 }

// --- CoverTree: native insert, rebuild-threshold delete ---

// Insert implements DynamicIndex. The cover tree is insertion-built, so new
// points are threaded into the existing structure natively.
func (t *CoverTree) Insert(vecs [][]float32) {
	t.tomb.grow(len(vecs), t.Len())
	for _, v := range vecs {
		t.points = append(t.points, v)
		t.insert(len(t.points) - 1)
	}
}

// Delete implements DynamicIndex via the rebuild-threshold fallback: the
// point is tombstoned (the tree structure keeps its node, queries skip it)
// until tombstones reach 1/rebuildFraction of the index, then the tree is
// rebuilt from the live points.
func (t *CoverTree) Delete(id int) {
	t.tomb.kill(id, len(t.points))
	if t.tomb.dead*rebuildFraction >= t.size {
		t.rebuild()
	}
}

// DeleteMany implements DynamicIndex: the batch is tombstoned in one pass,
// then the rebuild threshold is evaluated once.
func (t *CoverTree) DeleteMany(ids []int) {
	t.tomb.killMany(ids, len(t.points))
	if t.tomb.dead*rebuildFraction >= t.size {
		t.rebuild()
	}
}

// rebuild reconstructs the tree over the live points, compacting ids.
func (t *CoverTree) rebuild() {
	live := make([][]float32, 0, t.Len())
	for i, p := range t.points {
		if t.tomb.extOf(i) >= 0 {
			live = append(live, p)
		}
	}
	t.points = live
	t.tomb.reset()
	t.root = nil
	t.size = 0
	for i := range t.points {
		t.insert(i)
	}
}

// --- KMeansTree: rebuild-threshold insert and delete ---

// Insert implements DynamicIndex via the rebuild-threshold fallback:
// appended points are scanned exactly (a linear overlay next to the tree
// traversal) until the overlay exceeds 1/rebuildFraction of the index,
// then the tree is rebuilt — with its original configuration and seed —
// over the live points.
func (t *KMeansTree) Insert(vecs [][]float32) {
	t.tomb.grow(len(vecs), t.Len())
	t.points = append(t.points, vecs...)
	t.maybeRebuild()
}

// Delete implements DynamicIndex via the same fallback: the point is
// tombstoned and queries skip it until the next rebuild.
func (t *KMeansTree) Delete(id int) {
	t.tomb.kill(id, len(t.points))
	t.maybeRebuild()
}

// DeleteMany implements DynamicIndex: one tombstoning pass, one threshold
// check.
func (t *KMeansTree) DeleteMany(ids []int) {
	t.tomb.killMany(ids, len(t.points))
	t.maybeRebuild()
}

// overlaySize is the number of points answered outside the fitted tree:
// appended points plus tombstones.
func (t *KMeansTree) overlaySize() int {
	return len(t.points) - t.builtLen + t.tomb.dead
}

func (t *KMeansTree) maybeRebuild() {
	if t.overlaySize()*rebuildFraction >= len(t.points) {
		t.rebuild()
	}
}

// rebuild reconstructs the tree over the live points with the stored
// configuration, compacting ids and clearing the overlay.
func (t *KMeansTree) rebuild() {
	live := make([][]float32, 0, t.Len())
	for i, p := range t.points {
		if t.tomb.extOf(i) >= 0 {
			live = append(live, p)
		}
	}
	t.points = live
	t.tomb.reset()
	t.buildTree()
}

var (
	_ DynamicIndex = (*BruteForce)(nil)
	_ DynamicIndex = (*Grid)(nil)
	_ DynamicIndex = (*CoverTree)(nil)
	_ DynamicIndex = (*KMeansTree)(nil)
)
