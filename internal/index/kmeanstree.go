package index

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"lafdbscan/internal/vecmath"
)

// KMeansTree is a FLANN-style hierarchical k-means tree for approximate
// nearest-neighbor search, the index KNN-BLOCK DBSCAN relies on. Two
// parameters shape its speed/recall trade-off, exactly the knobs the paper
// sweeps in Figures 2–3:
//
//   - Branching: the k of each k-means split (paper default 10, swept 3–20)
//   - LeavesRatio: the fraction of leaves examined per query (paper default
//     0.6, swept 0.001–0.3 in the trade-off experiments)
type KMeansTree struct {
	points      [][]float32
	dist        vecmath.DistanceFunc
	branching   int
	leavesRatio float64
	maxLeaf     int
	root        *kmNode
	numLeaves   int
	// cfg is retained (normalized) so the dynamic rebuild fallback can
	// reconstruct the tree deterministically; builtLen is how many points
	// the current tree was built over (points beyond it are the linear
	// overlay); tomb tracks dynamic deletions.
	cfg      KMeansTreeConfig
	builtLen int
	tomb     tombstones
}

type kmNode struct {
	center   []float32
	children []*kmNode
	// members is non-nil exactly for leaves.
	members []int
}

// KMeansTreeConfig configures construction.
type KMeansTreeConfig struct {
	Branching   int     // default 10
	LeavesRatio float64 // default 0.6
	MaxLeaf     int     // default 32
	Iterations  int     // Lloyd iterations per split, default 5
	Seed        int64
}

// NewKMeansTree builds the tree. The points slice is retained.
func NewKMeansTree(points [][]float32, dist vecmath.DistanceFunc, cfg KMeansTreeConfig) *KMeansTree {
	if cfg.Branching < 2 {
		cfg.Branching = 10
	}
	if cfg.LeavesRatio <= 0 || cfg.LeavesRatio > 1 {
		cfg.LeavesRatio = 0.6
	}
	if cfg.MaxLeaf <= 0 {
		cfg.MaxLeaf = 32
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 5
	}
	t := &KMeansTree{
		points:      points,
		dist:        dist,
		branching:   cfg.Branching,
		leavesRatio: cfg.LeavesRatio,
		maxLeaf:     cfg.MaxLeaf,
		cfg:         cfg,
	}
	t.buildTree()
	return t
}

// buildTree (re)constructs the tree over the current points with the stored
// configuration. The dynamic rebuild fallback shares it with construction,
// so a rebuilt tree is identical to a freshly built one over the same
// points.
func (t *KMeansTree) buildTree() {
	t.numLeaves = 0
	rng := rand.New(rand.NewSource(t.cfg.Seed))
	all := make([]int, len(t.points))
	for i := range all {
		all[i] = i
	}
	t.root = t.build(all, t.cfg.Iterations, rng)
	t.builtLen = len(t.points)
}

// Len returns the number of indexed (live) points.
func (t *KMeansTree) Len() int { return len(t.points) - t.tomb.dead }

// NumLeaves returns the number of leaf nodes.
func (t *KMeansTree) NumLeaves() int { return t.numLeaves }

func (t *KMeansTree) build(ids []int, iters int, rng *rand.Rand) *kmNode {
	n := &kmNode{center: t.centroid(ids)}
	if len(ids) <= t.maxLeaf || len(ids) <= t.branching {
		n.members = ids
		t.numLeaves++
		return n
	}
	groups := t.kmeans(ids, t.branching, iters, rng)
	if len(groups) <= 1 {
		// Degenerate split (duplicate points); stop here.
		n.members = ids
		t.numLeaves++
		return n
	}
	for _, g := range groups {
		n.children = append(n.children, t.build(g, iters, rng))
	}
	return n
}

func (t *KMeansTree) centroid(ids []int) []float32 {
	dim := 0
	if len(t.points) > 0 {
		dim = len(t.points[0])
	}
	acc := make([]float64, dim)
	for _, id := range ids {
		for j, x := range t.points[id] {
			acc[j] += float64(x)
		}
	}
	c := make([]float32, dim)
	if len(ids) > 0 {
		inv := 1 / float64(len(ids))
		for j := range c {
			c[j] = float32(acc[j] * inv)
		}
	}
	return c
}

// kmeans clusters ids into at most k non-empty groups with a few Lloyd
// iterations, seeded with distinct random members.
func (t *KMeansTree) kmeans(ids []int, k, iters int, rng *rand.Rand) [][]int {
	if k > len(ids) {
		k = len(ids)
	}
	perm := rng.Perm(len(ids))
	centers := make([][]float32, k)
	for i := 0; i < k; i++ {
		centers[i] = vecmath.Clone(t.points[ids[perm[i]]])
	}
	assign := make([]int, len(ids))
	for it := 0; it < iters; it++ {
		changed := false
		for i, id := range ids {
			best, bestD := 0, math.Inf(1)
			for c, center := range centers {
				if d := t.dist(t.points[id], center); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		// recompute centers
		counts := make([]int, k)
		dim := len(centers[0])
		acc := make([][]float64, k)
		for c := range acc {
			acc[c] = make([]float64, dim)
		}
		for i, id := range ids {
			counts[assign[i]]++
			for j, x := range t.points[id] {
				acc[assign[i]][j] += float64(x)
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centers[c] {
				centers[c][j] = float32(acc[c][j] * inv)
			}
		}
	}
	groups := make([][]int, k)
	for i, id := range ids {
		groups[assign[i]] = append(groups[assign[i]], id)
	}
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// nodeHeap is a min-heap of (distance to center, node) used for best-first
// traversal.
type nodeHeap []nodeDist

type nodeDist struct {
	d float64
	n *kmNode
}

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// KNN returns up to k approximate nearest neighbors of q, sorted by
// distance. The search expands leaves best-first and stops after examining
// LeavesRatio of all leaves, so recall degrades gracefully as the ratio
// shrinks — the mechanism behind KNN-BLOCK's trade-off curve.
func (t *KMeansTree) KNN(q []float32, k int) ([]int, []float64) {
	if t.root == nil || k <= 0 {
		return nil, nil
	}
	budget := int(math.Ceil(t.leavesRatio * float64(t.numLeaves)))
	if budget < 1 {
		budget = 1
	}
	type cand struct {
		id int
		d  float64
	}
	var cands []cand
	pq := &nodeHeap{{0, t.root}}
	visited := 0
	for pq.Len() > 0 && visited < budget {
		nd := heap.Pop(pq).(nodeDist)
		n := nd.n
		if n.members != nil {
			visited++
			for _, id := range n.members {
				if e := t.tomb.extOf(id); e >= 0 {
					cands = append(cands, cand{e, t.dist(q, t.points[id])})
				}
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(pq, nodeDist{t.dist(q, c.center), c})
		}
	}
	// Points appended since the last rebuild live outside the tree; scan
	// them exactly (the dynamic overlay, bounded by the rebuild threshold).
	for i := t.builtLen; i < len(t.points); i++ {
		if e := t.tomb.extOf(i); e >= 0 {
			cands = append(cands, cand{e, t.dist(q, t.points[i])})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	if len(cands) > k {
		cands = cands[:k]
	}
	ids := make([]int, len(cands))
	dists := make([]float64, len(cands))
	for i, c := range cands {
		ids[i] = c.id
		dists[i] = c.d
	}
	return ids, dists
}

// RangeSearchApprox returns the ids among the best-first candidate pool
// with d(q, p) < eps. Unlike a brute-force range query it can miss
// neighbors outside the examined leaves; KNN-BLOCK uses it for cluster
// expansion.
func (t *KMeansTree) RangeSearchApprox(q []float32, eps float64) []int {
	ids, dists := t.KNN(q, t.Len())
	var out []int
	for i, id := range ids {
		if dists[i] >= eps {
			break
		}
		out = append(out, id)
	}
	return out
}

var _ KNNSearcher = (*KMeansTree)(nil)
