package index

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"lafdbscan/internal/vecmath"
)

// collectStream runs a streaming batch entry point and gathers the per-
// query results (copied — the contract says ids may be recycled after the
// callback returns).
func collectStream(n int, stream func(fn func(i int, ids []int))) [][]int {
	out := make([][]int, n)
	var mu sync.Mutex
	stream(func(i int, ids []int) {
		cp := make([]int, len(ids))
		copy(cp, ids)
		mu.Lock()
		out[i] = cp
		mu.Unlock()
	})
	return out
}

func assertSameIDs(t *testing.T, label string, got, want []int) {
	t.Helper()
	got, want = sortedCopy(got), sortedCopy(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d ids, want %d", label, len(got), len(want))
	}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("%s: ids differ at %d: %d vs %d", label, k, got[k], want[k])
		}
	}
}

// TestBruteForceStreamingMatchesSerial pins the native buffer-recycling
// wave path against serial RangeSearch at wave sizes that force buffer
// reuse (wave < number of queries), including one query per wave.
func TestBruteForceStreamingMatchesSerial(t *testing.T) {
	pts := batchTestPoints(300, 16, 11)
	b := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	queries := pts[:60]
	const eps = 0.8
	for _, wave := range []int{0, 1, 7, 60, 1000} {
		got := collectStream(len(queries), func(fn func(int, []int)) {
			b.BatchRangeSearchFuncWorkers(context.Background(), queries, eps, 3, 4, wave, fn)
		})
		for i, q := range queries {
			assertSameIDs(t, "brute force", got[i], b.RangeSearch(q, eps))
		}
	}
}

func TestBruteForceStreamingCountsQueries(t *testing.T) {
	pts := batchTestPoints(100, 8, 12)
	b := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	b.ResetQueries()
	b.BatchRangeSearchFuncWorkers(context.Background(), pts[:37], 0.5, 2, 4, 8, func(int, []int) {})
	if got := b.Queries(); got != 37 {
		t.Errorf("query counter = %d, want 37", got)
	}
}

// TestGenericStreamingHelperCoverTree exercises the package-level
// BatchRangeSearchFunc fallback: CoverTree provides no native streaming
// path, so the helper's generic per-query wave loop serves it.
func TestGenericStreamingHelperCoverTree(t *testing.T) {
	pts := batchTestPoints(200, 8, 13)
	ct := NewCoverTree(pts, vecmath.EuclideanDistance, 2.0)
	queries := pts[:40]
	const eps = 1.0
	for _, workers := range []int{0, 1, 4} {
		got := collectStream(len(queries), func(fn func(int, []int)) {
			BatchRangeSearchFunc(context.Background(), ct, queries, eps, workers, 4, 16, fn)
		})
		for i, q := range queries {
			assertSameIDs(t, "cover tree", got[i], ct.RangeSearch(q, eps))
		}
	}
}

// TestGridAndKMeansTreeStreaming pins the approximate backends' streaming
// wave paths to their serial queries.
func TestGridAndKMeansTreeStreaming(t *testing.T) {
	pts := batchTestPoints(200, 6, 14)
	queries := pts[:25]

	g := NewGrid(pts, 1.0, 0.5)
	got := collectStream(len(queries), func(fn func(int, []int)) {
		g.BatchApproxRangeSearchFunc(context.Background(), queries, 1.0, 3, 4, 8, fn)
	})
	for i, q := range queries {
		assertSameIDs(t, "grid", got[i], g.ApproxRangeSearch(q, 1.0))
	}

	kt := NewKMeansTree(pts, vecmath.CosineDistanceUnit, KMeansTreeConfig{Seed: 1, LeavesRatio: 1})
	got = collectStream(len(queries), func(fn func(int, []int)) {
		kt.BatchRangeSearchApproxFunc(context.Background(), queries, 0.8, 3, 4, 8, fn)
	})
	for i, q := range queries {
		assertSameIDs(t, "kmeans tree", got[i], kt.RangeSearchApprox(q, 0.8))
	}
}

// TestStreamingCancelAbortsWithinOneWave pins the wave engines' cancellation
// contract: a context cancelled mid-wave lets the in-flight wave finish (its
// callbacks all run) and stops at the next wave barrier, so no more than one
// wave of callbacks follows the cancellation. Both the native brute-force
// path and the generic fallback are exercised.
func TestStreamingCancelAbortsWithinOneWave(t *testing.T) {
	pts := batchTestPoints(200, 8, 15)
	const wave = 10
	run := func(label string, stream func(ctx context.Context, fn func(int, []int)) error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var calls atomic.Int64
		err := stream(ctx, func(int, []int) {
			if calls.Add(1) == 3 {
				cancel() // mid-first-wave
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", label, err)
		}
		if got := calls.Load(); got > wave {
			t.Errorf("%s: %d callbacks after mid-wave cancel, want <= one wave (%d)", label, got, wave)
		}
	}
	b := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	run("brute force", func(ctx context.Context, fn func(int, []int)) error {
		return b.BatchRangeSearchFuncWorkers(ctx, pts, 0.8, 2, 2, wave, fn)
	})
	ct := NewCoverTree(pts, vecmath.EuclideanDistance, 2.0)
	run("generic/cover tree", func(ctx context.Context, fn func(int, []int)) error {
		return BatchRangeSearchFunc(ctx, ct, pts, 1.0, 2, 2, wave, fn)
	})
}

// TestWaveProgressHook checks that WithWaveProgress observes every wave and
// that the reported increments sum to the query count.
func TestWaveProgressHook(t *testing.T) {
	pts := batchTestPoints(100, 8, 16)
	b := NewBruteForce(pts, vecmath.CosineDistanceUnit)
	var total atomic.Int64
	waves := 0
	ctx := WithWaveProgress(context.Background(), func(q int) {
		total.Add(int64(q))
		waves++
	})
	if err := b.BatchRangeSearchFuncWorkers(ctx, pts[:37], 0.5, 2, 4, 8, func(int, []int) {}); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 37 {
		t.Errorf("progress total = %d, want 37", total.Load())
	}
	if waves != 5 { // ceil(37/8)
		t.Errorf("progress callbacks = %d, want 5", waves)
	}
}
