// Package telemetry is the repository's dependency-free metrics layer:
// atomic counters, gauges and fixed-bucket latency histograms, collected
// in a Registry that renders the Prometheus text exposition format.
//
// The package exists because every future "faster" claim — a new index
// backend, a SIMD kernel, shard-and-merge — needs a feedback loop measured
// on the serving path, not just in microbenchmarks. internal/serve wires a
// Registry through its HTTP middleware and engines; GET /metrics on
// lafserve scrapes it; cmd/lafload drives load against it and reports the
// latency quantiles the histograms here make derivable.
//
// Design constraints, in order:
//
//   - The write path is wait-free and allocation-free. Counter.Inc,
//     Gauge.Set and Histogram.Observe are single atomic operations (plus a
//     CAS loop for float sums) registered as //lafvet:hotpath, so the
//     hotalloc analyzer rejects any future allocation there. Instruments
//     are resolved once (at route registration, engine construction) and
//     the resolved pointer is what the request path touches.
//   - No dependencies. The exporter writes the Prometheus text format
//     directly — a stable, line-oriented protocol — rather than importing
//     a client library the container may not have.
//   - Scrapes are consistent enough: each series is read atomically;
//     cross-series skew of an in-flight scrape is acceptable (the same
//     contract Prometheus clients provide without locks).
//
// Histograms use fixed upper-bound buckets (DefBuckets spans 100µs–10s for
// request latencies). Quantile estimates interpolate linearly within the
// bucket containing the target rank, so the estimation error is bounded by
// the width of that bucket — the property telemetry tests pin.
package telemetry
