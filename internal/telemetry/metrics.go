package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing series (Prometheus type counter).
// The zero value is ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//lafvet:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotone by contract; negative n is the
// caller's bug and is applied as-is rather than hiding it behind a check
// the hot path would pay for.
//
//lafvet:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a series that goes up and down (Prometheus type gauge), stored
// as float64 bits in one atomic word. The zero value reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
//
//lafvet:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add folds a delta into the gauge under a CAS loop (wait-free in the
// uncontended case, lock-free always).
//
//lafvet:hotpath
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds one.
//
//lafvet:hotpath
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
//
//lafvet:hotpath
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets is the default latency histogram layout, in seconds: roughly
// logarithmic from 100µs to 10s, the band a clustering service's endpoints
// actually occupy (predict ≈ ms, fit ≈ s). Requests beyond 10s land in the
// implicit +Inf bucket.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed cumulative-exportable buckets
// (Prometheus type histogram). Buckets are upper bounds in ascending
// order; an implicit +Inf bucket catches the rest. The write path is a
// linear scan over the bounds (≤ ~16 comparisons) plus three atomic
// operations — no locks, no allocation.
type Histogram struct {
	// bounds are the inclusive upper bounds, ascending, set at construction
	// and immutable afterwards.
	bounds []float64
	// counts[i] counts observations v with v <= bounds[i] (and > the
	// previous bound); counts[len(bounds)] is the +Inf bucket.
	counts []atomic.Int64
	count  atomic.Int64
	// sumBits accumulates the observation sum as float64 bits under CAS.
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (nil selects DefBuckets). Bounds must be strictly increasing; violations
// panic at construction, never on the observe path.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
//
//lafvet:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time read of a histogram, shaped for the
// exporter: Counts are per-bucket (not cumulative) and parallel to Bounds,
// with the final entry the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot reads the histogram. Buckets are read individually (each read
// is atomic); a scrape racing observations may see a sum slightly ahead of
// or behind the buckets, which the text format tolerates by design.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution by locating the bucket holding the target rank and
// interpolating linearly inside it. The estimate therefore lies within the
// bucket containing the true quantile: the absolute error is bounded by
// that bucket's width (for the +Inf bucket, the estimate is the last
// finite bound — a lower bound on the truth). Returns NaN when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Quantile estimates the q-quantile from a snapshot; see
// Histogram.Quantile for the error bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation under the
	// "nearest rank" definition; cum walks the buckets to find it.
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		if cum+c < rank {
			cum += c
			continue
		}
		if i == len(s.Bounds) {
			// +Inf bucket: no upper bound to interpolate toward; report the
			// largest finite bound (or 0 for a bound-less histogram) — a
			// lower bound on the true quantile.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		// Linear interpolation by rank position within the bucket.
		frac := float64(rank-cum) / float64(c)
		return lo + (hi-lo)*frac
	}
	// Unreachable while Count == sum(Counts); degrade to the top bound.
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}
