package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to a series. Within a metric
// family, the set of label names should be consistent (the Prometheus data
// model); the registry does not enforce it, it just renders what it is
// given.
type Label struct {
	Name, Value string
}

// kind is a family's metric type, rendered into the # TYPE line.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Instrument lookups (Counter, Gauge, Histogram, …) are
// get-or-create and intended for setup paths — resolve once, keep the
// pointer; the returned instruments themselves are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is every series sharing one metric name.
type family struct {
	name, help string
	kind       kind
	series     map[string]*series // keyed by rendered label block
	order      []string           // insertion order of label blocks
}

// series is one labeled instrument. Exactly one of the value fields is
// set, matching the family kind; fn-backed series are read at scrape time
// (the bridge to counters other subsystems already maintain).
type series struct {
	labels    string // rendered `{a="b",…}`, or "" for an unlabeled series
	counter   *Counter
	counterFn func() int64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under name with the given labels,
// creating it on first use. Registering the same name as a different
// metric type panics — that is a programming error, not an operational
// condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	var c *Counter
	r.withSeries(name, help, kindCounter, labels, func(s *series) {
		if s.counter == nil {
			s.counter = &Counter{}
		}
		c = s.counter
	})
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for subsystems that already keep their own
// atomic counters (the job engine, the estimator cache). Re-registering
// the same (name, labels) replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.withSeries(name, help, kindCounter, labels, func(s *series) {
		s.counterFn = fn
	})
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	var g *Gauge
	r.withSeries(name, help, kindGauge, labels, func(s *series) {
		if s.gauge == nil {
			s.gauge = &Gauge{}
		}
		g = s.gauge
	})
	return g
}

// GaugeFunc registers a gauge series read from fn at scrape time.
// Re-registering the same (name, labels) replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.withSeries(name, help, kindGauge, labels, func(s *series) {
		s.gaugeFn = fn
	})
}

// Histogram returns the histogram registered under name with the given
// labels, creating it over bounds (nil selects DefBuckets) on first use.
// An existing histogram keeps its original bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	var h *Histogram
	r.withSeries(name, help, kindHistogram, labels, func(s *series) {
		if s.hist == nil {
			s.hist = NewHistogram(bounds)
		}
		h = s.hist
	})
	return h
}

// withSeries resolves (name, labels) to its series and runs init on it, all
// under the registry lock — creating family and series as needed. Series
// fields are only ever written inside init here, so a series is fully
// initialized before any other goroutine (a concurrent get-or-create of the
// same series, or a scrape) can observe it.
func (r *Registry) withSeries(name, help string, k kind, labels []Label, init func(*series)) {
	lb := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	s, ok := f.series[lb]
	if !ok {
		s = &series{labels: lb}
		f.series[lb] = s
		f.order = append(f.order, lb)
	}
	init(s)
}

// renderLabels renders a sorted `{a="b",c="d"}` block ("" when empty).
// Sorting makes the rendered block a canonical key: the same label set in
// any order resolves to the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the text-format escaping rules for label
// values: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series in registration
// order, histograms expanded into cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family structure under the lock, copying each series by
	// value so a concurrent re-registration (CounterFunc/GaugeFunc replace
	// fn under the lock) cannot race the render below. The instrument
	// pointers in the copies are read lock-free afterwards — each
	// instrument is internally atomic.
	type famSnap struct {
		name, help string
		kind       kind
		series     []series
	}
	snaps := make([]famSnap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fs := famSnap{name: f.name, help: f.help, kind: f.kind}
		for _, lb := range f.order {
			fs.series = append(fs.series, *f.series[lb])
		}
		snaps = append(snaps, fs)
	}
	r.mu.Unlock()

	for _, fs := range snaps {
		if fs.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fs.name, fs.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fs.name, fs.kind); err != nil {
			return err
		}
		for i := range fs.series {
			if err := writeSeries(w, fs.name, fs.kind, &fs.series[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series' sample lines from a snapshot copy.
func writeSeries(w io.Writer, name string, k kind, s *series) error {
	switch k {
	case kindCounter:
		v := int64(0)
		switch {
		case s.counterFn != nil:
			v = s.counterFn()
		case s.counter != nil:
			v = s.counter.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, v)
		return err
	case kindGauge:
		v := 0.0
		switch {
		case s.gaugeFn != nil:
			v = s.gaugeFn()
		case s.gauge != nil:
			v = s.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(v))
		return err
	case kindHistogram:
		if s.hist == nil {
			return nil
		}
		snap := s.hist.Snapshot()
		var cum int64
		for i, b := range snap.Bounds {
			cum += snap.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				name, withLE(s.labels, formatFloat(b)), cum); err != nil {
				return err
			}
		}
		cum += snap.Counts[len(snap.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(s.labels, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, snap.Count)
		return err
	}
	return nil
}

// withLE merges the le bucket label into a rendered label block.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — the body behind GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Headers are committed with the first write; a mid-stream error can
		// only abort the connection.
		_ = r.WritePrometheus(w)
	})
}
