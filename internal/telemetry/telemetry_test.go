package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucketing rule: an observation
// lands in the first bucket whose upper bound is >= the value (bounds are
// inclusive), values beyond the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // at the bound: inclusive
		{1.0001, 1}, {2, 1},
		{3, 2}, {4, 2},
		{4.0001, 3}, {100, 3}, // +Inf
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	want := make([]int64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, s.Counts[i], want[i])
		}
	}
	if s.Count != int64(len(cases)) {
		t.Errorf("count = %d, want %d", s.Count, len(cases))
	}
	var sum float64
	for _, c := range cases {
		sum += c.v
	}
	if math.Abs(s.Sum-sum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, sum)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted non-increasing bounds")
		}
	}()
	NewHistogram([]float64{1, 1, 2})
}

// TestQuantileErrorBound is the estimator's accuracy contract: for any
// quantile, the histogram estimate lies within the bucket containing the
// true (nearest-rank) quantile, so the absolute error is bounded by that
// bucket's width. Checked against exact quantiles of a deterministic
// random sample across the default latency buckets.
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram(nil) // DefBuckets
	const n = 20000
	samples := make([]float64, n)
	for i := range samples {
		// Log-uniform over (100µs, 5s): exercises most buckets.
		v := math.Exp(math.Log(1e-4) + rng.Float64()*(math.Log(5)-math.Log(1e-4)))
		samples[i] = v
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(n))) - 1
		truth := samples[rank]
		est := h.Quantile(q)
		// The bucket containing the truth.
		lo, hi := 0.0, math.Inf(1)
		for i, b := range DefBuckets {
			if truth <= b {
				hi = b
				if i > 0 {
					lo = DefBuckets[i-1]
				}
				break
			}
		}
		if est < lo || est > hi {
			t.Errorf("q=%v: estimate %v outside truth's bucket [%v, %v] (truth %v)",
				q, est, lo, hi, truth)
		}
		if math.Abs(est-truth) > hi-lo {
			t.Errorf("q=%v: |%v - %v| exceeds bucket width %v", q, est, truth, hi-lo)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(100) // +Inf bucket only
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("all-overflow quantile = %v, want last finite bound 2", got)
	}
	h2 := NewHistogram([]float64{10})
	h2.Observe(1)
	if got := h2.Quantile(0); got < 0 || got > 10 {
		t.Errorf("q=0 = %v, want within [0, 10]", got)
	}
	if got := h2.Quantile(1); got < 0 || got > 10 {
		t.Errorf("q=1 = %v, want within [0, 10]", got)
	}
}

// TestConcurrentIncrements hammers every instrument from parallel
// goroutines; run under -race this is the lock-freedom proof, and the
// totals must be exact (no lost updates).
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("laf_test_total", "t")
	g := r.Gauge("laf_test_gauge", "t")
	h := r.Histogram("laf_test_seconds", "t", []float64{0.25, 0.5, 0.75})

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(rng.Float64())
			}
		}(int64(w))
	}
	// A concurrent scraper: rendering during writes must be safe.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("concurrent scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	const total = workers * perWorker
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %v, want %d", g.Value(), total)
	}
	s := h.Snapshot()
	if s.Count != total {
		t.Errorf("histogram count = %d, want %d", s.Count, total)
	}
	var bucketSum int64
	for _, n := range s.Counts {
		bucketSum += n
	}
	if bucketSum != total {
		t.Errorf("bucket sum = %d, want %d", bucketSum, total)
	}
}

// TestConcurrentGetOrCreate resolves the same series from parallel
// goroutines while a scraper renders — the per-request lookup pattern the
// HTTP middleware uses for its (endpoint, code) counters. Under -race this
// is the proof that instrument creation is fully inside the registry lock:
// a second Counter allocated after unlock would lose increments here.
func TestConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("laf_goc_total", "t", Label{"code", "200"}).Inc()
				r.Gauge("laf_goc_gauge", "t").Add(1)
				r.Histogram("laf_goc_seconds", "t", nil).Observe(0.01)
				r.CounterFunc("laf_goc_fn_total", "t", func() int64 { return seed })
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("concurrent scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	const total = workers * perWorker
	if got := r.Counter("laf_goc_total", "t", Label{"code", "200"}).Value(); got != total {
		t.Errorf("counter = %d, want %d (lost increments from duplicate instruments)", got, total)
	}
	if got := r.Gauge("laf_goc_gauge", "t").Value(); got != total {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	if got := r.Histogram("laf_goc_seconds", "t", nil).Snapshot().Count; got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
}

// TestPrometheusOutput pins the exposition format: HELP/TYPE lines,
// label rendering and escaping, cumulative histogram buckets, and the
// sorted family order a scraper relies on being stable.
func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("laf_b_total", "b counter", Label{"endpoint", "/v1/jobs"}, Label{"code", "200"}).Add(3)
	r.Gauge("laf_a_gauge", "a gauge").Set(2.5)
	h := r.Histogram("laf_c_seconds", "c histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("laf_d_dynamic", "fn gauge", func() float64 { return 42 })
	r.CounterFunc("laf_e_total", "fn counter", func() int64 { return 7 })
	r.Counter("laf_f_total", "escaped", Label{"path", `a"b\c` + "\n"}).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	wantLines := []string{
		"# HELP laf_a_gauge a gauge",
		"# TYPE laf_a_gauge gauge",
		"laf_a_gauge 2.5",
		"# TYPE laf_b_total counter",
		`laf_b_total{code="200",endpoint="/v1/jobs"} 3`,
		"# TYPE laf_c_seconds histogram",
		`laf_c_seconds_bucket{le="0.1"} 2`,
		`laf_c_seconds_bucket{le="1"} 3`,
		`laf_c_seconds_bucket{le="+Inf"} 4`,
		"laf_c_seconds_sum 5.6",
		"laf_c_seconds_count 4",
		"laf_d_dynamic 42",
		"laf_e_total 7",
		`laf_f_total{path="a\"b\\c\n"} 1`,
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("output missing line %q\n--- got:\n%s", w, out)
		}
	}
	// Families render sorted by name: a before b before c.
	ia, ib, ic := strings.Index(out, "laf_a_gauge"), strings.Index(out, "laf_b_total"), strings.Index(out, "laf_c_seconds")
	if !(ia < ib && ib < ic) {
		t.Errorf("families not sorted by name: positions a=%d b=%d c=%d", ia, ib, ic)
	}
}

// TestSeriesIdentity pins get-or-create semantics: same (name, labels) —
// in any label order — is the same instrument; different labels are
// different series under one family; a type conflict panics.
func TestSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("laf_x_total", "x", Label{"a", "1"}, Label{"b", "2"})
	c2 := r.Counter("laf_x_total", "x", Label{"b", "2"}, Label{"a", "1"})
	if c1 != c2 {
		t.Error("label order created distinct series")
	}
	c3 := r.Counter("laf_x_total", "x", Label{"a", "other"})
	if c3 == c1 {
		t.Error("distinct labels shared a series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("laf_x_total", "x")
}
