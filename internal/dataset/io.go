package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary file layout (little endian):
//
//	magic   [4]byte  "LAFD"
//	version uint32   currently 1
//	nameLen uint32, name bytes
//	n       uint32, dim uint32
//	hasLabels uint8
//	vectors n*dim float32
//	labels  n int32 (if hasLabels)
//
// The format is deliberately simple: the datasets are synthetic and
// regenerable, the file is just a cache so experiments across processes see
// identical data.

var magic = [4]byte{'L', 'A', 'F', 'D'}

const formatVersion = 1

// Write serializes the dataset to w.
func (d *Dataset) Write(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	name := []byte(d.Name)
	for _, v := range []uint32{formatVersion, uint32(len(name))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	hasLabels := uint8(0)
	if len(d.TrueLabels) > 0 {
		hasLabels = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(d.Len())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(d.Dim())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, hasLabels); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, vec := range d.Vectors {
		for _, x := range vec {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(x))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	if hasLabels == 1 {
		for _, l := range d.TrueLabels {
			binary.LittleEndian.PutUint32(buf, uint32(int32(l)))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a dataset from r.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("dataset: bad magic %q", m)
	}
	var version, nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != formatVersion {
		return nil, fmt.Errorf("dataset: unsupported format version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("dataset: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var n, dim uint32
	var hasLabels uint8
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &hasLabels); err != nil {
		return nil, err
	}
	if uint64(n)*uint64(dim) > 1<<34 {
		return nil, fmt.Errorf("dataset: implausible size %d x %d", n, dim)
	}
	d := &Dataset{Name: string(name), Vectors: make([][]float32, n)}
	flat := make([]float32, int(n)*int(dim))
	buf := make([]byte, 4)
	for i := range flat {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: reading vectors: %w", err)
		}
		flat[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
	}
	for i := range d.Vectors {
		d.Vectors[i] = flat[i*int(dim) : (i+1)*int(dim) : (i+1)*int(dim)]
	}
	if hasLabels == 1 {
		d.TrueLabels = make([]int, n)
		for i := range d.TrueLabels {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("dataset: reading labels: %w", err)
			}
			d.TrueLabels[i] = int(int32(binary.LittleEndian.Uint32(buf)))
		}
	}
	return d, d.Validate()
}

// Save writes the dataset to a file.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a dataset from a file.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
