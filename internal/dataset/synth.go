package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"lafdbscan/internal/vecmath"
)

// MixtureConfig describes a spherical Gaussian-mixture embedding generator.
// Points are drawn around random unit centers and renormalized, so all
// pairwise similarities live in the bounded angular range the paper targets.
type MixtureConfig struct {
	// N is the total number of points, including noise.
	N int
	// Dim is the vector dimension.
	Dim int
	// Clusters is the number of mixture components.
	Clusters int
	// MinSpread and MaxSpread bound the per-cluster spread parameter
	// s = dim * sigma^2. The expected intra-cluster cosine distance between
	// two members is roughly s / (1 + s), so s ~ 0.7 yields pair distances
	// near 0.4, straddling the paper's epsilon range of 0.5-0.6.
	MinSpread, MaxSpread float64
	// NoiseFrac is the fraction of points drawn uniformly on the sphere.
	// In high dimensions such points are nearly orthogonal to everything
	// (cosine distance ~ 1), so they act as DBSCAN noise at any epsilon in
	// the paper's working range.
	NoiseFrac float64
	// HaloFrac is the fraction of points drawn as sparse halos around the
	// cluster centers (spread several times MaxSpread). Halo points sit at
	// intermediate distances: noise at small epsilon, absorbed — and
	// cluster-bridging — as epsilon grows. This reproduces the percolation
	// behaviour of the paper's Table 2, where raising epsilon from 0.5 to
	// 0.7 collapses the corpus into a single cluster with near-zero noise.
	HaloFrac float64
	// SizeSkew controls the power-law skew of cluster sizes. 0 means equal
	// sizes; larger values produce a few dominant clusters plus a long tail
	// of tiny ones, which is what makes the paper's fully-missed-cluster
	// analysis (Table 6) meaningful.
	SizeSkew float64
	// EffectiveDim, when in (0, Dim), generates all structure in an
	// EffectiveDim-dimensional random subspace embedded into the ambient
	// space. Real neural embeddings famously occupy a low-dimensional
	// manifold inside their nominal dimension; reproducing that is what
	// lets halo points percolate between clusters as epsilon grows (the
	// Table 2 collapse) — in a truly isotropic 768-d sphere no midpoints
	// exist. 0 disables the embedding (fully isotropic generation).
	EffectiveDim int
	// Seed makes generation reproducible.
	Seed int64
}

// GenerateMixture draws a dataset from the config. The result is normalized
// and carries ground-truth component labels (-1 for noise points).
func GenerateMixture(name string, cfg MixtureConfig) *Dataset {
	if cfg.N <= 0 || cfg.Dim <= 0 || cfg.Clusters <= 0 {
		panic(fmt.Sprintf("dataset: invalid mixture config %+v", cfg))
	}
	if cfg.MinSpread <= 0 {
		cfg.MinSpread = 0.3
	}
	if cfg.MaxSpread < cfg.MinSpread {
		cfg.MaxSpread = cfg.MinSpread
	}
	if cfg.NoiseFrac < 0 || cfg.NoiseFrac >= 1 {
		panic(fmt.Sprintf("dataset: noise fraction %v out of [0,1)", cfg.NoiseFrac))
	}
	if cfg.HaloFrac < 0 || cfg.NoiseFrac+cfg.HaloFrac >= 1 {
		panic(fmt.Sprintf("dataset: noise %v + halo %v out of [0,1)", cfg.NoiseFrac, cfg.HaloFrac))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	genDim := cfg.Dim
	var basis [][]float32
	if cfg.EffectiveDim > 0 && cfg.EffectiveDim < cfg.Dim {
		genDim = cfg.EffectiveDim
		basis = orthonormalBasis(genDim, cfg.Dim, rng)
	}

	numNoise := int(float64(cfg.N) * cfg.NoiseFrac)
	numHalo := int(float64(cfg.N) * cfg.HaloFrac)
	numClustered := cfg.N - numNoise - numHalo
	sizes := clusterSizes(numClustered, cfg.Clusters, cfg.SizeSkew, rng)

	d := &Dataset{
		Name:       name,
		Vectors:    make([][]float32, 0, cfg.N),
		TrueLabels: make([]int, 0, cfg.N),
	}
	emit := func(v []float32, label int) {
		if basis != nil {
			v = embed(v, basis)
		}
		d.Vectors = append(d.Vectors, v)
		d.TrueLabels = append(d.TrueLabels, label)
	}
	centers := make([][]float32, len(sizes))
	for k, size := range sizes {
		centers[k] = vecmath.RandomUnit(genDim, rng)
		// Square-of-uniform shaping skews cluster spreads toward the tight
		// end, giving the corpus a mix of compact duplicate-style groups
		// (which the blocking baselines can exploit) and loose topical
		// clusters — the texture of real embedding corpora.
		u := rng.Float64()
		spread := cfg.MinSpread + u*u*(cfg.MaxSpread-cfg.MinSpread)
		sigma := math.Sqrt(spread / float64(genDim))
		for i := 0; i < size; i++ {
			emit(vecmath.PerturbOnSphere(centers[k], sigma, rng), k)
		}
	}
	for i := 0; i < numHalo; i++ {
		center := centers[rng.Intn(len(centers))]
		// Spread 2x-8x the cluster maximum: far enough to be noise at the
		// paper's small epsilons, close enough to bridge as epsilon grows.
		spread := cfg.MaxSpread * (2 + 6*rng.Float64())
		sigma := math.Sqrt(spread / float64(genDim))
		emit(vecmath.PerturbOnSphere(center, sigma, rng), -1)
	}
	for i := 0; i < numNoise; i++ {
		emit(vecmath.RandomUnit(genDim, rng), -1)
	}
	shuffle(d, rng)
	return d
}

// orthonormalBasis returns k orthonormal vectors of the given dimension
// (Gram-Schmidt over Gaussian samples). Embedding through it preserves all
// pairwise inner products, so the generated geometry carries over exactly.
func orthonormalBasis(k, dim int, rng *rand.Rand) [][]float32 {
	basis := make([][]float32, k)
	for i := range basis {
		v := vecmath.RandomGaussian(dim, 0, 1, rng)
		for _, prev := range basis[:i] {
			proj := float32(vecmath.Dot(v, prev))
			vecmath.AXPY(-proj, prev, v)
		}
		basis[i] = vecmath.Normalize(v)
	}
	return basis
}

// embed maps a genDim-vector into the ambient space spanned by basis.
func embed(z []float32, basis [][]float32) []float32 {
	out := make([]float32, len(basis[0]))
	for i, zi := range z {
		vecmath.AXPY(zi, basis[i], out)
	}
	return out
}

// clusterSizes splits total points into k sizes following a power-law with
// the given skew. Every cluster receives at least one point.
func clusterSizes(total, k int, skew float64, rng *rand.Rand) []int {
	if k > total {
		k = total
	}
	weights := make([]float64, k)
	var sum float64
	for i := range weights {
		// rank-based power law: weight ~ 1 / (rank+1)^skew, jittered so
		// repeated generations are not identical across seeds.
		w := 1 / math.Pow(float64(i+1), skew)
		w *= 0.5 + rng.Float64()
		weights[i] = w
		sum += w
	}
	sizes := make([]int, k)
	assigned := 0
	for i := range sizes {
		sizes[i] = 1 + int(float64(total-k)*weights[i]/sum)
		assigned += sizes[i]
	}
	// Distribute rounding remainder (positive or negative) over the largest
	// clusters.
	for assigned < total {
		sizes[0]++
		assigned++
	}
	for i := 0; assigned > total && i < len(sizes); i = (i + 1) % len(sizes) {
		if sizes[i] > 1 {
			sizes[i]--
			assigned--
		}
	}
	return sizes
}

func shuffle(d *Dataset, rng *rand.Rand) {
	rng.Shuffle(len(d.Vectors), func(i, j int) {
		d.Vectors[i], d.Vectors[j] = d.Vectors[j], d.Vectors[i]
		if len(d.TrueLabels) > 0 {
			d.TrueLabels[i], d.TrueLabels[j] = d.TrueLabels[j], d.TrueLabels[i]
		}
	})
}

// GloVeLike generates a dataset mirroring the Glove-150k family: 200-dim
// word-embedding-style vectors, many medium clusters, moderate noise.
func GloVeLike(n int, seed int64) *Dataset {
	return GenerateMixture(fmt.Sprintf("GloVe-like-%s", humanCount(n)), MixtureConfig{
		N: n, Dim: 200, Clusters: clusterCountFor(n, 60),
		MinSpread: 0.08, MaxSpread: 1.0,
		NoiseFrac: 0.15, HaloFrac: 0.25, SizeSkew: 1.1,
		EffectiveDim: 48, Seed: seed,
	})
}

// MSLike generates a dataset mirroring the MS MARCO passage-embedding
// family: 768-dim vectors with a more complex distribution (wider spreads,
// more components, more noise), which is what degrades every method on
// MS-150k in the paper.
func MSLike(n int, seed int64) *Dataset {
	return GenerateMixture(fmt.Sprintf("MS-like-%s", humanCount(n)), MixtureConfig{
		N: n, Dim: 768, Clusters: clusterCountFor(n, 90),
		MinSpread: 0.08, MaxSpread: 1.2,
		NoiseFrac: 0.15, HaloFrac: 0.25, SizeSkew: 1.3,
		EffectiveDim: 64, Seed: seed,
	})
}

// NYTLikeConfig controls the bag-of-words generator.
type NYTLikeConfig struct {
	N         int
	Vocab     int // vocabulary size before projection
	Topics    int // latent topics = expected clusters
	DocLen    int // tokens per document
	OutDim    int // projected dimension (paper: 256)
	NoiseFrac float64
	Seed      int64
}

// NYTLike generates a dataset mirroring NYT-150k: sparse topic-model
// bag-of-words count vectors, Gaussian-random-projected to OutDim (the
// ANN-benchmark preprocessing the paper follows) and normalized.
func NYTLike(cfg NYTLikeConfig) *Dataset {
	if cfg.N <= 0 {
		panic("dataset: NYTLike needs N > 0")
	}
	if cfg.Vocab == 0 {
		cfg.Vocab = 2000
	}
	if cfg.Topics == 0 {
		cfg.Topics = clusterCountFor(cfg.N, 40)
	}
	if cfg.DocLen == 0 {
		cfg.DocLen = 60
	}
	if cfg.OutDim == 0 {
		cfg.OutDim = 256
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	proj := vecmath.NewProjection(cfg.Vocab, cfg.OutDim, rng)

	// Each topic concentrates its mass on a small random slice of the
	// vocabulary with Zipfian within-topic frequencies; documents sample
	// tokens from their topic with a little global smoothing.
	const topicWords = 80
	topics := make([][]int, cfg.Topics)
	for t := range topics {
		topics[t] = rng.Perm(cfg.Vocab)[:topicWords]
	}

	d := &Dataset{
		Name:       fmt.Sprintf("NYT-like-%s", humanCount(cfg.N)),
		Vectors:    make([][]float32, 0, cfg.N),
		TrueLabels: make([]int, 0, cfg.N),
	}
	numNoise := int(float64(cfg.N) * cfg.NoiseFrac)
	counts := make(map[int]float32, cfg.DocLen)
	emit := func(label int) {
		clear(counts)
		for w := 0; w < cfg.DocLen; w++ {
			var token int
			if label >= 0 && rng.Float64() > 0.1 {
				// Zipfian rank within the topic word list.
				rank := int(float64(topicWords) * math.Pow(rng.Float64(), 2.5))
				token = topics[label][rank]
			} else {
				token = rng.Intn(cfg.Vocab)
			}
			counts[token]++
		}
		indices := make([]int, 0, len(counts))
		values := make([]float32, 0, len(counts))
		for idx, c := range counts {
			indices = append(indices, idx)
			// sub-linear TF weighting, standard for bag-of-words retrieval
			values = append(values, float32(math.Log1p(float64(c))))
		}
		v := proj.ApplySparse(indices, values)
		vecmath.Normalize(v)
		d.Vectors = append(d.Vectors, v)
		d.TrueLabels = append(d.TrueLabels, label)
	}
	for i := 0; i < cfg.N-numNoise; i++ {
		emit(rng.Intn(cfg.Topics))
	}
	for i := 0; i < numNoise; i++ {
		emit(-1)
	}
	shuffle(d, rng)
	return d
}

// clusterCountFor scales a base cluster count sub-linearly with n so that
// growing the dataset densifies clusters (the paper's Table 2 shows noise
// ratio falling with scale at fixed epsilon/tau).
func clusterCountFor(n, base int) int {
	k := int(float64(base) * math.Sqrt(float64(n)/4000))
	if k < 4 {
		k = 4
	}
	return k
}

func humanCount(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	if n >= 1000 {
		return fmt.Sprintf("%.1fk", float64(n)/1000)
	}
	return fmt.Sprintf("%d", n)
}

// TwoBlobs is a tiny deterministic generator used by unit tests: two tight
// antipodal clusters of the given size plus a few orthogonal noise points.
// With epsilon around 0.3 and tau <= size it produces exactly two clusters.
func TwoBlobs(size int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	const dim = 16
	a := vecmath.RandomUnit(dim, rng)
	b := vecmath.Scale(-1, vecmath.Clone(a))
	d := &Dataset{Name: "two-blobs"}
	for i := 0; i < size; i++ {
		d.Vectors = append(d.Vectors, vecmath.PerturbOnSphere(a, 0.01, rng))
		d.TrueLabels = append(d.TrueLabels, 0)
		d.Vectors = append(d.Vectors, vecmath.PerturbOnSphere(b, 0.01, rng))
		d.TrueLabels = append(d.TrueLabels, 1)
	}
	// noise: vectors orthogonal to the a/b axis, far from both blobs
	for i := 0; i < 3; i++ {
		v := vecmath.RandomUnit(dim, rng)
		// project out the component along a to push it near the equator
		proj := float32(vecmath.Dot(v, a))
		vecmath.AXPY(-proj, a, v)
		vecmath.Normalize(v)
		d.Vectors = append(d.Vectors, v)
		d.TrueLabels = append(d.TrueLabels, -1)
	}
	return d
}
