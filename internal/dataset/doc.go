// Package dataset provides the vector dataset container used throughout the
// repository and synthetic generators that stand in for the paper's three
// corpus families (NYTimes bag-of-words, GloVe word embeddings and MS MARCO
// passage embeddings). The generators reproduce the statistical properties
// the clustering algorithms are sensitive to — unit-norm vectors, bounded
// angular distances, high-density cores separated by sparse regions,
// heavy-tailed cluster sizes and a tunable noise floor — without requiring
// the original corpora or a GPU encoder.
//
// Every generator owns a private rand.Rand seeded from its config — none
// touch the global math/rand source — so generation is deterministic per
// (config, seed) and safe to run concurrently from parallel tests and the
// parallel clustering engine's benchmarks.
package dataset
