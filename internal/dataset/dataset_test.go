package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"lafdbscan/internal/vecmath"
)

func TestValidate(t *testing.T) {
	d := &Dataset{Name: "x", Vectors: [][]float32{{1, 0}, {0, 1}}}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	d.Vectors = append(d.Vectors, []float32{1})
	if err := d.Validate(); err == nil {
		t.Fatal("ragged dataset accepted")
	}
	d.Vectors = d.Vectors[:2]
	d.TrueLabels = []int{0}
	if err := d.Validate(); err == nil {
		t.Fatal("bad label length accepted")
	}
}

func TestLenDim(t *testing.T) {
	var empty Dataset
	if empty.Len() != 0 || empty.Dim() != 0 {
		t.Error("empty dataset has nonzero shape")
	}
	d := &Dataset{Vectors: [][]float32{{1, 2, 3}}}
	if d.Len() != 1 || d.Dim() != 3 {
		t.Errorf("Len/Dim = %d/%d", d.Len(), d.Dim())
	}
}

func TestNormalize(t *testing.T) {
	d := &Dataset{Vectors: [][]float32{{3, 4}, {0, 2}}}
	if d.IsNormalized(1e-6) {
		t.Fatal("unnormalized dataset reported normalized")
	}
	d.Normalize()
	if !d.IsNormalized(1e-6) {
		t.Fatal("Normalize did not normalize")
	}
}

func TestSubsetAndSample(t *testing.T) {
	d := &Dataset{
		Name:       "base",
		Vectors:    [][]float32{{1}, {2}, {3}, {4}},
		TrueLabels: []int{0, 1, 2, 3},
	}
	s := d.Subset("sub", []int{3, 1})
	if s.Len() != 2 || s.Vectors[0][0] != 4 || s.TrueLabels[1] != 1 {
		t.Errorf("Subset wrong: %+v", s)
	}
	rng := rand.New(rand.NewSource(1))
	sm := d.Sample("s", 10, rng)
	if sm.Len() != 4 {
		t.Errorf("Sample capped incorrectly: %d", sm.Len())
	}
}

func TestSplitDisjointCover(t *testing.T) {
	d := GloVeLike(200, 5)
	rng := rand.New(rand.NewSource(9))
	train, test, err := d.Split(0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split sizes %d+%d != %d", train.Len(), test.Len(), d.Len())
	}
	if train.Len() != 160 {
		t.Errorf("train size %d, want 160", train.Len())
	}
	seen := make(map[*float32]bool)
	for _, v := range train.Vectors {
		seen[&v[0]] = true
	}
	for _, v := range test.Vectors {
		if seen[&v[0]] {
			t.Fatal("train and test share a row")
		}
	}
}

func TestSplitRejectsBadFractions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := TwoBlobs(3, 1)
	for _, frac := range []float64{-0.5, 0, 1, 1.5} {
		if _, _, err := d.Split(frac, rng); err == nil {
			t.Errorf("train fraction %v accepted", frac)
		}
	}
	// In range, but rounding to an empty train subset on a tiny dataset.
	if _, _, err := d.Split(0.01, rng); err == nil {
		t.Error("empty train subset accepted")
	}
}

func TestGenerateMixtureShape(t *testing.T) {
	d := GenerateMixture("m", MixtureConfig{N: 500, Dim: 32, Clusters: 7, NoiseFrac: 0.2, SizeSkew: 1, Seed: 42})
	if d.Len() != 500 || d.Dim() != 32 {
		t.Fatalf("shape %dx%d", d.Len(), d.Dim())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.IsNormalized(1e-5) {
		t.Fatal("mixture not normalized")
	}
	noise := 0
	labels := make(map[int]bool)
	for _, l := range d.TrueLabels {
		if l == -1 {
			noise++
		} else {
			labels[l] = true
		}
	}
	if noise != 100 {
		t.Errorf("noise count %d, want 100", noise)
	}
	if len(labels) != 7 {
		t.Errorf("distinct clusters %d, want 7", len(labels))
	}
}

func TestGenerateMixtureDeterministic(t *testing.T) {
	a := GenerateMixture("a", MixtureConfig{N: 100, Dim: 8, Clusters: 3, Seed: 7})
	b := GenerateMixture("b", MixtureConfig{N: 100, Dim: 8, Clusters: 3, Seed: 7})
	for i := range a.Vectors {
		for j := range a.Vectors[i] {
			if a.Vectors[i][j] != b.Vectors[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
}

func TestClusterSizesSumAndPositive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 50 + r.Intn(500)
		k := 1 + r.Intn(20)
		sizes := clusterSizes(total, k, 1.2, r)
		sum := 0
		for _, s := range sizes {
			if s < 1 {
				return false
			}
			sum += s
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClusterSizesMoreClustersThanPoints(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	sizes := clusterSizes(3, 10, 1, r)
	if len(sizes) != 3 {
		t.Errorf("got %d clusters for 3 points", len(sizes))
	}
}

func TestMixtureClusterGeometry(t *testing.T) {
	// Points of the same tight component must be much closer than points of
	// different components.
	d := GenerateMixture("g", MixtureConfig{
		N: 300, Dim: 64, Clusters: 5, MinSpread: 0.2, MaxSpread: 0.3, Seed: 3,
	})
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < d.Len(); i += 3 {
		for j := i + 1; j < d.Len(); j += 7 {
			dist := vecmath.CosineDistanceUnit(d.Vectors[i], d.Vectors[j])
			if d.TrueLabels[i] == d.TrueLabels[j] {
				intra += dist
				nIntra++
			} else {
				inter += dist
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Skip("sampling missed a pair class")
	}
	if intra/float64(nIntra) >= inter/float64(nInter) {
		t.Errorf("intra %v >= inter %v", intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestFamilyGenerators(t *testing.T) {
	for _, d := range []*Dataset{GloVeLike(150, 1), MSLike(150, 1), NYTLike(NYTLikeConfig{N: 150, Seed: 1, NoiseFrac: 0.1})} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if d.Len() != 150 {
			t.Errorf("%s: len %d", d.Name, d.Len())
		}
		if !d.IsNormalized(1e-4) {
			t.Errorf("%s: not normalized", d.Name)
		}
	}
	if GloVeLike(150, 1).Dim() != 200 {
		t.Error("GloVeLike dim")
	}
	if MSLike(150, 1).Dim() != 768 {
		t.Error("MSLike dim")
	}
	if NYTLike(NYTLikeConfig{N: 10, Seed: 1}).Dim() != 256 {
		t.Error("NYTLike dim")
	}
}

func TestNYTLikeTopicsAreClustered(t *testing.T) {
	d := NYTLike(NYTLikeConfig{N: 200, Topics: 4, Seed: 2})
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < d.Len(); i += 2 {
		for j := i + 1; j < d.Len(); j += 5 {
			dist := vecmath.CosineDistanceUnit(d.Vectors[i], d.Vectors[j])
			if d.TrueLabels[i] == d.TrueLabels[j] && d.TrueLabels[i] >= 0 {
				intra += dist
				nIntra++
			} else if d.TrueLabels[i] != d.TrueLabels[j] {
				inter += dist
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Skip("sampling missed a pair class")
	}
	if intra/float64(nIntra) >= inter/float64(nInter) {
		t.Errorf("NYT topics not separated: intra %v inter %v", intra/float64(nIntra), inter/float64(nInter))
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[int]string{500: "500", 1000: "1k", 1500: "1.5k", 150000: "150k"}
	for n, want := range cases {
		if got := humanCount(n); got != want {
			t.Errorf("humanCount(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestTwoBlobs(t *testing.T) {
	d := TwoBlobs(10, 1)
	if d.Len() != 23 {
		t.Fatalf("TwoBlobs len %d, want 23", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripIO(t *testing.T) {
	d := GloVeLike(50, 3)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Len() != d.Len() || got.Dim() != d.Dim() {
		t.Fatalf("round trip shape mismatch: %s %dx%d", got.Name, got.Len(), got.Dim())
	}
	for i := range d.Vectors {
		if got.TrueLabels[i] != d.TrueLabels[i] {
			t.Fatalf("label %d mismatch", i)
		}
		for j := range d.Vectors[i] {
			if got.Vectors[i][j] != d.Vectors[i][j] {
				t.Fatalf("vector (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestRoundTripIONoLabels(t *testing.T) {
	d := &Dataset{Name: "nl", Vectors: [][]float32{{1, 2}, {3, 4}}}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.TrueLabels) != 0 {
		t.Error("labels materialized from nothing")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a dataset file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// correct magic, bad version
	if _, err := Read(bytes.NewReader([]byte{'L', 'A', 'F', 'D', 9, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := TwoBlobs(5, 9)
	path := filepath.Join(t.TempDir(), "blobs.lafd")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("loaded %d points, want %d", got.Len(), d.Len())
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.lafd")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// TestGenerationDeterministicUnderConcurrency pins the property the
// parallel engine and parallel test runs rely on: every generator owns a
// private seeded rand.Rand (no global math/rand state), so identical
// configs produce bit-identical datasets even when many generators run at
// once. Run with -race to catch any future slide back to shared state.
func TestGenerationDeterministicUnderConcurrency(t *testing.T) {
	gen := func() []*Dataset {
		return []*Dataset{
			GloVeLike(120, 5),
			MSLike(100, 6),
			NYTLike(NYTLikeConfig{N: 100, Seed: 7, NoiseFrac: 0.1}),
		}
	}
	reference := gen()
	const runs = 8
	got := make([][]*Dataset, runs)
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			got[r] = gen()
		}(r)
	}
	wg.Wait()
	for r, ds := range got {
		for k, d := range ds {
			ref := reference[k]
			if d.Len() != ref.Len() {
				t.Fatalf("run %d %s: %d points, want %d", r, d.Name, d.Len(), ref.Len())
			}
			for i := range ref.Vectors {
				if d.TrueLabels[i] != ref.TrueLabels[i] {
					t.Fatalf("run %d %s: label[%d] differs", r, d.Name, i)
				}
				for j := range ref.Vectors[i] {
					if d.Vectors[i][j] != ref.Vectors[i][j] {
						t.Fatalf("run %d %s: vector[%d][%d] differs", r, d.Name, i, j)
					}
				}
			}
		}
	}
}
