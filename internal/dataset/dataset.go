package dataset

import (
	"fmt"
	"math/rand"

	"lafdbscan/internal/vecmath"
)

// Dataset is an immutable-by-convention collection of dense vectors plus
// optional generator-side ground-truth component labels (-1 for points drawn
// from the noise floor). The clustering experiments never read TrueLabels;
// they use exact DBSCAN output as ground truth, exactly as the paper does.
type Dataset struct {
	// Name identifies the dataset in reports, e.g. "MS-like-4k".
	Name string
	// Vectors holds one row per point. All rows share the same dimension.
	Vectors [][]float32
	// TrueLabels optionally records the generating mixture component per
	// point; len(TrueLabels) is either 0 or len(Vectors).
	TrueLabels []int
}

// Len returns the number of points.
func (d *Dataset) Len() int { return len(d.Vectors) }

// Dim returns the vector dimension, or 0 for an empty dataset.
func (d *Dataset) Dim() int {
	if len(d.Vectors) == 0 {
		return 0
	}
	return len(d.Vectors[0])
}

// Validate checks structural invariants: consistent dimensions and label
// length. It returns a descriptive error rather than panicking so callers
// loading untrusted files can surface the problem.
func (d *Dataset) Validate() error {
	dim := d.Dim()
	for i, v := range d.Vectors {
		if len(v) != dim {
			return fmt.Errorf("dataset %q: vector %d has dimension %d, want %d", d.Name, i, len(v), dim)
		}
	}
	if len(d.TrueLabels) != 0 && len(d.TrueLabels) != len(d.Vectors) {
		return fmt.Errorf("dataset %q: %d labels for %d vectors", d.Name, len(d.TrueLabels), len(d.Vectors))
	}
	return nil
}

// Normalize scales every vector to unit norm in place, matching the paper's
// preprocessing ("we normalize all the data vectors").
func (d *Dataset) Normalize() {
	for _, v := range d.Vectors {
		vecmath.Normalize(v)
	}
}

// IsNormalized reports whether every vector has unit norm within tol.
func (d *Dataset) IsNormalized(tol float64) bool {
	for _, v := range d.Vectors {
		if !vecmath.IsUnit(v, tol) {
			return false
		}
	}
	return true
}

// Subset returns a new dataset containing the rows at the given indices.
// Vectors are shared, not copied.
func (d *Dataset) Subset(name string, indices []int) *Dataset {
	out := &Dataset{Name: name, Vectors: make([][]float32, len(indices))}
	if len(d.TrueLabels) > 0 {
		out.TrueLabels = make([]int, len(indices))
	}
	for i, idx := range indices {
		out.Vectors[i] = d.Vectors[idx]
		if len(d.TrueLabels) > 0 {
			out.TrueLabels[i] = d.TrueLabels[idx]
		}
	}
	return out
}

// Sample returns a uniform sample (without replacement) of n rows.
func (d *Dataset) Sample(name string, n int, rng *rand.Rand) *Dataset {
	if n > d.Len() {
		n = d.Len()
	}
	perm := rng.Perm(d.Len())[:n]
	return d.Subset(name, perm)
}

// Split partitions the dataset into train and test subsets with the given
// train fraction (the paper uses 8:2). The split is a random permutation
// under rng, so repeated calls with the same seed are reproducible.
//
// trainFrac must lie strictly inside (0, 1), and must round to at least one
// point on each side: fractions at or beyond the boundary used to produce
// an empty train or test subset silently, which surfaced later as a
// confusing estimator-training or clustering failure. Both are reported as
// errors here, at the point of the mistake.
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %v outside (0, 1)", trainFrac)
	}
	cut := int(float64(d.Len()) * trainFrac)
	if cut == 0 || cut == d.Len() {
		return nil, nil, fmt.Errorf("dataset %q: train fraction %v leaves an empty subset for %d points",
			d.Name, trainFrac, d.Len())
	}
	perm := rng.Perm(d.Len())
	train = d.Subset(d.Name+"-train", perm[:cut])
	test = d.Subset(d.Name+"-test", perm[cut:])
	return train, test, nil
}
