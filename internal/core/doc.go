// Package core implements the paper's contribution: LAF, the Learned
// Accelerator Framework for angular-distance DBSCAN-like clustering, and
// the two algorithms built on it, LAF-DBSCAN (Algorithm 1) and
// LAF-DBSCAN++.
//
// LAF is a plugin with three parts:
//
//  1. A cardinality-estimation gate placed before every range query: when
//     the estimator predicts fewer than α·τ neighbors, the point is treated
//     as a "stop point" (non-core or noise) and its range query is skipped.
//  2. A partial-neighbor map E recording, for every predicted stop point,
//     the subset of its true neighbors discovered for free — every executed
//     range query that finds a predicted stop point registers the querying
//     point as its neighbor (Algorithm 2, UpdatePartialNeighbors).
//  3. A post-processing pass (Algorithm 3) that treats any entry of E with
//     at least τ partial neighbors as a detected false negative and merges
//     the clusters its neighbors were split into.
//
// The error factor α tunes the speed/quality trade-off: larger α predicts
// more stop points (faster, lower quality), smaller α fewer (slower,
// higher quality).
package core
