package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"lafdbscan/internal/cardest"
	"lafdbscan/internal/cluster"
	"lafdbscan/internal/vecmath"
)

// ctxCheckEvery is how many range queries (or estimator gates) a sequential
// LAF engine runs between context checks — the sequential analogue of the
// parallel engines' per-wave check, cheap enough to be invisible on the hot
// path.
const ctxCheckEvery = 64

// checkCtx returns ctx.Err() on every ctxCheckEvery-th query (and on the
// first, so a pre-cancelled context never starts work).
func checkCtx(ctx context.Context, queries int) error {
	if queries%ctxCheckEvery == 0 {
		return ctx.Err()
	}
	return nil
}

// PartialNeighbors is the map E of Algorithm 1: predicted stop point id →
// the set of its neighbors discovered by other points' range queries.
type PartialNeighbors map[int]map[int]struct{}

// Ensure adds an empty entry for p when absent (lines 8 and 27 of
// Algorithm 1: "if P not in E then E(P) := ∅").
func (e PartialNeighbors) Ensure(p int) {
	if _, ok := e[p]; !ok {
		e[p] = make(map[int]struct{})
	}
}

// Update is Algorithm 2 (UpdatePartialNeighbors): after a range query for p
// returned neighbors, every neighbor that is a predicted stop point learns
// that p is its neighbor.
func (e PartialNeighbors) Update(p int, neighbors []int) {
	for _, pn := range neighbors {
		if set, ok := e[pn]; ok {
			set[p] = struct{}{}
		}
	}
}

// PostProcess is Algorithm 3 (PostProcessing): detect false-negative stop
// points — entries of E with at least tau partial neighbors — and merge the
// clusters their neighbors were separated into. For each such point a random
// non-noise neighbor's cluster becomes the destination; the clusters of all
// its neighbors merge into it, and the point itself joins it when noise.
//
// labels is modified in place. The returned count is the number of cluster
// merges performed (distinct-cluster unions), reported by the harness.
func PostProcess(labels []int, e PartialNeighbors, tau int, rng *rand.Rand) int {
	uf := cluster.NewUnionFind()
	// Iterate E deterministically so a fixed rng seed reproduces runs.
	points := make([]int, 0, len(e))
	for p := range e {
		points = append(points, p)
	}
	sort.Ints(points)
	merges := 0
	for _, p := range points {
		set := e[p]
		if len(set) < tau {
			continue
		}
		neighbors := make([]int, 0, len(set))
		for q := range set {
			neighbors = append(neighbors, q)
		}
		sort.Ints(neighbors)
		// Randomly select a non-noise neighbor as the destination cluster.
		var nonNoise []int
		for _, q := range neighbors {
			if labels[q] != cluster.Noise {
				nonNoise = append(nonNoise, q)
			}
		}
		if len(nonNoise) == 0 {
			continue // nothing to merge into
		}
		dest := uf.Find(labels[nonNoise[rng.Intn(len(nonNoise))]])
		// Merge the clusters of E(P) into the destination cluster.
		for _, q := range nonNoise {
			if root := uf.Find(labels[q]); root != dest {
				dest = uf.Union(root, dest)
				merges++
			}
		}
		// The detected false-negative core point joins the destination.
		if labels[p] == cluster.Noise {
			labels[p] = dest
		}
	}
	for i, l := range labels {
		if l != cluster.Noise {
			labels[i] = uf.Find(l)
		}
	}
	return merges
}

// Config carries the parameters shared by the LAF-enhanced algorithms.
type Config struct {
	// Eps and Tau are the DBSCAN density parameters.
	Eps float64
	Tau int
	// Alpha is LAF's error factor: a point is predicted core when
	// CardEst(P) >= Alpha*Tau. The paper sets it per dataset (Table 1).
	Alpha float64
	// Estimator predicts range-query cardinalities. Required.
	Estimator cardest.Estimator
	// Metric selects the distance function when no index override is
	// given. The zero value is the paper's cosine distance; Euclidean is
	// the paper's future-work extension (the estimator must have been
	// trained with radii covering the Euclidean value range).
	Metric vecmath.Metric
	// Seed drives post-processing's random destination choice (and the
	// sample in LAF-DBSCAN++).
	Seed int64
	// DisablePostProcessing turns Algorithm 3 off, for ablations.
	DisablePostProcessing bool
	// Workers selects the execution engine: 0 runs the sequential
	// reference implementation (the paper's formulation), any other value
	// runs the parallel engine with that many workers (< 0 selects
	// GOMAXPROCS). The parallel engine gates, queries and merges in
	// batches; its labels match the sequential engine's exactly when
	// post-processing is disabled, and its partial-neighbor map is the
	// complete (traversal-order-free) version — a superset of the
	// sequential one — when it is enabled. The Estimator must be safe for
	// concurrent use (all implementations in internal/cardest are).
	Workers int
	// BatchSize is the number of queries a parallel worker claims at a
	// time; <= 0 selects a load-balancing default. Ignored by the
	// sequential engine.
	BatchSize int
	// WaveSize bounds the parallel engine's neighbor-discovery memory:
	// range queries run in waves of this many and each wave's lists are
	// dropped as soon as their facts are folded in. 0 selects
	// index.DefaultWaveSize; a negative value buffers every neighbor list
	// at once (the pre-wave engine, kept for comparison). Ignored by the
	// sequential engine; labels are identical at every setting.
	WaveSize int
}

func (c *Config) validate(n int) error {
	if c.Estimator == nil {
		return fmt.Errorf("core: nil cardinality estimator")
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("core: alpha must be positive, got %v", c.Alpha)
	}
	if c.Eps <= 0 {
		return fmt.Errorf("core: eps must be positive, got %v", c.Eps)
	}
	if c.Tau < 1 {
		return fmt.Errorf("core: tau must be at least 1, got %d", c.Tau)
	}
	if n == 0 {
		return fmt.Errorf("core: empty dataset")
	}
	return nil
}

// PredictedCoreRatio returns Rc, the fraction of points the estimator
// predicts as core at the given parameters. The paper derives DBSCAN++'s
// sample fraction from it: p = delta + Rc.
func PredictedCoreRatio(points [][]float32, est cardest.Estimator, eps float64, tau int, alpha float64) float64 {
	if len(points) == 0 {
		return 0
	}
	core := 0
	threshold := alpha * float64(tau)
	for _, p := range points {
		if est.Estimate(p, eps) >= threshold {
			core++
		}
	}
	return float64(core) / float64(len(points))
}
