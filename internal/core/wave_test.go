package core

import (
	"fmt"
	"testing"

	"lafdbscan/internal/cluster"
)

// waveSweep is the WaveSize settings the equivalence tests cover: the
// buffer-everything engine, the auto default, one query per wave, and a
// mid-sized wave.
var waveSweep = []int{-1, 0, 1, 16}

// TestParallelLAFDBSCANWaveSizesMatchSequential pins the wave engine to the
// sequential reference with post-processing disabled: labels must be
// identical at every wave size and worker count.
func TestParallelLAFDBSCANWaveSizesMatchSequential(t *testing.T) {
	d, est := parallelLAFData(t)
	base := Config{
		Eps: 0.5, Tau: 4, Alpha: 1.3, Estimator: est, Seed: 3,
		DisablePostProcessing: true,
	}
	seq, err := (&LAFDBSCAN{Points: d.Vectors, Config: base}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, wave := range waveSweep {
		for _, workers := range []int{1, 4} {
			cfg := base
			cfg.Workers = workers
			cfg.BatchSize = 8
			cfg.WaveSize = wave
			par, err := (&LAFDBSCAN{Points: d.Vectors, Config: cfg}).Run()
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("wave=%d/workers=%d", wave, workers)
			if par.RangeQueries != seq.RangeQueries || par.SkippedQueries != seq.SkippedQueries {
				t.Errorf("%s: queries %d/%d skipped, sequential %d/%d",
					name, par.RangeQueries, par.SkippedQueries, seq.RangeQueries, seq.SkippedQueries)
			}
			for i := range seq.Labels {
				if par.Labels[i] != seq.Labels[i] {
					t.Fatalf("%s: label[%d] = %d, sequential %d", name, i, par.Labels[i], seq.Labels[i])
				}
			}
		}
	}
}

// TestParallelLAFDBSCANWavePostProcessingDeterministic asserts the full
// pipeline (post-processing enabled) yields one labeling no matter the wave
// size or worker count: the complete partial-neighbor map is order-free, so
// the wave and buffered engines must agree merge for merge.
func TestParallelLAFDBSCANWavePostProcessingDeterministic(t *testing.T) {
	d, est := parallelLAFData(t)
	var ref *cluster.Result
	for _, wave := range waveSweep {
		for _, workers := range []int{1, 3} {
			res, err := (&LAFDBSCAN{Points: d.Vectors, Config: Config{
				Eps: 0.5, Tau: 4, Alpha: 1.3, Estimator: est, Seed: 3,
				Workers: workers, BatchSize: 8, WaveSize: wave,
			}}).Run()
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			name := fmt.Sprintf("wave=%d/workers=%d", wave, workers)
			if res.PostMerges != ref.PostMerges {
				t.Errorf("%s: %d merges, want %d", name, res.PostMerges, ref.PostMerges)
			}
			for i := range ref.Labels {
				if res.Labels[i] != ref.Labels[i] {
					t.Fatalf("%s: label[%d] differs", name, i)
				}
			}
		}
	}
}

// TestParallelLAFDBSCANPPWaveSizesMatchSequential is the same pin for
// LAF-DBSCAN++: same seed selects the same sample, and with post-processing
// disabled the labels must be identical at every wave size.
func TestParallelLAFDBSCANPPWaveSizesMatchSequential(t *testing.T) {
	d, est := parallelLAFData(t)
	base := Config{
		Eps: 0.5, Tau: 4, Alpha: 1.0, Estimator: est, Seed: 5,
		DisablePostProcessing: true,
	}
	seq, err := (&LAFDBSCANPP{Points: d.Vectors, P: 0.5, Config: base}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, wave := range waveSweep {
		for _, workers := range []int{1, 4} {
			cfg := base
			cfg.Workers = workers
			cfg.WaveSize = wave
			par, err := (&LAFDBSCANPP{Points: d.Vectors, P: 0.5, Config: cfg}).Run()
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("wave=%d/workers=%d", wave, workers)
			if par.RangeQueries != seq.RangeQueries || par.SkippedQueries != seq.SkippedQueries {
				t.Errorf("%s: query accounting differs", name)
			}
			for i := range seq.Labels {
				if par.Labels[i] != seq.Labels[i] {
					t.Fatalf("%s: label[%d] = %d, sequential %d", name, i, par.Labels[i], seq.Labels[i])
				}
			}
		}
	}
}
