package core

import (
	"math/rand"
	"time"

	"lafdbscan/internal/cluster"
	"lafdbscan/internal/index"
)

// This file holds the multi-core engines behind LAFDBSCAN.Run and
// LAFDBSCANPP.Run when Config.Workers != 0. The sequential formulations
// interleave gating, querying and labeling point-by-point, but none of the
// three depends on traversal order:
//
//   - the estimator gate is a pure per-point predicate,
//   - the range queries of the predicted-core points are independent,
//   - clusters are the ε-connected components of the actual core points,
//     with the same border/noise rules the parallel DBSCAN driver resolves.
//
// So the parallel engines run gate → batched queries → lock-free merge →
// sequential label resolution, and produce labels identical to their
// sequential counterparts when post-processing is disabled. With
// post-processing enabled the engines differ in one deliberate way: the
// sequential traversal only records a partial neighbor into E when the stop
// point was discovered before the querying point ran (Algorithm 2 updates
// existing entries only), so its E depends on visit order; the parallel
// engines register every predicted stop point first and then apply every
// executed query, yielding the complete, order-free map — a superset of the
// sequential one, which can only give Algorithm 3 more repair evidence.

// poolParams maps the Config knobs onto the index-layer worker-pool
// arguments, where <= 0 means "auto" (GOMAXPROCS / default grain).
func poolParams(cfg Config) (workers, grain int) {
	return index.AutoWorkers(cfg.Workers), cfg.BatchSize
}

// gateAll evaluates the estimator gate for the points at ids in parallel
// and returns the predicted-core mask, aligned with ids.
func gateAll(points [][]float32, ids []int, cfg Config, workers, grain int) []bool {
	threshold := cfg.Alpha * float64(cfg.Tau)
	predicted := make([]bool, len(ids))
	index.ForEach(len(ids), workers, grain, func(k int) {
		predicted[k] = cfg.Estimator.Estimate(points[ids[k]], cfg.Eps) >= threshold
	})
	return predicted
}

// runParallel is LAF-DBSCAN's multi-core engine.
func (l *LAFDBSCAN) runParallel(idx index.RangeSearcher) (*cluster.Result, error) {
	cfg := l.Config
	n := len(l.Points)
	workers, grain := poolParams(cfg)

	start := time.Now()
	res := &cluster.Result{Algorithm: "LAF-DBSCAN"}

	// Phase 0: estimator gate for every point (lines 6-9 and 22-27 of
	// Algorithm 1, hoisted out of the traversal).
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	predictedCore := gateAll(l.Points, all, cfg, workers, grain)
	queried := make([]int, 0, n)
	for i, pc := range predictedCore {
		if pc {
			queried = append(queried, i)
		}
	}
	res.RangeQueries = len(queried)
	res.SkippedQueries = n - len(queried)

	// Phase 1: batched range queries for the predicted-core points only.
	qpts := make([][]float32, len(queried))
	for k, id := range queried {
		qpts[k] = l.Points[id]
	}
	results := index.BatchRangeSearch(idx, qpts, cfg.Eps, workers, grain)
	neighbors := make([][]int, n)
	core := make([]bool, n)
	for k, id := range queried {
		neighbors[id] = results[k]
		core[id] = len(results[k]) >= cfg.Tau
	}

	// Phase 2: lock-free merge of ε-connected core points.
	uf := cluster.NewAtomicUnionFind(n)
	index.ForEach(n, workers, grain, func(p int) {
		if !core[p] {
			return
		}
		for _, q := range neighbors[p] {
			if core[q] && q != p {
				uf.Union(p, q)
			}
		}
	})

	// Phase 3: sequential label resolution, same rules as ParallelDBSCAN.
	res.Labels = cluster.ResolveCoreLabels(neighbors, core, uf)

	// Complete partial-neighbor map: every stop point, every executed query.
	if !cfg.DisablePostProcessing {
		e := make(PartialNeighbors)
		for i, pc := range predictedCore {
			if !pc {
				e.Ensure(i)
			}
		}
		for _, p := range queried {
			e.Update(p, neighbors[p])
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		res.PostMerges = PostProcess(res.Labels, e, cfg.Tau, rng)
	}
	res.Elapsed = time.Since(start)
	finalize(res)
	return res, nil
}

// runParallel is LAF-DBSCAN++'s multi-core engine. The rng stream is
// consumed in the same order as the sequential engine (sample permutation
// first, post-processing second), so a fixed seed selects the same sample.
func (l *LAFDBSCANPP) runParallel(idx index.RangeSearcher) (*cluster.Result, error) {
	cfg := l.Config
	n := len(l.Points)
	workers, grain := poolParams(cfg)

	start := time.Now()
	res := &cluster.Result{Algorithm: "LAF-DBSCAN++"}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := int(float64(n) * l.P)
	if m < 1 {
		m = 1
	}
	sample := rng.Perm(n)[:m]

	// Parallel gate over the sample, then batched queries for the
	// predicted-core sample points.
	predictedCore := gateAll(l.Points, sample, cfg, workers, grain)
	queried := make([]int, 0, m)
	e := make(PartialNeighbors)
	for k, s := range sample {
		if predictedCore[k] {
			queried = append(queried, s)
		} else {
			e.Ensure(s)
			res.SkippedQueries++
		}
	}
	qpts := make([][]float32, len(queried))
	for k, s := range queried {
		qpts[k] = l.Points[s]
	}
	results := index.BatchRangeSearch(idx, qpts, cfg.Eps, workers, grain)
	res.RangeQueries = len(queried)

	// Core detection preserves sample order, so cluster numbering matches
	// the sequential engine.
	cores := make([]int, 0, len(queried))
	coreNeighbors := make(map[int][]int, len(queried))
	for k, s := range queried {
		e.Update(s, results[k])
		if len(results[k]) >= cfg.Tau {
			cores = append(cores, s)
			coreNeighbors[s] = results[k]
		}
	}

	res.Labels = cluster.ClusterCoresAndAssignWorkers(l.Points, cfg.Eps, cores, coreNeighbors, workers, grain)
	if !cfg.DisablePostProcessing {
		res.PostMerges = PostProcess(res.Labels, e, cfg.Tau, rng)
	}
	res.Elapsed = time.Since(start)
	finalize(res)
	return res, nil
}
