package core

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"lafdbscan/internal/cluster"
	"lafdbscan/internal/index"
)

// This file holds the multi-core engines behind LAFDBSCAN.Run and
// LAFDBSCANPP.Run when Config.Workers != 0. The sequential formulations
// interleave gating, querying and labeling point-by-point, but none of the
// three depends on traversal order:
//
//   - the estimator gate is a pure per-point predicate,
//   - the range queries of the predicted-core points are independent,
//   - clusters are the ε-connected components of the actual core points,
//     with the same border/noise rules the parallel DBSCAN driver resolves.
//
// So the parallel engines run gate → wave-streamed queries → lock-free
// merge folded into each wave → sequential label resolution, and produce
// labels identical to their sequential counterparts when post-processing is
// disabled. With post-processing enabled the engines differ in one
// deliberate way: the sequential traversal only records a partial neighbor
// into E when the stop point was discovered before the querying point ran
// (Algorithm 2 updates existing entries only), so its E depends on visit
// order; the parallel engines register every predicted stop point first and
// then apply every executed query, yielding the complete, order-free map —
// a superset of the sequential one, which can only give Algorithm 3 more
// repair evidence.
//
// Memory: the wave engines (Config.WaveSize >= 0) keep at most one wave of
// neighbor lists in flight, folding core flags and union-find links into
// each wave via cluster.WaveMerger and dropping the lists; only non-core
// stubs (< Tau entries each) and the partial-neighbor map survive. The
// buffer-everything engines of WaveSize < 0 — the original formulation —
// peak at O(Σ|N(p)|) and remain selectable as the comparison baseline.

// poolParams maps the Config knobs onto the index-layer worker-pool
// arguments, where <= 0 means "auto" (GOMAXPROCS / default grain).
func poolParams(cfg Config) (workers, grain int) {
	return index.AutoWorkers(cfg.Workers), cfg.BatchSize
}

// gateAll evaluates the estimator gate for the points at ids in parallel
// and returns the predicted-core mask, aligned with ids.
func gateAll(points [][]float32, ids []int, cfg Config, workers, grain int) []bool {
	threshold := cfg.Alpha * float64(cfg.Tau)
	predicted := make([]bool, len(ids))
	index.ForEach(len(ids), workers, grain, func(k int) {
		predicted[k] = cfg.Estimator.Estimate(points[ids[k]], cfg.Eps) >= threshold
	})
	return predicted
}

// stopStripes guards concurrent Algorithm-2 inserts into the
// partial-neighbor map during a wave. The outer map is fully populated
// before the waves start (concurrent reads are safe); the inner sets are
// striped by stop-point id so unrelated stop points do not contend.
type stopStripes [16]sync.Mutex

// update registers querier p with every predicted stop point in ids
// (PartialNeighbors.Update under the stripes).
func (s *stopStripes) update(e PartialNeighbors, p int, ids []int) {
	for _, q := range ids {
		if set, ok := e[q]; ok {
			mu := &s[q%len(s)]
			mu.Lock()
			set[p] = struct{}{}
			mu.Unlock()
		}
	}
}

// runParallel is LAF-DBSCAN's multi-core engine: the memory-bounded wave
// formulation, or the buffer-everything engine when WaveSize < 0. The
// context is checked between the gate and query phases and at every wave
// barrier inside the query phase.
func (l *LAFDBSCAN) runParallel(ctx context.Context, idx index.RangeSearcher) (*cluster.Result, error) {
	cfg := l.Config
	if cfg.WaveSize < 0 {
		return l.runParallelBuffered(ctx, idx)
	}
	n := len(l.Points)
	workers, grain := poolParams(cfg)

	start := time.Now()
	res := &cluster.Result{Algorithm: "LAF-DBSCAN"}

	// Phase 0: estimator gate for every point (lines 6-9 and 22-27 of
	// Algorithm 1, hoisted out of the traversal).
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	predictedCore := gateAll(l.Points, all, cfg, workers, grain)
	queried := make([]int, 0, n)
	for i, pc := range predictedCore {
		if pc {
			queried = append(queried, i)
		}
	}
	res.RangeQueries = len(queried)
	res.SkippedQueries = n - len(queried)

	// The complete partial-neighbor map: every predicted stop point gets
	// an entry up front, every executed query registers into it from the
	// wave callback. Built even with post-processing disabled, because
	// border assignment of never-queried points reads it too — their own
	// neighbor list does not exist, so the queriers that found them are
	// the only record of their adjacent cores.
	e := make(PartialNeighbors)
	for i, pc := range predictedCore {
		if !pc {
			e.Ensure(i)
		}
	}

	// Phase 1: wave-streamed range queries for the predicted-core points;
	// each result is folded into the merger and the stop map, then dropped.
	qpts := make([][]float32, len(queried))
	for k, id := range queried {
		qpts[k] = l.Points[id]
	}
	m := cluster.NewWaveMerger(n, cfg.Tau)
	var stripes stopStripes
	if err := index.BatchRangeSearchFunc(ctx, idx, qpts, cfg.Eps, workers, grain, cfg.WaveSize,
		func(k int, ids []int) {
			p := queried[k]
			m.Absorb(p, ids)
			stripes.update(e, p, ids)
		}); err != nil {
		return nil, err
	}

	// Phase 2: sequential label resolution, same rules as ParallelDBSCAN.
	res.Labels = m.Resolve(e)

	if !cfg.DisablePostProcessing {
		rng := rand.New(rand.NewSource(cfg.Seed))
		res.PostMerges = PostProcess(res.Labels, e, cfg.Tau, rng)
	}
	res.Core = m.Core()
	res.Elapsed = time.Since(start)
	finalize(res)
	return res, nil
}

// runParallelBuffered is LAF-DBSCAN's buffer-everything engine: all
// neighbor lists are materialized before merging (peak O(Σ|N(p)|)). Kept
// selectable (WaveSize < 0) as the wave engine's comparison baseline.
func (l *LAFDBSCAN) runParallelBuffered(ctx context.Context, idx index.RangeSearcher) (*cluster.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := l.Config
	n := len(l.Points)
	workers, grain := poolParams(cfg)

	start := time.Now()
	res := &cluster.Result{Algorithm: "LAF-DBSCAN"}

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	predictedCore := gateAll(l.Points, all, cfg, workers, grain)
	queried := make([]int, 0, n)
	for i, pc := range predictedCore {
		if pc {
			queried = append(queried, i)
		}
	}
	res.RangeQueries = len(queried)
	res.SkippedQueries = n - len(queried)

	qpts := make([][]float32, len(queried))
	for k, id := range queried {
		qpts[k] = l.Points[id]
	}
	results := index.BatchRangeSearch(idx, qpts, cfg.Eps, workers, grain)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	neighbors := make([][]int, n)
	core := make([]bool, n)
	for k, id := range queried {
		neighbors[id] = results[k]
		core[id] = len(results[k]) >= cfg.Tau
	}

	uf := cluster.NewAtomicUnionFind(n)
	index.ForEach(n, workers, grain, func(p int) {
		if !core[p] {
			return
		}
		for _, q := range neighbors[p] {
			if core[q] && q != p {
				uf.Union(p, q)
			}
		}
	})

	res.Labels = cluster.ResolveCoreLabels(neighbors, core, uf)

	// Complete partial-neighbor map: every stop point, every executed query.
	if !cfg.DisablePostProcessing {
		e := make(PartialNeighbors)
		for i, pc := range predictedCore {
			if !pc {
				e.Ensure(i)
			}
		}
		for _, p := range queried {
			e.Update(p, neighbors[p])
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		res.PostMerges = PostProcess(res.Labels, e, cfg.Tau, rng)
	}
	res.Core = core
	res.Elapsed = time.Since(start)
	finalize(res)
	return res, nil
}

// runParallel is LAF-DBSCAN++'s multi-core engine. The rng stream is
// consumed in the same order as the sequential engine (sample permutation
// first, post-processing second), so a fixed seed selects the same sample.
func (l *LAFDBSCANPP) runParallel(ctx context.Context, idx index.RangeSearcher) (*cluster.Result, error) {
	cfg := l.Config
	if cfg.WaveSize < 0 {
		return l.runParallelBuffered(ctx, idx)
	}
	n := len(l.Points)
	workers, grain := poolParams(cfg)

	start := time.Now()
	res := &cluster.Result{Algorithm: "LAF-DBSCAN++"}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := int(float64(n) * l.P)
	if m < 1 {
		m = 1
	}
	sample := rng.Perm(n)[:m]

	// Parallel gate over the sample, then wave-streamed queries for the
	// predicted-core sample points.
	predictedCore := gateAll(l.Points, sample, cfg, workers, grain)
	queried := make([]int, 0, m)
	e := make(PartialNeighbors)
	for k, s := range sample {
		if predictedCore[k] {
			queried = append(queried, s)
		} else {
			e.Ensure(s)
			res.SkippedQueries++
		}
	}
	qpts := make([][]float32, len(queried))
	for k, s := range queried {
		qpts[k] = l.Points[s]
	}
	res.RangeQueries = len(queried)

	// Core detection and core-core unions fold into the waves; coreMask
	// preserves sample order so cluster numbering matches the sequential
	// engine. Neighbor lists are dropped per wave — the assignment phase
	// below recomputes point-core distances directly and needs no lists,
	// so border stubs are not retained either.
	merger := cluster.NewWaveMerger(n, cfg.Tau)
	merger.SkipStubs()
	var stripes stopStripes
	coreMask := make([]bool, len(queried))
	if err := index.BatchRangeSearchFunc(ctx, idx, qpts, cfg.Eps, workers, grain, cfg.WaveSize,
		func(k int, ids []int) {
			s := queried[k]
			coreMask[k] = merger.Absorb(s, ids)
			stripes.update(e, s, ids)
		}); err != nil {
		return nil, err
	}
	cores := make([]int, 0, len(queried))
	for k, s := range queried {
		if coreMask[k] {
			cores = append(cores, s)
		}
	}

	res.Labels = cluster.ClusterCoresAndAssignUnionWorkers(l.Points, cfg.Eps, cores, merger.UnionFind(), workers, grain)
	if !cfg.DisablePostProcessing {
		res.PostMerges = PostProcess(res.Labels, e, cfg.Tau, rng)
	}
	res.Core = cluster.CoreMask(n, cores)
	res.Elapsed = time.Since(start)
	finalize(res)
	return res, nil
}

// runParallelBuffered is LAF-DBSCAN++'s buffer-everything engine (all
// sample neighbor lists at once), kept selectable via WaveSize < 0.
func (l *LAFDBSCANPP) runParallelBuffered(ctx context.Context, idx index.RangeSearcher) (*cluster.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := l.Config
	n := len(l.Points)
	workers, grain := poolParams(cfg)

	start := time.Now()
	res := &cluster.Result{Algorithm: "LAF-DBSCAN++"}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := int(float64(n) * l.P)
	if m < 1 {
		m = 1
	}
	sample := rng.Perm(n)[:m]

	predictedCore := gateAll(l.Points, sample, cfg, workers, grain)
	queried := make([]int, 0, m)
	e := make(PartialNeighbors)
	for k, s := range sample {
		if predictedCore[k] {
			queried = append(queried, s)
		} else {
			e.Ensure(s)
			res.SkippedQueries++
		}
	}
	qpts := make([][]float32, len(queried))
	for k, s := range queried {
		qpts[k] = l.Points[s]
	}
	results := index.BatchRangeSearch(idx, qpts, cfg.Eps, workers, grain)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.RangeQueries = len(queried)

	// Core detection preserves sample order, so cluster numbering matches
	// the sequential engine.
	cores := make([]int, 0, len(queried))
	coreNeighbors := make(map[int][]int, len(queried))
	for k, s := range queried {
		e.Update(s, results[k])
		if len(results[k]) >= cfg.Tau {
			cores = append(cores, s)
			coreNeighbors[s] = results[k]
		}
	}

	res.Labels = cluster.ClusterCoresAndAssignWorkers(l.Points, cfg.Eps, cores, coreNeighbors, workers, grain)
	if !cfg.DisablePostProcessing {
		res.PostMerges = PostProcess(res.Labels, e, cfg.Tau, rng)
	}
	res.Core = cluster.CoreMask(n, cores)
	res.Elapsed = time.Since(start)
	finalize(res)
	return res, nil
}
