package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"lafdbscan/internal/cluster"
	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// LAFDBSCANPP is LAF-DBSCAN++: DBSCAN++ with LAF's estimator gate in front
// of the per-sample core-detection range queries and the post-processing
// repair pass at the end. It demonstrates that LAF generalizes beyond plain
// DBSCAN to its sampling-based variants; the paper fixes its error factor
// α to 1.0.
type LAFDBSCANPP struct {
	Points [][]float32
	Config Config
	// P is the sample fraction in (0, 1], kept identical to the DBSCAN++
	// baseline in the paper's experiments (p = delta + Rc).
	P float64
	// Index optionally overrides the range-query engine.
	Index index.RangeSearcher
}

// Run clusters the points.
func (l *LAFDBSCANPP) Run() (*cluster.Result, error) { return l.RunContext(context.Background()) }

// RunContext clusters the points under a cancellation context: the
// sequential engine checks it every ctxCheckEvery gate/query decisions, the
// parallel wave engine at each wave barrier (aborting within one wave).
func (l *LAFDBSCANPP) RunContext(ctx context.Context) (*cluster.Result, error) {
	n := len(l.Points)
	if err := l.Config.validate(n); err != nil {
		return nil, err
	}
	if l.P <= 0 || l.P > 1 {
		return nil, fmt.Errorf("core: LAF-DBSCAN++ sample fraction %v out of (0, 1]", l.P)
	}
	idx := l.Index
	if idx == nil {
		idx = index.NewBruteForce(l.Points, vecmath.CosineDistanceUnit)
	}
	if l.Config.Workers != 0 {
		return l.runParallel(ctx, idx)
	}
	cfg := l.Config
	threshold := cfg.Alpha * float64(cfg.Tau)
	est := cfg.Estimator

	start := time.Now()
	res := &cluster.Result{Algorithm: "LAF-DBSCAN++"}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := int(float64(n) * l.P)
	if m < 1 {
		m = 1
	}
	sample := rng.Perm(n)[:m]

	// Core detection within the sample, gated by the estimator. Predicted
	// stop points skip their range query and enter E.
	e := make(PartialNeighbors)
	cores := make([]int, 0, m)
	coreNeighbors := make(map[int][]int, m)
	for _, s := range sample {
		if err := checkCtx(ctx, res.RangeQueries+res.SkippedQueries); err != nil {
			return nil, err
		}
		if est.Estimate(l.Points[s], cfg.Eps) < threshold {
			e.Ensure(s)
			res.SkippedQueries++
			continue
		}
		neighbors := idx.RangeSearch(l.Points[s], cfg.Eps)
		res.RangeQueries++
		e.Update(s, neighbors)
		if len(neighbors) >= cfg.Tau {
			cores = append(cores, s)
			coreNeighbors[s] = neighbors
		}
	}

	res.Labels = cluster.ClusterCoresAndAssign(l.Points, cfg.Eps, cores, coreNeighbors)
	if !cfg.DisablePostProcessing {
		res.PostMerges = PostProcess(res.Labels, e, cfg.Tau, rng)
	}
	res.Core = cluster.CoreMask(n, cores)
	res.Elapsed = time.Since(start)
	finalize(res)
	return res, nil
}
