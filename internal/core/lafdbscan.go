package core

import (
	"context"
	"math/rand"
	"time"

	"lafdbscan/internal/cluster"
	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// LAFDBSCAN is Algorithm 1 of the paper: DBSCAN with LAF's cardinality-
// estimation gate before every range query and the post-processing repair
// pass at the end.
type LAFDBSCAN struct {
	Points [][]float32
	Config Config
	// Index optionally overrides the range-query engine (default: parallel
	// brute force under the unit-cosine metric).
	Index index.RangeSearcher
}

// Run clusters the points.
func (l *LAFDBSCAN) Run() (*cluster.Result, error) { return l.RunContext(context.Background()) }

// RunContext clusters the points under a cancellation context: the
// sequential engine checks it every ctxCheckEvery gate/query decisions, the
// parallel wave engine at each wave barrier (aborting within one wave).
func (l *LAFDBSCAN) RunContext(ctx context.Context) (*cluster.Result, error) {
	n := len(l.Points)
	if err := l.Config.validate(n); err != nil {
		return nil, err
	}
	idx := l.Index
	if idx == nil {
		dist := vecmath.CosineDistanceUnit
		if l.Config.Metric != vecmath.Cosine {
			dist = l.Config.Metric.Func()
		}
		idx = index.NewBruteForce(l.Points, dist)
	}
	if l.Config.Workers != 0 {
		return l.runParallel(ctx, idx)
	}
	cfg := l.Config
	threshold := cfg.Alpha * float64(cfg.Tau)
	est := cfg.Estimator

	start := time.Now()
	res := &cluster.Result{Algorithm: "LAF-DBSCAN", Labels: make([]int, n)}
	labels := res.Labels
	for i := range labels {
		labels[i] = cluster.Undefined
	}
	e := make(PartialNeighbors)
	c := 0
	inSeed := make([]bool, n)
	for p := 0; p < n; p++ {
		if labels[p] != cluster.Undefined {
			continue
		}
		if err := checkCtx(ctx, res.RangeQueries+res.SkippedQueries); err != nil {
			return nil, err
		}
		// LAF gate (lines 6-9): skip the range query for predicted stop
		// points, remembering them in E for post-processing.
		if est.Estimate(l.Points[p], cfg.Eps) < threshold {
			labels[p] = cluster.Noise
			e.Ensure(p)
			res.SkippedQueries++
			continue
		}
		neighbors := idx.RangeSearch(l.Points[p], cfg.Eps)
		res.RangeQueries++
		e.Update(p, neighbors)
		if len(neighbors) < cfg.Tau {
			labels[p] = cluster.Noise
			continue
		}
		c++
		labels[p] = c
		clear(inSeed)
		seeds := make([]int, 0, len(neighbors))
		for _, q := range neighbors {
			if q != p {
				seeds = append(seeds, q)
				inSeed[q] = true
			}
		}
		for k := 0; k < len(seeds); k++ {
			q := seeds[k]
			if labels[q] == cluster.Noise {
				labels[q] = c // border point
			}
			if labels[q] != cluster.Undefined {
				continue
			}
			labels[q] = c
			if err := checkCtx(ctx, res.RangeQueries+res.SkippedQueries); err != nil {
				return nil, err
			}
			// LAF gate on the expansion query (lines 22-27).
			if est.Estimate(l.Points[q], cfg.Eps) >= threshold {
				qn := idx.RangeSearch(l.Points[q], cfg.Eps)
				res.RangeQueries++
				e.Update(q, qn)
				if len(qn) >= cfg.Tau {
					for _, r := range qn {
						if !inSeed[r] {
							seeds = append(seeds, r)
							inSeed[r] = true
						}
					}
				}
			} else {
				e.Ensure(q)
				res.SkippedQueries++
			}
		}
	}
	if !cfg.DisablePostProcessing {
		rng := rand.New(rand.NewSource(cfg.Seed))
		res.PostMerges = PostProcess(labels, e, cfg.Tau, rng)
	}
	res.Elapsed = time.Since(start)
	finalize(res)
	return res, nil
}

// finalize canonicalizes cluster ids to 1..k and recounts clusters.
// Post-processing leaves union-find roots as ids; renumbering keeps reports
// tidy and metric computation unaffected.
func finalize(res *cluster.Result) {
	remap := make(map[int]int)
	next := 0
	for i, l := range res.Labels {
		if l == cluster.Noise {
			continue
		}
		id, ok := remap[l]
		if !ok {
			next++
			id = next
			remap[l] = id
		}
		res.Labels[i] = id
	}
	res.NumClusters = next
}
