package core

import (
	"context"
	"math/rand"
	"sort"
	"time"

	"lafdbscan/internal/cluster"
	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// LAFDBSCAN is Algorithm 1 of the paper: DBSCAN with LAF's cardinality-
// estimation gate before every range query and the post-processing repair
// pass at the end.
type LAFDBSCAN struct {
	Points [][]float32
	Config Config
	// Index optionally overrides the range-query engine (default: parallel
	// brute force under the unit-cosine metric).
	Index index.RangeSearcher
}

// Run clusters the points.
func (l *LAFDBSCAN) Run() (*cluster.Result, error) { return l.RunContext(context.Background()) }

// RunContext clusters the points under a cancellation context: the
// sequential engine checks it every ctxCheckEvery gate/query decisions, the
// parallel wave engine at each wave barrier (aborting within one wave).
func (l *LAFDBSCAN) RunContext(ctx context.Context) (*cluster.Result, error) {
	n := len(l.Points)
	if err := l.Config.validate(n); err != nil {
		return nil, err
	}
	idx := l.Index
	if idx == nil {
		dist := vecmath.CosineDistanceUnit
		if l.Config.Metric != vecmath.Cosine {
			dist = l.Config.Metric.Func()
		}
		idx = index.NewBruteForce(l.Points, dist)
	}
	if l.Config.Workers != 0 {
		return l.runParallel(ctx, idx)
	}
	cfg := l.Config
	threshold := cfg.Alpha * float64(cfg.Tau)
	est := cfg.Estimator

	start := time.Now()
	res := &cluster.Result{Algorithm: "LAF-DBSCAN", Labels: make([]int, n)}
	labels := res.Labels
	for i := range labels {
		labels[i] = cluster.Undefined
	}
	e := make(PartialNeighbors)
	c := 0
	core := make([]bool, n)
	inSeed := make([]bool, n)
	for p := 0; p < n; p++ {
		if labels[p] != cluster.Undefined {
			continue
		}
		if err := checkCtx(ctx, res.RangeQueries+res.SkippedQueries); err != nil {
			return nil, err
		}
		// LAF gate (lines 6-9): skip the range query for predicted stop
		// points, remembering them in E for post-processing.
		if est.Estimate(l.Points[p], cfg.Eps) < threshold {
			labels[p] = cluster.Noise
			e.Ensure(p)
			res.SkippedQueries++
			continue
		}
		neighbors := idx.RangeSearch(l.Points[p], cfg.Eps)
		res.RangeQueries++
		e.Update(p, neighbors)
		if len(neighbors) < cfg.Tau {
			labels[p] = cluster.Noise
			continue
		}
		core[p] = true
		c++
		labels[p] = c
		clear(inSeed)
		seeds := make([]int, 0, len(neighbors))
		for _, q := range neighbors {
			if q != p {
				seeds = append(seeds, q)
				inSeed[q] = true
			}
		}
		for k := 0; k < len(seeds); k++ {
			q := seeds[k]
			if labels[q] == cluster.Noise {
				labels[q] = c // border point
			}
			if labels[q] != cluster.Undefined {
				continue
			}
			labels[q] = c
			if err := checkCtx(ctx, res.RangeQueries+res.SkippedQueries); err != nil {
				return nil, err
			}
			// LAF gate on the expansion query (lines 22-27).
			if est.Estimate(l.Points[q], cfg.Eps) >= threshold {
				qn := idx.RangeSearch(l.Points[q], cfg.Eps)
				res.RangeQueries++
				e.Update(q, qn)
				if len(qn) >= cfg.Tau {
					core[q] = true
					for _, r := range qn {
						if !inSeed[r] {
							seeds = append(seeds, r)
							inSeed[r] = true
						}
					}
				}
			} else {
				e.Ensure(q)
				res.SkippedQueries++
			}
		}
	}
	if !cfg.DisablePostProcessing {
		rng := rand.New(rand.NewSource(cfg.Seed))
		res.PostMerges = PostProcess(labels, e, cfg.Tau, rng)
	}
	res.Core = core
	res.Elapsed = time.Since(start)
	finalize(res)
	return res, nil
}

// finalize canonicalizes cluster ids to 1..k and recounts clusters.
// Post-processing leaves union-find roots as ids; renumbering keeps reports
// tidy and metric computation unaffected. Ids are remapped in ascending
// order of their original value — the identity when no post-processing
// merge rewrote labels — so the relative order the traversal assigned
// clusters in survives renumbering. Out-of-sample prediction relies on that
// monotonicity: a contested border point belongs to its lowest-numbered
// adjacent cluster, before and after finalize. The canonical cluster forest
// is derived here too, after the last label rewrite.
func finalize(res *cluster.Result) {
	ids := make([]int, 0, 16)
	seen := make(map[int]struct{})
	for _, l := range res.Labels {
		if l == cluster.Noise {
			continue
		}
		if _, ok := seen[l]; !ok {
			seen[l] = struct{}{}
			ids = append(ids, l)
		}
	}
	sort.Ints(ids)
	remap := make(map[int]int, len(ids))
	for k, id := range ids {
		remap[id] = k + 1
	}
	for i, l := range res.Labels {
		if l != cluster.Noise {
			res.Labels[i] = remap[l]
		}
	}
	res.NumClusters = len(ids)
	if res.Core != nil {
		res.Forest = cluster.DeriveForest(res.Labels, res.Core)
	}
}
