package core

import (
	"math"
	"math/rand"
	"testing"

	"lafdbscan/internal/cardest"
	"lafdbscan/internal/cluster"
	"lafdbscan/internal/dataset"
	"lafdbscan/internal/index"
	"lafdbscan/internal/metrics"
	"lafdbscan/internal/rmi"
	"lafdbscan/internal/vecmath"
)

func exactEstimator(points [][]float32) cardest.Estimator {
	return &cardest.Exact{Index: index.NewBruteForce(points, vecmath.CosineDistanceUnit)}
}

func evalDataset(seed int64) *dataset.Dataset {
	return dataset.GenerateMixture("eval", dataset.MixtureConfig{
		N: 450, Dim: 32, Clusters: 6, MinSpread: 0.2, MaxSpread: 0.4,
		NoiseFrac: 0.2, SizeSkew: 1.0, Seed: seed,
	})
}

func dbscanTruth(t *testing.T, pts [][]float32, eps float64, tau int) *cluster.Result {
	t.Helper()
	res, err := (&cluster.DBSCAN{Points: pts, Eps: eps, Tau: tau}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The framework's central correctness property: with an exact cardinality
// oracle and alpha = 1, the gate never mispredicts, E stays empty of false
// negatives, and LAF-DBSCAN reproduces DBSCAN exactly.
func TestLAFDBSCANExactOracleMatchesDBSCAN(t *testing.T) {
	d := evalDataset(41)
	for _, params := range []struct {
		eps float64
		tau int
	}{{0.5, 3}, {0.55, 5}, {0.6, 5}} {
		truth := dbscanTruth(t, d.Vectors, params.eps, params.tau)
		res, err := (&LAFDBSCAN{Points: d.Vectors, Config: Config{
			Eps: params.eps, Tau: params.tau, Alpha: 1.0,
			Estimator: exactEstimator(d.Vectors),
		}}).Run()
		if err != nil {
			t.Fatal(err)
		}
		ari, err := metrics.ARI(truth.Labels, res.Labels)
		if err != nil {
			t.Fatal(err)
		}
		if ari < 0.9999 {
			t.Errorf("(%v,%d): exact-oracle LAF-DBSCAN ARI = %v, want 1",
				params.eps, params.tau, ari)
		}
	}
}

// With the exact oracle, the queries LAF skips are exactly the stop points
// DBSCAN would have wasted queries on.
func TestLAFDBSCANSkipsOnlyStopPoints(t *testing.T) {
	d := evalDataset(42)
	const eps, tau = 0.5, 4
	truth := dbscanTruth(t, d.Vectors, eps, tau)
	res, err := (&LAFDBSCAN{Points: d.Vectors, Config: Config{
		Eps: eps, Tau: tau, Alpha: 1.0, Estimator: exactEstimator(d.Vectors),
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedQueries == 0 {
		t.Error("exact-oracle LAF skipped nothing; gate inert")
	}
	if res.RangeQueries+res.SkippedQueries > truth.RangeQueries+50 {
		t.Errorf("LAF did more work than DBSCAN: %d+%d vs %d",
			res.RangeQueries, res.SkippedQueries, truth.RangeQueries)
	}
	if res.RangeQueries >= truth.RangeQueries {
		t.Errorf("LAF executed %d range queries, DBSCAN %d; no savings",
			res.RangeQueries, truth.RangeQueries)
	}
}

func TestLAFDBSCANAllStopPredictionGivesNoiseThenRepairs(t *testing.T) {
	d := dataset.TwoBlobs(12, 43)
	// Estimator that always predicts 0: every point is a predicted stop
	// point, every query is skipped, everything becomes noise, and E stays
	// empty of neighbors (no queries ran), so post-processing cannot help.
	res, err := (&LAFDBSCAN{Points: d.Vectors, Config: Config{
		Eps: 0.3, Tau: 3, Alpha: 1.0,
		Estimator: &cardest.ConstantEstimator{Value: 0},
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l != cluster.Noise {
			t.Fatal("all-stop prediction still clustered something")
		}
	}
	if res.RangeQueries != 0 {
		t.Errorf("ran %d queries despite all-stop estimator", res.RangeQueries)
	}
}

func TestLAFDBSCANAllCorePredictionMatchesDBSCAN(t *testing.T) {
	// Estimator that always predicts +inf: nothing is skipped, LAF-DBSCAN
	// degenerates to plain DBSCAN.
	d := evalDataset(44)
	const eps, tau = 0.5, 4
	truth := dbscanTruth(t, d.Vectors, eps, tau)
	res, err := (&LAFDBSCAN{Points: d.Vectors, Config: Config{
		Eps: eps, Tau: tau, Alpha: 1.0,
		Estimator: &cardest.ConstantEstimator{Value: 1e18},
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	ari, _ := metrics.ARI(truth.Labels, res.Labels)
	if ari < 0.9999 {
		t.Errorf("all-core LAF-DBSCAN ARI = %v, want 1", ari)
	}
	if res.SkippedQueries != 0 {
		t.Error("skipped queries despite all-core estimator")
	}
}

// bridgeDataset places two tight arcs on a great circle connected only
// through a single bridge point m. With eps=0.3 and tau=3, DBSCAN finds one
// cluster; if the estimator falsely predicts m as a stop point the cluster
// splits in two, and post-processing must repair the split because four
// points discover m as their neighbor (|E(m)| = 4 >= tau). The bridge sits
// at index 0: E only records discoveries made after a stop point registers,
// so the bridge must be classified before its neighbors run their queries —
// the same visit-order sensitivity the paper's Algorithm 1 has.
func bridgeDataset() (points [][]float32, bridge int) {
	angles := []float64{50, 0, 5, 10, 90, 95, 100} // degrees; index 0 is m
	const dim = 8
	u := make([]float32, dim)
	v := make([]float32, dim)
	u[0], v[1] = 1, 1
	for _, deg := range angles {
		rad := deg * 3.141592653589793 / 180
		p := make([]float32, dim)
		for j := range p {
			p[j] = u[j]*float32(cosf(rad)) + v[j]*float32(sinf(rad))
		}
		points = append(points, p)
	}
	return points, 0
}

func cosf(x float64) float64 { return math.Cos(x) }
func sinf(x float64) float64 { return math.Sin(x) }

// Post-processing repair: lie about exactly the bridge point and verify the
// merge pass reunites the two halves.
func TestLAFDBSCANPostProcessingRepairsFalseNegatives(t *testing.T) {
	points, bridge := bridgeDataset()
	const eps, tau = 0.3, 3
	truth := dbscanTruth(t, points, eps, tau)
	if truth.NumClusters != 1 {
		t.Fatalf("bridge dataset: DBSCAN found %d clusters, want 1", truth.NumClusters)
	}

	lying := &targetedLiar{inner: exactEstimator(points), target: points[bridge]}
	with, err := (&LAFDBSCAN{Points: points, Config: Config{
		Eps: eps, Tau: tau, Alpha: 1.0, Estimator: lying, Seed: 1,
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	without, err := (&LAFDBSCAN{Points: points, Config: Config{
		Eps: eps, Tau: tau, Alpha: 1.0, Estimator: lying, Seed: 1,
		DisablePostProcessing: true,
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if without.NumClusters != 2 {
		t.Fatalf("false negative did not split the cluster: %d clusters", without.NumClusters)
	}
	if with.NumClusters != 1 {
		t.Fatalf("post-processing left %d clusters, want 1", with.NumClusters)
	}
	if with.PostMerges != 1 {
		t.Errorf("PostMerges = %d, want 1", with.PostMerges)
	}
	if with.Labels[bridge] == cluster.Noise {
		t.Error("bridge point left as noise after repair")
	}
	ariWith, _ := metrics.ARI(truth.Labels, with.Labels)
	if ariWith < 0.9999 {
		t.Errorf("repaired ARI = %v, want 1", ariWith)
	}
}

// targetedLiar answers 0 for one specific query vector and defers to the
// exact oracle otherwise.
type targetedLiar struct {
	inner  cardest.Estimator
	target []float32
}

func (l *targetedLiar) Estimate(q []float32, eps float64) float64 {
	if &q[0] == &l.target[0] {
		return 0
	}
	return l.inner.Estimate(q, eps)
}

func (l *targetedLiar) Name() string { return "targeted-liar" }

func TestLAFDBSCANAlphaTradeoffDirection(t *testing.T) {
	// Raising alpha turns more points into predicted stops: skipped queries
	// must not decrease.
	d := evalDataset(46)
	const eps, tau = 0.5, 4
	var prevSkipped = -1
	for _, alpha := range []float64{0.5, 1.0, 3.0, 10.0} {
		res, err := (&LAFDBSCAN{Points: d.Vectors, Config: Config{
			Eps: eps, Tau: tau, Alpha: alpha, Estimator: exactEstimator(d.Vectors),
		}}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.SkippedQueries < prevSkipped {
			t.Errorf("alpha=%v skipped %d < previous %d", alpha, res.SkippedQueries, prevSkipped)
		}
		prevSkipped = res.SkippedQueries
	}
}

func TestLAFConfigValidation(t *testing.T) {
	pts := dataset.TwoBlobs(4, 1).Vectors
	est := exactEstimator(pts)
	cases := []Config{
		{Eps: 0.5, Tau: 3, Alpha: 1},                 // nil estimator
		{Eps: 0.5, Tau: 3, Alpha: 0, Estimator: est}, // bad alpha
		{Eps: 0, Tau: 3, Alpha: 1, Estimator: est},   // bad eps
		{Eps: 0.5, Tau: 0, Alpha: 1, Estimator: est}, // bad tau
	}
	for i, cfg := range cases {
		if _, err := (&LAFDBSCAN{Points: pts, Config: cfg}).Run(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := (&LAFDBSCAN{Points: nil, Config: Config{Eps: 0.5, Tau: 3, Alpha: 1, Estimator: est}}).Run(); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestPartialNeighbors(t *testing.T) {
	e := make(PartialNeighbors)
	e.Ensure(5)
	if _, ok := e[5]; !ok {
		t.Fatal("Ensure did not add")
	}
	e[5][99] = struct{}{}
	e.Ensure(5)
	if len(e[5]) != 1 {
		t.Fatal("Ensure overwrote existing entry")
	}
	e.Update(7, []int{5, 6})
	if _, ok := e[5][7]; !ok {
		t.Fatal("Update missed a tracked stop point")
	}
	if _, ok := e[6]; ok {
		t.Fatal("Update created an entry for an untracked point")
	}
}

func TestPostProcessMergesSplitClusters(t *testing.T) {
	// Two clusters {0,1} -> 1 and {2,3} -> 2, separated by the false stop
	// point 4 whose partial neighbors span both. Post-processing must merge.
	labels := []int{1, 1, 2, 2, cluster.Noise}
	e := PartialNeighbors{4: {0: {}, 1: {}, 2: {}, 3: {}}}
	rng := rand.New(rand.NewSource(1))
	merges := PostProcess(labels, e, 3, rng)
	if merges != 1 {
		t.Errorf("merges = %d, want 1", merges)
	}
	if labels[0] != labels[2] {
		t.Errorf("clusters not merged: %v", labels)
	}
	if labels[4] == cluster.Noise {
		t.Error("false stop point left as noise")
	}
	if labels[4] != labels[0] {
		t.Error("false stop point not in the merged cluster")
	}
}

func TestPostProcessRespectsTau(t *testing.T) {
	labels := []int{1, 1, 2, 2, cluster.Noise}
	e := PartialNeighbors{4: {0: {}, 2: {}}} // only 2 partial neighbors
	rng := rand.New(rand.NewSource(1))
	if merges := PostProcess(labels, e, 3, rng); merges != 0 {
		t.Errorf("merged below tau: %d", merges)
	}
	if labels[0] == labels[2] {
		t.Error("clusters merged despite |E(P)| < tau")
	}
}

func TestPostProcessAllNoiseNeighbors(t *testing.T) {
	labels := []int{cluster.Noise, cluster.Noise, cluster.Noise}
	e := PartialNeighbors{0: {1: {}, 2: {}}}
	rng := rand.New(rand.NewSource(1))
	if merges := PostProcess(labels, e, 2, rng); merges != 0 {
		t.Errorf("merged with no destination: %d", merges)
	}
	if labels[0] != cluster.Noise {
		t.Error("noise promoted with no destination cluster")
	}
}

func TestPostProcessDeterministicForSeed(t *testing.T) {
	build := func() []int {
		labels := []int{1, 1, 2, 2, 3, 3, cluster.Noise, cluster.Noise}
		e := PartialNeighbors{
			6: {0: {}, 2: {}, 4: {}},
			7: {1: {}, 3: {}},
		}
		PostProcess(labels, e, 2, rand.New(rand.NewSource(9)))
		return labels
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic post-processing: %v vs %v", a, b)
		}
	}
}

func TestPredictedCoreRatio(t *testing.T) {
	d := evalDataset(47)
	const eps, tau = 0.5, 4
	rc := PredictedCoreRatio(d.Vectors, exactEstimator(d.Vectors), eps, tau, 1.0)
	if rc <= 0 || rc >= 1 {
		t.Errorf("core ratio %v out of (0,1) on mixed data", rc)
	}
	if got := PredictedCoreRatio(nil, nil, eps, tau, 1); got != 0 {
		t.Errorf("empty ratio = %v", got)
	}
	all := PredictedCoreRatio(d.Vectors, &cardest.ConstantEstimator{Value: 1e9}, eps, tau, 1)
	if all != 1 {
		t.Errorf("all-core ratio = %v", all)
	}
}

func TestLAFDBSCANPPExactOracleTracksDBSCANPP(t *testing.T) {
	d := evalDataset(48)
	const eps, tau = 0.5, 4
	truth := dbscanTruth(t, d.Vectors, eps, tau)
	base, err := (&cluster.DBSCANPP{Points: d.Vectors, Eps: eps, Tau: tau, P: 0.5, Seed: 7}).Run()
	if err != nil {
		t.Fatal(err)
	}
	laf, err := (&LAFDBSCANPP{Points: d.Vectors, P: 0.5, Config: Config{
		Eps: eps, Tau: tau, Alpha: 1.0, Estimator: exactEstimator(d.Vectors), Seed: 7,
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	ariBase, _ := metrics.ARI(truth.Labels, base.Labels)
	ariLAF, _ := metrics.ARI(truth.Labels, laf.Labels)
	// With an exact oracle the gate skips exactly the non-core samples,
	// which DBSCAN++ would have rejected anyway: same clustering.
	if ariLAF < ariBase-0.02 {
		t.Errorf("exact-oracle LAF-DBSCAN++ ARI %v well below DBSCAN++ %v", ariLAF, ariBase)
	}
	if laf.SkippedQueries == 0 {
		t.Error("LAF-DBSCAN++ skipped nothing")
	}
	if laf.RangeQueries >= base.RangeQueries {
		t.Errorf("LAF-DBSCAN++ ran %d queries, DBSCAN++ %d; no savings",
			laf.RangeQueries, base.RangeQueries)
	}
}

func TestLAFDBSCANPPValidation(t *testing.T) {
	pts := dataset.TwoBlobs(4, 1).Vectors
	est := exactEstimator(pts)
	if _, err := (&LAFDBSCANPP{Points: pts, P: 0, Config: Config{
		Eps: 0.3, Tau: 2, Alpha: 1, Estimator: est,
	}}).Run(); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := (&LAFDBSCANPP{Points: pts, P: 0.5, Config: Config{
		Eps: 0.3, Tau: 2, Alpha: 0, Estimator: est,
	}}).Run(); err == nil {
		t.Error("alpha=0 accepted")
	}
}

// End-to-end with a real learned estimator: train an RMI on the 80% split,
// cluster the 20% split, compare against exact DBSCAN on the same split —
// the paper's full pipeline in miniature.
func TestLAFDBSCANWithTrainedRMIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	full := dataset.GenerateMixture("e2e", dataset.MixtureConfig{
		N: 700, Dim: 32, Clusters: 6, MinSpread: 0.2, MaxSpread: 0.4,
		NoiseFrac: 0.25, SizeSkew: 1.0, Seed: 51,
	})
	rng := rand.New(rand.NewSource(52))
	train, test, err := full.Split(0.8, rng)
	if err != nil {
		t.Fatal(err)
	}

	examples := cardest.BuildTrainingSet(train.Vectors, vecmath.CosineDistanceUnit,
		cardest.DefaultRadii(), 250, rng)
	model, err := rmi.Train(examples, train.Len(), rmi.Config{
		StageCounts: []int{1, 2, 4}, Hidden: []int{24, 12},
		Epochs: 40, BatchSize: 64, LR: 5e-3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	est := cardest.NewRMIEstimator(model, float64(test.Len())/float64(train.Len()))

	const eps, tau = 0.5, 4
	truth := dbscanTruth(t, test.Vectors, eps, tau)
	res, err := (&LAFDBSCAN{Points: test.Vectors, Config: Config{
		Eps: eps, Tau: tau, Alpha: 1.0, Estimator: est, Seed: 1,
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	ari, _ := metrics.ARI(truth.Labels, res.Labels)
	ami, _ := metrics.AMI(truth.Labels, res.Labels)
	if ari < 0.5 || ami < 0.4 {
		t.Errorf("learned LAF-DBSCAN quality too low: ARI=%v AMI=%v", ari, ami)
	}
	if res.SkippedQueries == 0 {
		t.Error("learned estimator never skipped a query")
	}
	t.Logf("e2e: ARI=%.3f AMI=%.3f queries=%d skipped=%d merges=%d",
		ari, ami, res.RangeQueries, res.SkippedQueries, res.PostMerges)
}
