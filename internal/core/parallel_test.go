package core

import (
	"fmt"
	"runtime"
	"testing"

	"lafdbscan/internal/cardest"
	"lafdbscan/internal/cluster"
	"lafdbscan/internal/dataset"
	"lafdbscan/internal/index"
	"lafdbscan/internal/metrics"
	"lafdbscan/internal/vecmath"
)

func parallelLAFData(t *testing.T) (*dataset.Dataset, cardest.Estimator) {
	t.Helper()
	d := dataset.GloVeLike(400, 17)
	idx := index.NewBruteForce(d.Vectors, vecmath.CosineDistanceUnit)
	return d, &cardest.Exact{Index: idx}
}

// TestParallelLAFDBSCANMatchesSequential pins the parallel engine to the
// sequential reference with post-processing disabled: labels must be
// identical at every worker count (the engines only diverge through the
// partial-neighbor map, which post-processing consumes).
func TestParallelLAFDBSCANMatchesSequential(t *testing.T) {
	d, est := parallelLAFData(t)
	base := Config{
		Eps: 0.5, Tau: 4, Alpha: 1.3, Estimator: est, Seed: 3,
		DisablePostProcessing: true,
	}
	seq, err := (&LAFDBSCAN{Points: d.Vectors, Config: base}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 1, 4, runtime.NumCPU()} {
		cfg := base
		cfg.Workers = workers
		cfg.BatchSize = 8
		par, err := (&LAFDBSCAN{Points: d.Vectors, Config: cfg}).Run()
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("workers=%d", workers)
		if par.RangeQueries != seq.RangeQueries || par.SkippedQueries != seq.SkippedQueries {
			t.Errorf("%s: queries %d/%d skipped, sequential %d/%d",
				name, par.RangeQueries, par.SkippedQueries, seq.RangeQueries, seq.SkippedQueries)
		}
		for i := range seq.Labels {
			if par.Labels[i] != seq.Labels[i] {
				t.Fatalf("%s: label[%d] = %d, sequential %d", name, i, par.Labels[i], seq.Labels[i])
			}
		}
	}
}

// TestParallelLAFDBSCANPostProcessingDeterministic asserts the full
// parallel pipeline (post-processing enabled) is deterministic across
// worker counts: the complete partial-neighbor map is order-free, so every
// pool size must yield the same labeling and merge count.
func TestParallelLAFDBSCANPostProcessingDeterministic(t *testing.T) {
	d, est := parallelLAFData(t)
	var ref *cluster.Result
	for _, workers := range []int{1, 3, runtime.NumCPU()} {
		res, err := (&LAFDBSCAN{Points: d.Vectors, Config: Config{
			Eps: 0.5, Tau: 4, Alpha: 1.3, Estimator: est, Seed: 3,
			Workers: workers, BatchSize: 8,
		}}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.PostMerges != ref.PostMerges {
			t.Errorf("workers=%d: %d merges, want %d", workers, res.PostMerges, ref.PostMerges)
		}
		for i := range ref.Labels {
			if res.Labels[i] != ref.Labels[i] {
				t.Fatalf("workers=%d: label[%d] differs", workers, i)
			}
		}
	}
	// Quality sanity: the parallel LAF path at alpha near 1 must stay close
	// to exact DBSCAN on the same data (the paper's whole premise).
	truth, err := (&cluster.ParallelDBSCAN{Points: d.Vectors, Eps: 0.5, Tau: 4, Workers: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	ari, err := metrics.ARI(truth.Labels, ref.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.85 {
		t.Errorf("parallel LAF-DBSCAN ARI vs DBSCAN = %v", ari)
	}
}

// TestParallelLAFDBSCANPPMatchesSequential pins LAF-DBSCAN++'s parallel
// engine to the sequential one: same seed selects the same sample, and with
// post-processing disabled the labels must be identical.
func TestParallelLAFDBSCANPPMatchesSequential(t *testing.T) {
	d, est := parallelLAFData(t)
	base := Config{
		Eps: 0.5, Tau: 4, Alpha: 1.0, Estimator: est, Seed: 5,
		DisablePostProcessing: true,
	}
	seq, err := (&LAFDBSCANPP{Points: d.Vectors, P: 0.5, Config: base}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		par, err := (&LAFDBSCANPP{Points: d.Vectors, P: 0.5, Config: cfg}).Run()
		if err != nil {
			t.Fatal(err)
		}
		if par.RangeQueries != seq.RangeQueries || par.SkippedQueries != seq.SkippedQueries {
			t.Errorf("workers=%d: query accounting differs", workers)
		}
		for i := range seq.Labels {
			if par.Labels[i] != seq.Labels[i] {
				t.Fatalf("workers=%d: label[%d] = %d, sequential %d", workers, i, par.Labels[i], seq.Labels[i])
			}
		}
	}
}

// TestParallelLAFDBSCANExactOracleMatchesDBSCAN repeats the package's core
// soundness check on the parallel path: with an exact estimator and
// alpha = 1, LAF skips only true non-core points, so the labeling must
// reproduce exact DBSCAN.
func TestParallelLAFDBSCANExactOracleMatchesDBSCAN(t *testing.T) {
	d, est := parallelLAFData(t)
	truth, err := (&cluster.DBSCAN{Points: d.Vectors, Eps: 0.5, Tau: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&LAFDBSCAN{Points: d.Vectors, Config: Config{
		Eps: 0.5, Tau: 4, Alpha: 1.0, Estimator: est, Seed: 1, Workers: -1,
	}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	ari, err := metrics.ARI(truth.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 1.0 {
		t.Errorf("ARI = %v, want 1.0 with exact oracle at alpha=1", ari)
	}
}
