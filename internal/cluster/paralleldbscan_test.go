package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"lafdbscan/internal/dataset"
	"lafdbscan/internal/index"
	"lafdbscan/internal/metrics"
	"lafdbscan/internal/vecmath"
)

func TestAtomicUnionFindSequential(t *testing.T) {
	u := NewAtomicUnionFind(10)
	u.Union(1, 2)
	u.Union(3, 4)
	if u.Same(1, 3) {
		t.Error("disjoint sets merged")
	}
	u.Union(2, 3)
	if !u.Same(1, 4) {
		t.Error("transitive union broken")
	}
	// Roots are canonical minimum members.
	if r := u.Find(4); r != 1 {
		t.Errorf("root = %d, want 1", r)
	}
	if r := u.Find(0); r != 0 {
		t.Errorf("singleton root = %d", r)
	}
}

func TestAtomicUnionFindConcurrentDeterministic(t *testing.T) {
	const n = 2000
	// A chain 0-1-2-...-n/2 plus scattered pairs, unioned from many
	// goroutines in conflicting orders; the final roots must be the
	// component minima no matter the interleaving.
	u := NewAtomicUnionFind(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n/2-1; i += 8 {
				u.Union(i, i+1)
			}
			for i := n/2 + w; i+1 < n; i += 16 {
				u.Union(i+1, i)
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < n/2; i++ {
		if r := u.Find(i); r != 0 {
			t.Fatalf("chain member %d has root %d, want 0", i, r)
		}
	}
}

// parallelTestSets returns the synthetic datasets the equivalence tests
// sweep: the three corpus families at test scale.
func parallelTestSets() []*dataset.Dataset {
	return []*dataset.Dataset{
		dataset.GloVeLike(400, 7),
		dataset.MSLike(300, 8),
		dataset.NYTLike(dataset.NYTLikeConfig{N: 300, Seed: 9, NoiseFrac: 0.15}),
		dataset.TwoBlobs(40, 10),
	}
}

// TestParallelDBSCANMatchesSequential asserts the parallel driver's labels
// are identical to sequential DBSCAN's — exact equality, which implies the
// issue's ARI == 1.0 criterion — across datasets, parameters and worker
// counts.
func TestParallelDBSCANMatchesSequential(t *testing.T) {
	for _, d := range parallelTestSets() {
		for _, s := range []struct {
			eps float64
			tau int
		}{{0.4, 3}, {0.55, 5}} {
			seq, err := (&DBSCAN{Points: d.Vectors, Eps: s.eps, Tau: s.tau}).Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4, runtime.NumCPU()} {
				name := fmt.Sprintf("%s/eps=%v,tau=%d/w=%d", d.Name, s.eps, s.tau, workers)
				par, err := (&ParallelDBSCAN{
					Points: d.Vectors, Eps: s.eps, Tau: s.tau,
					Workers: workers, BatchSize: 8,
				}).Run()
				if err != nil {
					t.Fatal(err)
				}
				if par.NumClusters != seq.NumClusters {
					t.Errorf("%s: %d clusters, sequential %d", name, par.NumClusters, seq.NumClusters)
				}
				if par.RangeQueries != seq.RangeQueries {
					t.Errorf("%s: %d queries, sequential %d", name, par.RangeQueries, seq.RangeQueries)
				}
				for i := range seq.Labels {
					if par.Labels[i] != seq.Labels[i] {
						t.Fatalf("%s: label[%d] = %d, sequential %d", name, i, par.Labels[i], seq.Labels[i])
					}
				}
				ari, err := metrics.ARI(seq.Labels, par.Labels)
				if err != nil {
					t.Fatal(err)
				}
				if ari != 1.0 {
					t.Errorf("%s: ARI = %v, want 1.0", name, ari)
				}
			}
		}
	}
}

func TestParallelDBSCANValidation(t *testing.T) {
	if _, err := (&ParallelDBSCAN{Points: nil, Eps: 0.5, Tau: 3}).Run(); err == nil {
		t.Error("empty dataset accepted")
	}
	d := dataset.TwoBlobs(5, 1)
	if _, err := (&ParallelDBSCAN{Points: d.Vectors, Eps: -1, Tau: 3}).Run(); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := (&ParallelDBSCAN{Points: d.Vectors, Eps: 0.5, Tau: 0}).Run(); err == nil {
		t.Error("zero tau accepted")
	}
}

func TestClusterCoresAndAssignWorkersMatchesSerial(t *testing.T) {
	d := dataset.GloVeLike(300, 3)
	const eps, tau = 0.5, 3
	idx := index.NewBruteForce(d.Vectors, vecmath.CosineDistanceUnit)
	var cores []int
	coreNeighbors := make(map[int][]int)
	for i := 0; i < d.Len(); i += 2 { // every other point stands in for a sample
		nb := idx.RangeSearch(d.Vectors[i], eps)
		if len(nb) >= tau {
			cores = append(cores, i)
			coreNeighbors[i] = nb
		}
	}
	serial := ClusterCoresAndAssign(d.Vectors, eps, cores, coreNeighbors)
	for _, workers := range []int{0, 2, 5} {
		par := ClusterCoresAndAssignWorkers(d.Vectors, eps, cores, coreNeighbors, workers, 8)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: label[%d] = %d, serial %d", workers, i, par[i], serial[i])
			}
		}
	}
}
