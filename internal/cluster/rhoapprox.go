package cluster

import (
	"context"
	"fmt"
	"time"

	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// RhoApprox is ρ-approximate DBSCAN (Gan & Tao 2015/2017): DBSCAN with the
// density criterion relaxed by a factor ρ, answered from a sparse grid of
// cells with side ε/√d. Any point within ε is counted as a neighbor and no
// point beyond ε(1+ρ) is; points in between may count either way, which is
// what lets low-dimensional instances run in near-linear time.
//
// In high dimensions the grid degenerates — the cell-neighborhood
// enumeration dominates — and the method becomes slower than brute-force
// DBSCAN. The paper demonstrates exactly this in Table 4 and excludes the
// method from the main comparison; this implementation reproduces the
// behaviour honestly rather than papering over it.
type RhoApprox struct {
	Points [][]float32
	// Eps is the cosine-distance threshold (converted internally to the
	// Euclidean radius the grid uses).
	Eps float64
	Tau int
	// Rho is the approximation factor (> 0; the paper's evaluation uses
	// 1.0 after finding the usual 0.001–0.1 range hopeless here).
	Rho float64
}

// Run clusters the points.
func (r *RhoApprox) Run() (*Result, error) { return r.RunContext(context.Background()) }

// RunContext clusters the points under a cancellation context, checked
// every ctxCheckEvery grid queries.
func (r *RhoApprox) RunContext(ctx context.Context) (*Result, error) {
	n := len(r.Points)
	if err := validateParams(n, r.Eps, r.Tau); err != nil {
		return nil, err
	}
	if r.Rho < 0 {
		return nil, fmt.Errorf("cluster: rho must be non-negative, got %v", r.Rho)
	}
	start := time.Now()
	epsEuc := vecmath.CosineToEuclidean(r.Eps)
	grid := index.NewGrid(r.Points, epsEuc, r.Rho)
	res := &Result{Algorithm: "rho-approx"}

	labels := make([]int, n)
	for i := range labels {
		labels[i] = Undefined
	}
	c := 0
	core := make([]bool, n)
	inSeed := make([]bool, n)
	for p := 0; p < n; p++ {
		if labels[p] != Undefined {
			continue
		}
		if err := checkCtx(ctx, res.RangeQueries); err != nil {
			return nil, err
		}
		neighbors := grid.ApproxRangeSearch(r.Points[p], epsEuc)
		res.RangeQueries++
		if len(neighbors) < r.Tau {
			labels[p] = Noise
			continue
		}
		core[p] = true
		c++
		labels[p] = c
		clear(inSeed)
		seeds := make([]int, 0, len(neighbors))
		for _, q := range neighbors {
			if q != p {
				seeds = append(seeds, q)
				inSeed[q] = true
			}
		}
		for k := 0; k < len(seeds); k++ {
			q := seeds[k]
			if labels[q] == Noise {
				labels[q] = c
			}
			if labels[q] != Undefined {
				continue
			}
			labels[q] = c
			if err := checkCtx(ctx, res.RangeQueries); err != nil {
				return nil, err
			}
			qn := grid.ApproxRangeSearch(r.Points[q], epsEuc)
			res.RangeQueries++
			if len(qn) >= r.Tau {
				core[q] = true
				for _, s := range qn {
					if !inSeed[s] {
						seeds = append(seeds, s)
						inSeed[s] = true
					}
				}
			}
		}
	}
	res.Labels = labels
	res.Core = core
	res.Forest = DeriveForest(labels, core)
	res.Elapsed = time.Since(start)
	res.finalize()
	return res, nil
}
