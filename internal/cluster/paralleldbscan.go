package cluster

import (
	"context"
	"time"

	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// ParallelDBSCAN is exact DBSCAN restructured for multi-core execution. The
// sequential algorithm's breadth-first expansion serializes its range
// queries — each query's result decides the next — but the clustering it
// computes depends only on two order-free facts: which points are core
// (|N(p)| >= Tau) and which core points are ε-connected. The parallel
// driver exploits that:
//
//  1. Neighbor discovery: range queries run in bounded waves on a worker
//     pool (index.BatchRangeSearchFunc). Each result is folded into a
//     WaveMerger the moment it is produced — core flag, lock-free
//     union-find links for core-core ε-edges, a short border stub for
//     non-core points — and the neighbor list itself is dropped.
//  2. Label resolution (sequential, linear): cluster ids are numbered by
//     first-core scan order and border points take the minimum cluster id
//     among the clusters of their core neighbors.
//
// Phase 2's two rules reproduce the sequential traversal exactly: DBSCAN's
// outer loop starts each cluster at its lowest-indexed core point (core
// points are never absorbed as border points of other clusters), and each
// cluster expands fully before the scan resumes, so a contested border
// point is always claimed by the earliest-numbered adjacent cluster. Run
// therefore returns labels identical — not merely equivalent — to
// DBSCAN.Run on the same inputs.
//
// Memory: only one wave of neighbor lists is in flight at a time and core
// lists are never retained, so peak extra memory is O(WaveSize·avg|N|) plus
// the non-core stubs (each shorter than Tau) — where the buffer-everything
// engine of WaveSize < 0 peaks at O(Σ|N(p)|).
type ParallelDBSCAN struct {
	// Points, Eps, Tau, Metric and Index have DBSCAN's semantics.
	Points [][]float32
	Eps    float64
	Tau    int
	Metric vecmath.Metric
	Index  index.RangeSearcher
	// Workers sizes the query/merge worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// BatchSize is the number of queries a worker claims at a time; <= 0
	// selects a load-balancing default.
	BatchSize int
	// WaveSize bounds the number of neighbor lists in flight: queries run
	// in waves of this many, and each wave's lists are dropped before the
	// next begins. 0 selects index.DefaultWaveSize; a negative value
	// disables waving and buffers every neighbor list at once (the
	// pre-wave engine, kept for comparison benchmarks and tests). Labels
	// are identical at every setting.
	WaveSize int
}

// Run clusters the points.
func (d *ParallelDBSCAN) Run() (*Result, error) { return d.RunContext(context.Background()) }

// RunContext clusters the points under a cancellation context. The wave
// engine checks it at each wave barrier (aborting within one wave at zero
// hot-path cost); the buffer-everything engine of WaveSize < 0 checks it
// between phases only.
func (d *ParallelDBSCAN) RunContext(ctx context.Context) (*Result, error) {
	n := len(d.Points)
	if err := validateParams(n, d.Eps, d.Tau); err != nil {
		return nil, err
	}
	idx := d.Index
	if idx == nil {
		idx = index.NewBruteForce(d.Points, metricFunc(d.Metric))
	}
	if d.WaveSize < 0 {
		return d.runBuffered(ctx, idx)
	}
	start := time.Now()
	res := &Result{Algorithm: "DBSCAN", RangeQueries: n}

	// Phase 1: neighbor discovery in bounded waves, each result folded into
	// the merger (core flag, unions, stub) and dropped.
	m := NewWaveMerger(n, d.Tau)
	if err := index.BatchRangeSearchFunc(ctx, idx, d.Points, d.Eps, d.Workers, d.BatchSize, d.WaveSize,
		func(p int, ids []int) { m.Absorb(p, ids) }); err != nil {
		return nil, err
	}

	// Phase 2: sequential label resolution.
	res.Labels = m.Resolve(nil)
	res.Core = m.Core()
	res.Forest = DeriveForest(res.Labels, res.Core)
	res.Elapsed = time.Since(start)
	res.finalize()
	return res, nil
}

// runBuffered is the buffer-everything engine: every neighbor list is
// materialized before merging, peaking at O(Σ|N(p)|) extra memory. Kept
// selectable (WaveSize < 0) as the baseline the wave engine's memory
// benchmarks and regression tests compare against.
func (d *ParallelDBSCAN) runBuffered(ctx context.Context, idx index.RangeSearcher) (*Result, error) {
	n := len(d.Points)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Algorithm: "DBSCAN", RangeQueries: n}

	// Phase 1: all neighborhoods, one batched sweep over the worker pool.
	neighbors := index.BatchRangeSearch(idx, d.Points, d.Eps, d.Workers, d.BatchSize)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	core := make([]bool, n)
	for i, nb := range neighbors {
		core[i] = len(nb) >= d.Tau
	}

	// Phase 2: ε-connectivity of core points via lock-free union-find. A
	// core's neighbor list already contains every core within ε of it, so
	// no extra distance work is needed; symmetric duplicates are no-ops.
	uf := NewAtomicUnionFind(n)
	index.ForEach(n, d.Workers, d.BatchSize, func(p int) {
		if !core[p] {
			return
		}
		for _, q := range neighbors[p] {
			if core[q] && q != p {
				uf.Union(p, q)
			}
		}
	})

	// Phase 3: sequential label resolution.
	res.Labels = ResolveCoreLabels(neighbors, core, uf)
	res.Core = core
	res.Forest = DeriveForest(res.Labels, core)
	res.Elapsed = time.Since(start)
	res.finalize()
	return res, nil
}

// ResolveCoreLabels turns the (neighbors, core, components) facts into the
// labeling sequential DBSCAN would produce: cluster ids numbered by
// first-core scan order, border points claimed by their lowest-numbered
// adjacent cluster, everything else noise. neighbors may be nil at indexes
// that were never queried (the LAF drivers skip predicted stop points);
// such points can only receive labels as borders of queried cores.
func ResolveCoreLabels(neighbors [][]int, core []bool, uf *AtomicUnionFind) []int {
	n := len(neighbors)
	labels := make([]int, n) // 0 = unassigned, cluster ids start at 1
	componentID := make(map[int]int)
	c := 0
	for p := 0; p < n; p++ {
		if !core[p] {
			continue
		}
		root := uf.Find(p)
		id, ok := componentID[root]
		if !ok {
			c++
			id = c
			componentID[root] = id
		}
		labels[p] = id
	}
	for p := 0; p < n; p++ {
		if !core[p] {
			continue
		}
		id := labels[p]
		for _, q := range neighbors[p] {
			if !core[q] && (labels[q] == 0 || labels[q] > id) {
				labels[q] = id
			}
		}
	}
	for i, l := range labels {
		if l == 0 {
			labels[i] = Noise
		}
	}
	return labels
}
