package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"lafdbscan/internal/dataset"
	"lafdbscan/internal/index"
	"lafdbscan/internal/metrics"
	"lafdbscan/internal/vecmath"
)

// TestWaveEngineMatchesSequentialAcrossWaveSizes pins the wave engine's
// labels to sequential DBSCAN's — exact equality, which implies the issue's
// ARI == 1.0 criterion — across wave sizes from one query per wave to the
// buffer-everything engine (WaveSize < 0), at several worker counts. Run
// under -race this also exercises the publish-then-scan handshake that
// folds core-core unions into in-flight waves.
func TestWaveEngineMatchesSequentialAcrossWaveSizes(t *testing.T) {
	for _, d := range parallelTestSets() {
		seq, err := (&DBSCAN{Points: d.Vectors, Eps: 0.5, Tau: 4}).Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, wave := range []int{-1, 0, 1, 7, 64, 100000} {
			for _, workers := range []int{1, 4, runtime.NumCPU()} {
				name := fmt.Sprintf("%s/wave=%d/w=%d", d.Name, wave, workers)
				par, err := (&ParallelDBSCAN{
					Points: d.Vectors, Eps: 0.5, Tau: 4,
					Workers: workers, BatchSize: 8, WaveSize: wave,
				}).Run()
				if err != nil {
					t.Fatal(err)
				}
				for i := range seq.Labels {
					if par.Labels[i] != seq.Labels[i] {
						t.Fatalf("%s: label[%d] = %d, sequential %d", name, i, par.Labels[i], seq.Labels[i])
					}
				}
				ari, err := metrics.ARI(seq.Labels, par.Labels)
				if err != nil {
					t.Fatal(err)
				}
				if ari != 1.0 {
					t.Errorf("%s: ARI = %v, want 1.0", name, ari)
				}
			}
		}
	}
}

// TestWaveMergerMatchesResolveCoreLabels drives the merger directly with
// precomputed neighbor lists absorbed concurrently in shuffled order — the
// worst case for the publish-then-scan handshake — and checks the resolved
// labels against ResolveCoreLabels over the fully buffered lists.
func TestWaveMergerMatchesResolveCoreLabels(t *testing.T) {
	d := dataset.GloVeLike(500, 21)
	const eps, tau = 0.5, 4
	idx := index.NewBruteForce(d.Vectors, vecmath.CosineDistanceUnit)
	n := d.Len()
	neighbors := index.BatchRangeSearch(idx, d.Vectors, eps, 0, 0)
	core := make([]bool, n)
	for i, nb := range neighbors {
		core[i] = len(nb) >= tau
	}
	ufRef := NewAtomicUnionFind(n)
	for p := 0; p < n; p++ {
		if !core[p] {
			continue
		}
		for _, q := range neighbors[p] {
			if core[q] && q != p {
				ufRef.Union(p, q)
			}
		}
	}
	want := ResolveCoreLabels(neighbors, core, ufRef)

	for trial := 0; trial < 3; trial++ {
		order := rand.New(rand.NewSource(int64(trial))).Perm(n)
		m := NewWaveMerger(n, tau)
		var wg sync.WaitGroup
		const goroutines = 8
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := g; k < n; k += goroutines {
					p := order[k]
					m.Absorb(p, neighbors[p])
				}
			}(g)
		}
		wg.Wait()
		got := m.Resolve(nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: label[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestWaveMergerStubsBounded checks the memory contract the wave engine is
// built on: after a full absorb sweep, no retained stub is tau or longer
// (core lists are never retained at all).
func TestWaveMergerStubsBounded(t *testing.T) {
	d := dataset.MSLike(300, 22)
	const eps, tau = 0.55, 5
	idx := index.NewBruteForce(d.Vectors, vecmath.CosineDistanceUnit)
	n := d.Len()
	m := NewWaveMerger(n, tau)
	if err := index.BatchRangeSearchFunc(context.Background(), idx, d.Vectors, eps, 2, 4, 32,
		func(p int, ids []int) { m.Absorb(p, ids) }); err != nil {
		t.Fatal(err)
	}
	core := m.Core()
	for p, stub := range m.stubs {
		if core[p] && stub != nil {
			t.Fatalf("core point %d retained a neighbor list", p)
		}
		if len(stub) >= tau {
			t.Fatalf("stub[%d] has %d entries, want < %d", p, len(stub), tau)
		}
	}
}
