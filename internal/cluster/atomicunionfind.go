package cluster

import "sync/atomic"

// AtomicUnionFind is a lock-free disjoint-set forest over the dense key
// range [0, n), safe for concurrent Union and Find from many goroutines
// (Anderson & Woll style: CAS on parent links, path halving). Unions always
// point the higher-indexed root at the lower-indexed one, so the final
// forest is deterministic — the representative of every component is its
// minimum member — regardless of goroutine interleaving. The parallel
// clustering drivers rely on that determinism to reproduce the sequential
// algorithms' cluster numbering exactly.
type AtomicUnionFind struct {
	parent []atomic.Int32
}

// NewAtomicUnionFind returns a forest of n singletons. n must fit in int32.
func NewAtomicUnionFind(n int) *AtomicUnionFind {
	u := &AtomicUnionFind{parent: make([]atomic.Int32, n)}
	for i := range u.parent {
		u.parent[i].Store(int32(i))
	}
	return u
}

// Find returns the current representative of x, compressing the path with
// CAS halving along the way. Concurrent unions may change the
// representative until all unions have completed; after a happens-before
// barrier (e.g. WaitGroup.Wait) the answer is stable.
//
//lafvet:hotpath
func (u *AtomicUnionFind) Find(x int) int {
	cur := int32(x)
	for {
		p := u.parent[cur].Load()
		if p == cur {
			return int(cur)
		}
		gp := u.parent[p].Load()
		if gp != p {
			// Path halving: splice cur past its parent. Failure just means
			// another goroutine already moved the link; keep walking.
			u.parent[cur].CompareAndSwap(p, gp)
		}
		cur = p
	}
}

// Union merges the sets of a and b, linking the larger root under the
// smaller so roots are canonical minimum members.
//
//lafvet:hotpath
func (u *AtomicUnionFind) Union(a, b int) {
	for {
		ra := int32(u.Find(a))
		rb := int32(u.Find(b))
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		// Link the higher root under the lower. A failed CAS means rb
		// gained a parent concurrently; re-find and retry.
		if u.parent[rb].CompareAndSwap(rb, ra) {
			return
		}
	}
}

// Same reports whether a and b share a representative. Only meaningful once
// concurrent unions have quiesced.
//
//lafvet:hotpath
func (u *AtomicUnionFind) Same(a, b int) bool { return u.Find(a) == u.Find(b) }
