package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// BlockDBSCAN is BLOCK-DBSCAN (Chen et al. 2021): an approximate DBSCAN
// variant built on cover-tree range queries. It batches points into "inner
// core blocks" — ε/2-balls whose members are pairwise within ε, so a block
// of at least Tau points certifies every member core with a single query —
// and merges blocks with an approximate minimum-distance test capped at RNT
// iterations. Points outside any block are handled individually.
//
// The cover tree needs a true metric, so this implementation works in
// Euclidean space: the cosine threshold is converted with Equation 1 of the
// paper (valid because all inputs are unit-normalized).
type BlockDBSCAN struct {
	Points [][]float32
	// Eps is the cosine-distance threshold (converted internally).
	Eps float64
	Tau int
	// Base is the cover tree expansion base (the paper's "basis", default
	// 2.0, swept 1.1–5 in the trade-off experiments).
	Base float64
	// RNT caps the iterations of the approximate inter-block
	// minimum-distance computation (paper default 10).
	RNT int
	// Seed drives the random pair sampling in block merging.
	Seed int64
}

// Run clusters the points.
func (b *BlockDBSCAN) Run() (*Result, error) { return b.RunContext(context.Background()) }

// RunContext clusters the points under a cancellation context, checked
// every ctxCheckEvery cover-tree range queries of the block-carving and
// outer-point phases (where all the range queries happen).
func (b *BlockDBSCAN) RunContext(ctx context.Context) (*Result, error) {
	n := len(b.Points)
	if err := validateParams(n, b.Eps, b.Tau); err != nil {
		return nil, err
	}
	base := b.Base
	if base == 0 {
		base = 2.0
	}
	if base <= 1 {
		return nil, fmt.Errorf("cluster: BLOCK-DBSCAN cover tree base %v must be > 1", base)
	}
	rnt := b.RNT
	if rnt <= 0 {
		rnt = 10
	}
	start := time.Now()
	epsEuc := vecmath.CosineToEuclidean(b.Eps)
	tree := index.NewCoverTree(b.Points, vecmath.EuclideanDistance, base)
	res := &Result{Algorithm: "BLOCK-DBSCAN"}
	rng := rand.New(rand.NewSource(b.Seed))

	// Phase 1: carve inner core blocks with ε/2 queries.
	type block struct {
		center  int
		members []int
	}
	var blocks []block
	blockOf := make([]int, n) // -1: unassigned, else block index
	for i := range blockOf {
		blockOf[i] = -1
	}
	processed := make([]bool, n)
	var outer []int
	for p := 0; p < n; p++ {
		if processed[p] {
			continue
		}
		if err := checkCtx(ctx, res.RangeQueries); err != nil {
			return nil, err
		}
		ball := tree.RangeSearch(b.Points[p], epsEuc/2)
		res.RangeQueries++
		// Only points not yet claimed by another block join this one.
		free := ball[:0]
		for _, q := range ball {
			if !processed[q] {
				free = append(free, q)
			}
		}
		if len(free) >= b.Tau {
			id := len(blocks)
			blocks = append(blocks, block{center: p, members: append([]int(nil), free...)})
			for _, q := range free {
				processed[q] = true
				blockOf[q] = id
			}
		} else {
			processed[p] = true
			outer = append(outer, p)
		}
	}

	// Phase 2: classify outer points exactly and remember their neighbor
	// lists for border assignment.
	outerNeighbors := make(map[int][]int, len(outer))
	outerCore := make(map[int]bool, len(outer))
	for _, p := range outer {
		if err := checkCtx(ctx, res.RangeQueries); err != nil {
			return nil, err
		}
		neighbors := tree.RangeSearch(b.Points[p], epsEuc)
		res.RangeQueries++
		outerNeighbors[p] = neighbors
		outerCore[p] = len(neighbors) >= b.Tau
	}

	// Phase 3: merge blocks. Blocks whose centers are within ε merge
	// outright; blocks that might still touch (center distance below
	// ε + ε/2 + ε/2 = 2ε) get the approximate min-distance test: up to RNT
	// sampled cross-pairs plus the members closest to the other center.
	uf := NewUnionFind()
	for i := range blocks {
		uf.Find(i)
	}
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			cd := vecmath.EuclideanDistance(b.Points[blocks[i].center], b.Points[blocks[j].center])
			if cd >= 2*epsEuc {
				continue // no member pair can be within ε
			}
			if cd < epsEuc {
				uf.Union(i, j)
				continue
			}
			if blocksTouch(b.Points, blocks[i].members, blocks[j].members, blocks[i].center, blocks[j].center, epsEuc, rnt, rng) {
				uf.Union(i, j)
			}
		}
	}

	// Outer core points union with any block or outer core within ε; they
	// participate as singleton "blocks" keyed past the block id space.
	outerKey := func(p int) int { return len(blocks) + p }
	for _, p := range outer {
		if !outerCore[p] {
			continue
		}
		uf.Find(outerKey(p))
		for _, q := range outerNeighbors[p] {
			if bid := blockOf[q]; bid >= 0 {
				uf.Union(outerKey(p), bid)
			} else if outerCore[q] {
				uf.Union(outerKey(p), outerKey(q))
			}
		}
	}

	// Phase 4: emit labels. Block members and outer cores take their
	// component's id; border points (outer non-core with a core neighbor)
	// adopt a neighboring core's cluster; the rest is noise.
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Undefined
	}
	clusterID := make(map[int]int)
	next := 0
	idFor := func(key int) int {
		root := uf.Find(key)
		id, ok := clusterID[root]
		if !ok {
			next++
			id = next
			clusterID[root] = id
		}
		return id
	}
	for bid, blk := range blocks {
		id := idFor(bid)
		for _, q := range blk.members {
			labels[q] = id
		}
	}
	for _, p := range outer {
		if outerCore[p] {
			labels[p] = idFor(outerKey(p))
		}
	}
	for _, p := range outer {
		if outerCore[p] {
			continue
		}
		labels[p] = Noise
		for _, q := range outerNeighbors[p] {
			if blockOf[q] >= 0 || outerCore[q] {
				labels[p] = labels[q]
				break
			}
		}
	}

	// Every block member is certified core (an ε/2-ball of >= Tau points
	// puts all members pairwise within ε), plus the exactly-classified
	// outer cores.
	coreMask := make([]bool, n)
	for i := range coreMask {
		coreMask[i] = blockOf[i] >= 0
	}
	for _, p := range outer {
		if outerCore[p] {
			coreMask[p] = true
		}
	}
	res.Labels = labels
	res.Core = coreMask
	res.Forest = DeriveForest(labels, coreMask)
	res.Elapsed = time.Since(start)
	res.finalize()
	return res, nil
}

// blocksTouch approximates "min distance between the blocks < eps" with at
// most rnt iterations: each iteration checks the cross pair closest to the
// other block's center plus a random pair. It can miss a touching pair —
// that controlled inexactness is BLOCK-DBSCAN's documented approximation.
func blocksTouch(points [][]float32, a, b []int, ca, cb int, eps float64, rnt int, rng *rand.Rand) bool {
	// Members of a closest to cb, and of b closest to ca.
	bestA, bestAD := a[0], vecmath.EuclideanDistance(points[a[0]], points[cb])
	for _, p := range a[1:] {
		if d := vecmath.EuclideanDistance(points[p], points[cb]); d < bestAD {
			bestA, bestAD = p, d
		}
	}
	bestB, bestBD := b[0], vecmath.EuclideanDistance(points[b[0]], points[ca])
	for _, p := range b[1:] {
		if d := vecmath.EuclideanDistance(points[p], points[ca]); d < bestBD {
			bestB, bestBD = p, d
		}
	}
	if vecmath.EuclideanDistance(points[bestA], points[bestB]) < eps {
		return true
	}
	for it := 0; it < rnt; it++ {
		pa := a[rng.Intn(len(a))]
		pb := b[rng.Intn(len(b))]
		if vecmath.EuclideanDistance(points[pa], points[pb]) < eps {
			return true
		}
	}
	return false
}
