package cluster

import (
	"context"
	"time"

	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// DBSCAN is the original density-based clustering algorithm (Ester et al.
// 1996) in the formulation of the paper's Algorithm 1 (black text). Its
// output is the ground truth every approximate method is scored against.
type DBSCAN struct {
	// Points are the unit-normalized vectors to cluster.
	Points [][]float32
	// Eps is the distance threshold; a range query around P returns
	// {Q : d(P, Q) < Eps}.
	Eps float64
	// Tau is the minimum neighbor count (including the point itself, which
	// every range query returns at distance 0) for a point to be core.
	Tau int
	// Metric selects the distance function used when Index is nil. The
	// zero value is the paper's cosine distance (with the unit-vector fast
	// path); Euclidean implements the paper's future-work extension — LAF
	// has no hard constraint on the metric, only the estimator's training
	// radii need to cover the new value range.
	Metric vecmath.Metric
	// Index answers the range queries; when nil, a parallel brute-force
	// scan with the chosen metric is used — the canonical configuration of
	// the paper's experiments.
	Index index.RangeSearcher
}

// metricFunc returns the distance for a metric, using the unit-norm cosine
// fast path the datasets of this repository guarantee.
func metricFunc(m vecmath.Metric) vecmath.DistanceFunc {
	if m == vecmath.Cosine {
		return vecmath.CosineDistanceUnit
	}
	return m.Func()
}

// Run clusters the points.
func (d *DBSCAN) Run() (*Result, error) { return d.RunContext(context.Background()) }

// RunContext clusters the points under a cancellation context, checked
// every ctxCheckEvery range queries (the sequential engine's analogue of
// the parallel engines' wave barrier); on cancellation it returns
// ctx.Err() and no result.
func (d *DBSCAN) RunContext(ctx context.Context) (*Result, error) {
	n := len(d.Points)
	if err := validateParams(n, d.Eps, d.Tau); err != nil {
		return nil, err
	}
	idx := d.Index
	if idx == nil {
		idx = index.NewBruteForce(d.Points, metricFunc(d.Metric))
	}
	start := time.Now()
	res := &Result{Algorithm: "DBSCAN", Labels: make([]int, n)}
	labels := res.Labels
	for i := range labels {
		labels[i] = Undefined
	}
	c := 0
	core := make([]bool, n)
	inSeed := make([]bool, n)
	for p := 0; p < n; p++ {
		if labels[p] != Undefined {
			continue
		}
		if err := checkCtx(ctx, res.RangeQueries); err != nil {
			return nil, err
		}
		neighbors := idx.RangeSearch(d.Points[p], d.Eps)
		res.RangeQueries++
		if len(neighbors) < d.Tau {
			labels[p] = Noise
			continue
		}
		core[p] = true
		c++
		labels[p] = c
		// Seed set S := N \ {P}, expanded breadth-first. inSeed tracks set
		// membership so S := S ∪ N unions stay O(1) per element.
		clear(inSeed)
		seeds := make([]int, 0, len(neighbors))
		for _, q := range neighbors {
			if q != p {
				seeds = append(seeds, q)
				inSeed[q] = true
			}
		}
		for k := 0; k < len(seeds); k++ {
			q := seeds[k]
			if labels[q] == Noise {
				labels[q] = c // border point: noise with a core neighbor
			}
			if labels[q] != Undefined {
				continue
			}
			labels[q] = c
			if err := checkCtx(ctx, res.RangeQueries); err != nil {
				return nil, err
			}
			qn := idx.RangeSearch(d.Points[q], d.Eps)
			res.RangeQueries++
			if len(qn) >= d.Tau {
				core[q] = true
				for _, r := range qn {
					if !inSeed[r] {
						seeds = append(seeds, r)
						inSeed[r] = true
					}
				}
			}
		}
	}
	res.Core = core
	res.Forest = DeriveForest(labels, core)
	res.Elapsed = time.Since(start)
	res.finalize()
	return res, nil
}
