package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// DBSCANPP is DBSCAN++ (Jang & Jiang 2018): a sampling-based DBSCAN variant
// that restricts the expensive core-point detection to a uniform subset of
// fraction P of the data. Core points among the subset are detected with
// range queries against the entire dataset; clusters grow over the
// ε-connectivity graph of the sampled core points; every remaining point
// joins the cluster of its closest sampled core point when within ε of it,
// and is noise otherwise.
type DBSCANPP struct {
	Points [][]float32
	Eps    float64
	Tau    int
	// P is the sample fraction in (0, 1]. The paper sets p = δ + Rc where
	// Rc is the estimator-predicted core ratio and δ is a user offset in
	// 0.1–0.3; see core.PredictedCoreRatio.
	P float64
	// Seed drives the uniform sample.
	Seed int64
	// Index optionally overrides the full-dataset range-query engine.
	Index index.RangeSearcher
}

// Run clusters the points.
func (d *DBSCANPP) Run() (*Result, error) { return d.RunContext(context.Background()) }

// RunContext clusters the points under a cancellation context, checked
// every ctxCheckEvery core-detection range queries.
func (d *DBSCANPP) RunContext(ctx context.Context) (*Result, error) {
	n := len(d.Points)
	if err := validateParams(n, d.Eps, d.Tau); err != nil {
		return nil, err
	}
	if d.P <= 0 || d.P > 1 {
		return nil, fmt.Errorf("cluster: DBSCAN++ sample fraction %v out of (0, 1]", d.P)
	}
	idx := d.Index
	if idx == nil {
		idx = index.NewBruteForce(d.Points, vecmath.CosineDistanceUnit)
	}
	start := time.Now()
	res := &Result{Algorithm: "DBSCAN++", Labels: make([]int, n)}

	rng := rand.New(rand.NewSource(d.Seed))
	m := int(float64(n) * d.P)
	if m < 1 {
		m = 1
	}
	sample := rng.Perm(n)[:m]

	// Detect core points within the sample, w.r.t. the whole dataset.
	cores := make([]int, 0, m)
	coreNeighbors := make(map[int][]int, m)
	for _, s := range sample {
		if err := checkCtx(ctx, res.RangeQueries); err != nil {
			return nil, err
		}
		neighbors := idx.RangeSearch(d.Points[s], d.Eps)
		res.RangeQueries++
		if len(neighbors) >= d.Tau {
			cores = append(cores, s)
			coreNeighbors[s] = neighbors
		}
	}

	labels := ClusterCoresAndAssign(d.Points, d.Eps, cores, coreNeighbors)
	res.Labels = labels
	res.Core = CoreMask(n, cores)
	res.Forest = DeriveForest(labels, res.Core)
	res.Elapsed = time.Since(start)
	res.finalize()
	return res, nil
}

// CoreMask expands a core id list into the dense mask Result.Core carries.
func CoreMask(n int, cores []int) []bool {
	mask := make([]bool, n)
	for _, c := range cores {
		mask[c] = true
	}
	return mask
}

// ClusterCoresAndAssign is the shared tail of DBSCAN++ and LAF-DBSCAN++:
// build clusters as connected components of the sampled core points under
// ε-connectivity (two cores connect when either contains the other in its
// neighbor list), then assign every unlabeled point to the cluster of its
// closest core point when within ε.
func ClusterCoresAndAssign(points [][]float32, eps float64, cores []int, coreNeighbors map[int][]int) []int {
	return ClusterCoresAndAssignWorkers(points, eps, cores, coreNeighbors, 1, 0)
}

// ClusterCoresAndAssignWorkers is ClusterCoresAndAssign with the
// per-point nearest-core assignment spread over a worker pool (each point's
// assignment is independent, so the labeling is identical at any worker
// count). workers <= 0 selects GOMAXPROCS; batch sizes the work chunks.
func ClusterCoresAndAssignWorkers(points [][]float32, eps float64, cores []int, coreNeighbors map[int][]int, workers, batch int) []int {
	isCore := make(map[int]bool, len(cores))
	for _, c := range cores {
		isCore[c] = true
	}
	// Connected components via union-find: a core's neighbor list already
	// contains every core within ε of it, so unioning along neighbor lists
	// builds the ε-graph without extra distance work.
	uf := NewUnionFind()
	for _, c := range cores {
		uf.Find(c)
		for _, q := range coreNeighbors[c] {
			if isCore[q] {
				uf.Union(c, q)
			}
		}
	}
	return assignToCores(points, eps, cores, uf.Find, workers, batch)
}

// ClusterCoresAndAssignUnionWorkers is the wave engine's variant of
// ClusterCoresAndAssignWorkers: the ε-connectivity of the cores has already
// been folded into uf during neighbor discovery (cluster.WaveMerger), so no
// neighbor lists are needed — clusters are numbered off the forest and
// every other point is assigned to its closest core. The components are
// identical to the neighbor-list construction, so so is the labeling.
func ClusterCoresAndAssignUnionWorkers(points [][]float32, eps float64, cores []int, uf *AtomicUnionFind, workers, batch int) []int {
	return assignToCores(points, eps, cores, uf.Find, workers, batch)
}

// assignToCores is the shared tail of the two constructions above: number
// the core components by first occurrence in cores order (find maps a core
// to its component representative), then assign every remaining point to
// the cluster of its closest core point when within eps, noise otherwise.
func assignToCores(points [][]float32, eps float64, cores []int, find func(int) int, workers, batch int) []int {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Undefined
	}
	clusterID := make(map[int]int)
	next := 0
	for _, c := range cores {
		root := find(c)
		id, ok := clusterID[root]
		if !ok {
			next++
			id = next
			clusterID[root] = id
		}
		labels[c] = id
	}
	// Assign all remaining points to the closest core point within eps.
	index.ForEach(n, workers, batch, func(i int) {
		if labels[i] != Undefined {
			return
		}
		best, bestD := -1, eps
		for _, c := range cores {
			if d := vecmath.CosineDistanceUnit(points[i], points[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if best >= 0 {
			labels[i] = labels[best]
		} else {
			labels[i] = Noise
		}
	})
	return labels
}
