package cluster

// This file holds the label-resolution primitives of incremental model
// maintenance (Model.Insert / Model.Remove in the root package). The
// parallel engines established that every traversal labeling is a pure
// function of three order-free facts — the core set, ε-connectivity among
// core points, and each non-core point's adjacent cores. The incremental
// engine maintains exactly those facts under point insertion and removal
// and re-resolves labels from them; the functions here are the resolution
// side, pure in-memory graph work that issues no range queries.

// ResolveCanonical computes the canonical labeling of a maintained
// clustering state: core reports which points are core, and adj[i] lists
// the ids of the core points within Eps of point i (excluding i itself;
// entries that are not currently core are ignored, so callers may leave
// stale ids behind a demotion until their next maintenance pass).
//
// Clusters are the ε-connected components of the core points, numbered in
// ascending order of each component's minimum core id — exactly the
// numbering sequential DBSCAN's scan produces and WaveMerger.Resolve
// reproduces, because the traversal starts every cluster at its
// lowest-indexed core point. Non-core points with at least one adjacent
// core become borders: with a nil nearest they join the lowest-numbered
// adjacent cluster (the traversal methods' contested-border rule); a
// non-nil nearest selects the claiming core among the adjacent candidates
// (the sampling/block methods' nearest-core rule; it must return one of
// cands). Everything else is Noise.
func ResolveCanonical(core []bool, adj [][]int32, nearest func(i int, cands []int32) int32) []int {
	n := len(core)
	labels := make([]int, n) // 0 = unassigned, cluster ids start at 1
	// Component discovery by BFS from each unvisited core in ascending id
	// order assigns cluster ids in min-core order directly — no sort needed.
	c := 0
	var queue []int32
	for p := 0; p < n; p++ {
		if !core[p] || labels[p] != 0 {
			continue
		}
		c++
		labels[p] = c
		queue = append(queue[:0], int32(p))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range adj[u] {
				if core[v] && labels[v] == 0 {
					labels[v] = c
					queue = append(queue, v)
				}
			}
		}
	}
	// Border assignment from the border's own adjacency.
	for i := 0; i < n; i++ {
		if core[i] {
			continue
		}
		if nearest != nil {
			if len(adj[i]) > 0 {
				if pick := nearest(i, adj[i]); pick >= 0 && core[pick] {
					labels[i] = labels[pick]
				}
			}
		} else {
			for _, a := range adj[i] {
				if core[a] && (labels[i] == 0 || labels[a] < labels[i]) {
					labels[i] = labels[a]
				}
			}
		}
		if labels[i] == 0 {
			labels[i] = Noise
		}
	}
	return labels
}

// RenumberAscending canonicalizes cluster ids to 1..k in ascending order of
// their original values, in place, and returns k. It is the identity on a
// labeling that is already canonically numbered, and matches the
// renumbering every engine applies after its last label rewrite (LAF
// post-processing leaves union-find roots as ids; this maps them back onto
// a dense, order-preserving range).
func RenumberAscending(labels []int) int {
	maxID := 0
	for _, l := range labels {
		if l > maxID {
			maxID = l
		}
	}
	seen := make([]bool, maxID+1)
	for _, l := range labels {
		if l != Noise && l >= 0 {
			seen[l] = true
		}
	}
	remap := make([]int, maxID+1)
	k := 0
	for id, ok := range seen {
		if ok {
			k++
			remap[id] = k
		}
	}
	for i, l := range labels {
		if l != Noise && l >= 0 {
			labels[i] = remap[l]
		}
	}
	return k
}
