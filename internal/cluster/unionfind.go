package cluster

// UnionFind is a disjoint-set forest over sparse integer keys (cluster ids
// or point ids), with path compression and union by size. LAF
// post-processing and the block-merging stages use it.
type UnionFind struct {
	parent map[int]int
	size   map[int]int
}

// NewUnionFind returns an empty forest; keys are added lazily.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: make(map[int]int), size: make(map[int]int)}
}

// Find returns the representative of x, adding x as a singleton if new.
func (u *UnionFind) Find(x int) int {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		u.size[x] = 1
		return x
	}
	if p == x {
		return x
	}
	root := u.Find(p)
	u.parent[x] = root
	return root
}

// Union merges the sets of a and b and returns the surviving root.
func (u *UnionFind) Union(a, b int) int {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return ra
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b int) bool { return u.Find(a) == u.Find(b) }
