package cluster

import (
	"testing"

	"lafdbscan/internal/dataset"
	"lafdbscan/internal/metrics"
)

// evalDataset is a moderately hard mixture shared by the variant tests.
func evalDataset() *dataset.Dataset {
	return dataset.GenerateMixture("eval", dataset.MixtureConfig{
		N: 500, Dim: 32, Clusters: 6, MinSpread: 0.2, MaxSpread: 0.4,
		NoiseFrac: 0.2, SizeSkew: 1.0, Seed: 31,
	})
}

// groundTruth clusters with exact DBSCAN, the paper's reference.
func groundTruth(t *testing.T, d *dataset.Dataset, eps float64, tau int) *Result {
	t.Helper()
	res, err := (&DBSCAN{Points: d.Vectors, Eps: eps, Tau: tau}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func ariAgainst(t *testing.T, truth, approx *Result) float64 {
	t.Helper()
	ari, err := metrics.ARI(truth.Labels, approx.Labels)
	if err != nil {
		t.Fatal(err)
	}
	return ari
}

func TestDBSCANPPTracksDBSCAN(t *testing.T) {
	d := evalDataset()
	const eps, tau = 0.5, 4
	truth := groundTruth(t, d, eps, tau)
	res, err := (&DBSCANPP{Points: d.Vectors, Eps: eps, Tau: tau, P: 0.5, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ari := ariAgainst(t, truth, res); ari < 0.6 {
		t.Errorf("DBSCAN++ ARI = %v, want >= 0.6 at p=0.5", ari)
	}
	if res.RangeQueries > 260 {
		t.Errorf("DBSCAN++ ran %d range queries for a 50%% sample of 500", res.RangeQueries)
	}
}

func TestDBSCANPPFullSampleNearExact(t *testing.T) {
	d := evalDataset()
	const eps, tau = 0.5, 4
	truth := groundTruth(t, d, eps, tau)
	res, err := (&DBSCANPP{Points: d.Vectors, Eps: eps, Tau: tau, P: 1.0, Seed: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// With p=1 all cores are found; only border tie-breaks may differ.
	if ari := ariAgainst(t, truth, res); ari < 0.95 {
		t.Errorf("DBSCAN++ at p=1 ARI = %v, want >= 0.95", ari)
	}
}

func TestDBSCANPPValidation(t *testing.T) {
	d := dataset.TwoBlobs(4, 1)
	for _, p := range []float64{0, -0.5, 1.5} {
		if _, err := (&DBSCANPP{Points: d.Vectors, Eps: 0.3, Tau: 2, P: p}).Run(); err == nil {
			t.Errorf("sample fraction %v accepted", p)
		}
	}
}

func TestDBSCANPPSmallSampleStillRuns(t *testing.T) {
	d := dataset.TwoBlobs(30, 3)
	res, err := (&DBSCANPP{Points: d.Vectors, Eps: 0.3, Tau: 3, P: 0.05, Seed: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != d.Len() {
		t.Fatal("wrong label count")
	}
}

func TestKNNBlockHighBudgetTracksDBSCAN(t *testing.T) {
	d := evalDataset()
	const eps, tau = 0.5, 4
	truth := groundTruth(t, d, eps, tau)
	res, err := (&KNNBlock{Points: d.Vectors, Eps: eps, Tau: tau,
		Branching: 10, LeavesRatio: 1.0, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ari := ariAgainst(t, truth, res); ari < 0.5 {
		t.Errorf("KNN-BLOCK full-budget ARI = %v, want >= 0.5", ari)
	}
}

func TestKNNBlockQualityDegradesWithLeafBudget(t *testing.T) {
	d := evalDataset()
	const eps, tau = 0.5, 4
	truth := groundTruth(t, d, eps, tau)
	full, err := (&KNNBlock{Points: d.Vectors, Eps: eps, Tau: tau,
		Branching: 10, LeavesRatio: 1.0, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := (&KNNBlock{Points: d.Vectors, Eps: eps, Tau: tau,
		Branching: 10, LeavesRatio: 0.01, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ariAgainst(t, truth, tiny) > ariAgainst(t, truth, full)+0.05 {
		t.Error("tiny leaf budget beat the full budget; recall knob inverted")
	}
}

func TestKNNBlockValidation(t *testing.T) {
	d := dataset.TwoBlobs(4, 1)
	if _, err := (&KNNBlock{Points: d.Vectors, Eps: 0.3, Tau: 2, Branching: 1}).Run(); err == nil {
		t.Error("branching=1 accepted")
	}
}

func TestBlockDBSCANTracksDBSCAN(t *testing.T) {
	d := evalDataset()
	const eps, tau = 0.5, 4
	truth := groundTruth(t, d, eps, tau)
	res, err := (&BlockDBSCAN{Points: d.Vectors, Eps: eps, Tau: tau, Base: 2, RNT: 10, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ari := ariAgainst(t, truth, res); ari < 0.6 {
		t.Errorf("BLOCK-DBSCAN ARI = %v, want >= 0.6", ari)
	}
}

func TestBlockDBSCANDefaultsApplied(t *testing.T) {
	d := dataset.TwoBlobs(10, 5)
	res, err := (&BlockDBSCAN{Points: d.Vectors, Eps: 0.3, Tau: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Errorf("TwoBlobs clusters = %d, want 2", res.NumClusters)
	}
}

func TestBlockDBSCANValidation(t *testing.T) {
	d := dataset.TwoBlobs(4, 1)
	if _, err := (&BlockDBSCAN{Points: d.Vectors, Eps: 0.3, Tau: 2, Base: 0.9}).Run(); err == nil {
		t.Error("base <= 1 accepted")
	}
}

func TestBlockDBSCANUsesFewerQueriesOnDenseData(t *testing.T) {
	// Blocking pays off when many points share an eps/2 ball, i.e. on tight
	// clusters relative to eps.
	d := dataset.GenerateMixture("dense", dataset.MixtureConfig{
		N: 500, Dim: 32, Clusters: 4, MinSpread: 0.05, MaxSpread: 0.1,
		NoiseFrac: 0.05, Seed: 33,
	})
	const eps, tau = 0.5, 4
	truth := groundTruth(t, d, eps, tau)
	res, err := (&BlockDBSCAN{Points: d.Vectors, Eps: eps, Tau: tau, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RangeQueries >= truth.RangeQueries {
		t.Errorf("BLOCK-DBSCAN queries %d >= DBSCAN %d; blocking ineffective",
			res.RangeQueries, truth.RangeQueries)
	}
	if ari := ariAgainst(t, truth, res); ari < 0.9 {
		t.Errorf("dense-data ARI = %v, want >= 0.9", ari)
	}
}

func TestRhoApproxMatchesDBSCANAtRhoZero(t *testing.T) {
	d := evalDataset()
	const eps, tau = 0.5, 4
	truth := groundTruth(t, d, eps, tau)
	res, err := (&RhoApprox{Points: d.Vectors, Eps: eps, Tau: tau, Rho: 0}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// rho=0 grid queries are exact, so the clustering must match exactly.
	if ari := ariAgainst(t, truth, res); ari < 0.999 {
		t.Errorf("rho=0 ARI = %v, want 1", ari)
	}
}

func TestRhoApproxRelaxedProducesValidLabeling(t *testing.T) {
	// At rho=1 the density criterion is so loose that quality collapses;
	// the paper accordingly reports only its running time (Table 4). The
	// labeling must still be structurally valid.
	d := evalDataset()
	const eps, tau = 0.5, 4
	res, err := (&RhoApprox{Points: d.Vectors, Eps: eps, Tau: tau, Rho: 1.0}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != d.Len() {
		t.Fatal("wrong label count")
	}
	for _, l := range res.Labels {
		if l == Undefined {
			t.Fatal("undefined label leaked")
		}
		if l != Noise && (l < 1 || l > res.NumClusters) {
			t.Fatalf("label %d out of range", l)
		}
	}
	// Relaxation can only merge, never split, so at most as many clusters
	// as exact DBSCAN finds plus rounding noise.
	truth := groundTruth(t, d, eps, tau)
	if res.NumClusters > truth.NumClusters {
		t.Errorf("rho=1 found %d clusters, exact %d; relaxation should merge",
			res.NumClusters, truth.NumClusters)
	}
}

func TestRhoApproxValidation(t *testing.T) {
	d := dataset.TwoBlobs(4, 1)
	if _, err := (&RhoApprox{Points: d.Vectors, Eps: 0.3, Tau: 2, Rho: -1}).Run(); err == nil {
		t.Error("negative rho accepted")
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind()
	if uf.Find(3) != 3 {
		t.Error("fresh key not its own root")
	}
	uf.Union(1, 2)
	uf.Union(2, 3)
	if !uf.Same(1, 3) {
		t.Error("transitive union broken")
	}
	if uf.Same(1, 9) {
		t.Error("disjoint keys reported same")
	}
	root := uf.Find(1)
	if r2 := uf.Union(1, 3); r2 != root {
		t.Error("idempotent union changed root")
	}
}

func TestResultFinalize(t *testing.T) {
	r := &Result{Labels: []int{1, 1, 5, Noise, 9}}
	r.finalize()
	if r.NumClusters != 3 {
		t.Errorf("NumClusters = %d, want 3", r.NumClusters)
	}
}
