package cluster

import "sync/atomic"

// WaveMerger folds streamed range-query results into the three order-free
// facts label resolution needs — core flags, ε-connectivity of core points,
// and border-assignment stubs — so neighbor lists can be dropped the moment
// they are produced. It is the consumer side of index.BatchRangeSearchFunc:
// the parallel clustering drivers call Absorb from the wave callback and
// never retain a core point's neighbor list.
//
// Core-core edges are unioned through a publish-then-scan handshake: Absorb
// publishes p's core status atomically before scanning p's list, and unions
// p with every neighbor already published as core. Because d is symmetric,
// an ε-edge between cores p and q is seen from both sides; whichever side
// scans second finds the other's status already published, so every edge is
// unioned at least once no matter how queries interleave (with sequentially
// consistent atomics, both scans missing each other would require each
// store to follow the other's load — impossible). Neighbors whose queries
// never run (LAF's predicted stop points) stay unpublished and are never
// unioned, which is exactly the LAF drivers' contract.
//
// Non-core results are kept as stubs — a copy of the point's own neighbor
// list, necessarily shorter than tau — because a border point's own list
// contains every core within ε of it (symmetry again), which is all that
// border assignment needs. The big lists, the core points' — the bulk of
// the buffer-everything engine's O(Σ|N(p)|) peak — are never copied.
type WaveMerger struct {
	tau    int
	status []atomic.Int32 // 0 unpublished, 1 non-core, 2 core
	stubs  [][]int
	uf     *AtomicUnionFind
}

const (
	waveUnpublished int32 = iota
	waveNonCore
	waveCore
)

// NewWaveMerger returns a merger over n points with core threshold tau.
func NewWaveMerger(n, tau int) *WaveMerger {
	return &WaveMerger{
		tau:    tau,
		status: make([]atomic.Int32, n),
		stubs:  make([][]int, n),
		uf:     NewAtomicUnionFind(n),
	}
}

// SkipStubs disables border-stub retention, for drivers that number and
// assign clusters without calling Resolve (LAF-DBSCAN++'s nearest-core
// assignment recomputes distances and never reads stubs). Call before the
// first Absorb; Resolve must not be called afterwards.
func (m *WaveMerger) SkipStubs() { m.stubs = nil }

// Absorb folds the range-query result of point p into the merger and
// returns whether p is core. Safe for concurrent use on distinct p; ids is
// not retained (non-core lists are copied into the stub), so the caller may
// recycle it. Each p must be absorbed at most once.
//
//lafvet:hotpath
func (m *WaveMerger) Absorb(p int, ids []int) bool {
	if len(ids) >= m.tau {
		m.status[p].Store(waveCore)
		for _, q := range ids {
			if q != p && m.status[q].Load() == waveCore {
				m.uf.Union(p, q)
			}
		}
		return true
	}
	if m.stubs != nil {
		//lafvet:allow hotalloc the stub copy is the design: one short (<tau) allocation per NON-core point replaces buffering every neighbor list
		stub := make([]int, len(ids))
		copy(stub, ids)
		m.stubs[p] = stub
	}
	m.status[p].Store(waveNonCore)
	return false
}

// Core returns the core-point mask. Call only after all Absorbs have
// completed (the wave engine's pool barrier provides the ordering).
func (m *WaveMerger) Core() []bool {
	core := make([]bool, len(m.status))
	for i := range m.status {
		core[i] = m.status[i].Load() == waveCore
	}
	return core
}

// UnionFind returns the ε-connectivity forest of the core points. Only
// meaningful after all Absorbs have completed.
func (m *WaveMerger) UnionFind() *AtomicUnionFind { return m.uf }

// Resolve turns the absorbed facts into the labeling sequential DBSCAN
// would produce, with the same two rules as ResolveCoreLabels: cluster ids
// are numbered by first-core scan order, and a border point takes the
// minimum cluster id among its adjacent cores. Here the border rule is
// evaluated from the border's side — its adjacent cores are read from its
// own stub, or, for points whose query never ran, from the optional stop
// map (stop point id → the set of queried points that found it; the LAF
// drivers' partial-neighbor map). Both views name the identical core set by
// symmetry of the metric, so the labels match ResolveCoreLabels over fully
// buffered neighbor lists bit for bit.
func (m *WaveMerger) Resolve(stop map[int]map[int]struct{}) []int {
	n := len(m.status)
	core := m.Core()
	labels := make([]int, n) // 0 = unassigned, cluster ids start at 1
	componentID := make(map[int]int)
	c := 0
	for p := 0; p < n; p++ {
		if !core[p] {
			continue
		}
		root := m.uf.Find(p)
		id, ok := componentID[root]
		if !ok {
			c++
			id = c
			componentID[root] = id
		}
		labels[p] = id
	}
	for q := 0; q < n; q++ {
		if core[q] || m.stubs[q] == nil {
			continue
		}
		for _, nb := range m.stubs[q] {
			if core[nb] {
				if id := labels[nb]; labels[q] == 0 || id < labels[q] {
					labels[q] = id
				}
			}
		}
	}
	//lafvet:orderfree each key q is a distinct non-core point, and the fold below only reads core labels, which this loop never writes
	for q, set := range stop {
		if labels[q] != 0 {
			continue
		}
		//lafvet:orderfree min over the set's core labels is commutative, and ties cannot occur (labels are distinct per core)
		for nb := range set {
			if core[nb] {
				if id := labels[nb]; labels[q] == 0 || id < labels[q] {
					labels[q] = id
				}
			}
		}
	}
	for i, l := range labels {
		if l == 0 {
			labels[i] = Noise
		}
	}
	return labels
}
