package cluster

import (
	"testing"

	"lafdbscan/internal/vecmath"
)

// identicalPoints builds n copies of the same unit vector: the degenerate
// dataset every algorithm must survive.
func identicalPoints(n int) [][]float32 {
	pts := make([][]float32, n)
	for i := range pts {
		pts[i] = []float32{1, 0, 0, 0}
	}
	return pts
}

func TestAllMethodsOnIdenticalPoints(t *testing.T) {
	pts := identicalPoints(30)
	runs := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"DBSCAN", func() (*Result, error) {
			return (&DBSCAN{Points: pts, Eps: 0.3, Tau: 3}).Run()
		}},
		{"DBSCAN++", func() (*Result, error) {
			return (&DBSCANPP{Points: pts, Eps: 0.3, Tau: 3, P: 0.5, Seed: 1}).Run()
		}},
		{"KNN-BLOCK", func() (*Result, error) {
			return (&KNNBlock{Points: pts, Eps: 0.3, Tau: 3, Seed: 1}).Run()
		}},
		{"BLOCK-DBSCAN", func() (*Result, error) {
			return (&BlockDBSCAN{Points: pts, Eps: 0.3, Tau: 3, Seed: 1}).Run()
		}},
		{"rho-approx", func() (*Result, error) {
			return (&RhoApprox{Points: pts, Eps: 0.3, Tau: 3, Rho: 0.5}).Run()
		}},
	}
	for _, r := range runs {
		res, err := r.run()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		// All copies are mutual neighbors at distance 0: one cluster, no
		// noise, for every method.
		if res.NumClusters != 1 {
			t.Errorf("%s: clusters = %d, want 1", r.name, res.NumClusters)
		}
		for i, l := range res.Labels {
			if l == Noise {
				t.Errorf("%s: point %d is noise among identical points", r.name, i)
				break
			}
		}
	}
}

func TestSinglePointDataset(t *testing.T) {
	pts := identicalPoints(1)
	res, err := (&DBSCAN{Points: pts, Eps: 0.3, Tau: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] != Noise {
		t.Error("lonely point with tau=2 must be noise")
	}
	res, err = (&DBSCAN{Points: pts, Eps: 0.3, Tau: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] != 1 {
		t.Error("lonely point with tau=1 is its own core")
	}
}

func TestDBSCANEuclideanMetric(t *testing.T) {
	// Two groups on the x axis, Euclidean metric.
	pts := [][]float32{{0}, {0.1}, {0.2}, {5}, {5.1}, {5.2}}
	res, err := (&DBSCAN{Points: pts, Eps: 0.5, Tau: 2, Metric: vecmath.Euclidean}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("euclidean 1-d clusters = %d, want 2", res.NumClusters)
	}
	if res.Labels[0] != res.Labels[1] || res.Labels[0] == res.Labels[3] {
		t.Errorf("wrong grouping: %v", res.Labels)
	}
}

func TestBlockDBSCANSingleTightBlock(t *testing.T) {
	// All points in one eps/2 ball: exactly one block, one query.
	pts := identicalPoints(20)
	res, err := (&BlockDBSCAN{Points: pts, Eps: 0.5, Tau: 3, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.RangeQueries != 1 {
		t.Errorf("queries = %d, want 1 (single inner core block)", res.RangeQueries)
	}
	if res.NumClusters != 1 {
		t.Errorf("clusters = %d", res.NumClusters)
	}
}
