package cluster

import (
	"context"
	"fmt"
	"time"

	"lafdbscan/internal/index"
	"lafdbscan/internal/vecmath"
)

// KNNBlock is KNN-BLOCK DBSCAN (Chen et al. 2019): an approximate DBSCAN
// variant that replaces exact range queries with k-nearest-neighbor queries
// over a FLANN-style k-means tree. A point is core when its Tau-th nearest
// neighbor (including itself) lies within Eps; clusters grow over the
// approximate neighbor lists. Quality therefore depends on the tree's two
// recall knobs — Branching and LeavesRatio — which the paper sweeps for the
// trade-off curves of Figures 2 and 3.
type KNNBlock struct {
	Points [][]float32
	Eps    float64
	Tau    int
	// Branching is the k-means fan-out (paper default 10, swept 3–20).
	Branching int
	// LeavesRatio is the fraction of tree leaves examined per query (paper
	// default 0.6, swept 0.001–0.3).
	LeavesRatio float64
	// Seed drives tree construction.
	Seed int64
}

// Run clusters the points.
func (k *KNNBlock) Run() (*Result, error) { return k.RunContext(context.Background()) }

// RunContext clusters the points under a cancellation context, checked
// every ctxCheckEvery KNN queries of the core-detection phase (the
// dominant cost; the later phases are linear map scans).
func (k *KNNBlock) RunContext(ctx context.Context) (*Result, error) {
	n := len(k.Points)
	if err := validateParams(n, k.Eps, k.Tau); err != nil {
		return nil, err
	}
	if k.Branching != 0 && k.Branching < 2 {
		return nil, fmt.Errorf("cluster: KNN-BLOCK branching factor %d < 2", k.Branching)
	}
	start := time.Now()
	tree := index.NewKMeansTree(k.Points, vecmath.CosineDistanceUnit, index.KMeansTreeConfig{
		Branching:   k.Branching,
		LeavesRatio: k.LeavesRatio,
		Seed:        k.Seed,
	})
	res := &Result{Algorithm: "KNN-BLOCK"}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Undefined
	}

	// Phase 1: approximate core detection. The KNN list of each point
	// doubles as its (approximate) neighbor list for expansion.
	kq := k.Tau
	if kq < 16 {
		kq = 16 // fetch a few extra neighbors so expansion has material
	}
	neighborLists := make([][]int, n)
	isCore := make([]bool, n)
	for i := 0; i < n; i++ {
		if err := checkCtx(ctx, res.RangeQueries); err != nil {
			return nil, err
		}
		ids, dists := tree.KNN(k.Points[i], kq)
		res.RangeQueries++
		cut := 0
		for cut < len(ids) && dists[cut] < k.Eps {
			cut++
		}
		neighborLists[i] = ids[:cut]
		isCore[i] = cut >= k.Tau
	}

	// Phase 2: grow clusters over mutual approximate neighborhoods. Because
	// approximate KNN lists are not symmetric, union along both directions.
	uf := NewUnionFind()
	for i := 0; i < n; i++ {
		if !isCore[i] {
			continue
		}
		uf.Find(i)
		for _, q := range neighborLists[i] {
			if isCore[q] {
				uf.Union(i, q)
			}
		}
	}
	clusterID := make(map[int]int)
	next := 0
	for i := 0; i < n; i++ {
		if !isCore[i] {
			continue
		}
		root := uf.Find(i)
		id, ok := clusterID[root]
		if !ok {
			next++
			id = next
			clusterID[root] = id
		}
		labels[i] = id
	}

	// Phase 3: border points adopt the cluster of any core point in their
	// approximate neighbor list; everything else is noise.
	for i := 0; i < n; i++ {
		if labels[i] != Undefined {
			continue
		}
		labels[i] = Noise
		for _, q := range neighborLists[i] {
			if isCore[q] {
				labels[i] = labels[q]
				break
			}
		}
	}

	res.Labels = labels
	res.Core = isCore
	res.Forest = DeriveForest(labels, isCore)
	res.Elapsed = time.Since(start)
	res.finalize()
	return res, nil
}
