package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lafdbscan/internal/dataset"
	"lafdbscan/internal/metrics"
)

// run is a test helper for plain DBSCAN.
func runDBSCAN(t *testing.T, points [][]float32, eps float64, tau int) *Result {
	t.Helper()
	res, err := (&DBSCAN{Points: points, Eps: eps, Tau: tau}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDBSCANTwoBlobs(t *testing.T) {
	d := dataset.TwoBlobs(12, 1)
	res := runDBSCAN(t, d.Vectors, 0.3, 3)
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	// The 3 orthogonal noise points must be labeled noise.
	noise := 0
	for i, l := range res.Labels {
		if l == Noise {
			noise++
			if d.TrueLabels[i] != -1 {
				t.Errorf("blob point %d labeled noise", i)
			}
		}
	}
	if noise != 3 {
		t.Errorf("noise count = %d, want 3", noise)
	}
	// Within each blob all labels must agree.
	seen := map[int]int{}
	for i, l := range res.Labels {
		if l == Noise {
			continue
		}
		truth := d.TrueLabels[i]
		if prev, ok := seen[truth]; ok && prev != l {
			t.Fatalf("blob %d split across clusters %d and %d", truth, prev, l)
		}
		seen[truth] = l
	}
}

func TestDBSCANAgainstGroundTruthARI(t *testing.T) {
	d := dataset.GenerateMixture("m", dataset.MixtureConfig{
		N: 400, Dim: 48, Clusters: 6, MinSpread: 0.15, MaxSpread: 0.25,
		NoiseFrac: 0.1, Seed: 11,
	})
	res := runDBSCAN(t, d.Vectors, 0.5, 4)
	ari, err := metrics.ARI(d.TrueLabels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.9 {
		t.Errorf("DBSCAN ARI vs generator truth = %v, want >= 0.9 on well-separated mixture", ari)
	}
}

func TestDBSCANAllNoiseWhenTauHuge(t *testing.T) {
	d := dataset.TwoBlobs(5, 2)
	res := runDBSCAN(t, d.Vectors, 0.3, 1000)
	for _, l := range res.Labels {
		if l != Noise {
			t.Fatal("expected everything noise")
		}
	}
	if res.NumClusters != 0 {
		t.Errorf("NumClusters = %d", res.NumClusters)
	}
}

func TestDBSCANSingleClusterWhenEpsHuge(t *testing.T) {
	d := dataset.TwoBlobs(5, 3)
	res := runDBSCAN(t, d.Vectors, 2.1, 1) // eps > max cosine distance
	if res.NumClusters != 1 {
		t.Fatalf("clusters = %d, want 1", res.NumClusters)
	}
	for _, l := range res.Labels {
		if l != 1 {
			t.Fatal("point not in the single cluster")
		}
	}
}

func TestDBSCANTauOneEveryPointCore(t *testing.T) {
	// With tau=1 every point is core (it is its own neighbor), so no noise.
	d := dataset.GloVeLike(80, 4)
	res := runDBSCAN(t, d.Vectors, 0.4, 1)
	for _, l := range res.Labels {
		if l == Noise {
			t.Fatal("tau=1 produced noise")
		}
	}
}

func TestDBSCANParamValidation(t *testing.T) {
	pts := [][]float32{{1, 0}}
	if _, err := (&DBSCAN{Points: pts, Eps: 0, Tau: 1}).Run(); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := (&DBSCAN{Points: pts, Eps: 0.5, Tau: 0}).Run(); err == nil {
		t.Error("tau=0 accepted")
	}
	if _, err := (&DBSCAN{Points: nil, Eps: 0.5, Tau: 1}).Run(); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestDBSCANRangeQueryCount(t *testing.T) {
	// Plain DBSCAN runs at most one range query per point, and exactly one
	// per non-border point.
	d := dataset.GloVeLike(120, 5)
	res := runDBSCAN(t, d.Vectors, 0.5, 4)
	if res.RangeQueries > 120 {
		t.Errorf("RangeQueries = %d > n", res.RangeQueries)
	}
	if res.RangeQueries == 0 {
		t.Error("no range queries recorded")
	}
	if res.SkippedQueries != 0 {
		t.Error("plain DBSCAN cannot skip queries")
	}
}

// Property: DBSCAN labelings are deterministic and every label is either
// noise or in [1, NumClusters].
func TestDBSCANLabelInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := dataset.GenerateMixture("p", dataset.MixtureConfig{
			N: 60 + r.Intn(60), Dim: 16, Clusters: 4,
			NoiseFrac: 0.2, Seed: seed,
		})
		eps := 0.3 + r.Float64()*0.5
		tau := 2 + r.Intn(4)
		res1, err := (&DBSCAN{Points: d.Vectors, Eps: eps, Tau: tau}).Run()
		if err != nil {
			return false
		}
		res2, err := (&DBSCAN{Points: d.Vectors, Eps: eps, Tau: tau}).Run()
		if err != nil {
			return false
		}
		for i, l := range res1.Labels {
			if l != res2.Labels[i] {
				return false
			}
			if l != Noise && (l < 1 || l > res1.NumClusters) {
				return false
			}
			if l == Undefined {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Core-point invariant: every point with >= tau neighbors must be in a
// cluster, and every cluster contains at least one core point.
func TestDBSCANCorePointInvariants(t *testing.T) {
	d := dataset.GenerateMixture("c", dataset.MixtureConfig{
		N: 250, Dim: 24, Clusters: 5, NoiseFrac: 0.25, Seed: 21,
	})
	eps, tau := 0.5, 4
	res := runDBSCAN(t, d.Vectors, eps, tau)
	countNeighbors := func(i int) int {
		c := 0
		for j := range d.Vectors {
			if cosDist(d.Vectors[i], d.Vectors[j]) < eps {
				c++
			}
		}
		return c
	}
	clusterHasCore := map[int]bool{}
	for i := range d.Vectors {
		isCore := countNeighbors(i) >= tau
		if isCore {
			if res.Labels[i] == Noise {
				t.Fatalf("core point %d labeled noise", i)
			}
			clusterHasCore[res.Labels[i]] = true
		}
	}
	for c := 1; c <= res.NumClusters; c++ {
		if !clusterHasCore[c] {
			t.Errorf("cluster %d has no core point", c)
		}
	}
}

func cosDist(a, b []float32) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return 1 - dot
}
