package cluster

import (
	"slices"
	"testing"

	"lafdbscan/internal/dataset"
)

// TestResolveCanonicalMatchesSequentialDBSCAN pins the incremental
// resolution against the reference traversal: building the maintained facts
// (core mask, core adjacency) from a full DBSCAN run and resolving them
// canonically must reproduce the traversal's labels bit for bit.
func TestResolveCanonicalMatchesSequentialDBSCAN(t *testing.T) {
	pts := dataset.GloVeLike(300, 42).Vectors
	eps, tau := 0.35, 4
	ref, err := (&DBSCAN{Points: pts, Eps: eps, Tau: tau}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Maintained facts, built the way the incremental engine maintains
	// them: counts decide cores, adjacency lists the cores within eps.
	n := len(pts)
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && ref.Core[j] && cosDist(pts[i], pts[j]) < eps {
				adj[i] = append(adj[i], int32(j))
			}
		}
	}
	labels := ResolveCanonical(ref.Core, adj, nil)
	if !slices.Equal(labels, ref.Labels) {
		t.Fatalf("canonical resolution diverged from sequential DBSCAN")
	}
}

// TestResolveCanonicalIgnoresStaleEntries checks demotion tolerance:
// adjacency entries pointing at no-longer-core points must not leak labels.
func TestResolveCanonicalIgnoresStaleEntries(t *testing.T) {
	core := []bool{true, false, false}
	adj := [][]int32{{}, {0, 2}, {2}} // 2 is stale (demoted)
	labels := ResolveCanonical(core, adj, nil)
	want := []int{1, 1, Noise}
	if !slices.Equal(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
}

// TestRenumberAscending pins the canonicalization RenumberAscending shares
// with the engines' finalize step.
func TestRenumberAscending(t *testing.T) {
	labels := []int{7, Noise, 3, 7, 12, 3}
	k := RenumberAscending(labels)
	want := []int{2, Noise, 1, 2, 3, 1}
	if k != 3 || !slices.Equal(labels, want) {
		t.Fatalf("k = %d labels = %v, want 3 %v", k, labels, want)
	}
	// Idempotent on an already-canonical labeling.
	if k := RenumberAscending(labels); k != 3 || !slices.Equal(labels, want) {
		t.Fatalf("renumber not idempotent: %v", labels)
	}
}
