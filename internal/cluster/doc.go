// Package cluster implements the clustering algorithms of the paper's
// evaluation: exact DBSCAN (the ground truth), the sampling-based DBSCAN++,
// and the three approximate baselines KNN-BLOCK DBSCAN, BLOCK-DBSCAN and
// ρ-approximate DBSCAN. The LAF-enhanced variants live in internal/core.
//
// All algorithms consume unit-normalized vectors and a cosine-distance
// threshold Eps; baselines that natively need Euclidean distance (the cover
// tree and the grid) convert thresholds with Equation 1 of the paper.
//
// Beyond the sequential formulations, the package holds the engine-shared
// machinery that makes a labeling a pure function of order-free facts:
// ParallelDBSCAN and WaveMerger fold core flags, core-core ε-edges and
// border stubs out of wave-streamed range queries (the memory-bounded
// parallel engine); ResolveCanonical and RenumberAscending re-derive the
// canonical labeling from a maintained core set and core-adjacency graph
// (the resolution side of incremental Insert/Remove on fitted models); and
// DeriveForest produces the engine-invariant cluster forest every driver
// reports.
package cluster
