package cluster

import (
	"context"
	"fmt"
	"time"
)

// ctxCheckEvery is how many range queries a sequential engine runs between
// context checks. Cheap enough to be invisible (one modulo plus, every 64th
// query, an atomic load inside ctx.Err) while keeping cancellation latency
// to a few dozen queries — the sequential analogue of the parallel engines'
// per-wave check.
const ctxCheckEvery = 64

// checkCtx returns ctx.Err() on every ctxCheckEvery-th query (and on the
// first, so a pre-cancelled context never starts work).
func checkCtx(ctx context.Context, queries int) error {
	if queries%ctxCheckEvery == 0 {
		return ctx.Err()
	}
	return nil
}

// Label values. Cluster ids are positive integers starting at 1, matching
// the paper's pseudocode (c starts at 0 and is pre-incremented).
const (
	// Noise marks noise points in the output labeling.
	Noise = -1
	// Undefined marks not-yet-visited points during clustering. It never
	// appears in a finished Result.
	Undefined = -2
)

// Result is the output of one clustering run.
type Result struct {
	// Algorithm names the method that produced the labeling.
	Algorithm string
	// Labels[i] is the cluster id of point i (>= 1), or Noise.
	Labels []int
	// NumClusters is the number of distinct cluster ids in Labels.
	NumClusters int
	// Elapsed is the wall-clock clustering time, including estimator
	// prediction time and excluding estimator training time, matching the
	// paper's efficiency metric.
	Elapsed time.Duration
	// RangeQueries counts full range queries executed against the dataset.
	RangeQueries int
	// SkippedQueries counts range queries LAF skipped via the estimator
	// (always 0 for non-LAF methods).
	SkippedQueries int
	// PostMerges counts cluster merges applied by LAF post-processing.
	PostMerges int
	// Core[i] reports whether the method certified point i as a core point.
	// For the exact methods this is the true density criterion
	// |N(i)| >= Tau; for the approximate and sampled methods it is the
	// method's own core notion (sampled cores, block members, truncated-KNN
	// cores, LAF's queried-and-core points). The fitted-model API builds
	// out-of-sample prediction on it.
	Core []bool
	// Forest[i] is the cluster forest in canonical form: the minimum-index
	// core point sharing i's final cluster for core i, and -1 for non-core
	// points. It is derived from (Labels, Core) after all label rewriting
	// (LAF post-processing included), so it is identical across the
	// sequential, parallel and wave engines and serializes byte-for-byte.
	Forest []int32
}

// DeriveForest computes the canonical cluster forest of a finished labeling:
// every core point maps to the minimum-index core point of its cluster,
// every non-core point to -1. Cluster ids can be arbitrary (only equality is
// used), so the forest is invariant under relabeling — the property the
// engine-equality and persistence round-trip tests pin.
func DeriveForest(labels []int, core []bool) []int32 {
	forest := make([]int32, len(labels))
	rootOf := make(map[int]int32)
	for i := range forest {
		forest[i] = -1
	}
	for i, isCore := range core {
		if !isCore || labels[i] == Noise {
			continue
		}
		root, ok := rootOf[labels[i]]
		if !ok {
			root = int32(i) // first core in index order is the minimum
			rootOf[labels[i]] = root
		}
		forest[i] = root
	}
	return forest
}

// Stats recomputes NumClusters from Labels; algorithms call it once before
// returning.
func (r *Result) finalize() {
	ids := make(map[int]struct{})
	for _, l := range r.Labels {
		if l != Noise {
			ids[l] = struct{}{}
		}
	}
	r.NumClusters = len(ids)
}

// validateParams checks the shared (eps, tau) parameter domain.
func validateParams(n int, eps float64, tau int) error {
	if eps <= 0 {
		return fmt.Errorf("cluster: eps must be positive, got %v", eps)
	}
	if tau < 1 {
		return fmt.Errorf("cluster: tau must be at least 1, got %d", tau)
	}
	if n == 0 {
		return fmt.Errorf("cluster: empty dataset")
	}
	return nil
}
