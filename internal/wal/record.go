package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	segmentMagic   = "LAFW"
	segmentVersion = 1
	// HeaderSize is the length of a segment header: 4-byte magic plus a
	// little-endian uint32 format version.
	HeaderSize = 8
	// recordHeader frames every record: uint32 payload length, uint32
	// CRC32-C of the payload.
	recordHeader = 8
	// MaxPayload bounds a single record's payload. Any length field above
	// it is treated as corruption rather than attempted as an allocation.
	MaxPayload = 1 << 30
)

// Kind discriminates record payloads.
type Kind uint8

const (
	// KindInsert journals a batch of inserted vectors.
	KindInsert Kind = 1
	// KindRemove journals a batch of removed point ids.
	KindRemove Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindRemove:
		return "remove"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Named decode errors. Replay folds them into the report's Reason; the
// serve layer surfaces them in recovery telemetry. Corrupt input never
// panics and never silently skips — it always resolves to one of these.
var (
	// ErrBadHeader reports a segment whose magic or version is wrong (or
	// whose header is itself torn). Nothing in such a segment is trusted.
	ErrBadHeader = errors.New("wal: bad segment header")
	// ErrTornRecord reports a record cut short by the end of the segment —
	// the expected shape of a crash mid-append.
	ErrTornRecord = errors.New("wal: torn record")
	// ErrCorruptRecord reports a structurally complete record that fails
	// its CRC, length or payload checks — bit rot, not a torn write.
	ErrCorruptRecord = errors.New("wal: corrupt record")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled mutation batch. Vectors is set for KindInsert,
// IDs for KindRemove.
type Record struct {
	Kind    Kind
	Vectors [][]float32
	IDs     []int
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendSegmentHeader appends the 8-byte segment header to b.
func AppendSegmentHeader(b []byte) []byte {
	b = append(b, segmentMagic...)
	return appendUint32(b, segmentVersion)
}

// CheckSegmentHeader validates the first HeaderSize bytes of a segment.
func CheckSegmentHeader(b []byte) error {
	if len(b) < HeaderSize {
		return fmt.Errorf("%w: %d bytes, want %d", ErrBadHeader, len(b), HeaderSize)
	}
	if string(b[:4]) != segmentMagic {
		return fmt.Errorf("%w: magic %q", ErrBadHeader, b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:HeaderSize]); v != segmentVersion {
		return fmt.Errorf("%w: format version %d, want %d", ErrBadHeader, v, segmentVersion)
	}
	return nil
}

// payloadSize computes the encoded payload length of rec, validating that
// the record is encodable at all (non-empty, rectangular vectors, ids that
// fit in uint32).
func payloadSize(rec *Record) (int, error) {
	switch rec.Kind {
	case KindInsert:
		if len(rec.Vectors) == 0 {
			return 0, errors.New("wal: insert record with no vectors")
		}
		dim := len(rec.Vectors[0])
		if dim == 0 {
			return 0, errors.New("wal: insert record with zero-dim vectors")
		}
		for i, v := range rec.Vectors {
			if len(v) != dim {
				return 0, fmt.Errorf("wal: insert vector %d has %d dims, vector 0 has %d", i, len(v), dim)
			}
		}
		return 1 + 8 + 4*len(rec.Vectors)*dim, nil
	case KindRemove:
		if len(rec.IDs) == 0 {
			return 0, errors.New("wal: remove record with no ids")
		}
		for _, id := range rec.IDs {
			if id < 0 || int64(id) > math.MaxUint32 {
				return 0, fmt.Errorf("wal: remove id %d does not fit the record format", id)
			}
		}
		return 1 + 4 + 4*len(rec.IDs), nil
	}
	return 0, fmt.Errorf("wal: unencodable record kind %d", rec.Kind)
}

// AppendRecord appends the framed encoding of rec to b and returns the
// extended slice. It allocates only when b's capacity is insufficient, so
// a log appending through a reused buffer stays allocation-free
// (BenchmarkWALAppend gates this).
func AppendRecord(b []byte, rec *Record) ([]byte, error) {
	size, err := payloadSize(rec)
	if err != nil {
		return b, err
	}
	if size > MaxPayload {
		return b, fmt.Errorf("wal: record payload %d bytes exceeds the %d limit", size, MaxPayload)
	}
	b = appendUint32(b, uint32(size))
	crcAt := len(b)
	b = appendUint32(b, 0) // CRC back-patched below
	start := len(b)
	b = append(b, byte(rec.Kind))
	switch rec.Kind {
	case KindInsert:
		b = appendUint32(b, uint32(len(rec.Vectors)))
		b = appendUint32(b, uint32(len(rec.Vectors[0])))
		for _, v := range rec.Vectors {
			for _, x := range v {
				b = appendUint32(b, math.Float32bits(x))
			}
		}
	case KindRemove:
		b = appendUint32(b, uint32(len(rec.IDs)))
		for _, id := range rec.IDs {
			b = appendUint32(b, uint32(id))
		}
	}
	crc := crc32.Checksum(b[start:], castagnoli)
	binary.LittleEndian.PutUint32(b[crcAt:], crc)
	return b, nil
}

// DecodeRecord decodes the first framed record in b, returning the record
// and the number of bytes consumed. At a clean segment end (b empty) it
// returns io.EOF. Every failure is one of the named errors — ErrTornRecord
// when b ends inside the frame, ErrCorruptRecord when the frame is complete
// but its CRC, kind or structure is wrong — and it never panics on
// arbitrary input (FuzzDecodeRecord pins both properties).
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) == 0 {
		return Record{}, 0, io.EOF
	}
	if len(b) < recordHeader {
		return Record{}, 0, fmt.Errorf("%w: %d trailing bytes, a record header needs %d", ErrTornRecord, len(b), recordHeader)
	}
	plen := binary.LittleEndian.Uint32(b)
	if plen == 0 || plen > MaxPayload {
		return Record{}, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorruptRecord, plen)
	}
	if uint64(len(b)-recordHeader) < uint64(plen) {
		return Record{}, 0, fmt.Errorf("%w: payload cut at %d of %d bytes", ErrTornRecord, len(b)-recordHeader, plen)
	}
	payload := b[recordHeader : recordHeader+int(plen)]
	want := binary.LittleEndian.Uint32(b[4:recordHeader])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("%w: CRC %08x, stored %08x", ErrCorruptRecord, got, want)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, recordHeader + int(plen), nil
}

func decodePayload(p []byte) (Record, error) {
	kind := Kind(p[0]) // p is non-empty: plen >= 1 was checked
	body := p[1:]
	switch kind {
	case KindInsert:
		if len(body) < 8 {
			return Record{}, fmt.Errorf("%w: insert body is %d bytes, header needs 8", ErrCorruptRecord, len(body))
		}
		count := binary.LittleEndian.Uint32(body)
		dim := binary.LittleEndian.Uint32(body[4:])
		if count == 0 || dim == 0 {
			return Record{}, fmt.Errorf("%w: insert record claims %d vectors of %d dims", ErrCorruptRecord, count, dim)
		}
		if uint64(count)*uint64(dim)*4 != uint64(len(body)-8) {
			return Record{}, fmt.Errorf("%w: insert record claims %d×%d floats in a %d-byte body", ErrCorruptRecord, count, dim, len(body)-8)
		}
		flat := make([]float32, int(count)*int(dim))
		for i := range flat {
			flat[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[8+4*i:]))
		}
		vecs := make([][]float32, count)
		for i := range vecs {
			vecs[i] = flat[i*int(dim) : (i+1)*int(dim) : (i+1)*int(dim)]
		}
		return Record{Kind: KindInsert, Vectors: vecs}, nil
	case KindRemove:
		if len(body) < 4 {
			return Record{}, fmt.Errorf("%w: remove body is %d bytes, header needs 4", ErrCorruptRecord, len(body))
		}
		count := binary.LittleEndian.Uint32(body)
		if count == 0 || uint64(count)*4 != uint64(len(body)-4) {
			return Record{}, fmt.Errorf("%w: remove record claims %d ids in a %d-byte body", ErrCorruptRecord, count, len(body)-4)
		}
		ids := make([]int, count)
		for i := range ids {
			ids[i] = int(binary.LittleEndian.Uint32(body[4+4*i:]))
		}
		return Record{Kind: KindRemove, IDs: ids}, nil
	}
	return Record{}, fmt.Errorf("%w: unknown record kind %d", ErrCorruptRecord, uint8(kind))
}
