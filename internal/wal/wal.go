package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// SyncPolicy selects when appends fsync the segment.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every append: the append returning is the
	// commit point, and a crash loses nothing that was acknowledged.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per SyncInterval window, piggybacked
	// on appends: bounded loss (records younger than the window) for far
	// fewer fsyncs under sustained ingest.
	SyncInterval
	// SyncOff never fsyncs; flushing is the OS's business. Replay still
	// never sees a torn record — the single-write append keeps segments
	// crash-consistent — but the newest records may be lost.
	SyncOff
)

// ParseSyncPolicy maps the flag spelling ("always", "interval", "off") to
// a policy; the empty string selects SyncAlways.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// DefaultSyncInterval is the SyncInterval window when Options leaves it 0.
const DefaultSyncInterval = 100 * time.Millisecond

// Options configure a Log.
type Options struct {
	Sync SyncPolicy
	// SyncInterval is the SyncInterval policy's window (0 selects
	// DefaultSyncInterval).
	SyncInterval time.Duration
	// OnAppend, if set, observes every successful append with the record's
	// framed size in bytes (telemetry hook; called outside hot-path locks'
	// critical invariants but under the log's own mutex — keep it cheap).
	OnAppend func(bytes int)
	// OnFsync, if set, observes every fsync with its duration.
	OnFsync func(d time.Duration)
}

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Log is an append-only segment writer. Appends encode into a reused
// buffer and issue exactly one Write, so a crash tears at most the final
// record; Unappend rolls back a record whose in-memory apply failed, so
// the journal never runs ahead of the model it protects.
type Log struct {
	path string
	fs   FS
	opts Options

	mu sync.Mutex
	// All fields below are guarded by mu.
	f        File
	buf      []byte
	size     int64
	records  int64
	lastSync time.Time
	closed   bool
}

// Create starts a fresh segment at path, writing (and, unless the policy
// is SyncOff, fsyncing) the segment header.
func Create(fsys FS, path string, opts Options) (*Log, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, err
	}
	l := &Log{path: path, fs: fsys, opts: opts, f: f}
	//lafvet:allow lockcheck the log is freshly constructed and unshared
	if err := l.writeHeaderLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// OpenAt reopens an existing segment for appending. validSize and records
// name the segment's longest well-formed prefix (from a prior Replay); the
// file is truncated there first, so a torn tail is physically discarded
// before the first new append. validSize 0 means even the header was torn:
// the segment restarts empty.
func OpenAt(fsys FS, path string, validSize, records int64, opts Options) (*Log, error) {
	if validSize != 0 && validSize < HeaderSize {
		return nil, fmt.Errorf("wal: valid size %d is inside the segment header", validSize)
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{path: path, fs: fsys, opts: opts, f: f}
	//lafvet:allow lockcheck the log is freshly constructed and unshared
	l.size, l.records = validSize, records
	if validSize == 0 {
		//lafvet:allow lockcheck the log is freshly constructed and unshared
		if err := l.writeHeaderLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return l, nil
}

// writeHeaderLocked writes the segment header at the current (empty) file
// position and fsyncs it unless the policy is SyncOff.
func (l *Log) writeHeaderLocked() error {
	hdr := AppendSegmentHeader(make([]byte, 0, HeaderSize))
	if _, err := l.f.Write(hdr); err != nil {
		return err
	}
	l.size += HeaderSize
	if l.opts.Sync != SyncOff {
		return l.syncLocked()
	}
	return nil
}

// Append journals rec: one buffered encode, one Write, then the policy's
// fsync. Under SyncAlways the return is the commit point. A write error
// rolls the file back to the pre-append size so the segment never carries
// a tail the log did not acknowledge.
func (l *Log) Append(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var err error
	l.buf, err = AppendRecord(l.buf[:0], rec)
	if err != nil {
		return err
	}
	prev := l.size
	n, err := l.f.Write(l.buf)
	l.size += int64(n)
	if err != nil {
		if terr := l.rollbackLocked(prev); terr != nil {
			l.closed = true
			return errors.Join(err, terr)
		}
		return err
	}
	l.records++
	if fn := l.opts.OnAppend; fn != nil {
		fn(len(l.buf))
	}
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		iv := l.opts.SyncInterval
		if iv <= 0 {
			iv = DefaultSyncInterval
		}
		if time.Since(l.lastSync) >= iv {
			return l.syncLocked()
		}
	}
	return nil
}

func (l *Log) rollbackLocked(target int64) error {
	if err := l.f.Truncate(target); err != nil {
		return err
	}
	l.size = target
	return nil
}

// Mark returns the current (size, records) pair under one lock — the
// rollback point a caller captures before Append so a failed apply can
// Unappend to exactly the pre-append state.
func (l *Log) Mark() (size, records int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size, l.records
}

// Unappend rolls the segment back to a Mark taken earlier: the journaled
// records after it were never applied to the model (the apply failed), so
// replay must not see them. Under SyncAlways the truncation is fsynced
// before returning.
func (l *Log) Unappend(size, records int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if size < HeaderSize || size > l.size || records > l.records {
		return fmt.Errorf("wal: unappend to %d bytes / %d records is outside the log's %d / %d", size, records, l.size, l.records)
	}
	if err := l.rollbackLocked(size); err != nil {
		l.closed = true
		return err
	}
	l.records = records
	if l.opts.Sync == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// Sync forces an fsync regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	d := time.Since(t0)
	l.lastSync = time.Now()
	if fn := l.opts.OnFsync; fn != nil {
		fn(d)
	}
	return nil
}

// Size returns the segment's current byte length (header included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the number of records in the segment.
func (l *Log) Records() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Path returns the segment's file path.
func (l *Log) Path() string { return l.path }

// Close flushes (unless SyncOff) and closes the segment. Closing twice is
// a no-op.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var errs []error
	if l.opts.Sync != SyncOff {
		if err := l.syncLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := l.f.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// ReplayReport describes what a Replay recovered — and, after a crash,
// what it had to drop. Truncated with a Reason naming ErrTornRecord,
// ErrCorruptRecord or ErrBadHeader is the expected post-crash state, not a
// failure; DroppedBytes counts everything from the first bad byte to the
// end of the file.
type ReplayReport struct {
	// Records is the number of well-formed records replayed.
	Records int64 `json:"records"`
	// Inserted and Removed total the points those records moved.
	Inserted int64 `json:"inserted"`
	Removed  int64 `json:"removed"`
	// ValidSize is the byte length of the longest well-formed prefix — the
	// size to OpenAt for continued appending.
	ValidSize int64 `json:"valid_size"`
	// Truncated reports that the segment ended in a torn or corrupt
	// record (or a bad header); Reason carries the named error's text and
	// DroppedBytes the length of the discarded suffix.
	Truncated    bool   `json:"truncated"`
	Reason       string `json:"reason,omitempty"`
	DroppedBytes int64  `json:"dropped_bytes"`
}

// Replay reads the segment at path and feeds every well-formed record, in
// append order, to apply. It stops — without error — at the first torn or
// corrupt record, reporting the drop; an apply error aborts the replay and
// is returned (the report then covers the records applied before it).
// A nil apply just scans, which is how tests and tools measure a
// segment's valid prefix.
func Replay(fsys FS, path string, apply func(*Record) error) (ReplayReport, error) {
	var rep ReplayReport
	r, err := fsys.Open(path)
	if err != nil {
		return rep, err
	}
	data, rerr := io.ReadAll(r)
	cerr := r.Close()
	if rerr != nil {
		return rep, rerr
	}
	if cerr != nil {
		return rep, cerr
	}
	total := int64(len(data))
	if err := CheckSegmentHeader(data); err != nil {
		// Nothing under a bad header is trusted: the whole file is dropped
		// and ValidSize 0 tells OpenAt to restart the segment.
		rep.Truncated = true
		rep.Reason = err.Error()
		rep.DroppedBytes = total
		return rep, nil
	}
	off := int64(HeaderSize)
	for {
		rec, n, err := DecodeRecord(data[off:])
		if err == io.EOF {
			break
		}
		if err != nil {
			rep.Truncated = true
			rep.Reason = err.Error()
			rep.DroppedBytes = total - off
			break
		}
		if apply != nil {
			if aerr := apply(&rec); aerr != nil {
				rep.ValidSize = off
				return rep, fmt.Errorf("wal: applying record %d: %w", rep.Records+1, aerr)
			}
		}
		off += int64(n)
		rep.Records++
		switch rec.Kind {
		case KindInsert:
			rep.Inserted += int64(len(rec.Vectors))
		case KindRemove:
			rep.Removed += int64(len(rec.IDs))
		}
	}
	rep.ValidSize = off
	return rep, nil
}
