package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// testRecords is a small scripted history: two insert batches and a
// remove, enough to exercise both payload codecs and multi-record replay.
func testRecords() []Record {
	return []Record{
		{Kind: KindInsert, Vectors: [][]float32{{1, 2, 3}, {4, 5, 6}}},
		{Kind: KindRemove, IDs: []int{0, 3, 7}},
		{Kind: KindInsert, Vectors: [][]float32{{-0.5, 0.25, 1e9}}},
	}
}

func writeSegment(t *testing.T, dir string, recs []Record, opts Options) string {
	t.Helper()
	path := filepath.Join(dir, "seg.log")
	l, err := Create(OSFS(), path, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := l.Append(&recs[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// replayAll collects deep copies of every replayed record (Replay hands
// out views into its read buffer; copying keeps the ownership honest).
func replayAll(t *testing.T, path string) ([]Record, ReplayReport) {
	t.Helper()
	var got []Record
	rep, err := Replay(OSFS(), path, func(r *Record) error {
		cp := Record{Kind: r.Kind}
		for _, v := range r.Vectors {
			cp.Vectors = append(cp.Vectors, append([]float32(nil), v...))
		}
		if r.IDs != nil {
			cp.IDs = append([]int(nil), r.IDs...)
		}
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, rep
}

func TestRoundTrip(t *testing.T) {
	recs := testRecords()
	path := writeSegment(t, t.TempDir(), recs, Options{Sync: SyncAlways})
	got, rep := replayAll(t, path)
	if rep.Truncated || rep.Records != int64(len(recs)) {
		t.Fatalf("report = %+v, want %d records untruncated", rep, len(recs))
	}
	if rep.Inserted != 3 || rep.Removed != 3 {
		t.Fatalf("report counts = %+v, want 3 inserted / 3 removed", rep)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d round-tripped as %+v, want %+v", i, got[i], recs[i])
		}
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValidSize != st.Size() {
		t.Fatalf("ValidSize = %d, file is %d", rep.ValidSize, st.Size())
	}
}

// recordBoundaries returns the byte offsets at which each record of the
// segment ends (starting with HeaderSize, the "zero records" boundary).
func recordBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSegmentHeader(data); err != nil {
		t.Fatal(err)
	}
	bounds := []int64{HeaderSize}
	off := int64(HeaderSize)
	for int(off) < len(data) {
		_, n, err := DecodeRecord(data[off:])
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		off += int64(n)
		bounds = append(bounds, off)
	}
	return bounds
}

// TestReplayEveryCut truncates the segment at every byte offset and pins
// the replay contract: the records strictly before the cut survive, cuts
// on record boundaries (and inside the header region at 8) are clean,
// everything else reports a truncation with a named reason — and nothing
// ever errors or panics.
func TestReplayEveryCut(t *testing.T) {
	recs := testRecords()
	dir := t.TempDir()
	path := writeSegment(t, dir, recs, Options{Sync: SyncOff})
	bounds := recordBoundaries(t, path)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		chopped := filepath.Join(dir, "chopped.log")
		if err := os.WriteFile(chopped, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, b := range bounds[1:] {
			if b <= cut {
				want++
			}
		}
		rep, err := Replay(OSFS(), chopped, nil)
		if err != nil {
			t.Fatalf("cut %d: replay errored: %v", cut, err)
		}
		if rep.Records != want {
			t.Fatalf("cut %d: %d records survive, want %d", cut, rep.Records, want)
		}
		atBoundary := false
		for _, b := range bounds {
			if b == cut {
				atBoundary = true
			}
		}
		if atBoundary && (rep.Truncated || rep.DroppedBytes != 0) {
			t.Fatalf("cut %d is a boundary but report = %+v", cut, rep)
		}
		if !atBoundary {
			if !rep.Truncated || rep.Reason == "" {
				t.Fatalf("cut %d: mid-record cut not reported: %+v", cut, rep)
			}
			if rep.DroppedBytes != cut-rep.ValidSize {
				t.Fatalf("cut %d: DroppedBytes = %d, want %d", cut, rep.DroppedBytes, cut-rep.ValidSize)
			}
		}
	}
}

// TestReplayCorruptRecord flips one payload bit in the middle record: the
// prefix survives, the corrupt record and everything after it is dropped,
// and the reason names ErrCorruptRecord.
func TestReplayCorruptRecord(t *testing.T) {
	recs := testRecords()
	dir := t.TempDir()
	path := writeSegment(t, dir, recs, Options{})
	bounds := recordBoundaries(t, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside record 1's payload (past its 8-byte frame header).
	data[bounds[1]+recordHeader+2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(OSFS(), path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 1 || !rep.Truncated {
		t.Fatalf("report = %+v, want 1 record and a truncation", rep)
	}
	if want := ErrCorruptRecord.Error(); !contains(rep.Reason, want) {
		t.Fatalf("reason %q does not name %q", rep.Reason, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestReplayBadHeader pins that a segment with a mangled header is dropped
// whole (ValidSize 0) and the reason names ErrBadHeader.
func TestReplayBadHeader(t *testing.T) {
	dir := t.TempDir()
	path := writeSegment(t, dir, testRecords(), Options{})
	data, _ := os.ReadFile(path)
	data[0] = 'X'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(OSFS(), path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.ValidSize != 0 || rep.Records != 0 || rep.DroppedBytes != int64(len(data)) {
		t.Fatalf("report = %+v, want everything dropped", rep)
	}
	if !contains(rep.Reason, ErrBadHeader.Error()) {
		t.Fatalf("reason %q does not name ErrBadHeader", rep.Reason)
	}
}

// TestOpenAtContinues reopens a segment with a torn tail at its valid
// prefix and appends more: replay then sees the surviving prefix plus the
// new records, and the torn bytes are physically gone.
func TestOpenAtContinues(t *testing.T) {
	recs := testRecords()
	dir := t.TempDir()
	path := writeSegment(t, dir, recs, Options{})
	bounds := recordBoundaries(t, path)
	// Tear the last record in half.
	tear := bounds[2] + (bounds[3]-bounds[2])/2
	if err := os.Truncate(path, tear); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(OSFS(), path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 || !rep.Truncated || rep.ValidSize != bounds[2] {
		t.Fatalf("report = %+v, want 2 records valid to %d", rep, bounds[2])
	}
	l, err := OpenAt(OSFS(), path, rep.ValidSize, rep.Records, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	extra := Record{Kind: KindRemove, IDs: []int{9}}
	if err := l.Append(&extra); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 3 {
		t.Fatalf("Records = %d, want 3", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, rep2 := replayAll(t, path)
	if rep2.Truncated || rep2.Records != 3 {
		t.Fatalf("after continue: report = %+v", rep2)
	}
	if !reflect.DeepEqual(got[2], extra) {
		t.Fatalf("record 2 = %+v, want %+v", got[2], extra)
	}
}

// TestOpenAtZeroRestartsSegment pins the torn-header path: valid size 0
// rewrites the header and the segment is appendable again.
func TestOpenAtZeroRestartsSegment(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.log")
	if err := os.WriteFile(path, []byte("LAF"), 0o644); err != nil { // torn header
		t.Fatal(err)
	}
	rep, err := Replay(OSFS(), path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValidSize != 0 || !rep.Truncated {
		t.Fatalf("report = %+v, want total drop", rep)
	}
	l, err := OpenAt(OSFS(), path, 0, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Kind: KindInsert, Vectors: [][]float32{{1}}}
	if err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, rep2 := replayAll(t, path)
	if rep2.Truncated || len(got) != 1 {
		t.Fatalf("restarted segment replay = %+v (%d records)", rep2, len(got))
	}
}

// TestUnappend pins annulment: a journaled record rolled back with
// Unappend never reaches replay, and appending after the rollback works.
func TestUnappend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.log")
	l, err := Create(OSFS(), path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	r1 := Record{Kind: KindInsert, Vectors: [][]float32{{1, 2}}}
	if err := l.Append(&r1); err != nil {
		t.Fatal(err)
	}
	size, n := l.Mark()
	doomed := Record{Kind: KindRemove, IDs: []int{5}}
	if err := l.Append(&doomed); err != nil {
		t.Fatal(err)
	}
	if err := l.Unappend(size, n); err != nil {
		t.Fatal(err)
	}
	r2 := Record{Kind: KindInsert, Vectors: [][]float32{{3, 4}}}
	if err := l.Append(&r2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, rep := replayAll(t, path)
	if rep.Records != 2 || rep.Truncated {
		t.Fatalf("report = %+v, want exactly 2 records", rep)
	}
	if !reflect.DeepEqual(got, []Record{r1, r2}) {
		t.Fatalf("replay = %+v, want the unappended record gone", got)
	}
	if err := l.Unappend(size, n); !errors.Is(err, ErrClosed) {
		t.Fatalf("unappend after close = %v, want ErrClosed", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"": SyncAlways, "always": SyncAlways, "interval": SyncInterval, "off": SyncOff} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if in != "" && got.String() != in {
			t.Errorf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}
}

// TestSyncPolicies pins fsync accounting per policy via the OnFsync hook:
// always fsyncs once per append, interval respects the window, off never
// fsyncs on append.
func TestSyncPolicies(t *testing.T) {
	dir := t.TempDir()
	count := func(opts Options, appends int) int {
		fsyncs := 0
		opts.OnFsync = func(time.Duration) { fsyncs++ }
		l, err := Create(OSFS(), filepath.Join(dir, opts.Sync.String()+".log"), opts)
		if err != nil {
			t.Fatal(err)
		}
		rec := Record{Kind: KindInsert, Vectors: [][]float32{{1}}}
		for i := 0; i < appends; i++ {
			if err := l.Append(&rec); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		return fsyncs
	}
	// always: header + 5 appends + close.
	if got := count(Options{Sync: SyncAlways}, 5); got != 7 {
		t.Errorf("always: %d fsyncs, want 7", got)
	}
	// off: never, not even on close.
	if got := count(Options{Sync: SyncOff}, 5); got != 0 {
		t.Errorf("off: %d fsyncs, want 0", got)
	}
	// interval with an enormous window: header + close only.
	if got := count(Options{Sync: SyncInterval, SyncInterval: time.Hour}, 5); got != 2 {
		t.Errorf("interval(1h): %d fsyncs, want 2", got)
	}
	// interval with a negative-effectively-zero window fsyncs per append
	// (time.Since(lastSync) >= tiny is always true).
	if got := count(Options{Sync: SyncInterval, SyncInterval: time.Nanosecond}, 5); got != 7 {
		t.Errorf("interval(1ns): %d fsyncs, want 7", got)
	}
}

// TestAppendHookAccounting pins OnAppend's byte accounting against the
// file's actual growth.
func TestAppendHookAccounting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.log")
	var hooked int64
	l, err := Create(OSFS(), path, Options{Sync: SyncOff, OnAppend: func(n int) { hooked += int64(n) }})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for i := range recs {
		if err := l.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if want := l.Size() - HeaderSize; hooked != want {
		t.Fatalf("OnAppend saw %d bytes, log grew %d", hooked, want)
	}
	l.Close()
}

// TestEncodeRejects pins the encoder's validation: empty batches, ragged
// vectors and out-of-range ids never reach the disk.
func TestEncodeRejects(t *testing.T) {
	for name, rec := range map[string]Record{
		"empty-insert": {Kind: KindInsert},
		"empty-remove": {Kind: KindRemove},
		"zero-dim":     {Kind: KindInsert, Vectors: [][]float32{{}}},
		"ragged":       {Kind: KindInsert, Vectors: [][]float32{{1, 2}, {3}}},
		"negative-id":  {Kind: KindRemove, IDs: []int{-1}},
		"unknown-kind": {Kind: 9, IDs: []int{1}},
	} {
		if _, err := AppendRecord(nil, &rec); err == nil {
			t.Errorf("%s: encoded without error", name)
		}
	}
}
