// Command gen regenerates the committed fuzz seed corpus for
// FuzzDecodeRecord. The cases mirror fuzzSeeds in fuzz_test.go — valid
// records, torn and corrupt frames, adversarial lengths — so plain
// `go test ./internal/wal` replays every named decoder edge case without
// the fuzzing engine. Run from the repository root:
//
//	go run ./internal/wal/testdata
//
// (The go tool skips testdata directories in ./... wildcards, so this
// package never enters normal builds.)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lafdbscan/internal/wal"
)

func main() {
	out := flag.String("out", "internal/wal/testdata/fuzz/FuzzDecodeRecord", "corpus directory")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	enc := func(r wal.Record) []byte {
		b, err := wal.AppendRecord(nil, &r)
		if err != nil {
			log.Fatal(err)
		}
		return b
	}
	insert := enc(wal.Record{Kind: wal.KindInsert, Vectors: [][]float32{{1, 2}, {3, 4}}})
	remove := enc(wal.Record{Kind: wal.KindRemove, IDs: []int{0, 7, 42}})
	corrupt := append([]byte(nil), insert...)
	corrupt[len(corrupt)-1] ^= 0x01
	badKind := append([]byte(nil), remove...)
	badKind[8] = 9
	seeds := map[string][]byte{
		"empty":            nil,
		"insert":           insert,
		"remove":           remove,
		"two-records":      append(append([]byte(nil), insert...), remove...),
		"torn-frame":       insert[:3],
		"torn-payload":     insert[:9],
		"flipped-bit":      corrupt,
		"unknown-kind":     badKind,
		"zero-length":      {0, 0, 0, 0, 0, 0, 0, 0},
		"huge-length":      {0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4},
		"plausible-length": {13, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0},
	}
	for name, b := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(filepath.Join(*out, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d seeds to %s\n", len(seeds), *out)
}
