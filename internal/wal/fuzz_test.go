package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeeds enumerates the decoder's edge cases: valid records of both
// kinds, every named failure (torn header, torn payload, CRC mismatch,
// unknown kind, implausible lengths) and adversarial length fields. The
// same cases live as committed files under testdata/fuzz/FuzzDecodeRecord
// so plain `go test` (and the CI fuzz-seed smoke) replays them without
// -fuzz; regenerate with `go run ./internal/wal/testdata`.
func fuzzSeeds(t interface{ Fatal(...any) }) [][]byte {
	enc := func(r Record) []byte {
		b, err := AppendRecord(nil, &r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	insert := enc(Record{Kind: KindInsert, Vectors: [][]float32{{1, 2}, {3, 4}}})
	remove := enc(Record{Kind: KindRemove, IDs: []int{0, 7, 42}})
	corrupt := append([]byte(nil), insert...)
	corrupt[len(corrupt)-1] ^= 0x01
	badKind := append([]byte(nil), remove...)
	badKind[recordHeader] = 9 // CRC now mismatches too; order of checks must not panic
	return [][]byte{
		nil,
		insert,
		remove,
		append(append([]byte(nil), insert...), remove...),
		insert[:3],                               // torn frame header
		insert[:recordHeader+1],                  // torn payload
		corrupt,                                  // flipped payload bit
		badKind,                                  // unknown kind
		{0, 0, 0, 0, 0, 0, 0, 0},                 // zero length
		{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4},     // length far past MaxPayload
		{13, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0}, // plausible length, torn body
	}
}

// FuzzDecodeRecord pins the decoder's safety contract on arbitrary bytes:
// it never panics, every failure is one of the named errors (or io.EOF at
// a clean end), a success consumes a sane byte count, and re-encoding the
// decoded record reproduces the consumed bytes exactly (the codec is
// canonical, which is what makes crash-replay byte-comparable).
func FuzzDecodeRecord(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeRecord(b)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, ErrTornRecord) && !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("unnamed decode error: %v", err)
			}
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		if n < recordHeader+1 || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		out, err := AppendRecord(nil, &rec)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		if !bytes.Equal(out, b[:n]) {
			t.Fatalf("re-encode diverged from input:\n in: %x\nout: %x", b[:n], out)
		}
	})
}

// TestFuzzSeedsByHand replays the seed corpus through the same invariants
// outside the fuzzing engine — the assertion CI's fuzz-seed smoke step
// runs on every push, with explicit expectations per named case.
func TestFuzzSeedsByHand(t *testing.T) {
	seeds := fuzzSeeds(t)
	wantErr := map[int]error{
		0: io.EOF, 4: ErrTornRecord, 5: ErrTornRecord, 6: ErrCorruptRecord,
		7: ErrCorruptRecord, 8: ErrCorruptRecord, 9: ErrCorruptRecord, 10: ErrTornRecord,
	}
	for i, seed := range seeds {
		_, _, err := DecodeRecord(seed)
		if want, ok := wantErr[i]; ok {
			if !errors.Is(err, want) {
				t.Errorf("seed %d: error = %v, want %v", i, err, want)
			}
		} else if err != nil {
			t.Errorf("seed %d: unexpected error %v", i, err)
		}
	}
}
