// Package wal implements the write-ahead log behind durable models: an
// append-only segment of length-prefixed, CRC32C-checksummed mutation
// records (insert and remove batches) with three fsync policies and a
// replay path that recovers the longest well-formed prefix of a segment
// after a crash.
//
// # Segment format
//
// A segment file is an 8-byte header followed by zero or more records:
//
//	header:  "LAFW" magic | uint32 LE format version (currently 1)
//	record:  uint32 LE payload length | uint32 LE CRC32-C of payload | payload
//	payload: 1-byte kind | kind-specific body
//
// Kind 1 (insert) bodies carry uint32 count, uint32 dim, then count×dim
// float32 values; kind 2 (remove) bodies carry uint32 count then count
// uint32 point ids. All integers and float bit patterns are little-endian.
// The CRC covers exactly the payload, so a torn tail (the crash landed
// mid-write) and a corrupted record (the media flipped bits) are both
// detected before a single byte of the record is interpreted.
//
// # Durability contract
//
// Append encodes a record into a reused buffer and hands it to the file in
// ONE Write call, so a crash can tear at most the final record — never
// interleave two. Under SyncAlways the append returns only after fsync:
// the record is the commit point. SyncInterval amortizes the fsync over a
// time window (bounded loss: records younger than the interval), SyncOff
// leaves flushing to the OS (crash-consistent but not crash-durable —
// replay still never sees a half-record, it just may not see the newest
// ones).
//
// Replay scans a segment and stops at the first record that fails its
// length, CRC or structural checks, reporting what was dropped. Torn and
// corrupt tails are EXPECTED states after a crash, so they are reported in
// the ReplayReport, not returned as errors; the named errors
// (ErrTornRecord, ErrCorruptRecord, ErrBadHeader) appear in the report's
// Reason and from DecodeRecord, and decoding never panics on arbitrary
// bytes (FuzzDecodeRecord pins this).
//
// The filesystem is abstracted behind FS so tests can inject faults
// (see the walfs subpackage: crash-at-byte-N, torn tails, bit flips,
// short reads); OSFS is the production implementation.
package wal
