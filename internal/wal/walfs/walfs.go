// Package walfs is a fault-injecting wal.FS for crash testing the
// durability layer. It wraps a base filesystem and models the failure
// modes a WAL must survive:
//
//   - crash-at-byte-N (CrashAfter): after a write budget is exhausted the
//     "machine" dies — the write that crosses the boundary persists only up
//     to it (a torn record), and every later write, sync, rename, remove or
//     truncate silently evaporates while still reporting success, exactly
//     like a process whose I/O was acknowledged into a page cache that was
//     never flushed. The in-memory model keeps running ahead of the disk,
//     which is the divergence recovery must close.
//   - torn tails and bit flips (Chop, FlipBit): direct on-disk corruption
//     helpers for manufacturing the states Replay truncates at.
//   - short reads (ShortReads): readers that return one byte per Read call,
//     pinning that recovery never assumes a full buffer per syscall.
package walfs

import (
	"io"
	"os"
	"sync/atomic"

	"lafdbscan/internal/wal"
)

// FS wraps a base wal.FS with switchable fault injection. The zero fault
// state passes everything through. Budget accounting is designed for the
// WAL's single-writer discipline (one mutator at a time under the log's
// mutex); concurrent writers would race the budget but not corrupt it.
type FS struct {
	base wal.FS

	budget     atomic.Int64 // bytes that may still reach the base FS; -1 = unlimited
	dead       atomic.Bool
	shortReads atomic.Bool
	written    atomic.Int64 // bytes actually persisted to the base FS
}

// New wraps base (wal.OSFS() for real-disk tests) with no faults armed.
func New(base wal.FS) *FS {
	f := &FS{base: base}
	f.budget.Store(-1)
	return f
}

// CrashAfter arms the write budget: after n more bytes reach the base
// filesystem the machine "dies" (see the package comment). n = 0 kills it
// on the next write.
func (f *FS) CrashAfter(n int64) {
	f.budget.Store(n)
	f.dead.Store(false)
}

// Revive clears the crash state and budget — the test's "reboot onto a
// healthy disk" switch.
func (f *FS) Revive() {
	f.budget.Store(-1)
	f.dead.Store(false)
}

// Dead reports whether the crash boundary has been hit.
func (f *FS) Dead() bool { return f.dead.Load() }

// ShortReads makes every subsequently opened reader deliver at most one
// byte per Read call.
func (f *FS) ShortReads(on bool) { f.shortReads.Store(on) }

// Written returns the bytes actually persisted through this FS.
func (f *FS) Written() int64 { return f.written.Load() }

func (f *FS) MkdirAll(dir string) error {
	if f.dead.Load() {
		return nil
	}
	return f.base.MkdirAll(dir)
}

func (f *FS) ReadDir(dir string) ([]string, error) { return f.base.ReadDir(dir) }

func (f *FS) Remove(path string) error {
	if f.dead.Load() {
		return nil
	}
	return f.base.Remove(path)
}

func (f *FS) Rename(oldPath, newPath string) error {
	if f.dead.Load() {
		return nil
	}
	return f.base.Rename(oldPath, newPath)
}

func (f *FS) Create(path string) (wal.File, error) {
	if f.dead.Load() {
		return deadFile{}, nil
	}
	file, err := f.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FS) OpenAppend(path string) (wal.File, error) {
	if f.dead.Load() {
		return deadFile{}, nil
	}
	file, err := f.base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FS) Open(path string) (io.ReadCloser, error) {
	r, err := f.base.Open(path)
	if err != nil {
		return nil, err
	}
	if f.shortReads.Load() {
		return &shortReader{r: r}, nil
	}
	return r, nil
}

func (f *FS) SyncDir(dir string) error {
	if f.dead.Load() {
		return nil
	}
	return f.base.SyncDir(dir)
}

// faultFile applies the write budget to one file handle.
type faultFile struct {
	fs *FS
	f  wal.File
}

func (w *faultFile) Write(p []byte) (int, error) {
	if w.fs.dead.Load() {
		return len(p), nil
	}
	if b := w.fs.budget.Load(); b >= 0 {
		if int64(len(p)) > b {
			// The boundary write: its prefix hits the disk, the machine
			// dies, and the caller still sees success — the kernel had
			// acknowledged the bytes it will never flush.
			w.fs.dead.Store(true)
			w.fs.budget.Store(0)
			if b > 0 {
				if n, err := w.f.Write(p[:b]); err == nil {
					w.fs.written.Add(int64(n))
				}
			}
			return len(p), nil
		}
		w.fs.budget.Store(b - int64(len(p)))
	}
	n, err := w.f.Write(p)
	w.fs.written.Add(int64(n))
	return n, err
}

func (w *faultFile) Sync() error {
	if w.fs.dead.Load() {
		return nil
	}
	return w.f.Sync()
}

func (w *faultFile) Truncate(size int64) error {
	if w.fs.dead.Load() {
		return nil
	}
	return w.f.Truncate(size)
}

// Close always releases the underlying handle: a dead machine holds no
// file descriptors, and leaking them would fail unrelated tests.
func (w *faultFile) Close() error { return w.f.Close() }

// deadFile is what file creation returns after the crash boundary: every
// operation succeeds and persists nothing.
type deadFile struct{}

func (deadFile) Write(p []byte) (int, error) { return len(p), nil }
func (deadFile) Sync() error                 { return nil }
func (deadFile) Truncate(int64) error        { return nil }
func (deadFile) Close() error                { return nil }

// shortReader delivers at most one byte per Read.
type shortReader struct{ r io.ReadCloser }

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return s.r.Read(p)
}

func (s *shortReader) Close() error { return s.r.Close() }

// Chop truncates the file at path to size bytes — a manufactured torn
// tail for replay tests (operates on the real OS filesystem).
func Chop(path string, size int64) error { return os.Truncate(path, size) }

// FlipBit flips bit (0-7) of the byte at offset off in the file at path —
// manufactured media corruption the CRC must catch.
func FlipBit(path string, off int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (bit & 7)
	_, err = f.WriteAt(b[:], off)
	return err
}
