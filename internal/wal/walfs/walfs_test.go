package walfs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lafdbscan/internal/wal"
)

// TestCrashAfter arms the budget mid-history and pins the crash model: the
// writer keeps seeing success, the disk keeps only the journaled prefix,
// and replay on a healthy filesystem recovers exactly the records whose
// bytes fit the budget — with the boundary record reported torn.
func TestCrashAfter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.log")
	fs := New(wal.OSFS())
	l, err := wal.Create(fs, path, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	rec := wal.Record{Kind: wal.KindInsert, Vectors: [][]float32{{1, 2, 3, 4}}}
	if err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	recSize := l.Size() - wal.HeaderSize
	// Budget: one full record plus half of the next. Record 2 commits,
	// record 3 tears, records 4+ evaporate.
	fs.CrashAfter(recSize + recSize/2)
	for i := 0; i < 4; i++ {
		if err := l.Append(&rec); err != nil {
			t.Fatalf("append after crash must still report success, got %v", err)
		}
	}
	if !fs.Dead() {
		t.Fatal("budget never tripped")
	}
	if l.Records() != 5 {
		t.Fatalf("in-memory log counts %d records, want 5", l.Records())
	}
	l.Close()

	rep, err := wal.Replay(wal.OSFS(), path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 {
		t.Fatalf("disk survived %d records, want 2", rep.Records)
	}
	if !rep.Truncated || !strings.Contains(rep.Reason, "torn") {
		t.Fatalf("boundary record not reported torn: %+v", rep)
	}
}

// TestCrashExactBoundary pins the n == budget case: the boundary write
// persists whole, then the machine dies, so replay sees a clean segment.
func TestCrashExactBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.log")
	fs := New(wal.OSFS())
	l, err := wal.Create(fs, path, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	rec := wal.Record{Kind: wal.KindRemove, IDs: []int{1, 2}}
	if err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	recSize := l.Size() - wal.HeaderSize
	fs.CrashAfter(recSize)
	if err := l.Append(&rec); err != nil { // exactly consumes the budget
		t.Fatal(err)
	}
	if err := l.Append(&rec); err != nil { // evaporates
		t.Fatal(err)
	}
	l.Close()
	rep, err := wal.Replay(wal.OSFS(), path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 || rep.Truncated {
		t.Fatalf("report = %+v, want 2 clean records", rep)
	}
}

// TestShortReads pins that replay tolerates one-byte reads (io.ReadAll's
// contract, but the fault keeps recovery honest about short-read loops).
func TestShortReads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.log")
	l, err := wal.Create(wal.OSFS(), path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := wal.Record{Kind: wal.KindInsert, Vectors: [][]float32{{5, 6}}}
	for i := 0; i < 3; i++ {
		if err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	fs := New(wal.OSFS())
	fs.ShortReads(true)
	rep, err := wal.Replay(fs, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 3 || rep.Truncated {
		t.Fatalf("short-read replay = %+v, want 3 clean records", rep)
	}
}

// TestChopAndFlipBit sanity-checks the corruption helpers themselves.
func TestChopAndFlipBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte{0xff, 0x00, 0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := Chop(path, 2); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != 0x08 {
		t.Fatalf("file = %x, want ff08", got)
	}
}
