package wal

import (
	"io"
	"os"
)

// File is the writable handle a log appends to. Truncate serves two
// recovery paths: rolling a torn tail back to the last well-formed record
// on open, and annulling a journaled record whose in-memory apply failed.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS abstracts the filesystem operations the WAL and the snapshot
// machinery need, so tests can inject faults (walfs) without touching the
// real disk layout. Paths are plain OS paths; implementations must keep
// Rename atomic with respect to crashes on the same directory (the POSIX
// contract the snapshot commit protocol relies on).
type FS interface {
	MkdirAll(dir string) error
	// ReadDir returns the names (not paths) of the directory's entries in
	// lexical order.
	ReadDir(dir string) ([]string, error)
	Remove(path string) error
	Rename(oldPath, newPath string) error
	// Create truncates or creates the file for writing. Writes must land
	// at the current end of file even after a Truncate (O_APPEND
	// semantics) — Unappend relies on it.
	Create(path string) (File, error)
	// OpenAppend opens (creating if absent) the file for appending, with
	// the same post-Truncate contract as Create.
	OpenAppend(path string) (File, error)
	// Open opens the file for reading.
	Open(path string) (io.ReadCloser, error)
	// SyncDir flushes directory metadata — the rename that commits a
	// snapshot is durable only after its directory is synced.
	SyncDir(dir string) error
}

// OSFS returns the production FS backed by the os package.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

func (osFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
