package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"lafdbscan"
	"lafdbscan/internal/dataset"
)

// smokeBase returns the base URL to run the end-to-end walkthrough against:
// a live lafserve process when LAFSERVE_SMOKE_URL is set (the CI smoke job
// starts one and points the test at it), an in-process httptest server
// otherwise. The walkthrough itself is identical either way.
func smokeBase(t *testing.T) (base string, cleanup func()) {
	t.Helper()
	if url := os.Getenv("LAFSERVE_SMOKE_URL"); url != "" {
		return url, func() {}
	}
	s := NewServer(Options{Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	return ts.URL, func() { ts.Close(); s.Close() }
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return decodeResp(t, resp)
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return decodeResp(t, resp)
}

func decodeResp(t *testing.T, resp *http.Response) (int, map[string]any) {
	t.Helper()
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// TestServerSmoke is the end-to-end walkthrough the CI smoke job runs
// against a real lafserve process (and every test run exercises in
// process): register a synthetic dataset, train the estimator through the
// cache, submit a LAF-DBSCAN job, poll it to completion, fetch the labels,
// and assert ARI == 1.0 against a direct library run with identical
// parameters. It finishes with a /stats sanity check.
func TestServerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an estimator end to end")
	}
	base, cleanup := smokeBase(t)
	defer cleanup()

	const n, dsSeed = 400, 7
	// Unique per run so re-running against a long-lived live server does
	// not collide with a previous registration.
	name := fmt.Sprintf("smoke-%d", time.Now().UnixNano())

	// 1. Register a synthetic MS MARCO-like dataset.
	code, body := postJSON(t, base+"/v1/datasets", map[string]any{
		"name":      name,
		"synthetic": map[string]any{"kind": "ms", "n": n, "seed": dsSeed},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	if body["points"].(float64) != n {
		t.Fatalf("registered %v points, want %d", body["points"], n)
	}

	// 2. Train the estimator (explicitly, so the job below is a cache hit).
	estimator := map[string]any{
		"max_queries": 120, "hidden": []int{24, 12}, "epochs": 8, "seed": 1,
	}
	code, body = postJSON(t, base+"/v1/estimators", map[string]any{
		"dataset": name, "estimator": estimator,
	})
	if code != http.StatusOK {
		t.Fatalf("train estimator: %d %v", code, body)
	}
	if body["cached"].(bool) {
		t.Fatal("fresh estimator reported as cached")
	}

	// 3. Submit a LAF-DBSCAN job.
	params := map[string]any{"eps": 0.55, "tau": 5, "alpha": 1.2, "seed": 3, "workers": 2}
	code, body = postJSON(t, base+"/v1/jobs", map[string]any{
		"dataset": name, "method": "laf-dbscan", "params": params, "estimator": estimator,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)

	// 4. Poll to completion.
	deadline := time.Now().Add(60 * time.Second)
	var state string
	for {
		code, body = getJSON(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status: %d %v", code, body)
		}
		state = body["state"].(string)
		if state == "done" || state == "failed" || state == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", state)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state != "done" {
		t.Fatalf("job ended %q: %v", state, body["error"])
	}
	if !body["estimator_cached"].(bool) {
		t.Error("job did not hit the estimator cache")
	}

	// 5. Fetch the labels.
	code, body = getJSON(t, base+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %v", code, body)
	}
	raw := body["labels"].([]any)
	labels := make([]int, len(raw))
	for i, v := range raw {
		labels[i] = int(v.(float64))
	}

	// 6. The library result with identical parameters: same synthetic
	// dataset, same estimator config (training is deterministic), same
	// clustering params. ARI must be exactly 1.0.
	ds := dataset.MSLike(n, dsSeed)
	est, err := lafdbscan.TrainRMIEstimator(ds.Vectors, lafdbscan.EstimatorConfig{
		MaxQueries: 120, Hidden: []int{24, 12}, Epochs: 8, Seed: 1, TargetSize: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lafdbscan.Cluster(ds.Vectors, lafdbscan.MethodLAFDBSCAN, lafdbscan.Params{
		Eps: 0.55, Tau: 5, Alpha: 1.2, Seed: 3, Workers: 2, Estimator: est,
	})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := lafdbscan.ARI(want.Labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ari != 1.0 {
		t.Fatalf("ARI vs library result = %v, want exactly 1.0", ari)
	}

	// 7. Fit the same spec as a reusable model: the fit endpoint shares the
	// job path's estimator cache and shared index, so its labels must match
	// the job's bit for bit — and predicting the training dataset through
	// the model must reproduce them under DBSCAN semantics up to LAF's
	// estimator approximation (pinned exactly in the library tests; here the
	// walkthrough asserts the serving plumbing round-trips).
	code, body = postJSON(t, base+"/v1/models", map[string]any{
		"dataset": name, "method": "laf-dbscan", "params": params, "estimator": estimator,
	})
	if code != http.StatusCreated {
		t.Fatalf("fit model: %d %v", code, body)
	}
	if !body["estimator_cached"].(bool) {
		t.Error("model fit did not hit the estimator cache")
	}
	modelID := body["model"].(map[string]any)["id"].(string)

	// 8. Predict the training dataset through the model.
	code, body = postJSON(t, base+"/v1/models/"+modelID+"/predict", map[string]any{"dataset": name})
	if code != http.StatusOK {
		t.Fatalf("predict: %d %v", code, body)
	}
	rawPred := body["labels"].([]any)
	pred := make([]int, len(rawPred))
	for i, v := range rawPred {
		pred[i] = int(v.(float64))
	}

	// 9. Save/load round trip through the HTTP surface: the reloaded model
	// must predict identically to the stored one.
	resp, err := http.Get(base + "/v1/models/" + modelID + "/save")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("save model: %d %v", resp.StatusCode, err)
	}
	resp, err = http.Post(base+"/v1/models/load", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	code, body = decodeResp(t, resp)
	if code != http.StatusCreated {
		t.Fatalf("load model: %d %v", code, body)
	}
	loadedID := body["model"].(map[string]any)["id"].(string)
	code, body = postJSON(t, base+"/v1/models/"+loadedID+"/predict", map[string]any{"dataset": name})
	if code != http.StatusOK {
		t.Fatalf("loaded predict: %d %v", code, body)
	}
	rawLoaded := body["labels"].([]any)
	if len(rawLoaded) != len(pred) {
		t.Fatalf("loaded model predicted %d labels, want %d", len(rawLoaded), len(pred))
	}
	for i, v := range rawLoaded {
		if int(v.(float64)) != pred[i] {
			t.Fatalf("loaded model predicts %v for point %d, stored model %d", v, i, pred[i])
		}
	}

	// 10. Online maintenance: insert new vectors into the stored model
	// through the async endpoint and pin the evolved labeling against a
	// fresh library fit on the grown point set — the incremental engine's
	// equality contract, exercised over the full serving stack.
	const grow = 20
	inserted := ds.Vectors[:grow] // duplicates are valid points
	code, body = postJSON(t, base+"/v1/models/"+modelID+"/insert", map[string]any{
		"vectors": inserted,
	})
	if code != http.StatusAccepted {
		t.Fatalf("insert: %d %v", code, body)
	}
	insertJob := body["id"].(string)
	if body["kind"].(string) != "model-insert" {
		t.Errorf("insert job kind = %v, want model-insert", body["kind"])
	}
	for {
		code, body = getJSON(t, base+"/v1/jobs/"+insertJob)
		if code != http.StatusOK {
			t.Fatalf("insert status: %d %v", code, body)
		}
		state = body["state"].(string)
		if state == "done" || state == "failed" || state == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("insert job stuck in %q", state)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state != "done" {
		t.Fatalf("insert job ended %q: %v", state, body["error"])
	}
	code, body = getJSON(t, base+"/v1/models/"+modelID)
	if code != http.StatusOK {
		t.Fatalf("model info: %d %v", code, body)
	}
	if got := body["points"].(float64); got != float64(n+grow) {
		t.Errorf("model points after insert = %v, want %d", got, n+grow)
	}
	if got := body["updates"].(float64); got != grow {
		t.Errorf("model updates = %v, want %d", got, grow)
	}
	code, body = getJSON(t, base+"/v1/jobs/"+insertJob+"/result")
	if code != http.StatusOK {
		t.Fatalf("insert result: %d %v", code, body)
	}
	rawGrown := body["labels"].([]any)
	grown := make([]int, len(rawGrown))
	for i, v := range rawGrown {
		grown[i] = int(v.(float64))
	}
	grownPts := append(append([][]float32{}, ds.Vectors...), inserted...)
	wantGrown, err := lafdbscan.Cluster(grownPts, lafdbscan.MethodLAFDBSCAN, lafdbscan.Params{
		Eps: 0.55, Tau: 5, Alpha: 1.2, Seed: 3, Workers: 2, Estimator: est,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantGrown.Labels {
		if grown[i] != wantGrown.Labels[i] {
			t.Fatalf("post-insert label[%d] = %d, fresh library fit %d", i, grown[i], wantGrown.Labels[i])
		}
	}

	// 11. Durable streaming: fold more vectors in through the micro-batched
	// stream endpoint (journaled chunk by chunk when the server runs with
	// -wal-dir) and pin the evolved labeling against a fresh library fit,
	// exactly like the all-or-nothing insert above.
	const streamN, streamChunk = 24, 8
	streamed := ds.Vectors[grow : grow+streamN]
	code, body = postJSON(t, base+"/v1/models/"+modelID+"/stream", map[string]any{
		"vectors": streamed, "chunk": streamChunk,
	})
	if code != http.StatusAccepted {
		t.Fatalf("stream: %d %v", code, body)
	}
	if body["kind"].(string) != "model-stream" {
		t.Errorf("stream job kind = %v, want model-stream", body["kind"])
	}
	streamJob := body["id"].(string)
	for {
		code, body = getJSON(t, base+"/v1/jobs/"+streamJob)
		if code != http.StatusOK {
			t.Fatalf("stream status: %d %v", code, body)
		}
		state = body["state"].(string)
		if state == "done" || state == "failed" || state == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream job stuck in %q", state)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if state != "done" {
		t.Fatalf("stream job ended %q: %v", state, body["error"])
	}
	code, body = getJSON(t, base+"/v1/models/"+modelID)
	if code != http.StatusOK || body["points"].(float64) != float64(n+grow+streamN) {
		t.Fatalf("model after stream: %d %v, want %d points", code, body, n+grow+streamN)
	}
	code, body = getJSON(t, base+"/v1/jobs/"+streamJob+"/result")
	if code != http.StatusOK {
		t.Fatalf("stream result: %d %v", code, body)
	}
	rawStreamed := body["labels"].([]any)
	wantStreamed, err := lafdbscan.Cluster(append(append([][]float32{}, grownPts...), streamed...),
		lafdbscan.MethodLAFDBSCAN, lafdbscan.Params{
			Eps: 0.55, Tau: 5, Alpha: 1.2, Seed: 3, Workers: 2, Estimator: est,
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantStreamed.Labels {
		if int(rawStreamed[i].(float64)) != wantStreamed.Labels[i] {
			t.Fatalf("post-stream label[%d] = %v, fresh library fit %d", i, rawStreamed[i], wantStreamed.Labels[i])
		}
	}

	// 12. /stats reflects the cache amortization, the model activity and
	// the maintenance counters; when the server runs with a journal
	// (-wal-dir, as the CI smoke job does) the stream above was journaled,
	// so a snapshot rolls the model's generation on demand.
	code, body = getJSON(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, body)
	}
	if walSec, ok := body["wal"].(map[string]any); ok && walSec["enabled"].(bool) {
		if walSec["appends"].(float64) < 1 {
			t.Errorf("journaled server reports %v WAL appends after streaming", walSec["appends"])
		}
		code, snap := postJSON(t, base+"/v1/models/"+modelID+"/snapshot", nil)
		if code != http.StatusOK {
			t.Fatalf("snapshot: %d %v", code, snap)
		}
		if snap["lsn"].(float64) < 1 {
			t.Errorf("snapshot lsn = %v, want >= 1", snap["lsn"])
		}
	}
	cache := body["estimator_cache"].(map[string]any)
	if cache["hits"].(float64) < 1 {
		t.Errorf("estimator cache hits = %v, want >= 1", cache["hits"])
	}
	models := body["models"].(map[string]any)
	if models["predictions"].(float64) < 2 {
		t.Errorf("model predictions = %v, want >= 2", models["predictions"])
	}
	if models["inserts"].(float64) < 1 || models["points_inserted"].(float64) < grow {
		t.Errorf("update counters not reflected in stats: %v", models)
	}
	if qd, ok := body["jobs"].(map[string]any)["queries_done"].(float64); !ok || qd < float64(n) {
		t.Errorf("stats jobs queries_done = %v, want >= %d", body["jobs"].(map[string]any)["queries_done"], n)
	}

	// 13. /metrics parses as Prometheus text format and carries the request
	// histogram the walkthrough just fed — the serve-smoke CI job's
	// observability assertion, run against the live binary.
	samples, families := scrapeMetrics(t, base)
	if len(families) < 10 {
		t.Errorf("/metrics exports %d families, want >= 10", len(families))
	}
	if families["laf_http_request_duration_seconds"] != "histogram" {
		t.Errorf("request duration family = %q, want histogram", families["laf_http_request_duration_seconds"])
	}
	if got := samples[`laf_http_request_duration_seconds_bucket{endpoint="POST /v1/jobs",le="+Inf"}`]; got < 1 {
		t.Errorf("POST /v1/jobs histogram count = %v, want >= 1", got)
	}
	if got := samples[`laf_http_requests_total{code="202",endpoint="POST /v1/jobs"}`]; got < 1 {
		t.Errorf("POST /v1/jobs 202 counter = %v, want >= 1", got)
	}
	if got := samples["laf_wave_queries_total"]; got < float64(n) {
		t.Errorf("laf_wave_queries_total = %v, want >= %d", got, n)
	}

	t.Logf("smoke OK: ARI=1.0 (job + post-insert), estimator cache %v, jobs %v, models %v, %d metric families",
		cache, body["jobs"], models, len(families))
}

// TestServerHTTPStatusMapping pins the error contract of the HTTP layer:
// 404 for unknown names, 409 for duplicates and not-ready results, 400 for
// domain errors, 429 with Retry-After for a full queue.
func TestServerHTTPStatusMapping(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := getJSON(t, ts.URL+"/v1/datasets/none"); code != http.StatusNotFound {
		t.Errorf("unknown dataset: %d, want 404", code)
	}
	if code, _ := getJSON(t, ts.URL+"/v1/jobs/j-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}

	reg := map[string]any{"name": "d", "synthetic": map[string]any{"kind": "ms", "n": 60, "seed": 1}}
	if code, body := postJSON(t, ts.URL+"/v1/datasets", reg); code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/datasets", reg); code != http.StatusConflict {
		t.Errorf("duplicate dataset: %d, want 409", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/datasets", map[string]any{"name": "x"}); code != http.StatusBadRequest {
		t.Errorf("sourceless dataset: %d, want 400", code)
	}

	badJob := map[string]any{"dataset": "d", "method": "dbscan",
		"params": map[string]any{"eps": 5.0, "tau": 5}}
	if code, _ := postJSON(t, ts.URL+"/v1/jobs", badJob); code != http.StatusBadRequest {
		t.Errorf("bad eps: %d, want 400", code)
	}

	// A fast job on the idle engine: result is 409 until done, then 200.
	job := map[string]any{"dataset": "d", "method": "dbscan",
		"params": map[string]any{"eps": 0.55, "tau": 5}}
	code, body := postJSON(t, ts.URL+"/v1/jobs", job)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body = getJSON(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status: %d %v", code, body)
		}
		if state := body["state"].(string); state == "done" {
			break
		} else if state == "failed" || state == "canceled" {
			t.Fatalf("fast job ended %q: %v", state, body["error"])
		}
		if c, _ := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result"); c != http.StatusConflict && c != http.StatusOK {
			// 409 while pending; 200 only if the job finished between the
			// two requests.
			t.Fatalf("not-ready result: %d, want 409", c)
		}
		if time.Now().After(deadline) {
			t.Fatal("fast job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ = getJSON(t, ts.URL+"/v1/jobs/"+id+"/result"); code != http.StatusOK {
		t.Errorf("done result: %d, want 200", code)
	}

	// Backpressure: jobs on a dataset big enough to pin the single worker
	// for seconds. Slot 1 runs, slot 2 queues, slot 3 must bounce with 429.
	slow := map[string]any{"name": "slow", "synthetic": map[string]any{"kind": "ms", "n": 1500, "seed": 2}}
	if code, body := postJSON(t, ts.URL+"/v1/datasets", slow); code != http.StatusCreated {
		t.Fatalf("register slow: %d %v", code, body)
	}
	slowJob := map[string]any{"dataset": "slow", "method": "dbscan",
		"params": map[string]any{"eps": 0.55, "tau": 5, "workers": 1, "wave_size": 16}}
	var slowIDs []string
	got429 := false
	for i := 0; i < 3; i++ {
		code, body = postJSON(t, ts.URL+"/v1/jobs", slowJob)
		switch code {
		case http.StatusAccepted:
			slowIDs = append(slowIDs, body["id"].(string))
		case http.StatusTooManyRequests:
			got429 = true
		default:
			t.Fatalf("slow submit %d: unexpected %d %v", i, code, body)
		}
	}
	if !got429 {
		t.Error("never saw 429 from a full queue")
	}
	// Cancel the slow jobs so engine shutdown is prompt.
	for _, sid := range slowIDs {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sid, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if c, _ := decodeResp(t, resp); c != http.StatusOK {
			t.Errorf("cancel %s: %d", sid, c)
		}
	}

	if code, _ = getJSON(t, ts.URL+"/v1/healthz"); code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
}
