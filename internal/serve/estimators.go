package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lafdbscan"
	"lafdbscan/internal/trace"
)

// EstimatorCache trains each (dataset, EstimatorConfig) RMI estimator
// exactly once and hands the shared instance to every subsequent request —
// the serving-layer analogue of the paper's "training time is excluded
// from clustering time; a trained estimator is reused across runs".
//
// Training is single-flight: concurrent requests for the same key block on
// the one training in progress instead of training redundantly, so eight
// LAF jobs submitted together against a cold cache cost one training and
// seven hits. Failed trainings are not cached — the next request retries.
type EstimatorCache struct {
	mu      sync.Mutex
	entries map[string]*estEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type estEntry struct {
	ready chan struct{} // closed when training finished (est or err set)
	est   lafdbscan.Estimator
	err   error
	// trainTime is the wall-clock cost the cache saved every caller after
	// the first; /stats reports it so operators can see the amortization.
	trainTime time.Duration
}

// EstimatorCacheStats is the cache's /stats view.
type EstimatorCacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

// NewEstimatorCache returns an empty cache.
func NewEstimatorCache() *EstimatorCache {
	return &EstimatorCache{entries: make(map[string]*estEntry)}
}

// EstimatorKey is the cache key of an EstimatorConfig applied to a named
// dataset: every config field that influences training is folded in, so
// two requests share an estimator exactly when TrainRMIEstimator would
// produce the same model for both (training is deterministic per config —
// all randomness flows from cfg.Seed).
func EstimatorKey(datasetName string, cfg lafdbscan.EstimatorConfig) string {
	return fmt.Sprintf("%s|radii=%v|mq=%d|ts=%d|paper=%t|hidden=%v|ep=%d|bs=%d|lr=%g|metric=%d|seed=%d",
		datasetName, cfg.Radii, cfg.MaxQueries, cfg.TargetSize, cfg.Paper,
		cfg.Hidden, cfg.Epochs, cfg.BatchSize, cfg.LR, cfg.Metric, cfg.Seed)
}

// Get returns the estimator for cfg trained on the named dataset's vectors,
// training it on the first request. cached reports whether a previous (or
// concurrent) request already paid for training; trainTime is the training
// cost of the entry (what every cached caller saved).
//
// Training runs on its own goroutine and every caller — including the one
// that triggered it — waits under ctx, so a canceled job releases its
// worker slot immediately even while the model is still fitting; the
// training itself is never abandoned and lands in the cache for the next
// request.
//
// A traced request gets an "estimator.get" child span annotated hit or
// miss — in a slow trace it separates "waited for training" from "the
// clustering itself was slow" at a glance.
func (c *EstimatorCache) Get(ctx context.Context, datasetName string, train [][]float32, cfg lafdbscan.EstimatorConfig) (est lafdbscan.Estimator, cached bool, trainTime time.Duration, err error) {
	ctx, span := trace.Start(ctx, "estimator.get")
	est, cached, trainTime, err = c.get(ctx, datasetName, train, cfg)
	if span != nil {
		outcome := "miss"
		if cached {
			outcome = "hit"
		}
		span.Annotate(trace.Str("dataset", datasetName), trace.Str("cache", outcome))
		if err != nil {
			span.Annotate(trace.Str("error", err.Error()))
		}
		span.Finish()
	}
	return est, cached, trainTime, err
}

// get is Get without the span — the single-flight cache logic.
func (c *EstimatorCache) get(ctx context.Context, datasetName string, train [][]float32, cfg lafdbscan.EstimatorConfig) (est lafdbscan.Estimator, cached bool, trainTime time.Duration, err error) {
	key := EstimatorKey(datasetName, cfg)

	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &estEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.misses.Add(1)
		go func() {
			start := time.Now()
			e.est, e.err = lafdbscan.TrainRMIEstimator(train, cfg)
			e.trainTime = time.Since(start)
			if e.err != nil {
				// Drop the failed entry so a later request can retry
				// (e.g. after an invalid config is corrected).
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
			}
			close(e.ready)
		}()
	}
	c.mu.Unlock()

	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, false, 0, ctx.Err()
	}
	if e.err != nil {
		return nil, false, 0, e.err
	}
	if !ok {
		return e.est, false, e.trainTime, nil
	}
	c.hits.Add(1)
	return e.est, true, e.trainTime, nil
}

// Stats returns the cache counters.
func (c *EstimatorCache) Stats() EstimatorCacheStats {
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	return EstimatorCacheStats{
		Entries: entries,
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
	}
}
