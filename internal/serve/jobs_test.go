package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"lafdbscan"
	"lafdbscan/internal/dataset"
)

// testRegistry returns a registry with one small MS-like dataset under the
// given name.
func testRegistry(t *testing.T, name string, n int) *Registry {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Register(name, dataset.MSLike(n, 7), "synthetic:ms"); err != nil {
		t.Fatal(err)
	}
	return reg
}

// waitState polls until the job reaches want (fatal on timeout or on a
// different terminal state).
func waitState(t *testing.T, e *Engine, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := e.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		terminal := st.State == JobDone || st.State == JobFailed || st.State == JobCanceled
		if terminal || time.Now().After(deadline) {
			t.Fatalf("job %s is %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func submit(t *testing.T, e *Engine, spec JobSpec) string {
	t.Helper()
	st, err := e.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return st.ID
}

func dbscanSpec(ds string) JobSpec {
	return JobSpec{Dataset: ds, Method: lafdbscan.MethodDBSCAN,
		Params: lafdbscan.Params{Eps: 0.55, Tau: 5}}
}

// TestJobLifecycleSubmitRunningDone drives a job through queued → running →
// done with a fake runner gated on channels, asserting each observable
// state and that the result comes back through Result.
func TestJobLifecycleSubmitRunningDone(t *testing.T) {
	reg := testRegistry(t, "d", 50)
	started := make(chan struct{})
	release := make(chan struct{})
	want := &lafdbscan.Result{Algorithm: "fake", Labels: []int{1, 2, 3}}
	e := NewEngine(reg, NewEstimatorCache(), Options{
		Workers: 1, QueueDepth: 4,
		Run: func(ctx context.Context, pts [][]float32, m lafdbscan.Method, p lafdbscan.Params) (*lafdbscan.Result, error) {
			close(started)
			<-release
			return want, nil
		},
	})
	defer e.Close()

	id := submit(t, e, dbscanSpec("d"))
	if _, err := e.Result(id); err == nil {
		t.Error("Result before completion succeeded")
	}
	<-started
	waitState(t, e, id, JobRunning)
	close(release)
	waitState(t, e, id, JobDone)
	res, err := e.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if res != want {
		t.Error("Result returned a different object than the runner produced")
	}
	if s := e.Stats(); s.Done != 1 || s.Submitted != 1 {
		t.Errorf("stats = %+v, want 1 submitted / 1 done", s)
	}
}

// TestJobCancelMidRunFreesWorker cancels a running job (fake runner that
// honors its context) and asserts the terminal state is canceled and that
// the freed worker slot runs a subsequent job to completion.
func TestJobCancelMidRunFreesWorker(t *testing.T) {
	reg := testRegistry(t, "d", 50)
	started := make(chan struct{})
	e := NewEngine(reg, NewEstimatorCache(), Options{
		Workers: 1, QueueDepth: 4,
		Run: func(ctx context.Context, pts [][]float32, m lafdbscan.Method, p lafdbscan.Params) (*lafdbscan.Result, error) {
			select {
			case <-started:
			default:
				close(started)
				<-ctx.Done() // the canceled job blocks until its context fires
				return nil, ctx.Err()
			}
			return &lafdbscan.Result{Algorithm: "fake"}, nil
		},
	})
	defer e.Close()

	id := submit(t, e, dbscanSpec("d"))
	<-started
	if _, err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	waitState(t, e, id, JobCanceled)
	if _, err := e.Result(id); err == nil {
		t.Error("Result of a canceled job succeeded")
	}
	// The worker slot must be free again: a fresh job runs to completion.
	id2 := submit(t, e, dbscanSpec("d"))
	waitState(t, e, id2, JobDone)
	if s := e.Stats(); s.Canceled != 1 || s.Done != 1 || s.BusyWorkers != 0 {
		t.Errorf("stats = %+v, want 1 canceled / 1 done / 0 busy", s)
	}
}

// TestJobCancelQueued cancels a job that never left the queue (the single
// worker is pinned by a blocker) and asserts the worker later skips it.
func TestJobCancelQueued(t *testing.T) {
	reg := testRegistry(t, "d", 50)
	started := make(chan struct{})
	release := make(chan struct{})
	e := NewEngine(reg, NewEstimatorCache(), Options{
		Workers: 1, QueueDepth: 4,
		Run: func(ctx context.Context, pts [][]float32, m lafdbscan.Method, p lafdbscan.Params) (*lafdbscan.Result, error) {
			select {
			case <-started:
			default:
				close(started)
				<-release
			}
			return &lafdbscan.Result{Algorithm: "fake"}, nil
		},
	})
	defer e.Close()

	blocker := submit(t, e, dbscanSpec("d"))
	<-started
	queued := submit(t, e, dbscanSpec("d"))
	st, err := e.Cancel(queued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobCanceled {
		t.Fatalf("queued job state after cancel = %s, want canceled", st.State)
	}
	close(release)
	waitState(t, e, blocker, JobDone)
	// The canceled job must never transition out of canceled.
	if st, _ := e.Status(queued); st.State != JobCanceled {
		t.Errorf("canceled queued job ended up %s", st.State)
	}
}

// TestQueueFullBackpressure fills the 1-deep queue behind a pinned worker
// and asserts the next submission returns ErrQueueFull — the retryable
// signal — and that the same spec is accepted again once the queue drains.
func TestQueueFullBackpressure(t *testing.T) {
	reg := testRegistry(t, "d", 50)
	started := make(chan struct{})
	release := make(chan struct{})
	e := NewEngine(reg, NewEstimatorCache(), Options{
		Workers: 1, QueueDepth: 1,
		Run: func(ctx context.Context, pts [][]float32, m lafdbscan.Method, p lafdbscan.Params) (*lafdbscan.Result, error) {
			select {
			case <-started:
			default:
				close(started)
			}
			<-release
			return &lafdbscan.Result{Algorithm: "fake"}, nil
		},
	})
	defer e.Close()

	running := submit(t, e, dbscanSpec("d")) // occupies the worker
	<-started
	queued := submit(t, e, dbscanSpec("d")) // fills the queue
	if _, err := e.Submit(context.Background(), dbscanSpec("d")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	close(release)
	waitState(t, e, running, JobDone)
	waitState(t, e, queued, JobDone)
	retried := submit(t, e, dbscanSpec("d")) // retry succeeds after drain
	waitState(t, e, retried, JobDone)
}

// TestSubmitValidation pins the 400-class rejections: unknown method,
// unregistered dataset, out-of-domain params, LAF without an estimator
// spec, sampling method without a fraction.
func TestSubmitValidation(t *testing.T) {
	reg := testRegistry(t, "d", 50)
	e := NewEngine(reg, NewEstimatorCache(), Options{Workers: 1})
	defer e.Close()
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"unknown method", JobSpec{Dataset: "d", Method: "nope",
			Params: lafdbscan.Params{Eps: 0.5, Tau: 5}}},
		{"unregistered dataset", JobSpec{Dataset: "missing", Method: lafdbscan.MethodDBSCAN,
			Params: lafdbscan.Params{Eps: 0.5, Tau: 5}}},
		{"bad eps", JobSpec{Dataset: "d", Method: lafdbscan.MethodDBSCAN,
			Params: lafdbscan.Params{Eps: 3, Tau: 5}}},
		{"laf without estimator", JobSpec{Dataset: "d", Method: lafdbscan.MethodLAFDBSCAN,
			Params: lafdbscan.Params{Eps: 0.5, Tau: 5}}},
		{"dbscan++ without fraction", JobSpec{Dataset: "d", Method: lafdbscan.MethodDBSCANPP,
			Params: lafdbscan.Params{Eps: 0.5, Tau: 5}}},
		{"unknown train dataset", JobSpec{Dataset: "d", Method: lafdbscan.MethodLAFDBSCAN,
			Params:    lafdbscan.Params{Eps: 0.5, Tau: 5},
			Estimator: &EstimatorSpec{TrainDataset: "missing"}}},
	}
	for _, c := range cases {
		if _, err := e.Submit(context.Background(), c.spec); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if s := e.Stats(); s.Submitted != 0 {
		t.Errorf("rejected submissions counted: %+v", s)
	}
}

// TestRealCancelAbortsWithinOneWave runs a real parallel DBSCAN job with a
// small wave size, cancels as soon as progress shows the waves flowing, and
// asserts the run stopped early: terminal state canceled, and the query
// counter well short of the full n — the job engine end of the wave-barrier
// cancellation contract pinned at the index layer.
func TestRealCancelAbortsWithinOneWave(t *testing.T) {
	const n = 1500
	reg := testRegistry(t, "big", n)
	e := NewEngine(reg, NewEstimatorCache(), Options{Workers: 1, QueueDepth: 2})
	defer e.Close()

	id := submit(t, e, JobSpec{Dataset: "big", Method: lafdbscan.MethodDBSCAN,
		Params: lafdbscan.Params{Eps: 0.55, Tau: 5, Workers: 1, WaveSize: 16}})
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := e.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.QueriesDone > 0 {
			break
		}
		if st.State == JobDone || time.Now().After(deadline) {
			t.Fatalf("job finished (%s) before a cancel could land; grow n", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, e, id, JobCanceled)
	if st.QueriesDone >= n {
		t.Errorf("cancelled job executed all %d queries", n)
	}
	t.Logf("cancelled after %d/%d queries", st.QueriesDone, n)
}

// TestJobLabelsIdenticalToDirectCluster is the correctness contract of the
// whole subsystem: for every method in Methods() (plus rho-approx), a job
// run through the engine — shared registry index, cached estimator — must
// produce labels bit-identical to a direct lafdbscan.Cluster call with the
// same parameters and an identically-configured estimator.
func TestJobLabelsIdenticalToDirectCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an estimator and runs every method")
	}
	const n = 300
	ds := dataset.MSLike(n, 7)
	reg := NewRegistry()
	if err := reg.Register("d", ds, "synthetic:ms"); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(reg, NewEstimatorCache(), Options{Workers: 2, QueueDepth: 16})
	defer e.Close()

	estCfg := lafdbscan.EstimatorConfig{
		MaxQueries: 120, Hidden: []int{24, 12}, Epochs: 8, Seed: 1,
	}
	params := lafdbscan.Params{
		Eps: 0.55, Tau: 5, Alpha: 1.2, SampleFraction: 0.5,
		Rho: 1.0, Seed: 3, Workers: 2, WaveSize: 64,
	}

	// The direct calls use an estimator trained exactly as the engine
	// trains its cached one (TargetSize defaults to the dataset size);
	// training is deterministic per config, so the models are identical.
	directCfg := estCfg
	directCfg.TargetSize = n
	est, err := lafdbscan.TrainRMIEstimator(ds.Vectors, directCfg)
	if err != nil {
		t.Fatal(err)
	}

	methods := append(lafdbscan.Methods(), lafdbscan.MethodRhoApprox)
	for _, m := range methods {
		spec := JobSpec{Dataset: "d", Method: m, Params: params}
		if m == lafdbscan.MethodLAFDBSCAN || m == lafdbscan.MethodLAFDBSCANPP {
			spec.Estimator = &EstimatorSpec{Config: estCfg}
		}
		id := submit(t, e, spec)
		waitState(t, e, id, JobDone)
		got, err := e.Result(id)
		if err != nil {
			t.Fatal(err)
		}

		dp := params
		dp.Estimator = est
		want, err := lafdbscan.Cluster(ds.Vectors, m, dp)
		if err != nil {
			t.Fatalf("%s: direct call: %v", m, err)
		}
		if len(got.Labels) != len(want.Labels) {
			t.Fatalf("%s: %d labels, want %d", m, len(got.Labels), len(want.Labels))
		}
		for i := range got.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("%s: label[%d] = %d, want %d", m, i, got.Labels[i], want.Labels[i])
			}
		}
	}
}

// TestConcurrentLAFJobsShareOneTraining is the acceptance scenario: eight
// concurrent LAF-DBSCAN jobs against one registered dataset must train the
// estimator once (1 miss, 7 hits) and agree label-for-label.
func TestConcurrentLAFJobsShareOneTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an estimator and runs 8 jobs")
	}
	const jobs = 8
	reg := testRegistry(t, "d", 250)
	est := NewEstimatorCache()
	e := NewEngine(reg, est, Options{Workers: 4, QueueDepth: jobs})
	defer e.Close()

	spec := JobSpec{Dataset: "d", Method: lafdbscan.MethodLAFDBSCAN,
		Params: lafdbscan.Params{Eps: 0.55, Tau: 5, Alpha: 1.2, Seed: 3, Workers: 2},
		Estimator: &EstimatorSpec{Config: lafdbscan.EstimatorConfig{
			MaxQueries: 100, Hidden: []int{16, 8}, Epochs: 6, Seed: 1,
		}}}
	ids := make([]string, jobs)
	for i := range ids {
		ids[i] = submit(t, e, spec)
	}
	var first []int
	for i, id := range ids {
		waitState(t, e, id, JobDone)
		res, err := e.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Labels
			continue
		}
		for k := range res.Labels {
			if res.Labels[k] != first[k] {
				t.Fatalf("job %d label[%d] = %d, want %d", i, k, res.Labels[k], first[k])
			}
		}
	}
	st := est.Stats()
	if st.Misses != 1 || st.Hits != jobs-1 || st.Entries != 1 {
		t.Errorf("estimator cache stats = %+v, want 1 miss / %d hits / 1 entry", st, jobs-1)
	}
}

// TestCancelQueuedFreesQueueSlot pins the backpressure fix: canceling a
// queued job releases its queue slot immediately, so a follow-up Submit is
// accepted without waiting for a worker to drain the corpse.
func TestCancelQueuedFreesQueueSlot(t *testing.T) {
	reg := testRegistry(t, "d", 50)
	started := make(chan struct{})
	release := make(chan struct{})
	e := NewEngine(reg, NewEstimatorCache(), Options{
		Workers: 1, QueueDepth: 1,
		Run: func(ctx context.Context, pts [][]float32, m lafdbscan.Method, p lafdbscan.Params) (*lafdbscan.Result, error) {
			select {
			case <-started:
			default:
				close(started)
			}
			<-release
			return &lafdbscan.Result{Algorithm: "fake"}, nil
		},
	})
	defer e.Close()
	defer close(release)

	submit(t, e, dbscanSpec("d")) // occupies the worker
	<-started
	queued := submit(t, e, dbscanSpec("d")) // fills the queue
	if _, err := e.Submit(context.Background(), dbscanSpec("d")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit into full queue err = %v, want ErrQueueFull", err)
	}
	if _, err := e.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Queued != 0 {
		t.Errorf("queued count after cancel = %d, want 0", s.Queued)
	}
	if _, err := e.Submit(context.Background(), dbscanSpec("d")); err != nil {
		t.Errorf("submit after canceling the queued job err = %v, want accepted", err)
	}
}

// TestSubmitRejectsNonCosineMetricForCosineOnlyMethods: only DBSCAN and
// LAF-DBSCAN honor Params.Metric; for every other method a non-cosine
// metric must be a submission error, not a silently different clustering.
func TestSubmitRejectsNonCosineMetricForCosineOnlyMethods(t *testing.T) {
	reg := testRegistry(t, "d", 50)
	e := NewEngine(reg, NewEstimatorCache(), Options{Workers: 1})
	defer e.Close()
	cosineOnly := []lafdbscan.Method{
		lafdbscan.MethodDBSCANPP, lafdbscan.MethodLAFDBSCANPP,
		lafdbscan.MethodKNNBlock, lafdbscan.MethodBlockDBSCAN, lafdbscan.MethodRhoApprox,
	}
	for _, m := range cosineOnly {
		spec := JobSpec{Dataset: "d", Method: m, Params: lafdbscan.Params{
			Eps: 0.5, Tau: 5, SampleFraction: 0.5, Rho: 1, Metric: lafdbscan.MetricEuclidean,
		}}
		if m == lafdbscan.MethodLAFDBSCANPP {
			spec.Estimator = &EstimatorSpec{}
		}
		if _, err := e.Submit(context.Background(), spec); err == nil {
			t.Errorf("%s accepted a euclidean metric", m)
		}
	}
	id := submit(t, e, JobSpec{Dataset: "d", Method: lafdbscan.MethodDBSCAN,
		Params: lafdbscan.Params{Eps: 0.5, Tau: 5, Metric: lafdbscan.MetricEuclidean}})
	waitState(t, e, id, JobDone) // the metric-aware method still works
}

// TestCancelDuringEstimatorTrainingFreesWorker pins the training-abandon
// fix: a LAF job canceled while its estimator is still fitting releases
// the worker slot right away (the training itself finishes on its own
// goroutine and lands in the cache). The config below trains for minutes
// if the wait is not interruptible, so reaching canceled within the
// waitState deadline is the assertion.
func TestCancelDuringEstimatorTrainingFreesWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a deliberately slow training")
	}
	reg := testRegistry(t, "d", 200)
	e := NewEngine(reg, NewEstimatorCache(), Options{Workers: 1, QueueDepth: 2})
	defer e.Close()

	id := submit(t, e, JobSpec{Dataset: "d", Method: lafdbscan.MethodLAFDBSCAN,
		Params: lafdbscan.Params{Eps: 0.55, Tau: 5},
		Estimator: &EstimatorSpec{Config: lafdbscan.EstimatorConfig{
			Epochs: 200000, Hidden: []int{64, 32}, MaxQueries: 200, Seed: 1,
		}}})
	waitState(t, e, id, JobRunning)
	if _, err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	waitState(t, e, id, JobCanceled)
	// The freed slot must take new work while the orphan training runs on.
	id2 := submit(t, e, dbscanSpec("d"))
	waitState(t, e, id2, JobDone)
}
