package serve

import (
	"context"
	"sync"
	"testing"

	"lafdbscan"
	"lafdbscan/internal/dataset"
)

// TestRegistrySharesOneIndex checks the index amortization: concurrent
// requests for the same (dataset, metric) get the same index instance, and
// different metrics get different ones.
func TestRegistrySharesOneIndex(t *testing.T) {
	reg := testRegistry(t, "d", 40)
	const goroutines = 8
	got := make([]lafdbscan.RangeIndex, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx, err := reg.Index("d", lafdbscan.MetricCosine)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = idx
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Index calls built distinct indexes")
		}
	}
	euc, err := reg.Index("d", lafdbscan.MetricEuclidean)
	if err != nil {
		t.Fatal(err)
	}
	if euc == got[0] {
		t.Error("euclidean and cosine share one index")
	}
}

// TestRegistryRejects pins the registration error cases.
func TestRegistryRejects(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("", dataset.MSLike(10, 1), "x"); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.Register("d", &dataset.Dataset{}, "x"); err == nil {
		t.Error("empty dataset accepted")
	}
	if err := reg.Register("d", dataset.MSLike(10, 1), "x"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("d", dataset.MSLike(10, 1), "x"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := reg.RegisterSynthetic("s", "bogus", 10, 1); err == nil {
		t.Error("unknown synthetic kind accepted")
	}
	if _, err := reg.RegisterSynthetic("s", "ms", 0, 1); err == nil {
		t.Error("zero-size synthetic accepted")
	}
	// Inline vectors are normalized on ingestion.
	info, err := reg.RegisterVectors("inline", [][]float32{{3, 0}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Points != 2 || info.Dims != 2 {
		t.Errorf("inline info = %+v", info)
	}
	ds, err := reg.Get("inline")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.IsNormalized(1e-5) {
		t.Error("inline vectors not normalized")
	}
}

// TestEstimatorCacheFailureNotCached checks that a failed training is
// dropped (so a corrected request can retry) and never counted as a hit.
func TestEstimatorCacheFailureNotCached(t *testing.T) {
	c := NewEstimatorCache()
	// Empty training set fails inside TrainRMIEstimator.
	_, _, _, err := c.Get(context.Background(), "d", nil, lafdbscan.EstimatorConfig{})
	if err == nil {
		t.Fatal("training on an empty set succeeded")
	}
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Errorf("failed training cached: %+v", st)
	}
}
