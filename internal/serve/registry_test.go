package serve

import (
	"context"
	"sync"
	"testing"

	"lafdbscan"
	"lafdbscan/internal/dataset"
)

// TestRegistrySharesOneIndex checks the index amortization: concurrent
// requests for the same (dataset, metric) get the same index instance, and
// different metrics get different ones.
func TestRegistrySharesOneIndex(t *testing.T) {
	reg := testRegistry(t, "d", 40)
	const goroutines = 8
	got := make([]lafdbscan.RangeIndex, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			idx, backend, err := reg.Index("d", lafdbscan.MetricCosine, "")
			if err != nil {
				t.Error(err)
				return
			}
			if backend != "brute" {
				t.Errorf("default backend = %q, want brute", backend)
			}
			got[i] = idx
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Index calls built distinct indexes")
		}
	}
	euc, _, err := reg.Index("d", lafdbscan.MetricEuclidean, "")
	if err != nil {
		t.Fatal(err)
	}
	if euc == got[0] {
		t.Error("euclidean and cosine share one index")
	}
	// An explicit "brute" shares the exact default's cache slot; "hnsw"
	// builds (and caches) a distinct approximate index.
	brute, _, err := reg.Index("d", lafdbscan.MetricCosine, "brute")
	if err != nil {
		t.Fatal(err)
	}
	if brute != got[0] {
		t.Error("explicit brute built a second index beside the default")
	}
	hnsw, backend, err := reg.Index("d", lafdbscan.MetricCosine, "hnsw")
	if err != nil {
		t.Fatal(err)
	}
	if backend != "hnsw" {
		t.Errorf("backend = %q, want hnsw", backend)
	}
	if hnsw == got[0] {
		t.Error("hnsw and brute share one index")
	}
	hnsw2, _, err := reg.Index("d", lafdbscan.MetricCosine, lafdbscan.IndexBackendAuto)
	if err != nil {
		t.Fatal(err)
	}
	if hnsw2 != hnsw {
		t.Error("auto resolved to a distinct index from explicit hnsw")
	}
}

// TestRegistryDefaultIndexBackend pins the server-wide default knob: auto
// flips unnamed requests onto the approximate chain, and invalid values are
// rejected up front.
func TestRegistryDefaultIndexBackend(t *testing.T) {
	reg := testRegistry(t, "d", 40)
	if err := reg.SetDefaultIndexBackend("nope"); err == nil {
		t.Error("unknown default backend accepted")
	}
	if err := reg.SetDefaultIndexBackend("grid"); err == nil {
		t.Error("radius-bound default backend accepted")
	}
	if err := reg.SetDefaultIndexBackend(lafdbscan.IndexBackendAuto); err != nil {
		t.Fatal(err)
	}
	if got := reg.DefaultIndexBackend(); got != lafdbscan.IndexBackendAuto {
		t.Errorf("DefaultIndexBackend() = %q", got)
	}
	_, backend, err := reg.Index("d", lafdbscan.MetricCosine, "")
	if err != nil {
		t.Fatal(err)
	}
	if backend != "hnsw" {
		t.Errorf("auto default resolved to %q, want hnsw", backend)
	}
	// The request-level knob still overrides the server default.
	_, backend, err = reg.Index("d", lafdbscan.MetricCosine, "brute")
	if err != nil {
		t.Fatal(err)
	}
	if backend != "brute" {
		t.Errorf("explicit brute resolved to %q", backend)
	}
	infos := reg.IndexInfo()
	if len(infos) != 1 || infos[0].Dataset != "d" {
		t.Fatalf("IndexInfo() = %+v", infos)
	}
	want := []string{"brute", "hnsw"}
	if got := infos[0].Backends; len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("built backends = %v, want %v", got, want)
	}
}

// TestRegistryRejects pins the registration error cases.
func TestRegistryRejects(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("", dataset.MSLike(10, 1), "x"); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.Register("d", &dataset.Dataset{}, "x"); err == nil {
		t.Error("empty dataset accepted")
	}
	if err := reg.Register("d", dataset.MSLike(10, 1), "x"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("d", dataset.MSLike(10, 1), "x"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := reg.RegisterSynthetic("s", "bogus", 10, 1); err == nil {
		t.Error("unknown synthetic kind accepted")
	}
	if _, err := reg.RegisterSynthetic("s", "ms", 0, 1); err == nil {
		t.Error("zero-size synthetic accepted")
	}
	// Inline vectors are normalized on ingestion.
	info, err := reg.RegisterVectors("inline", [][]float32{{3, 0}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Points != 2 || info.Dims != 2 {
		t.Errorf("inline info = %+v", info)
	}
	ds, err := reg.Get("inline")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.IsNormalized(1e-5) {
		t.Error("inline vectors not normalized")
	}
}

// TestEstimatorCacheFailureNotCached checks that a failed training is
// dropped (so a corrected request can retry) and never counted as a hit.
func TestEstimatorCacheFailureNotCached(t *testing.T) {
	c := NewEstimatorCache()
	// Empty training set fails inside TrainRMIEstimator.
	_, _, _, err := c.Get(context.Background(), "d", nil, lafdbscan.EstimatorConfig{})
	if err == nil {
		t.Fatal("training on an empty set succeeded")
	}
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Errorf("failed training cached: %+v", st)
	}
}
