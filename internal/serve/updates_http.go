package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"lafdbscan"
	"lafdbscan/internal/dataset"
)

// This file is the HTTP face of online model maintenance: the insert and
// delete endpoints evolve a stored model with the data instead of
// re-fitting it. Updates are asynchronous through the job engine — the
// same bounded worker pool, 429 backpressure, queries_done progress and
// cancel-within-one-wave contract as clustering jobs — because an update's
// cost scales with the changed neighborhoods, which on a large model is
// still real work. The job's result is the model's post-update labeling,
// fetchable from /v1/jobs/{id}/result like any clustering result; the
// model is resolved from the store again inside the job, so deleting it
// while an update is queued fails the job instead of mutating an orphan.

// resolveVectors extracts the vectors of a request that supplies either
// inline vectors (normalized server-side, like dataset ingestion) or the
// name of a registered dataset — exactly one of the two.
func (s *Server) resolveVectors(inline [][]float32, dsName string) ([][]float32, error) {
	switch {
	case len(inline) > 0 && dsName == "":
		ds := &dataset.Dataset{Name: "inline", Vectors: inline}
		if err := ds.Validate(); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		ds.Normalize()
		return ds.Vectors, nil
	case dsName != "" && len(inline) == 0:
		ds, err := s.reg.Get(dsName)
		if err != nil {
			return nil, err
		}
		return ds.Vectors, nil
	default:
		return nil, errors.New("serve: exactly one of vectors or dataset is required")
	}
}

// submitModelUpdate enqueues a maintenance closure for a stored model
// under the job engine's contract, answering 202 with the job status or
// 429 with Retry-After on a full queue. ctx is the submitting request's
// context — the engine captures its trace link so the async job's spans
// parent under the originating POST.
func (s *Server) submitModelUpdate(ctx context.Context, w http.ResponseWriter, info ModelInfo, kind string,
	update func(ctx context.Context, m ModelMutator) (lafdbscan.UpdateReport, error)) {
	id := info.ID
	status, err := s.eng.SubmitFunc(ctx, info.Dataset, lafdbscan.Method(info.Method), kind,
		func(ctx context.Context) (*lafdbscan.Result, error) {
			// Mutator routes through the model's journal when one is
			// attached, so the update survives a restart.
			model, mut, _, err := s.models.Mutator(id)
			if err != nil {
				return nil, err
			}
			report, err := update(ctx, mut)
			if err != nil {
				return nil, err
			}
			s.models.CountUpdate(kind, report.Inserted+report.Removed)
			s.models.RefreshInfo(id)
			return model.Result(), nil
		})
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, status)
}

// handleInsertModel is POST /v1/models/{id}/insert: asynchronously fold
// new vectors (inline, normalized server-side, or a registered dataset)
// into the model's clustering. The model is untouched until the job
// commits; cancellation aborts within one wave and leaves it untouched
// too.
func (s *Server) handleInsertModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	model, info, err := s.models.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	var req struct {
		Vectors [][]float32 `json:"vectors,omitempty"`
		Dataset string      `json:"dataset,omitempty"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	vectors, err := s.resolveVectors(req.Vectors, req.Dataset)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if dim := len(vectors[0]); dim != model.Dim() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: insert vectors have %d dims, model %s has %d", dim, id, model.Dim()))
		return
	}
	s.submitModelUpdate(r.Context(), w, info, "model-insert",
		func(ctx context.Context, m ModelMutator) (lafdbscan.UpdateReport, error) {
			return m.Insert(ctx, vectors)
		})
}

// handleRemovePoints is POST /v1/models/{id}/delete: asynchronously drop
// the given point ids from the model's clustering (ids compact, matching
// the model's documented convention). Distinct from DELETE /v1/models/{id},
// which discards the whole model.
func (s *Server) handleRemovePoints(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	model, info, err := s.models.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	var req struct {
		IDs []int `json:"ids"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: ids is required and must be non-empty"))
		return
	}
	// Cheap pre-check against the current size; the model re-validates
	// authoritatively (with range and duplicate checks) inside the job.
	if n := model.Len(); len(req.IDs) >= n {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: cannot remove %d of the model's %d points", len(req.IDs), n))
		return
	}
	s.submitModelUpdate(r.Context(), w, info, "model-remove",
		func(ctx context.Context, m ModelMutator) (lafdbscan.UpdateReport, error) {
			return m.Remove(ctx, req.IDs)
		})
}
