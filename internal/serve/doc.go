// Package serve turns the lafdbscan library into a long-running clustering
// service: a dataset registry that loads and normalizes named datasets once
// and shares their vectors and range-query indexes across requests, an
// estimator cache that trains each (dataset, EstimatorConfig) RMI exactly
// once, an asynchronous job engine that runs any clustering method of the
// library on a bounded worker pool with cancellation and progress, and a
// model store serving the Fit/Predict lifecycle — fit, predict, persist,
// and evolve fitted models online through the asynchronous insert/delete
// maintenance endpoints. cmd/lafserve exposes everything over HTTP JSON.
// Every route is instrumented through internal/telemetry; GET /metrics
// serves the Prometheus-format view (request counts and latency histograms
// per endpoint, queue depth, worker occupancy, cache and model-store
// activity — docs/OPERATIONS.md catalogs every series).
//
// The design follows the paper's own economics one level up: LAF amortizes
// a learned cardinality estimator across many range queries; a server
// amortizes datasets, indexes, trained estimators and fitted clusterings
// across many requests — and, with online maintenance, across an evolving
// point set too.
package serve
