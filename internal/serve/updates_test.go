package serve

import (
	"context"
	"net/http"
	"slices"
	"testing"
	"time"

	"lafdbscan"
)

// pollJob waits for a job to reach a terminal state and returns it.
func pollJob(t *testing.T, base, id string) (state string, body map[string]any) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, b := getJSON(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("job status: %d %v", code, b)
		}
		state = b["state"].(string)
		if state == "done" || state == "failed" || state == "canceled" {
			return state, b
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", state)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestModelUpdateEndpoints drives the online-maintenance surface end to
// end in process: fit a model, insert new vectors asynchronously, remove
// points, and pin the evolved labeling bit-identical to a fresh library
// fit on the resulting point set. Along the way it checks the job Kind
// tag, the refreshed model info, and the store's update counters.
func TestModelUpdateEndpoints(t *testing.T) {
	base, vectors, cleanup := modelServer(t, Options{Workers: 2, QueueDepth: 8})
	defer cleanup()

	code, body := postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "mdl", "method": "dbscan",
		"params": map[string]any{"eps": 0.5, "tau": 4, "workers": 2},
	})
	if code != http.StatusCreated {
		t.Fatalf("fit: %d %v", code, body)
	}
	id := body["model"].(map[string]any)["id"].(string)

	// Insert a batch of the dataset's own vectors (valid duplicates).
	insert := vectors[:15]
	code, body = postJSON(t, base+"/v1/models/"+id+"/insert", map[string]any{"vectors": insert})
	if code != http.StatusAccepted {
		t.Fatalf("insert: %d %v", code, body)
	}
	if body["kind"].(string) != "model-insert" {
		t.Errorf("kind = %v, want model-insert", body["kind"])
	}
	if state, b := pollJob(t, base, body["id"].(string)); state != "done" {
		t.Fatalf("insert job ended %q: %v", state, b["error"])
	}

	// Remove a few points (ids follow the compacting convention).
	code, body = postJSON(t, base+"/v1/models/"+id+"/delete", map[string]any{"ids": []int{0, 7, 42}})
	if code != http.StatusAccepted {
		t.Fatalf("remove: %d %v", code, body)
	}
	if body["kind"].(string) != "model-remove" {
		t.Errorf("kind = %v, want model-remove", body["kind"])
	}
	removeJob := body["id"].(string)
	if state, b := pollJob(t, base, removeJob); state != "done" {
		t.Fatalf("remove job ended %q: %v", state, b["error"])
	}

	// Model info reflects both updates.
	code, body = getJSON(t, base+"/v1/models/"+id)
	if code != http.StatusOK {
		t.Fatalf("info: %d %v", code, body)
	}
	wantPoints := len(vectors) + 15 - 3
	if got := int(body["points"].(float64)); got != wantPoints {
		t.Errorf("points = %d, want %d", got, wantPoints)
	}
	if got := int(body["updates"].(float64)); got != 18 {
		t.Errorf("updates = %d, want 18", got)
	}

	// The remove job's result is the evolved labeling: bit-identical to a
	// fresh library fit on the same final point set.
	code, body = getJSON(t, base+"/v1/jobs/"+removeJob+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %v", code, body)
	}
	got := labelsFromAny(t, body["labels"])
	final := append(append([][]float32{}, vectors...), insert...)
	for _, rm := range []int{42, 7, 0} { // descending, like the model compaction
		final = slices.Delete(final, rm, rm+1)
	}
	ref, err := lafdbscan.Fit(context.Background(), final, lafdbscan.MethodDBSCAN,
		lafdbscan.WithEps(0.5), lafdbscan.WithTau(4), lafdbscan.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.Labels(); !slices.Equal(got, want) {
		t.Fatalf("evolved labels diverge from fresh fit\n got: %v\nwant: %v", got[:20], want[:20])
	}

	// Store counters aggregate the maintenance activity.
	code, body = getJSON(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, body)
	}
	models := body["models"].(map[string]any)
	if models["inserts"].(float64) != 1 || models["removes"].(float64) != 1 ||
		models["points_inserted"].(float64) != 15 || models["points_removed"].(float64) != 3 {
		t.Errorf("update counters wrong: %v", models)
	}
}

// TestModelUpdateValidation pins the endpoints' error surface without
// running any maintenance: unknown models 404, malformed requests 400.
func TestModelUpdateValidation(t *testing.T) {
	base, _, cleanup := modelServer(t, Options{Workers: 1, QueueDepth: 4})
	defer cleanup()

	if code, _ := postJSON(t, base+"/v1/models/m-999999/insert", map[string]any{
		"vectors": [][]float32{{1, 0}},
	}); code != http.StatusNotFound {
		t.Errorf("unknown model insert: %d, want 404", code)
	}
	if code, _ := postJSON(t, base+"/v1/models/m-999999/delete", map[string]any{
		"ids": []int{0},
	}); code != http.StatusNotFound {
		t.Errorf("unknown model remove: %d, want 404", code)
	}

	code, body := postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "mdl", "method": "dbscan",
		"params": map[string]any{"eps": 0.5, "tau": 4},
	})
	if code != http.StatusCreated {
		t.Fatalf("fit: %d %v", code, body)
	}
	id := body["model"].(map[string]any)["id"].(string)

	if code, _ := postJSON(t, base+"/v1/models/"+id+"/insert", map[string]any{
		"vectors": [][]float32{{1, 0}},
	}); code != http.StatusBadRequest {
		t.Errorf("dim mismatch: %d, want 400", code)
	}
	if code, _ := postJSON(t, base+"/v1/models/"+id+"/insert", map[string]any{}); code != http.StatusBadRequest {
		t.Errorf("sourceless insert: %d, want 400", code)
	}
	if code, _ := postJSON(t, base+"/v1/models/"+id+"/insert", map[string]any{
		"vectors": [][]float32{{1, 0}}, "dataset": "mdl",
	}); code != http.StatusBadRequest {
		t.Errorf("double-source insert: %d, want 400", code)
	}
	if code, _ := postJSON(t, base+"/v1/models/"+id+"/delete", map[string]any{
		"ids": []int{},
	}); code != http.StatusBadRequest {
		t.Errorf("empty ids: %d, want 400", code)
	}
	if code, _ := postJSON(t, base+"/v1/models/"+id+"/delete", map[string]any{
		"ids": make([]int, 500),
	}); code != http.StatusBadRequest {
		t.Errorf("remove-everything: %d, want 400", code)
	}

	// An out-of-range id passes the cheap pre-check but fails inside the
	// job: the model stays consistent and the job reports the failure.
	code, body = postJSON(t, base+"/v1/models/"+id+"/delete", map[string]any{
		"ids": []int{1 << 20},
	})
	if code != http.StatusAccepted {
		t.Fatalf("out-of-range submit: %d %v", code, body)
	}
	state, b := pollJob(t, base, body["id"].(string))
	if state != "failed" {
		t.Fatalf("out-of-range remove ended %q, want failed: %v", state, b)
	}
	code, body = getJSON(t, base+"/v1/models/"+id)
	if code != http.StatusOK || int(body["updates"].(float64)) != 0 {
		t.Fatalf("failed remove mutated the model: %d %v", code, body)
	}
}
