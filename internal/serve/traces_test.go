package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"lafdbscan/internal/telemetry"
	"lafdbscan/internal/trace"
)

// postJSONTrace is postJSON plus the response's X-Laf-Trace header — the
// handle a client keeps to look its request up in /v1/traces later.
func postJSONTrace(t *testing.T, url string, body any) (int, map[string]any, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	traceID := resp.Header.Get(TraceHeader)
	code, out := decodeResp(t, resp)
	return code, out, traceID
}

// tracesFor fetches GET /v1/traces?trace=<id> and returns the spans as
// name → span, asserting names are unique within the trace (they are, by
// construction of the instrumentation sites).
func tracesFor(t *testing.T, base, traceID string) map[string]map[string]any {
	t.Helper()
	code, body := getJSON(t, base+"/v1/traces?trace="+traceID)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/traces?trace=%s: %d %v", traceID, code, body)
	}
	spans, _ := body["spans"].([]any)
	out := make(map[string]map[string]any, len(spans))
	for _, raw := range spans {
		sp := raw.(map[string]any)
		name := sp["name"].(string)
		if _, dup := out[name]; dup {
			t.Fatalf("trace %s holds two spans named %q", traceID, name)
		}
		out[name] = sp
	}
	return out
}

// TestTraceRootJobWaveParentage is the tentpole's end-to-end assertion,
// run under -race in CI: one traced POST /v1/jobs yields a tree of
// request root → job.queued + job.run (async, bridged by the submit-time
// link) → per-wave events, all sharing the trace ID the response header
// announced, with the run span's queries_done agreeing with the wave
// events it contains.
func TestTraceRootJobWaveParentage(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name": "d", "synthetic": map[string]any{"kind": "ms", "n": 80, "seed": 1},
	}); code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	code, body, traceID := postJSONTrace(t, ts.URL+"/v1/jobs", map[string]any{
		"dataset": "d", "method": "dbscan",
		"params": map[string]any{"eps": 0.55, "tau": 5, "workers": 1},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	if traceID == "" {
		t.Fatal("submit response carries no X-Laf-Trace header at the default 1-in-1 sampling")
	}
	waitState(t, s.eng, body["id"].(string), JobDone)

	spans := tracesFor(t, ts.URL, traceID)
	root, ok := spans["POST /v1/jobs"]
	if !ok {
		t.Fatalf("trace %s has no root span, got %v", traceID, spanNames(spans))
	}
	if pid, _ := root["parent_id"].(string); pid != "" {
		t.Errorf("root span has parent_id %q, want none", pid)
	}
	if got := root["attrs"].(map[string]any)["status"]; got != "202" {
		t.Errorf("root span status attr = %v, want 202", got)
	}

	rootSpanID := root["span_id"].(string)
	for _, name := range []string{"job.queued", "job.run"} {
		sp, ok := spans[name]
		if !ok {
			t.Fatalf("trace %s missing %s span, got %v", traceID, name, spanNames(spans))
		}
		if pid, _ := sp["parent_id"].(string); pid != rootSpanID {
			t.Errorf("%s parent_id = %q, want root %q", name, pid, rootSpanID)
		}
	}

	// The run span's wave events are its latency breakdown: their query
	// counts must sum to the queries_done the span was annotated with, and
	// the whole dataset must have been queried.
	run := spans["job.run"]
	attrs := run["attrs"].(map[string]any)
	if got := attrs["state"]; got != "done" {
		t.Errorf("job.run state attr = %v, want done", got)
	}
	qd, err := strconv.Atoi(attrs["queries_done"].(string))
	if err != nil || qd < 80 {
		t.Errorf("job.run queries_done attr = %v, want >= 80", attrs["queries_done"])
	}
	events, _ := run["events"].([]any)
	if len(events) == 0 {
		t.Fatal("job.run span has no wave events")
	}
	waveSum := 0
	for _, raw := range events {
		ev := raw.(map[string]any)
		if ev["name"] != "wave" {
			t.Errorf("unexpected event %q on job.run", ev["name"])
			continue
		}
		q, err := strconv.Atoi(ev["attrs"].(map[string]any)["queries"].(string))
		if err != nil {
			t.Fatalf("wave event queries attr: %v", err)
		}
		waveSum += q
	}
	if waveSum != qd {
		t.Errorf("wave events sum to %d queries, span says queries_done=%d", waveSum, qd)
	}

	// The same total must be what the job status and /v1/stats report —
	// one run, three views (trace, job, stats), one number.
	_, status := getJSON(t, ts.URL+"/v1/jobs/"+body["id"].(string))
	if got := int(status["queries_done"].(float64)); got != qd {
		t.Errorf("job status queries_done = %d, trace says %d", got, qd)
	}
	_, stats := getJSON(t, ts.URL+"/v1/stats")
	if got := int(stats["jobs"].(map[string]any)["queries_done"].(float64)); got != qd {
		t.Errorf("/v1/stats queries_done = %d, trace says %d", got, qd)
	}
}

func spanNames(spans map[string]map[string]any) []string {
	names := make([]string, 0, len(spans))
	for n := range spans {
		names = append(names, n)
	}
	return names
}

// TestTraceSamplingOverHTTP pins the deterministic 1-in-N contract at the
// HTTP boundary: with TraceSampleEvery 2, exactly every other response
// carries the trace header, starting with the first.
func TestTraceSamplingOverHTTP(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 1, TraceSampleEvery: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get(TraceHeader)
		if wantSampled := i%2 == 0; (got != "") != wantSampled {
			t.Errorf("request %d: X-Laf-Trace = %q, want sampled=%v", i, got, wantSampled)
		}
	}
}

// TestTraceDisabledNoHeader: TraceSampleEvery < 0 turns tracing off — no
// header, nothing recorded, /v1/traces still serves (empty).
func TestTraceDisabledNoHeader(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 1, TraceSampleEvery: -1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "" {
		t.Errorf("X-Laf-Trace = %q with tracing disabled, want none", got)
	}
	code, body := getJSON(t, ts.URL+"/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/traces: %d", code)
	}
	if got := body["recorded"].(float64); got != 0 {
		t.Errorf("recorded = %v with tracing disabled, want 0", got)
	}
	if got := body["sample_every"].(float64); got != 0 {
		t.Errorf("sample_every = %v, want 0", got)
	}
}

// TestTracesFilters drives every query parameter of GET /v1/traces — the
// trace, min_ms and limit filters and each one's 400 on bad input.
func TestTracesFilters(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, resp.Header.Get(TraceHeader))
	}

	code, body := getJSON(t, ts.URL+"/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/traces: %d", code)
	}
	if got := int(body["count"].(float64)); got < 3 {
		t.Errorf("unfiltered count = %d, want >= 3", got)
	}

	// trace= narrows to exactly one request's spans.
	spans := tracesFor(t, ts.URL, ids[1])
	if len(spans) != 1 {
		t.Errorf("trace filter returned %d spans, want 1 (healthz has no children)", len(spans))
	}
	for _, sp := range spans {
		if got := sp["trace_id"].(string); got != ids[1] {
			t.Errorf("trace filter leaked span of trace %s", got)
		}
	}

	// min_ms high enough excludes everything; 0 is valid and excludes nothing.
	code, body = getJSON(t, ts.URL+"/v1/traces?min_ms=3600000")
	if code != http.StatusOK || int(body["count"].(float64)) != 0 {
		t.Errorf("min_ms=3600000: code %d count %v, want 200 with 0", code, body["count"])
	}

	// limit keeps the most recent spans.
	code, body = getJSON(t, ts.URL+"/v1/traces?limit=1")
	if code != http.StatusOK || int(body["count"].(float64)) != 1 {
		t.Fatalf("limit=1: code %d count %v, want 200 with 1", code, body["count"])
	}
	last := body["spans"].([]any)[0].(map[string]any)
	if got := last["trace_id"].(string); got != ids[2] {
		t.Errorf("limit=1 kept trace %s, want the most recent %s", got, ids[2])
	}

	for _, q := range []string{"trace=zzzz", "min_ms=-1", "min_ms=abc", "limit=0", "limit=x"} {
		if code, _ := getJSON(t, ts.URL+"/v1/traces?"+q); code != http.StatusBadRequest {
			t.Errorf("GET /v1/traces?%s: %d, want 400", q, code)
		}
	}
}

// TestTracePanicClosesRootSpan pins the middleware's panic path for the
// tracer the way TestMetricsMiddlewarePanic does for the metrics: a
// panicking handler must still finish its root span into the ring, marked
// with the 500 the panic was accounted as — otherwise the flight recorder
// goes blind exactly on the requests that crash.
func TestTracePanicClosesRootSpan(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracer := trace.New(16, 1)
	m := newServerMetrics(reg, tracer, nil, 0)
	h := m.instrument("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("middleware swallowed the handler's panic")
			}
		}()
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/boom", nil))
	}()
	if got := tracer.Recorded(); got != 1 {
		t.Fatalf("spans recorded after panic = %d, want 1", got)
	}
	sp := tracer.Snapshot()[0]
	if sp.Name != "GET /boom" {
		t.Errorf("recorded span name = %q, want GET /boom", sp.Name)
	}
	if sp.End.IsZero() {
		t.Error("panicked request's root span was never finished")
	}
	status := ""
	for _, a := range sp.Attrs {
		if a.Key == "status" {
			status = a.Value
		}
	}
	if status != "500" {
		t.Errorf("root span status attr = %q, want 500", status)
	}
}

// TestSlowRequestLog exercises the slow-op log synchronously through the
// middleware: over threshold logs a warning carrying the trace ID, and the
// log fires even for unsampled requests (threshold 0 disables it).
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))

	tracer := trace.New(16, 1)
	m := newServerMetrics(telemetry.NewRegistry(), tracer, logger, time.Nanosecond)
	slow := m.instrument("GET /slow", func(http.ResponseWriter, *http.Request) {
		time.Sleep(time.Millisecond)
	})
	slow(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/slow", nil))

	out := buf.String()
	if !bytes.Contains([]byte(out), []byte("slow request")) {
		t.Fatalf("no slow-request warning logged, got %q", out)
	}
	wantTrace := tracer.Snapshot()[0].TraceID.String()
	if !bytes.Contains([]byte(out), []byte(wantTrace)) {
		t.Errorf("slow-request log %q does not carry trace ID %s", out, wantTrace)
	}

	// Unsampled request: the warning still fires (latency visibility must
	// not depend on the sampling decision), just without a trace ID.
	buf.Reset()
	m = newServerMetrics(telemetry.NewRegistry(), trace.New(16, 0), logger, time.Nanosecond)
	slow = m.instrument("GET /slow", func(http.ResponseWriter, *http.Request) {
		time.Sleep(time.Millisecond)
	})
	slow(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/slow", nil))
	if !bytes.Contains(buf.Bytes(), []byte("slow request")) {
		t.Errorf("unsampled slow request not logged, got %q", buf.String())
	}

	// Threshold 0 disables the log entirely.
	buf.Reset()
	m = newServerMetrics(telemetry.NewRegistry(), trace.New(16, 1), logger, 0)
	slow = m.instrument("GET /slow", func(http.ResponseWriter, *http.Request) {
		time.Sleep(time.Millisecond)
	})
	slow(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/slow", nil))
	if buf.Len() != 0 {
		t.Errorf("slow log fired with threshold 0: %q", buf.String())
	}
}

// TestPprofGate: /debug/pprof/ serves only when EnablePprof is set.
func TestPprofGate(t *testing.T) {
	off := NewServer(Options{Workers: 1, QueueDepth: 1})
	defer off.Close()
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp, err := http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	on := NewServer(Options{Workers: 1, QueueDepth: 1, EnablePprof: true})
	defer on.Close()
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	resp, err = http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
}
