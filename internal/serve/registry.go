package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lafdbscan"
	"lafdbscan/internal/dataset"
	"lafdbscan/internal/telemetry"
)

// Sentinel errors the HTTP layer maps onto status codes with errors.Is.
var (
	// ErrNotFound reports a reference to a dataset that was never
	// registered (HTTP 404).
	ErrNotFound = errors.New("dataset not registered")
	// ErrExists reports a Register under a name already taken (HTTP 409).
	ErrExists = errors.New("dataset already registered")
)

// DatasetInfo describes a registered dataset.
type DatasetInfo struct {
	Name   string `json:"name"`
	Points int    `json:"points"`
	Dims   int    `json:"dims"`
	// Source records how the dataset entered the registry ("file:<path>",
	// "synthetic:<kind>", "inline").
	Source string `json:"source"`
	// IndexBackends lists the shared range-index backends built for this
	// dataset so far (registry order), across all metrics.
	IndexBackends []string `json:"index_backends,omitempty"`
}

// Registry holds named datasets, loaded or ingested once and shared by
// every request that references them. Vectors are unit-normalized on
// ingestion (the contract of every clustering method in the library) and
// never mutated afterwards, so concurrent jobs can share the backing
// slices. Per-(dataset, metric, backend) range indexes are resolved
// through the library's backend registry, built lazily on first use and
// shared the same way.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*registryEntry
	// defaultBackend is the index backend requests resolve through when
	// they name none: "" keeps the exact default (brute force),
	// lafdbscan.IndexBackendAuto opts the whole server into the
	// approximate chain (HNSW). Set once at startup (SetDefaultIndexBackend)
	// before serving.
	defaultBackend string
	// telemetry, when set (registerMetrics), receives the per-backend
	// index-build counter.
	telemetry *telemetry.Registry
}

// indexKey addresses one shared index: the metric it answers under and the
// resolved backend name it was built with.
type indexKey struct {
	metric  lafdbscan.DistanceMetric
	backend string
}

type registryEntry struct {
	ds     *dataset.Dataset
	source string

	// indexes maps (metric, resolved backend) onto the shared range-query
	// engine over ds.Vectors, built lazily under idxMu so concurrent first
	// users construct it exactly once.
	idxMu   sync.Mutex
	indexes map[indexKey]lafdbscan.RangeIndex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*registryEntry)}
}

// CheckIndexBackend validates an index-backend knob for serving: "" (exact
// default), IndexBackendAuto, or a registered backend name. Radius-bound
// backends (the grid) are rejected — shared serving indexes are built once
// per dataset and reused across every query radius. The CLI calls it to
// reject a bad -index-backend flag before constructing the server.
func CheckIndexBackend(backend string) error {
	if backend == "" || backend == lafdbscan.IndexBackendAuto {
		return nil
	}
	caps, ok := lafdbscan.LookupIndexBackend(backend)
	if !ok {
		return fmt.Errorf("serve: unknown index backend %q (have %v or %q)",
			backend, lafdbscan.IndexBackends(), lafdbscan.IndexBackendAuto)
	}
	if caps.NeedsEps {
		return fmt.Errorf("serve: index backend %q is radius-bound (built per eps) and cannot back the shared per-dataset index", backend)
	}
	return nil
}

// SetDefaultIndexBackend configures the index backend requests resolve
// through when they name none (see CheckIndexBackend for the accepted
// values). Call before serving.
func (r *Registry) SetDefaultIndexBackend(backend string) error {
	if err := CheckIndexBackend(backend); err != nil {
		return err
	}
	r.mu.Lock()
	r.defaultBackend = backend
	r.mu.Unlock()
	return nil
}

// DefaultIndexBackend returns the configured default index backend knob
// ("" = exact default).
func (r *Registry) DefaultIndexBackend() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defaultBackend
}

// Register adds a dataset under name, normalizing its vectors in place
// (idempotent for already-normalized data). It rejects empty names, empty
// datasets, structurally invalid datasets and duplicate names — a
// registered dataset is immutable for the life of the server, which is
// what makes sharing it across concurrent jobs safe.
func (r *Registry) Register(name string, ds *dataset.Dataset, source string) error {
	if name == "" {
		return fmt.Errorf("serve: empty dataset name")
	}
	if ds == nil || ds.Len() == 0 {
		return fmt.Errorf("serve: dataset %q is empty", name)
	}
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ds.Normalize()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("serve: dataset %q: %w", name, ErrExists)
	}
	r.entries[name] = &registryEntry{
		ds: ds, source: source,
		indexes: make(map[indexKey]lafdbscan.RangeIndex),
	}
	return nil
}

// RegisterFile loads a dataset file written by Dataset.Save / cmd/datagen
// and registers it under name (or its stored name when name is empty).
func (r *Registry) RegisterFile(name, path string) (DatasetInfo, error) {
	ds, err := dataset.Load(path)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	if name == "" {
		name = ds.Name
	}
	if err := r.Register(name, ds, "file:"+path); err != nil {
		return DatasetInfo{}, err
	}
	return r.info(name), nil
}

// RegisterSynthetic generates one of the library's synthetic corpus
// stand-ins (kind "ms", "glove" or "nyt") and registers it.
func (r *Registry) RegisterSynthetic(name, kind string, n int, seed int64) (DatasetInfo, error) {
	if n <= 0 {
		return DatasetInfo{}, fmt.Errorf("serve: synthetic dataset size %d must be positive", n)
	}
	var ds *dataset.Dataset
	switch kind {
	case "ms":
		ds = dataset.MSLike(n, seed)
	case "glove":
		ds = dataset.GloVeLike(n, seed)
	case "nyt":
		ds = dataset.NYTLike(dataset.NYTLikeConfig{N: n, Seed: seed, NoiseFrac: 0.15})
	default:
		return DatasetInfo{}, fmt.Errorf("serve: unknown synthetic kind %q (want ms, glove or nyt)", kind)
	}
	if err := r.Register(name, ds, "synthetic:"+kind); err != nil {
		return DatasetInfo{}, err
	}
	return r.info(name), nil
}

// RegisterVectors ingests raw vectors (e.g. from a JSON request body) as a
// named dataset.
func (r *Registry) RegisterVectors(name string, vectors [][]float32) (DatasetInfo, error) {
	ds := &dataset.Dataset{Name: name, Vectors: vectors}
	if err := r.Register(name, ds, "inline"); err != nil {
		return DatasetInfo{}, err
	}
	return r.info(name), nil
}

// Get returns the shared dataset registered under name.
func (r *Registry) Get(name string) (*dataset.Dataset, error) {
	e, err := r.get(name)
	if err != nil {
		return nil, err
	}
	return e.ds, nil
}

// Index returns the shared range-query engine over the named dataset
// under the given metric, building it on first use through the library's
// backend registry. backend is the request's IndexBackend knob; "" falls
// back to the server default (SetDefaultIndexBackend), which itself
// defaults to the exact brute-force scan. The cache is keyed by the
// resolved name, so "" and an explicit "brute" share one index, and the
// returned name reports what actually backs the queries. Sharing the
// index (rather than letting every clustering run construct its own) is
// the registry's second amortization after the vectors themselves; under
// the exact default the labels are identical either way because the
// engine is the same construction the library defaults to.
func (r *Registry) Index(name string, metric lafdbscan.DistanceMetric, backend string) (lafdbscan.RangeIndex, string, error) {
	e, err := r.get(name)
	if err != nil {
		return nil, "", err
	}
	if backend == "" {
		backend = r.DefaultIndexBackend()
	}
	// Shared indexes serve every radius, so NeedsEps backends never
	// resolve here (haveEps false).
	resolved, err := lafdbscan.ResolveIndexBackend(backend, metric, false)
	if err != nil {
		return nil, "", err
	}
	e.idxMu.Lock()
	key := indexKey{metric: metric, backend: resolved}
	idx, ok := e.indexes[key]
	var built bool
	if !ok {
		b, _, berr := lafdbscan.Params{IndexBackend: resolved}.NewIndex(e.ds.Vectors, metric)
		if berr != nil {
			e.idxMu.Unlock()
			return nil, "", berr
		}
		idx = b
		e.indexes[key] = idx
		built = true
	}
	// Count after releasing idxMu: countIndexBuild takes r.mu, and other
	// paths (List/Info) take r.mu before idxMu — holding both here in the
	// opposite order would invert the lock hierarchy.
	e.idxMu.Unlock()
	if built {
		r.countIndexBuild(resolved)
	}
	return idx, resolved, nil
}

// countIndexBuild bumps the per-backend index-build counter when a
// telemetry registry is attached.
func (r *Registry) countIndexBuild(backend string) {
	r.mu.RLock()
	reg := r.telemetry
	r.mu.RUnlock()
	if reg != nil {
		reg.Counter("laf_index_builds_total",
			"Shared range indexes built by the dataset registry, by backend.",
			telemetry.Label{Name: "laf_index_backend", Value: backend}).Inc()
	}
}

// DatasetIndexInfo reports which shared index backends have been built for
// one dataset — the /v1/stats view of the registry's index cache.
type DatasetIndexInfo struct {
	Dataset  string   `json:"dataset"`
	Backends []string `json:"backends"`
}

// IndexInfo lists, per dataset (sorted by name), the backends with built
// shared indexes. Datasets with no index yet report an empty list.
func (r *Registry) IndexInfo() []DatasetIndexInfo {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]*registryEntry, 0, len(names))
	for _, name := range names {
		entries = append(entries, r.entries[name])
	}
	r.mu.RUnlock()
	out := make([]DatasetIndexInfo, len(names))
	for i, name := range names {
		out[i] = DatasetIndexInfo{Dataset: name, Backends: entries[i].builtBackends()}
	}
	return out
}

// builtBackends lists the backends with built indexes for this entry, in
// backend-registry order (deterministic — the key set is probed, never
// iterated).
func (e *registryEntry) builtBackends() []string {
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	metrics := []lafdbscan.DistanceMetric{lafdbscan.MetricCosine, lafdbscan.MetricEuclidean}
	out := []string{}
	for _, b := range lafdbscan.IndexBackends() {
		for _, m := range metrics {
			if _, ok := e.indexes[indexKey{metric: m, backend: b}]; ok {
				out = append(out, b)
				break
			}
		}
	}
	return out
}

// Info returns the description of one registered dataset.
func (r *Registry) Info(name string) (DatasetInfo, error) {
	if _, err := r.get(name); err != nil {
		return DatasetInfo{}, err
	}
	return r.info(name), nil
}

// List returns every registered dataset, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]DatasetInfo, 0, len(names))
	for _, name := range names {
		out = append(out, r.infoLocked(name))
	}
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

func (r *Registry) get(name string) (*registryEntry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("serve: dataset %q: %w", name, ErrNotFound)
	}
	return e, nil
}

func (r *Registry) info(name string) DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.infoLocked(name)
}

func (r *Registry) infoLocked(name string) DatasetInfo {
	e := r.entries[name]
	return DatasetInfo{
		Name: name, Points: e.ds.Len(), Dims: e.ds.Dim(), Source: e.source,
		IndexBackends: e.builtBackends(),
	}
}
