package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lafdbscan"
	"lafdbscan/internal/dataset"
)

// Sentinel errors the HTTP layer maps onto status codes with errors.Is.
var (
	// ErrNotFound reports a reference to a dataset that was never
	// registered (HTTP 404).
	ErrNotFound = errors.New("dataset not registered")
	// ErrExists reports a Register under a name already taken (HTTP 409).
	ErrExists = errors.New("dataset already registered")
)

// DatasetInfo describes a registered dataset.
type DatasetInfo struct {
	Name   string `json:"name"`
	Points int    `json:"points"`
	Dims   int    `json:"dims"`
	// Source records how the dataset entered the registry ("file:<path>",
	// "synthetic:<kind>", "inline").
	Source string `json:"source"`
}

// Registry holds named datasets, loaded or ingested once and shared by
// every request that references them. Vectors are unit-normalized on
// ingestion (the contract of every clustering method in the library) and
// never mutated afterwards, so concurrent jobs can share the backing
// slices. Per-(dataset, metric) brute-force indexes are built lazily on
// first use and shared the same way.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*registryEntry
}

type registryEntry struct {
	ds     *dataset.Dataset
	source string

	// indexes maps a metric onto the shared brute-force range-query engine
	// over ds.Vectors, built lazily under idxMu so concurrent first users
	// construct it exactly once.
	idxMu   sync.Mutex
	indexes map[lafdbscan.DistanceMetric]lafdbscan.RangeIndex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*registryEntry)}
}

// Register adds a dataset under name, normalizing its vectors in place
// (idempotent for already-normalized data). It rejects empty names, empty
// datasets, structurally invalid datasets and duplicate names — a
// registered dataset is immutable for the life of the server, which is
// what makes sharing it across concurrent jobs safe.
func (r *Registry) Register(name string, ds *dataset.Dataset, source string) error {
	if name == "" {
		return fmt.Errorf("serve: empty dataset name")
	}
	if ds == nil || ds.Len() == 0 {
		return fmt.Errorf("serve: dataset %q is empty", name)
	}
	if err := ds.Validate(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	ds.Normalize()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("serve: dataset %q: %w", name, ErrExists)
	}
	r.entries[name] = &registryEntry{
		ds: ds, source: source,
		indexes: make(map[lafdbscan.DistanceMetric]lafdbscan.RangeIndex),
	}
	return nil
}

// RegisterFile loads a dataset file written by Dataset.Save / cmd/datagen
// and registers it under name (or its stored name when name is empty).
func (r *Registry) RegisterFile(name, path string) (DatasetInfo, error) {
	ds, err := dataset.Load(path)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	if name == "" {
		name = ds.Name
	}
	if err := r.Register(name, ds, "file:"+path); err != nil {
		return DatasetInfo{}, err
	}
	return r.info(name), nil
}

// RegisterSynthetic generates one of the library's synthetic corpus
// stand-ins (kind "ms", "glove" or "nyt") and registers it.
func (r *Registry) RegisterSynthetic(name, kind string, n int, seed int64) (DatasetInfo, error) {
	if n <= 0 {
		return DatasetInfo{}, fmt.Errorf("serve: synthetic dataset size %d must be positive", n)
	}
	var ds *dataset.Dataset
	switch kind {
	case "ms":
		ds = dataset.MSLike(n, seed)
	case "glove":
		ds = dataset.GloVeLike(n, seed)
	case "nyt":
		ds = dataset.NYTLike(dataset.NYTLikeConfig{N: n, Seed: seed, NoiseFrac: 0.15})
	default:
		return DatasetInfo{}, fmt.Errorf("serve: unknown synthetic kind %q (want ms, glove or nyt)", kind)
	}
	if err := r.Register(name, ds, "synthetic:"+kind); err != nil {
		return DatasetInfo{}, err
	}
	return r.info(name), nil
}

// RegisterVectors ingests raw vectors (e.g. from a JSON request body) as a
// named dataset.
func (r *Registry) RegisterVectors(name string, vectors [][]float32) (DatasetInfo, error) {
	ds := &dataset.Dataset{Name: name, Vectors: vectors}
	if err := r.Register(name, ds, "inline"); err != nil {
		return DatasetInfo{}, err
	}
	return r.info(name), nil
}

// Get returns the shared dataset registered under name.
func (r *Registry) Get(name string) (*dataset.Dataset, error) {
	e, err := r.get(name)
	if err != nil {
		return nil, err
	}
	return e.ds, nil
}

// Index returns the shared brute-force range-query engine over the named
// dataset under the given metric, building it on first use. Sharing the
// index (rather than letting every clustering run construct its own) is
// the registry's second amortization after the vectors themselves; the
// labels are identical either way because the engine is the same
// construction the library defaults to.
func (r *Registry) Index(name string, metric lafdbscan.DistanceMetric) (lafdbscan.RangeIndex, error) {
	e, err := r.get(name)
	if err != nil {
		return nil, err
	}
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	idx, ok := e.indexes[metric]
	if !ok {
		idx = lafdbscan.NewBruteForceIndex(e.ds.Vectors, metric)
		e.indexes[metric] = idx
	}
	return idx, nil
}

// Info returns the description of one registered dataset.
func (r *Registry) Info(name string) (DatasetInfo, error) {
	if _, err := r.get(name); err != nil {
		return DatasetInfo{}, err
	}
	return r.info(name), nil
}

// List returns every registered dataset, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]DatasetInfo, 0, len(names))
	for _, name := range names {
		out = append(out, r.infoLocked(name))
	}
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

func (r *Registry) get(name string) (*registryEntry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("serve: dataset %q: %w", name, ErrNotFound)
	}
	return e, nil
}

func (r *Registry) info(name string) DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.infoLocked(name)
}

func (r *Registry) infoLocked(name string) DatasetInfo {
	e := r.entries[name]
	return DatasetInfo{Name: name, Points: e.ds.Len(), Dims: e.ds.Dim(), Source: e.source}
}
