package serve

import (
	"context"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lafdbscan"
	"lafdbscan/internal/telemetry"
	"lafdbscan/internal/trace"
	"lafdbscan/internal/wal"
)

// walManager owns the server's durability wiring: one journal directory
// per model id under the configured root, the shared fsync policy, and the
// WAL telemetry every journal feeds. nil (no -wal-dir) means the server
// runs memory-only, exactly as before.
type walManager struct {
	dir           string
	sync          wal.SyncPolicy
	snapshotEvery int
	fsys          wal.FS

	appends       atomic.Int64
	appendedBytes atomic.Int64
	fsyncs        atomic.Int64
	snapshots     atomic.Int64

	recoveries       atomic.Int64
	recoveryFailures atomic.Int64
	recoveredRecords atomic.Int64
	droppedBytes     atomic.Int64
	truncations      atomic.Int64

	fsyncSeconds *telemetry.Histogram
}

// defaultSnapshotEvery bounds replay work: a journal segment never grows
// past this many records before a snapshot rolls the generation.
const defaultSnapshotEvery = 1024

// newWALManager builds the manager from Options, creating the root
// directory. Options.WALSync must already be validated (the contract
// NewServer documents); the returned manager is nil when WALDir is empty.
func newWALManager(opts Options, reg *telemetry.Registry, store *ModelStore) (*walManager, error) {
	if opts.WALDir == "" {
		return nil, nil
	}
	policy, err := wal.ParseSyncPolicy(opts.WALSync)
	if err != nil {
		return nil, err
	}
	fsys := opts.WALFS
	if fsys == nil {
		fsys = wal.OSFS()
	}
	if err := fsys.MkdirAll(opts.WALDir); err != nil {
		return nil, err
	}
	every := opts.WALSnapshotEvery
	if every <= 0 {
		every = defaultSnapshotEvery
	}
	m := &walManager{dir: opts.WALDir, sync: policy, snapshotEvery: every, fsys: fsys}
	m.register(reg, store)
	return m, nil
}

func (m *walManager) register(reg *telemetry.Registry, store *ModelStore) {
	reg.CounterFunc("laf_wal_appends_total", "WAL records appended across all model journals.", m.appends.Load)
	reg.CounterFunc("laf_wal_appended_bytes_total", "WAL bytes appended across all model journals.", m.appendedBytes.Load)
	reg.CounterFunc("laf_wal_fsyncs_total", "WAL fsyncs issued across all model journals.", m.fsyncs.Load)
	reg.CounterFunc("laf_wal_snapshots_total", "Model snapshots committed (explicit and automatic).", m.snapshots.Load)
	reg.CounterFunc("laf_wal_recoveries_total", "Models recovered from their journals at boot.", m.recoveries.Load)
	reg.CounterFunc("laf_wal_recovery_failures_total", "Journals that failed to recover at boot (skipped, logged).", m.recoveryFailures.Load)
	reg.CounterFunc("laf_wal_recovered_records_total", "WAL records replayed during boot recovery.", m.recoveredRecords.Load)
	reg.CounterFunc("laf_wal_dropped_bytes_total", "Torn or corrupt journal bytes dropped during recovery.", m.droppedBytes.Load)
	reg.CounterFunc("laf_wal_truncations_total", "Recoveries that had to cut a torn or corrupt journal tail.", m.truncations.Load)
	m.fsyncSeconds = reg.Histogram("laf_wal_fsync_seconds",
		"WAL fsync latency in seconds.",
		[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1})
	reg.GaugeFunc("laf_wal_models", "Models with an attached journal.",
		func() float64 { models, _, _ := store.walStats(); return float64(models) })
	reg.GaugeFunc("laf_wal_segment_records", "Records in the active WAL segments (sum over models).",
		func() float64 { _, records, _ := store.walStats(); return float64(records) })
	reg.GaugeFunc("laf_wal_segment_bytes", "Bytes in the active WAL segments (sum over models).",
		func() float64 { _, _, bytes := store.walStats(); return float64(bytes) })
}

// modelDir returns the journal directory for one model id.
func (m *walManager) modelDir(id string) string { return filepath.Join(m.dir, id) }

// durableOptions bridges the manager's policy and telemetry hooks into a
// model journal's options.
func (m *walManager) durableOptions() lafdbscan.DurableOptions {
	return lafdbscan.DurableOptions{
		Sync:          m.sync,
		SnapshotEvery: m.snapshotEvery,
		FS:            m.fsys,
		OnAppend: func(bytes int) {
			m.appends.Add(1)
			m.appendedBytes.Add(int64(bytes))
		},
		OnFsync: func(d time.Duration) {
			m.fsyncs.Add(1)
			m.fsyncSeconds.Observe(d.Seconds())
		},
		OnSnapshot: func(int64) { m.snapshots.Add(1) },
	}
}

// stats is the /v1/stats "wal" section.
func (m *walManager) stats(store *ModelStore) map[string]any {
	if m == nil {
		return map[string]any{"enabled": false}
	}
	models, records, bytes := store.walStats()
	return map[string]any{
		"enabled":           true,
		"dir":               m.dir,
		"sync":              m.sync.String(),
		"snapshot_every":    m.snapshotEvery,
		"models":            models,
		"segment_records":   records,
		"segment_bytes":     bytes,
		"appends":           m.appends.Load(),
		"appended_bytes":    m.appendedBytes.Load(),
		"fsyncs":            m.fsyncs.Load(),
		"snapshots":         m.snapshots.Load(),
		"recoveries":        m.recoveries.Load(),
		"recovery_failures": m.recoveryFailures.Load(),
		"recovered_records": m.recoveredRecords.Load(),
		"dropped_bytes":     m.droppedBytes.Load(),
		"truncations":       m.truncations.Load(),
	}
}

// attachJournal starts a fresh journal for a model that just entered the
// store (fit or load) and registers it on the entry, so every later
// mutation is journaled. No-op without a WAL manager.
func (s *Server) attachJournal(id string, model *lafdbscan.Model) error {
	if s.wal == nil {
		return nil
	}
	d, err := lafdbscan.NewDurable(model, s.wal.modelDir(id), s.wal.durableOptions())
	if err != nil {
		return err
	}
	return s.models.SetDurable(id, d)
}

// recoverJournaledModels reopens every model journal under the WAL root at
// boot, replaying each onto a recovered model registered under its
// original id. A journal that fails to recover is logged and skipped —
// boot continues with the models that survive; the failure is visible in
// laf_wal_recovery_failures_total and the recovery span.
func (s *Server) recoverJournaledModels() {
	if s.wal == nil {
		return
	}
	names, err := s.wal.fsys.ReadDir(s.wal.dir)
	if err != nil {
		s.logger.Error("wal: listing journal root", "dir", s.wal.dir, "err", err)
		return
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.HasPrefix(name, "m-") {
			continue
		}
		//lafvet:allow ctxflow recovery runs at boot, before any request context exists
		ctx, span := s.tracer.Root(context.Background(), "wal.recover")
		d, rep, err := lafdbscan.OpenDurable(ctx, s.wal.modelDir(name), s.wal.durableOptions())
		if err != nil {
			s.wal.recoveryFailures.Add(1)
			s.logger.Error("wal: recovering model journal", "model", name, "err", err)
			if span != nil {
				span.Annotate(trace.Str("model", name), trace.Str("error", err.Error()))
				span.Finish()
			}
			continue
		}
		if _, aerr := s.models.AddRecovered(name, d); aerr != nil {
			s.wal.recoveryFailures.Add(1)
			s.logger.Error("wal: storing recovered model", "model", name, "err", aerr)
			d.Close()
			if span != nil {
				span.Annotate(trace.Str("model", name), trace.Str("error", aerr.Error()))
				span.Finish()
			}
			continue
		}
		s.wal.recoveries.Add(1)
		s.wal.recoveredRecords.Add(rep.Records)
		s.wal.droppedBytes.Add(rep.DroppedBytes)
		if rep.Truncated {
			s.wal.truncations.Add(1)
			s.logger.Warn("wal: recovery cut a torn journal tail",
				"model", name, "reason", rep.Reason, "dropped_bytes", rep.DroppedBytes)
		}
		s.logger.Info("wal: recovered model",
			"model", name, "snapshot_lsn", rep.SnapshotLSN, "records", rep.Records,
			"truncated", rep.Truncated, "elapsed", rep.Elapsed)
		if span != nil {
			span.Annotate(
				trace.Str("model", name),
				trace.Int("snapshot_lsn", rep.SnapshotLSN),
				trace.Int("records", rep.Records),
				trace.Int("dropped_bytes", rep.DroppedBytes),
			)
			span.Finish()
		}
	}
}
