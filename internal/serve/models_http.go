package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"lafdbscan"
	"lafdbscan/internal/index"
	"lafdbscan/internal/trace"
)

// This file is the HTTP face of the model store: fit, inspect, delete,
// persist and predict — the serving-layer expression of the Fit/Predict
// split. Fitting reuses everything the job path amortizes (the registry's
// shared vectors and indexes, the estimator cache) but runs synchronously
// under the request context, so a dropped connection cancels the clustering
// within one wave; prediction is cheap by construction (one range query per
// vector) and is what the fitted artifacts exist to serve.

// withWaveEvents makes the wave engines stamp one event per completed
// wave barrier on span — the per-wave latency breakdown of a synchronous
// fit or predict. The hook is installed only for traced requests: an
// untraced request's context is returned unchanged, so the wave path pays
// nothing. (Async jobs get the same events through the engine's progress
// hook instead, which also feeds the queries_done counters.)
func withWaveEvents(ctx context.Context, span *trace.Span) context.Context {
	if span == nil {
		return ctx
	}
	return index.WithWaveProgress(ctx, func(q int) {
		span.Event("wave", trace.Int("queries", int64(q)))
	})
}

func (s *Server) handleFitModel(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Dataset   string         `json:"dataset"`
		Method    string         `json:"method"`
		Params    paramsJSON     `json:"params"`
		Estimator *estimatorJSON `json:"estimator,omitempty"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	params, err := req.Params.toParams()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := JobSpec{
		Dataset: req.Dataset,
		Method:  lafdbscan.Method(req.Method),
		Params:  params,
	}
	if req.Estimator != nil {
		es, eerr := req.Estimator.toSpec()
		if eerr != nil {
			writeError(w, http.StatusBadRequest, eerr)
			return
		}
		spec.Estimator = &es
	}
	// Same acceptance rules as the async job path: a spec fits as a model
	// exactly when it would run as a job.
	if err := validateJobSpec(s.reg, &spec); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	// Refuse cheaply before paying for the clustering: a full store is a
	// 409 now, not after the fit; Add re-checks authoritatively below.
	if s.models.Full() {
		err := fmt.Errorf("serve: %w", ErrModelStoreFull)
		writeError(w, statusFor(err), err)
		return
	}
	// Bounded concurrency: fits run synchronously, so they claim a slot
	// sized to the job engine's worker count; a saturated pool answers 429
	// immediately (backpressure, like a full job queue).
	select {
	case s.fitSlots <- struct{}{}:
		defer func() { <-s.fitSlots }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			errors.New("serve: all fit slots busy, retry later"))
		return
	}
	// The fit span covers estimator resolution and the clustering itself;
	// wave barriers stamp events on it, so a slow fit's trace shows where
	// the waves slowed down. Deferred Finish keeps every error return
	// covered (status lands on the middleware's root span).
	ctx, span := trace.Start(r.Context(), "model.fit")
	span.Annotate(trace.Str("dataset", spec.Dataset), trace.Str("method", string(spec.Method)))
	defer span.Finish()
	ctx = withWaveEvents(ctx, span)
	est, cached, err := resolveEstimator(ctx, s.reg, s.est, spec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	ds, err := s.reg.Get(spec.Dataset)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	p := spec.Params
	p.Estimator = est
	idx, backend, ierr := s.reg.Index(spec.Dataset, p.Metric, p.IndexBackend)
	if ierr != nil {
		writeError(w, statusFor(ierr), ierr)
		return
	}
	p.Index = idx
	span.Annotate(trace.Str("laf_index_backend", backend))
	start := time.Now()
	model, err := lafdbscan.FitParams(ctx, ds.Vectors, spec.Method, p)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	info, err := s.models.Add(model, spec.Dataset, "fit", backend)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if err := s.attachJournal(info.ID, model); err != nil {
		// A model the journal cannot protect must not exist: callers asked
		// for durability (-wal-dir) and would otherwise silently lose it.
		_ = s.models.Delete(info.ID)
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("serve: journaling model %s: %w", info.ID, err))
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"model":            info,
		"estimator_cached": cached,
		"fit_ms":           time.Since(start).Milliseconds(),
	})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.models.List()})
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	_, info, err := s.models.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.models.Delete(id); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "deleted"})
}

// handleSaveModel streams the model's versioned binary serialization — the
// same bytes Model.Save writes to disk, so a curl > model.lafm round-trips
// through /v1/models/load or lafcluster -load.
func (s *Server) handleSaveModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	model, _, err := s.models.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".lafm"))
	// Headers are already committed; a mid-stream write error can only
	// abort the connection.
	_ = model.Save(w)
}

// handleLoadModel ingests a serialized model (the body is the binary
// Model.Save stream) and stores it for prediction. Loaded models are
// self-contained — they carry their training vectors — so they reference no
// registered dataset.
func (s *Server) handleLoadModel(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading model body: %w", err))
		return
	}
	model, err := lafdbscan.LoadModel(bytes.NewReader(data))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.models.Add(model, "", "loaded", "")
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if err := s.attachJournal(info.ID, model); err != nil {
		_ = s.models.Delete(info.ID)
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("serve: journaling model %s: %w", info.ID, err))
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"model": info})
}

// handlePredict assigns vectors to the model's clusters. Vectors come
// inline (normalized server-side, like dataset ingestion) or by referencing
// a registered dataset; exactly one source is required.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	model, _, err := s.models.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	var req struct {
		Vectors       [][]float32 `json:"vectors,omitempty"`
		Dataset       string      `json:"dataset,omitempty"`
		Gate          bool        `json:"gate,omitempty"`
		GateThreshold float64     `json:"gate_threshold,omitempty"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	vectors, err := s.resolveVectors(req.Vectors, req.Dataset)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if dim := len(vectors[0]); dim != model.Dim() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: predict vectors have %d dims, model %s was fitted on %d", dim, id, model.Dim()))
		return
	}
	// The predict span is the acceptance path of the tracing layer: a
	// worst-latency lafload sample's trace ID resolves to this span's root,
	// with wave events showing which barrier the time went to.
	ctx, span := trace.Start(r.Context(), "model.predict")
	span.Annotate(trace.Str("model", id), trace.Int("vectors", int64(len(vectors))))
	defer span.Finish()
	ctx = withWaveEvents(ctx, span)
	start := time.Now()
	labels, skipped, err := model.PredictWithOptions(ctx, vectors, lafdbscan.PredictOptions{
		Gate:          req.Gate,
		GateThreshold: req.GateThreshold,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.models.CountPrediction()
	assigned := 0
	for _, l := range labels {
		if l != lafdbscan.Noise {
			assigned++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":              id,
		"labels":          labels,
		"assigned":        assigned,
		"skipped_queries": skipped,
		"elapsed_ms":      time.Since(start).Milliseconds(),
	})
}
