package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"

	"lafdbscan"
	"lafdbscan/internal/dataset"
	"lafdbscan/internal/wal"
	"lafdbscan/internal/wal/walfs"
)

// These tests pin the serve layer's durability contract end to end over the
// HTTP surface: a server booted with a WAL directory journals every model
// mutation, survives a hard kill mid-stream losing at most the torn record,
// reports the recovery in /v1/stats, and keeps journaling afterwards. They
// use plain DBSCAN models (no estimator training) so they stay fast enough
// for -short and -race runs.

// mustPollDone polls a job to the "done" state, failing the test on any
// other terminal state.
func mustPollDone(t *testing.T, base, id string) {
	t.Helper()
	if state, body := pollJob(t, base, id); state != "done" {
		t.Fatalf("job %s ended %q: %v", id, state, body["error"])
	}
}

// jobLabels fetches a finished job's result labels.
func jobLabels(t *testing.T, base, id string) []int {
	t.Helper()
	code, body := getJSON(t, base+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("job %s result: %d %v", id, code, body)
	}
	raw := body["labels"].([]any)
	labels := make([]int, len(raw))
	for i, v := range raw {
		labels[i] = int(v.(float64))
	}
	return labels
}

// walSection extracts the "wal" section of /v1/stats.
func walSection(t *testing.T, base string) map[string]any {
	t.Helper()
	code, body := getJSON(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, body)
	}
	sec, ok := body["wal"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no wal section: %v", body)
	}
	return sec
}

// TestServerWALRecovery is the serve-layer crash drill: boot with a journal
// on a fault-injecting filesystem, fit a model, stream one batch (committed),
// then arm the write budget so the next stream's first journal append tears
// mid-record — the server keeps running on its in-memory state, which is
// exactly what a kill -9 loses. Rebooting on the healthy filesystem must
// recover the committed prefix bit-identically to a fresh fit on it, report
// the torn tail in /v1/stats, and accept new journaled mutations.
func TestServerWALRecovery(t *testing.T) {
	dir := t.TempDir()
	fsys := walfs.New(wal.OSFS())
	s := NewServer(Options{Workers: 2, QueueDepth: 16, WALDir: dir, WALSync: "always", WALFS: fsys})
	ts := httptest.NewServer(s.Handler())

	const n, seed = 160, 9
	ds := dataset.MSLike(n, seed)
	code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name":      "d",
		"synthetic": map[string]any{"kind": "ms", "n": n, "seed": seed},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	params := map[string]any{"eps": 0.55, "tau": 5, "workers": 2}
	code, body = postJSON(t, ts.URL+"/v1/models", map[string]any{
		"dataset": "d", "method": "dbscan", "params": params,
	})
	if code != http.StatusCreated {
		t.Fatalf("fit: %d %v", code, body)
	}
	id := body["model"].(map[string]any)["id"].(string)

	// Stream the first batch in journaled micro-batches: 10 vectors in
	// chunks of 4 is 3 WAL records, all committed with -wal-sync=always.
	b1 := ds.Vectors[:10]
	code, body = postJSON(t, ts.URL+"/v1/models/"+id+"/stream", map[string]any{
		"vectors": b1, "chunk": 4,
	})
	if code != http.StatusAccepted {
		t.Fatalf("stream: %d %v", code, body)
	}
	if kind := body["kind"].(string); kind != "model-stream" {
		t.Errorf("stream job kind = %q, want model-stream", kind)
	}
	mustPollDone(t, ts.URL, body["id"].(string))

	// Hard kill mid-batch: the budget covers 10 bytes, so the next stream's
	// first journal append persists a 10-byte torn prefix and the disk dies.
	// The server itself keeps applying in memory — the state a crash loses.
	fsys.CrashAfter(10)
	b2 := ds.Vectors[10:20]
	code, body = postJSON(t, ts.URL+"/v1/models/"+id+"/stream", map[string]any{
		"vectors": b2, "chunk": 4,
	})
	if code != http.StatusAccepted {
		t.Fatalf("doomed stream: %d %v", code, body)
	}
	mustPollDone(t, ts.URL, body["id"].(string))
	code, body = getJSON(t, ts.URL+"/v1/models/"+id)
	if code != http.StatusOK || body["points"].(float64) != n+20 {
		t.Fatalf("in-memory model after doomed stream: %d %v", code, body)
	}
	if !fsys.Dead() {
		t.Fatal("crash budget was never exhausted — the tear did not happen")
	}
	ts.Close()
	s.Close()

	// Reboot on the healthy filesystem. Recovery must replay the three
	// committed records and cut the 10-byte torn tail.
	s2 := NewServer(Options{Workers: 2, QueueDepth: 16, WALDir: dir, WALSync: "always"})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	code, body = getJSON(t, ts2.URL+"/v1/models/"+id)
	if code != http.StatusOK {
		t.Fatalf("recovered model info: %d %v", code, body)
	}
	if src := body["source"].(string); src != "recovered" {
		t.Errorf("recovered model source = %q, want recovered", src)
	}
	if pts := body["points"].(float64); pts != float64(n+len(b1)) {
		t.Errorf("recovered model has %v points, want %d (the journaled prefix)", pts, n+len(b1))
	}

	sec := walSection(t, ts2.URL)
	for key, want := range map[string]float64{
		"enabled":           1, // true decodes as bool below
		"recoveries":        1,
		"recovery_failures": 0,
		"recovered_records": 3,
		"truncations":       1,
		"dropped_bytes":     10,
		"models":            1,
	} {
		if key == "enabled" {
			if !sec["enabled"].(bool) {
				t.Error("stats report wal disabled on a journaled server")
			}
			continue
		}
		if got := sec[key].(float64); got != want {
			t.Errorf("stats wal.%s = %v, want %v", key, got, want)
		}
	}

	// The recovered labeling equals a fresh library fit on the surviving
	// prefix, bit for bit: download the model and compare directly.
	resp, err := http.Get(ts2.URL + "/v1/models/" + id + "/save")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("save recovered model: %d %v", resp.StatusCode, err)
	}
	recovered, err := lafdbscan.LoadModel(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	prefix := append(slices.Clone(ds.Vectors), b1...)
	want, err := lafdbscan.Cluster(prefix, lafdbscan.MethodDBSCAN, lafdbscan.Params{
		Eps: 0.55, Tau: 5, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := recovered.Result().Labels; !slices.Equal(got, want.Labels) {
		t.Error("recovered model labels differ from a fresh fit on the journaled prefix")
	}

	// The journal keeps working after recovery: a new insert is journaled,
	// applied, and its labeling still equals a fresh fit on the grown set.
	b3 := ds.Vectors[20:32]
	code, body = postJSON(t, ts2.URL+"/v1/models/"+id+"/insert", map[string]any{"vectors": b3})
	if code != http.StatusAccepted {
		t.Fatalf("post-recovery insert: %d %v", code, body)
	}
	mustPollDone(t, ts2.URL, body["id"].(string))
	grownWant, err := lafdbscan.Cluster(append(slices.Clone(prefix), b3...), lafdbscan.MethodDBSCAN,
		lafdbscan.Params{Eps: 0.55, Tau: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := jobLabels(t, ts2.URL, body["id"].(string)); !slices.Equal(got, grownWant.Labels) {
		t.Error("post-recovery insert labels differ from a fresh fit on the grown set")
	}
	if appends := walSection(t, ts2.URL)["appends"].(float64); appends < 1 {
		t.Errorf("post-recovery appends = %v, want >= 1", appends)
	}
}

// TestServerWALWalkthrough is the clean-shutdown counterpart on the real
// filesystem: fit → stream → snapshot → close → reopen. The snapshot rolls
// the journal generation, so the reboot loads the snapshot and replays
// nothing; predictions through the recovered model are bit-identical to the
// original's.
func TestServerWALWalkthrough(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{Workers: 2, QueueDepth: 16, WALDir: dir, WALSync: "always"})
	ts := httptest.NewServer(s.Handler())

	const n, seed = 140, 11
	ds := dataset.MSLike(n, seed)
	code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name":      "d",
		"synthetic": map[string]any{"kind": "ms", "n": n, "seed": seed},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v1/models", map[string]any{
		"dataset": "d", "method": "dbscan",
		"params": map[string]any{"eps": 0.55, "tau": 5, "workers": 2},
	})
	if code != http.StatusCreated {
		t.Fatalf("fit: %d %v", code, body)
	}
	id := body["model"].(map[string]any)["id"].(string)

	// Stream 48 vectors in chunks of 16: three journal records.
	code, body = postJSON(t, ts.URL+"/v1/models/"+id+"/stream", map[string]any{
		"vectors": ds.Vectors[:48], "chunk": 16,
	})
	if code != http.StatusAccepted {
		t.Fatalf("stream: %d %v", code, body)
	}
	mustPollDone(t, ts.URL, body["id"].(string))

	// Predict a probe set through the live model; the recovered model must
	// reproduce these labels exactly.
	probe := map[string]any{"vectors": ds.Vectors[:32]}
	code, body = postJSON(t, ts.URL+"/v1/models/"+id+"/predict", probe)
	if code != http.StatusOK {
		t.Fatalf("predict: %d %v", code, body)
	}
	before := body["labels"].([]any)

	// Snapshot: the journal is at LSN 3 (three stream records); committing
	// rolls the generation and compacts the old snapshot plus its segment.
	code, body = postJSON(t, ts.URL+"/v1/models/"+id+"/snapshot", nil)
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d %v", code, body)
	}
	if lsn := body["lsn"].(float64); lsn != 3 {
		t.Errorf("snapshot lsn = %v, want 3", lsn)
	}
	if compacted := body["compacted"].(float64); compacted != 2 {
		t.Errorf("snapshot compacted %v files, want 2 (old snapshot + old segment)", compacted)
	}
	sec := walSection(t, ts.URL)
	if got := sec["segment_records"].(float64); got != 0 {
		t.Errorf("segment_records after snapshot = %v, want 0 (fresh segment)", got)
	}
	if got := sec["snapshots"].(float64); got < 2 {
		t.Errorf("snapshots = %v, want >= 2 (initial + manual)", got)
	}
	if got := sec["appends"].(float64); got != 3 {
		t.Errorf("appends = %v, want 3", got)
	}
	ts.Close()
	s.Close()

	// Reopen: the snapshot carries the full state, so recovery replays zero
	// records and the model predicts identically.
	s2 := NewServer(Options{Workers: 2, QueueDepth: 16, WALDir: dir, WALSync: "always"})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Close() }()

	code, body = getJSON(t, ts2.URL+"/v1/models/"+id)
	if code != http.StatusOK {
		t.Fatalf("recovered model info: %d %v", code, body)
	}
	if pts := body["points"].(float64); pts != n+48 {
		t.Errorf("recovered model has %v points, want %d", pts, n+48)
	}
	sec = walSection(t, ts2.URL)
	if got := sec["recovered_records"].(float64); got != 0 {
		t.Errorf("recovered_records = %v, want 0 (snapshot covered everything)", got)
	}
	if got := sec["truncations"].(float64); got != 0 {
		t.Errorf("truncations = %v, want 0 on a clean shutdown", got)
	}
	code, body = postJSON(t, ts2.URL+"/v1/models/"+id+"/predict", probe)
	if code != http.StatusOK {
		t.Fatalf("recovered predict: %d %v", code, body)
	}
	after := body["labels"].([]any)
	if len(after) != len(before) {
		t.Fatalf("recovered predict returned %d labels, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i].(float64) != before[i].(float64) {
			t.Fatalf("recovered predict label[%d] = %v, original %v", i, after[i], before[i])
		}
	}
}

// TestServerSnapshotWithoutJournal pins the memory-only answer: snapshotting
// a model on a server without -wal-dir is a 400 pointing at the save
// endpoint, not a panic or a silent no-op.
func TestServerSnapshotWithoutJournal(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name":      "d",
		"synthetic": map[string]any{"kind": "ms", "n": 60, "seed": 1},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v1/models", map[string]any{
		"dataset": "d", "method": "dbscan",
		"params": map[string]any{"eps": 0.55, "tau": 4},
	})
	if code != http.StatusCreated {
		t.Fatalf("fit: %d %v", code, body)
	}
	id := body["model"].(map[string]any)["id"].(string)
	code, body = postJSON(t, ts.URL+"/v1/models/"+id+"/snapshot", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("snapshot without journal: %d %v, want 400", code, body)
	}
	if sec := walSection(t, ts.URL); sec["enabled"].(bool) {
		t.Error("stats report wal enabled on a memory-only server")
	}
	code, body = postJSON(t, ts.URL+"/v1/models/nope/snapshot", nil)
	if code != http.StatusNotFound {
		t.Fatalf("snapshot of unknown model: %d %v, want 404", code, body)
	}
}
