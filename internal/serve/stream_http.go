package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"lafdbscan"
	"lafdbscan/internal/trace"
)

// This file is the HTTP face of durable streaming ingestion: the stream
// endpoint folds vectors into a model in journaled micro-batches, and the
// snapshot endpoint rolls the model's journal generation on demand. Both
// compose with the WAL layer: when the server runs with a journal
// directory every chunk is a WAL record first and a model mutation second,
// so a crash mid-stream loses at most the chunk the journal had not
// committed — never a fraction of one.

// defaultStreamChunk is the micro-batch size when the request names none:
// large enough to amortize the per-record journal append and fsync, small
// enough that one chunk is the crash-loss granularity.
const defaultStreamChunk = 256

// handleStreamModel is POST /v1/models/{id}/stream: asynchronously fold a
// vector stream (inline or a registered dataset) into the model's
// clustering in journaled micro-batches through the job engine. Unlike the
// all-or-nothing insert endpoint, a stream commits chunk by chunk: each
// chunk is durable once applied, progress is visible in the model's info
// between chunks, and a failure reports how many chunks already committed
// (they stay applied — exactly what the journal replays after a crash).
func (s *Server) handleStreamModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	model, info, err := s.models.Get(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	var req struct {
		Vectors [][]float32 `json:"vectors,omitempty"`
		Dataset string      `json:"dataset,omitempty"`
		// Chunk is the micro-batch size; 0 selects the default (256).
		Chunk int `json:"chunk,omitempty"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Chunk < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: chunk must be positive, got %d", req.Chunk))
		return
	}
	chunk := req.Chunk
	if chunk == 0 {
		chunk = defaultStreamChunk
	}
	vectors, err := s.resolveVectors(req.Vectors, req.Dataset)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if dim := len(vectors[0]); dim != model.Dim() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: stream vectors have %d dims, model %s has %d", dim, id, model.Dim()))
		return
	}
	status, err := s.eng.SubmitFunc(r.Context(), info.Dataset, lafdbscan.Method(info.Method), "model-stream",
		func(ctx context.Context) (*lafdbscan.Result, error) {
			model, mut, _, err := s.models.Mutator(id)
			if err != nil {
				return nil, err
			}
			for off := 0; off < len(vectors); off += chunk {
				end := min(off+chunk, len(vectors))
				report, ierr := mut.Insert(ctx, vectors[off:end])
				if ierr != nil {
					// Earlier chunks are committed (journaled and applied) and
					// stay that way — the stream's contract, and exactly the
					// prefix a crash at this point would recover.
					return nil, fmt.Errorf("serve: stream chunk at %d failed after %d vectors committed: %w",
						off, off, ierr)
				}
				s.models.CountUpdate("model-insert", report.Inserted)
				s.models.RefreshInfo(id)
			}
			return model.Result(), nil
		})
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, status)
}

// handleSnapshotModel is POST /v1/models/{id}/snapshot: synchronously
// commit the model's current state as a new journal generation and compact
// the old one. Only meaningful for journaled models; memory-only models
// get a 400 pointing at the save endpoint.
func (s *Server) handleSnapshotModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d, err := s.models.Durable(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if d == nil {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: model %s has no journal (server runs without -wal-dir); use GET /v1/models/%s/save instead", id, id))
		return
	}
	_, span := trace.Start(r.Context(), "wal.snapshot")
	span.Annotate(trace.Str("model", id))
	defer span.Finish()
	info, err := d.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	span.Annotate(trace.Int("lsn", info.LSN), trace.Int("bytes", info.Bytes))
	writeJSON(w, http.StatusOK, map[string]any{
		"model":     id,
		"lsn":       info.LSN,
		"bytes":     info.Bytes,
		"compacted": info.Compacted,
	})
}
