package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lafdbscan/internal/trace"
)

// This file is the HTTP face of the span ring: GET /v1/traces renders the
// flight recorder's current contents as JSON. The endpoint is a read-only
// diagnostic view — it is deliberately not instrumented (reading the ring
// must not write to it) and carries no pagination state: the ring is
// bounded, a response is at most one ring's worth of spans, and filters
// narrow it further.
//
//	GET /v1/traces                     everything currently in the ring
//	GET /v1/traces?trace=<hex-id>      one trace's spans (the X-Laf-Trace value)
//	GET /v1/traces?min_ms=250          only spans at least that long — the slow-op view
//	GET /v1/traces?limit=50            at most the 50 most recent matching spans
//
// Spans arrive ordered by start time; a whole trace reads top-to-bottom as
// request → job.queued → job.run → (wave events inside). parent_id stitches
// the tree: the root has none, every other span names its parent.

// spanJSON is the wire form of one span.
type spanJSON struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// ParentID is empty on root spans.
	ParentID string  `json:"parent_id,omitempty"`
	Name     string  `json:"name"`
	Start    string  `json:"start"`
	Duration float64 `json:"duration_ms"`
	// Attrs is flat key=value; keys are unique per span by construction of
	// the instrumentation sites.
	Attrs  map[string]string `json:"attrs,omitempty"`
	Events []eventJSON       `json:"events,omitempty"`
}

// eventJSON is the wire form of one in-span event; OffsetMs is relative to
// the span's start, so consecutive wave events read as a latency breakdown.
type eventJSON struct {
	Name     string            `json:"name"`
	OffsetMs float64           `json:"offset_ms"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

func attrMap(attrs []trace.Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func spanToJSON(s *trace.Span) spanJSON {
	out := spanJSON{
		TraceID:  s.TraceID.String(),
		SpanID:   s.SpanID.String(),
		ParentID: s.Parent.String(),
		Name:     s.Name,
		Start:    s.Start.UTC().Format(time.RFC3339Nano),
		Duration: float64(s.Duration()) / float64(time.Millisecond),
		Attrs:    attrMap(s.Attrs),
	}
	if len(s.Events) > 0 {
		out.Events = make([]eventJSON, 0, len(s.Events))
		for _, e := range s.Events {
			out.Events = append(out.Events, eventJSON{
				Name:     e.Name,
				OffsetMs: float64(e.Time.Sub(s.Start)) / float64(time.Millisecond),
				Attrs:    attrMap(e.Attrs),
			})
		}
	}
	return out
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	traceFilter, err := trace.ParseID(q.Get("trace"))
	if err != nil {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: bad trace id %q: %w", q.Get("trace"), err))
		return
	}
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, perr := strconv.ParseFloat(v, 64)
		if perr != nil || ms < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("serve: bad min_ms %q (want a non-negative number)", v))
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n <= 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("serve: bad limit %q (want a positive integer)", v))
			return
		}
		limit = n
	}

	all := s.tracer.Snapshot()
	spans := make([]spanJSON, 0, len(all))
	for _, sp := range all {
		if traceFilter != 0 && sp.TraceID != traceFilter {
			continue
		}
		if minDur > 0 && sp.Duration() < minDur {
			continue
		}
		spans = append(spans, spanToJSON(sp))
	}
	// "limit" keeps the most recent spans: the snapshot is start-ordered,
	// so trimming from the front drops the oldest.
	if limit > 0 && len(spans) > limit {
		spans = spans[len(spans)-limit:]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity":     s.tracer.Capacity(),
		"sample_every": s.tracer.SampleEvery(),
		"recorded":     s.tracer.Recorded(),
		"count":        len(spans),
		"spans":        spans,
	})
}
