package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"lafdbscan"
	"lafdbscan/internal/dataset"
)

// modelServer boots an in-process server with a small registered synthetic
// dataset and returns the base URL plus the same vectors for direct library
// comparisons.
func modelServer(t *testing.T, opts Options) (base string, vectors [][]float32, cleanup func()) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name":      "mdl",
		"synthetic": map[string]any{"kind": "glove", "n": 200, "seed": 11},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	ds := dataset.GloVeLike(200, 11)
	ds.Normalize()
	return ts.URL, ds.Vectors, func() { ts.Close(); s.Close() }
}

func labelsFromAny(t *testing.T, raw any) []int {
	t.Helper()
	arr := raw.([]any)
	out := make([]int, len(arr))
	for i, v := range arr {
		out[i] = int(v.(float64))
	}
	return out
}

// TestModelEndpointsLifecycle drives the full model surface: fit, list,
// get, predict (by dataset and inline), save, load, predict-from-loaded
// identity, delete, and the 404 afterwards. The fitted labels are pinned
// bit-identical to a direct library Fit with the same spec.
func TestModelEndpointsLifecycle(t *testing.T) {
	base, vectors, cleanup := modelServer(t, Options{Workers: 1, QueueDepth: 4})
	defer cleanup()

	params := map[string]any{"eps": 0.5, "tau": 4, "workers": 2}
	code, body := postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "mdl", "method": "dbscan", "params": params,
	})
	if code != http.StatusCreated {
		t.Fatalf("fit: %d %v", code, body)
	}
	info := body["model"].(map[string]any)
	id := info["id"].(string)
	if info["method"].(string) != "dbscan" || int(info["points"].(float64)) != len(vectors) {
		t.Fatalf("model info: %v", info)
	}
	if int(info["cores"].(float64)) == 0 {
		t.Fatal("fitted model reports zero cores")
	}

	// Library reference: same data, same params, shared-index-equivalent.
	ref, err := lafdbscan.Fit(context.Background(), vectors, lafdbscan.MethodDBSCAN,
		lafdbscan.WithEps(0.5), lafdbscan.WithTau(4), lafdbscan.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}

	// Predict the training dataset by name: must reproduce the fitted
	// labels (and therefore the library fit's labels).
	code, body = postJSON(t, base+"/v1/models/"+id+"/predict", map[string]any{"dataset": "mdl"})
	if code != http.StatusOK {
		t.Fatalf("predict: %d %v", code, body)
	}
	got := labelsFromAny(t, body["labels"])
	want := ref.Labels()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("predict[%d] = %d, library fit %d", i, got[i], want[i])
		}
	}

	// Inline vectors round through server-side normalization.
	code, body = postJSON(t, base+"/v1/models/"+id+"/predict", map[string]any{
		"vectors": vectors[:3],
	})
	if code != http.StatusOK {
		t.Fatalf("inline predict: %d %v", code, body)
	}
	if n := len(labelsFromAny(t, body["labels"])); n != 3 {
		t.Fatalf("inline predict returned %d labels", n)
	}

	// List and get agree.
	if code, body = getJSON(t, base+"/v1/models"); code != http.StatusOK {
		t.Fatalf("list: %d %v", code, body)
	}
	if n := len(body["models"].([]any)); n != 1 {
		t.Fatalf("list holds %d models", n)
	}
	if code, _ = getJSON(t, base+"/v1/models/"+id); code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}

	// Save: the binary stream loads back as a new model that predicts
	// identically.
	resp, err := http.Get(base + "/v1/models/" + id + "/save")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("save: %d %v", resp.StatusCode, err)
	}
	resp, err = http.Post(base+"/v1/models/load", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	code, body = decodeResp(t, resp)
	if code != http.StatusCreated {
		t.Fatalf("load: %d %v", code, body)
	}
	loadedInfo := body["model"].(map[string]any)
	loadedID := loadedInfo["id"].(string)
	if loadedInfo["source"].(string) != "loaded" {
		t.Fatalf("loaded model source %v", loadedInfo["source"])
	}
	code, body = postJSON(t, base+"/v1/models/"+loadedID+"/predict", map[string]any{"dataset": "mdl"})
	if code != http.StatusOK {
		t.Fatalf("loaded predict: %d %v", code, body)
	}
	gotLoaded := labelsFromAny(t, body["labels"])
	for i := range want {
		if gotLoaded[i] != want[i] {
			t.Fatalf("loaded predict[%d] = %d, want %d", i, gotLoaded[i], want[i])
		}
	}

	// Delete, then 404.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/models/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ = decodeResp(t, resp); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if code, _ = getJSON(t, base+"/v1/models/"+id); code != http.StatusNotFound {
		t.Fatalf("deleted model get: %d, want 404", code)
	}

	// Stats count the store's life.
	code, body = getJSON(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	ms := body["models"].(map[string]any)
	if ms["fitted"].(float64) < 1 || ms["loaded"].(float64) < 1 || ms["deleted"].(float64) < 1 {
		t.Fatalf("model stats: %v", ms)
	}
}

// TestModelEndpointsErrors pins the error contract: unknown ids are 404,
// invalid specs and bodies 400, ambiguous predict sources 400, dimension
// mismatches 400, a full store 409, and the LAF methods demand an estimator
// spec exactly like the job path.
func TestModelEndpointsErrors(t *testing.T) {
	base, vectors, cleanup := modelServer(t, Options{Workers: 1, QueueDepth: 4, MaxModels: 1})
	defer cleanup()

	if code, _ := getJSON(t, base+"/v1/models/m-999999"); code != http.StatusNotFound {
		t.Errorf("unknown model: %d, want 404", code)
	}
	if code, _ := postJSON(t, base+"/v1/models/m-999999/predict", map[string]any{"dataset": "mdl"}); code != http.StatusNotFound {
		t.Errorf("predict on unknown model: %d, want 404", code)
	}
	if code, _ := postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "mdl", "method": "laf-dbscan",
		"params": map[string]any{"eps": 0.5, "tau": 4},
	}); code != http.StatusBadRequest {
		t.Errorf("LAF fit without estimator: %d, want 400", code)
	}
	if code, _ := postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "mdl", "method": "dbscan",
		"params": map[string]any{"eps": 5.0, "tau": 4},
	}); code != http.StatusBadRequest {
		t.Errorf("bad eps fit: %d, want 400", code)
	}
	if code, _ := postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "none", "method": "dbscan",
		"params": map[string]any{"eps": 0.5, "tau": 4},
	}); code != http.StatusNotFound {
		t.Errorf("fit on unknown dataset: %d, want 404", code)
	}

	// One successful fit fills the MaxModels=1 store.
	code, body := postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "mdl", "method": "dbscan", "params": map[string]any{"eps": 0.5, "tau": 4},
	})
	if code != http.StatusCreated {
		t.Fatalf("fit: %d %v", code, body)
	}
	id := body["model"].(map[string]any)["id"].(string)
	if code, _ = postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "mdl", "method": "dbscan", "params": map[string]any{"eps": 0.5, "tau": 4},
	}); code != http.StatusConflict {
		t.Errorf("fit into full store: %d, want 409", code)
	}

	// Predict source discipline.
	if code, _ = postJSON(t, base+"/v1/models/"+id+"/predict", map[string]any{}); code != http.StatusBadRequest {
		t.Errorf("sourceless predict: %d, want 400", code)
	}
	if code, _ = postJSON(t, base+"/v1/models/"+id+"/predict", map[string]any{
		"dataset": "mdl", "vectors": vectors[:1],
	}); code != http.StatusBadRequest {
		t.Errorf("double-source predict: %d, want 400", code)
	}
	if code, _ = postJSON(t, base+"/v1/models/"+id+"/predict", map[string]any{
		"vectors": [][]float32{{1, 0, 0}},
	}); code != http.StatusBadRequest {
		t.Errorf("dimension mismatch: %d, want 400", code)
	}
	// Gating a model without an estimator is a 400.
	if code, _ = postJSON(t, base+"/v1/models/"+id+"/predict", map[string]any{
		"dataset": "mdl", "gate": true,
	}); code != http.StatusBadRequest {
		t.Errorf("gate without estimator: %d, want 400", code)
	}

	// Corrupt upload.
	resp, err := http.Post(base+"/v1/models/load", "application/octet-stream",
		bytes.NewReader([]byte("not a model")))
	if err != nil {
		t.Fatal(err)
	}
	if code, _ = decodeResp(t, resp); code != http.StatusBadRequest {
		t.Errorf("corrupt load: %d, want 400", code)
	}
}

// TestModelFitSharesEstimatorCache pins the amortization contract: a LAF
// model fit resolves its estimator through the same cache as the job
// engine, so a job followed by a fit with the same spec trains once.
func TestModelFitSharesEstimatorCache(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an estimator")
	}
	base, _, cleanup := modelServer(t, Options{Workers: 1, QueueDepth: 4})
	defer cleanup()

	estimator := map[string]any{"max_queries": 60, "hidden": []int{8}, "epochs": 2, "seed": 1}
	code, body := postJSON(t, base+"/v1/estimators", map[string]any{
		"dataset": "mdl", "estimator": estimator,
	})
	if code != http.StatusOK {
		t.Fatalf("train: %d %v", code, body)
	}
	code, body = postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "mdl", "method": "laf-dbscan",
		"params":    map[string]any{"eps": 0.5, "tau": 4, "alpha": 1.2, "seed": 3},
		"estimator": estimator,
	})
	if code != http.StatusCreated {
		t.Fatalf("LAF fit: %d %v", code, body)
	}
	if !body["estimator_cached"].(bool) {
		t.Error("LAF model fit did not hit the estimator cache")
	}
	info := body["model"].(map[string]any)
	if !info["has_estimator"].(bool) {
		t.Error("LAF model reports no estimator")
	}
}
