package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"lafdbscan"
	"lafdbscan/internal/index"
	"lafdbscan/internal/trace"
	"lafdbscan/internal/wal"
)

// ErrQueueFull is returned by Submit when the job queue is at capacity. It
// is a backpressure signal, not a failure: the submission was not accepted
// and can be retried once a worker frees up (the HTTP layer maps it to
// 429 Too Many Requests with a Retry-After hint).
var ErrQueueFull = errors.New("serve: job queue full, retry later")

// ErrUnknownJob reports a reference to a job id the engine is not
// retaining (never submitted, or evicted past the retention cap); the
// HTTP layer maps it to 404.
var ErrUnknownJob = errors.New("unknown job")

// JobState is a job's lifecycle position. Transitions: queued → running →
// done | failed | canceled, or queued → canceled directly when the cancel
// arrives before a worker picks the job up.
type JobState string

// The job states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// EstimatorSpec names the estimator a LAF job should use: an
// EstimatorConfig, trained on the job's dataset (or TrainDataset when set).
// The engine resolves it through the EstimatorCache, so every job sharing a
// spec shares one trained model.
type EstimatorSpec struct {
	// TrainDataset optionally names a different registered dataset to
	// train on (the paper's train/test split, server-side). Empty means
	// "train on the job's own dataset".
	TrainDataset string
	Config       lafdbscan.EstimatorConfig
}

// JobSpec is a clustering job submission: a registered dataset, any method
// of lafdbscan.Methods() (plus rho-approx), its parameters, and, for the
// LAF methods, the estimator to gate with. Params.Estimator and
// Params.Index are engine-owned — the engine fills them from the estimator
// cache and the dataset registry; values supplied by the caller are
// ignored.
type JobSpec struct {
	Dataset   string
	Method    lafdbscan.Method
	Params    lafdbscan.Params
	Estimator *EstimatorSpec
}

// Job is one submitted job — a clustering run, or a model-maintenance
// update (insert/remove) when exec is set. All fields are engine-managed;
// callers observe jobs through Status and Result snapshots.
type Job struct {
	id   string
	spec JobSpec
	// kind tags the job for status displays: "" (clustering) or a
	// maintenance kind like "model-insert"/"model-remove".
	kind string
	// exec, when non-nil, replaces the engine's clustering call: the job
	// runs this closure under the engine's context (wave progress wired),
	// inheriting the whole lifecycle — queueing, 429 backpressure,
	// cancel-within-one-wave, result retention.
	exec func(ctx context.Context) (*lafdbscan.Result, error)

	// link ties the job back to the submitting request's trace: spans the
	// job emits later (queued, run, per-wave events) parent under the HTTP
	// root span even though the request context is long gone by then. The
	// zero link (unsampled or untraced submission) makes every span op a
	// no-op.
	link trace.Link
	// queueSpan measures submit → worker pickup. Created at enqueue and
	// finished by the worker that pops the job; the engine mutex hand-off
	// between those two points orders the accesses.
	queueSpan *trace.Span

	// queriesDone counts completed range queries, fed by the wave engines'
	// progress hook; it is the poll-able progress signal.
	queriesDone atomic.Int64

	mu              sync.Mutex
	state           JobState
	err             error
	result          *lafdbscan.Result
	cancel          context.CancelFunc // non-nil while running
	cancelRequested bool
	estimatorCached bool
	created         time.Time
	started         time.Time
	finished        time.Time
}

// JobStatus is a point-in-time snapshot of a job, shaped for JSON.
type JobStatus struct {
	ID      string           `json:"id"`
	Dataset string           `json:"dataset"`
	Method  lafdbscan.Method `json:"method"`
	// Kind distinguishes model-maintenance jobs ("model-insert",
	// "model-remove") from plain clustering jobs (omitted).
	Kind  string   `json:"kind,omitempty"`
	State JobState `json:"state"`
	// QueriesDone is the number of range queries completed so far (and
	// after completion, in total) — the engine's progress measure.
	QueriesDone int64  `json:"queries_done"`
	Error       string `json:"error,omitempty"`
	// EstimatorCached reports whether the job's estimator came from the
	// cache (false when this job paid for training; meaningless for
	// non-LAF methods).
	EstimatorCached bool       `json:"estimator_cached,omitempty"`
	Created         time.Time  `json:"created"`
	Started         *time.Time `json:"started,omitempty"`
	Finished        *time.Time `json:"finished,omitempty"`
}

func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:              j.id,
		Dataset:         j.spec.Dataset,
		Method:          j.spec.Method,
		Kind:            j.kind,
		State:           j.state,
		QueriesDone:     j.queriesDone.Load(),
		EstimatorCached: j.estimatorCached,
		Created:         j.created,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// Options sizes an Engine.
type Options struct {
	// Workers is the number of jobs allowed to run concurrently; <= 0
	// selects GOMAXPROCS. This is the oversubscription guard: each job may
	// itself fan out over Params.Workers cores, so the product
	// Workers × Params.Workers is the operator's concurrency budget.
	Workers int
	// QueueDepth bounds the number of accepted-but-not-running jobs;
	// <= 0 selects 64. Beyond it Submit returns ErrQueueFull.
	QueueDepth int
	// MaxJobs bounds how many jobs (including finished ones, kept for
	// result fetches) are retained; <= 0 selects 4096. When exceeded, the
	// oldest finished jobs are evicted.
	MaxJobs int
	// MaxModels bounds the model store (each stored model retains its
	// training vectors); <= 0 selects 256. At capacity, fits and loads are
	// rejected until a model is deleted.
	MaxModels int
	// Run substitutes the clustering call (default
	// lafdbscan.ClusterContext). Tests use controllable fakes to pin the
	// job lifecycle without clustering work.
	Run runFunc

	// TraceCapacity sizes the server's span ring buffer (rounded up to a
	// power of two); <= 0 selects trace.DefaultCapacity.
	TraceCapacity int
	// TraceSampleEvery keeps every Nth request's trace: 0 selects the
	// default of 1 (trace everything), N > 1 samples 1-in-N, and any
	// negative value disables tracing entirely.
	TraceSampleEvery int
	// SlowRequestThreshold makes the middleware log a structured warning
	// (with the trace ID, when sampled) for any request at or over the
	// threshold; 0 disables the slow-request log.
	SlowRequestThreshold time.Duration
	// Logger receives the server's structured log lines (slow requests);
	// nil selects slog.Default().
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — off by
	// default because profile endpoints on a serving port are an
	// operational decision (see docs/OPERATIONS.md).
	EnablePprof bool
	// IndexBackend is the server-wide default range-index backend for
	// requests that name none: "" keeps the exact default (brute force),
	// lafdbscan.IndexBackendAuto opts into the approximate chain (HNSW).
	// Validate with CheckIndexBackend before constructing the server — an
	// invalid value is a programming error and NewServer panics on it.
	IndexBackend string

	// WALDir enables durable models: every fitted, loaded or streamed model
	// gets a write-ahead-logged journal under this directory, and boot
	// recovers whatever journals it finds there (see docs/DURABILITY.md).
	// Empty keeps the server memory-only.
	WALDir string
	// WALSync is the journal fsync policy: "always" (default; every
	// committed mutation survives a crash), "interval" (bounded loss,
	// fewer fsyncs) or "off". Validate with wal.ParseSyncPolicy before
	// constructing the server — an invalid value is a programming error
	// and NewServer panics on it.
	WALSync string
	// WALSnapshotEvery rolls a model's journal generation (snapshot +
	// compaction) once its active segment holds this many records; <= 0
	// selects 1024.
	WALSnapshotEvery int
	// WALFS overrides the journal filesystem — tests inject crash faults
	// through it; nil selects the real disk.
	WALFS wal.FS
}

// runFunc executes one clustering call. The engine's default is
// lafdbscan.ClusterContext; tests substitute controllable fakes to pin the
// lifecycle without real clustering work.
type runFunc func(ctx context.Context, points [][]float32, m lafdbscan.Method, p lafdbscan.Params) (*lafdbscan.Result, error)

// Engine is the asynchronous job engine: Submit hands a clustering job to
// a bounded worker pool and returns immediately; Status/Result poll it;
// Cancel aborts it (within one neighbor-discovery wave for the parallel
// engines, a few dozen queries for the sequential ones) and frees its
// worker slot.
type Engine struct {
	reg *Registry
	est *EstimatorCache
	run runFunc

	workers int
	qdepth  int

	mu      sync.Mutex
	qcond   *sync.Cond // signaled when pending grows or the engine closes
	pending []*Job     // FIFO of accepted-but-not-running jobs
	jobs    map[string]*Job
	order   []string // submission order, for listing and eviction
	seq     int64
	closed  bool

	busy      atomic.Int32
	submitted atomic.Int64
	done      atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	// queries totals completed range queries across every job, fed by the
	// same wave-progress hook as the per-job counters — the engine-wide
	// throughput signal /metrics and /v1/stats report.
	queries atomic.Int64

	maxJobs int
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// EngineStats is the engine's /stats view.
type EngineStats struct {
	Workers     int   `json:"workers"`
	BusyWorkers int   `json:"busy_workers"`
	QueueDepth  int   `json:"queue_depth"`
	Queued      int   `json:"queued"`
	Submitted   int64 `json:"submitted"`
	Done        int64 `json:"done"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	// QueriesDone totals completed range queries across all jobs — the
	// engine-wide sum of every job's queries_done progress counter.
	QueriesDone int64 `json:"queries_done"`
}

// NewEngine builds an engine over a registry and estimator cache and starts
// its worker pool. Call Close to stop it.
func NewEngine(reg *Registry, est *EstimatorCache, opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	maxJobs := opts.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 4096
	}
	run := opts.Run
	if run == nil {
		run = lafdbscan.ClusterContext
	}
	//lafvet:allow ctxflow the engine deliberately detaches jobs from request contexts; Close cancels this root
	ctx, stop := context.WithCancel(context.Background())
	e := &Engine{
		reg: reg, est: est, run: run,
		workers: workers, qdepth: depth,
		jobs: make(map[string]*Job), maxJobs: maxJobs,
		baseCtx: ctx, stop: stop,
	}
	e.qcond = sync.NewCond(&e.mu)
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Close stops the engine: new submissions are rejected, still-queued jobs
// are marked canceled without ever executing, running jobs are canceled
// through their contexts, and Close returns when every worker has exited.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	pending := e.pending
	e.pending = nil
	e.qcond.Broadcast()
	e.mu.Unlock()
	for _, job := range pending {
		e.markCanceled(job)
	}
	e.stop()
	e.wg.Wait()
}

// markCanceled finalizes a never-run job as canceled (no-op once the job
// left the queued state).
func (e *Engine) markCanceled(job *Job) {
	job.mu.Lock()
	if job.state == JobQueued {
		job.state = JobCanceled
		job.finished = time.Now()
		e.canceled.Add(1)
	}
	job.mu.Unlock()
}

// Submit validates and enqueues a clustering job, returning its id
// immediately. A full queue returns ErrQueueFull (retryable); validation
// failures return descriptive errors the HTTP layer maps to 400s.
//
// ctx is the submitting request's context, used only to capture its trace
// link — the job itself runs detached, under the engine's context, exactly
// as before. A context without an active span submits an untraced job.
func (e *Engine) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	if err := e.validate(&spec); err != nil {
		return JobStatus{}, err
	}
	return e.enqueue(ctx, &Job{spec: spec})
}

// SubmitFunc enqueues a custom job — the model insert/delete endpoints'
// path — under the same backpressure, cancellation and retention contract
// as clustering jobs. dataset and method label the job for listings; kind
// tags it (e.g. "model-insert"). exec runs on a worker slot with a context
// that cancels on DELETE /v1/jobs/{id} and carries the wave-progress hook,
// so queries_done progress works for maintenance exactly as for fits. ctx
// carries the submitting request's trace link, as in Submit.
func (e *Engine) SubmitFunc(ctx context.Context, dataset string, method lafdbscan.Method, kind string, exec func(ctx context.Context) (*lafdbscan.Result, error)) (JobStatus, error) {
	return e.enqueue(ctx, &Job{
		spec: JobSpec{Dataset: dataset, Method: method},
		kind: kind,
		exec: exec,
	})
}

// enqueue stamps and queues a prepared job under the engine lock.
func (e *Engine) enqueue(ctx context.Context, job *Job) (JobStatus, error) {
	job.link = trace.LinkFromContext(ctx)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return JobStatus{}, errors.New("serve: engine closed")
	}
	if len(e.pending) >= e.qdepth {
		e.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
	e.seq++
	job.id = fmt.Sprintf("j-%06d", e.seq)
	job.state = JobQueued
	job.created = time.Now()
	// The queued span starts here and is finished by the worker that pops
	// the job; created under the engine lock (after the id exists) so the
	// pop's lock acquisition orders the hand-off. A job canceled while
	// still queued never finishes the span — it never reaches the ring,
	// matching "the queue phase never completed".
	if qs := job.link.NewSpan("job.queued"); qs != nil {
		qs.Annotate(trace.Str("job", job.id),
			trace.Str("dataset", job.spec.Dataset),
			trace.Str("method", string(job.spec.Method)))
		job.queueSpan = qs
	}
	e.pending = append(e.pending, job)
	e.jobs[job.id] = job
	e.order = append(e.order, job.id)
	e.evictLocked()
	e.qcond.Signal()
	e.mu.Unlock()
	e.submitted.Add(1)
	return job.status(), nil
}

// validate rejects a spec the engine could not run; the model-fit endpoint
// shares the same rules through validateJobSpec, so a configuration is
// accepted as an async job exactly when it is accepted as a model fit.
func (e *Engine) validate(spec *JobSpec) error {
	return validateJobSpec(e.reg, spec)
}

// validateJobSpec rejects a spec the server could not run: unknown method,
// unregistered dataset, out-of-domain parameters, or a LAF method without
// an estimator spec. Sampling methods additionally need a positive sample
// fraction — checked here so the mistake costs a 400, not a failed job.
func validateJobSpec(reg *Registry, spec *JobSpec) error {
	known := false
	for _, m := range lafdbscan.AllMethods() {
		if spec.Method == m {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("serve: unknown method %q", spec.Method)
	}
	if _, err := reg.Get(spec.Dataset); err != nil {
		return err
	}
	// Estimator and Index are resolved by the engine at run time; clear
	// caller-supplied values so validation and execution see engine state.
	spec.Params.Estimator = nil
	spec.Params.Index = nil
	if err := spec.Params.Validate(); err != nil {
		return err
	}
	isLAF := spec.Method == lafdbscan.MethodLAFDBSCAN || spec.Method == lafdbscan.MethodLAFDBSCANPP
	if isLAF && spec.Estimator == nil {
		return fmt.Errorf("serve: method %q requires an estimator spec", spec.Method)
	}
	if spec.Estimator != nil && spec.Estimator.TrainDataset != "" {
		if _, err := reg.Get(spec.Estimator.TrainDataset); err != nil {
			return err
		}
	}
	sampled := spec.Method == lafdbscan.MethodDBSCANPP || spec.Method == lafdbscan.MethodLAFDBSCANPP
	if sampled && spec.Params.SampleFraction <= 0 {
		return fmt.Errorf("serve: method %q requires a sample fraction in (0, 1]", spec.Method)
	}
	// Only DBSCAN and LAF-DBSCAN honor Params.Metric; every other method
	// is hardwired to cosine distance (converting internally where its
	// structure needs Euclidean). Accepting a non-cosine metric for them
	// would silently run a different clustering than requested — worse,
	// with an injected index it would mix metrics within one run.
	metricful := spec.Method == lafdbscan.MethodDBSCAN || spec.Method == lafdbscan.MethodLAFDBSCAN
	if !metricful && spec.Params.Metric != lafdbscan.MetricCosine {
		return fmt.Errorf("serve: method %q supports only the cosine metric", spec.Method)
	}
	// Params.Validate already rejected unknown backend names and
	// backend/metric mismatches (the 400 path for e.g. grid+cosine). The
	// serving layer adds one constraint of its own: shared indexes are
	// built once per (dataset, metric) and reused across query radii, so
	// radius-bound backends cannot serve even under a supported metric.
	if b := spec.Params.IndexBackend; b != "" && b != lafdbscan.IndexBackendAuto {
		if caps, ok := lafdbscan.LookupIndexBackend(b); ok && caps.NeedsEps {
			return fmt.Errorf("serve: index backend %q is radius-bound (built per eps) and cannot back the shared per-dataset index", b)
		}
	}
	return nil
}

// Status returns a snapshot of the named job.
func (e *Engine) Status(id string) (JobStatus, error) {
	job, err := e.job(id)
	if err != nil {
		return JobStatus{}, err
	}
	return job.status(), nil
}

// Result returns the clustering result of a finished job. Jobs in any
// other state return an error naming the state, so callers can distinguish
// "not yet" (queued/running) from "never" (failed/canceled).
func (e *Engine) Result(id string) (*lafdbscan.Result, error) {
	job, err := e.job(id)
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.state != JobDone {
		return nil, fmt.Errorf("serve: job %s is %s, no result", id, job.state)
	}
	return job.result, nil
}

// Cancel aborts a job: a queued job is marked canceled and skipped when a
// worker pops it; a running job has its context canceled, which the
// clustering engines honor within one wave, freeing the worker slot.
// Cancelling an already-finished job is a no-op reporting the final state.
func (e *Engine) Cancel(id string) (JobStatus, error) {
	job, err := e.job(id)
	if err != nil {
		return JobStatus{}, err
	}
	job.mu.Lock()
	switch job.state {
	case JobQueued:
		job.cancelRequested = true
		job.state = JobCanceled
		job.finished = time.Now()
		e.canceled.Add(1)
		job.mu.Unlock()
		// Free the queue slot so backpressure reflects runnable work. If a
		// worker popped the job between the unlock and here, removePending
		// finds nothing and the worker's own queued-state check skips it.
		e.removePending(job)
		return job.status(), nil
	case JobRunning:
		job.cancelRequested = true
		job.cancel()
	}
	job.mu.Unlock()
	return job.status(), nil
}

// removePending deletes a job from the FIFO, preserving order.
func (e *Engine) removePending(job *Job) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, j := range e.pending {
		if j == job {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			return
		}
	}
}

// List returns a snapshot of every retained job in submission order.
func (e *Engine) List() []JobStatus {
	e.mu.Lock()
	ids := append([]string(nil), e.order...)
	e.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if job, err := e.job(id); err == nil {
			out = append(out, job.status())
		}
	}
	return out
}

// Stats returns the engine counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	queued := len(e.pending)
	e.mu.Unlock()
	return EngineStats{
		Workers:     e.workers,
		BusyWorkers: int(e.busy.Load()),
		QueueDepth:  e.qdepth,
		Queued:      queued,
		Submitted:   e.submitted.Load(),
		Done:        e.done.Load(),
		Failed:      e.failed.Load(),
		Canceled:    e.canceled.Load(),
		QueriesDone: e.queries.Load(),
	}
}

func (e *Engine) job(id string) (*Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	job, ok := e.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: job %s: %w", id, ErrUnknownJob)
	}
	return job, nil
}

// evictLocked drops the oldest finished jobs once the retention cap is
// exceeded. Queued and running jobs are never evicted, so the cap can be
// transiently exceeded while that many jobs are genuinely in flight.
func (e *Engine) evictLocked() {
	if len(e.jobs) <= e.maxJobs {
		return
	}
	kept := e.order[:0]
	excess := len(e.jobs) - e.maxJobs
	for _, id := range e.order {
		job := e.jobs[id]
		if excess > 0 {
			job.mu.Lock()
			finished := job.state == JobDone || job.state == JobFailed || job.state == JobCanceled
			job.mu.Unlock()
			if finished {
				delete(e.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	e.order = kept
}

// worker is one slot of the pool: it pops pending jobs until the engine
// closes, skipping those canceled while queued.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.pending) == 0 && !e.closed {
			e.qcond.Wait()
		}
		if len(e.pending) == 0 {
			e.mu.Unlock()
			return
		}
		job := e.pending[0]
		e.pending = e.pending[1:]
		e.mu.Unlock()
		e.runJob(job)
	}
}

// runJob drives one job through its lifecycle.
func (e *Engine) runJob(job *Job) {
	job.mu.Lock()
	if job.state != JobQueued { // canceled while queued
		job.mu.Unlock()
		return
	}
	if e.baseCtx.Err() != nil { // engine shutting down: never start work
		job.state = JobCanceled
		job.finished = time.Now()
		job.mu.Unlock()
		e.canceled.Add(1)
		return
	}
	ctx, cancel := context.WithCancel(e.baseCtx)
	job.cancel = cancel
	job.state = JobRunning
	job.started = time.Now()
	job.mu.Unlock()
	defer cancel()

	// Trace hand-off: the queued span ends where the run span begins. Both
	// parent under the submitting request's root span through job.link, so
	// /v1/traces shows submit → queue → run → per-wave events as one tree.
	// This worker goroutine owns both spans from here on (the queued-state
	// check above proves no Cancel can be touching the job concurrently).
	if qs := job.queueSpan; qs != nil {
		qs.Finish()
		job.queueSpan = nil
	}
	runSpan := job.link.NewSpan("job.run")
	if runSpan != nil {
		runSpan.Annotate(trace.Str("job", job.id),
			trace.Str("dataset", job.spec.Dataset),
			trace.Str("method", string(job.spec.Method)))
		if job.kind != "" {
			runSpan.Annotate(trace.Str("kind", job.kind))
		}
		ctx = trace.ContextWithSpan(ctx, runSpan)
	}

	e.busy.Add(1)
	var res *lafdbscan.Result
	var err error
	if runSpan != nil {
		// CPU profile samples taken during this job carry its kind and
		// trace ID, so a hot profile attributes flat time to the job (and
		// via the trace ID, to the exact request) that caused it. Labels
		// ride the sampling decision: unsampled jobs skip the label set.
		kind := job.kind
		if kind == "" {
			kind = "cluster"
		}
		pprof.Do(ctx, pprof.Labels("laf_job", kind, "laf_trace", runSpan.TraceID.String()),
			func(ctx context.Context) { res, err = e.execute(ctx, job) })
	} else {
		res, err = e.execute(ctx, job)
	}
	e.busy.Add(-1)

	job.mu.Lock()
	job.finished = time.Now()
	job.cancel = nil
	switch {
	case err == nil:
		job.state = JobDone
		job.result = res
		e.done.Add(1)
	case errors.Is(err, context.Canceled):
		job.state = JobCanceled
		job.err = err
		e.canceled.Add(1)
	default:
		job.state = JobFailed
		job.err = err
		e.failed.Add(1)
	}
	state := job.state
	job.mu.Unlock()
	if runSpan != nil {
		runSpan.Annotate(trace.Str("state", string(state)),
			trace.Int("queries_done", job.queriesDone.Load()))
		runSpan.Finish()
	}
}

// execute resolves the job's shared resources — dataset vectors, the
// per-(dataset, metric) index, the cached estimator — wires the progress
// hook, and runs the clustering call. Custom jobs (SubmitFunc) skip
// resolution and run their closure under the hooked context directly.
func (e *Engine) execute(ctx context.Context, job *Job) (*lafdbscan.Result, error) {
	// One progress closure feeds three consumers at every wave barrier: the
	// job's poll-able counter, the engine-wide throughput counter, and (for
	// sampled jobs) a per-wave event on the run span — the trace's latency
	// breakdown. The wave engines call it from the goroutine driving the
	// waves, never concurrently within a batch call, which satisfies the
	// span ownership contract; a nil span makes the event a no-op.
	span := trace.FromContext(ctx)
	progress := func(q int) {
		job.queriesDone.Add(int64(q))
		e.queries.Add(int64(q))
		span.Event("wave", trace.Int("queries", int64(q)))
	}
	if job.exec != nil {
		return job.exec(index.WithWaveProgress(ctx, progress))
	}
	spec := job.spec
	ds, err := e.reg.Get(spec.Dataset)
	if err != nil {
		return nil, err
	}
	p := spec.Params
	idx, backend, ierr := e.reg.Index(spec.Dataset, p.Metric, p.IndexBackend)
	if ierr != nil {
		return nil, ierr
	}
	p.Index = idx
	span.Annotate(trace.Str("laf_index_backend", backend))
	est, cached, err := resolveEstimator(ctx, e.reg, e.est, spec)
	if err != nil {
		return nil, err
	}
	if est != nil {
		job.mu.Lock()
		job.estimatorCached = cached
		job.mu.Unlock()
		p.Estimator = est
	}
	return e.run(index.WithWaveProgress(ctx, progress), ds.Vectors, spec.Method, p)
}

// resolveEstimator resolves a spec's estimator through the shared cache:
// trained on the job's dataset (or the spec's TrainDataset), targeting the
// job dataset's size unless overridden. The job engine and the model-fit
// endpoint share it, so both pay for each (dataset, config) training at
// most once between them. cached reports whether a previous or concurrent
// request already paid. A nil spec.Estimator resolves to (nil, false, nil).
func resolveEstimator(ctx context.Context, reg *Registry, cache *EstimatorCache, spec JobSpec) (est lafdbscan.Estimator, cached bool, err error) {
	if spec.Estimator == nil {
		return nil, false, nil
	}
	ds, err := reg.Get(spec.Dataset)
	if err != nil {
		return nil, false, err
	}
	trainName := spec.Estimator.TrainDataset
	trainVecs := ds.Vectors
	if trainName == "" {
		trainName = spec.Dataset
	} else {
		tds, terr := reg.Get(trainName)
		if terr != nil {
			return nil, false, terr
		}
		trainVecs = tds.Vectors
	}
	cfg := spec.Estimator.Config
	if cfg.TargetSize == 0 {
		cfg.TargetSize = ds.Len()
	}
	est, cached, _, err = cache.Get(ctx, trainName, trainVecs, cfg)
	return est, cached, err
}
