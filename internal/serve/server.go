package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	netpprof "net/http/pprof"
	"time"

	"lafdbscan"
	"lafdbscan/internal/telemetry"
	"lafdbscan/internal/trace"
)

// Server is the HTTP JSON facade over the registry, the estimator cache
// and the job engine. Routes (all under /v1, plus the scrape endpoint):
//
//	POST   /v1/datasets          register a dataset (file, synthetic or inline vectors)
//	GET    /v1/datasets          list registered datasets
//	GET    /v1/datasets/{name}   one dataset's info
//	POST   /v1/estimators        train (or fetch cached) an estimator synchronously
//	POST   /v1/jobs              submit an async clustering job (202, or 429 when full)
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         poll status/progress
//	GET    /v1/jobs/{id}/result  fetch a finished job's labels and metrics
//	DELETE /v1/jobs/{id}         cancel (queued: immediate; running: within one wave)
//	POST   /v1/models            fit a model synchronously (201; canceled by disconnect)
//	GET    /v1/models            list stored models
//	GET    /v1/models/{id}       one model's info
//	DELETE /v1/models/{id}       delete a model
//	GET    /v1/models/{id}/save  download the model's binary serialization
//	POST   /v1/models/load       upload a serialized model (binary body)
//	POST   /v1/models/{id}/predict  assign vectors to the model's clusters
//	POST   /v1/models/{id}/insert   async: fold new vectors into the clustering (202, job id)
//	POST   /v1/models/{id}/delete   async: drop point ids from the clustering (202, job id)
//	POST   /v1/models/{id}/stream   async: journaled micro-batched insert stream (202, job id)
//	POST   /v1/models/{id}/snapshot commit a journaled model's snapshot generation (200)
//	GET    /v1/stats             registry / cache / engine / model counters
//	GET    /v1/traces            recent request traces (?trace=, ?min_ms=, ?limit=)
//	GET    /v1/healthz           liveness
//	GET    /metrics              Prometheus text-format scrape endpoint
//	GET    /debug/pprof/...      Go profiling endpoints (only with Options.EnablePprof)
//
// Every route is instrumented through internal/telemetry: request counts
// and latency histograms per route pattern, in-flight and rejection
// counters, plus scrape-time bridges into the engine, cache and store
// counters (the catalog lives in docs/OPERATIONS.md).
type Server struct {
	reg     *Registry
	est     *EstimatorCache
	eng     *Engine
	models  *ModelStore
	metrics *serverMetrics
	tracer  *trace.Tracer
	// fitSlots caps concurrent synchronous model fits at the job engine's
	// worker count, so a burst of POST /v1/models cannot oversubscribe the
	// machine past the concurrency budget the bounded engine enforces for
	// jobs; excess fits get 429, the same backpressure contract as Submit.
	fitSlots chan struct{}
	mux      *http.ServeMux
	start    time.Time
	logger   *slog.Logger
	// wal, when non-nil, journals every stored model's mutations (see
	// docs/DURABILITY.md); nil means memory-only operation.
	wal *walManager
}

// NewServer wires a fresh registry, estimator cache, job engine and model
// store into an HTTP handler. Close the server (not just the listener) to
// stop the engine's workers.
func NewServer(opts Options) *Server {
	reg := NewRegistry()
	if err := reg.SetDefaultIndexBackend(opts.IndexBackend); err != nil {
		// Options.IndexBackend documents the contract: callers validate
		// with CheckIndexBackend first.
		panic(err)
	}
	est := NewEstimatorCache()
	eng := NewEngine(reg, est, opts)
	mreg := telemetry.NewRegistry()
	// Sampling default is trace-everything: the ring is a bounded flight
	// recorder, so "on" costs one span tree per request and nothing when
	// the ring wraps. Negative disables (trace.New treats 0 as off).
	sampleEvery := opts.TraceSampleEvery
	if sampleEvery == 0 {
		sampleEvery = 1
	} else if sampleEvery < 0 {
		sampleEvery = 0
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	tracer := trace.New(opts.TraceCapacity, sampleEvery)
	s := &Server{
		reg:      reg,
		est:      est,
		eng:      eng,
		models:   NewModelStore(opts.MaxModels),
		metrics:  newServerMetrics(mreg, tracer, logger, opts.SlowRequestThreshold),
		tracer:   tracer,
		fitSlots: make(chan struct{}, eng.workers),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		logger:   logger,
	}
	wm, err := newWALManager(opts, mreg, s.models)
	if err != nil {
		// Options.WALDir/WALSync document the contract: callers validate the
		// sync policy with wal.ParseSyncPolicy and pick a creatable
		// directory before constructing the server.
		panic(err)
	}
	s.wal = wm
	reg.registerMetrics(mreg)
	est.registerMetrics(mreg)
	eng.registerMetrics(mreg)
	s.models.registerMetrics(mreg)
	registerRuntimeMetrics(mreg)
	registerTraceMetrics(mreg, tracer)
	mreg.GaugeFunc("laf_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.routes(opts.EnablePprof)
	// Recovery runs after the mux and metrics exist so recovered models are
	// fully observable, but before NewServer returns so the first request
	// already sees them.
	s.recoverJournaledModels()
	return s
}

// Tracer exposes the server's span ring (tests assert against it; cmd
// tooling reads it over /v1/traces instead).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Metrics exposes the server's telemetry registry (cmd/lafserve logs a
// startup summary through it; tests scrape it directly).
func (s *Server) Metrics() *telemetry.Registry { return s.metrics.reg }

// Registry exposes the server's dataset registry (cmd/lafserve preloads
// datasets from flags through it).
func (s *Server) Registry() *Registry { return s.reg }

// Close stops the job engine and flushes every model journal (the clean
// shutdown path; a hard kill instead relies on WAL replay at the next
// boot).
func (s *Server) Close() {
	s.eng.Close()
	if err := s.models.CloseDurables(); err != nil {
		s.logger.Error("wal: closing model journals", "err", err)
	}
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// handle registers one instrumented route: the pattern becomes the
// endpoint label of the route's request counter and latency histogram
// (bounded cardinality — raw paths never reach a label).
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.metrics.instrument(pattern, h))
}

func (s *Server) routes(enablePprof bool) {
	s.handle("POST /v1/datasets", s.handleRegisterDataset)
	s.handle("GET /v1/datasets", s.handleListDatasets)
	s.handle("GET /v1/datasets/{name}", s.handleGetDataset)
	s.handle("POST /v1/estimators", s.handleTrainEstimator)
	s.handle("POST /v1/jobs", s.handleSubmitJob)
	s.handle("GET /v1/jobs", s.handleListJobs)
	s.handle("GET /v1/jobs/{id}", s.handleJobStatus)
	s.handle("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.handle("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.handle("POST /v1/models", s.handleFitModel)
	s.handle("GET /v1/models", s.handleListModels)
	// "load" is a reserved id: the literal route wins over the {id} pattern
	// under the Go 1.22 mux's most-specific rule.
	s.handle("POST /v1/models/load", s.handleLoadModel)
	s.handle("GET /v1/models/{id}", s.handleGetModel)
	s.handle("DELETE /v1/models/{id}", s.handleDeleteModel)
	s.handle("GET /v1/models/{id}/save", s.handleSaveModel)
	s.handle("POST /v1/models/{id}/predict", s.handlePredict)
	s.handle("POST /v1/models/{id}/insert", s.handleInsertModel)
	s.handle("POST /v1/models/{id}/delete", s.handleRemovePoints)
	s.handle("POST /v1/models/{id}/stream", s.handleStreamModel)
	s.handle("POST /v1/models/{id}/snapshot", s.handleSnapshotModel)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// The scrape endpoint itself is not instrumented: scrapes measuring
	// themselves would be noise in every latency panel. Same for the trace
	// endpoint — reading the flight recorder must not write to it, or a
	// tight poll would evict the very spans it came to fetch.
	s.mux.Handle("GET /metrics", s.metrics.reg.Handler())
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	if enablePprof {
		// Mounted explicitly rather than importing net/http/pprof for its
		// DefaultServeMux side effect: the server owns its mux, and the
		// flag gate would be meaningless if a blank import registered the
		// handlers anyway.
		s.mux.HandleFunc("GET /debug/pprof/", netpprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", netpprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", netpprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", netpprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", netpprof.Trace)
	}
	// Catch-all: requests matching no route still get counted (under the
	// fixed "other" endpoint label, never the raw path) before their JSON
	// 404. Go 1.22's mux has no post-match pattern hook, so an explicit
	// least-specific route is how unmatched traffic becomes observable.
	s.mux.HandleFunc("/", s.metrics.instrument(endpointUnknown,
		func(w http.ResponseWriter, r *http.Request) {
			writeError(w, http.StatusNotFound,
				fmt.Errorf("serve: no route for %s %s", r.Method, r.URL.Path))
		}))
}

// --- wire formats ---

// paramsJSON is the over-the-wire shape of lafdbscan.Params (the Estimator
// and Index fields are engine-owned and have no wire form). Metric travels
// as a string for readability.
type paramsJSON struct {
	Eps                   float64 `json:"eps"`
	Tau                   int     `json:"tau"`
	Alpha                 float64 `json:"alpha,omitempty"`
	SampleFraction        float64 `json:"sample_fraction,omitempty"`
	Branching             int     `json:"branching,omitempty"`
	LeavesRatio           float64 `json:"leaves_ratio,omitempty"`
	Base                  float64 `json:"base,omitempty"`
	RNT                   int     `json:"rnt,omitempty"`
	Rho                   float64 `json:"rho,omitempty"`
	Metric                string  `json:"metric,omitempty"` // "cosine" (default) or "euclidean"
	Seed                  int64   `json:"seed,omitempty"`
	Workers               int     `json:"workers,omitempty"`
	BatchSize             int     `json:"batch_size,omitempty"`
	WaveSize              int     `json:"wave_size,omitempty"`
	DisablePostProcessing bool    `json:"disable_post_processing,omitempty"`
	// IndexBackend names the range-index implementation ("brute", "hnsw",
	// ..., or "auto" for the approximate fallback chain); empty keeps the
	// server default. EfSearch is the HNSW recall knob (0 = default).
	IndexBackend string `json:"index_backend,omitempty"`
	EfSearch     int    `json:"ef_search,omitempty"`
}

func (p paramsJSON) toParams() (lafdbscan.Params, error) {
	out := lafdbscan.Params{
		Eps: p.Eps, Tau: p.Tau, Alpha: p.Alpha,
		SampleFraction: p.SampleFraction,
		Branching:      p.Branching, LeavesRatio: p.LeavesRatio,
		Base: p.Base, RNT: p.RNT, Rho: p.Rho,
		Seed: p.Seed, Workers: p.Workers, BatchSize: p.BatchSize,
		WaveSize:              p.WaveSize,
		DisablePostProcessing: p.DisablePostProcessing,
		IndexBackend:          p.IndexBackend, EfSearch: p.EfSearch,
	}
	switch p.Metric {
	case "", "cosine":
		out.Metric = lafdbscan.MetricCosine
	case "euclidean":
		out.Metric = lafdbscan.MetricEuclidean
	default:
		return out, fmt.Errorf("serve: unknown metric %q (want cosine or euclidean)", p.Metric)
	}
	return out, nil
}

// estimatorJSON is the wire shape of an EstimatorSpec.
type estimatorJSON struct {
	TrainDataset string    `json:"train_dataset,omitempty"`
	Radii        []float64 `json:"radii,omitempty"`
	MaxQueries   int       `json:"max_queries,omitempty"`
	TargetSize   int       `json:"target_size,omitempty"`
	Paper        bool      `json:"paper,omitempty"`
	Hidden       []int     `json:"hidden,omitempty"`
	Epochs       int       `json:"epochs,omitempty"`
	BatchSize    int       `json:"batch_size,omitempty"`
	LR           float64   `json:"lr,omitempty"`
	Metric       string    `json:"metric,omitempty"`
	Seed         int64     `json:"seed,omitempty"`
}

func (e estimatorJSON) toSpec() (EstimatorSpec, error) {
	cfg := lafdbscan.EstimatorConfig{
		Radii: e.Radii, MaxQueries: e.MaxQueries, TargetSize: e.TargetSize,
		Paper: e.Paper, Hidden: e.Hidden, Epochs: e.Epochs,
		BatchSize: e.BatchSize, LR: e.LR, Seed: e.Seed,
	}
	switch e.Metric {
	case "", "cosine":
		cfg.Metric = lafdbscan.MetricCosine
	case "euclidean":
		cfg.Metric = lafdbscan.MetricEuclidean
	default:
		return EstimatorSpec{}, fmt.Errorf("serve: unknown estimator metric %q", e.Metric)
	}
	return EstimatorSpec{TrainDataset: e.TrainDataset, Config: cfg}, nil
}

// --- handlers ---

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name      string `json:"name"`
		Path      string `json:"path,omitempty"`
		Synthetic *struct {
			Kind string `json:"kind"`
			N    int    `json:"n"`
			Seed int64  `json:"seed"`
		} `json:"synthetic,omitempty"`
		Vectors [][]float32 `json:"vectors,omitempty"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	sources := 0
	if req.Path != "" {
		sources++
	}
	if req.Synthetic != nil {
		sources++
	}
	if len(req.Vectors) > 0 {
		sources++
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest,
			errors.New("serve: exactly one of path, synthetic or vectors is required"))
		return
	}
	var (
		info DatasetInfo
		err  error
	)
	switch {
	case req.Path != "":
		info, err = s.reg.RegisterFile(req.Name, req.Path)
	case req.Synthetic != nil:
		info, err = s.reg.RegisterSynthetic(req.Name, req.Synthetic.Kind, req.Synthetic.N, req.Synthetic.Seed)
	default:
		info, err = s.reg.RegisterVectors(req.Name, req.Vectors)
	}
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.reg.List()})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Info(r.PathValue("name"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleTrainEstimator(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Dataset   string        `json:"dataset"`
		Estimator estimatorJSON `json:"estimator"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	spec, err := req.Estimator.toSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ds, err := s.reg.Get(req.Dataset)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	trainName := req.Dataset
	trainVecs := ds.Vectors
	if spec.TrainDataset != "" {
		tds, terr := s.reg.Get(spec.TrainDataset)
		if terr != nil {
			writeError(w, statusFor(terr), terr)
			return
		}
		trainName, trainVecs = spec.TrainDataset, tds.Vectors
	}
	cfg := spec.Config
	if cfg.TargetSize == 0 {
		cfg.TargetSize = ds.Len()
	}
	_, cached, trainTime, err := s.est.Get(r.Context(), trainName, trainVecs, cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"key":      EstimatorKey(trainName, cfg),
		"cached":   cached,
		"train_ms": trainTime.Milliseconds(),
	})
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Dataset   string         `json:"dataset"`
		Method    string         `json:"method"`
		Params    paramsJSON     `json:"params"`
		Estimator *estimatorJSON `json:"estimator,omitempty"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	params, err := req.Params.toParams()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := JobSpec{
		Dataset: req.Dataset,
		Method:  lafdbscan.Method(req.Method),
		Params:  params,
	}
	if req.Estimator != nil {
		es, eerr := req.Estimator.toSpec()
		if eerr != nil {
			writeError(w, http.StatusBadRequest, eerr)
			return
		}
		spec.Estimator = &es
	}
	status, err := s.eng.Submit(r.Context(), spec)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, status)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.eng.List()})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	status, err := s.eng.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.eng.Result(id)
	if err != nil {
		if errors.Is(err, ErrUnknownJob) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		// Known job, wrong state: 409 tells the poller to keep waiting (or
		// give up, for failed/canceled jobs — the message names the state).
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":              id,
		"algorithm":       res.Algorithm,
		"labels":          res.Labels,
		"num_clusters":    res.NumClusters,
		"elapsed_ms":      res.Elapsed.Milliseconds(),
		"range_queries":   res.RangeQueries,
		"skipped_queries": res.SkippedQueries,
		"post_merges":     res.PostMerges,
	})
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	status, err := s.eng.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s":        int64(time.Since(s.start).Seconds()),
		"datasets":        s.reg.Len(),
		"estimator_cache": s.est.Stats(),
		"jobs":            s.eng.Stats(),
		"models":          s.models.Stats(),
		"wal":             s.wal.stats(s.models),
		"index": map[string]any{
			"default_backend": s.reg.DefaultIndexBackend(),
			"backends":        lafdbscan.IndexBackends(),
			"datasets":        s.reg.IndexInfo(),
		},
	})
}

// --- helpers ---

// maxBodyBytes caps every request body. Inline-vector registrations are
// the only big payloads (64 MiB ≈ a 4M-float dataset); everything else is
// tiny. Oversized bodies fail decoding with a 400 instead of exhausting
// memory, since registered datasets are retained for the server's life.
const maxBodyBytes = 64 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusFor maps the package's sentinel errors onto HTTP statuses;
// everything else is a 400 (the request referenced or contained something
// the server rejects).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrUnknownJob), errors.Is(err, ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, ErrExists), errors.Is(err, ErrModelStoreFull):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}
