package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServeIndexBackendSurfacing drives the backend knob end to end through
// the HTTP surface: a fit naming "hnsw" succeeds, the stored model reports
// the resolved backend, /v1/stats lists the built shared indexes per
// dataset, and the registry's build counter carries the laf_index_backend
// label on /metrics.
func TestServeIndexBackendSurfacing(t *testing.T) {
	base, _, cleanup := modelServer(t, Options{Workers: 1, QueueDepth: 4})
	defer cleanup()

	code, body := postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "mdl", "method": "dbscan",
		"params": map[string]any{"eps": 0.5, "tau": 4, "index_backend": "hnsw"},
	})
	if code != http.StatusCreated {
		t.Fatalf("fit with hnsw backend: %d %v", code, body)
	}
	info := body["model"].(map[string]any)
	if got := info["index_backend"]; got != "hnsw" {
		t.Errorf("fit model index_backend = %v, want hnsw", got)
	}
	id := info["id"].(string)

	// The stored info serves the same backend back on GET.
	code, body = getJSON(t, base+"/v1/models/"+id)
	if code != http.StatusOK {
		t.Fatalf("get model: %d %v", code, body)
	}
	if got := body["index_backend"]; got != "hnsw" {
		t.Errorf("GET model index_backend = %v, want hnsw", got)
	}

	// A default fit resolves to the exact backend and says so.
	code, body = postJSON(t, base+"/v1/models", map[string]any{
		"dataset": "mdl", "method": "dbscan",
		"params": map[string]any{"eps": 0.5, "tau": 4},
	})
	if code != http.StatusCreated {
		t.Fatalf("default fit: %d %v", code, body)
	}
	if got := body["model"].(map[string]any)["index_backend"]; got != "brute" {
		t.Errorf("default fit index_backend = %v, want brute", got)
	}

	// /v1/stats surfaces the default knob, the available backends, and the
	// per-dataset built set.
	code, body = getJSON(t, base+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, body)
	}
	idx, ok := body["index"].(map[string]any)
	if !ok {
		t.Fatalf("stats has no index section: %v", body)
	}
	if got := idx["default_backend"]; got != "" {
		t.Errorf("default_backend = %v, want \"\"", got)
	}
	backends := idx["backends"].([]any)
	if len(backends) < 2 {
		t.Errorf("stats backends = %v, want the full registry", backends)
	}
	datasets := idx["datasets"].([]any)
	if len(datasets) != 1 {
		t.Fatalf("stats index datasets = %v", datasets)
	}
	ds := datasets[0].(map[string]any)
	if ds["dataset"] != "mdl" {
		t.Errorf("stats index dataset = %v", ds["dataset"])
	}
	var built []string
	for _, b := range ds["backends"].([]any) {
		built = append(built, b.(string))
	}
	if strings.Join(built, ",") != "brute,hnsw" {
		t.Errorf("built backends = %v, want [brute hnsw]", built)
	}

	// The build counter is labeled by backend: one brute and one hnsw index
	// were built for this dataset.
	samples, _ := scrapeMetrics(t, base)
	for _, backend := range []string{"brute", "hnsw"} {
		key := `laf_index_builds_total{laf_index_backend="` + backend + `"}`
		if got := samples[key]; got != 1 {
			t.Errorf("%s = %v, want 1", key, got)
		}
	}
}

// TestServeIndexBackendRejections pins the 400 paths of the backend knob:
// unknown names, metric-incapable backends, and radius-bound backends that
// cannot serve a shared per-dataset index.
func TestServeIndexBackendRejections(t *testing.T) {
	base, _, cleanup := modelServer(t, Options{Workers: 1, QueueDepth: 4})
	defer cleanup()

	cases := []struct {
		name   string
		params map[string]any
	}{
		{"unknown backend", map[string]any{"eps": 0.5, "tau": 4, "index_backend": "bogus"}},
		// grid only supports euclidean; under the default cosine metric
		// Params.Validate rejects it before any serve-layer rule fires.
		{"metric-incapable backend", map[string]any{"eps": 0.5, "tau": 4, "index_backend": "grid"}},
		// Under euclidean the grid passes validation but is radius-bound,
		// which the shared per-dataset index cannot honor.
		{"radius-bound backend", map[string]any{
			"eps": 0.5, "tau": 4, "metric": "euclidean", "index_backend": "grid"}},
		{"negative ef_search", map[string]any{"eps": 0.5, "tau": 4, "ef_search": -1}},
	}
	for _, tc := range cases {
		for _, endpoint := range []string{"/v1/models", "/v1/jobs"} {
			code, body := postJSON(t, base+endpoint, map[string]any{
				"dataset": "mdl", "method": "dbscan", "params": tc.params,
			})
			if code != http.StatusBadRequest {
				t.Errorf("%s %s: code %d %v, want 400", tc.name, endpoint, code, body)
			}
		}
	}
}

// TestServeDefaultIndexBackendAuto opts a whole server into the approximate
// chain via Options.IndexBackend and checks unnamed requests resolve to
// HNSW while an invalid option panics (the documented contract).
func TestServeDefaultIndexBackendAuto(t *testing.T) {
	s := NewServer(Options{Workers: 1, QueueDepth: 4, IndexBackend: "auto"})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	code, body := postJSON(t, ts.URL+"/v1/datasets", map[string]any{
		"name":      "auto-ds",
		"synthetic": map[string]any{"kind": "glove", "n": 150, "seed": 5},
	})
	if code != http.StatusCreated {
		t.Fatalf("register: %d %v", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v1/models", map[string]any{
		"dataset": "auto-ds", "method": "dbscan",
		"params": map[string]any{"eps": 0.5, "tau": 4},
	})
	if code != http.StatusCreated {
		t.Fatalf("fit: %d %v", code, body)
	}
	if got := body["model"].(map[string]any)["index_backend"]; got != "hnsw" {
		t.Errorf("auto-default fit index_backend = %v, want hnsw", got)
	}
	code, body = getJSON(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, body)
	}
	if got := body["index"].(map[string]any)["default_backend"]; got != "auto" {
		t.Errorf("stats default_backend = %v, want auto", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("NewServer accepted an invalid IndexBackend option")
		}
	}()
	NewServer(Options{IndexBackend: "bogus"})
}
