package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lafdbscan"
)

// ErrUnknownModel reports a reference to a model id the store does not hold
// (never fitted, loaded, or already deleted); the HTTP layer maps it to 404.
var ErrUnknownModel = errors.New("unknown model")

// ErrModelStoreFull reports that the store is at capacity. Unlike the job
// queue's ErrQueueFull this is not retryable backpressure — models are
// explicitly managed resources, and the remedy is DELETE, not waiting — so
// the HTTP layer maps it to 409.
var ErrModelStoreFull = errors.New("model store full, delete models to make room")

// ModelInfo describes a stored model, shaped for JSON.
type ModelInfo struct {
	ID string `json:"id"`
	// Dataset names the registered dataset the model was fitted on; empty
	// for models uploaded through /v1/models/load (they are self-contained).
	Dataset      string `json:"dataset,omitempty"`
	Method       string `json:"method"`
	Points       int    `json:"points"`
	Dims         int    `json:"dims"`
	Clusters     int    `json:"clusters"`
	Cores        int    `json:"cores"`
	HasEstimator bool   `json:"has_estimator"`
	// Updates counts the point mutations (inserts plus removals) applied
	// to the model; Staleness counts them since its estimator was last
	// (re)trained — the drift signal behind retraining decisions.
	Updates   int64 `json:"updates"`
	Staleness int   `json:"staleness"`
	// Source records how the model entered the store ("fit" or "loaded").
	Source  string    `json:"source"`
	Created time.Time `json:"created"`
	// IndexBackend names the resolved range-index backend behind the model
	// ("brute", "hnsw", ...); empty when unknown.
	IndexBackend string `json:"index_backend,omitempty"`
}

// ModelStoreStats is the store's /stats view. The update counters
// aggregate across models: Inserts/Removes count maintenance operations,
// PointsInserted/PointsRemoved the points they moved.
type ModelStoreStats struct {
	Models         int   `json:"models"`
	Capacity       int   `json:"capacity"`
	Fitted         int64 `json:"fitted"`
	Loaded         int64 `json:"loaded"`
	Recovered      int64 `json:"recovered"`
	Deleted        int64 `json:"deleted"`
	Predictions    int64 `json:"predictions"`
	Inserts        int64 `json:"inserts"`
	Removes        int64 `json:"removes"`
	PointsInserted int64 `json:"points_inserted"`
	PointsRemoved  int64 `json:"points_removed"`
}

// ModelStore holds fitted and uploaded clustering models by id. Models
// guard their own state (predictions share a read lock, maintenance
// updates serialize behind a write lock), so entries are shared without
// copying and the store only guards the id map and the listed info
// snapshots. A fixed capacity bounds the memory held in training vectors
// (each model retains its points).
type ModelStore struct {
	mu      sync.Mutex
	entries map[string]*modelEntry
	order   []string
	seq     int64
	cap     int

	fitted      atomic.Int64
	loaded      atomic.Int64
	recovered   atomic.Int64
	deleted     atomic.Int64
	predictions atomic.Int64

	inserts        atomic.Int64
	removes        atomic.Int64
	pointsInserted atomic.Int64
	pointsRemoved  atomic.Int64
}

type modelEntry struct {
	model *lafdbscan.Model
	info  ModelInfo
	// durable, when non-nil, journals the model's mutations; maintenance
	// must route through it (see Mutator) or updates would not survive a
	// restart.
	durable *lafdbscan.DurableModel
}

// ModelMutator is the mutation surface maintenance jobs run against:
// *lafdbscan.Model satisfies it directly, *lafdbscan.DurableModel wraps
// the same calls in journal-before-apply.
type ModelMutator interface {
	Insert(ctx context.Context, vectors [][]float32) (lafdbscan.UpdateReport, error)
	Remove(ctx context.Context, ids []int) (lafdbscan.UpdateReport, error)
}

// defaultModelCap bounds the store when Options does not size it.
const defaultModelCap = 256

// NewModelStore returns an empty store holding at most capacity models
// (<= 0 selects the default).
func NewModelStore(capacity int) *ModelStore {
	if capacity <= 0 {
		capacity = defaultModelCap
	}
	return &ModelStore{entries: make(map[string]*modelEntry), cap: capacity}
}

// Add stores a model and returns its assigned info. source is "fit" or
// "loaded"; dataset may be empty for loaded models. indexBackend records the
// resolved range-index backend behind the model; empty falls back to what the
// model itself reports.
func (s *ModelStore) Add(model *lafdbscan.Model, dataset, source, indexBackend string) (ModelInfo, error) {
	if indexBackend == "" {
		indexBackend = model.IndexBackend()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) >= s.cap {
		return ModelInfo{}, fmt.Errorf("serve: %w (capacity %d)", ErrModelStoreFull, s.cap)
	}
	s.seq++
	info := ModelInfo{
		ID:           fmt.Sprintf("m-%06d", s.seq),
		Dataset:      dataset,
		Method:       string(model.Method()),
		Points:       model.Len(),
		Dims:         model.Dim(),
		Clusters:     model.NumClusters(),
		Cores:        model.NumCores(),
		HasEstimator: model.HasEstimator(),
		Updates:      model.Updates(),
		Staleness:    model.Staleness(),
		Source:       source,
		Created:      time.Now(),
		IndexBackend: indexBackend,
	}
	s.entries[info.ID] = &modelEntry{model: model, info: info}
	s.order = append(s.order, info.ID)
	switch source {
	case "loaded":
		s.loaded.Add(1)
	default:
		s.fitted.Add(1)
	}
	return info, nil
}

// AddRecovered stores a model recovered from its journal at boot under its
// original id (Source "recovered"), keeping the id sequence ahead of every
// recovered id so freshly fitted models never collide with journals on
// disk.
func (s *ModelStore) AddRecovered(id string, d *lafdbscan.DurableModel) (ModelInfo, error) {
	model := d.Model()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[id]; ok {
		return ModelInfo{}, fmt.Errorf("serve: model %s: %w", id, ErrExists)
	}
	if len(s.entries) >= s.cap {
		return ModelInfo{}, fmt.Errorf("serve: %w (capacity %d)", ErrModelStoreFull, s.cap)
	}
	var n int64
	if _, err := fmt.Sscanf(id, "m-%d", &n); err == nil && n > s.seq {
		s.seq = n
	}
	info := ModelInfo{
		ID:           id,
		Method:       string(model.Method()),
		Points:       model.Len(),
		Dims:         model.Dim(),
		Clusters:     model.NumClusters(),
		Cores:        model.NumCores(),
		HasEstimator: model.HasEstimator(),
		Updates:      model.Updates(),
		Staleness:    model.Staleness(),
		Source:       "recovered",
		Created:      time.Now(),
		IndexBackend: model.IndexBackend(),
	}
	s.entries[id] = &modelEntry{model: model, info: info, durable: d}
	s.order = append(s.order, id)
	s.recovered.Add(1)
	return info, nil
}

// SetDurable attaches a journal to a stored model (fit and load do this
// right after Add when the server runs with a WAL directory).
func (s *ModelStore) SetDurable(id string, d *lafdbscan.DurableModel) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return fmt.Errorf("serve: model %s: %w", id, ErrUnknownModel)
	}
	e.durable = d
	return nil
}

// Durable returns the journal attached to id, or nil when the model is
// memory-only (the id itself must exist).
func (s *ModelStore) Durable(id string) (*lafdbscan.DurableModel, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, fmt.Errorf("serve: model %s: %w", id, ErrUnknownModel)
	}
	return e.durable, nil
}

// Mutator resolves the mutation surface for id: the journal when one is
// attached (so updates survive a restart), the bare model otherwise. The
// model pointer serves reads either way.
func (s *ModelStore) Mutator(id string) (*lafdbscan.Model, ModelMutator, ModelInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, nil, ModelInfo{}, fmt.Errorf("serve: model %s: %w", id, ErrUnknownModel)
	}
	if e.durable != nil {
		return e.model, e.durable, e.info, nil
	}
	return e.model, e.model, e.info, nil
}

// walStats sums journal telemetry across stored models: how many carry a
// journal and the records/bytes in their active segments.
func (s *ModelStore) walStats() (models int, records, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		e := s.entries[id]
		if e.durable == nil {
			continue
		}
		models++
		st := e.durable.Stats()
		records += st.SegmentRecords
		bytes += st.SegmentBytes
	}
	return models, records, bytes
}

// CloseDurables flushes and closes every attached journal — the clean
// shutdown path. Models stay readable; only journaled mutation stops.
func (s *ModelStore) CloseDurables() error {
	s.mu.Lock()
	durables := make([]*lafdbscan.DurableModel, 0, len(s.order))
	for _, id := range s.order {
		if d := s.entries[id].durable; d != nil {
			durables = append(durables, d)
		}
	}
	s.mu.Unlock()
	var errs []error
	for _, d := range durables {
		if err := d.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Get returns the model and info stored under id.
func (s *ModelStore) Get(id string) (*lafdbscan.Model, ModelInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, ModelInfo{}, fmt.Errorf("serve: model %s: %w", id, ErrUnknownModel)
	}
	return e.model, e.info, nil
}

// Delete removes the model stored under id. An attached journal is
// destroyed with it (outside the store lock — journal teardown does I/O):
// deleting the model is the explicit statement that its state should not
// come back at the next boot.
func (s *ModelStore) Delete(id string) error {
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: model %s: %w", id, ErrUnknownModel)
	}
	delete(s.entries, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.deleted.Add(1)
	s.mu.Unlock()
	if e.durable != nil {
		if err := e.durable.Destroy(); err != nil {
			return fmt.Errorf("serve: model %s deleted but journal cleanup failed: %w", id, err)
		}
	}
	return nil
}

// List returns every stored model's info in creation order.
func (s *ModelStore) List() []ModelInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ModelInfo, 0, len(s.entries))
	for _, id := range s.order {
		out = append(out, s.entries[id].info)
	}
	return out
}

// Full reports whether the store is at capacity — the cheap pre-check the
// fit endpoint runs before paying for a clustering, so a full store costs a
// 409, not a wasted fit. Add remains authoritative under the same lock.
func (s *ModelStore) Full() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries) >= s.cap
}

// CountPrediction bumps the prediction counter (the HTTP layer calls it per
// successful predict request).
func (s *ModelStore) CountPrediction() { s.predictions.Add(1) }

// CountUpdate records a completed maintenance operation: one insert or
// remove moving the given number of points.
func (s *ModelStore) CountUpdate(kind string, points int) {
	if kind == "model-insert" {
		s.inserts.Add(1)
		s.pointsInserted.Add(int64(points))
	} else {
		s.removes.Add(1)
		s.pointsRemoved.Add(int64(points))
	}
}

// RefreshInfo re-snapshots a model's listed totals (points, clusters,
// cores, update counters) after a maintenance operation. A missing id is a
// no-op: the model may have been deleted while its update job ran.
func (s *ModelStore) RefreshInfo(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return
	}
	m := e.model
	e.info.Points = m.Len()
	e.info.Clusters = m.NumClusters()
	e.info.Cores = m.NumCores()
	e.info.HasEstimator = m.HasEstimator()
	e.info.Updates = m.Updates()
	e.info.Staleness = m.Staleness()
	// Maintenance swaps the model onto an owned exact index; keep the
	// listed backend honest.
	if ib := m.IndexBackend(); ib != "" {
		e.info.IndexBackend = ib
	}
}

// Stats returns the store counters.
func (s *ModelStore) Stats() ModelStoreStats {
	s.mu.Lock()
	models := len(s.entries)
	s.mu.Unlock()
	return ModelStoreStats{
		Models:         models,
		Capacity:       s.cap,
		Fitted:         s.fitted.Load(),
		Loaded:         s.loaded.Load(),
		Recovered:      s.recovered.Load(),
		Deleted:        s.deleted.Load(),
		Predictions:    s.predictions.Load(),
		Inserts:        s.inserts.Load(),
		Removes:        s.removes.Load(),
		PointsInserted: s.pointsInserted.Load(),
		PointsRemoved:  s.pointsRemoved.Load(),
	}
}
