package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lafdbscan"
)

// ErrUnknownModel reports a reference to a model id the store does not hold
// (never fitted, loaded, or already deleted); the HTTP layer maps it to 404.
var ErrUnknownModel = errors.New("unknown model")

// ErrModelStoreFull reports that the store is at capacity. Unlike the job
// queue's ErrQueueFull this is not retryable backpressure — models are
// explicitly managed resources, and the remedy is DELETE, not waiting — so
// the HTTP layer maps it to 409.
var ErrModelStoreFull = errors.New("model store full, delete models to make room")

// ModelInfo describes a stored model, shaped for JSON.
type ModelInfo struct {
	ID string `json:"id"`
	// Dataset names the registered dataset the model was fitted on; empty
	// for models uploaded through /v1/models/load (they are self-contained).
	Dataset      string `json:"dataset,omitempty"`
	Method       string `json:"method"`
	Points       int    `json:"points"`
	Dims         int    `json:"dims"`
	Clusters     int    `json:"clusters"`
	Cores        int    `json:"cores"`
	HasEstimator bool   `json:"has_estimator"`
	// Source records how the model entered the store ("fit" or "loaded").
	Source  string    `json:"source"`
	Created time.Time `json:"created"`
}

// ModelStoreStats is the store's /stats view.
type ModelStoreStats struct {
	Models      int   `json:"models"`
	Capacity    int   `json:"capacity"`
	Fitted      int64 `json:"fitted"`
	Loaded      int64 `json:"loaded"`
	Deleted     int64 `json:"deleted"`
	Predictions int64 `json:"predictions"`
}

// ModelStore holds fitted and uploaded clustering models by id. Models are
// immutable, so concurrent predictions share an entry without copying; the
// store only guards the id map. A fixed capacity bounds the memory held in
// training vectors (each model retains its points).
type ModelStore struct {
	mu      sync.Mutex
	entries map[string]*modelEntry
	order   []string
	seq     int64
	cap     int

	fitted      atomic.Int64
	loaded      atomic.Int64
	deleted     atomic.Int64
	predictions atomic.Int64
}

type modelEntry struct {
	model *lafdbscan.Model
	info  ModelInfo
}

// defaultModelCap bounds the store when Options does not size it.
const defaultModelCap = 256

// NewModelStore returns an empty store holding at most capacity models
// (<= 0 selects the default).
func NewModelStore(capacity int) *ModelStore {
	if capacity <= 0 {
		capacity = defaultModelCap
	}
	return &ModelStore{entries: make(map[string]*modelEntry), cap: capacity}
}

// Add stores a model and returns its assigned info. source is "fit" or
// "loaded"; dataset may be empty for loaded models.
func (s *ModelStore) Add(model *lafdbscan.Model, dataset, source string) (ModelInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) >= s.cap {
		return ModelInfo{}, fmt.Errorf("serve: %w (capacity %d)", ErrModelStoreFull, s.cap)
	}
	s.seq++
	info := ModelInfo{
		ID:           fmt.Sprintf("m-%06d", s.seq),
		Dataset:      dataset,
		Method:       string(model.Method()),
		Points:       model.Len(),
		Dims:         model.Dim(),
		Clusters:     model.NumClusters(),
		Cores:        model.NumCores(),
		HasEstimator: model.HasEstimator(),
		Source:       source,
		Created:      time.Now(),
	}
	s.entries[info.ID] = &modelEntry{model: model, info: info}
	s.order = append(s.order, info.ID)
	switch source {
	case "loaded":
		s.loaded.Add(1)
	default:
		s.fitted.Add(1)
	}
	return info, nil
}

// Get returns the model and info stored under id.
func (s *ModelStore) Get(id string) (*lafdbscan.Model, ModelInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, ModelInfo{}, fmt.Errorf("serve: model %s: %w", id, ErrUnknownModel)
	}
	return e.model, e.info, nil
}

// Delete removes the model stored under id.
func (s *ModelStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[id]; !ok {
		return fmt.Errorf("serve: model %s: %w", id, ErrUnknownModel)
	}
	delete(s.entries, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.deleted.Add(1)
	return nil
}

// List returns every stored model's info in creation order.
func (s *ModelStore) List() []ModelInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ModelInfo, 0, len(s.entries))
	for _, id := range s.order {
		out = append(out, s.entries[id].info)
	}
	return out
}

// Full reports whether the store is at capacity — the cheap pre-check the
// fit endpoint runs before paying for a clustering, so a full store costs a
// 409, not a wasted fit. Add remains authoritative under the same lock.
func (s *ModelStore) Full() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries) >= s.cap
}

// CountPrediction bumps the prediction counter (the HTTP layer calls it per
// successful predict request).
func (s *ModelStore) CountPrediction() { s.predictions.Add(1) }

// Stats returns the store counters.
func (s *ModelStore) Stats() ModelStoreStats {
	s.mu.Lock()
	models := len(s.entries)
	s.mu.Unlock()
	return ModelStoreStats{
		Models:      models,
		Capacity:    s.cap,
		Fitted:      s.fitted.Load(),
		Loaded:      s.loaded.Load(),
		Deleted:     s.deleted.Load(),
		Predictions: s.predictions.Load(),
	}
}
